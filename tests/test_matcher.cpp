// Tests for sim/matcher.h — the per-window matching policies.
#include "sim/matcher.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace cl {
namespace {

constexpr double kBeta = 1.5e6;  // 1.5 Mbps
constexpr double kDt = 10.0;

ActivePeer peer(std::uint32_t session, std::uint32_t isp, std::uint32_t exp,
                std::uint32_t pop, double beta = kBeta,
                std::uint64_t join_window = 0) {
  ActivePeer a;
  a.session = session;
  a.user = session;
  a.isp = isp;
  a.exp = exp;
  a.pop = pop;
  a.beta = beta;
  a.join_window = join_window;
  return a;
}

SimConfig config(double ratio = 1.0, bool isp_friendly = true) {
  SimConfig c;
  c.window = Seconds{kDt};
  c.q_over_beta = ratio;
  c.isp_friendly = isp_friendly;
  return c;
}

double total_peer_bits(const PeerAllocation& a) {
  double sum = a.cross_isp_bits;
  for (double b : a.peer_bits) sum += b;
  return sum;
}

void check_conservation(const std::vector<ActivePeer>& actives,
                        const std::vector<PeerAllocation>& out) {
  // Every active downloads exactly β·Δτ, split between server and peers;
  // total uploads equal total peer-delivered bits.
  double uploads = 0, peer_bits = 0;
  for (std::size_t i = 0; i < actives.size(); ++i) {
    EXPECT_NEAR(out[i].downloaded_bits(), actives[i].beta * kDt, 1e-6);
    uploads += out[i].upload_bits;
    peer_bits += total_peer_bits(out[i]);
  }
  EXPECT_NEAR(uploads, peer_bits, 1e-6);
}

TEST(ExistenceMatcher, SinglePeerAllServer) {
  const ExistenceMatcher matcher;
  std::vector<ActivePeer> actives{peer(0, 0, 5, 1)};
  std::vector<PeerAllocation> out;
  matcher.allocate(actives, 0, config(), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].server_bits, kBeta * kDt, 1e-9);
  EXPECT_DOUBLE_EQ(total_peer_bits(out[0]), 0.0);
  EXPECT_DOUBLE_EQ(out[0].upload_bits, 0.0);
}

TEST(ExistenceMatcher, EmptyActivesOk) {
  const ExistenceMatcher matcher;
  std::vector<PeerAllocation> out;
  matcher.allocate(std::vector<ActivePeer>{}, 0, config(), out);
  EXPECT_TRUE(out.empty());
}

TEST(ExistenceMatcher, TwoPeersSameExpLocaliseAtExp) {
  const ExistenceMatcher matcher;
  std::vector<ActivePeer> actives{peer(0, 0, 5, 1), peer(1, 0, 5, 1)};
  std::vector<PeerAllocation> out;
  matcher.allocate(actives, 0, config(), out);
  // Seed (0) pulls all from server; peer 1 pulls everything from the ExP.
  EXPECT_NEAR(out[0].server_bits, kBeta * kDt, 1e-9);
  EXPECT_NEAR(out[1].peer_bits[index(LocalityLevel::kExchangePoint)],
              kBeta * kDt, 1e-9);
  EXPECT_NEAR(out[1].server_bits, 0.0, 1e-9);
  check_conservation(actives, out);
}

TEST(ExistenceMatcher, SamePopDifferentExpLocalisesAtPop) {
  const ExistenceMatcher matcher;
  std::vector<ActivePeer> actives{peer(0, 0, 5, 1), peer(1, 0, 6, 1)};
  std::vector<PeerAllocation> out;
  matcher.allocate(actives, 0, config(), out);
  EXPECT_NEAR(out[1].peer_bits[index(LocalityLevel::kPop)], kBeta * kDt,
              1e-9);
  check_conservation(actives, out);
}

TEST(ExistenceMatcher, DifferentPopLocalisesAtCore) {
  const ExistenceMatcher matcher;
  std::vector<ActivePeer> actives{peer(0, 0, 5, 1), peer(1, 0, 6, 2)};
  std::vector<PeerAllocation> out;
  matcher.allocate(actives, 0, config(), out);
  EXPECT_NEAR(out[1].peer_bits[index(LocalityLevel::kCore)], kBeta * kDt,
              1e-9);
  check_conservation(actives, out);
}

TEST(ExistenceMatcher, DifferentIspGoesCross) {
  const ExistenceMatcher matcher;
  std::vector<ActivePeer> actives{peer(0, 0, 5, 1), peer(1, 1, 5, 1)};
  std::vector<PeerAllocation> out;
  matcher.allocate(actives, 0, config(1.0, /*isp_friendly=*/false), out);
  EXPECT_NEAR(out[1].cross_isp_bits, kBeta * kDt, 1e-9);
  check_conservation(actives, out);
}

TEST(ExistenceMatcher, PrefersLowestLevelWithPeers) {
  const ExistenceMatcher matcher;
  // Peer 2 has an ExP-mate (1) and a PoP-mate (3): must localise at ExP.
  std::vector<ActivePeer> actives{peer(0, 0, 1, 0), peer(1, 0, 5, 1),
                                  peer(2, 0, 5, 1), peer(3, 0, 6, 1)};
  std::vector<PeerAllocation> out;
  matcher.allocate(actives, 0, config(), out);
  EXPECT_GT(out[2].peer_bits[index(LocalityLevel::kExchangePoint)], 0.0);
  EXPECT_DOUBLE_EQ(out[2].peer_bits[index(LocalityLevel::kPop)], 0.0);
  // Peer 3's nearest company is PoP-level (exps 5 ≠ 6).
  EXPECT_GT(out[3].peer_bits[index(LocalityLevel::kPop)], 0.0);
  check_conservation(actives, out);
}

TEST(ExistenceMatcher, UploadRatioScalesPeerShare) {
  const ExistenceMatcher matcher;
  std::vector<ActivePeer> actives{peer(0, 0, 5, 1), peer(1, 0, 5, 1)};
  std::vector<PeerAllocation> out;
  matcher.allocate(actives, 0, config(0.4), out);
  EXPECT_NEAR(out[1].peer_bits[index(LocalityLevel::kExchangePoint)],
              0.4 * kBeta * kDt, 1e-9);
  EXPECT_NEAR(out[1].server_bits, 0.6 * kBeta * kDt, 1e-9);
}

TEST(ExistenceMatcher, UploadRatioAboveOneClamped) {
  const ExistenceMatcher matcher;
  std::vector<ActivePeer> actives{peer(0, 0, 5, 1), peer(1, 0, 5, 1)};
  std::vector<PeerAllocation> out;
  matcher.allocate(actives, 0, config(2.5), out);
  EXPECT_NEAR(out[1].peer_bits[index(LocalityLevel::kExchangePoint)],
              kBeta * kDt, 1e-9);
  EXPECT_NEAR(out[1].server_bits, 0.0, 1e-9);
}

TEST(ExistenceMatcher, SeedIndexHonoured) {
  const ExistenceMatcher matcher;
  std::vector<ActivePeer> actives{peer(0, 0, 5, 1), peer(1, 0, 5, 1)};
  std::vector<PeerAllocation> out;
  matcher.allocate(actives, 1, config(), out);
  EXPECT_NEAR(out[1].server_bits, kBeta * kDt, 1e-9);
  EXPECT_GT(total_peer_bits(out[0]), 0.0);
}

TEST(ExistenceMatcher, MatchesPaperPerWindowFormula) {
  // L peers, same bitrate: ΔTp must equal (L−1)·q·Δτ (paper Eq. 2).
  const ExistenceMatcher matcher;
  for (std::size_t l : {2u, 5u, 20u}) {
    std::vector<ActivePeer> actives;
    for (std::size_t i = 0; i < l; ++i) {
      actives.push_back(
          peer(static_cast<std::uint32_t>(i), 0, static_cast<std::uint32_t>(i),
               static_cast<std::uint32_t>(i % 3)));
    }
    std::vector<PeerAllocation> out;
    const double ratio = 0.6;
    matcher.allocate(actives, 0, config(ratio), out);
    double peer_bits = 0;
    for (const auto& a : out) peer_bits += total_peer_bits(a);
    EXPECT_NEAR(peer_bits, static_cast<double>(l - 1) * ratio * kBeta * kDt,
                1e-6);
  }
}

TEST(ExistenceMatcher, MixedBitratesUseOwnBeta) {
  const ExistenceMatcher matcher;
  std::vector<ActivePeer> actives{peer(0, 0, 5, 1, 1.5e6),
                                  peer(1, 0, 5, 1, 5.0e6)};
  std::vector<PeerAllocation> out;
  matcher.allocate(actives, 0, config(0.5), out);
  EXPECT_NEAR(out[1].downloaded_bits(), 5.0e6 * kDt, 1e-6);
  EXPECT_NEAR(total_peer_bits(out[1]), 0.5 * 5.0e6 * kDt, 1e-6);
}

TEST(ExistenceMatcher, InvalidSeedThrows) {
  const ExistenceMatcher matcher;
  std::vector<ActivePeer> actives{peer(0, 0, 5, 1)};
  std::vector<PeerAllocation> out;
  EXPECT_THROW(matcher.allocate(actives, 3, config(), out), InvalidArgument);
}

TEST(CapacityMatcher, SinglePeerAllServer) {
  const CapacityMatcher matcher;
  std::vector<ActivePeer> actives{peer(0, 0, 5, 1)};
  std::vector<PeerAllocation> out;
  matcher.allocate(actives, 0, config(), out);
  EXPECT_NEAR(out[0].server_bits, kBeta * kDt, 1e-9);
}

TEST(CapacityMatcher, FullBudgetServesWholeStream) {
  const CapacityMatcher matcher;
  std::vector<ActivePeer> actives{peer(0, 0, 5, 1), peer(1, 0, 5, 1)};
  std::vector<PeerAllocation> out;
  matcher.allocate(actives, 0, config(1.0), out);
  EXPECT_NEAR(out[1].peer_bits[index(LocalityLevel::kExchangePoint)],
              kBeta * kDt, 1e-9);
  EXPECT_NEAR(out[0].upload_bits, kBeta * kDt, 1e-9);
  check_conservation(actives, out);
}

TEST(CapacityMatcher, BudgetsAreEnforced) {
  // Three downloaders sharing one uploader with q = 1·β can only pull β·Δτ
  // in total from it; the rest must come from the server.
  const CapacityMatcher matcher;
  std::vector<ActivePeer> actives{peer(0, 0, 5, 1), peer(1, 0, 5, 1),
                                  peer(2, 0, 5, 1), peer(3, 0, 5, 1)};
  std::vector<PeerAllocation> out;
  matcher.allocate(actives, 0, config(1.0), out);
  // Total upload capacity 4β·Δτ; demand from 3 non-seed downloaders 3β·Δτ:
  // all of it can be served (uploaders include the downloaders themselves).
  double peer_bits = 0;
  for (const auto& a : out) peer_bits += total_peer_bits(a);
  EXPECT_NEAR(peer_bits, 3 * kBeta * kDt, 1e-6);
  for (const auto& a : out) {
    EXPECT_LE(a.upload_bits, 1.0 * kBeta * kDt + 1e-6);
  }
  check_conservation(actives, out);
}

TEST(CapacityMatcher, ScarceBudgetFallsBackToServer) {
  const CapacityMatcher matcher;
  std::vector<ActivePeer> actives{peer(0, 0, 5, 1), peer(1, 0, 5, 1),
                                  peer(2, 0, 5, 1)};
  std::vector<PeerAllocation> out;
  matcher.allocate(actives, 0, config(0.25), out);
  // Capacity 3·0.25β = 0.75β per window; demand 2β. Peers deliver 0.75β.
  double peer_bits = 0, server_bits = 0;
  for (const auto& a : out) {
    peer_bits += total_peer_bits(a);
    server_bits += a.server_bits;
  }
  EXPECT_NEAR(peer_bits, 0.75 * kBeta * kDt, 1e-6);
  EXPECT_NEAR(server_bits, (3.0 - 0.75) * kBeta * kDt, 1e-6);
  check_conservation(actives, out);
}

TEST(CapacityMatcher, ClosestFirstThenSpill) {
  // Downloader 2 shares an ExP with uploader 1 (budget 0.5β) and a PoP
  // with uploader 0 (in another ExP): it must drain the ExP-mate first and
  // spill the remainder to the PoP level.
  const CapacityMatcher matcher;
  std::vector<ActivePeer> actives{peer(0, 0, 4, 1), peer(1, 0, 5, 1),
                                  peer(2, 0, 5, 1)};
  std::vector<PeerAllocation> out;
  matcher.allocate(actives, 0, config(0.5), out);
  // Non-seed downloaders are 1 and 2 (0 is seed), processed in index order.
  // Downloader 1: ExP-mate is 2 (budget 0.5β) -> 0.5β at ExP; then PoP-mate
  // 0 — but 0 is the seed and still has budget -> 0.5β at PoP.
  EXPECT_NEAR(out[1].peer_bits[index(LocalityLevel::kExchangePoint)],
              0.5 * kBeta * kDt, 1e-6);
  EXPECT_NEAR(out[1].peer_bits[index(LocalityLevel::kPop)], 0.5 * kBeta * kDt,
              1e-6);
  // Downloader 2: ExP-mate 1's budget is intact -> 0.5β at ExP; PoP mate 0
  // is drained -> remainder from server.
  EXPECT_NEAR(out[2].peer_bits[index(LocalityLevel::kExchangePoint)],
              0.5 * kBeta * kDt, 1e-6);
  EXPECT_NEAR(out[2].server_bits, 0.5 * kBeta * kDt, 1e-6);
  check_conservation(actives, out);
}

TEST(CapacityMatcher, CrossIspOnlyWhenAllowed) {
  const CapacityMatcher matcher;
  std::vector<ActivePeer> actives{peer(0, 0, 5, 1), peer(1, 1, 5, 1)};
  std::vector<PeerAllocation> out;
  // ISP-friendly: the lone other peer is in another ISP -> server only.
  matcher.allocate(actives, 0, config(1.0, /*isp_friendly=*/true), out);
  EXPECT_NEAR(out[1].server_bits, kBeta * kDt, 1e-9);
  // Cross-ISP allowed: pulled as cross traffic.
  matcher.allocate(actives, 0, config(1.0, /*isp_friendly=*/false), out);
  EXPECT_NEAR(out[1].cross_isp_bits, kBeta * kDt, 1e-9);
}

TEST(CapacityMatcher, RatioAboveOneAllowsMultipleDownloaders) {
  // One strong uploader (q = 2β) can feed both downloaders entirely.
  const CapacityMatcher matcher;
  std::vector<ActivePeer> actives{peer(0, 0, 5, 1), peer(1, 0, 5, 1),
                                  peer(2, 0, 5, 1)};
  std::vector<PeerAllocation> out;
  matcher.allocate(actives, 0, config(2.0), out);
  double server = 0;
  for (const auto& a : out) server += a.server_bits;
  EXPECT_NEAR(server, kBeta * kDt, 1e-6);  // only the seed hits the server
}

TEST(MakeMatcher, Factory) {
  EXPECT_NE(make_matcher(MatcherKind::kExistence), nullptr);
  EXPECT_NE(make_matcher(MatcherKind::kCapacity), nullptr);
}

}  // namespace
}  // namespace cl
