// Tests for util/units.h — dimensional arithmetic and conversions.
#include "util/units.h"

#include <gtest/gtest.h>

namespace cl {
namespace {

using namespace cl::literals;

TEST(Units, BitsFromBytes) {
  EXPECT_DOUBLE_EQ(Bits::from_bytes(1.0).value(), 8.0);
  EXPECT_DOUBLE_EQ(Bits{16.0}.bytes(), 2.0);
}

TEST(Units, BitsGigabytes) {
  EXPECT_DOUBLE_EQ(Bits::from_bytes(2e9).gigabytes(), 2.0);
}

TEST(Units, SecondsConversions) {
  EXPECT_DOUBLE_EQ(Seconds::from_minutes(2).value(), 120.0);
  EXPECT_DOUBLE_EQ(Seconds::from_hours(1).minutes(), 60.0);
  EXPECT_DOUBLE_EQ(Seconds::from_days(1).hours(), 24.0);
  EXPECT_DOUBLE_EQ(Seconds{90.0}.minutes(), 1.5);
}

TEST(Units, BitRateConversions) {
  EXPECT_DOUBLE_EQ(BitRate::from_mbps(1.5).value(), 1.5e6);
  EXPECT_DOUBLE_EQ(BitRate{3e6}.mbps(), 3.0);
}

TEST(Units, VolumeEqualsRateTimesTime) {
  const Bits v = BitRate::from_mbps(1.5) * Seconds{10.0};
  EXPECT_DOUBLE_EQ(v.value(), 1.5e7);
  const Bits v2 = Seconds{10.0} * BitRate::from_mbps(1.5);
  EXPECT_DOUBLE_EQ(v.value(), v2.value());
}

TEST(Units, EnergyEqualsPerBitTimesVolume) {
  const Energy e = EnergyPerBit{100.0} * Bits{1e9};
  EXPECT_DOUBLE_EQ(e.nanojoules(), 1e11);
  EXPECT_DOUBLE_EQ(e.joules(), 100.0);
}

TEST(Units, EnergyKwh) {
  EXPECT_DOUBLE_EQ(Energy{3.6e15}.kwh(), 1.0);
}

TEST(Units, AdditionSubtraction) {
  const Bits a{10}, b{4};
  EXPECT_DOUBLE_EQ((a + b).value(), 14.0);
  EXPECT_DOUBLE_EQ((a - b).value(), 6.0);
}

TEST(Units, ScalarMultiplyDivide) {
  EXPECT_DOUBLE_EQ((Bits{10} * 3.0).value(), 30.0);
  EXPECT_DOUBLE_EQ((2.0 * Bits{10}).value(), 20.0);
  EXPECT_DOUBLE_EQ((Bits{10} / 4.0).value(), 2.5);
}

TEST(Units, RatioOfLikeQuantitiesIsDimensionless) {
  const double ratio = Bits{10} / Bits{4};
  EXPECT_DOUBLE_EQ(ratio, 2.5);
}

TEST(Units, CompoundAssignment) {
  Bits a{1};
  a += Bits{2};
  EXPECT_DOUBLE_EQ(a.value(), 3.0);
  a -= Bits{1};
  EXPECT_DOUBLE_EQ(a.value(), 2.0);
}

TEST(Units, Comparisons) {
  EXPECT_LT(Bits{1}, Bits{2});
  EXPECT_GT(Seconds{3}, Seconds{2});
  EXPECT_EQ(Bits{5}, Bits{5});
  EXPECT_GE(EnergyPerBit{2}, EnergyPerBit{2});
}

TEST(Units, DefaultIsZero) {
  EXPECT_DOUBLE_EQ(Bits{}.value(), 0.0);
  EXPECT_DOUBLE_EQ(Energy{}.value(), 0.0);
}

TEST(Units, Literals) {
  EXPECT_DOUBLE_EQ((1.5_mbps).value(), 1.5e6);
  EXPECT_DOUBLE_EQ((10_s).value(), 10.0);
  EXPECT_DOUBLE_EQ((30_min).value(), 1800.0);
  EXPECT_DOUBLE_EQ((100_njpb).value(), 100.0);
  EXPECT_DOUBLE_EQ((8_bits).bytes(), 1.0);
}

TEST(Units, ConstexprUsable) {
  constexpr Bits v = BitRate::from_mbps(1.0) * Seconds{8.0};
  static_assert(v.bytes() == 1e6);
  EXPECT_DOUBLE_EQ(v.value(), 8e6);
}

}  // namespace
}  // namespace cl
