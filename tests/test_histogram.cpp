// Tests for util/histogram.h — empirical CDFs/CCDFs and binning.
#include "util/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include "util/error.h"

namespace cl {
namespace {

TEST(EmpiricalCdf, EmptyInput) { EXPECT_TRUE(empirical_cdf({}).empty()); }

TEST(EmpiricalCdf, MonotoneAndEndsAtOne) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0, 2.0, 5.0});
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].x, cdf[i - 1].x);
    EXPECT_GT(cdf[i].y, cdf[i - 1].y);
  }
  EXPECT_DOUBLE_EQ(cdf.back().y, 1.0);
}

TEST(EmpiricalCdf, CollapsesDuplicates) {
  const auto cdf = empirical_cdf({1.0, 1.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 2u);
  EXPECT_DOUBLE_EQ(cdf[0].x, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].y, 0.75);
  EXPECT_DOUBLE_EQ(cdf[1].y, 1.0);
}

TEST(EmpiricalCcdf, ComplementOfCdf) {
  const auto ccdf = empirical_ccdf({1.0, 2.0, 3.0, 4.0});
  ASSERT_EQ(ccdf.size(), 4u);
  EXPECT_DOUBLE_EQ(ccdf[0].y, 0.75);
  EXPECT_DOUBLE_EQ(ccdf[3].y, 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamped to bin 0
  h.add(100.0);  // clamped to bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, EdgesAndCenters) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.edge(0), 0.0);
  EXPECT_DOUBLE_EQ(h.edge(5), 10.0);
  EXPECT_DOUBLE_EQ(h.center(2), 5.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

TEST(LogHistogram, DecadeBinning) {
  LogHistogram h(0.001, 1000.0, 6);  // one bin per decade
  h.add(0.005);  // [1e-3, 1e-2) -> bin 0
  h.add(0.5);    // [1e-1, 1)    -> bin 2
  h.add(500.0);  // [1e2, 1e3)   -> bin 5
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(5), 1u);
}

TEST(LogHistogram, UnderflowBucket) {
  LogHistogram h(0.1, 10.0, 4);
  h.add(0.0);
  h.add(-1.0);
  h.add(1.0);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(LogHistogram, GeometricCenters) {
  LogHistogram h(1.0, 100.0, 2);
  EXPECT_NEAR(h.center(0), std::pow(10.0, 0.5), 1e-9);
  EXPECT_NEAR(h.edge(1), 10.0, 1e-9);
}

TEST(LogHistogram, RejectsNonPositiveLo) {
  EXPECT_THROW(LogHistogram(0.0, 10.0, 4), InvalidArgument);
}

TEST(Thin, KeepsEndpoints) {
  std::vector<DistPoint> pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back({static_cast<double>(i), static_cast<double>(i) / 99.0});
  }
  const auto thinned = thin(pts, 10);
  ASSERT_EQ(thinned.size(), 10u);
  EXPECT_DOUBLE_EQ(thinned.front().x, 0.0);
  EXPECT_DOUBLE_EQ(thinned.back().x, 99.0);
}

TEST(Thin, ShortInputUnchanged) {
  const std::vector<DistPoint> pts{{1, 0.5}, {2, 1.0}};
  EXPECT_EQ(thin(pts, 10).size(), 2u);
}

TEST(Thin, RejectsTinyBudget) {
  EXPECT_THROW(thin({}, 1), InvalidArgument);
}

}  // namespace
}  // namespace cl
