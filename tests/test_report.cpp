// Tests for core/report.h — the shared report renderers.
#include "core/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/carbon_ledger.h"
#include "trace/synthetic.h"

namespace cl {
namespace {

const Metro& metro() {
  static const Metro m = Metro::london_top5();
  return m;
}

Trace tiny_trace() {
  TraceConfig config;
  config.days = 1;
  config.users = 500;
  config.exemplar_views = {30000};
  config.catalogue_tail = 20;
  config.tail_views = 2000;
  return TraceGenerator(config, metro()).generate();
}

TEST(Report, TraceStatsContainsAllRows) {
  const Trace trace = tiny_trace();
  std::ostringstream out;
  print_trace_stats(std::cout ? out : out, compute_stats(trace), trace.span);
  const std::string text = out.str();
  for (const char* needle :
       {"sessions", "distinct users", "distinct IP addresses",
        "total volume (GB)", "mean concurrency"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(Report, SwarmExperimentShowsBothModels) {
  const Trace trace = tiny_trace();
  const Analyzer analyzer(metro(), SimConfig{});
  std::ostringstream out;
  print_swarm_experiment(std::cout ? out : out,
                         analyzer.analyze_swarm(trace, 0));
  const std::string text = out.str();
  EXPECT_NE(text.find("Valancius"), std::string::npos);
  EXPECT_NE(text.find("Baliga"), std::string::npos);
  EXPECT_NE(text.find("S (theory)"), std::string::npos);
}

TEST(Report, AggregateShowsEnergyColumns) {
  const Trace trace = tiny_trace();
  const Analyzer analyzer(metro(), SimConfig{});
  std::ostringstream out;
  print_aggregate(out, analyzer.aggregate(trace));
  const std::string text = out.str();
  EXPECT_NE(text.find("baseline (kWh)"), std::string::npos);
  EXPECT_NE(text.find("hybrid (kWh)"), std::string::npos);
  EXPECT_NE(text.find("%"), std::string::npos);
}

TEST(Report, LedgerSummaryShowsHeadline) {
  const Trace trace = tiny_trace();
  const Analyzer analyzer(metro(), SimConfig{});
  const SimResult result = analyzer.simulate(trace);
  const CarbonLedger ledger(result, baliga_params());
  std::ostringstream out;
  print_ledger_summary(out, ledger);
  const std::string text = out.str();
  EXPECT_NE(text.find("carbon-free users"), std::string::npos);
  EXPECT_NE(text.find("Baliga"), std::string::npos);
  EXPECT_NE(text.find("system CCT"), std::string::npos);
}

}  // namespace
}  // namespace cl
