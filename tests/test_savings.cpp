// Tests for model/savings.h — the master equation (Eq. 12) and the Fig. 5
// component curves. Expected values cross-checked against the paper's
// reported ranges.
#include "model/savings.h"

#include <gtest/gtest.h>

#include "topology/isp_topology.h"
#include "util/error.h"

namespace cl {
namespace {

SavingsModel valancius_model() {
  return {valancius_params(), IspTopology::london_default()};
}

SavingsModel baliga_model() {
  return {baliga_params(), IspTopology::london_default()};
}

TEST(SavingsModel, PaperHeadlineValancius) {
  // Fig. 2 top-left: popular item at c ≈ 100, q/β = 1 saves ~0.45–0.48.
  EXPECT_NEAR(valancius_model().savings(100.0, 1.0), 0.4747, 0.001);
}

TEST(SavingsModel, PaperHeadlineBaliga) {
  // Fig. 2 bottom-left: ~0.29 under Baliga at c = 100, q/β = 1; the paper
  // reports 24–29 % for popular items.
  EXPECT_NEAR(baliga_model().savings(100.0, 1.0), 0.2903, 0.001);
}

TEST(SavingsModel, PopularRangeAcrossUploadRatios) {
  // Paper: savings remain above 10 % even at q/β = 0.4 for popular items.
  EXPECT_GT(valancius_model().savings(100.0, 0.4), 0.10);
  EXPECT_GT(baliga_model().savings(100.0, 0.4), 0.10);
}

TEST(SavingsModel, UnpopularItemsBelowTenPercent) {
  // Paper: savings for the ~1K-view item are always below 10 %.
  for (double r : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    EXPECT_LT(valancius_model().savings(0.25, r), 0.10);
    EXPECT_LT(baliga_model().savings(0.25, r), 0.10);
  }
}

TEST(SavingsModel, ZeroCapacityIsZeroSavings) {
  EXPECT_DOUBLE_EQ(valancius_model().savings(0.0, 1.0), 0.0);
}

TEST(SavingsModel, MonotoneInCapacity) {
  const auto model = valancius_model();
  double prev = model.savings(1e-3, 1.0);
  for (double c : {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    const double cur = model.savings(c, 1.0);
    EXPECT_GE(cur, prev - 1e-12) << "c=" << c;
    prev = cur;
  }
}

TEST(SavingsModel, MonotoneInUploadRatio) {
  const auto model = baliga_model();
  double prev = 0;
  for (double r : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const double cur = model.savings(10.0, r);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(SavingsModel, ApproachesCeiling) {
  for (const auto& model : {valancius_model(), baliga_model()}) {
    EXPECT_NEAR(model.savings(1e6, 1.0), model.savings_ceiling(1.0), 1e-3);
  }
}

TEST(SavingsModel, CeilingValues) {
  // (ψs − 2lγm − PUE·γexp)/ψs.
  EXPECT_NEAR(valancius_model().savings_ceiling(1.0),
              (1620.32 - 214.0 - 360.0) / 1620.32, 1e-9);
  EXPECT_NEAR(baliga_model().savings_ceiling(1.0),
              (615.56 - 214.0 - 1.2 * 144.86) / 615.56, 1e-9);
}

TEST(SavingsModel, UploadRatioAboveOneClamped) {
  const auto model = valancius_model();
  EXPECT_DOUBLE_EQ(model.savings(10.0, 1.0), model.savings(10.0, 3.0));
  EXPECT_DOUBLE_EQ(model.offload(10.0, 1.0), model.offload(10.0, 5.0));
}

TEST(SavingsModel, SavingsCanBeNegative) {
  // With an energy model whose P2P paths are *longer* than the CDN path,
  // the double modem cost plus the long path make hybrid delivery a net
  // loss at every capacity.
  auto p = hop_count_params("bad-p2p", EnergyPerBit{150.0}, 7, 9, 9, 9);
  const SavingsModel model(p, IspTopology::london_default());
  EXPECT_LT(model.savings(0.5, 1.0), 0.0);
  EXPECT_LT(model.savings(100.0, 1.0), 0.0);
  EXPECT_LT(model.savings_ceiling(1.0), 0.0);
}

TEST(SavingsModel, MeanPeerGammaBounds) {
  const auto model = valancius_model();
  for (double c : {0.01, 1.0, 100.0, 10000.0}) {
    const double g = model.mean_peer_gamma(c).value();
    EXPECT_GE(g, 300.0 - 1e-9);
    EXPECT_LE(g, 900.0 + 1e-9);
  }
  EXPECT_NEAR(model.mean_peer_gamma(1e5).value(), 300.0, 1.0);
  // Small-c limit is γp2p(L=2) ≈ 865.8, not γcore (see localisation tests).
  EXPECT_NEAR(model.mean_peer_gamma(1e-4).value(), 865.78, 0.5);
}

TEST(SavingsModel, MeanPeerGammaDecreasing) {
  const auto model = baliga_model();
  double prev = model.mean_peer_gamma(0.001).value();
  for (double c : {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0}) {
    const double cur = model.mean_peer_gamma(c).value();
    EXPECT_LE(cur, prev + 1e-9);
    prev = cur;
  }
}

TEST(SavingsModel, OffloadMatchesEquation3) {
  const auto model = valancius_model();
  EXPECT_NEAR(model.offload(1.0, 1.0), 0.3679, 1e-3);
}

TEST(SavingsModel, RejectsInvalidLocalisation) {
  LocalisationProbabilities loc{0.5, 0.1, 1.0};  // exp > pop
  EXPECT_THROW(SavingsModel(valancius_params(), loc), InvalidArgument);
  LocalisationProbabilities loc2{0.1, 0.5, 0.9};  // core != 1
  EXPECT_THROW(SavingsModel(valancius_params(), loc2), InvalidArgument);
}

TEST(SavingsModel, RejectsNegativeArguments) {
  const auto model = valancius_model();
  EXPECT_THROW((void)model.savings(-1.0, 1.0), InvalidArgument);
  EXPECT_THROW((void)model.savings(1.0, -1.0), InvalidArgument);
}

// ---- Fig. 5 component curves ----

TEST(Components, UserSavingsIsMinusOffload) {
  const auto model = valancius_model();
  for (double c : {0.1, 1.0, 10.0, 100.0}) {
    const auto comp = model.components(c, 1.0);
    EXPECT_NEAR(comp.user, -model.offload(c, 1.0), 1e-12);
  }
}

TEST(Components, CctStartsAtMinusOne) {
  const auto comp = valancius_model().components(1e-9, 1.0);
  EXPECT_NEAR(comp.carbon_credit_transfer, -1.0, 1e-6);
}

TEST(Components, CctAsymptotes) {
  // Paper Section V: +18 % (Valancius) and +58 % (Baliga) at G -> 1.
  EXPECT_NEAR(valancius_model().components(1e7, 1.0).carbon_credit_transfer,
              0.1837, 0.001);
  EXPECT_NEAR(baliga_model().components(1e7, 1.0).carbon_credit_transfer,
              0.5774, 0.001);
}

TEST(Components, CdnSavingsPositiveAndGrowing) {
  const auto model = baliga_model();
  double prev = 0;
  for (double c : {0.1, 1.0, 10.0, 100.0, 1000.0}) {
    const auto comp = model.components(c, 1.0);
    EXPECT_GE(comp.cdn, prev - 1e-12);
    EXPECT_GE(comp.cdn, 0.0);
    prev = comp.cdn;
  }
}

TEST(Components, CdnCeiling) {
  // At G -> 1 all server bits vanish; network still carries P2P at γexp:
  // CDN-side savings -> 1 − γexp/(γs+γcdn).
  const auto comp = valancius_model().components(1e7, 1.0);
  EXPECT_NEAR(comp.cdn, 1.0 - 300.0 / 1261.1, 1e-3);
}

TEST(Components, EndToEndMatchesSavings) {
  const auto model = valancius_model();
  for (double c : {0.5, 5.0, 50.0}) {
    EXPECT_DOUBLE_EQ(model.components(c, 1.0).end_to_end,
                     model.savings(c, 1.0));
  }
}

TEST(Components, EndToEndBetweenUserAndCdn) {
  // System savings sit between the users' loss and the CDN's gain.
  const auto model = baliga_model();
  for (double c : {1.0, 10.0, 100.0}) {
    const auto comp = model.components(c, 1.0);
    EXPECT_GT(comp.end_to_end, comp.user);
    EXPECT_LT(comp.end_to_end, comp.cdn);
  }
}

}  // namespace
}  // namespace cl
