// Tests for the energy substrate: Table IV parameters, the per-bit cost
// functions of Eqs. 4–6, and the traffic-to-energy accountant.
#include "energy/accounting.h"
#include "energy/cost_functions.h"
#include "energy/energy_params.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace cl {
namespace {

TEST(EnergyParams, ValanciusMatchesTableIV) {
  const auto p = valancius_params();
  EXPECT_DOUBLE_EQ(p.gamma_server.value(), 211.1);
  EXPECT_DOUBLE_EQ(p.gamma_modem.value(), 100.0);
  EXPECT_DOUBLE_EQ(p.gamma_cdn.value(), 1050.0);
  EXPECT_DOUBLE_EQ(p.gamma_p2p_at(LocalityLevel::kExchangePoint).value(),
                   300.0);
  EXPECT_DOUBLE_EQ(p.gamma_p2p_at(LocalityLevel::kPop).value(), 600.0);
  EXPECT_DOUBLE_EQ(p.gamma_p2p_at(LocalityLevel::kCore).value(), 900.0);
  EXPECT_DOUBLE_EQ(p.pue, 1.2);
  EXPECT_DOUBLE_EQ(p.loss, 1.07);
}

TEST(EnergyParams, BaligaMatchesTableIV) {
  const auto p = baliga_params();
  EXPECT_DOUBLE_EQ(p.gamma_server.value(), 281.3);
  EXPECT_DOUBLE_EQ(p.gamma_modem.value(), 100.0);
  EXPECT_DOUBLE_EQ(p.gamma_cdn.value(), 142.5);
  EXPECT_DOUBLE_EQ(p.gamma_p2p_at(LocalityLevel::kExchangePoint).value(),
                   144.86);
  EXPECT_DOUBLE_EQ(p.gamma_p2p_at(LocalityLevel::kPop).value(), 197.48);
  EXPECT_DOUBLE_EQ(p.gamma_p2p_at(LocalityLevel::kCore).value(), 245.74);
}

TEST(EnergyParams, StandardParamsAreValanciusThenBaliga) {
  const auto both = standard_params();
  ASSERT_EQ(both.size(), 2u);
  EXPECT_EQ(both[0].name, "Valancius");
  EXPECT_EQ(both[1].name, "Baliga");
}

TEST(EnergyParams, HopCountBuilder) {
  const auto p =
      hop_count_params("custom", EnergyPerBit{150.0}, 7, 2, 4, 6);
  EXPECT_DOUBLE_EQ(p.gamma_cdn.value(), 1050.0);
  EXPECT_DOUBLE_EQ(p.gamma_p2p_at(LocalityLevel::kExchangePoint).value(),
                   300.0);
  EXPECT_DOUBLE_EQ(p.gamma_p2p_at(LocalityLevel::kCore).value(), 900.0);
  EXPECT_EQ(p.name, "custom");
}

TEST(EnergyParams, ValidateRejectsNonMonotoneLocality) {
  auto p = valancius_params();
  p.gamma_p2p[index(LocalityLevel::kExchangePoint)] = EnergyPerBit{1000.0};
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(EnergyParams, ValidateRejectsNonPositive) {
  auto p = valancius_params();
  p.gamma_server = EnergyPerBit{0.0};
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(EnergyParams, ValidateRejectsSubUnityPue) {
  auto p = valancius_params();
  p.pue = 0.9;
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(CostFunctions, PsiServerValancius) {
  // ψs = PUE(γs + γcdn) + l·γm = 1.2·1261.1 + 107 = 1620.32 nJ/bit.
  const CostFunctions costs(valancius_params());
  EXPECT_NEAR(costs.psi_server().value(), 1620.32, 1e-9);
}

TEST(CostFunctions, PsiServerBaliga) {
  // ψs = 1.2·(281.3 + 142.5) + 107 = 615.56 nJ/bit.
  const CostFunctions costs(baliga_params());
  EXPECT_NEAR(costs.psi_server().value(), 615.56, 1e-9);
}

TEST(CostFunctions, PeerModemIsDoubleLoss) {
  // ψpᵐ = 2·l·γm = 214 nJ/bit for both parameter sets.
  for (const auto& p : standard_params()) {
    const CostFunctions costs(p);
    EXPECT_NEAR(costs.psi_peer_modem().value(), 214.0, 1e-9);
  }
}

TEST(CostFunctions, PsiPeerComposition) {
  const CostFunctions costs(valancius_params());
  for (auto level : kAllLocalityLevels) {
    EXPECT_DOUBLE_EQ(costs.psi_peer(level).value(),
                     costs.psi_peer_modem().value() +
                         costs.psi_peer_network(level).value());
  }
  EXPECT_NEAR(costs.psi_peer_network(LocalityLevel::kPop).value(),
              1.2 * 600.0, 1e-9);
}

TEST(CostFunctions, PeerAlwaysWinsAtEveryLevelForPaperParams) {
  // The paper's core observation: even core-localised P2P beats the CDN
  // path under both parameter sets.
  for (const auto& p : standard_params()) {
    const CostFunctions costs(p);
    for (auto level : kAllLocalityLevels) {
      EXPECT_TRUE(costs.peer_wins(level)) << p.name << " " << to_string(level);
    }
  }
}

TEST(CostFunctions, PeerCanLoseWithCheapCdnPath) {
  // A hop-count model where the CDN path is shorter than the P2P core path
  // makes core-level P2P lose.
  auto p = hop_count_params("cheap-cdn", EnergyPerBit{150.0}, 2, 2, 4, 6);
  const CostFunctions costs(p);
  EXPECT_FALSE(costs.peer_wins(LocalityLevel::kCore));
  EXPECT_TRUE(costs.peer_wins(LocalityLevel::kExchangePoint));
}

TEST(CostFunctions, EnergyScalesWithVolume) {
  const CostFunctions costs(baliga_params());
  const Energy one = costs.server_energy(Bits{1e6});
  const Energy ten = costs.server_energy(Bits{1e7});
  EXPECT_NEAR(ten.value(), 10.0 * one.value(), 1e-3);
}

TEST(TrafficBreakdown, TotalsAndOffload) {
  TrafficBreakdown t;
  t.server = Bits{600};
  t.peer[index(LocalityLevel::kExchangePoint)] = Bits{300};
  t.peer[index(LocalityLevel::kCore)] = Bits{100};
  EXPECT_DOUBLE_EQ(t.peer_total().value(), 400.0);
  EXPECT_DOUBLE_EQ(t.total().value(), 1000.0);
  EXPECT_DOUBLE_EQ(t.offload_fraction(), 0.4);
}

TEST(TrafficBreakdown, CrossIspCountsAsPeer) {
  TrafficBreakdown t;
  t.server = Bits{500};
  t.cross_isp = Bits{500};
  EXPECT_DOUBLE_EQ(t.offload_fraction(), 0.5);
}

TEST(TrafficBreakdown, EmptyOffloadIsZero) {
  EXPECT_DOUBLE_EQ(TrafficBreakdown{}.offload_fraction(), 0.0);
}

TEST(TrafficBreakdown, Addition) {
  TrafficBreakdown a, b;
  a.server = Bits{1};
  a.peer[0] = Bits{2};
  b.server = Bits{10};
  b.peer[0] = Bits{20};
  b.cross_isp = Bits{5};
  const TrafficBreakdown sum = a + b;
  EXPECT_DOUBLE_EQ(sum.server.value(), 11.0);
  EXPECT_DOUBLE_EQ(sum.peer[0].value(), 22.0);
  EXPECT_DOUBLE_EQ(sum.cross_isp.value(), 5.0);
}

TEST(EnergyAccountant, BaselineMatchesPsiServer) {
  const EnergyAccountant acc{CostFunctions(valancius_params())};
  const Bits volume{1e9};
  EXPECT_NEAR(acc.baseline(volume).total().value(), 1620.32 * 1e9, 1.0);
}

TEST(EnergyAccountant, HybridWithNoPeersEqualsBaseline) {
  const EnergyAccountant acc{CostFunctions(baliga_params())};
  TrafficBreakdown t;
  t.server = Bits{1e9};
  EXPECT_NEAR(acc.hybrid(t).total().value(),
              acc.baseline(Bits{1e9}).total().value(), 1.0);
  EXPECT_NEAR(acc.savings(t), 0.0, 1e-12);
}

TEST(EnergyAccountant, FullExpOffloadSavingsMatchHandComputation) {
  // All traffic peer-delivered within exchange points:
  // E = (2lγm + PUE·γexp)·T vs baseline ψs·T.
  const auto p = valancius_params();
  const EnergyAccountant acc{CostFunctions(p)};
  TrafficBreakdown t;
  t.peer[index(LocalityLevel::kExchangePoint)] = Bits{1e9};
  const double hybrid = 214.0 + 1.2 * 300.0;  // 574
  EXPECT_NEAR(acc.savings(t), 1.0 - hybrid / 1620.32, 1e-9);
}

TEST(EnergyAccountant, ModemCountsUploadAndDownload) {
  const auto p = baliga_params();
  const EnergyAccountant acc{CostFunctions(p)};
  TrafficBreakdown t;
  t.peer[index(LocalityLevel::kPop)] = Bits{1e6};
  // user_modem = lγm·(download 1e6 + upload 1e6) = 107·2e6.
  EXPECT_NEAR(acc.hybrid(t).user_modem.value(), 107.0 * 2e6, 1e-3);
}

TEST(EnergyAccountant, SavingsOfEmptyTrafficIsZero) {
  const EnergyAccountant acc{CostFunctions(baliga_params())};
  EXPECT_DOUBLE_EQ(acc.savings(TrafficBreakdown{}), 0.0);
}

TEST(EnergyAccountant, CrossIspPricedAtGammaCross) {
  auto p = valancius_params();
  const EnergyAccountant acc{CostFunctions(p)};
  TrafficBreakdown t;
  t.cross_isp = Bits{1e6};
  EXPECT_NEAR(acc.hybrid(t).peer_network.value(),
              p.pue * p.gamma_cross_isp.value() * 1e6, 1e-3);
}

TEST(EnergyBreakdown, TotalIsSumOfParts) {
  EnergyBreakdown e;
  e.server_side = Energy{1};
  e.peer_network = Energy{2};
  e.user_modem = Energy{3};
  EXPECT_DOUBLE_EQ(e.total().value(), 6.0);
}

}  // namespace
}  // namespace cl
