// Tests for ext/adoption.h — the incentive participation fixed point.
#include "ext/adoption.h"

#include <gtest/gtest.h>

#include "model/carbon_credit.h"
#include "topology/isp_topology.h"
#include "util/error.h"

namespace cl {
namespace {

AdoptionModel baliga_adoption() {
  return AdoptionModel(
      SavingsModel(baliga_params(), IspTopology::london_default()));
}

AdoptionConfig popular_config() {
  AdoptionConfig config;
  config.swarm_capacity = 50;
  config.uniform_thresholds(1000, -0.5, 0.5);
  return config;
}

TEST(Adoption, WillingFractionCounting) {
  const std::vector<double> thresholds{-0.5, 0.0, 0.5};
  EXPECT_DOUBLE_EQ(AdoptionModel::willing_fraction(-1.0, thresholds), 0.0);
  EXPECT_DOUBLE_EQ(AdoptionModel::willing_fraction(0.0, thresholds),
                   2.0 / 3.0);
  EXPECT_DOUBLE_EQ(AdoptionModel::willing_fraction(1.0, thresholds), 1.0);
}

TEST(Adoption, CctDecreasesWithParticipation) {
  // More sharers split the same offloadable demand: credits dilute.
  const auto model = baliga_adoption();
  const auto config = popular_config();
  double prev = model.cct_at(0.05, config);
  for (double a : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const double cur = model.cct_at(a, config);
    EXPECT_LE(cur, prev + 1e-12) << "a=" << a;
    prev = cur;
  }
}

TEST(Adoption, FullParticipationMatchesEquation13) {
  // At a = 1 on a huge swarm every user uploads G ≈ 1 of their demand:
  // the payoff is exactly the asymptotic system CCT of Eq. 13.
  const auto model = baliga_adoption();
  auto config = popular_config();
  config.swarm_capacity = 1e5;
  EXPECT_NEAR(model.cct_at(1.0, config), cct_ceiling(baliga_params()), 0.01);
}

TEST(Adoption, ConvergesToInteriorFixedPoint) {
  const auto model = baliga_adoption();
  const auto config = popular_config();
  const auto result = model.solve(config);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.participation, 0.3);
  EXPECT_LT(result.participation, 1.0);
  // Fixed point condition: willing(cct(a)) ≈ a (up to threshold grid).
  EXPECT_NEAR(AdoptionModel::willing_fraction(result.cct, config.thresholds),
              result.participation, 0.01);
}

TEST(Adoption, NicheContentAttractsFewSharers) {
  const auto model = baliga_adoption();
  auto popular = popular_config();
  auto niche = popular_config();
  niche.swarm_capacity = 0.05;
  const auto rp = model.solve(popular);
  const auto rn = model.solve(niche);
  EXPECT_LT(rn.participation, rp.participation);
  EXPECT_LT(rn.cct, 0.0);  // niche sharers stay carbon negative
}

TEST(Adoption, GenerousCreditsRaiseParticipation) {
  // Baliga's bigger server saving pays more credit than Valancius.
  const AdoptionModel valancius(SavingsModel(
      valancius_params(), IspTopology::london_default()));
  const auto config = popular_config();
  EXPECT_GT(baliga_adoption().solve(config).participation,
            valancius.solve(config).participation);
}

TEST(Adoption, AltruistsOnlyStillJoin) {
  // If every user demands CCT >= 0.9 (unreachable), nobody participates.
  const auto model = baliga_adoption();
  auto config = popular_config();
  config.uniform_thresholds(100, 0.9, 1.5);
  const auto result = model.solve(config);
  EXPECT_LT(result.participation, 0.01);
}

TEST(Adoption, TrajectoryRecorded) {
  const auto model = baliga_adoption();
  const auto result = model.solve(popular_config());
  EXPECT_GE(result.trajectory.size(), 2u);
  EXPECT_DOUBLE_EQ(result.trajectory.front(), 0.3);
}

TEST(Adoption, UniformThresholdsHelper) {
  AdoptionConfig config;
  config.uniform_thresholds(3, -1.0, 1.0);
  ASSERT_EQ(config.thresholds.size(), 3u);
  EXPECT_DOUBLE_EQ(config.thresholds[0], -1.0);
  EXPECT_DOUBLE_EQ(config.thresholds[1], 0.0);
  EXPECT_DOUBLE_EQ(config.thresholds[2], 1.0);
}

TEST(Adoption, RejectsBadInput) {
  const auto model = baliga_adoption();
  AdoptionConfig config;  // empty thresholds
  EXPECT_THROW(model.solve(config), InvalidArgument);
  config.uniform_thresholds(10, 0, 1);
  EXPECT_THROW((void)model.cct_at(1.5, config), InvalidArgument);
  EXPECT_THROW((void)AdoptionModel::willing_fraction(0.0, {}), InvalidArgument);
}

}  // namespace
}  // namespace cl
