// Tests for core/carbon_ledger.h — per-user carbon accounting (Fig. 6).
#include "core/carbon_ledger.h"

#include <gtest/gtest.h>

#include <array>

#include "carbon/intensity_curve.h"
#include "model/carbon_credit.h"
#include "sim/hybrid_sim.h"
#include "trace/synthetic.h"
#include "util/error.h"

namespace cl {
namespace {

const Metro& metro() {
  static const Metro m = Metro::london_top5();
  return m;
}

SimResult fabricated_result() {
  SimResult result;
  // User 0: pure downloader. User 1: balanced sharer. User 2: heavy seeder.
  result.users[0] = {Bits{1e9}, Bits{0}};
  result.users[1] = {Bits{1e9}, Bits{0.8e9}};
  result.users[2] = {Bits{1e9}, Bits{3e9}};
  return result;
}

TEST(CarbonLedger, EntriesSortedByUser) {
  const CarbonLedger ledger(fabricated_result(), baliga_params());
  ASSERT_EQ(ledger.entries().size(), 3u);
  EXPECT_EQ(ledger.entries()[0].user, 0u);
  EXPECT_EQ(ledger.entries()[2].user, 2u);
}

TEST(CarbonLedger, PerUserCctMatchesModel) {
  const auto params = baliga_params();
  const CarbonLedger ledger(fabricated_result(), params);
  EXPECT_DOUBLE_EQ(ledger.entries()[0].cct, -1.0);
  EXPECT_NEAR(ledger.entries()[1].cct,
              per_user_cct(Bits{1e9}, Bits{0.8e9}, params), 1e-12);
  EXPECT_GT(ledger.entries()[2].cct, 0.0);
}

TEST(CarbonLedger, FractionCarbonFree) {
  const CarbonLedger ledger(fabricated_result(), baliga_params());
  // Users 1 (CCT>0 under Baliga: G*≈0.46 < 0.8) and 2 are carbon-free.
  EXPECT_NEAR(ledger.fraction_carbon_free(), 2.0 / 3.0, 1e-12);
}

TEST(CarbonLedger, ValanciusStricterThanBaliga) {
  // Valancius' carbon-neutral offload (0.73) is above user 1's 0.8 ratio?
  // 0.8/1.0 = 0.8 > 0.73: user 1 is carbon free under both; craft a user
  // at 0.6 to split the models.
  SimResult result;
  result.users[0] = {Bits{1e9}, Bits{0.6e9}};
  const CarbonLedger valancius(result, valancius_params());
  const CarbonLedger baliga(result, baliga_params());
  EXPECT_LT(valancius.entries()[0].cct, 0.0);
  EXPECT_GT(baliga.entries()[0].cct, 0.0);
}

TEST(CarbonLedger, TotalsAndSystemCct) {
  const auto params = valancius_params();
  const CarbonLedger ledger(fabricated_result(), params);
  const double uploaded = 3.8e9;
  const double moved = 3e9 + 3.8e9;
  EXPECT_NEAR(ledger.total_credits().value(),
              params.pue * params.gamma_server.value() * uploaded, 1.0);
  EXPECT_NEAR(ledger.total_user_energy().value(),
              params.loss * params.gamma_modem.value() * moved, 1.0);
  EXPECT_NEAR(ledger.system_cct(),
              (ledger.total_credits().value() -
               ledger.total_user_energy().value()) /
                  ledger.total_user_energy().value(),
              1e-12);
}

TEST(CarbonLedger, EmptyResult) {
  const CarbonLedger ledger(SimResult{}, baliga_params());
  EXPECT_TRUE(ledger.entries().empty());
  EXPECT_DOUBLE_EQ(ledger.fraction_carbon_free(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.median_cct(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.system_cct(), 0.0);
}

TEST(CarbonLedger, MedianCct) {
  const CarbonLedger ledger(fabricated_result(), baliga_params());
  const auto values = ledger.cct_values();
  ASSERT_EQ(values.size(), 3u);
  // Median of {-1, cct(0.8), cct(3.0)} is the middle user's value.
  EXPECT_NEAR(ledger.median_cct(),
              per_user_cct(Bits{1e9}, Bits{0.8e9}, baliga_params()), 1e-12);
}

TEST(CarbonLedger, ZeroTrafficUserIsNeutral) {
  // A user who moved nothing at all has no footprint and no credits:
  // CCT is exactly 0 (carbon-neutral), and they count as carbon-free.
  SimResult result;
  result.users[0] = {Bits{0}, Bits{0}};
  const CarbonLedger ledger(result, baliga_params());
  ASSERT_EQ(ledger.entries().size(), 1u);
  EXPECT_DOUBLE_EQ(ledger.entries()[0].cct, 0.0);
  EXPECT_DOUBLE_EQ(ledger.fraction_carbon_free(), 1.0);
  EXPECT_DOUBLE_EQ(ledger.total_credits().value(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.total_user_energy().value(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.system_cct(), 0.0);
}

TEST(CarbonLedger, UploadOnlyUserHitsTheCctCeilingForm) {
  // D = 0: CCT = PUE·γs/(l·γm) − 1, the per-bit credit/cost ratio —
  // independent of how much was uploaded.
  const auto params = valancius_params();
  SimResult small, large;
  small.users[0] = {Bits{0}, Bits{1e9}};
  // ×8: an exact power-of-two scaling, so the ratio is bitwise identical.
  large.users[0] = {Bits{0}, Bits{8e9}};
  const CarbonLedger a(small, params);
  const CarbonLedger b(large, params);
  const double expected = params.pue * params.gamma_server.value() /
                              (params.loss * params.gamma_modem.value()) -
                          1.0;
  EXPECT_NEAR(a.entries()[0].cct, expected, 1e-12);
  EXPECT_DOUBLE_EQ(a.entries()[0].cct, b.entries()[0].cct);
  EXPECT_GT(a.entries()[0].cct, 0.0);
}

TEST(CarbonLedger, CreditCostBoundaryPueGammaSEqualsLossGammaM) {
  // PUE·γs == l·γm: a credited bit exactly pays for a moved bit, so
  // CCT_u = U/(D+U) − 1 — zero for an upload-only user, negative for
  // anyone who downloads, and carbon neutrality is unreachable.
  EnergyParams params = baliga_params();
  params.pue = 1.0;
  params.loss = 1.0;
  params.gamma_server = params.gamma_modem;
  params.validate();

  SimResult result;
  result.users[0] = {Bits{0}, Bits{5e9}};    // upload-only: exactly neutral
  result.users[1] = {Bits{1e9}, Bits{1e9}};  // balanced: -0.5
  result.users[2] = {Bits{1e9}, Bits{0}};    // pure downloader: -1
  const CarbonLedger ledger(result, params);
  EXPECT_DOUBLE_EQ(ledger.entries()[0].cct, 0.0);
  EXPECT_DOUBLE_EQ(ledger.entries()[1].cct, -0.5);
  EXPECT_DOUBLE_EQ(ledger.entries()[2].cct, -1.0);
  EXPECT_NEAR(ledger.fraction_carbon_free(), 1.0 / 3.0, 1e-12);
  EXPECT_THROW((void)carbon_neutral_offload(params), InvalidArgument);
}

TEST(CarbonLedger, WeightedMetricsNeedHourlyFlows) {
  const CarbonLedger ledger(fabricated_result(), baliga_params());
  EXPECT_TRUE(ledger.hourly_flows().empty());
  const auto& flat = IntensityRegistry::instance().get(kFlatIntensityName);
  EXPECT_THROW((void)ledger.total_credits_gco2(flat), InvalidArgument);
  EXPECT_THROW((void)ledger.weighted_system_cct(flat), InvalidArgument);
}

TEST(CarbonLedger, WeightedTotalsMatchHandComputedGrams) {
  // Two hours with different flows; a custom two-level curve. Credits
  // gCO₂ = Σ_h I_h · (PUE·γs·U_h in kWh).
  const auto params = valancius_params();
  SimResult result;
  result.hourly.assign(2, std::vector<TrafficBreakdown>(1));
  result.hourly[0][0].server = Bits{6e9};
  result.hourly[0][0].peer[0] = Bits{2e9};
  result.hourly[1][0].server = Bits{1e9};
  result.hourly[1][0].peer[1] = Bits{4e9};
  std::array<double, 24> hours{};
  hours.fill(100.0);
  hours[1] = 400.0;
  const IntensityCurve curve("two_level", hours);

  const CarbonLedger ledger(result, params);
  ASSERT_EQ(ledger.hourly_flows().size(), 2u);
  EXPECT_DOUBLE_EQ(ledger.hourly_flows()[0].delivered.value(), 8e9);
  EXPECT_DOUBLE_EQ(ledger.hourly_flows()[0].peer.value(), 2e9);
  EXPECT_DOUBLE_EQ(ledger.hourly_flows()[1].peer.value(), 4e9);

  const double expected_credits =
      100.0 * credit_energy(Bits{2e9}, params).kwh() +
      400.0 * credit_energy(Bits{4e9}, params).kwh();
  const double expected_user =
      100.0 * user_energy(Bits{8e9}, Bits{2e9}, params).kwh() +
      400.0 * user_energy(Bits{5e9}, Bits{4e9}, params).kwh();
  EXPECT_NEAR(ledger.total_credits_gco2(curve), expected_credits, 1e-12);
  EXPECT_NEAR(ledger.total_user_gco2(curve), expected_user, 1e-12);
  EXPECT_NEAR(ledger.weighted_system_cct(curve),
              (expected_credits - expected_user) / expected_user, 1e-12);
}

TEST(CarbonLedger, FlatCurveWeightedCctMatchesUnweighted) {
  // The backward-compatibility contract: under a constant curve the
  // intensity cancels out of the CCT ratio.
  TraceConfig tc;
  tc.days = 2;
  tc.users = 1500;
  tc.exemplar_views = {15000};
  tc.catalogue_tail = 80;
  tc.tail_views = 4000;
  const Trace trace = TraceGenerator(tc, metro()).generate();
  const auto result = HybridSimulator(metro(), SimConfig{}).run(trace);
  const auto& flat = IntensityRegistry::instance().get(kFlatIntensityName);
  for (const auto& params : standard_params()) {
    const CarbonLedger ledger(result, params);
    ASSERT_FALSE(ledger.hourly_flows().empty());
    EXPECT_NEAR(ledger.weighted_system_cct(flat), ledger.system_cct(), 1e-9);
    // Absolute grams are the kWh totals times the constant intensity
    // (hourly flows cover the same bytes the per-user entries do).
    EXPECT_NEAR(ledger.total_credits_gco2(flat),
                ledger.total_credits().kwh() * flat.at_hour(0),
                1e-9 * ledger.total_credits_gco2(flat));
    EXPECT_NEAR(ledger.total_user_gco2(flat),
                ledger.total_user_energy().kwh() * flat.at_hour(0),
                1e-9 * ledger.total_user_gco2(flat));
  }
}

TEST(CarbonLedger, SimulationEndToEnd) {
  TraceConfig tc;
  tc.days = 3;
  tc.users = 2000;
  tc.exemplar_views = {20000};
  tc.catalogue_tail = 100;
  tc.tail_views = 5000;
  const Trace trace = TraceGenerator(tc, metro()).generate();
  const auto result = HybridSimulator(metro(), SimConfig{}).run(trace);
  const CarbonLedger baliga(result, baliga_params());
  const CarbonLedger valancius(result, valancius_params());
  EXPECT_GT(baliga.entries().size(), 500u);
  // The paper's ordering: Baliga makes more users carbon-free than
  // Valancius (Fig. 6).
  EXPECT_GT(baliga.fraction_carbon_free(),
            valancius.fraction_carbon_free());
  // Every CCT is >= -1 by construction.
  for (const auto& e : baliga.entries()) {
    EXPECT_GE(e.cct, -1.0);
  }
}

}  // namespace
}  // namespace cl
