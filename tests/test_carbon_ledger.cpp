// Tests for core/carbon_ledger.h — per-user carbon accounting (Fig. 6).
#include "core/carbon_ledger.h"

#include <gtest/gtest.h>

#include "model/carbon_credit.h"
#include "sim/hybrid_sim.h"
#include "trace/synthetic.h"

namespace cl {
namespace {

const Metro& metro() {
  static const Metro m = Metro::london_top5();
  return m;
}

SimResult fabricated_result() {
  SimResult result;
  // User 0: pure downloader. User 1: balanced sharer. User 2: heavy seeder.
  result.users[0] = {Bits{1e9}, Bits{0}};
  result.users[1] = {Bits{1e9}, Bits{0.8e9}};
  result.users[2] = {Bits{1e9}, Bits{3e9}};
  return result;
}

TEST(CarbonLedger, EntriesSortedByUser) {
  const CarbonLedger ledger(fabricated_result(), baliga_params());
  ASSERT_EQ(ledger.entries().size(), 3u);
  EXPECT_EQ(ledger.entries()[0].user, 0u);
  EXPECT_EQ(ledger.entries()[2].user, 2u);
}

TEST(CarbonLedger, PerUserCctMatchesModel) {
  const auto params = baliga_params();
  const CarbonLedger ledger(fabricated_result(), params);
  EXPECT_DOUBLE_EQ(ledger.entries()[0].cct, -1.0);
  EXPECT_NEAR(ledger.entries()[1].cct,
              per_user_cct(Bits{1e9}, Bits{0.8e9}, params), 1e-12);
  EXPECT_GT(ledger.entries()[2].cct, 0.0);
}

TEST(CarbonLedger, FractionCarbonFree) {
  const CarbonLedger ledger(fabricated_result(), baliga_params());
  // Users 1 (CCT>0 under Baliga: G*≈0.46 < 0.8) and 2 are carbon-free.
  EXPECT_NEAR(ledger.fraction_carbon_free(), 2.0 / 3.0, 1e-12);
}

TEST(CarbonLedger, ValanciusStricterThanBaliga) {
  // Valancius' carbon-neutral offload (0.73) is above user 1's 0.8 ratio?
  // 0.8/1.0 = 0.8 > 0.73: user 1 is carbon free under both; craft a user
  // at 0.6 to split the models.
  SimResult result;
  result.users[0] = {Bits{1e9}, Bits{0.6e9}};
  const CarbonLedger valancius(result, valancius_params());
  const CarbonLedger baliga(result, baliga_params());
  EXPECT_LT(valancius.entries()[0].cct, 0.0);
  EXPECT_GT(baliga.entries()[0].cct, 0.0);
}

TEST(CarbonLedger, TotalsAndSystemCct) {
  const auto params = valancius_params();
  const CarbonLedger ledger(fabricated_result(), params);
  const double uploaded = 3.8e9;
  const double moved = 3e9 + 3.8e9;
  EXPECT_NEAR(ledger.total_credits().value(),
              params.pue * params.gamma_server.value() * uploaded, 1.0);
  EXPECT_NEAR(ledger.total_user_energy().value(),
              params.loss * params.gamma_modem.value() * moved, 1.0);
  EXPECT_NEAR(ledger.system_cct(),
              (ledger.total_credits().value() -
               ledger.total_user_energy().value()) /
                  ledger.total_user_energy().value(),
              1e-12);
}

TEST(CarbonLedger, EmptyResult) {
  const CarbonLedger ledger(SimResult{}, baliga_params());
  EXPECT_TRUE(ledger.entries().empty());
  EXPECT_DOUBLE_EQ(ledger.fraction_carbon_free(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.median_cct(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.system_cct(), 0.0);
}

TEST(CarbonLedger, MedianCct) {
  const CarbonLedger ledger(fabricated_result(), baliga_params());
  const auto values = ledger.cct_values();
  ASSERT_EQ(values.size(), 3u);
  // Median of {-1, cct(0.8), cct(3.0)} is the middle user's value.
  EXPECT_NEAR(ledger.median_cct(),
              per_user_cct(Bits{1e9}, Bits{0.8e9}, baliga_params()), 1e-12);
}

TEST(CarbonLedger, SimulationEndToEnd) {
  TraceConfig tc;
  tc.days = 3;
  tc.users = 2000;
  tc.exemplar_views = {20000};
  tc.catalogue_tail = 100;
  tc.tail_views = 5000;
  const Trace trace = TraceGenerator(tc, metro()).generate();
  const auto result = HybridSimulator(metro(), SimConfig{}).run(trace);
  const CarbonLedger baliga(result, baliga_params());
  const CarbonLedger valancius(result, valancius_params());
  EXPECT_GT(baliga.entries().size(), 500u);
  // The paper's ordering: Baliga makes more users carbon-free than
  // Valancius (Fig. 6).
  EXPECT_GT(baliga.fraction_carbon_free(),
            valancius.fraction_carbon_free());
  // Every CCT is >= -1 by construction.
  for (const auto& e : baliga.entries()) {
    EXPECT_GE(e.cct, -1.0);
  }
}

}  // namespace
}  // namespace cl
