// Tests for util/stats.h — streaming statistics and series comparison.
#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace cl {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(5);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25025, 1e-3);
}

TEST(QuantileSorted, Interpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0 / 3.0), 2.0);
}

TEST(QuantileSorted, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile_sorted({7.0}, 0.5), 7.0);
}

TEST(QuantileSorted, RejectsBadInput) {
  EXPECT_THROW((void)quantile_sorted({}, 0.5), InvalidArgument);
  EXPECT_THROW((void)quantile_sorted({1.0}, 1.5), InvalidArgument);
}

TEST(Summarize, Empty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(Summarize, KnownValues) {
  const Summary s = summarize({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

TEST(MeanAbsRelativeError, Identity) {
  EXPECT_DOUBLE_EQ(mean_abs_relative_error({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(MeanAbsRelativeError, KnownError) {
  // |1.1-1|/1 = 0.1 ; |1.8-2|/2 = 0.1 -> mean 0.1.
  EXPECT_NEAR(mean_abs_relative_error({1.1, 1.8}, {1.0, 2.0}), 0.1, 1e-12);
}

TEST(MeanAbsRelativeError, SkipsNearZeroReference) {
  EXPECT_NEAR(mean_abs_relative_error({5.0, 1.1}, {0.0, 1.0}), 0.1, 1e-12);
}

TEST(MeanAbsRelativeError, RejectsLengthMismatch) {
  EXPECT_THROW((void)mean_abs_relative_error({1.0}, {1.0, 2.0}), InvalidArgument);
}

TEST(Pearson, PerfectCorrelation) {
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero) {
  EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(Pearson, IndependentNearZero) {
  Rng rng(9);
  std::vector<double> a, b;
  for (int i = 0; i < 20000; ++i) {
    a.push_back(rng.uniform());
    b.push_back(rng.uniform());
  }
  EXPECT_NEAR(pearson(a, b), 0.0, 0.02);
}

}  // namespace
}  // namespace cl
