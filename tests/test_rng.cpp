// Tests for util/rng.h — determinism and distribution sanity.
#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"
#include "util/stats.h"

namespace cl {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformRangeRejectsInverted) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(2.0, 1.0), InvalidArgument);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_index(7), 7u);
  }
}

TEST(Rng, UniformIndexIsUniform) {
  Rng rng(17);
  std::array<int, 5> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) EXPECT_NEAR(c, n / 5.0, n * 0.01);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_index(0), InvalidArgument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(31);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(31);
  EXPECT_THROW(rng.exponential(0.0), InvalidArgument);
  EXPECT_THROW(rng.exponential(-1.0), InvalidArgument);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(37);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) {
    s.add(static_cast<double>(rng.poisson(3.0)));
  }
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
  EXPECT_NEAR(s.variance(), 3.0, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesPtrs) {
  Rng rng(41);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) {
    s.add(static_cast<double>(rng.poisson(120.0)));
  }
  EXPECT_NEAR(s.mean(), 120.0, 0.5);
  EXPECT_NEAR(s.variance(), 120.0, 3.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, NormalMoments) {
  Rng rng(47);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.03);
  EXPECT_NEAR(s.stddev(), 2.0, 0.03);
}

TEST(Rng, LognormalMean) {
  Rng rng(53);
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2).
  const double mu = 0.2, sigma = 0.5;
  RunningStats s;
  for (int i = 0; i < 300000; ++i) s.add(rng.lognormal(mu, sigma));
  EXPECT_NEAR(s.mean(), std::exp(mu + sigma * sigma / 2), 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(61);
  Rng child = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(ZipfSampler, PmfSumsToOne) {
  const ZipfSampler zipf(100, 1.0);
  double sum = 0;
  for (std::size_t k = 0; k < zipf.size(); ++k) sum += zipf.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfSampler, PmfIsDecreasing) {
  const ZipfSampler zipf(50, 0.9);
  for (std::size_t k = 1; k < zipf.size(); ++k) {
    EXPECT_GE(zipf.pmf(k - 1), zipf.pmf(k));
  }
}

TEST(ZipfSampler, HeadToTailRatioMatchesExponent) {
  const ZipfSampler zipf(1000, 1.0);
  EXPECT_NEAR(zipf.pmf(0) / zipf.pmf(9), 10.0, 1e-9);
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  const ZipfSampler zipf(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_NEAR(zipf.pmf(k), 0.1, 1e-12);
}

TEST(ZipfSampler, EmpiricalFrequencyMatchesPmf) {
  const ZipfSampler zipf(20, 1.2);
  Rng rng(67);
  std::vector<int> counts(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf(rng)];
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.pmf(k), 0.01);
  }
}

TEST(DiscreteSampler, RespectsWeights) {
  const DiscreteSampler sampler({1.0, 3.0, 6.0});
  EXPECT_NEAR(sampler.probability(0), 0.1, 1e-12);
  EXPECT_NEAR(sampler.probability(1), 0.3, 1e-12);
  EXPECT_NEAR(sampler.probability(2), 0.6, 1e-12);
}

TEST(DiscreteSampler, ZeroWeightNeverSampled) {
  const DiscreteSampler sampler({1.0, 0.0, 1.0});
  Rng rng(71);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(sampler(rng), 1u);
}

TEST(DiscreteSampler, RejectsInvalidWeights) {
  EXPECT_THROW(DiscreteSampler({}), InvalidArgument);
  EXPECT_THROW(DiscreteSampler({0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(DiscreteSampler({1.0, -1.0}), InvalidArgument);
}

}  // namespace
}  // namespace cl
