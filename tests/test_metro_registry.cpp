// Tests for topology/metro_registry.h — the named metro presets — plus
// the localisation regression battery: Table III probabilities for
// london_top5 pinned to the paper's values (they must never move), and
// the analogous closed-form pins for the us_sparse / fiber_dense trees
// so any future tree edit is caught, not absorbed.
#include "topology/metro_registry.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "model/savings.h"
#include "util/error.h"
#include "util/rng.h"

namespace cl {
namespace {

// ---------------------------------------------------------------- registry

TEST(MetroRegistry, ContainsAllPresetsInOrder) {
  const auto names = MetroRegistry::instance().names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "london_top5");
  EXPECT_EQ(names[1], "us_sparse");
  EXPECT_EQ(names[2], "fiber_dense");
  for (const auto& name : names) {
    EXPECT_TRUE(MetroRegistry::instance().contains(name));
  }
  EXPECT_FALSE(MetroRegistry::instance().contains("narnia"));
  EXPECT_FALSE(MetroRegistry::instance().contains(""));
}

TEST(MetroRegistry, DefaultNameIsLondon) {
  EXPECT_EQ(std::string(kDefaultMetroName), "london_top5");
  EXPECT_TRUE(MetroRegistry::instance().contains(kDefaultMetroName));
}

TEST(MetroRegistry, GetReturnsMetroStampedWithItsName) {
  for (const auto& name : MetroRegistry::instance().names()) {
    EXPECT_EQ(MetroRegistry::instance().get(name).name(), name);
  }
}

TEST(MetroRegistry, GetReturnsStableReferences) {
  const Metro& a = MetroRegistry::instance().get("us_sparse");
  const Metro& b = MetroRegistry::instance().get("us_sparse");
  EXPECT_EQ(&a, &b);  // long-lived singletons, safe to keep in an Analyzer
}

TEST(MetroRegistry, UnknownNameThrowsListingValidNames) {
  try {
    (void)MetroRegistry::instance().get("narnia");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("narnia"), std::string::npos);
    EXPECT_NE(what.find("london_top5"), std::string::npos);
    EXPECT_NE(what.find("us_sparse"), std::string::npos);
    EXPECT_NE(what.find("fiber_dense"), std::string::npos);
  }
}

TEST(MetroRegistry, PresetDescriptionsAreNonEmpty) {
  for (const auto& preset : MetroRegistry::instance().presets()) {
    EXPECT_FALSE(preset.description.empty()) << preset.name;
  }
}

TEST(MetroRegistry, NamesJoinedListsEveryPreset) {
  const std::string joined = MetroRegistry::instance().names_joined();
  EXPECT_EQ(joined, "london_top5, us_sparse, fiber_dense");
}

// -------------------------------------------- localisation regression pins

// Table III (london_top5 ISP-1) — the paper's published numbers. These
// must not move: every savings result in the repo depends on them.
TEST(LocalisationRegression, LondonTableIIIPinned) {
  const auto& isp1 = MetroRegistry::instance().get("london_top5").isp(0);
  ASSERT_EQ(isp1.exchange_points(), 345u);
  ASSERT_EQ(isp1.pops(), 9u);
  ASSERT_EQ(isp1.cores(), 1u);
  const auto loc = isp1.localisation();
  EXPECT_DOUBLE_EQ(loc.exp, 1.0 / 345.0);  // 0.29 % in Table III
  EXPECT_DOUBLE_EQ(loc.pop, 1.0 / 9.0);    // 11.11 % in Table III
  EXPECT_DOUBLE_EQ(loc.core, 1.0);
}

// The share-scaled London tail trees, pinned exactly: a change in the
// scaling rule or the market shares must fail here, not drift silently.
TEST(LocalisationRegression, LondonScaledTreesPinned) {
  const Metro& metro = MetroRegistry::instance().get("london_top5");
  ASSERT_EQ(metro.isp_count(), 5u);
  const std::uint32_t expected_exps[] = {345, 248, 216, 151, 119};
  const std::uint32_t expected_pops[] = {9, 6, 6, 4, 3};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(metro.isp(i).exchange_points(), expected_exps[i]) << "ISP " << i;
    EXPECT_EQ(metro.isp(i).pops(), expected_pops[i]) << "ISP " << i;
  }
}

// us_sparse closed-form pins: 40 ExPs / 12 PoPs / 1 core for ISP-1, and
// the share-scaled tail. Note the directions relative to London: per-ExP
// localisation is *higher* (1/40 > 1/345) while sub-core localisation is
// *lower* (1/12 < 1/9).
TEST(LocalisationRegression, UsSparsePinned) {
  const Metro& metro = MetroRegistry::instance().get("us_sparse");
  ASSERT_EQ(metro.isp_count(), 4u);
  const auto loc = metro.isp(0).localisation();
  EXPECT_EQ(metro.isp(0).exchange_points(), 40u);
  EXPECT_EQ(metro.isp(0).pops(), 12u);
  EXPECT_DOUBLE_EQ(loc.exp, 1.0 / 40.0);
  EXPECT_DOUBLE_EQ(loc.pop, 1.0 / 12.0);
  const std::uint32_t expected_exps[] = {40, 32, 26, 20};
  const std::uint32_t expected_pops[] = {12, 10, 8, 6};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(metro.isp(i).exchange_points(), expected_exps[i]) << "ISP " << i;
    EXPECT_EQ(metro.isp(i).pops(), expected_pops[i]) << "ISP " << i;
  }
}

// fiber_dense closed-form pins: 900 ExPs / 15 PoPs / 1 core for ISP-1.
TEST(LocalisationRegression, FiberDensePinned) {
  const Metro& metro = MetroRegistry::instance().get("fiber_dense");
  ASSERT_EQ(metro.isp_count(), 3u);
  const auto loc = metro.isp(0).localisation();
  EXPECT_EQ(metro.isp(0).exchange_points(), 900u);
  EXPECT_EQ(metro.isp(0).pops(), 15u);
  EXPECT_DOUBLE_EQ(loc.exp, 1.0 / 900.0);
  EXPECT_DOUBLE_EQ(loc.pop, 1.0 / 15.0);
  const std::uint32_t expected_exps[] = {900, 660, 440};
  const std::uint32_t expected_pops[] = {15, 11, 7};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(metro.isp(i).exchange_points(), expected_exps[i]) << "ISP " << i;
    EXPECT_EQ(metro.isp(i).pops(), expected_pops[i]) << "ISP " << i;
  }
}

// Cross-metro orderings the DESIGN.md "Metro topologies" section claims —
// pinned so the presets keep spanning the fan-out axis they were chosen
// to span.
TEST(LocalisationRegression, FanOutOrderingAcrossPresets) {
  const auto& registry = MetroRegistry::instance();
  const auto london = registry.get("london_top5").isp(0).localisation();
  const auto sparse = registry.get("us_sparse").isp(0).localisation();
  const auto fiber = registry.get("fiber_dense").isp(0).localisation();
  // Per-ExP localisation: sparse (few, large ExPs) > london > fiber.
  EXPECT_GT(sparse.exp, london.exp);
  EXPECT_GT(london.exp, fiber.exp);
  // Sub-core localisation (1/n_pop): london > sparse > fiber.
  EXPECT_GT(london.pop, sparse.pop);
  EXPECT_GT(sparse.pop, fiber.pop);
}

// The closed form at a mid-size capacity orders the metros by how fast
// their trees localise peer traffic: the per-bit peer cost is lowest in
// the sparse-ExP tree and highest in the dense fiber tree.
TEST(LocalisationRegression, MeanPeerGammaOrderedByExpLocalisation) {
  for (const auto& params : standard_params()) {
    const auto gamma_of = [&](const char* name) {
      const SavingsModel model(params,
                               MetroRegistry::instance().get(name).isp(0));
      return model.mean_peer_gamma(50.0).value();
    };
    const double sparse = gamma_of("us_sparse");
    const double london = gamma_of("london_top5");
    const double fiber = gamma_of("fiber_dense");
    EXPECT_LT(sparse, london) << params.name;
    EXPECT_LT(london, fiber) << params.name;
  }
}

// ------------------------------------------------- preset property sweeps

TEST(MetroPresets, SharesNormaliseToOne) {
  for (const auto& name : MetroRegistry::instance().names()) {
    const Metro& metro = MetroRegistry::instance().get(name);
    double total = 0;
    for (std::size_t i = 0; i < metro.isp_count(); ++i) {
      EXPECT_GT(metro.share(i), 0.0) << name;
      total += metro.share(i);
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << name;
  }
}

TEST(MetroPresets, SharesDescendFromIsp1) {
  for (const auto& name : MetroRegistry::instance().names()) {
    const Metro& metro = MetroRegistry::instance().get(name);
    for (std::size_t i = 1; i < metro.isp_count(); ++i) {
      EXPECT_LE(metro.share(i), metro.share(i - 1)) << name << " ISP " << i;
    }
  }
}

TEST(MetroPresets, EveryIspTreeIsWellFormed) {
  for (const auto& name : MetroRegistry::instance().names()) {
    const Metro& metro = MetroRegistry::instance().get(name);
    for (std::size_t i = 0; i < metro.isp_count(); ++i) {
      const auto& topo = metro.isp(i);
      EXPECT_GE(topo.pops(), 1u) << name;
      EXPECT_GE(topo.exchange_points(), topo.pops()) << name;
      EXPECT_EQ(topo.cores(), 1u) << name;
      for (std::uint32_t e = 0; e < topo.exchange_points(); ++e) {
        ASSERT_LT(topo.pop_of(e), topo.pops()) << name;
      }
    }
  }
}

}  // namespace
}  // namespace cl
