// Tests for the ISP topology substrate (paper Fig. 1, Table III) and the
// Metro/UniformPlacer property battery over every registry preset.
#include "topology/isp_topology.h"
#include "topology/placement.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "topology/metro_registry.h"
#include "util/error.h"
#include "util/rng.h"

namespace cl {
namespace {

TEST(IspTopology, LondonDefaultMatchesTableIII) {
  const auto topo = IspTopology::london_default();
  EXPECT_EQ(topo.exchange_points(), 345u);
  EXPECT_EQ(topo.pops(), 9u);
  EXPECT_EQ(topo.cores(), 1u);
  const auto loc = topo.localisation();
  EXPECT_NEAR(loc.exp, 0.0029, 1e-4);   // 0.29 % in Table III
  EXPECT_NEAR(loc.pop, 0.1111, 1e-4);   // 11.11 % in Table III
  EXPECT_DOUBLE_EQ(loc.core, 1.0);
}

TEST(IspTopology, LocalisationAtAccessor) {
  const auto loc = IspTopology::london_default().localisation();
  EXPECT_DOUBLE_EQ(loc.at(LocalityLevel::kExchangePoint), loc.exp);
  EXPECT_DOUBLE_EQ(loc.at(LocalityLevel::kPop), loc.pop);
  EXPECT_DOUBLE_EQ(loc.at(LocalityLevel::kCore), 1.0);
}

TEST(IspTopology, EveryExpHasAPop) {
  const auto topo = IspTopology::london_default();
  for (std::uint32_t e = 0; e < topo.exchange_points(); ++e) {
    EXPECT_LT(topo.pop_of(e), topo.pops());
  }
}

TEST(IspTopology, ExpsSpreadEvenlyOverPops) {
  const auto topo = IspTopology::london_default();
  std::vector<int> counts(topo.pops(), 0);
  for (std::uint32_t e = 0; e < topo.exchange_points(); ++e) {
    ++counts[topo.pop_of(e)];
  }
  const auto [min_it, max_it] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_LE(*max_it - *min_it, 1);
}

TEST(IspTopology, LocalityBetween) {
  const IspTopology topo("t", 6, 2);  // exp 0,2,4 -> pop 0; 1,3,5 -> pop 1
  EXPECT_EQ(topo.locality_between(3, 3), LocalityLevel::kExchangePoint);
  EXPECT_EQ(topo.locality_between(0, 2), LocalityLevel::kPop);
  EXPECT_EQ(topo.locality_between(0, 1), LocalityLevel::kCore);
}

TEST(IspTopology, LocalityIsSymmetric) {
  const auto topo = IspTopology::london_default();
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.uniform_index(345));
    const auto b = static_cast<std::uint32_t>(rng.uniform_index(345));
    EXPECT_EQ(topo.locality_between(a, b), topo.locality_between(b, a));
  }
}

TEST(IspTopology, RejectsInvalidShape) {
  EXPECT_THROW(IspTopology("t", 3, 5), InvalidArgument);  // fewer exp than pop
  EXPECT_THROW(IspTopology("t", 0, 0), InvalidArgument);
}

TEST(IspTopology, RejectsOutOfRangeExp) {
  const auto topo = IspTopology::london_default();
  EXPECT_THROW((void)topo.pop_of(345), InvalidArgument);
  EXPECT_THROW((void)topo.locality_between(0, 345), InvalidArgument);
}

TEST(IspTopology, ScaledKeepsProportions) {
  const auto half = IspTopology::scaled("half", 0.5);
  EXPECT_NEAR(half.exchange_points(), 345.0 * 0.5, 1.0);
  EXPECT_NEAR(half.pops(), 4.5, 0.51);
  EXPECT_GE(half.exchange_points(), half.pops());
}

TEST(IspTopology, ScaledTinyShareStillValid) {
  const auto tiny = IspTopology::scaled("tiny", 0.01);
  EXPECT_GE(tiny.pops(), 1u);
  EXPECT_GE(tiny.exchange_points(), tiny.pops());
}

TEST(IspTopology, ScaledRejectsBadShare) {
  EXPECT_THROW(IspTopology::scaled("x", 0.0), InvalidArgument);
  EXPECT_THROW(IspTopology::scaled("x", 1.5), InvalidArgument);
}

TEST(UniformPlacer, ProbabilitiesMatchCounts) {
  const auto topo = IspTopology::london_default();
  const UniformPlacer placer(topo);
  EXPECT_NEAR(placer.same_exp_probability(), 1.0 / 345.0, 1e-12);
  EXPECT_NEAR(placer.same_pop_probability(), 1.0 / 9.0, 1e-12);
}

TEST(UniformPlacer, EmpiricalUniformity) {
  const IspTopology topo("t", 10, 2);
  const UniformPlacer placer(topo);
  Rng rng(7);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[placer.place(0, rng).exp];
  for (int c : counts) EXPECT_NEAR(c, n / 10.0, n * 0.01);
}

TEST(Metro, LondonTop5Shape) {
  const auto metro = Metro::london_top5();
  ASSERT_EQ(metro.isp_count(), 5u);
  EXPECT_EQ(metro.isp(0).exchange_points(), 345u);
  double total_share = 0;
  for (std::size_t i = 0; i < 5; ++i) total_share += metro.share(i);
  EXPECT_NEAR(total_share, 1.0, 1e-12);
  // Shares are descending: ISP-1 is the biggest.
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_LE(metro.share(i), metro.share(i - 1));
  }
}

TEST(Metro, SampleIspFollowsShares) {
  const auto metro = Metro::london_top5();
  Rng rng(11);
  std::vector<int> counts(5, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[metro.sample_isp(rng)];
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, metro.share(i), 0.01);
  }
}

TEST(Metro, PlaceUserWithinIspRange) {
  const auto metro = Metro::london_top5();
  Rng rng(13);
  for (std::uint32_t isp = 0; isp < 5; ++isp) {
    for (int i = 0; i < 100; ++i) {
      const auto p = metro.place_user(isp, rng);
      EXPECT_EQ(p.isp, isp);
      EXPECT_LT(p.exp, metro.isp(isp).exchange_points());
    }
  }
}

TEST(Metro, RejectsMismatchedShapes) {
  std::vector<IspTopology> topos;
  topos.push_back(IspTopology::london_default());
  EXPECT_THROW(Metro(std::move(topos), {0.5, 0.5}), InvalidArgument);
}

TEST(Metro, RejectsEmptyMetro) {
  // CL_EXPECTS contract: a metro needs at least one ISP tree.
  EXPECT_THROW(Metro({}, {}), InvalidArgument);
}

TEST(Metro, RejectsZeroShareMetro) {
  // All-zero market shares cannot be normalised into a distribution.
  std::vector<IspTopology> topos;
  topos.push_back(IspTopology::london_default());
  topos.push_back(IspTopology::scaled("x", 0.5));
  EXPECT_THROW(Metro(std::move(topos), {0.0, 0.0}), InvalidArgument);
}

TEST(Metro, CustomMetroHasEmptyName) {
  std::vector<IspTopology> topos;
  topos.push_back(IspTopology::london_default());
  const Metro metro(std::move(topos), {1.0});
  EXPECT_TRUE(metro.name().empty());
}

TEST(Metro, PresetFactoriesCarryRegistryNames) {
  EXPECT_EQ(Metro::london_top5().name(), "london_top5");
  EXPECT_EQ(Metro::us_sparse().name(), "us_sparse");
  EXPECT_EQ(Metro::fiber_dense().name(), "fiber_dense");
}

// ------------------------------------ property sweeps over every preset

TEST(MetroPresetProperties, SampleIspFrequenciesMatchShares) {
  // Empirical ISP frequencies at a fixed seed stay within 1 % of each
  // preset's normalised market shares.
  for (const auto& name : MetroRegistry::instance().names()) {
    const Metro& metro = MetroRegistry::instance().get(name);
    Rng rng(20130901);
    std::vector<int> counts(metro.isp_count(), 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i) ++counts[metro.sample_isp(rng)];
    for (std::size_t i = 0; i < metro.isp_count(); ++i) {
      EXPECT_NEAR(static_cast<double>(counts[i]) / n, metro.share(i), 0.01)
          << name << " ISP " << i;
    }
  }
}

TEST(MetroPresetProperties, SameExpProbabilityIsOneOverNExp) {
  for (const auto& name : MetroRegistry::instance().names()) {
    const Metro& metro = MetroRegistry::instance().get(name);
    for (std::size_t i = 0; i < metro.isp_count(); ++i) {
      const UniformPlacer placer(metro.isp(i));
      EXPECT_DOUBLE_EQ(
          placer.same_exp_probability(),
          1.0 / static_cast<double>(metro.isp(i).exchange_points()))
          << name << " ISP " << i;
      EXPECT_DOUBLE_EQ(placer.same_pop_probability(),
                       1.0 / static_cast<double>(metro.isp(i).pops()))
          << name << " ISP " << i;
    }
  }
}

TEST(MetroPresetProperties, PlaceUserStaysInsideEveryPresetTree) {
  for (const auto& name : MetroRegistry::instance().names()) {
    const Metro& metro = MetroRegistry::instance().get(name);
    Rng rng(17);
    for (std::uint32_t isp = 0; isp < metro.isp_count(); ++isp) {
      for (int i = 0; i < 200; ++i) {
        const auto p = metro.place_user(isp, rng);
        ASSERT_EQ(p.isp, isp) << name;
        ASSERT_LT(p.exp, metro.isp(isp).exchange_points()) << name;
      }
    }
  }
}

TEST(MetroPresetProperties, PlacementCoversEveryExchangePoint) {
  // Uniform placement must reach every ExP of the sparse tree (40 ExPs is
  // small enough to demand full coverage at a modest sample size).
  const Metro& metro = MetroRegistry::instance().get("us_sparse");
  Rng rng(23);
  std::vector<int> counts(metro.isp(0).exchange_points(), 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[metro.place_user(0, rng).exp];
  }
  for (std::size_t e = 0; e < counts.size(); ++e) {
    EXPECT_GT(counts[e], 0) << "ExP " << e << " never drawn";
  }
}

TEST(Metro, RejectsOutOfRangeAccess) {
  const auto metro = Metro::london_top5();
  EXPECT_THROW((void)metro.isp(5), InvalidArgument);
  EXPECT_THROW((void)metro.share(5), InvalidArgument);
  Rng rng(1);
  EXPECT_THROW((void)metro.place_user(9, rng), InvalidArgument);
}

TEST(LocalityLevel, NamesAndIndices) {
  EXPECT_EQ(to_string(LocalityLevel::kExchangePoint), "ExP");
  EXPECT_EQ(to_string(LocalityLevel::kPop), "PoP");
  EXPECT_EQ(to_string(LocalityLevel::kCore), "Core");
  EXPECT_EQ(index(LocalityLevel::kCore), 2u);
  EXPECT_EQ(kAllLocalityLevels.size(), kLocalityLevels);
}

}  // namespace
}  // namespace cl
