// Tests for model/offload.h — the traffic offload fraction G (Eq. 3).
#include "model/offload.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"

namespace cl {
namespace {

TEST(Offload, ZeroCapacityIsZero) {
  EXPECT_DOUBLE_EQ(offload_fraction(0.0, 1.0), 0.0);
}

TEST(Offload, ZeroUploadIsZero) {
  EXPECT_DOUBLE_EQ(offload_fraction(10.0, 0.0), 0.0);
}

TEST(Offload, PaperFootnoteAtUnitCapacity) {
  // Footnote 3: at c = 1, G = 0.37·(q/β) (= e^{-1}·q/β exactly).
  EXPECT_NEAR(offload_at_unit_capacity(1.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(offload_at_unit_capacity(0.5), 0.5 * std::exp(-1.0), 1e-12);
  EXPECT_NEAR(offload_at_unit_capacity(1.0), 0.37, 0.005);
}

TEST(Offload, ClosedFormMatchesEquation3) {
  for (double c : {0.2, 1.0, 3.0, 25.0}) {
    for (double r : {0.2, 0.6, 1.0}) {
      const double expected = r * (c + std::exp(-c) - 1.0) / c;
      EXPECT_NEAR(offload_fraction(c, r), expected, 1e-12);
    }
  }
}

TEST(Offload, ScalesLinearlyInUploadRatio) {
  const double g1 = offload_fraction(5.0, 0.2);
  const double g2 = offload_fraction(5.0, 0.4);
  EXPECT_NEAR(g2, 2.0 * g1, 1e-12);
}

TEST(Offload, ApproachesCeiling) {
  EXPECT_NEAR(offload_fraction(1e4, 1.0), 1.0, 1e-3);
  EXPECT_NEAR(offload_fraction(1e4, 0.6), 0.6, 1e-3);
}

TEST(Offload, CappedAtOne) {
  // q/β > 1 cannot offload more than everything.
  EXPECT_LE(offload_fraction(1e6, 5.0), 1.0);
}

TEST(Offload, SmallCapacitySlope) {
  // G ≈ (q/β)·c/2 for c -> 0.
  const double c = 1e-6;
  EXPECT_NEAR(offload_fraction(c, 0.8) / c,
              offload_small_capacity_slope(0.8), 1e-3);
}

TEST(Offload, CeilingHelper) {
  EXPECT_DOUBLE_EQ(offload_ceiling(0.7), 0.7);
  EXPECT_DOUBLE_EQ(offload_ceiling(2.0), 1.0);
}

TEST(Offload, RejectsNegativeArguments) {
  EXPECT_THROW((void)offload_fraction(-1.0, 1.0), InvalidArgument);
  EXPECT_THROW((void)offload_fraction(1.0, -1.0), InvalidArgument);
  EXPECT_THROW((void)offload_ceiling(-0.1), InvalidArgument);
}

// Property sweep over capacities: G is increasing in c and within [0, q/β].
class OffloadSweep : public ::testing::TestWithParam<double> {};

TEST_P(OffloadSweep, MonotoneInCapacity) {
  const double c = GetParam();
  EXPECT_LE(offload_fraction(c, 1.0), offload_fraction(c * 1.2, 1.0) + 1e-14);
}

TEST_P(OffloadSweep, Bounded) {
  const double c = GetParam();
  for (double r : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const double g = offload_fraction(c, r);
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, r + 1e-14);
  }
}

INSTANTIATE_TEST_SUITE_P(CapacityGrid, OffloadSweep,
                         ::testing::Values(1e-4, 0.01, 0.1, 0.5, 1.0, 2.0,
                                           5.0, 10.0, 100.0, 1e4));

}  // namespace
}  // namespace cl
