// Tests for trace/synthetic.h — the calibrated synthetic workload.
#include "trace/synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "trace/trace_stats.h"
#include "util/error.h"

namespace cl {
namespace {

TraceConfig small_config() {
  TraceConfig config;
  config.days = 7;
  config.users = 5000;
  config.exemplar_views = {20000, 2000};
  config.catalogue_tail = 500;
  config.tail_views = 30000;
  return config;
}

TEST(TraceGenerator, DeterministicForSameSeed) {
  const auto metro = Metro::london_top5();
  TraceGenerator a(small_config(), metro);
  TraceGenerator b(small_config(), metro);
  const Trace ta = a.generate();
  const Trace tb = b.generate();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); i += 97) {
    EXPECT_EQ(ta.sessions[i].user, tb.sessions[i].user);
    EXPECT_DOUBLE_EQ(ta.sessions[i].start, tb.sessions[i].start);
    EXPECT_DOUBLE_EQ(ta.sessions[i].duration, tb.sessions[i].duration);
  }
}

TEST(TraceGenerator, DifferentSeedsDiffer) {
  const auto metro = Metro::london_top5();
  auto config = small_config();
  TraceGenerator a(config, metro);
  config.seed = 999;
  TraceGenerator b(config, metro);
  EXPECT_NE(a.generate().size(), b.generate().size());
}

TEST(TraceGenerator, SessionCountTracksExpectedViews) {
  const auto metro = Metro::london_top5();
  TraceGenerator gen(small_config(), metro);
  const Trace trace = gen.generate();
  // Expected sessions = (20000 + 2000 + 30000) * 7/30.
  const double expected = 52000.0 * 7.0 / 30.0;
  EXPECT_NEAR(static_cast<double>(trace.size()), expected, expected * 0.05);
}

TEST(TraceGenerator, ValidatesAndHasConfiguredSpan) {
  const auto metro = Metro::london_top5();
  TraceGenerator gen(small_config(), metro);
  const Trace trace = gen.generate();
  trace.validate();  // throws on violation
  EXPECT_DOUBLE_EQ(trace.span.value(), 7.0 * 86400.0);
}

TEST(TraceGenerator, GenerateContentMatchesFullTrace) {
  // Per-content generation must reproduce exactly the sessions the full
  // trace contains for that content (same per-content RNG stream).
  const auto metro = Metro::london_top5();
  TraceGenerator gen(small_config(), metro);
  const Trace full = gen.generate();
  const Trace solo = gen.generate_content(0);
  std::size_t in_full = 0;
  double full_watch = 0, solo_watch = 0;
  for (const auto& s : full.sessions) {
    if (s.content == 0) {
      ++in_full;
      full_watch += s.duration;
    }
  }
  for (const auto& s : solo.sessions) solo_watch += s.duration;
  EXPECT_EQ(solo.size(), in_full);
  EXPECT_NEAR(solo_watch, full_watch, 1e-6);
}

TEST(TraceGenerator, ExemplarViewsScaleWithDays) {
  const auto metro = Metro::london_top5();
  auto config = small_config();
  config.days = 30;
  TraceGenerator gen(config, metro);
  const Trace solo = gen.generate_content(0);
  EXPECT_NEAR(static_cast<double>(solo.size()), 20000.0, 20000.0 * 0.05);
}

TEST(TraceGenerator, IspSharesRespected) {
  const auto metro = Metro::london_top5();
  TraceGenerator gen(small_config(), metro);
  const TraceStats stats = compute_stats(gen.generate());
  ASSERT_EQ(stats.sessions_per_isp.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    const double fraction = static_cast<double>(stats.sessions_per_isp[i]) /
                            static_cast<double>(stats.sessions);
    // Session shares track user shares loosely (heavy users add variance).
    EXPECT_NEAR(fraction, metro.share(i), 0.08) << "isp " << i;
  }
}

TEST(TraceGenerator, BitrateMixRespected) {
  const auto metro = Metro::london_top5();
  const auto config = small_config();
  TraceGenerator gen(config, metro);
  const TraceStats stats = compute_stats(gen.generate());
  for (std::size_t b = 0; b < kBitrateClasses; ++b) {
    const double fraction =
        static_cast<double>(stats.sessions_per_bitrate[b]) /
        static_cast<double>(stats.sessions);
    EXPECT_NEAR(fraction, config.bitrate_mix[b], 0.02);
  }
}

TEST(TraceGenerator, HouseholdsCompressUsers) {
  const auto metro = Metro::london_top5();
  TraceGenerator gen(small_config(), metro);
  const TraceStats stats = compute_stats(gen.generate());
  EXPECT_LT(stats.distinct_households, stats.distinct_users);
  EXPECT_GT(stats.distinct_households, stats.distinct_users / 4);
}

TEST(TraceGenerator, DurationsBoundedByProgrammeLength) {
  const auto metro = Metro::london_top5();
  TraceGenerator gen(small_config(), metro);
  const Trace trace = gen.generate();
  for (const auto& s : trace.sessions) {
    const auto& info = gen.catalogue().item(s.content);
    EXPECT_LE(s.duration, info.nominal_length.value() + 1e-9);
    EXPECT_GT(s.duration, 0.0);
  }
}

TEST(TraceGenerator, DiurnalPeakVisible) {
  const auto metro = Metro::london_top5();
  TraceGenerator gen(small_config(), metro);
  const Trace trace = gen.generate();
  std::array<int, 24> per_hour{};
  for (const auto& s : trace.sessions) {
    const int hour = static_cast<int>(s.start / 3600.0) % 24;
    ++per_hour[hour];
  }
  // Evening peak (20:00) must dominate the overnight trough (03:00).
  EXPECT_GT(per_hour[20], 5 * per_hour[3]);
}

TEST(TraceGenerator, UserProfilesConsistentWithSessions) {
  const auto metro = Metro::london_top5();
  TraceGenerator gen(small_config(), metro);
  const Trace trace = gen.generate();
  const auto& users = gen.users();
  for (const auto& s : trace.sessions) {
    ASSERT_LT(s.user, users.size());
    EXPECT_EQ(s.isp, users[s.user].isp);
    EXPECT_EQ(s.exp, users[s.user].exp);
    EXPECT_EQ(s.household, users[s.user].household);
  }
}

TEST(TraceGenerator, ActivitySkewProducesHeavyUsers) {
  const auto metro = Metro::london_top5();
  TraceGenerator gen(small_config(), metro);
  const Trace trace = gen.generate();
  std::unordered_map<std::uint32_t, int> per_user;
  for (const auto& s : trace.sessions) ++per_user[s.user];
  int max_sessions = 0;
  for (const auto& [u, n] : per_user) {
    max_sessions = std::max(max_sessions, n);
  }
  const double mean = static_cast<double>(trace.size()) /
                      static_cast<double>(per_user.size());
  EXPECT_GT(max_sessions, 5.0 * mean);  // heavy tail exists
}

TEST(TraceGenerator, RejectsInvalidConfig) {
  const auto metro = Metro::london_top5();
  auto config = small_config();
  config.days = 0.5;
  EXPECT_THROW(TraceGenerator(config, metro), InvalidArgument);
  config = small_config();
  config.users = 0;
  EXPECT_THROW(TraceGenerator(config, metro), InvalidArgument);
  config = small_config();
  config.households_ratio = 0;
  EXPECT_THROW(TraceGenerator(config, metro), InvalidArgument);
  config = small_config();
  config.watch_mean_fraction = 1.5;
  EXPECT_THROW(TraceGenerator(config, metro), InvalidArgument);
}

TEST(TraceGenerator, GenerateContentRejectsUnknownId) {
  const auto metro = Metro::london_top5();
  TraceGenerator gen(small_config(), metro);
  EXPECT_THROW(gen.generate_content(100000), InvalidArgument);
}

}  // namespace
}  // namespace cl
