// Tests for model/localisation.h — the locality expectation (Eqs. 7–11).
//
// The key property: the direct derivation, the paper's grouped Eq. 10 form
// and a brute-force Poisson series must all agree (DESIGN.md §2 documents
// that Eq. 11 as printed is OCR-garbled and was re-derived).
#include "model/localisation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "model/swarm_model.h"
#include "topology/isp_topology.h"
#include "util/error.h"

namespace cl {
namespace {

LocalisationProbabilities london() {
  return IspTopology::london_default().localisation();
}

TEST(LocalityHelperF, AtPEqualsOneIsExpectedExcess) {
  for (double c : {0.1, 1.0, 10.0}) {
    EXPECT_NEAR(locality_helper_f(1.0, c), expected_excess(c), 1e-12);
  }
}

TEST(LocalityHelperF, BelowOneIsNonlocalMinusExcess) {
  for (double c : {0.5, 5.0}) {
    for (double p : {0.01, 0.2}) {
      EXPECT_NEAR(locality_helper_f(p, c),
                  expected_excess_nonlocal(p, c) - expected_excess(c), 1e-12);
    }
  }
}

TEST(LocalityHelperF, RejectsOutOfDomain) {
  EXPECT_THROW((void)locality_helper_f(-0.1, 1.0), InvalidArgument);
  EXPECT_THROW((void)locality_helper_f(0.5, -1.0), InvalidArgument);
}

TEST(FindLocalPeerProbability, Formula) {
  EXPECT_DOUBLE_EQ(find_local_peer_probability(0.5, 1), 0.0);
  EXPECT_DOUBLE_EQ(find_local_peer_probability(0.5, 2), 0.5);
  EXPECT_NEAR(find_local_peer_probability(0.5, 3), 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(find_local_peer_probability(1.0, 2), 1.0);
  EXPECT_DOUBLE_EQ(find_local_peer_probability(0.0, 100), 0.0);
}

TEST(FindLocalPeerProbability, IncreasesWithSwarmSize) {
  double prev = 0;
  for (unsigned l = 2; l < 200; l += 10) {
    const double cur = find_local_peer_probability(0.0029, l);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(GammaP2p, SmallSwarmIsCore) {
  const auto p = valancius_params();
  EXPECT_DOUBLE_EQ(gamma_p2p(p, london(), 0).value(), 900.0);
  EXPECT_DOUBLE_EQ(gamma_p2p(p, london(), 1).value(), 900.0);
}

TEST(GammaP2p, TwoPeersMostlyCore) {
  // With L = 2 in the London tree, the other peer is under the same ExP
  // w.p. 0.29 %, same PoP w.p. 11.1 % — γp2p is close to γcore.
  const auto p = valancius_params();
  const double g = gamma_p2p(p, london(), 2).value();
  EXPECT_GT(g, 850.0);
  EXPECT_LT(g, 900.0);
}

TEST(GammaP2p, LargeSwarmApproachesGammaExp) {
  const auto p = valancius_params();
  const double g = gamma_p2p(p, london(), 10000).value();
  EXPECT_NEAR(g, 300.0, 1.0);
}

TEST(GammaP2p, DecreasesWithSwarmSize) {
  const auto p = baliga_params();
  double prev = gamma_p2p(p, london(), 2).value();
  for (unsigned l : {4u, 8u, 16u, 64u, 256u, 1024u, 8192u}) {
    const double cur = gamma_p2p(p, london(), l).value();
    EXPECT_LE(cur, prev + 1e-12) << "L=" << l;
    prev = cur;
  }
}

TEST(GammaP2p, BoundedByExtremeLevels) {
  const auto p = baliga_params();
  for (unsigned l = 2; l < 100; ++l) {
    const double g = gamma_p2p(p, london(), l).value();
    EXPECT_GE(g, p.gamma_p2p_at(LocalityLevel::kExchangePoint).value());
    EXPECT_LE(g, p.gamma_p2p_at(LocalityLevel::kCore).value());
  }
}

TEST(ExpectedWeightedGamma, LargeCapacityAsymptote) {
  // W(c)/A(c) -> γexp as c -> ∞.
  const auto p = valancius_params();
  const double c = 1e5;
  EXPECT_NEAR(expected_weighted_gamma(p, london(), c) / expected_excess(c),
              300.0, 1.0);
}

TEST(ExpectedWeightedGamma, SmallCapacityLimitIsTwoPeerGamma) {
  // For c -> 0 the conditional swarm is almost surely L = 2, so the mean
  // per-bit γ over peer traffic tends to γp2p(2) — NOT γcore: even a
  // two-user swarm localises at the PoP with probability 1/9.
  const auto p = valancius_params();
  const double c = 1e-3;
  EXPECT_NEAR(expected_weighted_gamma(p, london(), c) / expected_excess(c),
              gamma_p2p(p, london(), 2).value(), 0.5);
}

TEST(ExpectedLocalityShares, SumToOne) {
  for (double c : {0.01, 0.5, 2.0, 50.0, 5000.0}) {
    const auto shares = expected_locality_shares(london(), c);
    EXPECT_NEAR(shares[0] + shares[1] + shares[2], 1.0, 1e-9) << "c=" << c;
  }
}

TEST(ExpectedLocalityShares, ZeroCapacityAllZero) {
  const auto shares = expected_locality_shares(london(), 0.0);
  EXPECT_DOUBLE_EQ(shares[0] + shares[1] + shares[2], 0.0);
}

TEST(ExpectedLocalityShares, ExpShareGrowsWithCapacity) {
  double prev = 0;
  for (double c : {1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    const auto shares = expected_locality_shares(london(), c);
    EXPECT_GE(shares[index(LocalityLevel::kExchangePoint)], prev);
    prev = shares[index(LocalityLevel::kExchangePoint)];
  }
  EXPECT_GT(prev, 0.9);  // almost everything ExP-local at c = 10^4
}

TEST(ExpectedLocalityShares, CoreDominatesSmallSwarms) {
  const auto shares = expected_locality_shares(london(), 0.1);
  EXPECT_GT(shares[index(LocalityLevel::kCore)], 0.8);
}

// The central equivalence: direct == grouped (paper Eq. 10) == Poisson
// series, across both parameter sets and a capacity grid.
struct EquivalenceCase {
  double capacity;
};

class WeightedGammaEquivalence
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(WeightedGammaEquivalence, DirectEqualsGrouped) {
  for (const auto& p : standard_params()) {
    const double direct =
        expected_weighted_gamma(p, london(), GetParam().capacity);
    const double grouped =
        expected_weighted_gamma_grouped(p, london(), GetParam().capacity);
    EXPECT_NEAR(grouped / (direct + 1e-300), 1.0, 1e-9) << p.name;
  }
}

TEST_P(WeightedGammaEquivalence, DirectEqualsSeries) {
  for (const auto& p : standard_params()) {
    const double direct =
        expected_weighted_gamma(p, london(), GetParam().capacity);
    const double series = expected_weighted_gamma_series(
        p, london(), GetParam().capacity, 8192);
    if (direct < 1e-12) {
      EXPECT_NEAR(series, direct, 1e-12);
    } else {
      EXPECT_NEAR(series / direct, 1.0, 1e-6) << p.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    CapacityGrid, WeightedGammaEquivalence,
    ::testing::Values(EquivalenceCase{1e-3}, EquivalenceCase{0.01},
                      EquivalenceCase{0.1}, EquivalenceCase{0.5},
                      EquivalenceCase{1.0}, EquivalenceCase{2.0},
                      EquivalenceCase{5.0}, EquivalenceCase{10.0},
                      EquivalenceCase{25.0}, EquivalenceCase{100.0},
                      EquivalenceCase{500.0}, EquivalenceCase{2000.0}));

}  // namespace
}  // namespace cl
