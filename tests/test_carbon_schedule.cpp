// Tests for src/carbon/schedule.h — the carbon-aware control loop: the
// trough-seeking preload window, cross-metro green routing under the
// latency bound, dual-grid accounting, the flat no-op contract (under a
// flat curve every scheduling decision is the unscheduled identity),
// and IntensityCurve::from_csv's measured-curve loader.
#include "carbon/schedule.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "carbon/intensity_curve.h"
#include "sim/hybrid_sim.h"
#include "topology/metro_registry.h"
#include "trace/synthetic.h"
#include "util/error.h"

namespace cl {
namespace {

const Metro& metro() {
  static const Metro m = Metro::london_top5();
  return m;
}

Trace small_trace() {
  TraceConfig tc;
  tc.days = 2;
  tc.users = 1200;
  tc.exemplar_views = {8000};
  tc.catalogue_tail = 60;
  tc.tail_views = 4000;
  return TraceGenerator(tc, metro()).generate();
}

IntensityCurve spike_curve(const std::string& name, double base,
                           double value, std::size_t hour) {
  std::array<double, 24> hours{};
  hours.fill(base);
  hours[hour] = value;
  return IntensityCurve(name, hours);
}

// ---- trough-seeking preload ----

TEST(TroughWindow, FindsCleanestHoursOfEachPreset) {
  const IntensityRegistry& registry = IntensityRegistry::instance();
  // uk_2018 bottoms out overnight: [3, 5) is the cleanest 2-hour window.
  const CarbonScheduler uk(registry.get("uk_2018"));
  EXPECT_DOUBLE_EQ(uk.trough_window().window_start_hour, 3.0);
  EXPECT_DOUBLE_EQ(uk.trough_window().window_end_hour, 5.0);
  // us_caiso's solar trough: [11, 13) and [12, 14) tie at 278 g·h; the
  // tie must resolve to the earlier start.
  const CarbonScheduler caiso(registry.get("us_caiso"));
  EXPECT_DOUBLE_EQ(caiso.trough_window().window_start_hour, 11.0);
  EXPECT_DOUBLE_EQ(caiso.trough_window().window_end_hour, 13.0);
}

TEST(TroughWindow, RespectsConfiguredWidthAndAdoption) {
  ScheduleConfig config;
  config.preload_window_hours = 4.0;
  config.preload_adoption = 0.25;
  const CarbonScheduler scheduler(
      IntensityRegistry::instance().get("uk_2018"), config);
  const PreloadConfig window = scheduler.trough_window();
  EXPECT_DOUBLE_EQ(window.window_end_hour - window.window_start_hour, 4.0);
  EXPECT_DOUBLE_EQ(window.adoption, 0.25);
  EXPECT_LE(window.window_end_hour, 24.0);
}

TEST(TroughWindow, SpikeCurveAvoidsTheSpike) {
  // A single dirty hour: the chosen window must not overlap it, and ties
  // among the clean windows resolve to the earliest start (hour 0 when
  // the spike sits late enough).
  const CarbonScheduler scheduler(spike_curve("spike", 100.0, 900.0, 12));
  const PreloadConfig window = scheduler.trough_window();
  EXPECT_DOUBLE_EQ(window.window_start_hour, 0.0);
  EXPECT_DOUBLE_EQ(window.window_end_hour, 2.0);
}

TEST(SchedulePreload, MovesSessionsIntoTheTrough) {
  const Trace trace = small_trace();
  ScheduleConfig config;
  config.preload_adoption = 1.0;
  const CarbonScheduler scheduler(
      IntensityRegistry::instance().get("uk_2018"), config);
  const Trace out = scheduler.schedule_preload(trace, 7);
  ASSERT_EQ(out.size(), trace.size());
  EXPECT_EQ(out.metro_name, trace.metro_name);
  for (const auto& s : out.sessions) {
    const double hour = std::fmod(s.start, 86400.0) / 3600.0;
    EXPECT_GE(hour, 3.0 - 1e-9);
    EXPECT_LT(hour, 5.0 + 1e-9);
  }
}

// ---- the flat no-op contract ----

TEST(FlatContract, SchedulerIsInertUnderFlatCurve) {
  const IntensityCurve& flat =
      IntensityRegistry::instance().get(kFlatIntensityName);
  const CarbonScheduler scheduler(flat);
  EXPECT_TRUE(scheduler.inert());

  // The preload transform is the bit-identical identity.
  const Trace trace = small_trace();
  const Trace out = scheduler.schedule_preload(trace, 3);
  ASSERT_EQ(out.size(), trace.size());
  EXPECT_EQ(out.metro_name, trace.metro_name);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out.sessions[i].start, trace.sessions[i].start);
    EXPECT_EQ(out.sessions[i].duration, trace.sessions[i].duration);
  }

  // Routing stays home every hour even when a cleaner neighbour exists.
  const IntensityCurve clean = IntensityCurve::constant("clean", 10.0);
  const RoutingPlan plan = scheduler.plan_routes({&flat, &clean}, 0, 48);
  EXPECT_EQ(plan.hours_routed_away(), 0u);
  EXPECT_DOUBLE_EQ(plan.mean_added_latency_ms(), 0.0);

  // And the assessed reduction is exactly 0 (same grid, same plan).
  const SimResult result =
      HybridSimulator(metro(), SimConfig{}).run(trace);
  const EnergyAccountant energy{CostFunctions(valancius_params())};
  const ScheduleOutcome outcome =
      scheduler.assess(result.hourly, result.hourly, energy, plan);
  EXPECT_EQ(outcome.scheduled_g, outcome.unscheduled_g);
  EXPECT_EQ(outcome.reduction, 0.0);
}

// ---- green routing ----

TEST(PlanRoutes, PrefersCleanerViableMetroOnly) {
  // Home grid at 300; one-hop neighbour at 100 (viable, cleaner);
  // two-hop candidate at 10 (cleanest, but 50 ms > the 30 ms bound).
  const IntensityCurve home = IntensityCurve::constant("home", 300.0);
  const IntensityCurve near = IntensityCurve::constant("near", 100.0);
  const IntensityCurve far = IntensityCurve::constant("far", 10.0);
  const CarbonScheduler scheduler(
      spike_curve("user", 300.0, 301.0, 0));  // non-flat: routing active
  const RoutingPlan plan =
      scheduler.plan_routes({&home, &near, &far}, 0, 24);
  ASSERT_EQ(plan.hours.size(), 24u);
  for (const auto& h : plan.hours) {
    EXPECT_EQ(h.serving_metro, 1u);
    EXPECT_DOUBLE_EQ(h.added_latency_ms, 25.0);
    EXPECT_DOUBLE_EQ(h.serving_intensity, 100.0);
  }
  EXPECT_EQ(plan.hours_routed_away(), 24u);
  EXPECT_DOUBLE_EQ(plan.max_added_latency_ms(), 25.0);
}

TEST(PlanRoutes, TiesKeepTheHomeMetro) {
  const IntensityCurve same = IntensityCurve::constant("same", 200.0);
  const CarbonScheduler scheduler(spike_curve("user", 200.0, 201.0, 0));
  const RoutingPlan plan = scheduler.plan_routes({&same, &same}, 0, 24);
  EXPECT_EQ(plan.hours_routed_away(), 0u);
}

TEST(PlanRoutes, ZeroLatencyBoundDisablesRouting) {
  ScheduleConfig config;
  config.max_added_latency_ms = 0.0;
  const IntensityCurve dirty = IntensityCurve::constant("dirty", 500.0);
  const IntensityCurve clean = IntensityCurve::constant("clean", 10.0);
  const CarbonScheduler scheduler(spike_curve("user", 500.0, 501.0, 0),
                                  config);
  const RoutingPlan plan = scheduler.plan_routes({&dirty, &clean}, 0, 24);
  EXPECT_EQ(plan.hours_routed_away(), 0u);
}

TEST(PlanRoutes, RejectsBadInputs) {
  const IntensityCurve c = IntensityCurve::constant("c", 100.0);
  const CarbonScheduler scheduler(c);
  EXPECT_THROW((void)scheduler.plan_routes({&c}, 3, 24), InvalidArgument);
  EXPECT_THROW((void)scheduler.plan_routes({&c, nullptr}, 0, 24),
               InvalidArgument);
}

TEST(HomePlan, TracksTheUserCurve) {
  const IntensityCurve& uk = IntensityRegistry::instance().get("uk_2018");
  const CarbonScheduler scheduler(uk);
  const RoutingPlan plan = scheduler.home_plan(2, 30);
  ASSERT_EQ(plan.hours.size(), 30u);
  EXPECT_EQ(plan.home_metro, 2u);
  for (std::size_t h = 0; h < plan.hours.size(); ++h) {
    EXPECT_EQ(plan.hours[h].serving_metro, 2u);
    EXPECT_DOUBLE_EQ(plan.hours[h].serving_intensity, uk.at_hour(h));
    EXPECT_DOUBLE_EQ(plan.hours[h].added_latency_ms, 0.0);
  }
}

// ---- dual-grid accounting ----

TEST(DualGrid, BlendsUserAndServingIntensity) {
  ScheduleConfig config;
  config.user_weight = 0.3;
  config.serving_weight = 0.7;
  const CarbonScheduler scheduler(
      IntensityRegistry::instance().get("uk_2018"), config);
  EXPECT_DOUBLE_EQ(scheduler.dual_intensity(100.0, 300.0),
                   0.3 * 100.0 + 0.7 * 300.0);
}

TEST(DualGrid, GramsMatchHandComputation) {
  const IntensityCurve& uk = IntensityRegistry::instance().get("uk_2018");
  const CarbonScheduler scheduler(uk);
  const EnergyAccountant energy{CostFunctions(valancius_params())};

  TrafficBreakdown t;
  t.server = Bits{4e9};
  t.peer[0] = Bits{1e9};
  HourlyTrafficGrid hourly(2, std::vector<TrafficBreakdown>(1));
  hourly[0][0] = t;
  hourly[1][0] = t;

  RoutingPlan plan;
  plan.home_metro = 0;
  plan.hours.push_back({0, 0.0, uk.at_hour(0)});    // home hour
  plan.hours.push_back({1, 25.0, 50.0});            // routed hour

  const double kwh = energy.hybrid(t).total().kwh();
  const double expected =
      scheduler.dual_intensity(uk.at_hour(0), uk.at_hour(0)) * kwh +
      scheduler.dual_intensity(uk.at_hour(1), 50.0) * kwh;
  EXPECT_DOUBLE_EQ(scheduler.dual_grams(hourly, energy, plan), expected);
}

TEST(DualGrid, HoursBeyondThePlanPriceAsHome) {
  const IntensityCurve& uk = IntensityRegistry::instance().get("uk_2018");
  const CarbonScheduler scheduler(uk);
  const EnergyAccountant energy{CostFunctions(valancius_params())};
  TrafficBreakdown t;
  t.server = Bits{1e9};
  HourlyTrafficGrid hourly(3, std::vector<TrafficBreakdown>(1));
  for (auto& row : hourly) row[0] = t;
  // An empty plan: every hour falls back to the user curve on both ends.
  const RoutingPlan empty_plan;
  double expected = 0;
  for (std::size_t h = 0; h < 3; ++h) {
    expected += uk.at_hour(h) * energy.hybrid(t).total().kwh();
  }
  EXPECT_DOUBLE_EQ(scheduler.dual_grams(hourly, energy, empty_plan),
                   expected);
}

// ---- end-to-end outcomes ----

TEST(Schedule, PositiveReductionUnderEveryNonFlatPreset) {
  const Trace trace = small_trace();
  const SimResult unscheduled =
      HybridSimulator(metro(), SimConfig{}).run(trace);
  const IntensityRegistry& registry = IntensityRegistry::instance();

  for (const char* name : {"uk_2018", "us_caiso", "nordic_hydro"}) {
    const CarbonScheduler scheduler(registry.get(name));
    ASSERT_FALSE(scheduler.inert()) << name;
    const SimResult scheduled = HybridSimulator(metro(), SimConfig{})
                                    .run(scheduler.schedule_preload(trace, 9));
    std::vector<const IntensityCurve*> serving;
    for (const std::string& m : MetroRegistry::instance().names()) {
      serving.push_back(m == kDefaultMetroName
                            ? &registry.get(name)
                            : &registry.default_for_metro(m));
    }
    const RoutingPlan plan =
        scheduler.plan_routes(serving, 0, scheduled.hourly.size());
    EXPECT_LE(plan.max_added_latency_ms(),
              scheduler.config().max_added_latency_ms)
        << name;
    for (const auto& params : standard_params()) {
      const EnergyAccountant energy{CostFunctions(params)};
      const ScheduleOutcome outcome =
          scheduler.assess(unscheduled.hourly, scheduled.hourly, energy, plan);
      EXPECT_GT(outcome.reduction, 0.0) << name << "/" << params.name;
      EXPECT_LT(outcome.scheduled_g, outcome.unscheduled_g)
          << name << "/" << params.name;
    }
  }
}

TEST(Schedule, ScheduledRunsBitIdenticalAcrossThreadCounts) {
  // The scheduled replay inherits the simulator's determinism contract:
  // the preload transform is single-threaded and seed-deterministic, and
  // the re-simulation merges fixed chunks — so every thread count yields
  // bit-identical totals and hourly grids.
  Trace trace = small_trace();
  const CarbonScheduler scheduler(
      IntensityRegistry::instance().get("us_caiso"));
  const Trace shifted = scheduler.schedule_preload(trace, 11);

  SimConfig base;
  base.threads = 1;
  const SimResult reference = HybridSimulator(metro(), base).run(shifted);
  for (unsigned threads : {2u, 7u, 0u}) {
    SimConfig config;
    config.threads = threads;
    const SimResult result = HybridSimulator(metro(), config).run(shifted);
    EXPECT_EQ(result.total.total().value(),
              reference.total.total().value());
    EXPECT_EQ(result.total.peer_total().value(),
              reference.total.peer_total().value());
    ASSERT_EQ(result.hourly.size(), reference.hourly.size());
    for (std::size_t h = 0; h < result.hourly.size(); ++h) {
      ASSERT_EQ(result.hourly[h].size(), reference.hourly[h].size());
      for (std::size_t i = 0; i < result.hourly[h].size(); ++i) {
        EXPECT_EQ(result.hourly[h][i].total().value(),
                  reference.hourly[h][i].total().value());
        EXPECT_EQ(result.hourly[h][i].peer_total().value(),
                  reference.hourly[h][i].peer_total().value());
      }
    }
  }
}

// ---- config validation ----

TEST(ScheduleConfig, RejectsOutOfRangeValues) {
  const IntensityCurve& uk = IntensityRegistry::instance().get("uk_2018");
  {
    ScheduleConfig c;
    c.preload_adoption = 1.5;
    EXPECT_THROW(CarbonScheduler(uk, c), InvalidArgument);
  }
  {
    ScheduleConfig c;
    c.preload_window_hours = 0.0;
    EXPECT_THROW(CarbonScheduler(uk, c), InvalidArgument);
  }
  {
    ScheduleConfig c;
    c.preload_window_hours = 25.0;
    EXPECT_THROW(CarbonScheduler(uk, c), InvalidArgument);
  }
  {
    ScheduleConfig c;
    c.user_weight = 0.6;  // weights no longer sum to 1
    EXPECT_THROW(CarbonScheduler(uk, c), InvalidArgument);
  }
  {
    ScheduleConfig c;
    c.user_weight = -0.5;
    c.serving_weight = 1.5;
    EXPECT_THROW(CarbonScheduler(uk, c), InvalidArgument);
  }
  {
    ScheduleConfig c;
    c.max_added_latency_ms = -1.0;
    EXPECT_THROW(CarbonScheduler(uk, c), InvalidArgument);
  }
}

// ---- from_csv ----

class FromCsvTest : public ::testing::Test {
 protected:
  std::string write_csv(const std::string& name, const std::string& body) {
    const std::string path =
        (std::filesystem::temp_directory_path() / name).string();
    std::ofstream out(path);
    out << body;
    out.close();
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const auto& p : paths_) std::filesystem::remove(p);
  }

  std::vector<std::string> paths_;
};

TEST_F(FromCsvTest, LoadsTwoColumnFileInAnyHourOrder) {
  std::string body = "hour,gCO2_per_kwh\n";
  // Rows deliberately out of order: hour 23 first, then 0..22.
  body += "23,123\n";
  for (int h = 0; h < 23; ++h) {
    body += std::to_string(h) + "," + std::to_string(100 + h) + "\n";
  }
  const IntensityCurve curve =
      IntensityCurve::from_csv(write_csv("shuffled.csv", body));
  EXPECT_EQ(curve.name(), "shuffled");
  EXPECT_DOUBLE_EQ(curve.at_hour(23), 123.0);
  EXPECT_DOUBLE_EQ(curve.at_hour(0), 100.0);
  EXPECT_DOUBLE_EQ(curve.at_hour(22), 122.0);
}

TEST_F(FromCsvTest, LoadsSingleColumnFileInHourOrder) {
  std::string body = "# nightly export, values only\n";
  for (int h = 0; h < 24; ++h) {
    body += std::to_string(200 + h) + "\n";
  }
  const IntensityCurve curve =
      IntensityCurve::from_csv(write_csv("plain.csv", body));
  EXPECT_DOUBLE_EQ(curve.at_hour(0), 200.0);
  EXPECT_DOUBLE_EQ(curve.at_hour(23), 223.0);
  EXPECT_FALSE(curve.is_flat());
}

TEST_F(FromCsvTest, RejectsWrongRowCounts) {
  std::string short_body;
  for (int h = 0; h < 23; ++h) short_body += "100\n";
  EXPECT_THROW(
      (void)IntensityCurve::from_csv(write_csv("short.csv", short_body)),
      InvalidArgument);
  std::string long_body;
  for (int h = 0; h < 25; ++h) long_body += "100\n";
  EXPECT_THROW(
      (void)IntensityCurve::from_csv(write_csv("long.csv", long_body)),
      InvalidArgument);
}

TEST_F(FromCsvTest, RejectsNonPositiveValues) {
  std::string zero_body;
  for (int h = 0; h < 24; ++h) zero_body += (h == 7 ? "0\n" : "100\n");
  EXPECT_THROW(
      (void)IntensityCurve::from_csv(write_csv("zero.csv", zero_body)),
      InvalidArgument);
  std::string negative_body;
  for (int h = 0; h < 24; ++h) negative_body += (h == 7 ? "-5\n" : "100\n");
  EXPECT_THROW(
      (void)IntensityCurve::from_csv(write_csv("neg.csv", negative_body)),
      InvalidArgument);
}

TEST_F(FromCsvTest, RejectsMalformedRows) {
  // Garbage in the middle of the data is a parse error — only the first
  // row may be a header.
  std::string body;
  for (int h = 0; h < 24; ++h) {
    body += (h == 12 ? "twelve\n" : std::to_string(100 + h) + "\n");
  }
  EXPECT_THROW(
      (void)IntensityCurve::from_csv(write_csv("garbage.csv", body)),
      ParseError);

  std::string dup = "hour,g\n";
  for (int h = 0; h < 24; ++h) {
    dup += std::to_string(h == 23 ? 0 : h) + ",100\n";  // hour 0 twice
  }
  EXPECT_THROW((void)IntensityCurve::from_csv(write_csv("dup.csv", dup)),
               InvalidArgument);

  std::string range = "hour,g\n";
  for (int h = 0; h < 24; ++h) {
    range += std::to_string(h == 5 ? 24 : h) + ",100\n";  // hour 24
  }
  EXPECT_THROW(
      (void)IntensityCurve::from_csv(write_csv("range.csv", range)),
      InvalidArgument);
}

TEST_F(FromCsvTest, MissingFileThrowsIoError) {
  EXPECT_THROW((void)IntensityCurve::from_csv(
                   "/nonexistent/intensity_curve_missing.csv"),
               IoError);
}

}  // namespace
}  // namespace cl
