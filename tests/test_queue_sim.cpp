// Tests for sim/queue_sim.h — the M/M/∞ / M/G/∞ queue substrate that
// validates the analytical model's core stochastic assumption.
#include "sim/queue_sim.h"

#include <gtest/gtest.h>

#include <cmath>

#include "model/swarm_model.h"
#include "util/error.h"

namespace cl {
namespace {

TEST(QueueSim, TimeAverageOccupancyIsLittlesLaw) {
  // c = r·u = 0.01 * 400 = 4.
  const auto sim = QueueSimulator::mm_infinity(0.01, Seconds{400});
  const auto result = sim.run(Seconds{2e6}, 42);
  EXPECT_NEAR(result.time_average_occupancy, 4.0, 0.15);
}

TEST(QueueSim, BusyProbabilityMatchesModel) {
  const double c = 1.5;
  const auto sim = QueueSimulator::mm_infinity(c / 300.0, Seconds{300});
  const auto result = sim.run(Seconds{2e6}, 7);
  EXPECT_NEAR(result.p_busy, SwarmModel(c).p_online(), 0.02);
  EXPECT_NEAR(result.p_empty + result.p_busy, 1.0, 1e-12);
}

TEST(QueueSim, OccupancyIsPoisson) {
  const double c = 3.0;
  const auto sim = QueueSimulator::mm_infinity(c / 100.0, Seconds{100});
  const auto result = sim.run(Seconds{3e6}, 11);
  const SwarmModel model(c);
  for (unsigned l = 0; l < 8; ++l) {
    ASSERT_LT(l, result.occupancy_pmf.size());
    EXPECT_NEAR(result.occupancy_pmf[l], model.occupancy_pmf(l), 0.015)
        << "l=" << l;
  }
}

TEST(QueueSim, ExpectedExcessMatchesClosedForm) {
  for (double c : {0.5, 2.0, 8.0}) {
    const auto sim = QueueSimulator::mm_infinity(c / 200.0, Seconds{200});
    const auto result = sim.run(Seconds{2e6}, 13);
    EXPECT_NEAR(result.expected_excess, expected_excess(c),
                0.05 * (expected_excess(c) + 0.1))
        << "c=" << c;
  }
}

TEST(QueueSim, InsensitivityToServiceDistribution) {
  // M/D/∞ has the same Poisson occupancy as M/M/∞ (the property that lets
  // the paper use Little's law on non-exponential watch times).
  const double c = 2.5;
  const auto md = QueueSimulator::md_infinity(c / 150.0, Seconds{150});
  const auto result = md.run(Seconds{2e6}, 17);
  EXPECT_NEAR(result.time_average_occupancy, c, 0.1);
  const SwarmModel model(c);
  EXPECT_NEAR(result.p_empty, model.occupancy_pmf(0), 0.01);
  EXPECT_NEAR(result.expected_excess, expected_excess(c), 0.08);
}

TEST(QueueSim, PmfSumsToOne) {
  const auto sim = QueueSimulator::mm_infinity(0.02, Seconds{100});
  const auto result = sim.run(Seconds{1e6}, 19);
  double sum = 0;
  for (double p : result.occupancy_pmf) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(QueueSim, ArrivalCountMatchesRate) {
  const auto sim = QueueSimulator::mm_infinity(0.05, Seconds{10});
  const auto result = sim.run(Seconds{1e6}, 23);
  EXPECT_NEAR(static_cast<double>(result.arrivals), 0.05 * 1e6,
              3.0 * std::sqrt(0.05 * 1e6));
}

TEST(QueueSim, DeterministicInSeed) {
  const auto sim = QueueSimulator::mm_infinity(0.01, Seconds{100});
  const auto a = sim.run(Seconds{1e5}, 99);
  const auto b = sim.run(Seconds{1e5}, 99);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_DOUBLE_EQ(a.time_average_occupancy, b.time_average_occupancy);
}

TEST(QueueSim, RejectsInvalidConfig) {
  EXPECT_THROW(QueueSimulator::mm_infinity(0.0, Seconds{100}),
               InvalidArgument);
  EXPECT_THROW(QueueSimulator::mm_infinity(1.0, Seconds{0}), InvalidArgument);
  const auto sim = QueueSimulator::mm_infinity(1.0, Seconds{1});
  EXPECT_THROW(sim.run(Seconds{0}, 1), InvalidArgument);
}

}  // namespace
}  // namespace cl
