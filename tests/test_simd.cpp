// test_simd.cpp — the SIMD lane wrappers (util/simd.h) and the sweep
// kernels' scalar/SIMD bit-identity contract (sim/sweep_kernels.h).
//
// Every kernel pair is exercised at the boundary lengths where lane
// handling goes wrong — 0, 1, lanes−1, lanes, lanes+1 and a large
// randomized body — and the outputs are compared *bitwise* (EXPECT_EQ on
// doubles, never near), because the whole design rests on the SIMD
// variants producing the exact scalar bits. Window-bound inputs include
// denormals and values an ulp either side of a window boundary: the
// truncations must agree there too.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <vector>

#include "sim/sweep_kernels.h"
#include "util/rng.h"
#include "util/simd.h"

namespace cl {
namespace {

using simd::VF64;
using simd::VU32;
using simd::VU64;

// The boundary lengths every kernel is checked at (plus a large body).
std::vector<std::size_t> boundary_lengths() {
  const std::size_t w = VF64::kLanes;
  std::vector<std::size_t> lens = {0, 1};
  if (w > 1) {
    lens.push_back(w - 1);
    lens.push_back(w);
    lens.push_back(w + 1);
  }
  lens.push_back(sweep_kernels::kStripe - 1);
  lens.push_back(sweep_kernels::kStripe);
  lens.push_back(sweep_kernels::kStripe + 1);
  lens.push_back(10000);
  return lens;
}

// ---------------------------------------------------------------- wrappers

TEST(SimdWrappers, F64ArithmeticMatchesScalar) {
  Rng rng(1);
  alignas(simd::kAlign) double a[VF64::kLanes];
  alignas(simd::kAlign) double b[VF64::kLanes];
  for (std::size_t l = 0; l < VF64::kLanes; ++l) {
    a[l] = rng.uniform(-100.0, 100.0);
    b[l] = rng.uniform(0.5, 100.0);
  }
  const VF64 va = VF64::load(a);
  const VF64 vb = VF64::load(b);
  for (std::size_t l = 0; l < VF64::kLanes; ++l) {
    EXPECT_EQ((va + vb).lane(l), a[l] + b[l]);
    EXPECT_EQ((va - vb).lane(l), a[l] - b[l]);
    EXPECT_EQ((va * vb).lane(l), a[l] * b[l]);
    EXPECT_EQ((va / vb).lane(l), a[l] / b[l]);
    EXPECT_EQ(VF64::max(va, vb).lane(l), a[l] > b[l] ? a[l] : b[l]);
  }
  VF64 acc = va;
  acc += vb;
  for (std::size_t l = 0; l < VF64::kLanes; ++l) {
    EXPECT_EQ(acc.lane(l), a[l] + b[l]);
  }
}

TEST(SimdWrappers, F64MaskSelectsZeroOrValue) {
  alignas(simd::kAlign) double a[VF64::kLanes];
  alignas(simd::kAlign) double b[VF64::kLanes];
  for (std::size_t l = 0; l < VF64::kLanes; ++l) {
    a[l] = l % 2 == 0 ? 3.5 : -1.25;
    b[l] = 0.0;
  }
  const VF64 mask = VF64::gt_mask(VF64::load(a), VF64::load(b));
  const VF64 sel = VF64::mask_and(VF64::set1(7.75), mask);
  for (std::size_t l = 0; l < VF64::kLanes; ++l) {
    EXPECT_EQ(sel.lane(l), a[l] > 0.0 ? 7.75 : 0.0);
  }
}

TEST(SimdWrappers, F64GatherReadsIndexedElements) {
  std::vector<double> base(64);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<double>(i) * 1.5;
  }
  std::uint32_t idx[VF64::kLanes];
  for (std::size_t l = 0; l < VF64::kLanes; ++l) {
    idx[l] = static_cast<std::uint32_t>(61 - 7 * l);
  }
  const VF64 g = VF64::gather(base.data(), idx);
  for (std::size_t l = 0; l < VF64::kLanes; ++l) {
    EXPECT_EQ(g.lane(l), base[idx[l]]);
  }
}

TEST(SimdWrappers, U32MaxCmpeqAndAllOnes) {
  std::uint32_t a[VU32::kLanes];
  std::uint32_t b[VU32::kLanes];
  for (std::size_t l = 0; l < VU32::kLanes; ++l) {
    // Values straddling 2³¹ — the SSE2 emulation sign-biases pcmpgtd,
    // which is exactly what this pins down.
    a[l] = l % 2 == 0 ? 0x80000001u + static_cast<std::uint32_t>(l) : 7u;
    b[l] = l % 2 == 0 ? 3u : 0xFFFFFFF0u;
  }
  const VU32 va = VU32::loadu(a);
  const VU32 vb = VU32::loadu(b);
  const VU32 m = VU32::max(va, vb);
  for (std::size_t l = 0; l < VU32::kLanes; ++l) {
    EXPECT_EQ(m.lane(l), a[l] > b[l] ? a[l] : b[l]);
  }
  EXPECT_TRUE(VU32::cmpeq(va, va).all_ones());
  EXPECT_FALSE(VU32::cmpeq(va, vb).all_ones());
  EXPECT_FALSE((VU32::cmpeq(va, va) & VU32::cmpeq(va, vb)).all_ones());
}

TEST(SimdWrappers, U32ToF64IsExact) {
  std::uint32_t a[VU32::kLanes];
  for (std::size_t l = 0; l < VU32::kLanes; ++l) {
    a[l] = 0x7FFFFFFFu - static_cast<std::uint32_t>(l);  // < 2³¹: exact
  }
  const VU32 va = VU32::loadu(a);
  for (std::size_t lo = 0; lo + VF64::kLanes <= VU32::kLanes;
       lo += VF64::kLanes) {
    const VF64 f = va.to_f64(lo);
    for (std::size_t l = 0; l < VF64::kLanes; ++l) {
      EXPECT_EQ(f.lane(l), static_cast<double>(a[lo + l]));
    }
  }
}

TEST(SimdWrappers, U64PackedKeyOps) {
  std::uint64_t w[VU64::kLanes];
  std::uint64_t g[VU64::kLanes];
  for (std::size_t l = 0; l < VU64::kLanes; ++l) {
    w[l] = 0x12345678ull + l;
    g[l] = 0xABCDEFull - l;
  }
  const VU64 key = VU64::loadu(w).shl(24) | VU64::loadu(g);
  std::uint64_t out[VU64::kLanes];
  key.storeu(out);
  for (std::size_t l = 0; l < VU64::kLanes; ++l) {
    EXPECT_EQ(out[l], (w[l] << 24) | g[l]);
    EXPECT_EQ(key.lane(l), (w[l] << 24) | g[l]);
    EXPECT_EQ((VU64::set1(5) + VU64::loadu(w)).lane(l), 5 + w[l]);
  }
}

TEST(SimdWrappers, AlignedVectorIsCacheLineAligned) {
  simd::aligned_vector<double> v(17, 1.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % simd::kAlign, 0u);
}

TEST(SimdWrappers, RuntimeToggleReadsEnvironment) {
  unsetenv("CL_SIMD");
  EXPECT_TRUE(simd::runtime_enabled());
  setenv("CL_SIMD", "off", 1);
  EXPECT_FALSE(simd::runtime_enabled());
  EXPECT_FALSE(simd::active());
  setenv("CL_SIMD", "on", 1);
  EXPECT_TRUE(simd::runtime_enabled());
  unsetenv("CL_SIMD");
}

// ----------------------------------------------------------------- kernels

/// Shared fixture data: a scattered "trace" of n sessions reached
/// through a shuffled index column, as the sweep does.
struct KernelInput {
  std::vector<std::uint32_t> indices;
  std::vector<double> start, duration;
  std::vector<std::uint32_t> user, isp, exp;
  std::vector<std::uint8_t> bitrate;
};

KernelInput make_input(std::size_t n, Rng& rng, bool boundary_starts) {
  // The backing columns are larger than the swarm and indexed out of
  // order — gathers must not assume contiguity.
  const std::size_t cols = n + 64;
  KernelInput in;
  in.start.resize(cols);
  in.duration.resize(cols);
  in.user.resize(cols);
  in.isp.resize(cols);
  in.exp.resize(cols);
  in.bitrate.resize(cols);
  for (std::size_t i = 0; i < cols; ++i) {
    in.start[i] = rng.uniform(0.0, 86400.0);
    in.duration[i] = rng.uniform(0.0, 5400.0);
    in.user[i] = static_cast<std::uint32_t>(rng.uniform_index(1u << 20));
    in.isp[i] = static_cast<std::uint32_t>(rng.uniform_index(3));
    in.exp[i] = static_cast<std::uint32_t>(rng.uniform_index(40));
    in.bitrate[i] = static_cast<std::uint8_t>(rng.uniform_index(4));
  }
  if (boundary_starts && cols >= 8) {
    // Exactly on / an ulp either side of a Δτ = 10 s window boundary,
    // plus denormal and epsilon-scale values — the truncation edge.
    in.start[0] = 120.0;
    in.start[1] = std::nextafter(120.0, 0.0);
    in.start[2] = std::nextafter(120.0, 1e9);
    in.start[3] = 5e-324;  // smallest denormal
    in.start[4] = std::numeric_limits<double>::epsilon();
    in.duration[4] = 5e-324;
    in.duration[5] = 0.0;
    in.duration[6] = std::nextafter(10.0, 0.0);
    in.duration[7] = std::nextafter(10.0, 1e9);
  }
  in.indices.resize(n);
  for (std::size_t g = 0; g < n; ++g) {
    in.indices[g] = static_cast<std::uint32_t>(g * 2 % cols);
  }
  return in;
}

TEST(SweepKernels, WindowBoundsSimdMatchesScalarBitwise) {
  for (const std::size_t n : boundary_lengths()) {
    Rng rng(42 + n);
    const KernelInput in = make_input(n, rng, /*boundary_starts=*/true);
    const double dt = 10.0;
    std::vector<std::uint64_t> ws_s(n), we_s(n), ws_v(n), we_v(n);
    const auto rs = sweep_kernels::window_bounds_scalar(
        in.indices, in.start.data(), in.duration.data(), dt, ws_s.data(),
        we_s.data());
    const auto rv = sweep_kernels::window_bounds_simd(
        in.indices, in.start.data(), in.duration.data(), dt, ws_v.data(),
        we_v.data());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(rs.watch_seconds),
              std::bit_cast<std::uint64_t>(rv.watch_seconds))
        << "watch-time reduction diverged at n=" << n;
    EXPECT_EQ(rs.crossings, rv.crossings) << "n=" << n;
    EXPECT_EQ(rs.max_end_window, rv.max_end_window) << "n=" << n;
    EXPECT_EQ(ws_s, ws_v) << "n=" << n;
    EXPECT_EQ(we_s, we_v) << "n=" << n;
  }
}

TEST(SweepKernels, GatherPeerColumnsSimdMatchesScalar) {
  std::array<double, 4> beta{800000.0, 1500000.0, 3000000.0, 5000000.0};
  for (const std::size_t n : boundary_lengths()) {
    if (n == 0) continue;  // kernel 2 requires n >= 1 (reads indices[0])
    Rng rng(7 + n);
    const KernelInput in = make_input(n, rng, false);
    std::vector<std::uint32_t> us(n), is(n), es(n), uv(n), iv(n), ev(n);
    std::vector<double> bs(n), bv(n);
    const auto rs = sweep_kernels::gather_peer_columns_scalar(
        in.indices, in.user.data(), in.isp.data(), in.exp.data(),
        in.bitrate.data(), beta.data(), us.data(), is.data(), es.data(),
        bs.data());
    const auto rv = sweep_kernels::gather_peer_columns_simd(
        in.indices, in.user.data(), in.isp.data(), in.exp.data(),
        in.bitrate.data(), beta.data(), uv.data(), iv.data(), ev.data(),
        bv.data());
    EXPECT_EQ(rs.max_exp, rv.max_exp) << "n=" << n;
    EXPECT_EQ(rs.single_isp, rv.single_isp) << "n=" << n;
    EXPECT_EQ(us, uv);
    EXPECT_EQ(is, iv);
    EXPECT_EQ(es, ev);
    EXPECT_EQ(bs, bv);
    // Null user output skips that gather but must not disturb the rest.
    std::vector<std::uint32_t> is2(n), es2(n);
    std::vector<double> bs2(n);
    const auto rn = sweep_kernels::gather_peer_columns(
        simd::active(), in.indices, in.user.data(), in.isp.data(),
        in.exp.data(), in.bitrate.data(), beta.data(), nullptr, is2.data(),
        es2.data(), bs2.data());
    EXPECT_EQ(rn.max_exp, rs.max_exp);
    EXPECT_EQ(rn.single_isp, rs.single_isp);
    EXPECT_EQ(is2, is);
    EXPECT_EQ(es2, es);
    EXPECT_EQ(bs2, bs);
  }
}

TEST(SweepKernels, GatherPopsSimdMatchesScalar) {
  std::vector<std::uint32_t> table(40);
  for (std::size_t e = 0; e < table.size(); ++e) {
    table[e] = static_cast<std::uint32_t>(e / 3);
  }
  for (const std::size_t n : boundary_lengths()) {
    Rng rng(11 + n);
    std::vector<std::uint32_t> g_exp(n);
    for (auto& e : g_exp) {
      e = static_cast<std::uint32_t>(rng.uniform_index(table.size()));
    }
    std::vector<std::uint32_t> ps(n), pv(n);
    const std::uint32_t ms =
        sweep_kernels::gather_pops_scalar(g_exp.data(), n, table.data(),
                                          ps.data());
    const std::uint32_t mv = sweep_kernels::gather_pops_simd(
        g_exp.data(), n, table.data(), pv.data());
    EXPECT_EQ(ms, mv) << "n=" << n;
    EXPECT_EQ(ps, pv) << "n=" << n;
  }
}

TEST(SweepKernels, UploadSharesSimdMatchesScalarBitwise) {
  constexpr std::size_t kExps = 16;
  constexpr std::size_t kPops = 8;
  for (const std::size_t n : boundary_lengths()) {
    Rng rng(23 + n);
    std::vector<ActivePeer> actives(n);
    std::vector<std::uint32_t> cnt_exp(kExps, 0), cnt_pop(kPops, 0);
    std::vector<double> dem_exp(kExps, 0.0), dem_pop(kPops, 0.0);
    for (auto& a : actives) {
      a.exp = static_cast<std::uint32_t>(rng.uniform_index(kExps));
      a.pop = a.exp % kPops;
      ++cnt_exp[a.exp];
      ++cnt_pop[a.pop];
    }
    for (std::size_t e = 0; e < kExps; ++e) {
      // Half the buckets have zero demand — exercises the masked select.
      if (cnt_exp[e] > 0 && e % 2 == 0) dem_exp[e] = rng.uniform(1.0, 9e6);
    }
    for (std::size_t p = 0; p < kPops; ++p) {
      if (cnt_pop[p] > 0 && p % 2 == 1) dem_pop[p] = rng.uniform(1.0, 9e6);
    }
    const double core_term = 1234.5;
    std::vector<PeerAllocation> outs(n), outv(n);
    sweep_kernels::upload_shares_scalar(actives.data(), n, dem_exp.data(),
                                        cnt_exp.data(), dem_pop.data(),
                                        cnt_pop.data(), core_term,
                                        outs.data());
    sweep_kernels::upload_shares_simd(actives.data(), n, dem_exp.data(),
                                      cnt_exp.data(), dem_pop.data(),
                                      cnt_pop.data(), core_term, outv.data());
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(outs[j].upload_bits),
                std::bit_cast<std::uint64_t>(outv[j].upload_bits))
          << "n=" << n << " j=" << j;
    }
  }
}

TEST(SweepKernels, FoldTrafficSimdMatchesScalarBitwise) {
  Rng rng(31);
  for (int rep = 0; rep < 100; ++rep) {
    double tbs[sweep_kernels::kTrafficLanes];
    double tbv[sweep_kernels::kTrafficLanes];
    double al[sweep_kernels::kTrafficLanes];
    for (std::size_t k = 0; k < sweep_kernels::kTrafficLanes; ++k) {
      tbs[k] = tbv[k] = rng.uniform(0.0, 1e12);
      al[k] = rng.uniform(0.0, 1e7);
    }
    const double windows = rng.uniform(1.0, 8640.0);
    sweep_kernels::fold_traffic_scalar(tbs, al, windows);
    sweep_kernels::fold_traffic_simd(tbv, al, windows);
    for (std::size_t k = 0; k < sweep_kernels::kTrafficLanes; ++k) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(tbs[k]),
                std::bit_cast<std::uint64_t>(tbv[k]));
    }
  }
}

}  // namespace
}  // namespace cl
