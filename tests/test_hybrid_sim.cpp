// Tests for sim/hybrid_sim.h — the discrete time-step simulator.
#include "sim/hybrid_sim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "model/savings.h"
#include "util/error.h"
#include "trace/synthetic.h"
#include "util/rng.h"

namespace cl {
namespace {

const Metro& metro() {
  static const Metro m = Metro::london_top5();
  return m;
}

SessionRecord session(std::uint32_t user, std::uint32_t content, double start,
                      double duration, std::uint32_t isp = 0,
                      std::uint32_t exp = 0,
                      BitrateClass bitrate = BitrateClass::kSd) {
  SessionRecord s;
  s.user = user;
  s.household = user;
  s.content = content;
  s.isp = isp;
  s.exp = exp;
  s.bitrate = bitrate;
  s.start = start;
  s.duration = duration;
  return s;
}

Trace make_trace(std::vector<SessionRecord> sessions, double span_s) {
  std::sort(sessions.begin(), sessions.end(),
            [](const SessionRecord& a, const SessionRecord& b) {
              return a.start < b.start;
            });
  return Trace{std::move(sessions), Seconds{span_s}, {}, {}};
}

/// Poisson single-swarm trace with constant arrival rate (no diurnal
/// pattern) — the exact setting of the analytical model.
Trace poisson_swarm(double capacity, double mean_duration_s, double span_s,
                    std::uint64_t seed, std::uint32_t isp = 0) {
  Rng rng(seed);
  std::vector<SessionRecord> sessions;
  const double rate = capacity / mean_duration_s;  // arrivals per second
  double t = rng.exponential(rate);
  std::uint32_t user = 0;
  while (t < span_s) {
    const double d =
        std::min(rng.exponential(1.0 / mean_duration_s), span_s - t);
    auto s = session(user++, /*content=*/0, t, d, isp,
                     static_cast<std::uint32_t>(rng.uniform_index(
                         metro().isp(isp).exchange_points())));
    sessions.push_back(s);
    t += rng.exponential(rate);
  }
  return make_trace(std::move(sessions), span_s);
}

TEST(HybridSim, SingleSessionAllFromServer) {
  HybridSimulator sim(metro(), SimConfig{});
  const auto result =
      sim.run(make_trace({session(0, 0, 0.0, 600.0)}, 86400.0));
  const double expected = 1.5e6 * 600.0;
  EXPECT_NEAR(result.total.server.value(), expected, 1e-3);
  EXPECT_DOUBLE_EQ(result.total.peer_total().value(), 0.0);
}

TEST(HybridSim, EmptyTrace) {
  HybridSimulator sim(metro(), SimConfig{});
  const auto result = sim.run(make_trace({}, 86400.0));
  EXPECT_DOUBLE_EQ(result.total.total().value(), 0.0);
  EXPECT_TRUE(result.swarms.empty());
  EXPECT_TRUE(result.users.empty());
}

TEST(HybridSim, SubWindowSessionSkipped) {
  HybridSimulator sim(metro(), SimConfig{});
  const auto result = sim.run(make_trace({session(0, 0, 2.0, 5.0)}, 86400.0));
  EXPECT_DOUBLE_EQ(result.total.total().value(), 0.0);
}

TEST(HybridSim, TwoOverlappingSameExpShare) {
  HybridSimulator sim(metro(), SimConfig{});
  const auto result = sim.run(make_trace(
      {session(0, 0, 0.0, 600.0, 0, 7), session(1, 0, 0.0, 600.0, 0, 7)},
      86400.0));
  // One seed streams from the server, the other entirely from its
  // ExP-mate: 50 % offload, all of it ExP-local.
  EXPECT_NEAR(result.total.offload_fraction(), 0.5, 1e-9);
  EXPECT_NEAR(result.total.peer[index(LocalityLevel::kExchangePoint)].value(),
              1.5e6 * 600.0, 1e-3);
}

TEST(HybridSim, PartialOverlapSharesOnlyOverlap) {
  HybridSimulator sim(metro(), SimConfig{});
  // 600 s sessions overlapping for 300 s.
  const auto result = sim.run(make_trace(
      {session(0, 0, 0.0, 600.0, 0, 7), session(1, 0, 300.0, 600.0, 0, 7)},
      86400.0));
  // Total 1200 s of streaming; only the late session's 300 s of overlap is
  // peer-fed: G = 300/1200.
  EXPECT_NEAR(result.total.offload_fraction(), 0.25, 1e-9);
}

TEST(HybridSim, DifferentContentNeverShare) {
  HybridSimulator sim(metro(), SimConfig{});
  const auto result = sim.run(make_trace(
      {session(0, 0, 0.0, 600.0, 0, 7), session(1, 1, 0.0, 600.0, 0, 7)},
      86400.0));
  EXPECT_DOUBLE_EQ(result.total.peer_total().value(), 0.0);
}

TEST(HybridSim, DifferentBitrateSplitsSwarm) {
  HybridSimulator sim(metro(), SimConfig{});
  const auto result = sim.run(make_trace(
      {session(0, 0, 0.0, 600.0, 0, 7, BitrateClass::kSd),
       session(1, 0, 0.0, 600.0, 0, 7, BitrateClass::kHd)},
      86400.0));
  EXPECT_DOUBLE_EQ(result.total.peer_total().value(), 0.0);
  EXPECT_EQ(result.swarms.size(), 2u);
}

TEST(HybridSim, MixedBitrateSwarmWhenSplitDisabled) {
  SimConfig config;
  config.split_by_bitrate = false;
  HybridSimulator sim(metro(), config);
  const auto result = sim.run(make_trace(
      {session(0, 0, 0.0, 600.0, 0, 7, BitrateClass::kSd),
       session(1, 0, 0.0, 600.0, 0, 7, BitrateClass::kHd)},
      86400.0));
  EXPECT_GT(result.total.peer_total().value(), 0.0);
  EXPECT_EQ(result.swarms.size(), 1u);
}

TEST(HybridSim, IspFriendlySeparatesIsps) {
  HybridSimulator sim(metro(), SimConfig{});
  const auto result = sim.run(make_trace(
      {session(0, 0, 0.0, 600.0, 0, 7), session(1, 0, 0.0, 600.0, 1, 7)},
      86400.0));
  EXPECT_DOUBLE_EQ(result.total.peer_total().value(), 0.0);
}

TEST(HybridSim, CrossIspSharingWhenAllowed) {
  SimConfig config;
  config.isp_friendly = false;
  HybridSimulator sim(metro(), config);
  const auto result = sim.run(make_trace(
      {session(0, 0, 0.0, 600.0, 0, 7), session(1, 0, 0.0, 600.0, 1, 7)},
      86400.0));
  EXPECT_NEAR(result.total.cross_isp.value(), 1.5e6 * 600.0, 1e-3);
}

TEST(HybridSim, ConservationOnRealisticTrace) {
  TraceConfig tc;
  tc.days = 3;
  tc.users = 3000;
  tc.exemplar_views = {15000};
  tc.catalogue_tail = 200;
  tc.tail_views = 10000;
  const Trace trace = TraceGenerator(tc, metro()).generate();
  HybridSimulator sim(metro(), SimConfig{});
  const auto result = sim.run(trace);

  // (1) Simulated volume must track the trace's useful volume (windowing
  // loses partial windows, < 2 %).
  EXPECT_NEAR(result.total.total().value() / trace.total_volume().value(),
              1.0, 0.02);

  // (2) Swarm traffic must add up to the grand total.
  TrafficBreakdown swarm_sum;
  for (const auto& s : result.swarms) swarm_sum += s.traffic;
  EXPECT_NEAR(swarm_sum.total().value(), result.total.total().value(), 1.0);

  // (3) Hourly totals must add up to the grand total (and the derived
  // daily view must agree with them).
  TrafficBreakdown hourly_sum;
  for (const auto& hour : result.hourly) {
    for (const auto& t : hour) hourly_sum += t;
  }
  EXPECT_NEAR(hourly_sum.total().value(), result.total.total().value(), 1.0);
  TrafficBreakdown daily_sum;
  for (const auto& day : result.daily_grid()) {
    for (const auto& t : day) daily_sum += t;
  }
  EXPECT_NEAR(daily_sum.total().value(), result.total.total().value(), 1.0);

  // (4) Per-user downloads must add up to the grand total; per-user
  // uploads must equal peer-delivered bits.
  double down = 0, up = 0;
  for (const auto& [user, traffic] : result.users) {
    down += traffic.downloaded.value();
    up += traffic.uploaded.value();
  }
  EXPECT_NEAR(down, result.total.total().value(), 1.0);
  EXPECT_NEAR(up, result.total.peer_total().value(), 1.0);
}

TEST(HybridSim, CollectTogglesOnlyDropMetrics) {
  TraceConfig tc;
  tc.days = 2;
  tc.users = 1000;
  tc.exemplar_views = {5000};
  tc.catalogue_tail = 50;
  tc.tail_views = 3000;
  const Trace trace = TraceGenerator(tc, metro()).generate();
  SimConfig lean;
  lean.collect_hourly = false;
  lean.collect_per_user = false;
  lean.collect_swarms = false;
  const auto full = HybridSimulator(metro(), SimConfig{}).run(trace);
  const auto slim = HybridSimulator(metro(), lean).run(trace);
  EXPECT_NEAR(slim.total.total().value(), full.total.total().value(), 1.0);
  EXPECT_NEAR(slim.total.peer_total().value(),
              full.total.peer_total().value(), 1.0);
  EXPECT_TRUE(slim.swarms.empty());
  EXPECT_TRUE(slim.users.empty());
  EXPECT_TRUE(slim.hourly.empty());
  EXPECT_TRUE(slim.daily_grid().empty());
}

TEST(HybridSim, MeasuredCapacityMatchesLittlesLaw) {
  const Trace trace = poisson_swarm(4.0, 1800.0, 10 * 86400.0, 77);
  SimConfig config;
  HybridSimulator sim(metro(), config);
  const auto result = sim.run(trace);
  double capacity = 0;
  for (const auto& s : result.swarms) capacity += s.capacity;
  EXPECT_NEAR(capacity, 4.0, 0.4);
}

TEST(HybridSim, OffloadMatchesTheoryOnPoissonSwarm) {
  // The core validation of Fig. 2: a constant-rate Poisson swarm's
  // simulated offload must match Eq. 3 at the measured capacity.
  SimConfig config;
  config.split_by_bitrate = true;
  for (double capacity : {0.5, 2.0, 8.0}) {
    // Single bitrate class so the swarm is not subdivided.
    Rng rng(1234);
    std::vector<SessionRecord> sessions;
    const double span_s = 20 * 86400.0;
    const double mean_d = 1800.0;
    const double rate = capacity / mean_d;
    double t = rng.exponential(rate);
    std::uint32_t user = 0;
    while (t < span_s) {
      sessions.push_back(session(
          user++, 0, t, std::min(rng.exponential(1.0 / mean_d), span_s - t),
          0,
          static_cast<std::uint32_t>(rng.uniform_index(345))));
      t += rng.exponential(rate);
    }
    const Trace trace = make_trace(std::move(sessions), span_s);
    const auto result = HybridSimulator(metro(), config).run(trace);
    double measured_capacity = 0;
    for (const auto& s : result.swarms) measured_capacity += s.capacity;
    const SavingsModel model(valancius_params(), metro().isp(0));
    const double g_theory = model.offload(measured_capacity, 1.0);
    EXPECT_NEAR(result.total.offload_fraction(), g_theory, 0.03)
        << "capacity " << capacity;
  }
}

TEST(HybridSim, SavingsMatchTheoryOnPoissonSwarm) {
  const Trace trace = poisson_swarm(5.0, 1800.0, 20 * 86400.0, 4242);
  SimConfig config;
  const auto result = HybridSimulator(metro(), config).run(trace);
  double measured_capacity = 0;
  for (const auto& s : result.swarms) measured_capacity += s.capacity;
  for (const auto& params : standard_params()) {
    const EnergyAccountant accountant{CostFunctions(params)};
    const SavingsModel model(params, metro().isp(0));
    const double sim_savings = accountant.savings(result.total);
    const double theory = model.savings(measured_capacity, 1.0);
    EXPECT_NEAR(sim_savings, theory, 0.02) << params.name;
  }
}

TEST(HybridSim, MatchersAgreeAtFullUploadRatio) {
  // At q/β = 1 both matchers deliver (L−1)·β·Δτ per window: the existence
  // matcher by construction, the capacity matcher because aggregate budget
  // L·β covers the (L−1)·β demand.
  const Trace trace = poisson_swarm(3.0, 1800.0, 5 * 86400.0, 99);
  SimConfig existence;
  SimConfig capacity;
  capacity.matcher = MatcherKind::kCapacity;
  const auto r_exist = HybridSimulator(metro(), existence).run(trace);
  const auto r_cap = HybridSimulator(metro(), capacity).run(trace);
  EXPECT_NEAR(r_cap.total.offload_fraction(),
              r_exist.total.offload_fraction(), 1e-9);
}

TEST(HybridSim, CapacityMatcherPoolsUploadersBelowFullRatio) {
  // At q/β < 1 the capacity matcher lets several uploaders collaborate to
  // feed one downloader (the paper notes SD streams "can be sustained if
  // two or more peers collaborate"), beating the per-pair-limited
  // existence model.
  const Trace trace = poisson_swarm(3.0, 1800.0, 5 * 86400.0, 99);
  SimConfig existence;
  SimConfig capacity;
  capacity.matcher = MatcherKind::kCapacity;
  existence.q_over_beta = capacity.q_over_beta = 0.5;
  const auto r_exist = HybridSimulator(metro(), existence).run(trace);
  const auto r_cap = HybridSimulator(metro(), capacity).run(trace);
  EXPECT_GE(r_cap.total.offload_fraction(),
            r_exist.total.offload_fraction());
}

TEST(HybridSim, HourlyTrafficLandsOnCorrectHours) {
  HybridSimulator sim(metro(), SimConfig{});
  // One session in hour 0 of day 0, one in hour 0 of day 2.
  const auto result = sim.run(make_trace(
      {session(0, 0, 1000.0, 600.0, 2, 7),
       session(1, 0, 2 * 86400.0 + 1000.0, 600.0, 2, 7)},
      3 * 86400.0));
  ASSERT_EQ(result.hourly.size(), 72u);
  EXPECT_GT(result.hourly[0][2].total().value(), 0.0);
  EXPECT_DOUBLE_EQ(result.hourly[1][2].total().value(), 0.0);
  EXPECT_GT(result.hourly[48][2].total().value(), 0.0);
  EXPECT_DOUBLE_EQ(result.hourly[0][0].total().value(), 0.0);
  // The derived daily view groups 24 hour rows per day.
  const auto daily = result.daily_grid();
  ASSERT_EQ(daily.size(), 3u);
  EXPECT_GT(daily[0][2].total().value(), 0.0);
  EXPECT_DOUBLE_EQ(daily[1][2].total().value(), 0.0);
  EXPECT_GT(daily[2][2].total().value(), 0.0);
  EXPECT_DOUBLE_EQ(daily[0][0].total().value(), 0.0);
}

TEST(HybridSim, SessionSpanningHourBoundarySplitsAcrossHours) {
  HybridSimulator sim(metro(), SimConfig{});
  // 600 s session centred on the first hour boundary.
  const auto result = sim.run(
      make_trace({session(0, 0, 3600.0 - 300.0, 600.0, 0, 7)}, 86400.0));
  ASSERT_EQ(result.hourly.size(), 24u);
  const double h0 = result.hourly[0][0].total().value();
  const double h1 = result.hourly[1][0].total().value();
  EXPECT_NEAR(h0, h1, 1e-3);
  EXPECT_NEAR(h0 + h1, 1.5e6 * 600.0, 1e-3);
  for (std::size_t h = 2; h < result.hourly.size(); ++h) {
    EXPECT_DOUBLE_EQ(result.hourly[h][0].total().value(), 0.0);
  }
}

TEST(HybridSim, SessionSpanningMidnightSplitsAcrossDays) {
  HybridSimulator sim(metro(), SimConfig{});
  const auto result = sim.run(make_trace(
      {session(0, 0, 86400.0 - 300.0, 600.0, 0, 7)}, 2 * 86400.0));
  ASSERT_EQ(result.hourly.size(), 48u);
  const auto daily = result.daily_grid();
  ASSERT_EQ(daily.size(), 2u);
  const double d0 = daily[0][0].total().value();
  const double d1 = daily[1][0].total().value();
  EXPECT_NEAR(d0, d1, 1e-3);
  EXPECT_NEAR(d0 + d1, 1.5e6 * 600.0, 1e-3);
  // The split lands in the last hour of day 0 and the first of day 1.
  EXPECT_NEAR(result.hourly[23][0].total().value(), d0, 1e-9);
  EXPECT_NEAR(result.hourly[24][0].total().value(), d1, 1e-9);
}

TEST(HybridSim, DeterministicAcrossRuns) {
  const Trace trace = poisson_swarm(2.0, 1200.0, 3 * 86400.0, 7);
  const auto a = HybridSimulator(metro(), SimConfig{}).run(trace);
  const auto b = HybridSimulator(metro(), SimConfig{}).run(trace);
  EXPECT_DOUBLE_EQ(a.total.server.value(), b.total.server.value());
  EXPECT_DOUBLE_EQ(a.total.peer_total().value(),
                   b.total.peer_total().value());
}

TEST(HybridSim, RejectsInvalidConfig) {
  SimConfig config;
  config.window = Seconds{0.0};
  EXPECT_THROW(HybridSimulator(metro(), config), InvalidArgument);
  config = SimConfig{};
  config.q_over_beta = -1.0;
  EXPECT_THROW(HybridSimulator(metro(), config), InvalidArgument);
}

TEST(HybridSim, WindowSizeInsensitivity) {
  // Δτ = 10 s vs Δτ = 30 s must agree closely on long sessions.
  const Trace trace = poisson_swarm(3.0, 1800.0, 5 * 86400.0, 13);
  SimConfig w10, w30;
  w30.window = Seconds{30.0};
  const auto r10 = HybridSimulator(metro(), w10).run(trace);
  const auto r30 = HybridSimulator(metro(), w30).run(trace);
  EXPECT_NEAR(r30.total.offload_fraction(), r10.total.offload_fraction(),
              0.01);
}

}  // namespace
}  // namespace cl
