// Tests for util/args.h — the CLI argument parser.
#include "util/args.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace cl {
namespace {

TEST(Args, CommandAndFlags) {
  const Args args({"simulate", "--qb", "0.5", "--trace", "t.csv"}, {});
  EXPECT_EQ(args.command(), "simulate");
  EXPECT_EQ(args.get_or("trace", ""), "t.csv");
  EXPECT_DOUBLE_EQ(args.get_double("qb", 1.0), 0.5);
}

TEST(Args, EqualsSyntax) {
  const Args args({"plan", "--target=0.3"}, {});
  EXPECT_DOUBLE_EQ(args.get_double("target", 0), 0.3);
}

TEST(Args, BooleanFlags) {
  const Args args({"simulate", "--cross-isp"}, {"cross-isp"});
  EXPECT_TRUE(args.has("cross-isp"));
  EXPECT_FALSE(args.has("mixed-bitrate"));
}

TEST(Args, NoCommand) {
  const Args args({"--help"}, {"help"});
  EXPECT_EQ(args.command(), "");
  EXPECT_TRUE(args.has("help"));
}

TEST(Args, Defaults) {
  const Args args({"model"}, {});
  EXPECT_EQ(args.get("missing"), std::nullopt);
  EXPECT_EQ(args.get_or("missing", "x"), "x");
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(args.get_int("missing", 7), 7);
}

TEST(Args, IntParsing) {
  const Args args({"generate", "--seed", "12345"}, {});
  EXPECT_EQ(args.get_int("seed", 0), 12345);
}

TEST(Args, RejectsMissingValue) {
  EXPECT_THROW(Args({"simulate", "--qb"}, {}), ParseError);
}

TEST(Args, RejectsDuplicateFlag) {
  EXPECT_THROW(Args({"x", "--a", "1", "--a", "2"}, {}), ParseError);
}

TEST(Args, RejectsStrayPositional) {
  EXPECT_THROW(Args({"simulate", "stray"}, {}), ParseError);
}

TEST(Args, RejectsNonNumeric) {
  const Args args({"x", "--qb", "fast"}, {});
  EXPECT_THROW((void)args.get_double("qb", 1.0), ParseError);
  const Args args2({"x", "--n", "1.5"}, {});
  EXPECT_THROW((void)args2.get_int("n", 0), ParseError);
}

TEST(Args, TracksUnusedFlags) {
  const Args args({"x", "--used", "1", "--typo", "2"}, {});
  EXPECT_TRUE(args.has("used"));
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Args, ParseFromArgcArgv) {
  const char* argv[] = {"prog", "plan", "--target", "0.2"};
  const Args args = Args::parse(4, argv);
  EXPECT_EQ(args.command(), "plan");
  EXPECT_DOUBLE_EQ(args.get_double("target", 0), 0.2);
}

}  // namespace
}  // namespace cl
