// End-to-end integration tests: a scaled London month flows through the
// whole pipeline and must reproduce the *shape* of the paper's findings.
#include <gtest/gtest.h>

#include <algorithm>
#include "core/analyzer.h"
#include "core/carbon_ledger.h"
#include "core/planner.h"
#include "trace/filter.h"
#include "trace/synthetic.h"
#include "trace/trace_io.h"
#include "trace/trace_stats.h"
#include "util/histogram.h"
#include "util/stats.h"

#include <sstream>

namespace cl {
namespace {

const Metro& metro() {
  static const Metro m = Metro::london_top5();
  return m;
}

// One scaled month shared by all tests in this file (generation + first
// simulation dominate the cost; do it once).
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const TraceConfig tc = TraceConfig::london_month_scaled(/*days=*/6);
    generator_ = new TraceGenerator(tc, metro());
    trace_ = new Trace(generator_->generate());
    analyzer_ = new Analyzer(metro(), SimConfig{});
    result_ = new SimResult(analyzer_->simulate(*trace_));
  }

  static void TearDownTestSuite() {
    delete result_;
    delete analyzer_;
    delete trace_;
    delete generator_;
    result_ = nullptr;
    analyzer_ = nullptr;
    trace_ = nullptr;
    generator_ = nullptr;
  }

  static TraceGenerator* generator_;
  static Trace* trace_;
  static Analyzer* analyzer_;
  static SimResult* result_;
};

TraceGenerator* IntegrationTest::generator_ = nullptr;
Trace* IntegrationTest::trace_ = nullptr;
Analyzer* IntegrationTest::analyzer_ = nullptr;
SimResult* IntegrationTest::result_ = nullptr;

TEST_F(IntegrationTest, SystemSavingsInPaperBand) {
  // Paper headline: 24–48 % system-wide savings for the aggregate
  // workload; our scaled month must land in a compatible band, with
  // Valancius above Baliga.
  const EnergyAccountant valancius{CostFunctions(valancius_params())};
  const EnergyAccountant baliga{CostFunctions(baliga_params())};
  const double s_v = valancius.savings(result_->total);
  const double s_b = baliga.savings(result_->total);
  EXPECT_GT(s_v, 0.20);
  EXPECT_LT(s_v, 0.48);
  EXPECT_GT(s_b, 0.12);
  EXPECT_LT(s_b, 0.30);
  EXPECT_GT(s_v, s_b);
}

TEST_F(IntegrationTest, PopularItemDominatesSavings) {
  // Fig. 2/3: the popular exemplar saves a large multiple of the
  // unpopular one.
  const Analyzer& analyzer = *analyzer_;
  const Trace popular = filter_by_isp(filter_by_content(*trace_, 0), 0);
  const Trace unpopular = filter_by_isp(filter_by_content(*trace_, 2), 0);
  const auto e_pop = analyzer.analyze_swarm(popular, 0);
  const auto e_unpop = analyzer.analyze_swarm(unpopular, 0);
  EXPECT_GT(e_pop.models[0].sim_savings,
            3.0 * e_unpop.models[0].sim_savings);
  EXPECT_LT(e_unpop.models[0].sim_savings, 0.10);  // paper: < 10 %
}

TEST_F(IntegrationTest, MedianSwarmSavingsTiny) {
  // Fig. 3: median per-item savings ≈ 2 %, top items much larger.
  const auto dist = analyzer_->swarm_distributions(*trace_);
  auto savings = dist.savings[0];
  std::sort(savings.begin(), savings.end());
  const double median = quantile_sorted(savings, 0.5);
  EXPECT_LT(median, 0.10);
  EXPECT_GT(savings.back(), 0.20);
}

TEST_F(IntegrationTest, SwarmCapacityDistributionIsHeavyTailed) {
  const auto dist = analyzer_->swarm_distributions(*trace_);
  const auto ccdf = empirical_ccdf(dist.capacities);
  ASSERT_GT(ccdf.size(), 10u);
  // Most swarms are far below capacity 1; a head reaches past 5.
  std::size_t below_one = 0;
  for (double c : dist.capacities) {
    if (c < 1.0) ++below_one;
  }
  EXPECT_GT(static_cast<double>(below_one) /
                static_cast<double>(dist.capacities.size()),
            0.8);
  EXPECT_GT(*std::max_element(dist.capacities.begin(),
                              dist.capacities.end()),
            5.0);
}

TEST_F(IntegrationTest, CarbonLedgerOrderingMatchesFig6) {
  const CarbonLedger baliga(*result_, baliga_params());
  const CarbonLedger valancius(*result_, valancius_params());
  // Fig. 6: substantially more users carbon-free under Baliga than under
  // Valancius, and sharers who upload get CCT > -1.
  EXPECT_GT(baliga.fraction_carbon_free(),
            valancius.fraction_carbon_free() + 0.05);
  EXPECT_GT(baliga.fraction_carbon_free(), 0.3);
}

TEST_F(IntegrationTest, DailySeriesStable) {
  const auto report = analyzer_->daily_report(*trace_);
  // Savings of the biggest ISP fluctuate day to day but stay in the band
  // of the paper's Fig. 4 (~0.25–0.35 for Valancius, ~0.14–0.22 Baliga).
  for (std::size_t d = 0; d < report.sim[0].size(); ++d) {
    EXPECT_GT(report.sim[0][d][0], 0.20);
    EXPECT_LT(report.sim[0][d][0], 0.38);
    EXPECT_GT(report.sim[1][d][0], 0.12);
    EXPECT_LT(report.sim[1][d][0], 0.26);
  }
}

TEST_F(IntegrationTest, TheoryUsableForPlanning) {
  // Closed form predicts the aggregate within ~8 points — the property
  // the paper argues makes Eq. 12 usable for planning.
  const auto outcomes = analyzer_->aggregate(*trace_);
  for (const auto& o : outcomes) {
    EXPECT_NEAR(o.sim_savings, o.theory_savings, 0.08) << o.model;
  }
}

TEST_F(IntegrationTest, TraceSurvivesIoRoundTripThroughPipeline) {
  // Writing the trace out, reading it back and re-simulating must
  // reproduce identical energy numbers.
  std::ostringstream out;
  write_trace(out, *trace_);
  std::istringstream in(out.str());
  const Trace restored = read_trace(in);
  const auto rerun = analyzer_->simulate(restored);
  EXPECT_NEAR(rerun.total.total().value(), result_->total.total().value(),
              result_->total.total().value() * 1e-9);
  EXPECT_NEAR(rerun.total.peer_total().value(),
              result_->total.peer_total().value(),
              result_->total.peer_total().value() * 1e-9);
}

TEST_F(IntegrationTest, TableOneScalesSanely) {
  const TraceStats stats = compute_stats(*trace_);
  EXPECT_GT(stats.distinct_users, 10000u);
  EXPECT_LT(stats.distinct_households, stats.distinct_users);
  EXPECT_GT(stats.sessions, 80000u);
  EXPECT_GT(stats.mean_session_duration.minutes(), 10.0);
  EXPECT_LT(stats.mean_session_duration.minutes(), 45.0);
}

TEST_F(IntegrationTest, UploadBandwidthSweepMatchesFig2Ordering) {
  // Savings increase monotonically with q/β on the popular item.
  const Trace popular = filter_by_isp(filter_by_content(*trace_, 0), 0);
  double prev = -1.0;
  for (double ratio : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    SimConfig config;
    config.q_over_beta = ratio;
    Analyzer analyzer(metro(), config);
    const auto e = analyzer.analyze_swarm(popular, 0);
    EXPECT_GT(e.models[0].sim_savings, prev);
    prev = e.models[0].sim_savings;
  }
}

TEST_F(IntegrationTest, IspFriendlinessCostsSavings) {
  // The paper treats ISP-friendly swarms as a lower bound: merging swarms
  // across ISPs can only raise the offload fraction.
  SimConfig cross;
  cross.isp_friendly = false;
  const auto merged = HybridSimulator(metro(), cross).run(*trace_);
  EXPECT_GE(merged.total.offload_fraction(),
            result_->total.offload_fraction());
}

}  // namespace
}  // namespace cl
