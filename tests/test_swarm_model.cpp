// Tests for model/swarm_model.h — the M/M/∞ swarm mathematics.
#include "model/swarm_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cl {
namespace {

TEST(SwarmModel, LittlesLaw) {
  const auto swarm = SwarmModel::from_rate(Seconds::from_minutes(30),
                                           1.0 / 600.0);  // 1800s · 1/600s
  EXPECT_NEAR(swarm.capacity(), 3.0, 1e-12);
}

TEST(SwarmModel, POnline) {
  EXPECT_NEAR(SwarmModel(0).p_online(), 0.0, 1e-15);
  EXPECT_NEAR(SwarmModel(1).p_online(), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(SwarmModel(50).p_online(), 1.0, 1e-12);
}

TEST(SwarmModel, PmfSumsToOne) {
  for (double c : {0.1, 1.0, 5.0, 40.0}) {
    const SwarmModel swarm(c);
    double sum = 0;
    for (unsigned l = 0; l < 400; ++l) sum += swarm.occupancy_pmf(l);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "c=" << c;
  }
}

TEST(SwarmModel, PmfMeanIsCapacity) {
  const SwarmModel swarm(7.5);
  double mean = 0;
  for (unsigned l = 0; l < 200; ++l) {
    mean += l * swarm.occupancy_pmf(l);
  }
  EXPECT_NEAR(mean, 7.5, 1e-9);
}

TEST(SwarmModel, PmfAtZeroCapacity) {
  const SwarmModel swarm(0);
  EXPECT_DOUBLE_EQ(swarm.occupancy_pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(swarm.occupancy_pmf(3), 0.0);
}

TEST(SwarmModel, RejectsNegativeCapacity) {
  EXPECT_THROW(SwarmModel(-1.0), InvalidArgument);
}

TEST(ExpectedExcess, KnownValues) {
  EXPECT_NEAR(expected_excess(0.0), 0.0, 1e-15);
  EXPECT_NEAR(expected_excess(1.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(expected_excess(10.0), 9.0 + std::exp(-10.0), 1e-12);
}

TEST(ExpectedExcess, MatchesPoissonExpectationNumerically) {
  for (double c : {0.3, 1.0, 4.0, 20.0}) {
    const SwarmModel swarm(c);
    double expectation = 0;
    for (unsigned l = 2; l < 400; ++l) {
      expectation += (l - 1.0) * swarm.occupancy_pmf(l);
    }
    EXPECT_NEAR(expected_excess(c), expectation, 1e-8) << "c=" << c;
  }
}

TEST(ExpectedExcess, SeriesBranchContinuity) {
  // The c < 1e-2 series and the expm1 path must agree at the seam.
  // A(c) ~ c²/2, so the ratio across the seam must track (c1/c2)².
  const double below = expected_excess(9.999e-3);
  const double above = expected_excess(1.0001e-2);
  EXPECT_NEAR(below / above, (9.999e-3 * 9.999e-3) / (1.0001e-2 * 1.0001e-2),
              1e-5);
}

TEST(ExpectedExcess, TinyCapacityQuadratic) {
  // A(c) ~ c²/2 as c -> 0.
  for (double c : {1e-6, 1e-8, 1e-10}) {
    EXPECT_NEAR(expected_excess(c) / (c * c / 2), 1.0, 1e-3) << "c=" << c;
  }
}

TEST(ExpectedExcessNonlocal, BoundaryValues) {
  for (double c : {0.5, 2.0, 30.0}) {
    EXPECT_DOUBLE_EQ(expected_excess_nonlocal(1.0, c), 0.0);
    EXPECT_NEAR(expected_excess_nonlocal(0.0, c), expected_excess(c), 1e-12);
  }
}

TEST(ExpectedExcessNonlocal, MatchesPoissonExpectationNumerically) {
  for (double c : {0.5, 3.0, 15.0}) {
    for (double p : {0.0029, 0.111, 0.5}) {
      const SwarmModel swarm(c);
      double expectation = 0;
      for (unsigned l = 2; l < 500; ++l) {
        expectation +=
            (l - 1.0) * std::pow(1.0 - p, l - 1.0) * swarm.occupancy_pmf(l);
      }
      EXPECT_NEAR(expected_excess_nonlocal(p, c), expectation, 1e-8)
          << "c=" << c << " p=" << p;
    }
  }
}

TEST(ExpectedExcessNonlocal, DecreasesInP) {
  for (double c : {1.0, 10.0}) {
    double prev = expected_excess_nonlocal(0.0, c);
    for (double p : {0.01, 0.1, 0.3, 0.7, 1.0}) {
      const double cur = expected_excess_nonlocal(p, c);
      EXPECT_LE(cur, prev + 1e-12);
      prev = cur;
    }
  }
}

TEST(ExpectedExcessNonlocal, VanishesAtLargeCapacityForPositiveP) {
  // e^{-cp} kills the term once c·p >> 1: nobody needs a non-local peer.
  EXPECT_LT(expected_excess_nonlocal(0.1, 500.0), 1e-12);
}

TEST(ExpectedExcessNonlocal, SmallCsBranchContinuity) {
  const double p = 0.999;  // forces tiny c·s = c·0.001
  const double below = expected_excess_nonlocal(p, 0.09);
  const double above = expected_excess_nonlocal(p, 0.11);
  EXPECT_GT(above, below);
  EXPECT_NEAR(above / below, (0.11 * 0.11) / (0.09 * 0.09), 0.05);
}

TEST(ExpectedExcessNonlocal, RejectsOutOfDomain) {
  EXPECT_THROW((void)expected_excess_nonlocal(-0.1, 1.0), InvalidArgument);
  EXPECT_THROW((void)expected_excess_nonlocal(1.1, 1.0), InvalidArgument);
  EXPECT_THROW((void)expected_excess_nonlocal(0.5, -1.0), InvalidArgument);
}

TEST(SwarmModel, MonteCarloOccupancyMatchesPoisson) {
  // Simulate an M/M/∞ queue directly and compare the time-averaged
  // occupancy with Poisson(c): arrivals rate r, service mean u.
  const double r = 0.02, u = 200.0;  // c = 4
  Rng rng(99);
  double t = 0;
  std::vector<double> departures;
  RunningStats occupancy;
  const double horizon = 4e5;
  double next_arrival = rng.exponential(r);
  double last_t = 0;
  double occ_time_weighted = 0;
  while (t < horizon) {
    // Next event: arrival or earliest departure.
    double next_departure = departures.empty()
        ? std::numeric_limits<double>::infinity()
        : *std::min_element(departures.begin(), departures.end());
    const double next_t = std::min(next_arrival, next_departure);
    occ_time_weighted += static_cast<double>(departures.size()) * (next_t - last_t);
    last_t = next_t;
    t = next_t;
    if (next_arrival <= next_departure) {
      departures.push_back(t + rng.exponential(1.0 / u));
      next_arrival = t + rng.exponential(r);
    } else {
      departures.erase(
          std::min_element(departures.begin(), departures.end()));
    }
  }
  EXPECT_NEAR(occ_time_weighted / horizon, r * u, 0.15);
}

// Property sweep: expected_excess is increasing and convex-ish in c, and
// bounded by c-1 < A(c) <= c.
class ExpectedExcessSweep : public ::testing::TestWithParam<double> {};

TEST_P(ExpectedExcessSweep, Bounds) {
  const double c = GetParam();
  const double a = expected_excess(c);
  EXPECT_GE(a, 0.0);
  EXPECT_LE(a, c);
  EXPECT_GE(a, c - 1.0);
}

TEST_P(ExpectedExcessSweep, MonotoneIncreasing) {
  const double c = GetParam();
  EXPECT_LE(expected_excess(c), expected_excess(c * 1.1) + 1e-15);
}

INSTANTIATE_TEST_SUITE_P(CapacityGrid, ExpectedExcessSweep,
                         ::testing::Values(1e-6, 1e-4, 0.01, 0.1, 0.37, 1.0,
                                           2.0, 5.0, 10.0, 50.0, 100.0,
                                           1000.0, 1e5));

}  // namespace
}  // namespace cl
