// Tests for util/table.h — console table rendering and format helpers.
#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace cl {
namespace {

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Fmt, Scientific) {
  EXPECT_EQ(fmt_sci(12345.0, 2), "1.23e+04");
}

TEST(FmtCount, ThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(23500000), "23,500,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
}

TEST(FmtPct, Percentage) {
  EXPECT_EQ(fmt_pct(0.345), "34.5%");
  EXPECT_EQ(fmt_pct(0.351, 0), "35%");
  EXPECT_EQ(fmt_pct(-0.1), "-10.0%");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "v"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name    v"), std::string::npos);
  EXPECT_NE(text.find("longer  22"), std::string::npos);
  EXPECT_NE(text.find("------"), std::string::npos);
}

TEST(TextTable, NumericRowHelper) {
  TextTable t({"label", "x", "y"});
  t.add_row_numeric("row", {1.23456, 2.0}, 2);
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("1.23"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
  EXPECT_THROW(t.add_row_numeric("l", {1.0, 2.0}), InvalidArgument);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), InvalidArgument);
}

}  // namespace
}  // namespace cl
