// Tests for model/carbon_credit.h — the carbon credit transfer scheme
// (Eq. 13 and the per-user variant).
#include "model/carbon_credit.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.h"

namespace cl {
namespace {

TEST(Cct, NonSharingUserIsMinusOne) {
  for (const auto& p : standard_params()) {
    EXPECT_DOUBLE_EQ(cct_from_offload(0.0, p), -1.0);
  }
}

TEST(Cct, CeilingMatchesPaper) {
  // Paper Section V: +18 % (Valancius), +58 % (Baliga) at G = 1.
  EXPECT_NEAR(cct_ceiling(valancius_params()), 0.1837, 0.001);
  EXPECT_NEAR(cct_ceiling(baliga_params()), 0.5774, 0.001);
}

TEST(Cct, MonotoneInOffload) {
  const auto p = baliga_params();
  double prev = -1.0;
  for (double g : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    const double cct = cct_from_offload(g, p);
    EXPECT_GT(cct, prev);
    prev = cct;
  }
}

TEST(Cct, NeutralOffloadIsExactZeroCrossing) {
  for (const auto& p : standard_params()) {
    const double g_star = carbon_neutral_offload(p);
    EXPECT_NEAR(cct_from_offload(g_star, p), 0.0, 1e-12);
    EXPECT_LT(cct_from_offload(g_star * 0.99, p), 0.0);
    EXPECT_GT(cct_from_offload(std::min(1.0, g_star * 1.01), p), 0.0);
  }
}

TEST(Cct, NeutralOffloadValues) {
  // G* = lγm/(PUE·γs − lγm): 107/146.32 ≈ 0.731 (Valancius),
  // 107/230.56 ≈ 0.464 (Baliga).
  EXPECT_NEAR(carbon_neutral_offload(valancius_params()), 0.7313, 0.001);
  EXPECT_NEAR(carbon_neutral_offload(baliga_params()), 0.4641, 0.001);
}

TEST(Cct, NeutralityUnreachableWithWeakServer) {
  auto p = valancius_params();
  p.gamma_server = EnergyPerBit{50.0};  // PUE·γs = 60 < lγm = 107
  EXPECT_THROW((void)carbon_neutral_offload(p), InvalidArgument);
}

TEST(Cct, RejectsOutOfRangeOffload) {
  EXPECT_THROW((void)cct_from_offload(-0.1, valancius_params()), InvalidArgument);
  EXPECT_THROW((void)cct_from_offload(1.1, valancius_params()), InvalidArgument);
}

TEST(PerUserCct, PureDownloaderIsMinusOne) {
  for (const auto& p : standard_params()) {
    EXPECT_DOUBLE_EQ(per_user_cct(Bits{1e9}, Bits{0}, p), -1.0);
  }
}

TEST(PerUserCct, NoTrafficIsNeutral) {
  EXPECT_DOUBLE_EQ(per_user_cct(Bits{0}, Bits{0}, valancius_params()), 0.0);
}

TEST(PerUserCct, BalancedUploaderMatchesSystemEquation) {
  // A user who uploads exactly G/(1) of what they download reproduces the
  // system-level Eq. 13: U = G·D ⇒ CCT_u = cct_from_offload(G).
  const auto p = baliga_params();
  const double g = 0.6;
  EXPECT_NEAR(per_user_cct(Bits{1e9}, Bits{g * 1e9}, p),
              cct_from_offload(g, p), 1e-12);
}

TEST(PerUserCct, HeavyUploaderGoesPositive) {
  const auto p = baliga_params();
  EXPECT_GT(per_user_cct(Bits{1e9}, Bits{1e9}, p), 0.0);
}

TEST(PerUserCct, MonotoneInUpload) {
  const auto p = valancius_params();
  double prev = -1.0;
  for (double u : {0.0, 0.3, 0.7, 1.0, 2.0}) {
    const double cct = per_user_cct(Bits{1e9}, Bits{u * 1e9}, p);
    EXPECT_GE(cct, prev);
    prev = cct;
  }
}

TEST(PerUserCct, RejectsNegativeVolumes) {
  EXPECT_THROW((void)per_user_cct(Bits{-1}, Bits{0}, valancius_params()),
               InvalidArgument);
  EXPECT_THROW((void)per_user_cct(Bits{0}, Bits{-1}, valancius_params()),
               InvalidArgument);
}

TEST(CreditEnergy, Formula) {
  const auto p = valancius_params();
  EXPECT_NEAR(credit_energy(Bits{1e9}, p).value(), 1.2 * 211.1 * 1e9, 1.0);
}

TEST(UserEnergy, Formula) {
  const auto p = valancius_params();
  EXPECT_NEAR(user_energy(Bits{1e9}, Bits{1e9}, p).value(),
              1.07 * 100.0 * 2e9, 1.0);
}

TEST(Cct, ConsistencyBetweenAbsoluteAndNormalised) {
  // (credit − spend)/spend must equal cct_from_offload when U = G·D.
  const auto p = baliga_params();
  const double g = 0.4;
  const Bits d{1e9}, u{g * 1e9};
  const double credit = credit_energy(u, p).value();
  const double spend = user_energy(d, u, p).value();
  EXPECT_NEAR((credit - spend) / spend, cct_from_offload(g, p), 1e-12);
}

}  // namespace
}  // namespace cl
