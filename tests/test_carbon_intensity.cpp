// Tests for src/carbon/ — the grid carbon-intensity subsystem: the
// IntensityCurve presets and registry, the CarbonAccountant's hourly
// gCO₂ weighting, and the backward-compatibility contract that a flat
// curve reproduces the unweighted energy results.
#include "carbon/carbon_accountant.h"
#include "carbon/intensity_curve.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "core/analyzer.h"
#include "sim/hybrid_sim.h"
#include "trace/synthetic.h"
#include "util/error.h"

namespace cl {
namespace {

const Metro& metro() {
  static const Metro m = Metro::london_top5();
  return m;
}

IntensityCurve two_level_curve(double low, double high,
                               std::size_t high_hour) {
  std::array<double, 24> hours{};
  hours.fill(low);
  hours[high_hour] = high;
  return IntensityCurve("two_level", hours);
}

TEST(IntensityCurve, RejectsNonPositiveHours) {
  std::array<double, 24> hours{};
  hours.fill(100.0);
  hours[7] = 0.0;
  EXPECT_THROW(IntensityCurve("bad", hours), InvalidArgument);
  hours[7] = -5.0;
  EXPECT_THROW(IntensityCurve("bad", hours), InvalidArgument);
}

TEST(IntensityCurve, WrapsHourOfDay) {
  const IntensityCurve curve = two_level_curve(100.0, 400.0, 5);
  EXPECT_DOUBLE_EQ(curve.at_hour(5), 400.0);
  EXPECT_DOUBLE_EQ(curve.at_hour(29), 400.0);    // day 1, hour 5
  EXPECT_DOUBLE_EQ(curve.at_hour(24 * 7 + 5), 400.0);
  EXPECT_DOUBLE_EQ(curve.at_hour(6), 100.0);
}

TEST(IntensityCurve, SummaryStatistics) {
  const IntensityCurve curve = two_level_curve(100.0, 400.0, 0);
  EXPECT_DOUBLE_EQ(curve.min(), 100.0);
  EXPECT_DOUBLE_EQ(curve.max(), 400.0);
  EXPECT_NEAR(curve.mean(), (23 * 100.0 + 400.0) / 24.0, 1e-12);
  EXPECT_FALSE(curve.is_flat());
  const IntensityCurve flat = IntensityCurve::constant("c", 250.0);
  EXPECT_TRUE(flat.is_flat());
  EXPECT_DOUBLE_EQ(flat.mean(), 250.0);
}

TEST(IntensityCurve, GramsWeighEnergyByHour) {
  const IntensityCurve curve = two_level_curve(100.0, 400.0, 3);
  const Energy one_kwh{3.6e15};
  EXPECT_NEAR(curve.grams(one_kwh, 0), 100.0, 1e-9);
  EXPECT_NEAR(curve.grams(one_kwh, 3), 400.0, 1e-9);
  EXPECT_NEAR(curve.grams(one_kwh * 2.0, 27), 800.0, 1e-9);
}

TEST(IntensityRegistry, FlatIsFirstAndAllPresetsResolve) {
  const IntensityRegistry& registry = IntensityRegistry::instance();
  const auto names = registry.names();
  ASSERT_GE(names.size(), 4u);
  EXPECT_EQ(names[0], kFlatIntensityName);
  for (const char* name : {"flat", "uk_2018", "us_caiso", "nordic_hydro"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_EQ(registry.get(name).name(), name);
  }
  EXPECT_TRUE(registry.get(kFlatIntensityName).is_flat());
  EXPECT_FALSE(registry.get("uk_2018").is_flat());
}

TEST(IntensityRegistry, UnknownNameThrowsListingPresets) {
  const IntensityRegistry& registry = IntensityRegistry::instance();
  EXPECT_EQ(registry.find("vacuum"), nullptr);
  try {
    (void)registry.get("vacuum");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("uk_2018"), std::string::npos);
    EXPECT_NE(what.find("flat"), std::string::npos);
  }
}

TEST(IntensityRegistry, MetroPairings) {
  const IntensityRegistry& registry = IntensityRegistry::instance();
  EXPECT_EQ(registry.default_for_metro("london_top5").name(), "uk_2018");
  EXPECT_EQ(registry.default_for_metro("us_sparse").name(), "us_caiso");
  EXPECT_EQ(registry.default_for_metro("fiber_dense").name(),
            "nordic_hydro");
  // Every registered metro must be paired (checked at registry
  // construction); unpaired names fail loudly instead of silently
  // falling back to a flat grid.
  EXPECT_THROW((void)registry.default_for_metro("atlantis"),
               InvalidArgument);
}

TEST(IntensityRegistry, CurveShapesMatchTheirStories) {
  const IntensityRegistry& registry = IntensityRegistry::instance();
  // UK 2018: evening peak, overnight trough.
  const auto& uk = registry.get("uk_2018").hours();
  EXPECT_GT(uk[19], uk[4]);
  // CAISO duck curve: midday solar trough below both the morning and the
  // evening ramp.
  const auto& caiso = registry.get("us_caiso").hours();
  EXPECT_LT(caiso[12], caiso[6]);
  EXPECT_LT(caiso[12], caiso[19]);
  // Hydro grid: an order of magnitude cleaner than the UK mean.
  EXPECT_LT(registry.get("nordic_hydro").mean() * 4,
            registry.get("uk_2018").mean());
}

TEST(CarbonAccountant, WeightsHoursIndependently) {
  // Identical traffic in a cheap hour and an expensive hour: grams follow
  // the curve, the unweighted energy is hour-blind.
  const EnergyAccountant energy{CostFunctions(valancius_params())};
  TrafficBreakdown t;
  t.server = Bits{4e9};
  t.peer[0] = Bits{1e9};
  HourlyTrafficGrid hourly(24, std::vector<TrafficBreakdown>(1));
  hourly[2][0] = t;
  hourly[19][0] = t;

  const IntensityCurve curve = two_level_curve(100.0, 400.0, 19);
  const CarbonAccountant accountant{energy, curve};
  const double expected_hybrid =
      100.0 * energy.hybrid(t).total().kwh() +
      400.0 * energy.hybrid(t).total().kwh();
  const double expected_baseline =
      100.0 * energy.baseline(t.total()).total().kwh() +
      400.0 * energy.baseline(t.total()).total().kwh();
  EXPECT_NEAR(accountant.hybrid_grams(hourly), expected_hybrid, 1e-9);
  EXPECT_NEAR(accountant.baseline_grams(hourly), expected_baseline, 1e-9);
}

TEST(CarbonAccountant, EmptyGridIsZero) {
  const CarbonAccountant accountant{
      EnergyAccountant{CostFunctions(baliga_params())},
      IntensityRegistry::instance().get(kFlatIntensityName)};
  const HourlyTrafficGrid empty;
  EXPECT_DOUBLE_EQ(accountant.hybrid_grams(empty), 0.0);
  EXPECT_DOUBLE_EQ(accountant.baseline_grams(empty), 0.0);
  EXPECT_DOUBLE_EQ(accountant.carbon_savings(empty), 0.0);
  EXPECT_TRUE(accountant.daily_carbon_savings(empty).empty());
}

TEST(CarbonAccountant, DailyBandsGroupTwentyFourHourRows) {
  const EnergyAccountant energy{CostFunctions(valancius_params())};
  TrafficBreakdown t;
  t.server = Bits{1e9};
  HourlyTrafficGrid hourly(30, std::vector<TrafficBreakdown>(1));
  for (auto& row : hourly) row[0] = t;
  const CarbonAccountant accountant{
      energy, IntensityCurve::constant("c", 200.0)};
  const auto daily = accountant.daily_carbon_savings(hourly);
  ASSERT_EQ(daily.size(), 2u);  // 24-hour day + 6-hour partial day
  // All-server traffic: hybrid == baseline, savings 0 both days.
  EXPECT_DOUBLE_EQ(daily[0], 0.0);
  EXPECT_DOUBLE_EQ(daily[1], 0.0);
}

TEST(CarbonAccountant, FlatCurveReproducesEnergySavings) {
  // The core backward-compatibility pin at the library level: under the
  // flat preset, carbon savings equal the unweighted energy savings on
  // the same simulated month (Fig. 4's quantity), and the absolute grams
  // are the kWh totals times the constant.
  TraceConfig tc;
  tc.days = 2;
  tc.users = 1500;
  tc.exemplar_views = {15000};
  tc.catalogue_tail = 80;
  tc.tail_views = 4000;
  const Trace trace = TraceGenerator(tc, metro()).generate();
  const SimResult result = HybridSimulator(metro(), SimConfig{}).run(trace);
  const auto& flat = IntensityRegistry::instance().get(kFlatIntensityName);

  for (const auto& params : standard_params()) {
    const EnergyAccountant energy{CostFunctions(params)};
    const CarbonAccountant accountant{energy, flat};
    const CarbonOutcome outcome = accountant.assess(result.hourly);
    EXPECT_NEAR(outcome.carbon_savings, outcome.energy_savings, 1e-12)
        << params.name;
    EXPECT_NEAR(outcome.carbon_savings, energy.savings(result.total), 1e-9)
        << params.name;
    EXPECT_GT(outcome.saved_g, 0.0);
  }
}

TEST(CarbonAccountant, DiurnalCurveDivergesFromFlatOnDiurnalDemand) {
  // The generator's evening-peaked demand concentrates traffic where
  // uk_2018 / us_caiso are far from their means, so the carbon savings
  // and absolute grams must differ measurably from the flat weighting.
  TraceConfig tc;
  tc.days = 2;
  tc.users = 1500;
  tc.exemplar_views = {15000};
  tc.catalogue_tail = 80;
  tc.tail_views = 4000;
  const Trace trace = TraceGenerator(tc, metro()).generate();
  const SimResult result = HybridSimulator(metro(), SimConfig{}).run(trace);

  const auto& registry = IntensityRegistry::instance();
  const EnergyAccountant energy{CostFunctions(valancius_params())};
  const CarbonAccountant flat{energy, registry.get(kFlatIntensityName)};
  const CarbonAccountant uk{energy, registry.get("uk_2018")};
  const double flat_hybrid = flat.hybrid_grams(result.hourly);
  const double uk_hybrid = uk.hybrid_grams(result.hourly);
  // Evening-peaked demand on an evening-peaked curve: per-kWh carbon
  // above the flat preset's 250 even beyond the uk mean's excess.
  EXPECT_GT(std::abs(uk_hybrid - flat_hybrid) / flat_hybrid, 0.01);
  // And the savings *fraction* shifts too (intensity reweights hours).
  EXPECT_NE(uk.carbon_savings(result.hourly),
            flat.carbon_savings(result.hourly));
}

TEST(CarbonAccountant, ReportOverloadsRejectMissingCollection) {
  // The SimResult overloads must fail loudly, not report zeros, when
  // the required collection toggle was off.
  TraceConfig tc;
  tc.days = 1;
  tc.users = 300;
  tc.exemplar_views = {3000};
  tc.catalogue_tail = 20;
  tc.tail_views = 1000;
  const Trace trace = TraceGenerator(tc, metro()).generate();
  SimConfig lean;
  lean.collect_hourly = false;
  lean.collect_swarms = false;
  const SimResult result = HybridSimulator(metro(), lean).run(trace);
  ASSERT_GT(result.total.total().value(), 0.0);

  const Analyzer analyzer(metro(), lean);
  const auto& flat = IntensityRegistry::instance().get(kFlatIntensityName);
  EXPECT_THROW((void)analyzer.carbon_report(result, flat), InvalidArgument);
  EXPECT_THROW((void)analyzer.aggregate(result), InvalidArgument);
  // A genuinely empty trace is legitimately all-zero, not an error.
  const Trace empty{{}, Seconds{86400.0}, {}, {}};
  const SimResult empty_result = HybridSimulator(metro(), SimConfig{}).run(empty);
  EXPECT_NO_THROW((void)analyzer.aggregate(empty_result));
}

TEST(CarbonAccountant, CarbonReportBitIdenticalAcrossThreadCounts) {
  // The hourly grid inherits the simulator's determinism contract, so
  // every derived gram figure is bit-identical at any --threads value.
  TraceConfig tc;
  tc.days = 2;
  tc.users = 1200;
  tc.exemplar_views = {8000};
  tc.catalogue_tail = 60;
  tc.tail_views = 4000;
  tc.threads = 0;
  const Trace trace = TraceGenerator(tc, metro()).generate();
  const auto& curve = IntensityRegistry::instance().get("uk_2018");

  SimConfig base;
  base.threads = 1;
  const auto reference = Analyzer(metro(), base).carbon_report(trace, curve);
  for (unsigned threads : {2u, 7u, 0u}) {
    SimConfig config;
    config.threads = threads;
    const auto report = Analyzer(metro(), config).carbon_report(trace, curve);
    ASSERT_EQ(report.size(), reference.size());
    for (std::size_t m = 0; m < report.size(); ++m) {
      EXPECT_EQ(report[m].hybrid_g, reference[m].hybrid_g);
      EXPECT_EQ(report[m].baseline_g, reference[m].baseline_g);
      EXPECT_EQ(report[m].carbon_savings, reference[m].carbon_savings);
      EXPECT_EQ(report[m].energy_savings, reference[m].energy_savings);
    }
  }
}

}  // namespace
}  // namespace cl
