// End-to-end smoke tests of the `cl` command-line binary.
//
// The path of the built binary is injected by CMake as CL_CLI_PATH; each
// test execs a full subcommand and checks exit status plus the key lines
// of its report. These are the CTest guard against the CLI silently
// rotting while the library suites stay green.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#ifndef CL_CLI_PATH
#error "CMake must define CL_CLI_PATH (path of the built cl binary)"
#endif

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

RunResult run_cli(const std::string& args) {
  const std::string command = std::string(CL_CLI_PATH) + " " + args + " 2>&1";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  std::size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), n);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string temp_trace_path() {
  return (std::filesystem::temp_directory_path() /
          "cl_smoke_trace.csv").string();
}

TEST(CliSmoke, UsageOnNoCommand) {
  const RunResult result = run_cli("");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
  EXPECT_NE(result.output.find("simulate"), std::string::npos);
}

TEST(CliSmoke, UnknownCommandFailsWithUsage) {
  const RunResult result = run_cli("frobnicate");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown command"), std::string::npos);
}

TEST(CliSmoke, ModelEvaluatesClosedForm) {
  const RunResult result = run_cli("model --capacity 50 --qb 1.0");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("closed-form evaluation at capacity c = 50"),
            std::string::npos);
  EXPECT_NE(result.output.find("Valancius"), std::string::npos);
  EXPECT_NE(result.output.find("Baliga"), std::string::npos);
  EXPECT_NE(result.output.find("offload G"), std::string::npos);
}

TEST(CliSmoke, GenerateThenSimulateEndToEnd) {
  const std::string trace = temp_trace_path();
  std::filesystem::remove(trace);

  const RunResult gen = run_cli("generate --out " + trace +
                                " --preset small --days 1 --seed 7");
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  EXPECT_NE(gen.output.find("wrote"), std::string::npos);
  ASSERT_TRUE(std::filesystem::exists(trace));

  const RunResult sim = run_cli("simulate --trace " + trace + " --threads 2");
  ASSERT_EQ(sim.exit_code, 0) << sim.output;
  EXPECT_NE(sim.output.find("sessions:"), std::string::npos);
  EXPECT_NE(sim.output.find("S (sim)"), std::string::npos);
  EXPECT_NE(sim.output.find("Valancius"), std::string::npos);
  EXPECT_NE(sim.output.find("Baliga"), std::string::npos);

  std::filesystem::remove(trace);
}

TEST(CliSmoke, SimulateThreadsProduceIdenticalReports) {
  const std::string trace = temp_trace_path() + ".threads";
  std::filesystem::remove(trace);
  const RunResult gen = run_cli("generate --out " + trace +
                                " --preset small --days 1 --seed 11 --quiet");
  ASSERT_EQ(gen.exit_code, 0) << gen.output;

  const RunResult one = run_cli("simulate --trace " + trace + " --threads 1");
  const RunResult four = run_cli("simulate --trace " + trace + " --threads 4");
  ASSERT_EQ(one.exit_code, 0) << one.output;
  ASSERT_EQ(four.exit_code, 0) << four.output;
  // The whole printed report must match byte for byte: the sharded
  // analysis path is bit-deterministic in the thread count.
  EXPECT_EQ(one.output, four.output);

  std::filesystem::remove(trace);
}

TEST(CliSmoke, RejectsUnknownFlagValueType) {
  const RunResult result = run_cli("model --capacity notanumber");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("argument error"), std::string::npos);
}

TEST(CliSmoke, ConvertRoundTripsByteIdentical) {
  const std::string csv = temp_trace_path() + ".convert.csv";
  const std::string bin = temp_trace_path() + ".convert.cltrace";
  const std::string csv2 = temp_trace_path() + ".convert2.csv";

  const RunResult gen = run_cli("generate --out " + csv +
                                " --preset small --days 1 --seed 5 --quiet");
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  const RunResult to_bin = run_cli("convert --in " + csv + " --out " + bin);
  ASSERT_EQ(to_bin.exit_code, 0) << to_bin.output;
  EXPECT_NE(to_bin.output.find("converted"), std::string::npos);
  const RunResult to_csv = run_cli("convert --in " + bin + " --out " + csv2);
  ASSERT_EQ(to_csv.exit_code, 0) << to_csv.output;

  // CSV -> .cltrace -> CSV must reproduce the original file byte for byte.
  std::ifstream a(csv, std::ios::binary), b(csv2, std::ios::binary);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());

  std::filesystem::remove(csv);
  std::filesystem::remove(bin);
  std::filesystem::remove(csv2);
}

TEST(CliSmoke, SimulateBinaryTraceMatchesCsvReport) {
  const std::string csv = temp_trace_path() + ".fmt.csv";
  const std::string bin = temp_trace_path() + ".fmt.cltrace";
  const RunResult gen = run_cli("generate --out " + csv +
                                " --preset small --days 1 --seed 9 --quiet");
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  const RunResult conv =
      run_cli("convert --in " + csv + " --out " + bin + " --quiet");
  ASSERT_EQ(conv.exit_code, 0) << conv.output;

  const RunResult from_csv = run_cli("simulate --trace " + csv);
  const RunResult from_bin = run_cli("simulate --trace " + bin + " --threads 2");
  ASSERT_EQ(from_csv.exit_code, 0) << from_csv.output;
  ASSERT_EQ(from_bin.exit_code, 0) << from_bin.output;
  // Same trace through either on-disk format: byte-identical report.
  EXPECT_EQ(from_csv.output, from_bin.output);

  std::filesystem::remove(csv);
  std::filesystem::remove(bin);
}

TEST(CliSmoke, GenerateWritesBinaryFormatDirectly) {
  const std::string bin = temp_trace_path() + ".gen.cltrace";
  const RunResult gen = run_cli("generate --out " + bin +
                                " --preset small --days 1 --seed 5 --quiet");
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  // Extension-driven --format auto: the output is a binary trace.
  std::ifstream in(bin, std::ios::binary);
  char magic[8] = {};
  in.read(magic, sizeof magic);
  EXPECT_EQ(std::string(magic, 7), "CLTRACE");
  const RunResult sim = run_cli("simulate --trace " + bin);
  EXPECT_EQ(sim.exit_code, 0) << sim.output;
  std::filesystem::remove(bin);
}

// ------------------------------------------------------------ cl live

TEST(CliSmoke, LiveRunsFlashCrowdWithOverloadReport) {
  const RunResult result = run_cli("live --viewers 800 --threads 2");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("flash crowd (preset 'spike')"),
            std::string::npos);
  EXPECT_NE(result.output.find("overload:"), std::string::npos);
  EXPECT_NE(result.output.find("hourly trajectory"), std::string::npos);
  EXPECT_NE(result.output.find("Valancius"), std::string::npos);
}

TEST(CliSmoke, LiveThreadsProduceIdenticalReports) {
  const RunResult one = run_cli("live --viewers 800 --threads 1");
  const RunResult seven = run_cli("live --viewers 800 --threads 7");
  ASSERT_EQ(one.exit_code, 0) << one.output;
  ASSERT_EQ(seven.exit_code, 0) << seven.output;
  // Overload accounting included: the report is bit-deterministic in the
  // thread count, so the printed bytes match exactly.
  EXPECT_EQ(one.output, seven.output);
}

TEST(CliSmoke, LiveRejectsUnknownPreset) {
  const RunResult result = run_cli("live --preset avalanche");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("argument error"), std::string::npos);
  EXPECT_NE(result.output.find("ramp, spike"), std::string::npos);
}

TEST(CliSmoke, LiveTraceReplaysThroughSimulateWithOverloadFlag) {
  const std::string trace = temp_trace_path() + ".live.cltrace";
  std::filesystem::remove(trace);
  const RunResult live =
      run_cli("live --viewers 600 --preset ramp --out " + trace);
  ASSERT_EQ(live.exit_code, 0) << live.output;
  ASSERT_TRUE(std::filesystem::exists(trace));
  const RunResult sim =
      run_cli("simulate --trace " + trace + " --overload --threads 2");
  ASSERT_EQ(sim.exit_code, 0) << sim.output;
  EXPECT_NE(sim.output.find("overload:"), std::string::npos);
  // Without the flag the overload line must not appear (off by default).
  const RunResult plain = run_cli("simulate --trace " + trace);
  ASSERT_EQ(plain.exit_code, 0) << plain.output;
  EXPECT_EQ(plain.output.find("overload:"), std::string::npos);
  std::filesystem::remove(trace);
}

TEST(CliSmoke, ConvertRejectsMissingFlags) {
  const RunResult result = run_cli("convert --in /tmp/nope.csv");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("argument error"), std::string::npos);
}

// ------------------------------------------------------------ --metro flag

TEST(CliSmoke, HelpListsMetroPresets) {
  const RunResult result = run_cli("--help");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("--metro"), std::string::npos);
  EXPECT_NE(result.output.find("london_top5"), std::string::npos);
  EXPECT_NE(result.output.find("us_sparse"), std::string::npos);
  EXPECT_NE(result.output.find("fiber_dense"), std::string::npos);
}

TEST(CliSmoke, GenerateRejectsUnknownMetroListingValidNames) {
  std::filesystem::remove("/tmp/cl_smoke_nometro.csv");
  const RunResult result = run_cli(
      "generate --out /tmp/cl_smoke_nometro.csv --metro narnia "
      "--preset small --days 1");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown metro 'narnia'"), std::string::npos);
  EXPECT_NE(result.output.find("london_top5"), std::string::npos);
  EXPECT_NE(result.output.find("us_sparse"), std::string::npos);
  EXPECT_NE(result.output.find("fiber_dense"), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists("/tmp/cl_smoke_nometro.csv"));
}

TEST(CliSmoke, SimulateRejectsUnknownMetro) {
  const std::string trace = temp_trace_path() + ".badmetroflag";
  const RunResult gen = run_cli("generate --out " + trace +
                                " --preset small --days 1 --seed 3 --quiet");
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  const RunResult sim =
      run_cli("simulate --trace " + trace + " --metro atlantis");
  EXPECT_EQ(sim.exit_code, 2);
  EXPECT_NE(sim.output.find("unknown metro 'atlantis'"), std::string::npos);
  EXPECT_NE(sim.output.find("us_sparse"), std::string::npos);
  std::filesystem::remove(trace);
}

TEST(CliSmoke, GenerateStampsMetroIntoCsvHeader) {
  const std::string trace = temp_trace_path() + ".metrohdr";
  const RunResult gen =
      run_cli("generate --out " + trace +
              " --preset small --days 1 --seed 3 --metro us_sparse --quiet");
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  std::ifstream in(trace);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1.rfind("#span=", 0), 0u);
  EXPECT_EQ(line2, "#metro=us_sparse");
  std::filesystem::remove(trace);
}

TEST(CliSmoke, SimulateFollowsTraceMetroHeader) {
  const std::string trace = temp_trace_path() + ".metrofollow";
  const RunResult gen =
      run_cli("generate --out " + trace +
              " --preset small --days 1 --seed 5 --metro us_sparse --quiet");
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  // No --metro flag: simulate must pick the topology recorded in the
  // trace header, and say so in the report.
  const RunResult sim = run_cli("simulate --trace " + trace);
  ASSERT_EQ(sim.exit_code, 0) << sim.output;
  EXPECT_NE(sim.output.find("metro us_sparse"), std::string::npos);
  std::filesystem::remove(trace);
}

TEST(CliSmoke, SimulateRejectsTraceFromUnknownMetro) {
  // A trace stamped with a metro this build does not know must be a hard
  // error (analyzing against the wrong tree would be silently wrong) —
  // unless an explicit --metro overrides it.
  const std::string trace = temp_trace_path() + ".unknownmetro";
  {
    std::ofstream out(trace);
    out << "#span=86400\n#metro=atlantis\n"
        << "user,household,content,isp,exp,bitrate,start,duration\n"
        << "1,1,0,0,0,sd,100,10\n"
        << "2,1,0,0,0,sd,150,10\n";
  }
  const RunResult sim = run_cli("simulate --trace " + trace);
  EXPECT_EQ(sim.exit_code, 1);
  EXPECT_NE(sim.output.find("atlantis"), std::string::npos);
  const RunResult forced =
      run_cli("simulate --trace " + trace + " --metro london_top5");
  EXPECT_EQ(forced.exit_code, 0) << forced.output;
  EXPECT_NE(forced.output.find("warning"), std::string::npos);
  std::filesystem::remove(trace);
}

TEST(CliSmoke, GenerateMetroThreadsBitIdentical) {
  // CLI-level determinism: --metro us_sparse traces are byte-identical
  // across --threads (the 1/2/7/hw sweep is pinned at the library level
  // in test_trace_binary.cpp).
  const std::string one = temp_trace_path() + ".us1.cltrace";
  const std::string two = temp_trace_path() + ".us2.cltrace";
  const RunResult gen1 =
      run_cli("generate --out " + one +
              " --preset small --days 1 --metro us_sparse --threads 1 --quiet");
  const RunResult gen2 =
      run_cli("generate --out " + two +
              " --preset small --days 1 --metro us_sparse --threads 2 --quiet");
  ASSERT_EQ(gen1.exit_code, 0) << gen1.output;
  ASSERT_EQ(gen2.exit_code, 0) << gen2.output;
  std::ifstream a(one, std::ios::binary), b(two, std::ios::binary);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  std::filesystem::remove(one);
  std::filesystem::remove(two);
}

TEST(CliSmoke, ConvertPreservesMetroThroughBinary) {
  const std::string csv = temp_trace_path() + ".metro.csv";
  const std::string bin = temp_trace_path() + ".metro.cltrace";
  const std::string csv2 = temp_trace_path() + ".metro2.csv";
  const RunResult gen =
      run_cli("generate --out " + csv +
              " --preset small --days 1 --metro fiber_dense --quiet");
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  ASSERT_EQ(run_cli("convert --in " + csv + " --out " + bin).exit_code, 0);
  ASSERT_EQ(run_cli("convert --in " + bin + " --out " + csv2).exit_code, 0);
  std::ifstream a(csv, std::ios::binary), b(csv2, std::ios::binary);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());  // #metro= line survives the round trip
  std::filesystem::remove(csv);
  std::filesystem::remove(bin);
  std::filesystem::remove(csv2);
}

TEST(CliSmoke, PlanReportsMetro) {
  const RunResult result = run_cli("plan --target 0.2 --metro us_sparse");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("metro us_sparse"), std::string::npos);
}

// -------------------------------------------------------- --intensity flag

/// True when every line of `needle` appears in `haystack` in order (the
/// carbon sections only *add* lines, never change existing ones).
bool lines_are_ordered_subsequence(const std::string& needle,
                                   const std::string& haystack) {
  std::istringstream n(needle), h(haystack);
  std::string want, have;
  while (std::getline(n, want)) {
    bool found = false;
    while (std::getline(h, have)) {
      if (have == want) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

TEST(CliSmoke, HelpListsIntensityPresets) {
  const RunResult result = run_cli("--help");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("--intensity"), std::string::npos);
  for (const char* preset :
       {"flat", "uk_2018", "us_caiso", "nordic_hydro"}) {
    EXPECT_NE(result.output.find(preset), std::string::npos) << preset;
  }
}

TEST(CliSmoke, LedgerRejectsUnknownIntensityListingValidNames) {
  const RunResult result = run_cli("ledger --days 1 --intensity vacuum");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown intensity preset 'vacuum'"),
            std::string::npos);
  EXPECT_NE(result.output.find("uk_2018"), std::string::npos);
  EXPECT_NE(result.output.find("flat"), std::string::npos);
}

TEST(CliSmoke, LedgerFlatIntensityReproducesUnweightedNumbers) {
  // The backward-compatibility pin: --intensity flat must only *add*
  // carbon output — every line of the unweighted ledger report survives
  // byte for byte.
  const std::string trace = temp_trace_path() + ".intensity";
  const RunResult gen = run_cli("generate --out " + trace +
                                " --preset small --days 1 --seed 13 --quiet");
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  const RunResult without = run_cli("ledger --trace " + trace);
  const RunResult with =
      run_cli("ledger --trace " + trace + " --intensity flat");
  ASSERT_EQ(without.exit_code, 0) << without.output;
  ASSERT_EQ(with.exit_code, 0) << with.output;
  EXPECT_TRUE(lines_are_ordered_subsequence(without.output, with.output))
      << "without:\n" << without.output << "\nwith:\n" << with.output;
  EXPECT_NE(with.output.find("weighted system CCT"), std::string::npos);
  EXPECT_NE(with.output.find("kgCO2"), std::string::npos);
  std::filesystem::remove(trace);
}

TEST(CliSmoke, SimulateFlatIntensityAppendsCarbonSection) {
  const std::string trace = temp_trace_path() + ".simintensity";
  const RunResult gen = run_cli("generate --out " + trace +
                                " --preset small --days 1 --seed 13 --quiet");
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  const RunResult without = run_cli("simulate --trace " + trace);
  const RunResult with =
      run_cli("simulate --trace " + trace + " --intensity flat");
  ASSERT_EQ(without.exit_code, 0) << without.output;
  ASSERT_EQ(with.exit_code, 0) << with.output;
  // The carbon table is appended: the unweighted report is a strict
  // byte prefix.
  ASSERT_GE(with.output.size(), without.output.size());
  EXPECT_EQ(with.output.substr(0, without.output.size()), without.output);
  EXPECT_NE(with.output.find("carbon savings"), std::string::npos);
  std::filesystem::remove(trace);
}

TEST(CliSmoke, ModelIntensityMetroKeywordFollowsMetroPairing) {
  const RunResult result =
      run_cli("model --capacity 50 --metro us_sparse --intensity metro");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  // us_sparse pairs with the CAISO duck curve.
  EXPECT_NE(result.output.find("us_caiso"), std::string::npos);
  EXPECT_NE(result.output.find("gCO2/GB"), std::string::npos);
}

// --------------------------------------------------------- --schedule flag

TEST(CliSmoke, SimulateScheduleFlatIsNoOp) {
  // The flat no-op contract at the CLI level: --schedule all under
  // --intensity flat must only *append* the schedule section — every
  // number above it stays byte-identical, the scheduler reports itself
  // inert, and the reduction column is exactly 0.
  const std::string trace = temp_trace_path() + ".schedflat";
  const RunResult gen = run_cli("generate --out " + trace +
                                " --preset small --days 1 --seed 13 --quiet");
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  const RunResult without =
      run_cli("simulate --trace " + trace + " --intensity flat");
  const RunResult with = run_cli("simulate --trace " + trace +
                                 " --intensity flat --schedule all");
  ASSERT_EQ(without.exit_code, 0) << without.output;
  ASSERT_EQ(with.exit_code, 0) << with.output;
  ASSERT_GE(with.output.size(), without.output.size());
  EXPECT_EQ(with.output.substr(0, without.output.size()), without.output);
  EXPECT_NE(with.output.find("scheduler inert"), std::string::npos);
  EXPECT_NE(with.output.find("0.0%"), std::string::npos);
  std::filesystem::remove(trace);
}

TEST(CliSmoke, SimulateScheduleAddsScheduleSection) {
  const std::string trace = temp_trace_path() + ".scheduk";
  const RunResult gen = run_cli("generate --out " + trace +
                                " --preset small --days 1 --seed 13 --quiet");
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  const RunResult result = run_cli("simulate --trace " + trace +
                                   " --intensity uk_2018 --schedule all");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("schedule under intensity uk_2018"),
            std::string::npos);
  EXPECT_NE(result.output.find("trough window"), std::string::npos);
  EXPECT_NE(result.output.find("routing:"), std::string::npos);
  EXPECT_NE(result.output.find("reduction"), std::string::npos);
  std::filesystem::remove(trace);
}

TEST(CliSmoke, ScheduleRequiresIntensity) {
  const RunResult result = run_cli("simulate --days 1 --schedule all");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("argument error"), std::string::npos);
  EXPECT_NE(result.output.find("--intensity"), std::string::npos);
}

TEST(CliSmoke, ScheduleRejectsUnknownMode) {
  const RunResult result =
      run_cli("simulate --days 1 --intensity flat --schedule sideways");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown schedule mode 'sideways'"),
            std::string::npos);
}

TEST(CliSmoke, LedgerScheduleFlatOnlyAppends) {
  const std::string trace = temp_trace_path() + ".ledsched";
  const RunResult gen = run_cli("generate --out " + trace +
                                " --preset small --days 1 --seed 13 --quiet");
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  const RunResult without =
      run_cli("ledger --trace " + trace + " --intensity flat");
  const RunResult with = run_cli("ledger --trace " + trace +
                                 " --intensity flat --schedule preload");
  ASSERT_EQ(without.exit_code, 0) << without.output;
  ASSERT_EQ(with.exit_code, 0) << with.output;
  EXPECT_TRUE(lines_are_ordered_subsequence(without.output, with.output))
      << "without:\n" << without.output << "\nwith:\n" << with.output;
  EXPECT_NE(with.output.find("scheduler inert"), std::string::npos);
  std::filesystem::remove(trace);
}

TEST(CliSmoke, IntensityAcceptsCsvFilePath) {
  // A 24-row ElectricityMap-style export is accepted anywhere a preset
  // name is, and the curve takes the file's stem as its name.
  const std::string csv =
      (std::filesystem::temp_directory_path() / "my_grid.csv").string();
  {
    std::ofstream out(csv);
    out << "hour,gCO2_per_kwh\n";
    for (int h = 0; h < 24; ++h) out << h << "," << (100 + 10 * h) << "\n";
  }
  const std::string trace = temp_trace_path() + ".csvcurve";
  const RunResult gen = run_cli("generate --out " + trace +
                                " --preset small --days 1 --seed 13 --quiet");
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  const RunResult result =
      run_cli("simulate --trace " + trace + " --intensity " + csv);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("carbon under intensity my_grid"),
            std::string::npos);
  std::filesystem::remove(csv);
  std::filesystem::remove(trace);
}

TEST(CliSmoke, ExperimentDryRunListsMatrix) {
  const RunResult result = run_cli(
      "experiment " + std::string(CL_TEST_DATA_DIR) +
      "/golden_spec.json --dry-run");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("experiment 'golden_spec': 1 cell"),
            std::string::npos);
  EXPECT_NE(result.output.find("[0] base"), std::string::npos);
}

TEST(CliSmoke, ExperimentMissingSpecPathExits2WithUsage) {
  const RunResult result = run_cli("experiment");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("missing spec path"), std::string::npos);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST(CliSmoke, ExperimentMissingSpecFileExits2) {
  const RunResult result = run_cli("experiment /nonexistent/spec.json");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("cannot read JSON file"), std::string::npos);
}

TEST(CliSmoke, ExperimentUnknownFlagErrors) {
  const RunResult result = run_cli(
      "experiment " + std::string(CL_TEST_DATA_DIR) +
      "/golden_spec.json --dry-run --bogus 1");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown flag --bogus"), std::string::npos);
}

TEST(CliSmoke, ExperimentWritesManifestAndCellFilesToOutDir) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "cl_smoke_experiment";
  fs::remove_all(dir);
  const fs::path spec = fs::temp_directory_path() / "cl_smoke_spec.json";
  {
    std::ofstream out(spec);
    out << R"({"name": "smoketest", "base": {"simulate": "off"},
               "axes": {"adoption": [50]}})";
  }
  const RunResult result = run_cli("experiment " + spec.string() +
                                   " --out-dir " + dir.string());
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_TRUE(fs::exists(dir / "BENCH_smoketest.json"));
  EXPECT_TRUE(fs::exists(dir / "BENCH_smoketest_adoption-50.json"));
  std::ifstream manifest(dir / "BENCH_smoketest.json");
  std::stringstream contents;
  contents << manifest.rdbuf();
  EXPECT_NE(contents.str().find("\"bench\": \"smoketest\""),
            std::string::npos);
  EXPECT_NE(contents.str().find("BENCH_smoketest_adoption-50.json"),
            std::string::npos);
  fs::remove_all(dir);
  fs::remove(spec);
}

TEST(CliSmoke, IntensityUnknownNameStillListsPresets) {
  // The CSV branch must not swallow the unknown-preset error for names
  // that are not files.
  const RunResult result =
      run_cli("simulate --days 1 --intensity not_a_file_or_preset");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find(
                "unknown intensity preset 'not_a_file_or_preset'"),
            std::string::npos);
  EXPECT_NE(result.output.find("uk_2018"), std::string::npos);
  EXPECT_NE(result.output.find("CSV"), std::string::npos);
}

}  // namespace
