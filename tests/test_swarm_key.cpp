// Tests for sim/swarm_key.h — swarm grouping keys.
#include "sim/swarm_key.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace cl {
namespace {

SessionRecord session(std::uint32_t content, std::uint32_t isp,
                      BitrateClass bitrate) {
  SessionRecord s;
  s.content = content;
  s.isp = isp;
  s.bitrate = bitrate;
  return s;
}

TEST(SwarmKey, FullSplitKeysAllDimensions) {
  SimConfig config;  // isp_friendly + split_by_bitrate by default
  const auto k = swarm_key_for(session(7, 3, BitrateClass::kHd), config);
  EXPECT_EQ(k.content, 7u);
  EXPECT_EQ(k.isp, 3u);
  EXPECT_TRUE(k.has_isp());
  EXPECT_TRUE(k.has_bitrate());
  EXPECT_EQ(k.bitrate_class(), BitrateClass::kHd);
}

TEST(SwarmKey, CrossIspMergesIsps) {
  SimConfig config;
  config.isp_friendly = false;
  const auto a = swarm_key_for(session(7, 0, BitrateClass::kSd), config);
  const auto b = swarm_key_for(session(7, 4, BitrateClass::kSd), config);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.has_isp());
}

TEST(SwarmKey, MixedBitrateMergesClasses) {
  SimConfig config;
  config.split_by_bitrate = false;
  const auto a = swarm_key_for(session(7, 0, BitrateClass::kSd), config);
  const auto b = swarm_key_for(session(7, 0, BitrateClass::kFullHd), config);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.has_bitrate());
}

TEST(SwarmKey, DifferentContentAlwaysDifferentSwarm) {
  SimConfig config;
  config.isp_friendly = false;
  config.split_by_bitrate = false;
  const auto a = swarm_key_for(session(1, 0, BitrateClass::kSd), config);
  const auto b = swarm_key_for(session(2, 0, BitrateClass::kSd), config);
  EXPECT_NE(a, b);
}

TEST(SwarmKey, PackedIsInjectiveOverRealisticRanges) {
  SimConfig config;
  std::unordered_set<std::uint64_t> seen;
  for (std::uint32_t content : {0u, 1u, 9999u}) {
    for (std::uint32_t isp : {0u, 1u, 4u}) {
      for (auto bitrate : kAllBitrateClasses) {
        const auto k = swarm_key_for(session(content, isp, bitrate), config);
        EXPECT_TRUE(seen.insert(k.packed()).second);
      }
    }
  }
}

TEST(SwarmKey, HashUsableInUnorderedContainers) {
  std::unordered_set<SwarmKey> keys;
  SimConfig config;
  keys.insert(swarm_key_for(session(1, 0, BitrateClass::kSd), config));
  keys.insert(swarm_key_for(session(1, 0, BitrateClass::kSd), config));
  keys.insert(swarm_key_for(session(1, 1, BitrateClass::kSd), config));
  EXPECT_EQ(keys.size(), 2u);
}

TEST(SwarmKey, SentinelsDistinctFromRealValues) {
  EXPECT_NE(SwarmKey::kAnyIsp, 0u);
  EXPECT_NE(SwarmKey::kAnyBitrate,
            static_cast<std::uint8_t>(BitrateClass::kFullHd));
}

}  // namespace
}  // namespace cl
