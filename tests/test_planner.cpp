// Tests for core/planner.h — closed-form network planning.
#include "core/planner.h"

#include <gtest/gtest.h>

#include "model/carbon_credit.h"
#include "topology/isp_topology.h"
#include "util/error.h"

namespace cl {
namespace {

Planner valancius_planner() {
  return Planner(
      SavingsModel(valancius_params(), IspTopology::london_default()));
}

Planner baliga_planner() {
  return Planner(SavingsModel(baliga_params(), IspTopology::london_default()));
}

TEST(Planner, BreakEvenIsZeroForPaperModels) {
  // Both paper parameter sets have positive savings at every capacity.
  EXPECT_DOUBLE_EQ(valancius_planner().break_even_capacity(1.0), 0.0);
  EXPECT_DOUBLE_EQ(baliga_planner().break_even_capacity(1.0), 0.0);
}

TEST(Planner, BreakEvenUnreachableForBadParams) {
  auto p = hop_count_params("bad-p2p", EnergyPerBit{150.0}, 7, 9, 9, 9);
  const Planner planner(SavingsModel(p, IspTopology::london_default()));
  EXPECT_THROW((void)planner.break_even_capacity(1.0), InvalidArgument);
}

TEST(Planner, CapacityForSavingsInvertsForwardModel) {
  const Planner planner = valancius_planner();
  for (double target : {0.1, 0.25, 0.4}) {
    const double c = planner.capacity_for_savings(target, 1.0);
    EXPECT_GT(c, 0.0);
    EXPECT_NEAR(planner.model().savings(c, 1.0), target, 1e-6);
    // Just below c the target is not yet met (smallest such capacity).
    EXPECT_LT(planner.model().savings(c * 0.9, 1.0), target);
  }
}

TEST(Planner, CapacityForSavingsMonotoneInTarget) {
  const Planner planner = baliga_planner();
  double prev = 0;
  for (double target : {0.05, 0.1, 0.2, 0.28}) {
    const double c = planner.capacity_for_savings(target, 1.0);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(Planner, UnreachableTargetThrows) {
  EXPECT_THROW((void)valancius_planner().capacity_for_savings(0.9, 1.0),
               InvalidArgument);
  // Baliga's ceiling at q/β = 1 is 0.37: 0.5 is unreachable.
  EXPECT_THROW((void)baliga_planner().capacity_for_savings(0.5, 1.0),
               InvalidArgument);
}

TEST(Planner, LowUploadRatioRaisesRequiredCapacity) {
  const Planner planner = valancius_planner();
  const double c_full = planner.capacity_for_savings(0.2, 1.0);
  const double c_half = planner.capacity_for_savings(0.2, 0.6);
  EXPECT_GT(c_half, c_full);
}

TEST(Planner, CarbonNeutralCapacityInvertsOffload) {
  for (const auto& planner : {valancius_planner(), baliga_planner()}) {
    const double c = planner.carbon_neutral_capacity(1.0);
    const double g_star = carbon_neutral_offload(planner.model().params());
    EXPECT_NEAR(planner.model().offload(c, 1.0), g_star, 1e-6);
  }
}

TEST(Planner, BaligaTurnsCarbonNeutralEarlier) {
  // Baliga's G* (0.46) is lower than Valancius' (0.73) so the capacity
  // threshold is lower too.
  EXPECT_LT(baliga_planner().carbon_neutral_capacity(1.0),
            valancius_planner().carbon_neutral_capacity(1.0));
}

TEST(Planner, CarbonNeutralUnreachableAtLowUpload) {
  // With q/β = 0.4, G can never exceed 0.4 < G* for either model... except
  // Baliga needs 0.464 > 0.4: unreachable; Valancius needs 0.73: also.
  EXPECT_THROW((void)valancius_planner().carbon_neutral_capacity(0.4),
               InvalidArgument);
  EXPECT_THROW((void)baliga_planner().carbon_neutral_capacity(0.4),
               InvalidArgument);
}

TEST(Planner, ViewsCapacityRoundTrip) {
  const Planner planner = valancius_planner();
  const Seconds u = Seconds::from_minutes(30);
  const double views = 100000;
  const double c = planner.capacity_for_views_per_month(views, u);
  EXPECT_NEAR(planner.views_per_month_for_capacity(c, u), views, 1e-6);
  // 100 K monthly views of 30-minute content ≈ capacity 69.4.
  EXPECT_NEAR(c, 100000.0 * 1800.0 / (30.0 * 86400.0), 1e-9);
}

TEST(Planner, RejectsBadArguments) {
  const Planner planner = valancius_planner();
  EXPECT_THROW((void)planner.capacity_for_savings(-0.1, 1.0), InvalidArgument);
  EXPECT_THROW((void)planner.views_per_month_for_capacity(1.0, Seconds{0.0}),
               InvalidArgument);
  EXPECT_THROW((void)planner.capacity_for_views_per_month(-1.0, Seconds{60.0}),
               InvalidArgument);
}

TEST(Planner, PaperScalePlanningExample) {
  // A popular 30-minute show with ~100 K monthly views (capacity ≈ 69)
  // should clear 40 % savings under Valancius — consistent with Fig. 2.
  const Planner planner = valancius_planner();
  const double c = planner.capacity_for_views_per_month(
      100000, Seconds::from_minutes(30));
  EXPECT_GT(planner.model().savings(c, 1.0), 0.40);
}

}  // namespace
}  // namespace cl
