// Tests for trace/trace_io.h — CSV round-trips of traces.
#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/synthetic.h"
#include "util/error.h"

namespace cl {
namespace {

Trace tiny_trace() {
  Trace t;
  t.span = Seconds::from_days(1);
  SessionRecord a;
  a.user = 1;
  a.household = 10;
  a.content = 5;
  a.isp = 2;
  a.exp = 77;
  a.bitrate = BitrateClass::kHd;
  a.start = 100.5;
  a.duration = 1800.25;
  SessionRecord b = a;
  b.user = 2;
  b.start = 200.0;
  b.bitrate = BitrateClass::kMobile;
  t.sessions = {a, b};
  return t;
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const Trace original = tiny_trace();
  std::ostringstream out;
  write_trace(out, original);
  std::istringstream in(out.str());
  const Trace restored = read_trace(in);
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_DOUBLE_EQ(restored.span.value(), original.span.value());
  const auto& s = restored.sessions[0];
  EXPECT_EQ(s.user, 1u);
  EXPECT_EQ(s.household, 10u);
  EXPECT_EQ(s.content, 5u);
  EXPECT_EQ(s.isp, 2u);
  EXPECT_EQ(s.exp, 77u);
  EXPECT_EQ(s.bitrate, BitrateClass::kHd);
  EXPECT_DOUBLE_EQ(s.start, 100.5);
  EXPECT_DOUBLE_EQ(s.duration, 1800.25);
}

TEST(TraceIo, SpanCommentWrittenFirst) {
  std::ostringstream out;
  write_trace(out, tiny_trace());
  EXPECT_EQ(out.str().rfind("#span=86400", 0), 0u);
}

TEST(TraceIo, FractionalSpanRoundTripsExactly) {
  // The span comment used to be streamed at 6 significant digits; a
  // fractional span then read back *smaller* than a session's end and the
  // reader rejected its own writer's output.
  Trace t;
  t.span = Seconds{2592034.5678901234};
  SessionRecord s;
  s.bitrate = BitrateClass::kSd;
  s.start = 2592000.0;
  s.duration = 34.5678901234;
  t.sessions = {s};
  std::ostringstream out;
  write_trace(out, t);
  std::istringstream in(out.str());
  const Trace restored = read_trace(in);
  EXPECT_EQ(restored.span.value(), t.span.value());  // exact, not near
}

TEST(TraceIo, ReaderInfersSpanWithoutComment) {
  std::istringstream in(
      "user,household,content,isp,exp,bitrate,start,duration\n"
      "1,1,0,0,0,sd,100,500\n");
  const Trace t = read_trace(in);
  EXPECT_DOUBLE_EQ(t.span.value(), 600.0);
}

TEST(TraceIo, EqualStartTimesKeepFileOrder) {
  // Quantized timestamps produce ties; an unstable sort would permute
  // them and break the byte-exact write -> read -> write round trip.
  std::istringstream in(
      "#span=86400\n"
      "user,household,content,isp,exp,bitrate,start,duration\n"
      "7,1,0,0,0,sd,100,10\n"
      "3,1,0,0,0,sd,100,10\n"
      "9,1,0,0,0,sd,100,10\n");
  const Trace t = read_trace(in);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.sessions[0].user, 7u);
  EXPECT_EQ(t.sessions[1].user, 3u);
  EXPECT_EQ(t.sessions[2].user, 9u);
  std::ostringstream out;
  write_trace(out, t);
  std::istringstream in2(out.str());
  std::ostringstream out2;
  write_trace(out2, read_trace(in2));
  EXPECT_EQ(out.str(), out2.str());
}

TEST(TraceIo, ReaderSortsByStart) {
  std::istringstream in(
      "user,household,content,isp,exp,bitrate,start,duration\n"
      "1,1,0,0,0,sd,500,10\n"
      "2,2,0,0,0,sd,100,10\n");
  const Trace t = read_trace(in);
  EXPECT_EQ(t.sessions[0].user, 2u);
}

TEST(TraceIo, RejectsBadBitrate) {
  std::istringstream in(
      "user,household,content,isp,exp,bitrate,start,duration\n"
      "1,1,0,0,0,ultra,100,10\n");
  EXPECT_THROW(read_trace(in), ParseError);
}

TEST(TraceIo, RejectsBadNumber) {
  std::istringstream in(
      "user,household,content,isp,exp,bitrate,start,duration\n"
      "abc,1,0,0,0,sd,100,10\n");
  EXPECT_THROW(read_trace(in), ParseError);
}

TEST(TraceIo, RejectsGarbageAfterClosingQuote) {
  // `"100"5` used to silently parse as 1005 — trailing garbage after a
  // quoted field must be a hard error.
  std::istringstream in(
      "user,household,content,isp,exp,bitrate,start,duration\n"
      "1,1,0,0,0,sd,\"100\"5,10\n");
  EXPECT_THROW(read_trace(in), ParseError);
}

TEST(TraceIo, RejectsGarbageOnUnterminatedLastLine) {
  // A last line without trailing newline still gets full validation.
  std::istringstream in(
      "user,household,content,isp,exp,bitrate,start,duration\n"
      "1,1,0,0,0,sd,100,\"10\"junk");
  EXPECT_THROW(read_trace(in), ParseError);
}

TEST(TraceIo, RejectsStrayCarriageReturnInsideLine) {
  // Interior \r used to be silently stripped ("1\r00" parsed as 100).
  std::istringstream in(
      "user,household,content,isp,exp,bitrate,start,duration\n"
      "1,1,0,0,0,sd,1\r00,10\n");
  EXPECT_THROW(read_trace(in), ParseError);
}

TEST(TraceIo, AcceptsCrlfLineEndings) {
  std::istringstream in(
      "#span=86400\r\n"
      "user,household,content,isp,exp,bitrate,start,duration\r\n"
      "1,1,0,0,0,sd,100,10\r\n");
  const Trace t = read_trace(in);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ(t.span.value(), 86400.0);
  EXPECT_DOUBLE_EQ(t.sessions[0].start, 100.0);
}

TEST(TraceIo, RejectsMissingColumn) {
  std::istringstream in("user,household\n1,1\n");
  EXPECT_THROW(read_trace(in), ParseError);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/cl_trace_test.csv";
  write_trace_file(path, tiny_trace());
  const Trace restored = read_trace_file(path);
  EXPECT_EQ(restored.size(), 2u);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/path/trace.csv"), IoError);
  EXPECT_THROW(write_trace_file("/nonexistent/path/trace.csv", tiny_trace()),
               IoError);
}

TEST(TraceIo, SyntheticTraceRoundTripsLosslessly) {
  const auto metro = Metro::london_top5();
  TraceConfig config;
  config.days = 2;
  config.users = 500;
  config.exemplar_views = {3000};
  config.catalogue_tail = 50;
  config.tail_views = 2000;
  TraceGenerator gen(config, metro);
  const Trace original = gen.generate();
  std::ostringstream out;
  write_trace(out, original);
  std::istringstream in(out.str());
  const Trace restored = read_trace(in);
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); i += 37) {
    EXPECT_EQ(restored.sessions[i].user, original.sessions[i].user);
    EXPECT_EQ(restored.sessions[i].content, original.sessions[i].content);
    EXPECT_DOUBLE_EQ(restored.sessions[i].start, original.sessions[i].start);
    EXPECT_DOUBLE_EQ(restored.sessions[i].duration,
                     original.sessions[i].duration);
  }
}

}  // namespace
}  // namespace cl
