// Tests for the columnar trace view (trace/trace_view.h) — the
// zero-materialization data path the simulator sweeps:
//
//  * column correctness — from_trace and open_binary hand out spans that
//    match the source rows field-for-field (bit-exact doubles), and the
//    view is self-contained after the source Trace dies;
//  * the SoA-vs-row bit-identity contract — run(TraceView) over both
//    backings (owned transpose, mmap'd zero-copy) produces SimResults
//    identical to run_rows at --threads 1/2/7/hw across all three metro
//    presets, pinned with exact (==) comparisons;
//  * edge cases — empty trace, single-session swarm, legacy v1
//    `.cltrace` (no metro-name block);
//  * corrupt-input rejection — an out-of-range bitrate byte in the
//    mapped file fails column validation with the same error the
//    materializing loader raises.
#include "trace/trace_view.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "sim/hybrid_sim.h"
#include "topology/metro_registry.h"
#include "trace/swarm_index.h"
#include "trace/trace_binary.h"
#include "trace/trace_mmap.h"
#include "trace/synthetic.h"
#include "util/error.h"
#include "util/serialize.h"

#ifndef CL_TEST_DATA_DIR
#error "CMake must define CL_TEST_DATA_DIR (path of tests/data)"
#endif

namespace cl {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Trace small_trace(const std::string& metro_name, unsigned seed = 7) {
  TraceConfig config;
  config.days = 2;
  config.users = 1500;
  config.exemplar_views = {8000, 900};
  config.catalogue_tail = 150;
  config.tail_views = 12000;
  config.seed = seed;
  config.metro = metro_name;
  Trace trace =
      TraceGenerator(config, MetroRegistry::instance().get(metro_name))
          .generate();
  trace.swarm_index = build_swarm_index(trace);
  return trace;
}

void expect_columns_match_rows(const TraceView& view, const Trace& trace) {
  ASSERT_EQ(view.size(), trace.size());
  EXPECT_EQ(view.span().value(), trace.span.value());
  EXPECT_EQ(view.metro_name(), trace.metro_name);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const SessionRecord& s = trace.sessions[i];
    ASSERT_EQ(view.user()[i], s.user) << "i=" << i;
    ASSERT_EQ(view.household()[i], s.household) << "i=" << i;
    ASSERT_EQ(view.content()[i], s.content) << "i=" << i;
    ASSERT_EQ(view.isp()[i], s.isp) << "i=" << i;
    ASSERT_EQ(view.exp()[i], s.exp) << "i=" << i;
    ASSERT_EQ(view.bitrate()[i], static_cast<std::uint8_t>(s.bitrate))
        << "i=" << i;
    // Exact equality on purpose: the columns carry the same IEEE-754 bit
    // patterns as the rows.
    ASSERT_EQ(view.start()[i], s.start) << "i=" << i;
    ASSERT_EQ(view.duration()[i], s.duration) << "i=" << i;
  }
}

/// Exact-equality comparison of the SimResult fields the sweep produces.
void expect_results_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.span.value(), b.span.value());
  EXPECT_EQ(a.total.server.value(), b.total.server.value());
  EXPECT_EQ(a.total.cross_isp.value(), b.total.cross_isp.value());
  for (std::size_t l = 0; l < kLocalityLevels; ++l) {
    EXPECT_EQ(a.total.peer[l].value(), b.total.peer[l].value());
  }
  ASSERT_EQ(a.hourly.size(), b.hourly.size());
  for (std::size_t h = 0; h < a.hourly.size(); ++h) {
    ASSERT_EQ(a.hourly[h].size(), b.hourly[h].size());
    for (std::size_t i = 0; i < a.hourly[h].size(); ++i) {
      EXPECT_EQ(a.hourly[h][i].server.value(), b.hourly[h][i].server.value());
      for (std::size_t l = 0; l < kLocalityLevels; ++l) {
        EXPECT_EQ(a.hourly[h][i].peer[l].value(),
                  b.hourly[h][i].peer[l].value());
      }
    }
  }
  ASSERT_EQ(a.users.size(), b.users.size());
  for (const auto& [user, traffic] : a.users) {
    const auto it = b.users.find(user);
    ASSERT_NE(it, b.users.end()) << "user " << user;
    EXPECT_EQ(traffic.downloaded.value(), it->second.downloaded.value());
    EXPECT_EQ(traffic.uploaded.value(), it->second.uploaded.value());
  }
  ASSERT_EQ(a.swarms.size(), b.swarms.size());
  for (std::size_t s = 0; s < a.swarms.size(); ++s) {
    EXPECT_EQ(a.swarms[s].key.packed(), b.swarms[s].key.packed());
    EXPECT_EQ(a.swarms[s].sessions, b.swarms[s].sessions);
    EXPECT_EQ(a.swarms[s].capacity, b.swarms[s].capacity);
    EXPECT_EQ(a.swarms[s].traffic.server.value(),
              b.swarms[s].traffic.server.value());
    for (std::size_t l = 0; l < kLocalityLevels; ++l) {
      EXPECT_EQ(a.swarms[s].traffic.peer[l].value(),
                b.swarms[s].traffic.peer[l].value());
    }
  }
}

// ------------------------------------------------------- column fidelity

TEST(TraceView, FromTraceColumnsMatchRows) {
  const Trace trace = small_trace("london_top5");
  const TraceView view = TraceView::from_trace(trace, 3);
  EXPECT_FALSE(view.zero_copy());
  EXPECT_TRUE(view.has_index());
  expect_columns_match_rows(view, trace);
  // Spot-check the row materializer too.
  const SessionRecord s = view.session(view.size() / 2);
  const SessionRecord& expected = trace.sessions[trace.size() / 2];
  EXPECT_EQ(s.user, expected.user);
  EXPECT_EQ(s.bitrate, expected.bitrate);
  EXPECT_EQ(s.start, expected.start);
}

TEST(TraceView, FromTraceIsSelfContainedAfterSourceDies) {
  auto trace = std::make_unique<Trace>(small_trace("london_top5"));
  const std::size_t n = trace->size();
  const double first_start = trace->sessions.front().start;
  const TraceView view = TraceView::from_trace(*trace, 2);
  trace.reset();  // the view must not dangle
  ASSERT_EQ(view.size(), n);
  EXPECT_EQ(view.start().front(), first_start);
  EXPECT_TRUE(view.has_index());
}

TEST(TraceView, OpenBinaryIsZeroCopyAndMatchesMaterializedLoad) {
  const Trace trace = small_trace("london_top5");
  const std::string path = temp_path("cl_trace_view_zero_copy.cltrace");
  write_trace_binary_file(path, trace);
  const TraceView view = TraceView::open_binary(path, 2);
  // Little-endian hosts alias the mapped blocks directly; the transpose
  // fallback would still have to produce identical columns.
  if constexpr (std::endian::native == std::endian::little) {
    EXPECT_TRUE(view.zero_copy());
  }
  EXPECT_TRUE(view.has_index());
  expect_columns_match_rows(view, trace);
  // Group table ascends by the full swarm key and covers every session.
  std::uint64_t covered = 0;
  const auto groups = view.groups();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    covered += groups[g].count;
    if (g > 0) {
      EXPECT_TRUE(SwarmIndex::key_less(groups[g - 1], groups[g]));
    }
  }
  EXPECT_EQ(covered, view.size());
  std::filesystem::remove(path);
}

// ------------------------------------------- SoA-vs-row bit-identity

TEST(TraceView, SimResultsIdenticalRowsVsColumnsVsMmapEverywhere) {
  for (const std::string metro_name :
       {"london_top5", "us_sparse", "fiber_dense"}) {
    const Metro& metro = MetroRegistry::instance().get(metro_name);
    const Trace trace = small_trace(metro_name);
    const std::string path =
        temp_path("cl_trace_view_identity_" + metro_name + ".cltrace");
    write_trace_binary_file(path, trace);

    SimConfig config;
    config.collect_hourly = true;
    config.collect_per_user = true;
    config.collect_swarms = true;
    config.threads = 1;
    const SimResult reference =
        HybridSimulator(metro, config).run_rows(trace);

    for (unsigned threads : {1u, 2u, 7u, 0u}) {
      config.threads = threads;
      const HybridSimulator sim(metro, config);
      const TraceView transposed = TraceView::from_trace(trace, threads);
      const TraceView mapped = TraceView::open_binary(path, threads);
      expect_results_identical(sim.run(transposed), reference);
      expect_results_identical(sim.run(mapped), reference);
      expect_results_identical(sim.run_rows(trace), reference);
    }
    std::filesystem::remove(path);
  }
}

// Forcing CL_SIMD=off swaps every sweep kernel onto its scalar twin
// (util/simd.h reads the environment per SwarmSweep construction). The
// scalar and intrinsic paths must agree bit-for-bit — the kernels'
// lane-width-independence contract — and both must match run_rows.
TEST(TraceView, SimResultsIdenticalUnderScalarFallback) {
  struct EnvGuard {
    EnvGuard() { setenv("CL_SIMD", "off", 1); }
    ~EnvGuard() { unsetenv("CL_SIMD"); }
  };
  for (const std::string metro_name :
       {"london_top5", "us_sparse", "fiber_dense"}) {
    const Metro& metro = MetroRegistry::instance().get(metro_name);
    const Trace trace = small_trace(metro_name);

    SimConfig config;
    config.collect_hourly = true;
    config.collect_per_user = true;
    config.collect_swarms = true;
    config.threads = 1;
    const SimResult reference = HybridSimulator(metro, config).run_rows(trace);

    for (unsigned threads : {1u, 2u, 7u, 0u}) {
      config.threads = threads;
      const HybridSimulator sim(metro, config);
      const TraceView view = TraceView::from_trace(trace, threads);
      const SimResult intrinsic = sim.run(view);
      {
        const EnvGuard guard;
        expect_results_identical(sim.run(view), reference);
        expect_results_identical(sim.run(view), intrinsic);
      }
    }
  }
}

// ------------------------------------------------------------ edge cases

TEST(TraceView, EmptyTrace) {
  const Trace empty{{}, Seconds{86400.0}, {}, {}};
  const TraceView view = TraceView::from_trace(empty);
  EXPECT_TRUE(view.empty());
  EXPECT_FALSE(view.has_index());
  EXPECT_EQ(view.span().value(), 86400.0);

  const std::string path = temp_path("cl_trace_view_empty.cltrace");
  write_trace_binary_file(path, empty);
  const TraceView mapped = TraceView::open_binary(path);
  EXPECT_TRUE(mapped.empty());
  EXPECT_EQ(mapped.span().value(), 86400.0);

  const Metro& metro = MetroRegistry::instance().get("london_top5");
  const SimResult result = HybridSimulator(metro, SimConfig{}).run(mapped);
  EXPECT_EQ(result.total.total().value(), 0.0);
  std::filesystem::remove(path);
}

TEST(TraceView, SingleSessionSwarm) {
  Trace trace;
  trace.span = Seconds{3600.0};
  SessionRecord s;
  s.user = 9;
  s.content = 4;
  s.isp = 1;
  s.exp = 2;
  s.bitrate = BitrateClass::kHd;
  s.start = 100.0;
  s.duration = 600.0;
  trace.sessions.push_back(s);
  trace.swarm_index = build_swarm_index(trace);

  const std::string path = temp_path("cl_trace_view_single.cltrace");
  write_trace_binary_file(path, trace);
  const TraceView view = TraceView::open_binary(path);
  ASSERT_EQ(view.size(), 1u);
  EXPECT_TRUE(view.has_index());

  const Metro& metro = MetroRegistry::instance().get("london_top5");
  SimConfig config;
  config.collect_swarms = true;
  const SimResult soa = HybridSimulator(metro, config).run(view);
  const SimResult rows = HybridSimulator(metro, config).run_rows(trace);
  expect_results_identical(soa, rows);
  // A lone peer has nobody to share with: everything comes from the CDN.
  EXPECT_EQ(soa.total.peer_total().value(), 0.0);
  EXPECT_GT(soa.total.server.value(), 0.0);
  std::filesystem::remove(path);
}

TEST(TraceView, LegacyV1GoldenLoads) {
  const std::string path =
      std::string(CL_TEST_DATA_DIR) + "/golden_v1.cltrace";
  const TraceView view = TraceView::open_binary(path);
  // v1 files predate the metro-name block but do carry the swarm index.
  EXPECT_TRUE(view.metro_name().empty());
  const Trace materialized = read_trace_binary_file(path);
  ASSERT_EQ(view.size(), materialized.size());
  for (std::size_t i = 0; i < view.size(); ++i) {
    const SessionRecord& s = materialized.sessions[i];
    ASSERT_EQ(view.user()[i], s.user);
    ASSERT_EQ(view.start()[i], s.start);
    ASSERT_EQ(view.duration()[i], s.duration);
    ASSERT_EQ(view.bitrate()[i], static_cast<std::uint8_t>(s.bitrate));
  }
  EXPECT_EQ(view.has_index(), !materialized.swarm_index.empty());
}

// ------------------------------------------------------ corrupt payloads

TEST(TraceView, RejectsOutOfRangeBitrateColumn) {
  const Trace trace = small_trace("london_top5");
  const std::string path = temp_path("cl_trace_view_bad_bitrate.cltrace");
  write_trace_binary_file(path, trace);

  // Patch the first byte of the bitrate block (id 5) to an invalid class
  // via the block directory.
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.is_open());
  std::uint64_t bitrate_offset = 0;
  for (std::uint32_t entry = 0; entry < kTraceBinaryBlockCount; ++entry) {
    char dir[kTraceBinaryDirEntryBytes];
    file.seekg(static_cast<std::streamoff>(kTraceBinaryHeaderBytes +
                                           entry * kTraceBinaryDirEntryBytes));
    file.read(dir, sizeof(dir));
    ASSERT_TRUE(file.good());
    const auto* bytes = reinterpret_cast<const unsigned char*>(dir);
    if (load_u32_le(bytes) == 5) {
      bitrate_offset = load_u64_le(bytes + 8);
      break;
    }
  }
  ASSERT_GT(bitrate_offset, 0u);
  file.seekp(static_cast<std::streamoff>(bitrate_offset));
  const char bad = '\xff';
  file.write(&bad, 1);
  file.close();

  EXPECT_THROW(
      { [[maybe_unused]] auto v = TraceView::open_binary(path); },
      ParseError);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace cl
