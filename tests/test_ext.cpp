// Tests for the extension modules: predictive preloading, live events and
// exchange-point edge caching.
#include "ext/edge_cache.h"
#include "ext/live.h"
#include "ext/preload.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <map>

#include "energy/accounting.h"
#include "sim/hybrid_sim.h"
#include "trace/synthetic.h"
#include "trace/trace_io.h"
#include "trace/trace_stats.h"
#include "util/error.h"

namespace cl {
namespace {

const Metro& metro() {
  static const Metro m = Metro::london_top5();
  return m;
}

Trace base_trace() {
  TraceConfig tc;
  tc.days = 3;
  tc.users = 3000;
  tc.exemplar_views = {20000};
  tc.catalogue_tail = 150;
  tc.tail_views = 10000;
  return TraceGenerator(tc, metro()).generate();
}

// ---- preload ----

TEST(Preload, ZeroAdoptionIsIdentity) {
  const Trace trace = base_trace();
  const Trace out = apply_preload(trace, {.adoption = 0.0}, 1);
  ASSERT_EQ(out.size(), trace.size());
  for (std::size_t i = 0; i < out.size(); i += 101) {
    EXPECT_DOUBLE_EQ(out.sessions[i].start, trace.sessions[i].start);
  }
}

TEST(Preload, FullAdoptionMovesEverythingIntoWindow) {
  const Trace trace = base_trace();
  const PreloadConfig config{.adoption = 1.0,
                             .window_start_hour = 7.0,
                             .window_end_hour = 9.0};
  const Trace out = apply_preload(trace, config, 1);
  for (const auto& s : out.sessions) {
    const double hour = std::fmod(s.start, 86400.0) / 3600.0;
    EXPECT_GE(hour, 7.0 - 1e-9);
    EXPECT_LT(hour, 9.0 + 1e-9);
  }
}

TEST(Preload, KeepsDayAndDuration) {
  const Trace trace = base_trace();
  const Trace out = apply_preload(trace, {.adoption = 1.0}, 1);
  ASSERT_EQ(out.size(), trace.size());
  double watch_in = 0, watch_out = 0;
  for (const auto& s : trace.sessions) watch_in += s.duration;
  for (const auto& s : out.sessions) watch_out += s.duration;
  EXPECT_NEAR(watch_out, watch_in, watch_in * 0.001);
}

TEST(Preload, DeterministicInSeed) {
  const Trace trace = base_trace();
  const Trace a = apply_preload(trace, {.adoption = 0.5}, 7);
  const Trace b = apply_preload(trace, {.adoption = 0.5}, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 53) {
    EXPECT_DOUBLE_EQ(a.sessions[i].start, b.sessions[i].start);
  }
}

TEST(Preload, ConcentrationRaisesOffload) {
  // Synchronising demand into a 2-hour window increases instantaneous
  // swarm sizes, hence the offloadable share.
  const Trace trace = base_trace();
  const Trace preloaded = apply_preload(trace, {.adoption = 1.0}, 3);
  HybridSimulator sim(metro(), SimConfig{});
  const double g_base = sim.run(trace).total.offload_fraction();
  const double g_pre = sim.run(preloaded).total.offload_fraction();
  EXPECT_GT(g_pre, g_base + 0.02);
}

TEST(Preload, KeepsMetroName) {
  // Regression: apply_preload used to rebuild the Trace copying only the
  // span, silently dropping the metro stamp (so resolve_metro fell back
  // to defaults downstream).
  Trace trace = base_trace();
  ASSERT_FALSE(trace.metro_name.empty());
  const Trace out = apply_preload(trace, {.adoption = 0.5}, 1);
  EXPECT_EQ(out.metro_name, trace.metro_name);
}

TEST(Preload, PartialFinalDayLeavesOverflowUnmoved) {
  // Regression: on a trace whose last day is partial, sessions whose
  // window target falls past the span used to be clamped onto the single
  // timestamp span−1, piling up an artificial swarm spike there. They
  // must stay at their original start instead.
  const double span_s = 1.2 * 86400.0;  // final day covers only ~4.8 h
  Trace trace;
  trace.span = Seconds{span_s};
  trace.metro_name = "london_top5";
  for (std::uint32_t u = 0; u < 40; ++u) {
    SessionRecord s;
    s.user = u;
    s.household = u;
    s.content = 1;
    // Half the sessions on day 0 (movable), half on the partial final
    // day after its 07:00–09:00 window would end past the span.
    s.start = (u % 2 == 0) ? 40000.0 + u : 86400.0 + 8000.0 + u;
    s.duration = 600.0;
    trace.sessions.push_back(s);
  }
  const PreloadConfig config{.adoption = 1.0,
                             .window_start_hour = 7.0,
                             .window_end_hour = 9.0};
  const Trace out = apply_preload(trace, config, 5);
  ASSERT_EQ(out.size(), trace.size());

  std::size_t day0_moved = 0, day1_unmoved = 0, piled_at_end = 0;
  for (const auto& s : out.sessions) {
    if (s.start >= span_s - 1.5) ++piled_at_end;
    if (s.start < 86400.0) {
      // Day-0 sessions all land inside the window.
      const double hour = s.start / 3600.0;
      EXPECT_GE(hour, 7.0 - 1e-9);
      EXPECT_LT(hour, 9.0 + 1e-9);
      ++day0_moved;
    } else {
      // Day-1 targets (86400 + 7·3600 = 111600 s) overflow the 103680 s
      // span, so these sessions keep their original starts.
      EXPECT_GE(s.start, 86400.0 + 8000.0);
      EXPECT_LT(s.start, 86400.0 + 8000.0 + 40.0);
      ++day1_unmoved;
    }
  }
  EXPECT_EQ(day0_moved, 20u);
  EXPECT_EQ(day1_unmoved, 20u);
  EXPECT_EQ(piled_at_end, 0u);
}

TEST(Preload, RejectsBadConfig) {
  const Trace trace = base_trace();
  EXPECT_THROW(apply_preload(trace, {.adoption = 1.5}, 1), InvalidArgument);
  EXPECT_THROW(apply_preload(
                   trace, {.window_start_hour = 9.0, .window_end_hour = 7.0},
                   1),
               InvalidArgument);
}

// ---- live events ----

TEST(Live, GeneratesConfiguredAudience) {
  LiveEventConfig config;
  config.viewers = 2000;
  const Trace trace = generate_live_event(metro(), config, 5);
  EXPECT_EQ(trace.size(), 2000u);
  trace.validate();
}

TEST(Live, ViewersClusterAroundEventStart) {
  LiveEventConfig config;
  config.viewers = 3000;
  config.event_start_s = 7200;
  config.join_jitter_s = 60;
  const Trace trace = generate_live_event(metro(), config, 5);
  std::size_t within_5min = 0;
  for (const auto& s : trace.sessions) {
    EXPECT_GE(s.start, 7200.0);
    if (s.start < 7200.0 + 300.0) ++within_5min;
  }
  EXPECT_GT(static_cast<double>(within_5min) / 3000.0, 0.95);
}

TEST(Live, HugeSwarmsYieldNearCeilingOffload) {
  LiveEventConfig config;
  config.viewers = 4000;
  const Trace trace = generate_live_event(metro(), config, 5);
  const auto result = HybridSimulator(metro(), SimConfig{}).run(trace);
  // Thousands of concurrent viewers: G approaches its ceiling of ~1 even
  // after ISP × bitrate splitting.
  EXPECT_GT(result.total.offload_fraction(), 0.9);
}

TEST(Live, DeterministicInSeed) {
  LiveEventConfig config;
  config.viewers = 100;
  const Trace a = generate_live_event(metro(), config, 11);
  const Trace b = generate_live_event(metro(), config, 11);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.sessions[i].start, b.sessions[i].start);
    EXPECT_EQ(a.sessions[i].isp, b.sessions[i].isp);
  }
}

TEST(Live, RejectsBadConfig) {
  LiveEventConfig config;
  config.viewers = 0;
  EXPECT_THROW(generate_live_event(metro(), config, 1), InvalidArgument);
}

TEST(Live, StampsMetroName) {
  // Regression: generate_live_event sampled ISPs/ExPs from a named Metro
  // but left the trace's metro_name empty.
  LiveEventConfig config;
  config.viewers = 50;
  const Trace trace = generate_live_event(metro(), config, 5);
  EXPECT_EQ(trace.metro_name, metro().name());
}

TEST(Live, LateJoinersAreDroppedNotClampedToSpanEnd) {
  // Regression: joiners whose exponential jitter landed past the span
  // used to be clamped to span−1, piling an artificial burst of
  // zero-length sessions onto the trace's final second. They are dropped
  // now — with their rng draws still consumed, so the surviving viewers'
  // placements are unchanged.
  LiveEventConfig config;
  config.viewers = 2000;
  config.span_days = 1;
  config.event_start_s = 86400.0 - 600.0;  // jitter tail crosses the span
  config.join_jitter_s = 600.0;
  const Trace trace = generate_live_event(metro(), config, 5);
  EXPECT_LT(trace.size(), 2000u);  // some joiners landed past the span
  EXPECT_GT(trace.size(), 0u);
  for (const auto& s : trace.sessions) {
    EXPECT_LT(s.start, 86400.0);
    EXPECT_LE(s.end(), 86400.0);
  }
  // No pile-up at the final second.
  std::size_t last_second = 0;
  for (const auto& s : trace.sessions) {
    if (s.start >= 86400.0 - 1.0) ++last_second;
  }
  EXPECT_LT(last_second, 25u);

  // Same seed, wider span: every session kept by the 1-day run matches
  // its 2-day counterpart field-for-field (the drop consumed the same
  // draws), and the extra sessions are exactly the late joiners.
  LiveEventConfig wide = config;
  wide.span_days = 2;
  const Trace full = generate_live_event(metro(), wide, 5);
  EXPECT_GT(full.size(), trace.size());
  std::map<std::uint32_t, const SessionRecord*> by_user;
  for (const auto& s : full.sessions) by_user[s.user] = &s;
  for (const auto& s : trace.sessions) {
    ASSERT_TRUE(by_user.count(s.user));
    const SessionRecord& f = *by_user[s.user];
    EXPECT_EQ(s.isp, f.isp);
    EXPECT_EQ(s.bitrate, f.bitrate);
    EXPECT_DOUBLE_EQ(s.start, f.start);
    // Durations may differ only by the 1-day span clamp.
    EXPECT_LE(s.duration, f.duration + 1e-9);
  }
}

TEST(Live, MetroSurvivesCsvRoundTrip) {
  LiveEventConfig config;
  config.viewers = 50;
  const Trace trace = generate_live_event(metro(), config, 5);
  const std::string path =
      (std::filesystem::temp_directory_path() / "cl_live_metro.csv").string();
  write_trace_file(path, trace);
  const Trace back = read_trace_file(path);
  std::filesystem::remove(path);
  EXPECT_EQ(back.metro_name, metro().name());
  ASSERT_EQ(back.size(), trace.size());
}

// ---- edge cache ----

TEST(LruSet, HitsAndEvictions) {
  LruSet lru(2);
  EXPECT_FALSE(lru.touch(1));
  EXPECT_FALSE(lru.touch(2));
  EXPECT_TRUE(lru.touch(1));   // refreshes 1; order now [1, 2]
  EXPECT_FALSE(lru.touch(3));  // evicts 2
  EXPECT_TRUE(lru.touch(1));
  EXPECT_FALSE(lru.touch(2));  // 2 was evicted
  EXPECT_EQ(lru.size(), 2u);
}

TEST(LruSet, CapacityOneThrashes) {
  LruSet lru(1);
  EXPECT_FALSE(lru.touch(1));
  EXPECT_TRUE(lru.touch(1));
  EXPECT_FALSE(lru.touch(2));
  EXPECT_FALSE(lru.touch(1));
}

TEST(LruSet, RejectsZeroCapacity) {
  EXPECT_THROW(LruSet(0), InvalidArgument);
}

TEST(EdgeCache, HitRatePositiveOnSkewedCatalogue) {
  const Trace trace = base_trace();
  EdgeCacheSimulator sim(metro(), SimConfig{}, EdgeCacheConfig{});
  const auto outcome = sim.run(trace);
  EXPECT_GT(outcome.hit_rate(), 0.0);
  EXPECT_LT(outcome.hit_rate(), 1.0);
  EXPECT_EQ(outcome.hits + outcome.misses, trace.size());
}

TEST(EdgeCache, BiggerCacheNeverHurtsHitRate) {
  const Trace trace = base_trace();
  EdgeCacheSimulator small(metro(), SimConfig{},
                           EdgeCacheConfig{.capacity_per_exp = 2});
  EdgeCacheSimulator large(metro(), SimConfig{},
                           EdgeCacheConfig{.capacity_per_exp = 100});
  EXPECT_GE(large.run(trace).hit_rate(), small.run(trace).hit_rate());
}

TEST(EdgeCache, CachePsiCheaperThanServer) {
  for (const auto& p : standard_params()) {
    const CostFunctions costs(p);
    EXPECT_LT(EdgeCacheSimulator::cache_psi(p).value(),
              costs.psi_server().value());
  }
}

TEST(EdgeCache, SavingsBeatPureCdn) {
  const Trace trace = base_trace();
  EdgeCacheSimulator sim(metro(), SimConfig{}, EdgeCacheConfig{});
  const auto outcome = sim.run(trace);
  for (const auto& p : standard_params()) {
    EXPECT_GT(EdgeCacheSimulator::savings(outcome, p), 0.0) << p.name;
  }
}

TEST(EdgeCache, CachePlusP2pBeatsCacheAlone) {
  const Trace trace = base_trace();
  EdgeCacheSimulator with_p2p(metro(), SimConfig{},
                              EdgeCacheConfig{.misses_use_p2p = true});
  EdgeCacheSimulator without_p2p(metro(), SimConfig{},
                                 EdgeCacheConfig{.misses_use_p2p = false});
  const auto a = with_p2p.run(trace);
  const auto b = without_p2p.run(trace);
  const auto p = valancius_params();
  EXPECT_GT(EdgeCacheSimulator::savings(a, p),
            EdgeCacheSimulator::savings(b, p));
}

TEST(EdgeCache, VolumeConserved) {
  const Trace trace = base_trace();
  EdgeCacheSimulator sim(metro(), SimConfig{}, EdgeCacheConfig{});
  const auto outcome = sim.run(trace);
  // Cache bits + miss-sim bits ≈ full useful volume (windowing loses a
  // little of the miss traffic only).
  const double recovered = outcome.cache_bits.value() +
                           outcome.miss_sim.total.total().value();
  EXPECT_NEAR(recovered / trace.total_volume().value(), 1.0, 0.02);
}

}  // namespace
}  // namespace cl
