// Tests for trace/catalogue.h and trace/bitrate.h.
#include "trace/bitrate.h"
#include "trace/catalogue.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace cl {
namespace {

TEST(Bitrate, ClassValues) {
  EXPECT_DOUBLE_EQ(bitrate_of(BitrateClass::kMobile).mbps(), 0.8);
  EXPECT_DOUBLE_EQ(bitrate_of(BitrateClass::kSd).mbps(), 1.5);
  EXPECT_DOUBLE_EQ(bitrate_of(BitrateClass::kHd).mbps(), 3.0);
  EXPECT_DOUBLE_EQ(bitrate_of(BitrateClass::kFullHd).mbps(), 5.0);
}

TEST(Bitrate, StringsRoundTrip) {
  for (auto c : kAllBitrateClasses) {
    EXPECT_EQ(bitrate_class_from_string(to_string(c)), c);
  }
}

TEST(Bitrate, UnknownNameThrows) {
  EXPECT_THROW((void)bitrate_class_from_string("8k"), ParseError);
}

TEST(Bitrate, AscendingOrder) {
  for (std::size_t i = 1; i < kAllBitrateClasses.size(); ++i) {
    EXPECT_LT(bitrate_of(kAllBitrateClasses[i - 1]).value(),
              bitrate_of(kAllBitrateClasses[i]).value());
  }
}

TEST(Catalogue, ExemplarsPinned) {
  const Catalogue cat({100000, 10000, 1000}, 100, 50000, 0.9);
  EXPECT_EQ(cat.exemplar_count(), 3u);
  EXPECT_EQ(cat.size(), 103u);
  EXPECT_DOUBLE_EQ(cat.item(0).expected_views_per_month, 100000.0);
  EXPECT_DOUBLE_EQ(cat.item(1).expected_views_per_month, 10000.0);
  EXPECT_DOUBLE_EQ(cat.item(2).expected_views_per_month, 1000.0);
}

TEST(Catalogue, TailSumsToTailViews) {
  const Catalogue cat({1000}, 500, 80000, 1.0);
  double tail = 0;
  for (std::size_t id = 1; id < cat.size(); ++id) {
    tail += cat.item(id).expected_views_per_month;
  }
  EXPECT_NEAR(tail, 80000.0, 1e-6);
  EXPECT_NEAR(cat.total_views(), 81000.0, 1e-6);
}

TEST(Catalogue, TailIsZipfDecreasing) {
  const Catalogue cat({}, 200, 10000, 0.9);
  for (std::size_t id = 1; id < cat.size(); ++id) {
    EXPECT_GE(cat.item(id - 1).expected_views_per_month,
              cat.item(id).expected_views_per_month);
  }
}

TEST(Catalogue, ZipfHeadTailRatio) {
  const Catalogue cat({}, 1000, 10000, 1.0);
  EXPECT_NEAR(cat.item(0).expected_views_per_month /
                  cat.item(9).expected_views_per_month,
              10.0, 1e-9);
}

TEST(Catalogue, SamplerFollowsPopularity) {
  const Catalogue cat({5000}, 10, 5000, 0.0);  // exemplar = half the mass
  Rng rng(3);
  int exemplar_hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (cat.sample(rng) == 0) ++exemplar_hits;
  }
  EXPECT_NEAR(static_cast<double>(exemplar_hits) / n, 0.5, 0.01);
}

TEST(Catalogue, NominalLengthsRealistic) {
  const Catalogue cat({}, 50, 1000, 0.9);
  for (std::size_t id = 0; id < cat.size(); ++id) {
    const double minutes = cat.item(id).nominal_length.minutes();
    EXPECT_TRUE(minutes == 10.0 || minutes == 30.0 || minutes == 60.0);
  }
}

TEST(Catalogue, RejectsInvalidConfig) {
  EXPECT_THROW(Catalogue({}, 0, 1000, 0.9), InvalidArgument);
  EXPECT_THROW(Catalogue({-5.0}, 10, 1000, 0.9), InvalidArgument);
  EXPECT_THROW(Catalogue({}, 10, -1.0, 0.9), InvalidArgument);
}

TEST(Catalogue, ItemOutOfRangeThrows) {
  const Catalogue cat({}, 10, 1000, 0.9);
  EXPECT_THROW((void)cat.item(10), InvalidArgument);
}

}  // namespace
}  // namespace cl
