// Tests for sim/event_engine.h (RateProfile, EventQueue), the Mt/G/∞
// queue mode, the flash-crowd scenario generator (ext/live.h) and the
// simulator's overload (CDN-spill) model.
#include "sim/event_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ext/live.h"
#include "sim/hybrid_sim.h"
#include "sim/queue_sim.h"
#include "trace/trace_binary.h"
#include "trace/trace_format.h"
#include "trace/trace_io.h"
#include "util/error.h"
#include "util/rng.h"

namespace cl {
namespace {

const Metro& metro() {
  static const Metro m = Metro::london_top5();
  return m;
}

// ---- RateProfile ----

TEST(RateProfile, ConstantIsFlat) {
  const RateProfile p = RateProfile::constant(2.5);
  EXPECT_DOUBLE_EQ(p.rate_at(0), 2.5);
  EXPECT_DOUBLE_EQ(p.rate_at(1e6), 2.5);
  EXPECT_DOUBLE_EQ(p.max_rate(), 2.5);
  EXPECT_DOUBLE_EQ(p.expected_arrivals(100), 250.0);
}

TEST(RateProfile, PiecewiseStepsAndZeroBeforeFirstPhase) {
  const RateProfile p({{10, 0.0}, {100, 5.0}, {200, 1.0}});
  EXPECT_DOUBLE_EQ(p.rate_at(5), 0.0);   // before the first phase
  EXPECT_DOUBLE_EQ(p.rate_at(50), 0.0);
  EXPECT_DOUBLE_EQ(p.rate_at(100), 5.0);
  EXPECT_DOUBLE_EQ(p.rate_at(150), 5.0);
  EXPECT_DOUBLE_EQ(p.rate_at(1e9), 1.0);
  EXPECT_DOUBLE_EQ(p.max_rate(), 5.0);
  // 0·90 + 5·100 + 1·50 over [0, 250).
  EXPECT_DOUBLE_EQ(p.expected_arrivals(250), 550.0);
}

TEST(RateProfile, RejectsBadPhaseLists) {
  EXPECT_THROW(RateProfile({}), InvalidArgument);
  EXPECT_THROW(RateProfile({{0, 1.0}, {0, 2.0}}), InvalidArgument);   // ties
  EXPECT_THROW(RateProfile({{10, 1.0}, {5, 2.0}}), InvalidArgument);  // order
  EXPECT_THROW(RateProfile({{0, -1.0}}), InvalidArgument);
  EXPECT_THROW(RateProfile({{0, 0.0}, {10, 0.0}}), InvalidArgument);  // all 0
  EXPECT_THROW(RateProfile({{-1, 1.0}}), InvalidArgument);
}

TEST(RateProfile, NextArrivalIsMonotoneAndRespectsLimit) {
  // A trailing zero-rate phase: without the limit the thinning loop
  // would never accept another candidate past t = 100.
  const RateProfile p({{0, 4.0}, {100, 0.0}});
  Rng rng(7);
  double t = 0;
  std::size_t accepted = 0;
  while (true) {
    const double next = p.next_arrival(t, 500.0, rng);
    if (!std::isfinite(next)) break;
    EXPECT_GT(next, t);
    EXPECT_LT(next, 500.0);
    EXPECT_LT(next, 100.0);  // the zero phase admits nothing
    t = next;
    ++accepted;
  }
  // ~400 expected arrivals in [0, 100).
  EXPECT_GT(accepted, 300u);
  EXPECT_LT(accepted, 500u);
}

// ---- EventQueue ----

TEST(EventQueue, PopsInTimeOrderWithFifoTieBreak) {
  EventQueue<char> q;
  q.push(5.0, 'a');
  q.push(3.0, 'b');
  q.push(5.0, 'c');
  q.push(4.0, 'd');
  ASSERT_EQ(q.size(), 4u);
  EXPECT_DOUBLE_EQ(q.next_time(), 3.0);
  EXPECT_EQ(q.pop().payload, 'b');
  EXPECT_EQ(q.pop().payload, 'd');
  // Equal times pop in insertion order — the determinism contract.
  EXPECT_EQ(q.pop().payload, 'a');
  EXPECT_EQ(q.pop().payload, 'c');
  EXPECT_TRUE(q.empty());
}

// ---- Mt/G/∞ queue mode ----

TEST(QueueSimBurst, OccupancyPmfSumsToOneUnderBurstRates) {
  // A spike profile: quiet, a 20x burst, quiet again (satellite: the
  // time-weighted occupancy pmf must stay a distribution under bursts).
  const RateProfile burst({{0, 0.05}, {1000, 1.0}, {1500, 0.05}});
  const auto sim = QueueSimulator::mm_infinity(burst, Seconds{100});
  const auto result = sim.run(Seconds{50000}, 42);
  double pmf_sum = 0;
  for (const double p : result.occupancy_pmf) pmf_sum += p;
  EXPECT_NEAR(pmf_sum, 1.0, 1e-9);
  EXPECT_GT(result.arrivals, 1000u);
  EXPECT_GT(result.time_average_occupancy, 0.0);
}

TEST(QueueSimBurst, ConstantProfileMatchesConstantRateStatistics) {
  // Mt/G/∞ with a flat profile is an M/M/∞ in disguise: same occupancy.
  const double c = 3.0;
  const auto flat =
      QueueSimulator::mm_infinity(RateProfile::constant(c / 100.0),
                                  Seconds{100});
  const auto result = flat.run(Seconds{2e6}, 11);
  EXPECT_NEAR(result.time_average_occupancy, c, 0.15);
}

// ---- flash-crowd generator ----

TEST(FlashCrowd, PresetNamesAreValidAndUnknownThrows) {
  for (const auto& name : flash_crowd_preset_names()) {
    const FlashCrowdConfig config = flash_crowd_preset(name, 100, 7200, 1);
    EXPECT_GT(config.arrivals.expected_arrivals(86400.0), 50.0) << name;
  }
  EXPECT_THROW(flash_crowd_preset("bogus", 100, 7200, 1), InvalidArgument);
  EXPECT_THROW(flash_crowd_preset("spike", 0, 7200, 1), InvalidArgument);
  EXPECT_THROW(flash_crowd_preset("spike", 100, 100, 1), InvalidArgument);
}

TEST(FlashCrowd, DeterministicInSeed) {
  const FlashCrowdConfig config = flash_crowd_preset("spike", 500, 7200, 1);
  const Trace a = generate_flash_crowd(metro(), config, 9);
  const Trace b = generate_flash_crowd(metro(), config, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.sessions[i].user, b.sessions[i].user);
    EXPECT_EQ(a.sessions[i].isp, b.sessions[i].isp);
    EXPECT_EQ(a.sessions[i].bitrate, b.sessions[i].bitrate);
    EXPECT_DOUBLE_EQ(a.sessions[i].start, b.sessions[i].start);
    EXPECT_DOUBLE_EQ(a.sessions[i].duration, b.sessions[i].duration);
  }
}

TEST(FlashCrowd, SpikeConcentratesArrivalsAroundEventStart) {
  const FlashCrowdConfig config = flash_crowd_preset("spike", 2000, 7200, 1);
  const Trace trace = generate_flash_crowd(metro(), config, 5);
  EXPECT_GT(trace.size(), 1000u);
  std::size_t first_segments = 0;
  std::size_t in_burst = 0;
  std::vector<bool> seen(1u << 20);
  for (const auto& s : trace.sessions) {
    if (seen[s.user]) continue;  // churn resumes are not arrivals
    seen[s.user] = true;
    ++first_segments;
    if (s.start >= 7200.0 - 600.0 && s.start < 7200.0 + 780.0) ++in_burst;
  }
  EXPECT_GT(static_cast<double>(in_burst) / first_segments, 0.95);
}

TEST(FlashCrowd, ChurnEmitsNonOverlappingResumeSegments) {
  const FlashCrowdConfig config = flash_crowd_preset("spike", 2000, 7200, 1);
  const Trace trace = generate_flash_crowd(metro(), config, 5);
  // Per-user segment lists: churn rejoin or the bitrate shift must give
  // some viewers several segments, never overlapping in time.
  std::map<std::uint32_t, std::vector<const SessionRecord*>> by_user;
  for (const auto& s : trace.sessions) by_user[s.user].push_back(&s);
  std::size_t multi = 0;
  for (auto& [user, segments] : by_user) {
    if (segments.size() > 1) ++multi;
    std::sort(segments.begin(), segments.end(),
              [](const SessionRecord* a, const SessionRecord* b) {
                return a->start < b->start;
              });
    for (std::size_t i = 1; i < segments.size(); ++i) {
      EXPECT_GE(segments[i]->start, segments[i - 1]->end() - 1e-9)
          << "user " << user;
    }
  }
  EXPECT_GT(multi, 0u);
}

TEST(FlashCrowd, ShiftDowngradesActiveViewers) {
  const FlashCrowdConfig config = flash_crowd_preset("spike", 2000, 7200, 1);
  ASSERT_GT(config.shift_time_s, 0);
  const Trace trace = generate_flash_crowd(metro(), config, 5);
  // Some viewer must close a segment exactly at the shift and reopen one
  // at the next-lower bitrate class.
  std::size_t downgraded = 0;
  std::map<std::uint32_t, std::vector<const SessionRecord*>> by_user;
  for (const auto& s : trace.sessions) by_user[s.user].push_back(&s);
  for (auto& [user, segments] : by_user) {
    for (const SessionRecord* s : segments) {
      if (s->start == config.shift_time_s) {
        for (const SessionRecord* prev : segments) {
          if (prev->end() == config.shift_time_s &&
              index(prev->bitrate) == index(s->bitrate) + 1) {
            ++downgraded;
          }
        }
      }
    }
  }
  EXPECT_GT(downgraded, 0u);
}

TEST(FlashCrowd, SegmentsStayInsideSpanAndStampMetro) {
  FlashCrowdConfig config = flash_crowd_preset("ramp", 800, 80000, 1);
  const Trace trace = generate_flash_crowd(metro(), config, 3);
  EXPECT_EQ(trace.metro_name, metro().name());
  const double span = trace.span.value();
  for (const auto& s : trace.sessions) {
    EXPECT_LT(s.start, span);
    EXPECT_LE(s.end(), span + 1e-9);
  }
}

// ---- round trips (satellite: both formats, metro stamped) ----

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(FlashCrowd, CsvRoundTripIsByteExact) {
  const FlashCrowdConfig config = flash_crowd_preset("spike", 300, 7200, 1);
  const Trace trace = generate_flash_crowd(metro(), config, 21);
  const auto dir = std::filesystem::temp_directory_path();
  const std::string a = (dir / "cl_fc_a.csv").string();
  const std::string b = (dir / "cl_fc_b.csv").string();
  write_trace_file(a, trace);
  const Trace back = read_trace_file(a);
  EXPECT_EQ(back.metro_name, metro().name());
  write_trace_file(b, back);
  EXPECT_EQ(slurp(a), slurp(b));
  std::filesystem::remove(a);
  std::filesystem::remove(b);
}

TEST(FlashCrowd, BinaryRoundTripIsByteExact) {
  const FlashCrowdConfig config = flash_crowd_preset("ramp", 300, 7200, 1);
  const Trace trace = generate_flash_crowd(metro(), config, 21);
  const std::string serialized = serialize_trace_binary(trace);
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "cl_fc.cltrace").string();
  write_trace_binary_file(path, trace);
  const Trace back = read_trace_any(path, TraceFormat::kBinary, 1);
  EXPECT_EQ(back.metro_name, metro().name());
  EXPECT_EQ(serialize_trace_binary(back), serialized);
  std::filesystem::remove(path);
}

// ---- overload model ----

Trace tiny_swarm(std::vector<double> starts, std::vector<double> durations) {
  Trace trace;
  trace.span = Seconds{3600};
  trace.metro_name = metro().name();
  for (std::size_t i = 0; i < starts.size(); ++i) {
    SessionRecord s;
    s.user = static_cast<std::uint32_t>(i);
    s.household = s.user;
    s.content = 0;
    s.isp = 0;
    s.exp = 0;
    s.bitrate = BitrateClass::kSd;
    s.start = starts[i];
    s.duration = durations[i];
    trace.sessions.push_back(s);
  }
  trace.validate();
  return trace;
}

SimConfig overload_config(bool on) {
  SimConfig config;
  config.overload = on;
  config.collect_hourly = true;
  return config;
}

TEST(Overload, SynchronizedJoinSpillsTheWholeFirstWindow) {
  // Three same-window joiners: nobody is warm in the stretch's first
  // window, so the whole peer demand 2·β·Δτ bounces to the CDN.
  const Trace trace = tiny_swarm({0, 0, 0}, {100, 100, 100});
  const SimResult on =
      HybridSimulator(metro(), overload_config(true)).run(trace);
  const SimResult off =
      HybridSimulator(metro(), overload_config(false)).run(trace);
  const double beta_dt = 1.5e6 * 10.0;  // SD bitrate × Δτ
  EXPECT_DOUBLE_EQ(on.overload_spill.value(), 2 * beta_dt);
  EXPECT_DOUBLE_EQ(on.total.server.value(),
                   off.total.server.value() + 2 * beta_dt);
  EXPECT_DOUBLE_EQ(on.total.peer_total().value(),
                   off.total.peer_total().value() - 2 * beta_dt);
  ASSERT_FALSE(on.hourly_spill.empty());
  EXPECT_DOUBLE_EQ(on.hourly_spill[0].value(), 2 * beta_dt);
}

TEST(Overload, StaggeredJoinsHaveWarmCapacityAndNoSpill) {
  // Each later joiner meets at least one full-window member: capacity
  // q·Σ_warm β·Δτ covers the demand, so overload changes nothing — the
  // flag-on run is bit-identical to the flag-off run.
  const Trace trace = tiny_swarm({0, 20, 40}, {100, 80, 60});
  const SimResult on =
      HybridSimulator(metro(), overload_config(true)).run(trace);
  const SimResult off =
      HybridSimulator(metro(), overload_config(false)).run(trace);
  EXPECT_EQ(on.overload_spill.value(), 0.0);
  EXPECT_EQ(on.total.server, off.total.server);
  EXPECT_EQ(on.total.cross_isp, off.total.cross_isp);
  for (std::size_t l = 0; l < kLocalityLevels; ++l) {
    EXPECT_EQ(on.total.peer[l], off.total.peer[l]);
  }
}

TEST(Overload, OffByDefaultAndZeroSpillWhenOff) {
  EXPECT_FALSE(SimConfig{}.overload);
  const Trace trace = tiny_swarm({0, 0}, {50, 50});
  const SimResult off = HybridSimulator(metro(), SimConfig{}).run(trace);
  EXPECT_EQ(off.overload_spill.value(), 0.0);
  EXPECT_TRUE(off.hourly_spill.empty());
}

TEST(Overload, FlashCrowdSpillsAndConservesTotalVolume) {
  const FlashCrowdConfig config = flash_crowd_preset("spike", 1500, 7200, 1);
  const Trace trace = generate_flash_crowd(metro(), config, 3);
  const SimResult on =
      HybridSimulator(metro(), overload_config(true)).run(trace);
  const SimResult off =
      HybridSimulator(metro(), overload_config(false)).run(trace);
  // The spike has a real overload phase...
  EXPECT_GT(on.overload_spill.value(), 0.0);
  EXPECT_LT(on.offload(), off.offload());
  // ...but spill only moves bits between lanes (FP-rounding tolerance:
  // the per-peer lane redistribution rounds).
  EXPECT_NEAR(on.total.total().value() / off.total.total().value(), 1.0,
              1e-12);
  // The per-hour spill grid decomposes the total.
  double hourly_sum = 0;
  for (const Bits spill : on.hourly_spill) hourly_sum += spill.value();
  EXPECT_NEAR(hourly_sum / on.overload_spill.value(), 1.0, 1e-12);
}

TEST(Overload, BitIdenticalAcrossThreadCountsAndDataPaths) {
  const FlashCrowdConfig config = flash_crowd_preset("spike", 1200, 7200, 1);
  const Trace trace = generate_flash_crowd(metro(), config, 13);
  SimConfig sim_config = overload_config(true);
  sim_config.threads = 1;
  const HybridSimulator reference_sim(metro(), sim_config);
  const SimResult reference = reference_sim.run(trace);
  // The row-structured reference path (virtual Matcher dispatch, no SIMD
  // gathers) must agree bitwise, spill accounting included.
  const SimResult rows = reference_sim.run_rows(trace);
  for (unsigned threads : {2u, 7u, 0u}) {
    sim_config.threads = threads;
    const SimResult result = HybridSimulator(metro(), sim_config).run(trace);
    EXPECT_EQ(result.total.server, reference.total.server) << threads;
    EXPECT_EQ(result.total.cross_isp, reference.total.cross_isp) << threads;
    for (std::size_t l = 0; l < kLocalityLevels; ++l) {
      EXPECT_EQ(result.total.peer[l], reference.total.peer[l]) << threads;
    }
    EXPECT_EQ(result.overload_spill, reference.overload_spill) << threads;
    ASSERT_EQ(result.hourly_spill.size(), reference.hourly_spill.size());
    for (std::size_t h = 0; h < result.hourly_spill.size(); ++h) {
      EXPECT_EQ(result.hourly_spill[h], reference.hourly_spill[h]) << threads;
    }
  }
  EXPECT_EQ(rows.total.server, reference.total.server);
  EXPECT_EQ(rows.overload_spill, reference.overload_spill);
  ASSERT_EQ(rows.hourly_spill.size(), reference.hourly_spill.size());
  for (std::size_t h = 0; h < rows.hourly_spill.size(); ++h) {
    EXPECT_EQ(rows.hourly_spill[h], reference.hourly_spill[h]);
  }
}

}  // namespace
}  // namespace cl
