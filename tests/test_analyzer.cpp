// Tests for core/analyzer.h — the theory+simulation facade.
#include "core/analyzer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "trace/filter.h"
#include "trace/synthetic.h"
#include "util/error.h"

namespace cl {
namespace {

const Metro& metro() {
  static const Metro m = Metro::london_top5();
  return m;
}

Trace month_trace() {
  TraceConfig tc;
  tc.days = 5;
  tc.users = 4000;
  tc.exemplar_views = {40000, 4000};
  tc.catalogue_tail = 300;
  tc.tail_views = 20000;
  return TraceGenerator(tc, metro()).generate();
}

TEST(Analyzer, DefaultsToBothPaperModels) {
  const Analyzer analyzer(metro(), SimConfig{});
  ASSERT_EQ(analyzer.models().size(), 2u);
  EXPECT_EQ(analyzer.models()[0].name, "Valancius");
  EXPECT_EQ(analyzer.models()[1].name, "Baliga");
}

TEST(Analyzer, RejectsEmptyModelList) {
  EXPECT_THROW(Analyzer(metro(), SimConfig{}, {}), InvalidArgument);
}

TEST(Analyzer, SwarmExperimentSimTracksTheory) {
  const Trace trace = month_trace();
  const Analyzer analyzer(metro(), SimConfig{});
  const Trace popular = filter_by_isp(filter_by_content(trace, 0), 0);
  const auto e = analyzer.analyze_swarm(popular, 0);
  EXPECT_GT(e.capacity, 0.5);
  ASSERT_EQ(e.models.size(), 2u);
  for (const auto& m : e.models) {
    EXPECT_GT(m.sim_savings, 0.0);
    // Theory at the *whole-content* capacity overshoots the bitrate-split
    // simulation; they must still be in the same ballpark.
    EXPECT_NEAR(m.sim_savings, m.theory_savings, 0.5 * m.theory_savings + 0.02);
    EXPECT_GT(m.theory_offload, m.sim_offload - 0.05);
  }
}

TEST(Analyzer, SwarmExperimentPerBitrateAgreesTightly) {
  const Trace trace = month_trace();
  const Analyzer analyzer(metro(), SimConfig{});
  const Trace swarm = filter_by_bitrate(
      filter_by_isp(filter_by_content(trace, 0), 0), BitrateClass::kSd);
  const auto e = analyzer.analyze_swarm(swarm, 0);
  for (const auto& m : e.models) {
    // Per-(content, ISP, bitrate) swarms are the theory's exact object;
    // diurnal rate variation keeps residual gaps of a few points.
    EXPECT_NEAR(m.sim_savings, m.theory_savings, 0.06) << m.model;
    EXPECT_NEAR(m.sim_offload, m.theory_offload, 0.08) << m.model;
  }
}

TEST(Analyzer, DailyReportShapes) {
  const Trace trace = month_trace();
  const Analyzer analyzer(metro(), SimConfig{});
  const auto report = analyzer.daily_report(trace);
  ASSERT_EQ(report.models.size(), 2u);
  ASSERT_EQ(report.sim.size(), 2u);
  ASSERT_EQ(report.theory.size(), 2u);
  ASSERT_EQ(report.sim[0].size(), 5u);     // days
  ASSERT_EQ(report.sim[0][0].size(), 5u);  // isps
  ASSERT_EQ(report.theory[0].size(), 5u);
}

TEST(Analyzer, DailyReportSimTracksTheoryForBigIsp) {
  const Trace trace = month_trace();
  const Analyzer analyzer(metro(), SimConfig{});
  const auto report = analyzer.daily_report(trace);
  for (std::size_t m = 0; m < 2; ++m) {
    for (std::size_t d = 0; d < report.sim[m].size(); ++d) {
      const double sim = report.sim[m][d][0];
      const double theory = report.theory[m][d][0];
      EXPECT_GT(sim, 0.0);
      EXPECT_NEAR(sim, theory, 0.12) << "model " << m << " day " << d;
    }
  }
}

TEST(Analyzer, SwarmDistributionsCoverCatalogue) {
  const Trace trace = month_trace();
  const Analyzer analyzer(metro(), SimConfig{});
  const auto dist = analyzer.swarm_distributions(trace);
  EXPECT_GT(dist.capacities.size(), 100u);
  ASSERT_EQ(dist.savings.size(), 2u);
  EXPECT_EQ(dist.savings[0].size(), dist.capacities.size());
  // Popular swarms exist alongside a long tail of tiny ones.
  const auto [min_it, max_it] =
      std::minmax_element(dist.capacities.begin(), dist.capacities.end());
  EXPECT_LT(*min_it, 0.05);
  EXPECT_GT(*max_it, 0.5);
}

TEST(Analyzer, AggregateHeadlineNumbers) {
  const Trace trace = month_trace();
  const Analyzer analyzer(metro(), SimConfig{});
  const auto outcomes = analyzer.aggregate(trace);
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& o : outcomes) {
    EXPECT_GT(o.sim_savings, 0.0);
    EXPECT_LT(o.sim_savings, 0.6);
    EXPECT_GT(o.offload, 0.0);
    EXPECT_LT(o.hybrid_energy.value(), o.baseline_energy.value());
    // Savings identity: S = 1 − hybrid/baseline.
    EXPECT_NEAR(o.sim_savings,
                1.0 - o.hybrid_energy.value() / o.baseline_energy.value(),
                1e-9);
    EXPECT_NEAR(o.sim_savings, o.theory_savings, 0.10);
  }
  // Valancius reports larger relative savings than Baliga (paper Fig. 4).
  EXPECT_GT(outcomes[0].sim_savings, outcomes[1].sim_savings);
}

TEST(Analyzer, SavingsModelAccessor) {
  const Analyzer analyzer(metro(), SimConfig{});
  const auto model = analyzer.savings_model(0, 0);
  EXPECT_EQ(model.params().name, "Valancius");
  EXPECT_THROW(analyzer.savings_model(5, 0), InvalidArgument);
}

}  // namespace
}  // namespace cl
