// Tests for model/split_swarm.h — the partitioned-swarm closed form.
#include "model/split_swarm.h"

#include <gtest/gtest.h>

#include "sim/hybrid_sim.h"
#include "trace/synthetic.h"
#include "util/error.h"

namespace cl {
namespace {

const Metro& metro() {
  static const Metro m = Metro::london_top5();
  return m;
}

TEST(SplitSwarm, SingleSliceEqualsPlainModel) {
  const SplitSwarmModel split(valancius_params(), metro(), {{1.0, 0}});
  const SavingsModel plain(valancius_params(), metro().isp(0));
  for (double c : {0.5, 5.0, 50.0}) {
    EXPECT_NEAR(split.savings(c, 1.0), plain.savings(c, 1.0), 1e-12);
    EXPECT_NEAR(split.offload(c, 1.0), plain.offload(c, 1.0), 1e-12);
  }
}

TEST(SplitSwarm, WeightsNormalised) {
  // Weights 2:2 behave as 0.5:0.5.
  const SplitSwarmModel a(baliga_params(), metro(), {{2.0, 0}, {2.0, 0}});
  const SplitSwarmModel b(baliga_params(), metro(), {{0.5, 0}, {0.5, 0}});
  EXPECT_NEAR(a.savings(10.0, 1.0), b.savings(10.0, 1.0), 1e-12);
}

TEST(SplitSwarm, PartitioningNeverHelps) {
  // S(c) is concave increasing: splitting a swarm can only lose savings.
  const auto split = SplitSwarmModel::isp_bitrate_partition(
      valancius_params(), metro(), {0.08, 0.72, 0.15, 0.05});
  for (double c : {0.1, 1.0, 10.0, 100.0, 1000.0}) {
    EXPECT_LE(split.savings(c, 1.0), split.unsplit_savings(c, 1.0) + 1e-12)
        << "c=" << c;
  }
}

TEST(SplitSwarm, PenaltyVanishesAtLargeCapacity) {
  // Every slice saturates: the split system approaches the same ceiling.
  const auto split = SplitSwarmModel::isp_bitrate_partition(
      baliga_params(), metro(), {0.08, 0.72, 0.15, 0.05});
  EXPECT_GT(split.partition_penalty(1.0, 1.0), 0.2);
  EXPECT_LT(split.partition_penalty(1e6, 1.0), 0.05);
}

TEST(SplitSwarm, PenaltyGrowsWithFragmentation) {
  // An even 4-way bitrate split fragments more than a concentrated one.
  const auto concentrated = SplitSwarmModel::isp_bitrate_partition(
      valancius_params(), metro(), {0.02, 0.94, 0.02, 0.02});
  const auto even = SplitSwarmModel::isp_bitrate_partition(
      valancius_params(), metro(), {0.25, 0.25, 0.25, 0.25});
  EXPECT_GT(even.partition_penalty(10.0, 1.0),
            concentrated.partition_penalty(10.0, 1.0));
}

TEST(SplitSwarm, SliceCountMatchesNonZeroMix) {
  const auto split = SplitSwarmModel::isp_bitrate_partition(
      valancius_params(), metro(), {0.5, 0.5, 0.0, 0.0});
  EXPECT_EQ(split.slices().size(), metro().isp_count() * 2);
}

TEST(SplitSwarm, RejectsBadSlices) {
  EXPECT_THROW(SplitSwarmModel(valancius_params(), metro(), {}),
               InvalidArgument);
  EXPECT_THROW(SplitSwarmModel(valancius_params(), metro(), {{0.0, 0}}),
               InvalidArgument);
  EXPECT_THROW(SplitSwarmModel(valancius_params(), metro(), {{1.0, 99}}),
               InvalidArgument);
}

TEST(SplitSwarm, MatchesSimulatorOnPartitionedPoissonSwarm) {
  // The split closed form is the right theory for the bitrate-split,
  // ISP-friendly simulator: generate one content with the preset mix and
  // compare at the whole-item capacity.
  TraceConfig config;
  config.days = 10;
  config.users = 20000;
  config.exemplar_views = {60000};
  config.catalogue_tail = 1;
  config.tail_views = 1;
  config.bitrate_mix = {0.08, 0.72, 0.15, 0.05};
  for (auto& d : config.diurnal) d = 1.0;  // constant rate: model setting
  TraceGenerator gen(config, metro());
  const Trace trace = gen.generate_content(0);
  double watch = 0;
  for (const auto& s : trace.sessions) watch += s.duration;
  const double capacity = watch / trace.span.value();

  SimConfig sim_config;
  sim_config.collect_hourly = false;
  sim_config.collect_per_user = false;
  sim_config.collect_swarms = false;
  const auto result = HybridSimulator(metro(), sim_config).run(trace);
  for (const auto& params : standard_params()) {
    const auto split = SplitSwarmModel::isp_bitrate_partition(
        params, metro(), config.bitrate_mix);
    const EnergyAccountant accountant{CostFunctions(params)};
    EXPECT_NEAR(accountant.savings(result.total),
                split.savings(capacity, 1.0), 0.02)
        << params.name;
    EXPECT_NEAR(result.total.offload_fraction(), split.offload(capacity, 1.0),
                0.02);
  }
}

}  // namespace
}  // namespace cl
