// Tests for the binary columnar trace format (trace/trace_binary.h), the
// mmap loader (trace/trace_mmap.h) and the swarm index
// (trace/swarm_index.h):
//
//  * round-trip property tests — CSV -> binary -> mmap-load reproduces
//    sessions bit-identically (exact float compares), including empty /
//    single-session / maximal-field-value traces and randomized traces
//    across several RNG seeds;
//  * a golden file committed under tests/data/ pinning the exact byte
//    layout (any accidental format change fails with a "bump the
//    version" message);
//  * corrupt-input rejection — bad magic, wrong version, truncated
//    column blocks, trailing bytes, out-of-range payloads;
//  * cross-thread determinism — the mmap load itself and the analyzer /
//    simulator results on an mmap-loaded trace are bit-identical at
//    --threads 1/2/7/hw and identical to the CSV-loaded path.
#include "trace/trace_binary.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "core/analyzer.h"
#include "sim/swarm_key.h"
#include "topology/metro_registry.h"
#include "trace/swarm_index.h"
#include "trace/trace_format.h"
#include "trace/trace_io.h"
#include "trace/trace_mmap.h"
#include "trace/synthetic.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/serialize.h"

#ifndef CL_TEST_DATA_DIR
#error "CMake must define CL_TEST_DATA_DIR (path of tests/data)"
#endif

namespace cl {
namespace {

// ---------------------------------------------------------------- helpers

const Metro& metro() {
  static const Metro m = Metro::london_top5();
  return m;
}

/// Exact, field-by-field session equality (bit-exact doubles), plus the
/// header fields (span, metro name) that ride along.
void expect_sessions_identical(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.span.value(), b.span.value());
  EXPECT_EQ(a.metro_name, b.metro_name);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const SessionRecord& x = a.sessions[i];
    const SessionRecord& y = b.sessions[i];
    ASSERT_EQ(x.user, y.user) << "i=" << i;
    ASSERT_EQ(x.household, y.household) << "i=" << i;
    ASSERT_EQ(x.content, y.content) << "i=" << i;
    ASSERT_EQ(x.isp, y.isp) << "i=" << i;
    ASSERT_EQ(x.exp, y.exp) << "i=" << i;
    ASSERT_EQ(x.bitrate, y.bitrate) << "i=" << i;
    // Exact equality on purpose: the binary format stores IEEE-754 bit
    // patterns and must reproduce them losslessly.
    ASSERT_EQ(x.start, y.start) << "i=" << i;
    ASSERT_EQ(x.duration, y.duration) << "i=" << i;
  }
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Writes raw bytes to a temp file and returns its path.
std::string write_bytes(const std::string& name, const std::string& bytes) {
  const std::string path = temp_path(name);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  return path;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Binary round trip through an actual file + the mmap loader.
Trace binary_round_trip(const Trace& trace, unsigned threads = 1) {
  const std::string path = temp_path("cl_trace_binary_rt.cltrace");
  write_trace_binary_file(path, trace);
  Trace loaded = read_trace_binary_file(path, threads);
  std::filesystem::remove(path);
  return loaded;
}

Trace tiny_trace() {
  Trace t;
  t.span = Seconds::from_days(1);
  SessionRecord a;
  a.user = 1;
  a.household = 10;
  a.content = 5;
  a.isp = 2;
  a.exp = 77;
  a.bitrate = BitrateClass::kHd;
  a.start = 100.5;
  a.duration = 1800.25;
  SessionRecord b = a;
  b.user = 2;
  b.start = 200.0;
  b.bitrate = BitrateClass::kMobile;
  SessionRecord c = a;
  c.user = 3;
  c.content = 9;
  c.isp = 0;
  c.start = 300.125;
  c.duration = 0.1;  // not exactly representable: exercises bit-exactness
  t.sessions = {a, b, c};
  return t;
}

/// The committed golden fixtures' session content. The legacy
/// tests/data/golden_v1.cltrace was written from exactly this trace by
/// the version-1 writer (no metro field); golden_v2.cltrace adds the
/// metro name — see golden_trace_v2().
Trace golden_trace() {
  Trace t;
  t.span = Seconds{86400.0};
  auto session = [](std::uint32_t user, std::uint32_t household,
                    std::uint32_t content, std::uint32_t isp,
                    std::uint32_t exp, BitrateClass bitrate, double start,
                    double duration) {
    SessionRecord s;
    s.user = user;
    s.household = household;
    s.content = content;
    s.isp = isp;
    s.exp = exp;
    s.bitrate = bitrate;
    s.start = start;
    s.duration = duration;
    return s;
  };
  t.sessions = {
      session(1, 1, 0, 0, 0, BitrateClass::kMobile, 0.0, 60.0),
      session(2, 1, 0, 0, 1, BitrateClass::kSd, 10.5, 600.25),
      session(3, 2, 1, 1, 0, BitrateClass::kHd, 100.1, 1800.0),
      session(4, 2, 1, 1, 0, BitrateClass::kFullHd, 250.0, 0.0),
      session(5, 3, 2, 4, 30, BitrateClass::kSd, 86000.0, 400.0),
  };
  return t;
}

/// The current-version golden fixture's content — regenerate tests/data/
/// golden_v2.cltrace from exactly this trace (see the failure message in
/// GoldenFileBytesMatchWriter).
Trace golden_trace_v2() {
  Trace t = golden_trace();
  t.metro_name = "london_top5";
  return t;
}

std::string golden_v1_path() {
  return std::string(CL_TEST_DATA_DIR) + "/golden_v1.cltrace";
}

std::string golden_path() {
  return std::string(CL_TEST_DATA_DIR) + "/golden_v2.cltrace";
}

/// FNV-1a 64-bit digest — enough to pin accidental byte changes.
std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// ------------------------------------------------------------ round trips

TEST(TraceBinaryRoundTrip, TinyTraceBitIdentical) {
  const Trace original = tiny_trace();
  expect_sessions_identical(binary_round_trip(original), original);
}

TEST(TraceBinaryRoundTrip, EmptyTrace) {
  Trace empty;
  empty.span = Seconds{3600.0};
  const Trace loaded = binary_round_trip(empty);
  EXPECT_TRUE(loaded.empty());
  EXPECT_EQ(loaded.span.value(), 3600.0);
  EXPECT_TRUE(loaded.swarm_index.groups.empty());
}

TEST(TraceBinaryRoundTrip, SingleSession) {
  Trace t;
  t.span = Seconds{1000.0};
  SessionRecord s;
  s.user = 42;
  s.bitrate = BitrateClass::kFullHd;
  s.start = 999.0;
  s.duration = 1.0;
  t.sessions = {s};
  const Trace loaded = binary_round_trip(t);
  expect_sessions_identical(loaded, t);
  ASSERT_EQ(loaded.swarm_index.groups.size(), 1u);
  EXPECT_EQ(loaded.swarm_index.order.size(), 1u);
}

TEST(TraceBinaryRoundTrip, MaximalFieldValues) {
  constexpr auto u32_max = std::numeric_limits<std::uint32_t>::max();
  Trace t;
  t.span = Seconds{2.1e300};
  SessionRecord s;
  s.user = u32_max;
  s.household = u32_max;
  s.content = u32_max;
  s.isp = u32_max;
  s.exp = u32_max;
  s.bitrate = BitrateClass::kFullHd;
  s.start = 1e300;
  s.duration = 1e300;
  SessionRecord tiny = s;
  tiny.start = 1e300;
  tiny.duration = 5e-324;  // smallest subnormal double
  t.sessions = {s, tiny};
  expect_sessions_identical(binary_round_trip(t), t);
}

TEST(TraceBinaryRoundTrip, CsvToBinaryToMmapBitIdentical) {
  // The satellite contract verbatim: parse CSV, persist binary, mmap-load
  // — the loaded sessions must match the CSV-parsed ones bit for bit.
  const Trace original = tiny_trace();
  std::ostringstream csv;
  write_trace(csv, original);
  std::istringstream csv_in(csv.str());
  const Trace from_csv = read_trace(csv_in);
  expect_sessions_identical(binary_round_trip(from_csv), from_csv);
}

TEST(TraceBinaryRoundTrip, RandomizedAcrossSeeds) {
  // Fuzz-ish: randomized session fields (including occasional extreme
  // values) across several seeds, exact round-trip each time.
  for (const std::uint64_t seed : {1u, 7u, 42u, 1234u, 99999u, 777777u}) {
    Rng rng(seed);
    Trace t;
    t.span = Seconds{1e9};
    const std::size_t n = 50 + rng.uniform_index(200);
    double start = 0;
    for (std::size_t i = 0; i < n; ++i) {
      SessionRecord s;
      const bool extreme = rng.bernoulli(0.05);
      s.user = extreme ? std::numeric_limits<std::uint32_t>::max()
                       : static_cast<std::uint32_t>(rng.uniform_index(10000));
      s.household = static_cast<std::uint32_t>(rng.uniform_index(5000));
      s.content = static_cast<std::uint32_t>(rng.uniform_index(50));
      s.isp = static_cast<std::uint32_t>(rng.uniform_index(5));
      s.exp = static_cast<std::uint32_t>(rng.uniform_index(100));
      s.bitrate =
          static_cast<BitrateClass>(rng.uniform_index(kBitrateClasses));
      start += rng.exponential(1.0 / 100.0);
      s.start = start;
      s.duration = extreme ? 0.0 : rng.uniform(0.0, 1e5);
      t.sessions.push_back(s);
    }
    const Trace loaded = binary_round_trip(t);
    expect_sessions_identical(loaded, t);
    validate_swarm_index(loaded.swarm_index, loaded);
  }
}

TEST(TraceBinaryRoundTrip, SyntheticGeneratorTrace) {
  TraceConfig config;
  config.days = 2;
  config.users = 500;
  config.exemplar_views = {3000};
  config.catalogue_tail = 50;
  config.tail_views = 2000;
  const Trace original = TraceGenerator(config, metro()).generate();
  ASSERT_GT(original.size(), 100u);
  expect_sessions_identical(binary_round_trip(original), original);
}

TEST(TraceBinaryRoundTrip, CsvBinaryCsvByteIdentical) {
  // CSV -> Trace -> binary -> Trace -> CSV reproduces the first CSV byte
  // for byte (the `cl convert` there-and-back guarantee).
  const Trace original = tiny_trace();
  std::ostringstream csv1;
  write_trace(csv1, original);
  std::istringstream in1(csv1.str());
  const Trace through_binary = binary_round_trip(read_trace(in1));
  std::ostringstream csv2;
  write_trace(csv2, through_binary);
  EXPECT_EQ(csv1.str(), csv2.str());
}

// -------------------------------------------------- metro header field

TEST(TraceBinaryMetro, RoundTripsPopulatedMetroName) {
  Trace t = tiny_trace();
  t.metro_name = "us_sparse";
  const Trace loaded = binary_round_trip(t);
  EXPECT_EQ(loaded.metro_name, "us_sparse");
  expect_sessions_identical(loaded, t);
}

TEST(TraceBinaryMetro, RoundTripsAbsentMetroName) {
  const Trace t = tiny_trace();  // metro_name empty
  const Trace loaded = binary_round_trip(t);
  EXPECT_TRUE(loaded.metro_name.empty());
  expect_sessions_identical(loaded, t);
}

TEST(TraceBinaryMetro, CsvBinaryCsvByteIdenticalWithMetro) {
  // The satellite contract: the CSV <-> binary round trip stays byte
  // exact with the metro field populated...
  Trace original = tiny_trace();
  original.metro_name = "fiber_dense";
  std::ostringstream csv1;
  write_trace(csv1, original);
  EXPECT_NE(csv1.str().find("#metro=fiber_dense\n"), std::string::npos);
  std::istringstream in1(csv1.str());
  const Trace through_binary = binary_round_trip(read_trace(in1));
  std::ostringstream csv2;
  write_trace(csv2, through_binary);
  EXPECT_EQ(csv1.str(), csv2.str());
}

TEST(TraceBinaryMetro, CsvBinaryCsvByteIdenticalWithoutMetro) {
  // ...and when it is absent (no #metro= line materialises from nowhere).
  const Trace original = tiny_trace();
  std::ostringstream csv1;
  write_trace(csv1, original);
  EXPECT_EQ(csv1.str().find("#metro="), std::string::npos);
  std::istringstream in1(csv1.str());
  const Trace through_binary = binary_round_trip(read_trace(in1));
  std::ostringstream csv2;
  write_trace(csv2, through_binary);
  EXPECT_EQ(csv1.str(), csv2.str());
}

TEST(TraceBinaryMetro, MaximumLengthNameRoundTrips) {
  Trace t = tiny_trace();
  t.metro_name = std::string(kTraceMetroNameMaxBytes, 'm');
  const Trace loaded = binary_round_trip(t);
  EXPECT_EQ(loaded.metro_name, t.metro_name);
}

TEST(TraceBinaryMetro, WriterRejectsOversizedName) {
  Trace t = tiny_trace();
  t.metro_name = std::string(kTraceMetroNameMaxBytes + 1, 'm');
  EXPECT_THROW((void)serialize_trace_binary(t), InvalidArgument);
}

TEST(TraceBinaryMetro, WriterRejectsControlCharacters) {
  Trace t = tiny_trace();
  t.metro_name = "bad\nname";
  EXPECT_THROW((void)serialize_trace_binary(t), InvalidArgument);
  std::ostringstream csv;
  EXPECT_THROW(write_trace(csv, t), InvalidArgument);
}

TEST(TraceBinaryMetro, EmptyTraceCarriesMetroName) {
  Trace empty;
  empty.span = Seconds{3600.0};
  empty.metro_name = "london_top5";
  const Trace loaded = binary_round_trip(empty);
  EXPECT_TRUE(loaded.empty());
  EXPECT_EQ(loaded.metro_name, "london_top5");
}

TEST(TraceBinaryWriter, SerializationIsDeterministic) {
  const Trace t = tiny_trace();
  EXPECT_EQ(serialize_trace_binary(t), serialize_trace_binary(t));
}

TEST(TraceBinaryWriter, HeaderLayoutPinned) {
  const std::string bytes = serialize_trace_binary(tiny_trace());
  ASSERT_GE(bytes.size(), 40u);
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  EXPECT_EQ(std::memcmp(p, kTraceBinaryMagic, 8), 0);
  EXPECT_EQ(load_u32_le(p + 8), kTraceBinaryVersion);  // version
  EXPECT_EQ(load_u32_le(p + 12), 0u);                  // flags
  EXPECT_EQ(load_u64_le(p + 16), 3u);                  // session count
  EXPECT_EQ(load_f64_le(p + 24), 86400.0);             // span
  EXPECT_EQ(load_u32_le(p + 32), kTraceBinaryBlockCount);
}

// ------------------------------------------------------------ mapped view

TEST(MappedTrace, ReportsHeaderFields) {
  const Trace t = tiny_trace();
  const std::string path = temp_path("cl_mapped_header.cltrace");
  write_trace_binary_file(path, t);
  const MappedTrace mapped(path);
  EXPECT_EQ(mapped.size(), 3u);
  EXPECT_EQ(mapped.version(), kTraceBinaryVersion);
  EXPECT_EQ(mapped.span().value(), t.span.value());
  EXPECT_EQ(mapped.group_count(), 3u);  // 3 distinct (content, isp, bitrate)
  EXPECT_EQ(mapped.file_size(), std::filesystem::file_size(path));
  std::filesystem::remove(path);
}

TEST(MappedTrace, RandomAccessSessionDecoding) {
  const Trace t = tiny_trace();
  const std::string path = temp_path("cl_mapped_session.cltrace");
  write_trace_binary_file(path, t);
  const MappedTrace mapped(path);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const SessionRecord s = mapped.session(i);
    EXPECT_EQ(s.user, t.sessions[i].user);
    EXPECT_EQ(s.start, t.sessions[i].start);
    EXPECT_EQ(s.bitrate, t.sessions[i].bitrate);
  }
  std::filesystem::remove(path);
}

// ------------------------------------------------------------- swarm index

TEST(SwarmIndexTest, PackedKeyMatchesSimulatorSwarmKey) {
  // The trace layer duplicates SwarmKey::packed()'s layout to avoid a
  // trace -> sim dependency; this pin keeps the two from drifting.
  SwarmKey key;
  key.content = 1234;
  key.isp = 3;
  key.bitrate = 2;
  EXPECT_EQ(packed_swarm_key(1234, 3, 2), key.packed());
  SwarmKey sentinel;  // kAnyIsp / kAnyBitrate defaults
  sentinel.content = 9;
  EXPECT_EQ(packed_swarm_key(9, SwarmKey::kAnyIsp, SwarmKey::kAnyBitrate),
            sentinel.packed());
}

TEST(SwarmIndexTest, GroupsAscendCoverAndMatchSessions) {
  TraceConfig config;
  config.days = 2;
  config.users = 400;
  config.exemplar_views = {2000};
  config.catalogue_tail = 30;
  config.tail_views = 1500;
  const Trace trace = TraceGenerator(config, metro()).generate();
  const SwarmIndex index = build_swarm_index(trace);
  EXPECT_EQ(index.order.size(), trace.size());
  ASSERT_GT(index.groups.size(), 4u);
  validate_swarm_index(index, trace);  // throws on any violation
  for (std::size_t g = 1; g < index.groups.size(); ++g) {
    EXPECT_TRUE(SwarmIndex::key_less(index.groups[g - 1], index.groups[g]));
  }
}

TEST(SwarmIndexTest, ValidateRejectsTampering) {
  const Trace trace = tiny_trace();
  SwarmIndex index = build_swarm_index(trace);
  {
    SwarmIndex broken = index;
    broken.order.pop_back();
    EXPECT_THROW(validate_swarm_index(broken, trace), ParseError);
  }
  {
    SwarmIndex broken = index;
    broken.groups[0].content += 1;  // key no longer matches its sessions
    EXPECT_THROW(validate_swarm_index(broken, trace), ParseError);
  }
  {
    SwarmIndex broken = index;
    std::swap(broken.groups[0], broken.groups[1]);  // keys out of order
    EXPECT_THROW(validate_swarm_index(broken, trace), ParseError);
  }
  {
    SwarmIndex broken = index;
    broken.groups[0].count = 0;  // empty group
    EXPECT_THROW(validate_swarm_index(broken, trace), ParseError);
  }
}

// ------------------------------------------------------------ golden files

TEST(TraceBinaryGolden, FileBytesMatchWriter) {
  const std::string committed = read_bytes(golden_path());
  ASSERT_FALSE(committed.empty()) << "missing fixture " << golden_path();
  EXPECT_EQ(serialize_trace_binary(golden_trace_v2()), committed)
      << "the .cltrace byte layout changed. If this is intentional, bump "
         "kTraceBinaryVersion in trace/trace_binary.h, add a new golden "
         "fixture under tests/data/ from golden_trace_v2(), and update "
         "the pinned digest in TraceBinaryGolden.DigestPinned.";
}

TEST(TraceBinaryGolden, DigestPinned) {
  const std::string committed = read_bytes(golden_path());
  ASSERT_FALSE(committed.empty()) << "missing fixture " << golden_path();
  EXPECT_EQ(fnv1a(committed), 0xb089aa1521edceffULL)
      << "tests/data/golden_v2.cltrace changed on disk. An intentional "
         "format change must bump kTraceBinaryVersion (see "
         "trace/trace_binary.h's version policy).";
}

TEST(TraceBinaryGolden, FixtureLoads) {
  const Trace loaded = read_trace_binary_file(golden_path());
  expect_sessions_identical(loaded, golden_trace_v2());
  EXPECT_EQ(loaded.metro_name, "london_top5");
  ASSERT_EQ(loaded.swarm_index.groups.size(), 5u);
}

// Legacy version-1 files must keep loading forever: month-scale traces
// are generated once and replayed across many builds. The v1 fixture's
// bytes are pinned too — it is the proof that v1 decoding still works,
// so it must never be regenerated by a newer writer.
TEST(TraceBinaryGolden, LegacyV1DigestPinned) {
  const std::string committed = read_bytes(golden_v1_path());
  ASSERT_FALSE(committed.empty()) << "missing fixture " << golden_v1_path();
  EXPECT_EQ(fnv1a(committed), 0x52915e1e58ee37d1ULL)
      << "tests/data/golden_v1.cltrace changed on disk. The v1 fixture is "
         "frozen — it pins the *legacy* layout readers must keep "
         "accepting.";
}

TEST(TraceBinaryGolden, LegacyV1FixtureLoadsWithEmptyMetro) {
  const Trace loaded = read_trace_binary_file(golden_v1_path());
  expect_sessions_identical(loaded, golden_trace());
  EXPECT_TRUE(loaded.metro_name.empty());
  ASSERT_EQ(loaded.swarm_index.groups.size(), 5u);
}

TEST(TraceBinaryGolden, LegacyV1ReportsItsVersion) {
  const MappedTrace mapped(golden_v1_path());
  EXPECT_EQ(mapped.version(), kTraceBinaryLegacyVersion);
  EXPECT_TRUE(mapped.metro_name().empty());
  const MappedTrace current(golden_path());
  EXPECT_EQ(current.version(), kTraceBinaryVersion);
  EXPECT_EQ(current.metro_name(), "london_top5");
}

// ------------------------------------------------------- corrupt rejection

TEST(TraceBinaryCorrupt, RejectsMissingFile) {
  EXPECT_THROW(read_trace_binary_file("/nonexistent/path/trace.cltrace"),
               IoError);
}

TEST(TraceBinaryCorrupt, RejectsTruncatedHeader) {
  const std::string path =
      write_bytes("cl_corrupt_short.cltrace",
                  serialize_trace_binary(tiny_trace()).substr(0, 20));
  EXPECT_THROW(read_trace_binary_file(path), ParseError);
  std::filesystem::remove(path);
}

TEST(TraceBinaryCorrupt, RejectsBadMagic) {
  std::string bytes = serialize_trace_binary(tiny_trace());
  bytes[0] = 'X';
  const std::string path = write_bytes("cl_corrupt_magic.cltrace", bytes);
  EXPECT_THROW(
      try { (void)read_trace_binary_file(path); } catch (const ParseError& e) {
        EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
        throw;
      },
      ParseError);
  std::filesystem::remove(path);
}

TEST(TraceBinaryCorrupt, RejectsWrongVersion) {
  std::string bytes = serialize_trace_binary(tiny_trace());
  store_u32_le(reinterpret_cast<unsigned char*>(bytes.data()) + 8,
               kTraceBinaryVersion + 1);
  const std::string path = write_bytes("cl_corrupt_version.cltrace", bytes);
  EXPECT_THROW(
      try { (void)read_trace_binary_file(path); } catch (const ParseError& e) {
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
        throw;
      },
      ParseError);
  std::filesystem::remove(path);
}

TEST(TraceBinaryCorrupt, RejectsTruncatedColumnBlock) {
  const std::string bytes = serialize_trace_binary(tiny_trace());
  const std::string path = write_bytes("cl_corrupt_truncated.cltrace",
                                       bytes.substr(0, bytes.size() - 6));
  EXPECT_THROW(read_trace_binary_file(path), ParseError);
  std::filesystem::remove(path);
}

TEST(TraceBinaryCorrupt, RejectsTrailingBytes) {
  const std::string path = write_bytes(
      "cl_corrupt_trailing.cltrace",
      serialize_trace_binary(tiny_trace()) + std::string(16, '\0'));
  EXPECT_THROW(read_trace_binary_file(path), ParseError);
  std::filesystem::remove(path);
}

TEST(TraceBinaryCorrupt, RejectsWrongBlockCount) {
  std::string bytes = serialize_trace_binary(tiny_trace());
  store_u32_le(reinterpret_cast<unsigned char*>(bytes.data()) + 32,
               kTraceBinaryBlockCount - 1);
  const std::string path = write_bytes("cl_corrupt_blocks.cltrace", bytes);
  EXPECT_THROW(read_trace_binary_file(path), ParseError);
  std::filesystem::remove(path);
}

TEST(TraceBinaryCorrupt, RejectsBitrateOutOfRange) {
  std::string bytes = serialize_trace_binary(tiny_trace());
  auto* p = reinterpret_cast<unsigned char*>(bytes.data());
  // Directory entries are written in block-id order: entry 5 (bitrate
  // column) sits at 40 + 5*24; its payload offset is 8 bytes in.
  const std::uint64_t offset = load_u64_le(p + 40 + 5 * 24 + 8);
  p[offset] = 9;  // not a BitrateClass
  const std::string path = write_bytes("cl_corrupt_bitrate.cltrace", bytes);
  EXPECT_THROW(read_trace_binary_file(path), ParseError);
  std::filesystem::remove(path);
}

TEST(TraceBinaryCorrupt, RejectsTamperedIndexOrder) {
  std::string bytes = serialize_trace_binary(tiny_trace());
  auto* p = reinterpret_cast<unsigned char*>(bytes.data());
  const std::uint64_t offset = load_u64_le(p + 40 + 12 * 24 + 8);
  const std::uint32_t first = load_u32_le(p + offset);
  const std::uint32_t second = load_u32_le(p + offset + 4);
  store_u32_le(p + offset, second);  // swap the first two entries
  store_u32_le(p + offset + 4, first);
  const std::string path = write_bytes("cl_corrupt_index.cltrace", bytes);
  EXPECT_THROW(read_trace_binary_file(path), ParseError);
  std::filesystem::remove(path);
}

TEST(TraceBinaryCorrupt, RejectsSpanSmallerThanSessions) {
  std::string bytes = serialize_trace_binary(tiny_trace());
  store_f64_le(reinterpret_cast<unsigned char*>(bytes.data()) + 24, 1.0);
  const std::string path = write_bytes("cl_corrupt_span.cltrace", bytes);
  EXPECT_THROW(read_trace_binary_file(path), ParseError);
  std::filesystem::remove(path);
}

TEST(TraceBinaryCorrupt, RejectsControlCharacterInMetroBlock) {
  Trace t = tiny_trace();
  t.metro_name = "ok";
  std::string bytes = serialize_trace_binary(t);
  auto* p = reinterpret_cast<unsigned char*>(bytes.data());
  // Directory entries are written in block-id order: entry 13 (metro
  // name) sits at 40 + 13*24; its payload offset is 8 bytes in.
  const std::uint64_t offset = load_u64_le(p + 40 + 13 * 24 + 8);
  p[offset] = '\n';
  const std::string path = write_bytes("cl_corrupt_metro.cltrace", bytes);
  EXPECT_THROW(
      try { (void)read_trace_binary_file(path); } catch (const ParseError& e) {
        EXPECT_NE(std::string(e.what()).find("metro"), std::string::npos);
        throw;
      },
      ParseError);
  std::filesystem::remove(path);
}

TEST(TraceBinaryCorrupt, RejectsOversizedMetroDirectoryCount) {
  std::string bytes = serialize_trace_binary(tiny_trace());
  auto* p = reinterpret_cast<unsigned char*>(bytes.data());
  // Claim a metro-name block longer than the cap; whichever check fires
  // first (length cap or bounds), the file must be rejected outright.
  store_u64_le(p + 40 + 13 * 24 + 16, kTraceMetroNameMaxBytes + 1);
  const std::string path = write_bytes("cl_corrupt_metrolen.cltrace", bytes);
  EXPECT_THROW(read_trace_binary_file(path), ParseError);
  std::filesystem::remove(path);
}

TEST(TraceBinaryCorrupt, RejectsLegacyVersionWithCurrentBlockCount) {
  // A v2 file relabeled as v1 lies about its shape: v1 has 13 blocks.
  std::string bytes = serialize_trace_binary(tiny_trace());
  store_u32_le(reinterpret_cast<unsigned char*>(bytes.data()) + 8,
               kTraceBinaryLegacyVersion);
  const std::string path = write_bytes("cl_corrupt_relabel.cltrace", bytes);
  EXPECT_THROW(read_trace_binary_file(path), ParseError);
  std::filesystem::remove(path);
}

TEST(TraceBinaryCorrupt, RejectsVersionZero) {
  std::string bytes = serialize_trace_binary(tiny_trace());
  store_u32_le(reinterpret_cast<unsigned char*>(bytes.data()) + 8, 0);
  const std::string path = write_bytes("cl_corrupt_v0.cltrace", bytes);
  EXPECT_THROW(read_trace_binary_file(path), ParseError);
  std::filesystem::remove(path);
}

// ------------------------------------------------------------- determinism

TEST(TraceBinaryDeterminism, MetroGenerationBitIdenticalAcrossThreadCounts) {
  // The satellite contract: generating against the us_sparse metro at
  // --threads 1/2/7/hw produces bit-identical traces — pinned on the
  // serialized bytes, which cover every session field, the swarm index
  // and the metro header.
  const Metro& us = MetroRegistry::instance().get("us_sparse");
  TraceConfig config;
  config.metro = "us_sparse";
  config.days = 2;
  config.users = 800;
  config.exemplar_views = {5000, 600};
  config.catalogue_tail = 80;
  config.tail_views = 4000;
  config.threads = 1;
  const std::string reference =
      serialize_trace_binary(TraceGenerator(config, us).generate());
  EXPECT_NE(reference.find("us_sparse"), std::string::npos);
  for (const unsigned threads : {2u, 7u, 0u}) {  // 0 = all hardware threads
    TraceConfig threaded = config;
    threaded.threads = threads;
    EXPECT_EQ(serialize_trace_binary(TraceGenerator(threaded, us).generate()),
              reference)
        << "threads=" << threads;
  }
}

TEST(TraceBinaryDeterminism, MmapLoadBitIdenticalAcrossThreadCounts) {
  TraceConfig config;
  config.days = 2;
  config.users = 600;
  config.exemplar_views = {4000};
  config.catalogue_tail = 60;
  config.tail_views = 3000;
  const Trace original = TraceGenerator(config, metro()).generate();
  const std::string path = temp_path("cl_det_load.cltrace");
  write_trace_binary_file(path, original);
  const Trace reference = read_trace_binary_file(path, 1);
  expect_sessions_identical(reference, original);
  for (const unsigned threads : {2u, 7u, 0u}) {  // 0 = all hardware threads
    const Trace loaded = read_trace_binary_file(path, threads);
    expect_sessions_identical(loaded, reference);
    ASSERT_EQ(loaded.swarm_index.order, reference.swarm_index.order);
    ASSERT_EQ(loaded.swarm_index.groups.size(),
              reference.swarm_index.groups.size());
  }
  std::filesystem::remove(path);
}

/// Exact-equality comparison of the aggregate outcomes two Analyzer runs
/// produce — savings/offload doubles must match to the last bit.
void expect_aggregates_identical(const std::vector<AggregateOutcome>& a,
                                 const std::vector<AggregateOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t m = 0; m < a.size(); ++m) {
    EXPECT_EQ(a[m].sim_savings, b[m].sim_savings);
    EXPECT_EQ(a[m].theory_savings, b[m].theory_savings);
    EXPECT_EQ(a[m].offload, b[m].offload);
    EXPECT_EQ(a[m].baseline_energy.value(), b[m].baseline_energy.value());
    EXPECT_EQ(a[m].hybrid_energy.value(), b[m].hybrid_energy.value());
  }
}

/// Shared workload for the sim/analyzer determinism tests below.
const Trace& determinism_trace_csv() {
  static const Trace trace = [] {
    TraceConfig config;
    config.days = 3;
    config.users = 1500;
    config.exemplar_views = {8000, 900};
    config.catalogue_tail = 150;
    config.tail_views = 10000;
    const Trace generated = TraceGenerator(config, metro()).generate();
    // Round-trip through CSV so the reference is exactly what the CSV
    // loader produces.
    std::ostringstream out;
    write_trace(out, generated);
    std::istringstream in(out.str());
    return read_trace(in);
  }();
  return trace;
}

const Trace& determinism_trace_binary() {
  static const Trace trace = [] {
    const std::string path = temp_path("cl_det_sim.cltrace");
    write_trace_binary_file(path, determinism_trace_csv());
    Trace loaded = read_trace_binary_file(path, 2);
    std::filesystem::remove(path);
    return loaded;
  }();
  return trace;
}

TEST(TraceBinaryDeterminism, SimResultBitIdenticalMmapVsCsvAcrossThreads) {
  const Trace& csv = determinism_trace_csv();
  const Trace& binary = determinism_trace_binary();
  EXPECT_TRUE(csv.swarm_index.empty());     // hash-grouping path
  EXPECT_FALSE(binary.swarm_index.empty()); // persisted-index path

  SimConfig reference_config;
  reference_config.threads = 1;
  const SimResult reference =
      HybridSimulator(metro(), reference_config).run(csv);

  for (const unsigned threads : {1u, 2u, 7u, 0u}) {
    SimConfig config;
    config.threads = threads;
    const SimResult result = HybridSimulator(metro(), config).run(binary);
    EXPECT_EQ(result.total.server.value(), reference.total.server.value());
    EXPECT_EQ(result.total.cross_isp.value(),
              reference.total.cross_isp.value());
    for (std::size_t l = 0; l < kLocalityLevels; ++l) {
      EXPECT_EQ(result.total.peer[l].value(),
                reference.total.peer[l].value());
    }
    ASSERT_EQ(result.swarms.size(), reference.swarms.size());
    for (std::size_t s = 0; s < result.swarms.size(); ++s) {
      EXPECT_EQ(result.swarms[s].key.packed(),
                reference.swarms[s].key.packed());
      EXPECT_EQ(result.swarms[s].capacity, reference.swarms[s].capacity);
      EXPECT_EQ(result.swarms[s].traffic.server.value(),
                reference.swarms[s].traffic.server.value());
    }
    ASSERT_EQ(result.hourly.size(), reference.hourly.size());
    for (std::size_t h = 0; h < result.hourly.size(); ++h) {
      ASSERT_EQ(result.hourly[h].size(), reference.hourly[h].size());
      for (std::size_t i = 0; i < result.hourly[h].size(); ++i) {
        EXPECT_EQ(result.hourly[h][i].server.value(),
                  reference.hourly[h][i].server.value());
      }
    }
    ASSERT_EQ(result.users.size(), reference.users.size());
    for (const auto& [user, traffic] : reference.users) {
      const auto it = result.users.find(user);
      ASSERT_NE(it, result.users.end());
      EXPECT_EQ(it->second.downloaded.value(), traffic.downloaded.value());
      EXPECT_EQ(it->second.uploaded.value(), traffic.uploaded.value());
    }
  }
}

TEST(TraceBinaryDeterminism, IndexPathBitIdenticalToHashGroupingPath) {
  // Same sessions with and without the persisted index: the simulator
  // must produce bit-identical results through either grouping path.
  const Trace& binary = determinism_trace_binary();
  Trace stripped = binary;
  stripped.swarm_index = SwarmIndex{};
  SimConfig config;
  config.threads = 2;
  const HybridSimulator sim(metro(), config);
  const SimResult with_index = sim.run(binary);
  const SimResult without_index = sim.run(stripped);
  EXPECT_EQ(with_index.total.server.value(),
            without_index.total.server.value());
  ASSERT_EQ(with_index.swarms.size(), without_index.swarms.size());
  for (std::size_t s = 0; s < with_index.swarms.size(); ++s) {
    EXPECT_EQ(with_index.swarms[s].key.packed(),
              without_index.swarms[s].key.packed());
    EXPECT_EQ(with_index.swarms[s].traffic.server.value(),
              without_index.swarms[s].traffic.server.value());
    EXPECT_EQ(with_index.swarms[s].capacity,
              without_index.swarms[s].capacity);
  }
}

TEST(TraceBinaryDeterminism, RelaxedPartitionsIgnoreIndexAndMatchCsv) {
  // Cross-ISP / mixed-bitrate ablations cannot use the full-key index;
  // they must fall back to hash grouping and still match the CSV path.
  const Trace& csv = determinism_trace_csv();
  const Trace& binary = determinism_trace_binary();
  for (const bool isp_friendly : {false, true}) {
    SimConfig config;
    config.threads = 2;
    config.isp_friendly = isp_friendly;
    config.split_by_bitrate = false;
    const HybridSimulator sim(metro(), config);
    const SimResult from_csv = sim.run(csv);
    const SimResult from_binary = sim.run(binary);
    EXPECT_EQ(from_csv.total.server.value(),
              from_binary.total.server.value());
    EXPECT_EQ(from_csv.swarms.size(), from_binary.swarms.size());
  }
}

TEST(TraceBinaryDeterminism, AnalyzerAggregateIdenticalMmapVsCsv) {
  const Trace& csv = determinism_trace_csv();
  const Trace& binary = determinism_trace_binary();
  SimConfig reference_config;
  reference_config.threads = 1;
  const auto reference = Analyzer(metro(), reference_config).aggregate(csv);
  for (const unsigned threads : {1u, 2u, 7u, 0u}) {
    SimConfig config;
    config.threads = threads;
    expect_aggregates_identical(
        Analyzer(metro(), config).aggregate(binary), reference);
  }
}

TEST(TraceBinaryDeterminism, AnalyzerDailyReportIdenticalMmapVsCsv) {
  const Trace& csv = determinism_trace_csv();
  const Trace& binary = determinism_trace_binary();
  SimConfig reference_config;
  reference_config.threads = 1;
  const DailyReport reference =
      Analyzer(metro(), reference_config).daily_report(csv);
  SimConfig config;
  config.threads = 4;
  const DailyReport report = Analyzer(metro(), config).daily_report(binary);
  EXPECT_EQ(report.sim, reference.sim);
  EXPECT_EQ(report.theory, reference.theory);
}

}  // namespace
}  // namespace cl
