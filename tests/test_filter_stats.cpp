// Tests for trace/filter.h and trace/trace_stats.h.
#include "trace/filter.h"
#include "trace/trace_stats.h"

#include <gtest/gtest.h>

#include "trace/synthetic.h"
#include "util/error.h"

namespace cl {
namespace {

Trace sample_trace() {
  const auto metro = Metro::london_top5();
  TraceConfig config;
  config.days = 3;
  config.users = 2000;
  config.exemplar_views = {10000};
  config.catalogue_tail = 100;
  config.tail_views = 8000;
  return TraceGenerator(config, metro).generate();
}

TEST(Filter, ByIspKeepsOnlyThatIsp) {
  const Trace trace = sample_trace();
  const Trace filtered = filter_by_isp(trace, 2);
  EXPECT_GT(filtered.size(), 0u);
  EXPECT_LT(filtered.size(), trace.size());
  for (const auto& s : filtered.sessions) EXPECT_EQ(s.isp, 2u);
  EXPECT_DOUBLE_EQ(filtered.span.value(), trace.span.value());
}

TEST(Filter, PartitionByIspCoversTrace) {
  const Trace trace = sample_trace();
  std::size_t total = 0;
  for (std::uint32_t isp = 0; isp < 5; ++isp) {
    total += filter_by_isp(trace, isp).size();
  }
  EXPECT_EQ(total, trace.size());
}

TEST(Filter, ByContent) {
  const Trace trace = sample_trace();
  const Trace filtered = filter_by_content(trace, 0);
  EXPECT_GT(filtered.size(), 0u);
  for (const auto& s : filtered.sessions) EXPECT_EQ(s.content, 0u);
}

TEST(Filter, ByBitrate) {
  const Trace trace = sample_trace();
  std::size_t total = 0;
  for (auto c : kAllBitrateClasses) {
    const Trace filtered = filter_by_bitrate(trace, c);
    for (const auto& s : filtered.sessions) EXPECT_EQ(s.bitrate, c);
    total += filtered.size();
  }
  EXPECT_EQ(total, trace.size());
}

TEST(Filter, ByStartWindow) {
  const Trace trace = sample_trace();
  const Trace day2 = filter_by_start_window(trace, Seconds::from_days(1),
                                            Seconds::from_days(2));
  EXPECT_GT(day2.size(), 0u);
  for (const auto& s : day2.sessions) {
    EXPECT_GE(s.start, 86400.0);
    EXPECT_LT(s.start, 2 * 86400.0);
  }
}

TEST(Filter, GenericPredicate) {
  const Trace trace = sample_trace();
  const Trace longs = filter_trace(
      trace, [](const SessionRecord& s) { return s.duration > 1200; });
  for (const auto& s : longs.sessions) EXPECT_GT(s.duration, 1200.0);
}

TEST(Stats, CountsMatchManualScan) {
  const Trace trace = sample_trace();
  const TraceStats stats = compute_stats(trace);
  EXPECT_EQ(stats.sessions, trace.size());
  double watch = 0;
  for (const auto& s : trace.sessions) watch += s.duration;
  EXPECT_NEAR(stats.total_watch_time.value(), watch, 1e-6);
  EXPECT_NEAR(stats.mean_session_duration.value(),
              watch / static_cast<double>(trace.size()), 1e-9);
}

TEST(Stats, VolumeIsSumOfSessionVolumes) {
  const Trace trace = sample_trace();
  const TraceStats stats = compute_stats(trace);
  EXPECT_NEAR(stats.total_volume.value(), trace.total_volume().value(), 1.0);
}

TEST(Stats, MeanConcurrencyIsLittlesLaw) {
  const Trace trace = sample_trace();
  const TraceStats stats = compute_stats(trace);
  EXPECT_NEAR(stats.mean_concurrency,
              stats.total_watch_time.value() / trace.span.value(), 1e-9);
}

TEST(Stats, EmptyTrace) {
  Trace empty;
  empty.span = Seconds::from_days(1);
  const TraceStats stats = compute_stats(empty);
  EXPECT_EQ(stats.sessions, 0u);
  EXPECT_EQ(stats.distinct_users, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_concurrency, 0.0);
}

TEST(Stats, ViewsPerContentSumsToSessions) {
  const Trace trace = sample_trace();
  const auto views = views_per_content(trace);
  std::uint64_t total = 0;
  for (auto v : views) total += v;
  EXPECT_EQ(total, trace.size());
  // Exemplar (content 0) is the most viewed item.
  for (std::size_t id = 1; id < views.size(); ++id) {
    EXPECT_GE(views[0], views[id]);
  }
}

TEST(TraceValidate, CatchesViolations) {
  Trace bad;
  bad.span = Seconds{100};
  SessionRecord s;
  s.start = 50;
  s.duration = 100;  // ends beyond span
  bad.sessions = {s};
  EXPECT_THROW(bad.validate(), InvalidArgument);

  Trace unsorted;
  unsorted.span = Seconds{1000};
  SessionRecord a, b;
  a.start = 500;
  a.duration = 10;
  b.start = 100;
  b.duration = 10;
  unsorted.sessions = {a, b};
  EXPECT_THROW(unsorted.validate(), InvalidArgument);
}

}  // namespace
}  // namespace cl
