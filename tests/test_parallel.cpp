// Tests for util/parallel.h and the sharded generation/analysis paths.
//
// The project's parallelism contract is *bit-identical results for every
// thread count* — these tests pin that contract with exact (==) floating
// point comparisons, not tolerances.
#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/analyzer.h"
#include "sim/swarm_sweep.h"
#include "trace/synthetic.h"
#include "trace/trace_stats.h"
#include "util/error.h"
#include "util/numa.h"
#include "util/stats.h"

namespace cl {
namespace {

const Metro& metro() {
  static const Metro m = Metro::london_top5();
  return m;
}

TraceConfig small_config(unsigned threads) {
  TraceConfig config;
  config.days = 3;
  config.users = 2000;
  config.exemplar_views = {10000, 1000};
  config.catalogue_tail = 200;
  config.tail_views = 15000;
  config.threads = threads;
  return config;
}

TEST(ResolveThreads, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(3), 3u);
  // Clamped to the amount of available work.
  EXPECT_EQ(resolve_threads(8, 2), 2u);
  EXPECT_EQ(resolve_threads(8, 0), 8u);
}

TEST(ParallelShards, CoversRangeExactlyOnce) {
  for (unsigned threads : {1u, 2u, 3u, 8u}) {
    std::vector<std::atomic<int>> hits(101);
    parallel_shards(hits.size(), threads,
                    [&](unsigned, std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        hits[i].fetch_add(1);
                      }
                    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelShards, ShardRangesAscendWithShardIndex) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges(4);
  parallel_shards(10, 4, [&](unsigned shard, std::size_t b, std::size_t e) {
    ranges[shard] = {b, e};
  });
  std::size_t expect_begin = 0;
  for (const auto& [b, e] : ranges) {
    EXPECT_EQ(b, expect_begin);
    EXPECT_LE(b, e);
    expect_begin = e;
  }
  EXPECT_EQ(expect_begin, 10u);
}

TEST(ParallelShards, PropagatesWorkerExceptions) {
  EXPECT_THROW(
      parallel_shards(100, 4,
                      [](unsigned, std::size_t begin, std::size_t) {
                        if (begin > 0) throw std::runtime_error("boom");
                      }),
      std::runtime_error);
}

TEST(ParallelChunkedReduce, SumBitIdenticalAcrossThreadCounts) {
  // Values with spread magnitudes so FP addition order matters.
  std::vector<double> xs(10000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = (i % 7 == 0 ? 1e12 : 1e-3) / static_cast<double>(i + 1);
  }
  const auto reduce = [&](unsigned threads) {
    return parallel_chunked_reduce(
        xs.size(), threads, [] { return 0.0; },
        [&](double& acc, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) acc += xs[i];
        },
        [](double& total, const double& chunk) { total += chunk; },
        /*chunk_len=*/256);
  };
  const double reference = reduce(1);
  for (unsigned threads : {2u, 3u, 8u}) {
    EXPECT_EQ(reduce(threads), reference);
  }
}

TEST(ParallelChunkedReduce, RunningStatsMergeBitIdentical) {
  std::vector<double> xs(5000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = std::sin(static_cast<double>(i)) * 1e6;
  }
  const auto reduce = [&](unsigned threads) {
    return parallel_chunked_reduce(
        xs.size(), threads, [] { return RunningStats{}; },
        [&](RunningStats& acc, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) acc.add(xs[i]);
        },
        [](RunningStats& total, const RunningStats& chunk) {
          total.merge(chunk);
        },
        /*chunk_len=*/512);
  };
  const RunningStats reference = reduce(1);
  for (unsigned threads : {2u, 4u, 8u}) {
    const RunningStats stats = reduce(threads);
    EXPECT_EQ(stats.count(), reference.count());
    EXPECT_EQ(stats.mean(), reference.mean());
    EXPECT_EQ(stats.variance(), reference.variance());
    EXPECT_EQ(stats.min(), reference.min());
    EXPECT_EQ(stats.max(), reference.max());
  }
}

TEST(ShardedGeneration, TraceBitIdenticalAcrossThreadCounts) {
  const Trace reference =
      TraceGenerator(small_config(1), metro()).generate();
  for (unsigned threads : {2u, 4u, 8u}) {
    const Trace trace =
        TraceGenerator(small_config(threads), metro()).generate();
    ASSERT_EQ(trace.size(), reference.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const auto& a = trace.sessions[i];
      const auto& b = reference.sessions[i];
      ASSERT_EQ(a.user, b.user) << "i=" << i;
      ASSERT_EQ(a.household, b.household);
      ASSERT_EQ(a.content, b.content);
      ASSERT_EQ(a.isp, b.isp);
      ASSERT_EQ(a.exp, b.exp);
      ASSERT_EQ(a.bitrate, b.bitrate);
      // Exact equality on purpose: the sharding contract is bit-identity.
      ASSERT_EQ(a.start, b.start);
      ASSERT_EQ(a.duration, b.duration);
    }
  }
}

TEST(ShardedGeneration, AggregateStatsBitIdentical) {
  const TraceStats reference =
      compute_stats(TraceGenerator(small_config(1), metro()).generate());
  const TraceStats sharded =
      compute_stats(TraceGenerator(small_config(8), metro()).generate());
  EXPECT_EQ(sharded.sessions, reference.sessions);
  EXPECT_EQ(sharded.distinct_users, reference.distinct_users);
  EXPECT_EQ(sharded.distinct_households, reference.distinct_households);
  EXPECT_EQ(sharded.distinct_contents, reference.distinct_contents);
  EXPECT_EQ(sharded.total_watch_time.value(),
            reference.total_watch_time.value());
  EXPECT_EQ(sharded.total_volume.value(), reference.total_volume.value());
  EXPECT_EQ(sharded.mean_concurrency, reference.mean_concurrency);
}

TEST(ParallelChunkedReduce, StatefulVariantReusesWorkerState) {
  // Each worker's scratch is constructed once and reused across chunks;
  // the reduction result must not depend on the state or thread count.
  for (unsigned threads : {1u, 2u, 8u}) {
    std::atomic<int> states_built{0};
    const auto sum = parallel_chunked_reduce_stateful(
        1000, threads,
        [&] {
          states_built.fetch_add(1);
          return std::vector<int>{};  // scratch buffer
        },
        [] { return std::int64_t{0}; },
        [](std::vector<int>& scratch, std::int64_t& acc, std::size_t begin,
           std::size_t end) {
          scratch.clear();
          for (std::size_t i = begin; i < end; ++i) {
            scratch.push_back(static_cast<int>(i));
          }
          for (int v : scratch) acc += v;
        },
        [](std::int64_t& total, const std::int64_t& chunk) { total += chunk; },
        /*chunk_len=*/64);
    EXPECT_EQ(sum, 1000u * 999u / 2);
    EXPECT_LE(states_built.load(), static_cast<int>(resolve_threads(threads)));
    EXPECT_GE(states_built.load(), 1);
  }
}

/// Exact-equality comparison of two full SimResults (total, hourly grids,
/// per-user map, per-swarm entries) — the simulator's bit-identity
/// contract across thread counts.
void expect_sim_result_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.span.value(), b.span.value());
  EXPECT_EQ(a.total.server.value(), b.total.server.value());
  EXPECT_EQ(a.total.cross_isp.value(), b.total.cross_isp.value());
  for (std::size_t l = 0; l < kLocalityLevels; ++l) {
    EXPECT_EQ(a.total.peer[l].value(), b.total.peer[l].value());
  }

  ASSERT_EQ(a.hourly.size(), b.hourly.size());
  for (std::size_t h = 0; h < a.hourly.size(); ++h) {
    ASSERT_EQ(a.hourly[h].size(), b.hourly[h].size());
    for (std::size_t i = 0; i < a.hourly[h].size(); ++i) {
      EXPECT_EQ(a.hourly[h][i].server.value(), b.hourly[h][i].server.value());
      EXPECT_EQ(a.hourly[h][i].cross_isp.value(),
                b.hourly[h][i].cross_isp.value());
      for (std::size_t l = 0; l < kLocalityLevels; ++l) {
        EXPECT_EQ(a.hourly[h][i].peer[l].value(),
                  b.hourly[h][i].peer[l].value());
      }
    }
  }

  ASSERT_EQ(a.users.size(), b.users.size());
  for (const auto& [user, traffic] : a.users) {
    const auto it = b.users.find(user);
    ASSERT_NE(it, b.users.end()) << "user " << user;
    EXPECT_EQ(traffic.downloaded.value(), it->second.downloaded.value());
    EXPECT_EQ(traffic.uploaded.value(), it->second.uploaded.value());
  }

  ASSERT_EQ(a.swarms.size(), b.swarms.size());
  for (std::size_t s = 0; s < a.swarms.size(); ++s) {
    EXPECT_EQ(a.swarms[s].key.packed(), b.swarms[s].key.packed());
    EXPECT_EQ(a.swarms[s].sessions, b.swarms[s].sessions);
    EXPECT_EQ(a.swarms[s].capacity, b.swarms[s].capacity);
    EXPECT_EQ(a.swarms[s].traffic.server.value(),
              b.swarms[s].traffic.server.value());
    EXPECT_EQ(a.swarms[s].traffic.cross_isp.value(),
              b.swarms[s].traffic.cross_isp.value());
    for (std::size_t l = 0; l < kLocalityLevels; ++l) {
      EXPECT_EQ(a.swarms[s].traffic.peer[l].value(),
                b.swarms[s].traffic.peer[l].value());
    }
  }
}

SimResult run_sim(const Trace& trace, unsigned threads) {
  SimConfig config;  // all collection toggles on
  config.threads = threads;
  static const Metro& m = metro();
  return HybridSimulator(m, config).run(trace);
}

TEST(ShardedSimulator, SimResultBitIdenticalAcrossThreadCounts) {
  // Multi-swarm trace: several contents × ISPs × bitrates.
  const Trace trace = TraceGenerator(small_config(0), metro()).generate();
  const SimResult reference = run_sim(trace, 1);
  ASSERT_GT(reference.swarms.size(), 8u);  // genuinely multi-swarm
  // 0 = all hardware threads.
  for (unsigned threads : {2u, 7u, 0u}) {
    const SimResult result = run_sim(trace, threads);
    expect_sim_result_identical(result, reference);
  }
}

TEST(ShardedSimulator, SwarmsStayKeySortedAtEveryThreadCount) {
  const Trace trace = TraceGenerator(small_config(0), metro()).generate();
  for (unsigned threads : {1u, 4u}) {
    const SimResult result = run_sim(trace, threads);
    for (std::size_t s = 1; s < result.swarms.size(); ++s) {
      EXPECT_LT(result.swarms[s - 1].key.packed(),
                result.swarms[s].key.packed());
    }
  }
}

TEST(ShardedSimulator, EmptyTraceIdenticalAcrossThreadCounts) {
  const Trace empty{{}, Seconds{86400.0}, {}, {}};
  const SimResult reference = run_sim(empty, 1);
  EXPECT_EQ(reference.total.total().value(), 0.0);
  EXPECT_TRUE(reference.swarms.empty());
  EXPECT_TRUE(reference.users.empty());
  expect_sim_result_identical(run_sim(empty, 4), reference);
}

TEST(ShardedSimulator, SingleSwarmIdenticalAcrossThreadCounts) {
  // One content, one ISP, one bitrate: exactly one swarm — the sharded
  // path degenerates to a single chunk but must still match.
  std::vector<SessionRecord> sessions;
  for (std::uint32_t u = 0; u < 40; ++u) {
    SessionRecord s;
    s.user = u;
    s.household = u;
    s.content = 0;
    s.isp = 0;
    s.exp = u % 5;
    s.bitrate = BitrateClass::kSd;
    s.start = 100.0 * u;
    s.duration = 900.0;
    sessions.push_back(s);
  }
  const Trace trace{std::move(sessions), Seconds{86400.0}, {}, {}};
  const SimResult reference = run_sim(trace, 1);
  ASSERT_EQ(reference.swarms.size(), 1u);
  expect_sim_result_identical(run_sim(trace, 4), reference);
}

TEST(ShardedSimulator, AllSubWindowSessionsIdenticalAcrossThreadCounts) {
  // Every session is shorter than one Δτ window: no traffic moves, but
  // swarm entries (sessions, capacity) are still collected and must be
  // identical at every thread count.
  std::vector<SessionRecord> sessions;
  for (std::uint32_t u = 0; u < 30; ++u) {
    SessionRecord s;
    s.user = u;
    s.household = u;
    s.content = u % 6;
    s.isp = u % 3;
    s.exp = 0;
    s.bitrate = BitrateClass::kSd;
    s.start = 50.0 * u + 2.0;
    s.duration = 4.0;  // < the 10 s default window
    sessions.push_back(s);
  }
  const Trace trace{std::move(sessions), Seconds{86400.0}, {}, {}};
  const SimResult reference = run_sim(trace, 1);
  EXPECT_EQ(reference.total.total().value(), 0.0);
  EXPECT_FALSE(reference.swarms.empty());
  for (const auto& swarm : reference.swarms) {
    EXPECT_GT(swarm.capacity, 0.0);
  }
  expect_sim_result_identical(run_sim(trace, 7), reference);
}

TEST(SimResultMerge, SumsConcatenatesAndFolds) {
  SimResult a, b;
  a.span = Seconds{86400.0};
  b.span = Seconds{2 * 86400.0};
  a.total.server = Bits{100.0};
  b.total.server = Bits{23.0};
  a.total.peer[0] = Bits{7.0};
  b.total.peer[0] = Bits{5.0};
  b.total.cross_isp = Bits{3.0};

  // Differently sized hourly grids: merge grows to the larger shape.
  a.hourly.assign(1, std::vector<TrafficBreakdown>(2));
  a.hourly[0][1].server = Bits{11.0};
  b.hourly.assign(2, std::vector<TrafficBreakdown>(2));
  b.hourly[0][1].server = Bits{2.0};
  b.hourly[1][0].server = Bits{9.0};

  a.users[7] = {Bits{10.0}, Bits{1.0}};
  b.users[7] = {Bits{20.0}, Bits{2.0}};
  b.users[9] = {Bits{5.0}, Bits{0.0}};

  SwarmResult s1, s2;
  s1.key = SwarmKey{.content = 1, .isp = 0, .bitrate = 1};
  s2.key = SwarmKey{.content = 2, .isp = 0, .bitrate = 1};
  a.swarms = {s1};
  b.swarms = {s2};

  a.merge(b);
  EXPECT_EQ(a.span.value(), 2 * 86400.0);
  EXPECT_EQ(a.total.server.value(), 123.0);
  EXPECT_EQ(a.total.peer[0].value(), 12.0);
  EXPECT_EQ(a.total.cross_isp.value(), 3.0);
  ASSERT_EQ(a.hourly.size(), 2u);
  EXPECT_EQ(a.hourly[0][1].server.value(), 13.0);
  EXPECT_EQ(a.hourly[1][0].server.value(), 9.0);
  ASSERT_EQ(a.users.size(), 2u);
  EXPECT_EQ(a.users[7].downloaded.value(), 30.0);
  EXPECT_EQ(a.users[7].uploaded.value(), 3.0);
  EXPECT_EQ(a.users[9].downloaded.value(), 5.0);
  ASSERT_EQ(a.swarms.size(), 2u);
  EXPECT_EQ(a.swarms[0].key.packed(), s1.key.packed());
  EXPECT_EQ(a.swarms[1].key.packed(), s2.key.packed());
}

TEST(SimResultMerge, MergingEmptyPartialIsIdentity) {
  SimResult a;
  a.total.server = Bits{42.0};
  a.hourly.assign(1, std::vector<TrafficBreakdown>(1));
  a.hourly[0][0].server = Bits{42.0};
  a.users[1] = {Bits{42.0}, Bits{0.0}};
  const SimResult empty;
  a.merge(empty);
  EXPECT_EQ(a.total.server.value(), 42.0);
  ASSERT_EQ(a.hourly.size(), 1u);
  EXPECT_EQ(a.hourly[0][0].server.value(), 42.0);
  EXPECT_EQ(a.users.size(), 1u);
  EXPECT_TRUE(a.swarms.empty());
}

TEST(ShardedSimulator, OversizedSwarmGuardIsInPlace) {
  // The sweep refuses swarms whose session count would not fit the
  // int32_t `pos` bookkeeping. Building a >2B-session trace is not
  // feasible in a test, so pin the guard at the unit level: SwarmSweep
  // itself must throw on an index span larger than INT32_MAX. The span
  // lies about its extent (the guard fires before any element access);
  // its data pointer must still be non-null to satisfy the span
  // valid-range precondition under hardened standard libraries.
  SwarmSweep sweep(metro(), SimConfig{});
  const Trace trace{{}, Seconds{86400.0}, {}, {}};
  const TraceView view = TraceView::from_trace(trace);
  SimResult out;
  static const std::uint32_t dummy = 0;
  const std::span<const std::uint32_t> oversized{
      &dummy,
      static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max()) + 1};
  EXPECT_THROW(sweep.sweep(SwarmKey{}, oversized, view, out),
               InvalidArgument);
  EXPECT_THROW(sweep.sweep_rows(SwarmKey{}, oversized, trace, out),
               InvalidArgument);
}

TEST(ShardedAnalysis, AnalyzerOutputsBitIdenticalAcrossThreadCounts) {
  const Trace trace = TraceGenerator(small_config(0), metro()).generate();

  SimConfig base;
  base.threads = 1;
  const Analyzer reference(metro(), base);
  const auto ref_dist = reference.swarm_distributions(trace);
  const auto ref_agg = reference.aggregate(trace);
  const auto ref_daily = reference.daily_report(trace);

  for (unsigned threads : {2u, 4u, 8u}) {
    SimConfig config;
    config.threads = threads;
    const Analyzer analyzer(metro(), config);

    const auto dist = analyzer.swarm_distributions(trace);
    ASSERT_EQ(dist.capacities.size(), ref_dist.capacities.size());
    EXPECT_EQ(dist.capacities, ref_dist.capacities);
    ASSERT_EQ(dist.savings.size(), ref_dist.savings.size());
    for (std::size_t m = 0; m < dist.savings.size(); ++m) {
      EXPECT_EQ(dist.savings[m], ref_dist.savings[m]);
    }
    EXPECT_EQ(dist.capacity_stats.mean(), ref_dist.capacity_stats.mean());
    EXPECT_EQ(dist.capacity_stats.variance(),
              ref_dist.capacity_stats.variance());
    ASSERT_EQ(dist.savings_stats.size(), ref_dist.savings_stats.size());
    for (std::size_t m = 0; m < dist.savings_stats.size(); ++m) {
      EXPECT_EQ(dist.savings_stats[m].mean(),
                ref_dist.savings_stats[m].mean());
    }

    const auto agg = analyzer.aggregate(trace);
    ASSERT_EQ(agg.size(), ref_agg.size());
    for (std::size_t m = 0; m < agg.size(); ++m) {
      EXPECT_EQ(agg[m].sim_savings, ref_agg[m].sim_savings);
      EXPECT_EQ(agg[m].theory_savings, ref_agg[m].theory_savings);
      EXPECT_EQ(agg[m].offload, ref_agg[m].offload);
    }

    const auto daily = analyzer.daily_report(trace);
    ASSERT_EQ(daily.theory.size(), ref_daily.theory.size());
    EXPECT_EQ(daily.theory, ref_daily.theory);
    EXPECT_EQ(daily.sim, ref_daily.sim);
  }
}

// ----------------------------------------------- NUMA-aware reductions

TEST(Numa, ParseCpuListHandlesKernelRangeSyntax) {
  EXPECT_EQ(parse_cpu_list("0"), (std::vector<int>{0}));
  EXPECT_EQ(parse_cpu_list("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpu_list("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(parse_cpu_list("7,5"), (std::vector<int>{7, 5}));
  EXPECT_TRUE(parse_cpu_list("").empty());
  EXPECT_TRUE(parse_cpu_list("a-b").empty());
  EXPECT_TRUE(parse_cpu_list("3-1").empty());   // descending range
  EXPECT_TRUE(parse_cpu_list("0,,2").empty());  // empty token
  EXPECT_TRUE(parse_cpu_list("-1").empty());    // negative id
  EXPECT_TRUE(parse_cpu_list("0-2x").empty());  // trailing garbage
}

TEST(Numa, WorkerPlacementIsRoundRobin) {
  // Single node: everyone lands on node 0 (and pinning stays a no-op).
  for (unsigned worker : {0u, 1u, 5u}) {
    EXPECT_EQ(numa_node_for_worker(worker, 0), 0u);
    EXPECT_EQ(numa_node_for_worker(worker, 1), 0u);
  }
  // Multi-node: round-robin, so consecutive workers alternate sockets
  // and the distribution across nodes is balanced.
  EXPECT_EQ(numa_node_for_worker(0, 2), 0u);
  EXPECT_EQ(numa_node_for_worker(1, 2), 1u);
  EXPECT_EQ(numa_node_for_worker(2, 2), 0u);
  EXPECT_EQ(numa_node_for_worker(5, 4), 1u);
}

TEST(Numa, TopologyDiscoveryAlwaysYieldsAtLeastOneNode) {
  EXPECT_GE(numa_topology().nodes(), 1u);
  EXPECT_EQ(numa_fold_nodes(), numa_topology().nodes());
  // Out-of-range nodes are never pinnable.
  EXPECT_FALSE(pin_current_thread_to_node(numa_topology().nodes()));
}

TEST(ParallelChunkedReduce, ForcedMultiNodeFoldIsBitIdentical) {
  // The node-range fold (socket-local partial folds before the global
  // ascending merge) must produce the same result at every *thread*
  // count for a fixed node count — the machine shapes the association,
  // the thread count never does. Forced fold_nodes exercises the
  // multi-node fold paths on single-node CI hosts.
  std::vector<double> xs(20000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = (i % 5 == 0 ? 1e13 : 1e-4) / static_cast<double>(i + 1);
  }
  const auto reduce = [&](unsigned threads, unsigned fold_nodes) {
    return parallel_chunked_reduce_stateful(
        xs.size(), threads, [] { return 0; }, [] { return 0.0; },
        [&](int&, double& acc, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) acc += xs[i];
        },
        [](double& total, const double& chunk) { total += chunk; },
        /*chunk_len=*/128, /*timing=*/nullptr, fold_nodes);
  };
  for (unsigned fold_nodes : {2u, 3u}) {
    const double reference = reduce(1, fold_nodes);
    for (unsigned threads : {2u, 7u}) {
      EXPECT_EQ(reduce(threads, fold_nodes), reference)
          << "fold_nodes=" << fold_nodes << " threads=" << threads;
    }
  }
  // nodes=1 must reproduce the historical flat ascending fold exactly —
  // i.e. match the plain stateless reduction.
  const double flat = parallel_chunked_reduce(
      xs.size(), 3, [] { return 0.0; },
      [&](double& acc, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) acc += xs[i];
      },
      [](double& total, const double& chunk) { total += chunk; },
      /*chunk_len=*/128);
  EXPECT_EQ(reduce(4, 1), flat);
}

TEST(ParallelChunkedReduce, ReduceTimingIsPopulated) {
  ReduceTiming timing;
  const double sum = parallel_chunked_reduce_stateful(
      5000, 2, [] { return 0; }, [] { return 0.0; },
      [](int&, double& acc, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          acc += static_cast<double>(i);
        }
      },
      [](double& total, const double& chunk) { total += chunk; },
      /*chunk_len=*/64, &timing);
  EXPECT_EQ(sum, 5000.0 * 4999.0 / 2.0);
  EXPECT_GE(timing.work_seconds, 0.0);
  EXPECT_GE(timing.merge_seconds, 0.0);
  // The work phase wraps the merge phase plus the chunk execution, so it
  // can never be shorter.
  EXPECT_GE(timing.work_seconds, timing.merge_seconds);
}

TEST(ShardedSimulator, SimPhaseTimingIsPopulated) {
  const Trace trace = TraceGenerator(small_config(0), metro()).generate();
  const TraceView view = TraceView::from_trace(trace, 2);
  SimConfig config;
  config.threads = 2;
  SimPhaseTiming timing;
  const SimResult timed = HybridSimulator(metro(), config).run(view, &timing);
  EXPECT_GE(timing.group_seconds, 0.0);
  EXPECT_GE(timing.sweep_seconds, 0.0);
  EXPECT_GE(timing.merge_seconds, 0.0);
  // Asking for timing must not perturb the simulation itself.
  const SimResult untimed = HybridSimulator(metro(), config).run(view);
  EXPECT_EQ(timed.total.server.value(), untimed.total.server.value());
  EXPECT_EQ(timed.total.peer_total().value(),
            untimed.total.peer_total().value());
}

}  // namespace
}  // namespace cl
