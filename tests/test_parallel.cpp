// Tests for util/parallel.h and the sharded generation/analysis paths.
//
// The project's parallelism contract is *bit-identical results for every
// thread count* — these tests pin that contract with exact (==) floating
// point comparisons, not tolerances.
#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/analyzer.h"
#include "trace/synthetic.h"
#include "trace/trace_stats.h"
#include "util/stats.h"

namespace cl {
namespace {

const Metro& metro() {
  static const Metro m = Metro::london_top5();
  return m;
}

TraceConfig small_config(unsigned threads) {
  TraceConfig config;
  config.days = 3;
  config.users = 2000;
  config.exemplar_views = {10000, 1000};
  config.catalogue_tail = 200;
  config.tail_views = 15000;
  config.threads = threads;
  return config;
}

TEST(ResolveThreads, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(3), 3u);
  // Clamped to the amount of available work.
  EXPECT_EQ(resolve_threads(8, 2), 2u);
  EXPECT_EQ(resolve_threads(8, 0), 8u);
}

TEST(ParallelShards, CoversRangeExactlyOnce) {
  for (unsigned threads : {1u, 2u, 3u, 8u}) {
    std::vector<std::atomic<int>> hits(101);
    parallel_shards(hits.size(), threads,
                    [&](unsigned, std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        hits[i].fetch_add(1);
                      }
                    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelShards, ShardRangesAscendWithShardIndex) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges(4);
  parallel_shards(10, 4, [&](unsigned shard, std::size_t b, std::size_t e) {
    ranges[shard] = {b, e};
  });
  std::size_t expect_begin = 0;
  for (const auto& [b, e] : ranges) {
    EXPECT_EQ(b, expect_begin);
    EXPECT_LE(b, e);
    expect_begin = e;
  }
  EXPECT_EQ(expect_begin, 10u);
}

TEST(ParallelShards, PropagatesWorkerExceptions) {
  EXPECT_THROW(
      parallel_shards(100, 4,
                      [](unsigned, std::size_t begin, std::size_t) {
                        if (begin > 0) throw std::runtime_error("boom");
                      }),
      std::runtime_error);
}

TEST(ParallelChunkedReduce, SumBitIdenticalAcrossThreadCounts) {
  // Values with spread magnitudes so FP addition order matters.
  std::vector<double> xs(10000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = (i % 7 == 0 ? 1e12 : 1e-3) / static_cast<double>(i + 1);
  }
  const auto reduce = [&](unsigned threads) {
    return parallel_chunked_reduce(
        xs.size(), threads, [] { return 0.0; },
        [&](double& acc, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) acc += xs[i];
        },
        [](double& total, const double& chunk) { total += chunk; },
        /*chunk_len=*/256);
  };
  const double reference = reduce(1);
  for (unsigned threads : {2u, 3u, 8u}) {
    EXPECT_EQ(reduce(threads), reference);
  }
}

TEST(ParallelChunkedReduce, RunningStatsMergeBitIdentical) {
  std::vector<double> xs(5000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = std::sin(static_cast<double>(i)) * 1e6;
  }
  const auto reduce = [&](unsigned threads) {
    return parallel_chunked_reduce(
        xs.size(), threads, [] { return RunningStats{}; },
        [&](RunningStats& acc, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) acc.add(xs[i]);
        },
        [](RunningStats& total, const RunningStats& chunk) {
          total.merge(chunk);
        },
        /*chunk_len=*/512);
  };
  const RunningStats reference = reduce(1);
  for (unsigned threads : {2u, 4u, 8u}) {
    const RunningStats stats = reduce(threads);
    EXPECT_EQ(stats.count(), reference.count());
    EXPECT_EQ(stats.mean(), reference.mean());
    EXPECT_EQ(stats.variance(), reference.variance());
    EXPECT_EQ(stats.min(), reference.min());
    EXPECT_EQ(stats.max(), reference.max());
  }
}

TEST(ShardedGeneration, TraceBitIdenticalAcrossThreadCounts) {
  const Trace reference =
      TraceGenerator(small_config(1), metro()).generate();
  for (unsigned threads : {2u, 4u, 8u}) {
    const Trace trace =
        TraceGenerator(small_config(threads), metro()).generate();
    ASSERT_EQ(trace.size(), reference.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const auto& a = trace.sessions[i];
      const auto& b = reference.sessions[i];
      ASSERT_EQ(a.user, b.user) << "i=" << i;
      ASSERT_EQ(a.household, b.household);
      ASSERT_EQ(a.content, b.content);
      ASSERT_EQ(a.isp, b.isp);
      ASSERT_EQ(a.exp, b.exp);
      ASSERT_EQ(a.bitrate, b.bitrate);
      // Exact equality on purpose: the sharding contract is bit-identity.
      ASSERT_EQ(a.start, b.start);
      ASSERT_EQ(a.duration, b.duration);
    }
  }
}

TEST(ShardedGeneration, AggregateStatsBitIdentical) {
  const TraceStats reference =
      compute_stats(TraceGenerator(small_config(1), metro()).generate());
  const TraceStats sharded =
      compute_stats(TraceGenerator(small_config(8), metro()).generate());
  EXPECT_EQ(sharded.sessions, reference.sessions);
  EXPECT_EQ(sharded.distinct_users, reference.distinct_users);
  EXPECT_EQ(sharded.distinct_households, reference.distinct_households);
  EXPECT_EQ(sharded.distinct_contents, reference.distinct_contents);
  EXPECT_EQ(sharded.total_watch_time.value(),
            reference.total_watch_time.value());
  EXPECT_EQ(sharded.total_volume.value(), reference.total_volume.value());
  EXPECT_EQ(sharded.mean_concurrency, reference.mean_concurrency);
}

TEST(ShardedAnalysis, AnalyzerOutputsBitIdenticalAcrossThreadCounts) {
  const Trace trace = TraceGenerator(small_config(0), metro()).generate();

  SimConfig base;
  base.threads = 1;
  const Analyzer reference(metro(), base);
  const auto ref_dist = reference.swarm_distributions(trace);
  const auto ref_agg = reference.aggregate(trace);
  const auto ref_daily = reference.daily_report(trace);

  for (unsigned threads : {2u, 4u, 8u}) {
    SimConfig config;
    config.threads = threads;
    const Analyzer analyzer(metro(), config);

    const auto dist = analyzer.swarm_distributions(trace);
    ASSERT_EQ(dist.capacities.size(), ref_dist.capacities.size());
    EXPECT_EQ(dist.capacities, ref_dist.capacities);
    ASSERT_EQ(dist.savings.size(), ref_dist.savings.size());
    for (std::size_t m = 0; m < dist.savings.size(); ++m) {
      EXPECT_EQ(dist.savings[m], ref_dist.savings[m]);
    }
    EXPECT_EQ(dist.capacity_stats.mean(), ref_dist.capacity_stats.mean());
    EXPECT_EQ(dist.capacity_stats.variance(),
              ref_dist.capacity_stats.variance());
    ASSERT_EQ(dist.savings_stats.size(), ref_dist.savings_stats.size());
    for (std::size_t m = 0; m < dist.savings_stats.size(); ++m) {
      EXPECT_EQ(dist.savings_stats[m].mean(),
                ref_dist.savings_stats[m].mean());
    }

    const auto agg = analyzer.aggregate(trace);
    ASSERT_EQ(agg.size(), ref_agg.size());
    for (std::size_t m = 0; m < agg.size(); ++m) {
      EXPECT_EQ(agg[m].sim_savings, ref_agg[m].sim_savings);
      EXPECT_EQ(agg[m].theory_savings, ref_agg[m].theory_savings);
      EXPECT_EQ(agg[m].offload, ref_agg[m].offload);
    }

    const auto daily = analyzer.daily_report(trace);
    ASSERT_EQ(daily.theory.size(), ref_daily.theory.size());
    EXPECT_EQ(daily.theory, ref_daily.theory);
    EXPECT_EQ(daily.sim, ref_daily.sim);
  }
}

}  // namespace
}  // namespace cl
