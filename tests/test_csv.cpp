// Tests for util/csv.h — CSV writer/reader round-trips and error handling.
#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace cl {
namespace {

TEST(CsvWriter, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter w(out, {"a", "b", "c"});
  w.row(1, 2.5, "x");
  EXPECT_EQ(out.str(), "a,b,c\n1,2.5,x\n");
  EXPECT_EQ(w.rows_written(), 1u);
}

TEST(CsvWriter, DoubleRoundTripFormatting) {
  std::ostringstream out;
  CsvWriter w(out, {"v"});
  w.row(0.1);
  EXPECT_EQ(out.str(), "v\n0.1\n");
}

TEST(CsvWriter, WrongArityThrows) {
  std::ostringstream out;
  CsvWriter w(out, {"a", "b"});
  EXPECT_THROW(w.row(1), InvalidArgument);
  EXPECT_THROW(w.row(1, 2, 3), InvalidArgument);
}

TEST(SplitCsvLine, Simple) {
  const auto fields = split_csv_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitCsvLine, EmptyFields) {
  const auto fields = split_csv_line(",x,");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[2], "");
}

TEST(SplitCsvLine, QuotedCommaAndEscapedQuote) {
  const auto fields = split_csv_line(R"("a,b","say ""hi""")");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a,b");
  EXPECT_EQ(fields[1], "say \"hi\"");
}

TEST(SplitCsvLine, StripsCarriageReturn) {
  const auto fields = split_csv_line("a,b\r");
  EXPECT_EQ(fields[1], "b");
}

TEST(SplitCsvLine, UnterminatedQuoteThrows) {
  EXPECT_THROW(split_csv_line("\"abc"), ParseError);
}

TEST(SplitCsvLine, GarbageAfterClosingQuoteThrows) {
  EXPECT_THROW(split_csv_line("\"abc\"garbage,x"), ParseError);
  EXPECT_THROW(split_csv_line("x,\"10\"5"), ParseError);
}

TEST(SplitCsvLine, StrayQuoteInsideUnquotedFieldThrows) {
  EXPECT_THROW(split_csv_line("ab\"cd\",x"), ParseError);
}

TEST(SplitCsvLine, InteriorCarriageReturnThrows) {
  EXPECT_THROW(split_csv_line("a\rb,c"), ParseError);
  // ...but the CR of a CRLF line ending is still fine (see
  // StripsCarriageReturn above).
}

TEST(SplitCsvLine, QuotedFieldThenSeparatorStillWorks) {
  const auto fields = split_csv_line("\"a\",b,\"c\"");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(ReadCsv, Document) {
  std::istringstream in("x,y\n1,2\n3,4\n");
  const CsvDocument doc = read_csv(in);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.column("y"), 1u);
  EXPECT_EQ(doc.rows[1][doc.column("x")], "3");
}

TEST(ReadCsv, SkipsBlankLines) {
  std::istringstream in("x\n1\n\n2\n");
  EXPECT_EQ(read_csv(in).rows.size(), 2u);
}

TEST(ReadCsv, RaggedRowThrows) {
  std::istringstream in("x,y\n1\n");
  EXPECT_THROW(read_csv(in), ParseError);
}

TEST(ReadCsv, EmptyDocumentThrows) {
  std::istringstream in("");
  EXPECT_THROW(read_csv(in), ParseError);
}

TEST(ReadCsv, MissingColumnThrows) {
  std::istringstream in("x\n1\n");
  const CsvDocument doc = read_csv(in);
  EXPECT_THROW((void)doc.column("nope"), ParseError);
}

TEST(CsvRoundTrip, WriterToReader) {
  std::ostringstream out;
  CsvWriter w(out, {"id", "value"});
  for (int i = 0; i < 10; ++i) w.row(i, i * 1.5);
  std::istringstream in(out.str());
  const CsvDocument doc = read_csv(in);
  ASSERT_EQ(doc.rows.size(), 10u);
  EXPECT_EQ(doc.rows[3][0], "3");
  EXPECT_EQ(doc.rows[3][1], "4.5");
}

}  // namespace
}  // namespace cl
