// Tests of the experiment subsystem (src/experiment/): the spec loader's
// reject matrix (every malformed spec is a distinct, actionable
// ParseError), the matrix expansion semantics (order, pinning,
// exclusion, canonical value forms), and the parity contracts — a cell
// run is bit-identical to a standalone `cl simulate` composition at
// every thread count, and the checked-in ablation specs reproduce the
// bench binaries' numbers exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/analyzer.h"
#include "experiment/cell_runner.h"
#include "experiment/experiment_spec.h"
#include "ext/adoption.h"
#include "ext/edge_cache.h"
#include "sim/hybrid_sim.h"
#include "topology/metro_registry.h"
#include "trace/synthetic.h"
#include "trace/trace_view.h"
#include "util/error.h"
#include "util/json.h"

#ifndef CL_TEST_DATA_DIR
#error "CMake must define CL_TEST_DATA_DIR"
#endif
#ifndef CL_EXPERIMENTS_DIR
#error "CMake must define CL_EXPERIMENTS_DIR (the checked-in specs)"
#endif

namespace {

using namespace cl;

// --- reject matrix ------------------------------------------------------

/// Asserts that `text` is rejected with a message containing `expected`.
void expect_reject(const std::string& text, const std::string& expected) {
  try {
    (void)ExperimentSpec::parse(text, "t");
    FAIL() << "spec was accepted; expected error containing: " << expected;
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find(expected), std::string::npos)
        << "actual error: " << e.what();
  }
}

TEST(ExperimentSpecReject, MalformedJson) {
  expect_reject("{ \"axes\": ", "JSON parse error at line 1");
  expect_reject("[1, 2]", "spec root must be a JSON object");
}

TEST(ExperimentSpecReject, UnknownAxisName) {
  expect_reject(R"({"axes": {"bogus": [1]}})", "unknown axis 'bogus'");
}

TEST(ExperimentSpecReject, UnknownSpecKey) {
  expect_reject(R"({"cells": []})", "unknown spec key 'cells'");
}

TEST(ExperimentSpecReject, EmptyAxisValueList) {
  expect_reject(R"({"axes": {"adoption": []}})",
                "axis 'adoption' has an empty value list");
}

TEST(ExperimentSpecReject, DuplicateAxis) {
  expect_reject(R"({"axes": {"adoption": [50], "adoption": [5]}})",
                "duplicate axis 'adoption'");
}

TEST(ExperimentSpecReject, DuplicateBaseParameter) {
  expect_reject(R"({"base": {"days": 1, "days": 2},
                    "axes": {"adoption": [50]}})",
                "duplicate base parameter 'days'");
}

TEST(ExperimentSpecReject, BaseAndAxisConflict) {
  expect_reject(R"({"base": {"adoption": 50, "simulate": "off"},
                    "axes": {"adoption": [5]}})",
                "declared both in base and as an axis");
}

TEST(ExperimentSpecReject, NonExistentIntensityCsvPath) {
  expect_reject(
      R"({"base": {"intensity": "/nonexistent/curve.csv"}})",
      "no 24-hour intensity CSV exists at that path");
}

TEST(ExperimentSpecReject, OutOfRangeAdoption) {
  expect_reject(R"({"axes": {"adoption": [-1]}})",
                "adoption value '-1' is out of range");
  expect_reject(R"({"axes": {"adoption": [0]}})",
                "adoption value '0' is out of range");
}

TEST(ExperimentSpecReject, OutOfRangePreloadAdoption) {
  expect_reject(R"({"base": {"preload_adoption": 1.5}})",
                "preload_adoption value '1.5' is out of range [0, 1]");
}

TEST(ExperimentSpecReject, BadPreloadWindow) {
  expect_reject(R"({"base": {"preload": "9"}})",
                "must be \"START-END\" hours");
  expect_reject(R"({"base": {"preload": "9-7"}})",
                "out of range (need 0 <= START < END <= 24)");
}

TEST(ExperimentSpecReject, UnknownMetroAndScheduleMode) {
  expect_reject(R"({"axes": {"metro": ["atlantis"]}})", "unknown metro");
  expect_reject(R"({"base": {"schedule": "sometimes"}})",
                "unknown schedule mode 'sometimes'");
}

TEST(ExperimentSpecReject, NonIntegerSeedAndEdgeCache) {
  expect_reject(R"({"base": {"seed": 1.5}})",
                "seed '1.5' must be a non-negative integer");
  expect_reject(R"({"axes": {"edge_cache": [2.5]}})",
                "whole number of items");
}

TEST(ExperimentSpecReject, ScheduleNeedsIntensity) {
  expect_reject(R"({"base": {"schedule": "all"}})", "needs an intensity");
}

TEST(ExperimentSpecReject, CellRunsNothing) {
  expect_reject(R"({"base": {"simulate": "off"}})", "would run nothing");
}

TEST(ExperimentSpecReject, PinNamesUndeclaredAxisOrValue) {
  expect_reject(R"({"axes": {"adoption": [50]}, "pin": {"days": 1}})",
                "pin names 'days' which is not a declared axis");
  expect_reject(R"({"axes": {"adoption": [50]}, "pin": {"adoption": 5}})",
                "not among the axis's declared values");
}

TEST(ExperimentSpecReject, ExcludeNamesUndeclaredAxis) {
  expect_reject(R"({"axes": {"adoption": [50]},
                    "exclude": [{"days": 1}]})",
                "exclude names 'days' which is not a declared axis");
}

TEST(ExperimentSpecReject, ZeroCellsAfterExclusion) {
  expect_reject(R"({"axes": {"adoption": [50]},
                    "exclude": [{"adoption": 50}]})",
                "zero cells");
}

TEST(ExperimentSpecReject, MissingSpecFile) {
  EXPECT_THROW((void)ExperimentSpec::parse_file("/nonexistent/spec.json"),
               ParseError);
}

// --- expansion semantics ------------------------------------------------

TEST(ExperimentSpecExpand, CrossProductDeclarationOrderLastAxisFastest) {
  const ExperimentSpec spec = ExperimentSpec::parse(
      R"({"base": {"simulate": "off"},
          "axes": {"adoption": [50, 5], "edge_cache": [2, 10]}})",
      "t");
  const std::vector<ExperimentCell> cells = spec.cells();
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].slug, "adoption-50_edge_cache-2");
  EXPECT_EQ(cells[1].slug, "adoption-50_edge_cache-10");
  EXPECT_EQ(cells[2].slug, "adoption-5_edge_cache-2");
  EXPECT_EQ(cells[3].slug, "adoption-5_edge_cache-10");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
  }
  EXPECT_EQ(cells[1].config.adoption, 50.0);
  EXPECT_EQ(cells[1].config.edge_cache, 10u);
  EXPECT_FALSE(cells[1].config.simulate);
}

TEST(ExperimentSpecExpand, CanonicalValueForms) {
  const ExperimentSpec spec = ExperimentSpec::parse(
      R"({"base": {"days": 2.50},
          "axes": {"adoption": [0.50], "overload": [true, "no"]}})",
      "t");
  ASSERT_EQ(spec.axes().size(), 2u);
  EXPECT_EQ(spec.axes()[0].values, std::vector<std::string>{"0.5"});
  EXPECT_EQ(spec.axes()[1].values,
            (std::vector<std::string>{"on", "off"}));
  const std::vector<ExperimentCell> cells = spec.cells();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].slug, "adoption-0.5_overload-on");
  EXPECT_EQ(cells[0].config.days, 2.5);
  EXPECT_TRUE(cells[0].config.overload);
  EXPECT_FALSE(cells[1].config.overload);
}

TEST(ExperimentSpecExpand, PinRestrictsAxisToSubset) {
  const ExperimentSpec spec = ExperimentSpec::parse(
      R"({"base": {"simulate": "off"},
          "axes": {"adoption": [50, 5, 0.5]},
          "pin": {"adoption": [5, 0.5]}})",
      "t");
  const std::vector<ExperimentCell> cells = spec.cells();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].slug, "adoption-5");
  EXPECT_EQ(cells[1].slug, "adoption-0.5");
}

TEST(ExperimentSpecExpand, ExcludeDropsMatchingCellsAndReindexes) {
  const ExperimentSpec spec = ExperimentSpec::parse(
      R"({"base": {"simulate": "off"},
          "axes": {"adoption": [50, 5], "edge_cache": [2, 10]},
          "exclude": [{"adoption": 50, "edge_cache": 2}]})",
      "t");
  const std::vector<ExperimentCell> cells = spec.cells();
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0].slug, "adoption-50_edge_cache-10");
  EXPECT_EQ(cells[0].index, 0u);
  EXPECT_EQ(cells[2].slug, "adoption-5_edge_cache-10");
  EXPECT_EQ(cells[2].index, 2u);
}

TEST(ExperimentSpecExpand, NoAxesYieldsOneBaseCell) {
  const ExperimentSpec spec =
      ExperimentSpec::parse(R"({"base": {"days": 1}})", "fallback_name");
  EXPECT_EQ(spec.name(), "fallback_name");
  const std::vector<ExperimentCell> cells = spec.cells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].slug, "base");
  EXPECT_EQ(cells[0].config.days, 1.0);
  EXPECT_TRUE(cells[0].config.simulate);
}

// --- parity contracts ---------------------------------------------------

/// Reads one metric back out of the deterministic JSON rendering (the
/// writer is %.17g round-trip, so the parsed double is bit-exact).
double metric(const JsonObject& metrics, const std::string& key) {
  const JsonValue parsed = JsonValue::parse(metrics.render());
  const JsonValue* value = parsed.find(key);
  EXPECT_NE(value, nullptr) << "missing metric " << key << " in "
                            << metrics.render();
  return value == nullptr ? 0 : value->as_number();
}

/// The golden cell (tests/data/golden_spec.json) against a hand-composed
/// standalone simulate run — the exact call sequence of cmd_simulate.cpp
/// — at --threads 1, 2, 7 and hw (0). SimResult fields must be
/// bit-identical and the rendered metrics byte-identical at every count.
TEST(ExperimentParity, GoldenCellMatchesStandaloneSimulateAtEveryThreads) {
  const ExperimentSpec spec = ExperimentSpec::parse_file(
      std::string(CL_TEST_DATA_DIR) + "/golden_spec.json");
  EXPECT_EQ(spec.name(), "golden_spec");
  const std::vector<ExperimentCell> cells = spec.cells();
  ASSERT_EQ(cells.size(), 1u);
  const CellConfig& config = cells[0].config;

  // The standalone path: what `cl simulate --intensity uk_2018
  // --overload --days 1` executes (cli_common.h load_or_generate +
  // cmd_simulate.cpp).
  const Metro& metro = MetroRegistry::instance().get(config.metro);
  TraceConfig trace_config = TraceConfig::london_month_scaled(config.days);
  trace_config.metro = config.metro;
  trace_config.seed = config.seed;
  trace_config.threads = 1;
  const Trace trace = TraceGenerator(trace_config, metro).generate();
  SimConfig sim_config;
  sim_config.threads = 1;
  const Analyzer analyzer(metro, sim_config);
  SimConfig run_config = analyzer.sim_config();
  run_config.collect_swarms = true;
  run_config.collect_hourly = true;  // --intensity present
  run_config.collect_per_user = false;
  run_config.overload = true;
  const SimResult expected = HybridSimulator(metro, run_config)
                                 .run(TraceView::from_trace(trace, 1), nullptr);

  std::string reference_render;
  for (const unsigned threads : {1u, 2u, 7u, 0u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    const CellOutcome outcome = run_cell(config, threads);
    EXPECT_EQ(outcome.sim.total.server.value(),
              expected.total.server.value());
    EXPECT_EQ(outcome.sim.total.cross_isp.value(),
              expected.total.cross_isp.value());
    for (std::size_t level = 0; level < expected.total.peer.size();
         ++level) {
      EXPECT_EQ(outcome.sim.total.peer[level].value(),
                expected.total.peer[level].value());
    }
    EXPECT_EQ(outcome.sim.offload(), expected.offload());
    EXPECT_EQ(outcome.sim.overload_spill.value(),
              expected.overload_spill.value());
    EXPECT_EQ(outcome.sim.hourly.size(), expected.hourly.size());
    EXPECT_EQ(outcome.sim.swarms.size(), expected.swarms.size());
    EXPECT_EQ(outcome.sessions, static_cast<double>(trace.size()));
    const std::string render = outcome.metrics.render();
    if (reference_render.empty()) {
      reference_render = render;
    } else {
      EXPECT_EQ(render, reference_render);  // byte-identical JSON payload
    }
  }

  // Cross-check two rendered metrics against the standalone numbers.
  const CellOutcome outcome = run_cell(config, 1);
  EXPECT_EQ(metric(outcome.metrics, "offload"), expected.offload());
  EXPECT_EQ(metric(outcome.metrics, "overload_spill_gb"),
            expected.overload_spill.value() / 8e9);
}

/// experiments/ablation_adoption.json reproduces the bench binary's
/// fixed-point numbers bit-identically (bench/ablation_adoption.cpp).
TEST(ExperimentParity, AdoptionSpecMatchesBenchComputation) {
  const ExperimentSpec spec = ExperimentSpec::parse_file(
      std::string(CL_EXPERIMENTS_DIR) + "/ablation_adoption.json");
  const std::vector<ExperimentCell> cells = spec.cells();
  ASSERT_EQ(cells.size(), 3u);
  const Metro& metro = MetroRegistry::instance().get(kDefaultMetroName);
  for (const ExperimentCell& cell : cells) {
    SCOPED_TRACE(cell.slug);
    const CellOutcome outcome = run_cell(cell.config, 1);
    for (const auto& params : standard_params()) {
      const AdoptionModel model(SavingsModel(params, metro.isp(0)));
      AdoptionConfig adoption;
      adoption.swarm_capacity = cell.config.adoption;
      adoption.uniform_thresholds(2000, -0.5, 0.5);
      const AdoptionResult expected = model.solve(adoption);
      EXPECT_EQ(metric(outcome.metrics, "participation_" + params.name),
                expected.participation);
      EXPECT_EQ(metric(outcome.metrics, "adoption_savings_" + params.name),
                expected.savings);
      EXPECT_EQ(metric(outcome.metrics, "adoption_cct_" + params.name),
                expected.cct);
    }
  }
}

/// One cell of experiments/ablation_edge_cache.json reproduces the bench
/// binary's cache sweep numbers bit-identically (capacity 50, P2P on —
/// the cell the bench exports as metrics).
TEST(ExperimentParity, EdgeCacheSpecMatchesBenchComputation) {
  const ExperimentSpec spec = ExperimentSpec::parse_file(
      std::string(CL_EXPERIMENTS_DIR) + "/ablation_edge_cache.json");
  const std::vector<ExperimentCell> cells = spec.cells();
  ASSERT_EQ(cells.size(), 8u);
  const ExperimentCell* cell = nullptr;
  for (const ExperimentCell& candidate : cells) {
    if (candidate.slug == "edge_cache-50_edge_cache_p2p-on") {
      cell = &candidate;
    }
  }
  ASSERT_NE(cell, nullptr);

  // The bench's own composition (bench/ablation_edge_cache.cpp).
  const Metro& metro = MetroRegistry::instance().get(kDefaultMetroName);
  TraceConfig trace_config = TraceConfig::london_month_scaled(10);
  trace_config.threads = 1;
  const Trace trace = TraceGenerator(trace_config, metro).generate();
  SimConfig sim_config;
  sim_config.threads = 1;
  sim_config.collect_hourly = false;
  sim_config.collect_per_user = false;
  sim_config.collect_swarms = false;
  EdgeCacheConfig cache_config;
  cache_config.capacity_per_exp = 50;
  cache_config.misses_use_p2p = true;
  const EdgeCacheOutcome expected =
      EdgeCacheSimulator(metro, sim_config, cache_config).run(trace);

  const CellOutcome outcome = run_cell(cell->config, 1);
  EXPECT_EQ(metric(outcome.metrics, "cache_hit_rate"),
            expected.hit_rate());
  for (const auto& params : standard_params()) {
    EXPECT_EQ(metric(outcome.metrics, "cache_savings_" + params.name),
              EdgeCacheSimulator::savings(expected, params));
  }
}

}  // namespace
