// cell_runner.h — executes one ExperimentCell against the library.
//
// A cell run is the library-level twin of a `cl simulate` invocation with
// the equivalent flags: the same trace generation, the same SimConfig,
// the same analyzer/scheduler calls in the same order — so its SimResult
// is bit-identical to the CLI's (tests/test_experiment.cpp pins this at
// several --threads values). On top of the simulate core it runs the
// extension subsystems a cell may enable (adoption fixed point, edge
// caches, preload transform), mirroring the bench binaries' calls so a
// spec cell reproduces bench numbers exactly.
#pragma once

#include <string>

#include "experiment/experiment_spec.h"
#include "sim/metrics.h"
#include "util/json_writer.h"

namespace cl {

/// Everything one cell run produced.
struct CellOutcome {
  /// Key model outputs, BENCH_*.json "metrics"-object shaped, rendered
  /// with the same deterministic writer the benches use.
  JsonObject metrics;
  double sessions = 0;  ///< sessions simulated (throughput denominator)
  /// The simulator result (CellConfig::simulate cells only) — parity
  /// tests compare it field-for-field against a standalone simulate run.
  SimResult sim;
};

/// Runs one cell with `threads` worker threads (0 = all cores). Results
/// are bit-identical for every thread count (the determinism contract of
/// every subsystem a cell composes) and depend only on the cell config —
/// cells are independent, so the experiment runner executes them
/// concurrently.
[[nodiscard]] CellOutcome run_cell(const CellConfig& config,
                                   unsigned threads);

}  // namespace cl
