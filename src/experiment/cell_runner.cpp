#include "experiment/cell_runner.h"

#include <cmath>
#include <optional>

#include "carbon/intensity_curve.h"
#include "carbon/schedule.h"
#include "core/analyzer.h"
#include "energy/cost_functions.h"
#include "energy/energy_params.h"
#include "ext/adoption.h"
#include "ext/edge_cache.h"
#include "ext/preload.h"
#include "sim/hybrid_sim.h"
#include "topology/metro_registry.h"
#include "trace/synthetic.h"
#include "trace/trace_view.h"

namespace cl {

namespace {

[[nodiscard]] bool schedule_preloads(const std::string& mode) {
  return mode == "preload" || mode == "all";
}

[[nodiscard]] bool schedule_routes(const std::string& mode) {
  return mode == "route" || mode == "all";
}

}  // namespace

CellOutcome run_cell(const CellConfig& config, unsigned threads) {
  CellOutcome outcome;
  const Metro& metro = MetroRegistry::instance().get(config.metro);

  // The intensity curve, resolved exactly as the CLI's --intensity flag
  // (cli_common.h intensity_from) — except a CSV path loads into a local
  // curve, because cells run concurrently and must not share caches.
  std::optional<IntensityCurve> csv_curve;
  const IntensityCurve* intensity = nullptr;
  if (config.intensity == "metro") {
    intensity = &IntensityRegistry::instance().default_for_metro(config.metro);
  } else if (config.intensity != "none") {
    if (const IntensityCurve* preset =
            IntensityRegistry::instance().find(config.intensity)) {
      intensity = preset;
    } else {
      csv_curve = IntensityCurve::from_csv(config.intensity);
      intensity = &*csv_curve;
    }
  }

  // The trace: the same scaled synthetic month a no---trace `cl simulate`
  // generates (cli_common.h load_or_generate), with the population
  // multiplied by the cell's scale knob.
  Trace rows;
  if (config.simulate || config.edge_cache > 0) {
    TraceConfig trace_config = TraceConfig::london_month_scaled(config.days);
    trace_config.metro = config.metro;
    trace_config.seed = config.seed;
    trace_config.threads = threads;
    trace_config.users = static_cast<std::uint32_t>(
        std::llround(trace_config.users * config.scale));
    rows = TraceGenerator(trace_config, metro).generate();
    if (config.preload) {
      PreloadConfig preload;
      preload.adoption = config.preload_adoption;
      preload.window_start_hour = config.preload_start_hour;
      preload.window_end_hour = config.preload_end_hour;
      rows = apply_preload(rows, preload, config.seed);
    }
    outcome.sessions = static_cast<double>(rows.size());
    outcome.metrics.set("sessions", outcome.sessions);
  }

  if (config.simulate) {
    // From here the calls mirror cmd_simulate.cpp line for line — that
    // is what makes a cell bit-identical to the standalone CLI run.
    SimConfig sim_config;
    sim_config.q_over_beta = config.qb;
    sim_config.threads = threads;
    const Analyzer analyzer(metro, sim_config);
    SimConfig run_config = analyzer.sim_config();
    run_config.collect_swarms = true;
    run_config.collect_hourly = intensity != nullptr;
    run_config.collect_per_user = false;
    run_config.overload = config.overload;
    outcome.sim = HybridSimulator(metro, run_config)
                      .run(TraceView::from_trace(rows, threads), nullptr);
    const SimResult& result = outcome.sim;

    outcome.metrics.set("offload", result.offload());
    for (const AggregateOutcome& aggregate : analyzer.aggregate(result)) {
      outcome.metrics.set("savings_" + aggregate.model,
                          aggregate.sim_savings);
      outcome.metrics.set("theory_savings_" + aggregate.model,
                          aggregate.theory_savings);
    }
    if (run_config.overload) {
      outcome.metrics.set("overload_spill_gb",
                          result.overload_spill.value() / 8e9);
    }
    if (intensity) {
      for (const CarbonOutcome& carbon :
           analyzer.carbon_report(result, *intensity)) {
        outcome.metrics.set("carbon_savings_" + carbon.model,
                            carbon.carbon_savings);
        outcome.metrics.set("carbon_saved_g_" + carbon.model,
                            carbon.saved_g);
      }
    }

    if (config.schedule != "off") {
      const CarbonScheduler scheduler(*intensity, ScheduleConfig{});
      SimResult preloaded_result;
      const SimResult* scheduled = &result;
      if (schedule_preloads(config.schedule) && !scheduler.inert()) {
        const Trace shifted = scheduler.schedule_preload(rows, config.seed);
        preloaded_result =
            HybridSimulator(metro, run_config)
                .run(TraceView::from_trace(shifted, threads), nullptr);
        scheduled = &preloaded_result;
      }
      const std::size_t home = metro_registry_index(metro.name());
      const std::size_t hours = scheduled->hourly.size();
      const RoutingPlan plan =
          schedule_routes(config.schedule)
              ? scheduler.plan_routes(serving_curves(metro.name(), *intensity),
                                      home, hours)
              : scheduler.home_plan(home, hours);
      outcome.metrics.set("schedule_hours_routed_away",
                          static_cast<double>(plan.hours_routed_away()));
      outcome.metrics.set("schedule_mean_added_latency_ms",
                          plan.mean_added_latency_ms());
      outcome.metrics.set("schedule_scheduled_offload", scheduled->offload());
      for (const auto& params : analyzer.models()) {
        const EnergyAccountant accountant{CostFunctions(params)};
        const ScheduleOutcome assessed = scheduler.assess(
            result.hourly, scheduled->hourly, accountant, plan);
        outcome.metrics.set("schedule_reduction_" + params.name,
                            assessed.reduction);
        outcome.metrics.set("schedule_scheduled_g_" + params.name,
                            assessed.scheduled_g);
      }
    }
  }

  if (config.adoption > 0) {
    // The incentive fixed point, as bench/ablation_adoption.cpp runs it
    // (same thresholds, same seed participation, same ISP-0 tree).
    for (const auto& params : standard_params()) {
      const AdoptionModel model(SavingsModel(params, metro.isp(0)));
      AdoptionConfig adoption;
      adoption.swarm_capacity = config.adoption;
      adoption.q_over_beta = config.qb;
      adoption.uniform_thresholds(2000, -0.5, 0.5);
      const AdoptionResult result = model.solve(adoption);
      outcome.metrics.set("participation_" + params.name,
                          result.participation);
      outcome.metrics.set("adoption_cct_" + params.name, result.cct);
      outcome.metrics.set("adoption_offload_" + params.name, result.offload);
      outcome.metrics.set("adoption_savings_" + params.name, result.savings);
    }
  }

  if (config.edge_cache > 0) {
    // ExP LRU caches, as bench/ablation_edge_cache.cpp runs them (no
    // metric collection in the miss simulation).
    SimConfig cache_sim;
    cache_sim.q_over_beta = config.qb;
    cache_sim.threads = threads;
    cache_sim.collect_hourly = false;
    cache_sim.collect_per_user = false;
    cache_sim.collect_swarms = false;
    EdgeCacheConfig cache_config;
    cache_config.capacity_per_exp = config.edge_cache;
    cache_config.misses_use_p2p = config.edge_cache_p2p;
    const EdgeCacheOutcome cached =
        EdgeCacheSimulator(metro, cache_sim, cache_config).run(rows);
    outcome.metrics.set("cache_hit_rate", cached.hit_rate());
    for (const auto& params : standard_params()) {
      outcome.metrics.set("cache_savings_" + params.name,
                          EdgeCacheSimulator::savings(cached, params));
    }
  }

  return outcome;
}

}  // namespace cl
