#include "experiment/experiment_runner.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <ostream>

#include "util/error.h"
#include "util/json_writer.h"
#include "util/parallel.h"

namespace cl {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

[[nodiscard]] std::string bench_name(const ExperimentSpec& spec,
                                     const ExperimentCell& cell) {
  return spec.name() + "_" + cell.slug;
}

/// The per-cell BENCH file, in the exact shape bench_json.h's Runner
/// writes (bench / schema_version / threads / wall_seconds / throughput /
/// metrics) so tools/compare_bench_json.py consumes both alike.
void write_cell_json(const std::string& path, const std::string& bench,
                     const CellRunRecord& record, unsigned threads) {
  JsonObject root;
  root.set("bench", bench);
  root.set("schema_version", std::int64_t{1});
  root.set("threads", static_cast<std::int64_t>(threads));
  root.set("wall_seconds", record.wall_seconds);
  if (record.outcome.sessions > 0) {
    root.set("sessions", record.outcome.sessions);
    root.set("sessions_per_second",
             record.wall_seconds > 0
                 ? record.outcome.sessions / record.wall_seconds
                 : 0.0);
  }
  root.set("metrics", record.outcome.metrics);
  std::ofstream out(path);
  out << root.render() << "\n";
  if (!out.good()) {
    throw IoError("cannot write cell result file '" + path + "'");
  }
}

}  // namespace

void print_matrix(std::ostream& out, const ExperimentSpec& spec) {
  const std::vector<ExperimentCell> cells = spec.cells();
  out << "experiment '" << spec.name() << "': " << cells.size() << " cell"
      << (cells.size() == 1 ? "" : "s");
  if (!spec.axes().empty()) {
    out << " over " << spec.axes().size() << " ax"
        << (spec.axes().size() == 1 ? "is" : "es");
  }
  out << "\n";
  if (!spec.description().empty()) {
    out << "  " << spec.description() << "\n";
  }
  for (const ExperimentAxis& axis : spec.axes()) {
    out << "  axis " << axis.name << ":";
    for (const std::string& value : axis.values) out << " " << value;
    out << "\n";
  }
  for (const ExperimentCell& cell : cells) {
    out << "  [" << cell.index << "] " << cell.slug << "\n";
  }
}

ExperimentRunResult run_experiment(const ExperimentSpec& spec,
                                   const ExperimentRunConfig& config,
                                   std::ostream* progress) {
  const auto run_start = Clock::now();
  const std::vector<ExperimentCell> cells = spec.cells();
  std::filesystem::create_directories(config.out_dir);

  // Split the thread budget: up to `outer` cells in flight, each running
  // its inner stages with the leftover share. The split affects only
  // wall time — every subsystem is bit-identical at any thread count, so
  // per-cell results do not depend on it.
  const unsigned total = resolve_threads(config.threads);
  const unsigned outer = static_cast<unsigned>(
      std::min<std::size_t>(total, cells.size()));
  const unsigned inner = std::max(1u, total / outer);

  std::mutex progress_mutex;
  ExperimentRunResult run;
  run.cells = parallel_chunked_reduce_stateful(
      cells.size(), outer,
      /*make_state=*/[] { return 0; },
      /*make_acc=*/[] { return std::vector<CellRunRecord>{}; },
      /*chunk_fn=*/
      [&](int&, std::vector<CellRunRecord>& acc, std::size_t begin,
          std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const auto cell_start = Clock::now();
          CellRunRecord record;
          record.cell = cells[i];
          record.outcome = run_cell(cells[i].config, inner);
          record.wall_seconds = seconds_since(cell_start);
          record.file = "BENCH_" + bench_name(spec, cells[i]) + ".json";
          write_cell_json(
              (std::filesystem::path(config.out_dir) / record.file).string(),
              bench_name(spec, cells[i]), record, inner);
          if (progress != nullptr) {
            const std::lock_guard<std::mutex> lock(progress_mutex);
            *progress << "  [" << cells[i].index + 1 << "/" << cells.size()
                      << "] " << cells[i].slug << "  ("
                      << json_number(record.wall_seconds) << " s)\n";
          }
          acc.push_back(std::move(record));
        }
      },
      /*merge=*/
      [](std::vector<CellRunRecord>& into, std::vector<CellRunRecord>& from) {
        for (auto& record : from) into.push_back(std::move(record));
      },
      /*chunk_len=*/1);
  run.wall_seconds = seconds_since(run_start);

  // The manifest: one BENCH_<spec>.json naming every cell file, itself
  // bench-shaped so the CI gate (--require) covers it too.
  JsonObject manifest;
  manifest.set("bench", spec.name());
  manifest.set("schema_version", std::int64_t{1});
  manifest.set("threads", static_cast<std::int64_t>(total));
  manifest.set("wall_seconds", run.wall_seconds);
  if (!spec.description().empty()) {
    manifest.set("description", spec.description());
  }
  JsonObject axes;
  for (const ExperimentAxis& axis : spec.axes()) {
    axes.set(axis.name, axis.values);
  }
  manifest.set("axes", axes);
  std::vector<JsonObject> cell_entries;
  for (const CellRunRecord& record : run.cells) {
    JsonObject entry;
    entry.set("index", record.cell.index);
    entry.set("slug", record.cell.slug);
    entry.set("bench", bench_name(spec, record.cell));
    entry.set("file", record.file);
    cell_entries.push_back(std::move(entry));
  }
  manifest.set("cells", cell_entries);
  JsonObject metrics;
  metrics.set("cells", static_cast<std::int64_t>(run.cells.size()));
  metrics.set("axes", static_cast<std::int64_t>(spec.axes().size()));
  manifest.set("metrics", metrics);

  run.manifest_path =
      (std::filesystem::path(config.out_dir) /
       ("BENCH_" + spec.name() + ".json"))
          .string();
  std::ofstream out(run.manifest_path);
  out << manifest.render() << "\n";
  if (!out.good()) {
    throw IoError("cannot write manifest '" + run.manifest_path + "'");
  }
  return run;
}

}  // namespace cl
