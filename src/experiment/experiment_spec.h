// experiment_spec.h — declarative experiment matrices over the simulator.
//
// The scenario space (metro × intensity × adoption × edge-cache ×
// preload × schedule × overload × trace scale/days/seed) used to need a
// bespoke bench binary per combination. An ExperimentSpec expresses one
// experiment as data instead: a JSON file naming *axes* (parameters with
// a list of values) over a *base* configuration (parameters fixed for
// every cell). The matrix expander crosses the axes into one
// ExperimentCell per point, applies axis-subset pinning and explicit
// cell exclusions, and the runner (experiment_runner.h) executes the
// cells in parallel — per-cell results bit-identical to a standalone
// `cl simulate` with the same flags.
//
// Spec schema (DESIGN.md §13, docs/CLI.md "cl experiment"):
//
//   {
//     "name":        "ablation_adoption",      // [a-z0-9_-]+, optional
//                                              // (defaults to file stem)
//     "description": "free text",              // optional
//     "base":  { "days": 10, "seed": 7 },      // fixed parameters
//     "axes":  { "adoption": [50, 5, 0.5],     // declaration order =
//                "metro": ["london_top5"] },   // matrix nesting order
//     "pin":     { "adoption": [50, 5] },      // optional: restrict an
//                                              // axis to a declared subset
//     "exclude": [ { "adoption": 5,            // optional: drop cells
//                    "metro": "london_top5" } ]// matching ALL pairs
//   }
//
// Parameter vocabulary (each key is valid in base, axes, pin, exclude):
//
//   metro            topology preset (MetroRegistry)         london_top5
//   intensity        "none" | "metro" | preset | CSV path    none
//   adoption         "off" | swarm-capacity tier > 0         off
//   edge_cache       "off" | items per ExP cache >= 1        off
//   edge_cache_p2p   on/off — cache misses use P2P           on
//   preload          "off" | "START-END" hour window         off
//   preload_adoption fraction of sessions preloaded, [0,1]   0.5
//   schedule         off|preload|route|all (needs intensity) off
//   overload         on/off — warm-upload cap + CDN spill    off
//   simulate         on/off — run the hybrid simulator       on
//   days             trace span in days > 0                  10
//   scale            population multiplier > 0               1
//   seed             master seed, non-negative integer       20130901
//   qb               upload ratio q/beta > 0                 1
//
// Every malformed input — unknown axis, empty value list, duplicate
// axis, out-of-range value, missing intensity CSV — is a cl::ParseError
// with a distinct, actionable message (tests/test_experiment.cpp pins
// the reject matrix).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cl {

class JsonValue;

/// One fully-resolved parameter assignment — everything a cell run needs
/// (defaults chosen to match a bare `cl simulate` invocation).
struct CellConfig {
  std::string metro = "london_top5";
  std::string intensity = "none";  ///< "none" | "metro" | preset | CSV path
  double adoption = 0;             ///< 0 = off; else swarm-capacity tier
  std::size_t edge_cache = 0;      ///< 0 = off; else items per ExP cache
  bool edge_cache_p2p = true;
  bool preload = false;
  double preload_start_hour = 7;
  double preload_end_hour = 9;
  double preload_adoption = 0.5;
  std::string schedule = "off";  ///< off | preload | route | all
  bool overload = false;
  bool simulate = true;
  double days = 10;
  double scale = 1;
  std::uint64_t seed = 20130901;  ///< TraceConfig's master-seed default
  double qb = 1;
};

/// One axis of the matrix: a parameter name plus its (post-pinning)
/// canonical value list, in declaration order.
struct ExperimentAxis {
  std::string name;
  std::vector<std::string> values;
};

/// One cross-product point of the matrix.
struct ExperimentCell {
  std::size_t index = 0;  ///< position in the expanded (post-exclusion) list
  /// Canonical value per axis, aligned with ExperimentSpec::axes().
  std::vector<std::string> values;
  /// Filesystem-safe label: "<axis>-<value>" pairs joined by "_"
  /// ("base" when the spec has no axes) — the <cell> part of the
  /// BENCH_<spec>_<cell>.json file name.
  std::string slug;
  CellConfig config;  ///< base config with the axis values applied
};

/// A parsed, validated experiment specification.
class ExperimentSpec {
 public:
  /// Parses `path` (the file stem is the default experiment name).
  [[nodiscard]] static ExperimentSpec parse_file(const std::string& path);

  /// Parses an in-memory spec document. `default_name` substitutes for a
  /// missing "name" member.
  [[nodiscard]] static ExperimentSpec parse(const std::string& text,
                                            const std::string& default_name);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& description() const {
    return description_;
  }
  [[nodiscard]] const CellConfig& base() const { return base_; }
  [[nodiscard]] const std::vector<ExperimentAxis>& axes() const {
    return axes_;
  }

  /// Expands the matrix: the cross product of the axes' value lists (in
  /// declaration order, last axis fastest) over the base config, minus
  /// excluded cells. Guaranteed non-empty and cross-validated (e.g. a
  /// schedule needs an intensity) — violations throw cl::ParseError.
  [[nodiscard]] std::vector<ExperimentCell> cells() const;

  /// The number of cells expand() would return (dry-run sizing).
  [[nodiscard]] std::size_t cell_count() const { return cells().size(); }

  /// The parameter vocabulary, sorted — error messages list it, docs
  /// tables are generated from it.
  [[nodiscard]] static const std::vector<std::string>& known_keys();

 private:
  [[nodiscard]] static ExperimentSpec from_json(const JsonValue& root,
                                                const std::string& fallback);

  std::string name_;
  std::string description_;
  CellConfig base_;
  std::vector<ExperimentAxis> axes_;
  /// Each exclusion: (axis index, canonical value) pairs that must ALL
  /// match for a cell to be dropped.
  std::vector<std::vector<std::pair<std::size_t, std::string>>> exclusions_;
};

}  // namespace cl
