#include "experiment/experiment_spec.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <filesystem>
#include <set>

#include "carbon/intensity_curve.h"
#include "topology/metro_registry.h"
#include "util/error.h"
#include "util/json.h"
#include "util/table.h"

namespace cl {

namespace {

constexpr std::size_t kMaxCells = 4096;

[[nodiscard]] std::string joined(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

[[nodiscard]] std::string known_keys_joined() {
  return joined(ExperimentSpec::known_keys());
}

/// "on"/"off" from a JSON bool or an on/off/yes/no/true/false string.
[[nodiscard]] std::string canonical_switch(const std::string& key,
                                           const JsonValue& value) {
  if (value.is_bool()) return value.as_bool() ? "on" : "off";
  if (value.is_string()) {
    const std::string& s = value.as_string();
    if (s == "on" || s == "yes" || s == "true") return "on";
    if (s == "off" || s == "no" || s == "false") return "off";
  }
  throw ParseError("parameter '" + key + "' must be a switch (true/false, "
                   "\"on\"/\"off\" or \"yes\"/\"no\"), got " +
                   (value.is_string() ? "'" + value.as_string() + "'"
                                      : value.kind_name()));
}

[[nodiscard]] double number_of(const std::string& key,
                               const JsonValue& value) {
  if (!value.is_number()) {
    throw ParseError("parameter '" + key + "' must be a number, got " +
                     std::string(value.kind_name()));
  }
  return value.as_number();
}

[[nodiscard]] std::string string_of(const std::string& key,
                                    const JsonValue& value) {
  if (!value.is_string()) {
    throw ParseError("parameter '" + key + "' must be a string, got " +
                     std::string(value.kind_name()));
  }
  return value.as_string();
}

/// The preload window "START-END" in hours, validated against
/// apply_preload's same-day contract.
void parse_preload_window(const std::string& text, double* start,
                          double* end) {
  const auto dash = text.find('-', 1);
  const char* first = text.data();
  const char* mid = text.data() + dash;
  const char* last = text.data() + text.size();
  double s = 0, e = 0;
  const auto res_s = std::from_chars(first, mid, s);
  const auto res_e =
      dash == std::string::npos
          ? std::from_chars(first, first, e)  // forced failure
          : std::from_chars(mid + 1, last, e);
  if (dash == std::string::npos || res_s.ec != std::errc() ||
      res_s.ptr != mid || res_e.ec != std::errc() || res_e.ptr != last) {
    throw ParseError("preload window '" + text +
                     "' must be \"START-END\" hours (e.g. \"7-9\") or "
                     "\"off\"");
  }
  if (!(s >= 0 && s < e && e <= 24)) {
    throw ParseError("preload window '" + text +
                     "' is out of range (need 0 <= START < END <= 24)");
  }
  *start = s;
  *end = e;
}

/// Validates one parameter value and returns its canonical string form
/// (what slugs, dry-run listings and exclusion matching use).
[[nodiscard]] std::string canonicalize(const std::string& key,
                                       const JsonValue& value) {
  if (key == "metro") {
    const std::string name = string_of(key, value);
    if (MetroRegistry::instance().find(name) == nullptr) {
      throw ParseError("unknown metro '" + name + "' (valid: " +
                       MetroRegistry::instance().names_joined() + ")");
    }
    return name;
  }
  if (key == "intensity") {
    const std::string name = string_of(key, value);
    if (name == "none" || name == "metro") return name;
    if (IntensityRegistry::instance().find(name) != nullptr) return name;
    if (!std::filesystem::exists(name)) {
      throw ParseError(
          "intensity '" + name + "' is not a preset (valid: none, metro, " +
          IntensityRegistry::instance().names_joined() +
          ") and no 24-hour intensity CSV exists at that path");
    }
    return name;
  }
  if (key == "adoption") {
    if (value.is_string() && value.as_string() == "off") return "off";
    const double tier = number_of(key, value);
    if (!(std::isfinite(tier) && tier > 0)) {
      throw ParseError("adoption value '" + value.text() +
                       "' is out of range (a swarm-capacity tier must be "
                       "> 0, or \"off\")");
    }
    return fmt_shortest(tier);
  }
  if (key == "edge_cache") {
    if (value.is_string() && value.as_string() == "off") return "off";
    const double items = number_of(key, value);
    if (!(std::isfinite(items) && items >= 1 &&
          items == std::floor(items) && items <= 1e9)) {
      throw ParseError("edge_cache value '" + value.text() +
                       "' must be a whole number of items per ExP cache "
                       ">= 1, or \"off\"");
    }
    return fmt_shortest(items);
  }
  if (key == "edge_cache_p2p" || key == "overload" || key == "simulate") {
    return canonical_switch(key, value);
  }
  if (key == "preload") {
    const std::string text = string_of(key, value);
    if (text == "off") return "off";
    double start = 0, end = 0;
    parse_preload_window(text, &start, &end);
    return fmt_shortest(start) + "-" + fmt_shortest(end);
  }
  if (key == "preload_adoption") {
    const double fraction = number_of(key, value);
    if (!(std::isfinite(fraction) && fraction >= 0 && fraction <= 1)) {
      throw ParseError("preload_adoption value '" + value.text() +
                       "' is out of range [0, 1]");
    }
    return fmt_shortest(fraction);
  }
  if (key == "schedule") {
    const std::string mode = string_of(key, value);
    if (mode != "off" && mode != "preload" && mode != "route" &&
        mode != "all") {
      throw ParseError("unknown schedule mode '" + mode +
                       "' (off|preload|route|all)");
    }
    return mode;
  }
  if (key == "days" || key == "scale" || key == "qb") {
    const double v = number_of(key, value);
    if (!(std::isfinite(v) && v > 0)) {
      throw ParseError("parameter '" + key + "' must be > 0, got '" +
                       value.text() + "'");
    }
    return fmt_shortest(v);
  }
  if (key == "seed") {
    const double v = number_of(key, value);
    if (!(std::isfinite(v) && v >= 0 && v == std::floor(v) && v <= 1e15)) {
      throw ParseError("seed '" + value.text() +
                       "' must be a non-negative integer");
    }
    return std::to_string(static_cast<std::uint64_t>(v));
  }
  throw ParseError("unknown parameter '" + key + "' (valid: " +
                   known_keys_joined() + ")");
}

/// Applies an already-canonical value to a config. Canonical strings come
/// from canonicalize(), so plain from_chars parsing cannot fail.
void apply_canonical(CellConfig& config, const std::string& key,
                     const std::string& value) {
  const auto as_double = [&] {
    double v = 0;
    std::from_chars(value.data(), value.data() + value.size(), v);
    return v;
  };
  if (key == "metro") {
    config.metro = value;
  } else if (key == "intensity") {
    config.intensity = value;
  } else if (key == "adoption") {
    config.adoption = value == "off" ? 0 : as_double();
  } else if (key == "edge_cache") {
    config.edge_cache =
        value == "off" ? 0 : static_cast<std::size_t>(as_double());
  } else if (key == "edge_cache_p2p") {
    config.edge_cache_p2p = value == "on";
  } else if (key == "preload") {
    if (value == "off") {
      config.preload = false;
    } else {
      config.preload = true;
      parse_preload_window(value, &config.preload_start_hour,
                           &config.preload_end_hour);
    }
  } else if (key == "preload_adoption") {
    config.preload_adoption = as_double();
  } else if (key == "schedule") {
    config.schedule = value;
  } else if (key == "overload") {
    config.overload = value == "on";
  } else if (key == "simulate") {
    config.simulate = value == "on";
  } else if (key == "days") {
    config.days = as_double();
  } else if (key == "scale") {
    config.scale = as_double();
  } else if (key == "seed") {
    std::uint64_t v = 0;
    std::from_chars(value.data(), value.data() + value.size(), v);
    config.seed = v;
  } else if (key == "qb") {
    config.qb = as_double();
  }
}

/// File-name-safe form of a canonical value (CSV paths and windows carry
/// '/' and other separators).
[[nodiscard]] std::string sanitize(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                      c == '_';
    out += safe ? c : '-';
  }
  return out;
}

}  // namespace

const std::vector<std::string>& ExperimentSpec::known_keys() {
  static const std::vector<std::string> keys{
      "adoption",       "days",     "edge_cache", "edge_cache_p2p",
      "intensity",      "metro",    "overload",   "preload",
      "preload_adoption", "qb",     "scale",      "schedule",
      "seed",           "simulate"};
  return keys;
}

ExperimentSpec ExperimentSpec::parse_file(const std::string& path) {
  const JsonValue root = JsonValue::parse_file(path);
  try {
    return from_json(root, std::filesystem::path(path).stem().string());
  } catch (const ParseError& e) {
    throw ParseError(path + ": " + e.what());
  }
}

ExperimentSpec ExperimentSpec::parse(const std::string& text,
                                     const std::string& default_name) {
  return from_json(JsonValue::parse(text), default_name);
}

ExperimentSpec ExperimentSpec::from_json(const JsonValue& root,
                                         const std::string& fallback) {
  if (!root.is_object()) {
    throw ParseError(std::string("spec root must be a JSON object, got ") +
                     root.kind_name());
  }
  ExperimentSpec spec;
  spec.name_ = fallback;

  static const std::set<std::string> top_keys{
      "name", "description", "base", "axes", "pin", "exclude"};
  std::set<std::string> seen_top;
  for (const auto& [key, value] : root.as_object()) {
    if (!top_keys.contains(key)) {
      throw ParseError("unknown spec key '" + key +
                       "' (valid: name, description, base, axes, pin, "
                       "exclude)");
    }
    if (!seen_top.insert(key).second) {
      throw ParseError("duplicate spec key '" + key + "'");
    }
    (void)value;
  }

  if (const JsonValue* name = root.find("name")) {
    spec.name_ = string_of("name", *name);
  }
  if (spec.name_.empty()) {
    throw ParseError("spec name is empty");
  }
  for (const char c : spec.name_) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-';
    if (!ok) {
      throw ParseError("spec name '" + spec.name_ +
                       "' may use only [a-z0-9_-] (it names the "
                       "BENCH_*.json files)");
    }
  }
  if (const JsonValue* description = root.find("description")) {
    spec.description_ = string_of("description", *description);
  }

  // --- base: fixed parameters ------------------------------------------
  std::set<std::string> base_keys;
  if (const JsonValue* base = root.find("base")) {
    if (!base->is_object()) {
      throw ParseError(std::string("'base' must be an object of parameter "
                                   "values, got ") +
                       base->kind_name());
    }
    for (const auto& [key, value] : base->as_object()) {
      const auto& known = known_keys();
      if (std::find(known.begin(), known.end(), key) == known.end()) {
        throw ParseError("unknown base parameter '" + key + "' (valid: " +
                         known_keys_joined() + ")");
      }
      if (!base_keys.insert(key).second) {
        throw ParseError("duplicate base parameter '" + key + "'");
      }
      apply_canonical(spec.base_, key, canonicalize(key, value));
    }
  }

  // --- axes: the matrix dimensions -------------------------------------
  std::set<std::string> axis_names;
  if (const JsonValue* axes = root.find("axes")) {
    if (!axes->is_object()) {
      throw ParseError(std::string("'axes' must be an object mapping axis "
                                   "names to value arrays, got ") +
                       axes->kind_name());
    }
    for (const auto& [key, value] : axes->as_object()) {
      const auto& known = known_keys();
      if (std::find(known.begin(), known.end(), key) == known.end()) {
        throw ParseError("unknown axis '" + key + "' (valid: " +
                         known_keys_joined() + ")");
      }
      if (!axis_names.insert(key).second) {
        throw ParseError("duplicate axis '" + key +
                         "' (each axis may be declared once)");
      }
      if (base_keys.contains(key)) {
        throw ParseError("parameter '" + key +
                         "' is declared both in base and as an axis");
      }
      if (!value.is_array()) {
        throw ParseError("axis '" + key + "' must map to an array of "
                         "values, got " + value.kind_name());
      }
      ExperimentAxis axis;
      axis.name = key;
      for (const JsonValue& element : value.as_array()) {
        std::string canonical = canonicalize(key, element);
        if (std::find(axis.values.begin(), axis.values.end(), canonical) !=
            axis.values.end()) {
          throw ParseError("axis '" + key + "' repeats value '" +
                           canonical + "'");
        }
        axis.values.push_back(std::move(canonical));
      }
      if (axis.values.empty()) {
        throw ParseError("axis '" + key + "' has an empty value list "
                         "(declare at least one value or drop the axis)");
      }
      spec.axes_.push_back(std::move(axis));
    }
  }

  const auto axis_index = [&spec](const std::string& name) {
    for (std::size_t i = 0; i < spec.axes_.size(); ++i) {
      if (spec.axes_[i].name == name) return i;
    }
    return spec.axes_.size();
  };

  // --- pin: restrict axes to declared subsets --------------------------
  if (const JsonValue* pin = root.find("pin")) {
    if (!pin->is_object()) {
      throw ParseError(std::string("'pin' must be an object mapping axis "
                                   "names to a declared value (or value "
                                   "subset), got ") +
                       pin->kind_name());
    }
    std::set<std::string> pinned;
    for (const auto& [key, value] : pin->as_object()) {
      const std::size_t idx = axis_index(key);
      if (idx == spec.axes_.size()) {
        throw ParseError("pin names '" + key +
                         "' which is not a declared axis");
      }
      if (!pinned.insert(key).second) {
        throw ParseError("duplicate pin for axis '" + key + "'");
      }
      ExperimentAxis& axis = spec.axes_[idx];
      std::vector<std::string> subset;
      const auto add_pinned = [&](const JsonValue& element) {
        std::string canonical = canonicalize(key, element);
        if (std::find(axis.values.begin(), axis.values.end(), canonical) ==
            axis.values.end()) {
          throw ParseError("pin for axis '" + key + "' names '" +
                           canonical +
                           "' which is not among the axis's declared "
                           "values");
        }
        if (std::find(subset.begin(), subset.end(), canonical) !=
            subset.end()) {
          throw ParseError("pin for axis '" + key + "' repeats value '" +
                           canonical + "'");
        }
        subset.push_back(std::move(canonical));
      };
      if (value.is_array()) {
        for (const JsonValue& element : value.as_array()) {
          add_pinned(element);
        }
        if (value.as_array().empty()) {
          throw ParseError("pin for axis '" + key + "' is empty (drop the "
                           "pin or name at least one declared value)");
        }
      } else {
        add_pinned(value);
      }
      axis.values = std::move(subset);
    }
  }

  // --- exclude: drop individual cells ----------------------------------
  if (const JsonValue* exclude = root.find("exclude")) {
    if (!exclude->is_array()) {
      throw ParseError(std::string("'exclude' must be an array of "
                                   "{axis: value} objects, got ") +
                       exclude->kind_name());
    }
    for (const JsonValue& entry : exclude->as_array()) {
      if (!entry.is_object() || entry.as_object().empty()) {
        throw ParseError("each 'exclude' entry must be a non-empty object "
                         "of {axis: value} pairs");
      }
      std::vector<std::pair<std::size_t, std::string>> pairs;
      std::set<std::string> seen;
      for (const auto& [key, value] : entry.as_object()) {
        const std::size_t idx = axis_index(key);
        if (idx == spec.axes_.size()) {
          throw ParseError("exclude names '" + key +
                           "' which is not a declared axis");
        }
        if (!seen.insert(key).second) {
          throw ParseError("exclude entry repeats axis '" + key + "'");
        }
        pairs.emplace_back(idx, canonicalize(key, value));
      }
      spec.exclusions_.push_back(std::move(pairs));
    }
  }

  // Validate the expansion eagerly: a spec that cannot expand is rejected
  // at parse time, not at run time.
  (void)spec.cells();
  return spec;
}

std::vector<ExperimentCell> ExperimentSpec::cells() const {
  std::size_t total = 1;
  for (const ExperimentAxis& axis : axes_) {
    if (axis.values.size() > kMaxCells / total) {
      throw ParseError("spec expands to more than " +
                       std::to_string(kMaxCells) +
                       " cells — trim an axis or pin a subset");
    }
    total *= axis.values.size();
  }

  std::vector<ExperimentCell> out;
  std::vector<std::size_t> at(axes_.size(), 0);
  for (std::size_t point = 0; point < total; ++point) {
    // Decode `point` into per-axis positions, last axis fastest (the
    // nesting order of loops written in axis declaration order).
    std::size_t rest = point;
    for (std::size_t a = axes_.size(); a-- > 0;) {
      at[a] = rest % axes_[a].values.size();
      rest /= axes_[a].values.size();
    }

    ExperimentCell cell;
    cell.config = base_;
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      cell.values.push_back(axes_[a].values[at[a]]);
      apply_canonical(cell.config, axes_[a].name, cell.values.back());
    }

    const bool excluded = std::any_of(
        exclusions_.begin(), exclusions_.end(), [&](const auto& pairs) {
          return std::all_of(pairs.begin(), pairs.end(),
                             [&](const auto& pair) {
                               return cell.values[pair.first] == pair.second;
                             });
        });
    if (excluded) continue;

    if (axes_.empty()) {
      cell.slug = "base";
    } else {
      for (std::size_t a = 0; a < axes_.size(); ++a) {
        if (a) cell.slug += "_";
        cell.slug += axes_[a].name + "-" + sanitize(cell.values[a]);
      }
    }

    if (cell.config.schedule != "off" && cell.config.intensity == "none") {
      throw ParseError("cell '" + cell.slug + "': schedule '" +
                       cell.config.schedule +
                       "' needs an intensity (set an intensity axis or "
                       "base value)");
    }
    if (!cell.config.simulate && cell.config.adoption == 0 &&
        cell.config.edge_cache == 0) {
      throw ParseError("cell '" + cell.slug +
                       "' would run nothing (simulate is off and no "
                       "adoption/edge_cache tier is set)");
    }

    cell.index = out.size();
    out.push_back(std::move(cell));
  }

  if (out.empty()) {
    throw ParseError("spec expands to zero cells (pins/exclusions removed "
                     "every point)");
  }
  return out;
}

}  // namespace cl
