// experiment_runner.h — executes an ExperimentSpec's cells in parallel.
//
// Cells are independent (each generates its own trace and composes its
// own subsystems — see cell_runner.h), so the runner fans them out over
// util/parallel.h's work-stealing reduction with one cell per chunk and
// merges the records in ascending cell order: the manifest and every
// per-cell file are byte-identical for any worker count. Each cell
// writes BENCH_<spec>_<slug>.json in the bench_json.h shape, and the run
// finishes with a BENCH_<spec>.json manifest naming every cell file.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "experiment/cell_runner.h"
#include "experiment/experiment_spec.h"

namespace cl {

struct ExperimentRunConfig {
  std::string out_dir = ".";  ///< created if missing
  /// Worker threads (0 = all cores): up to this many cells run at once,
  /// and each cell's inner stages share the remaining parallelism.
  unsigned threads = 0;
};

/// One executed cell, as recorded in the manifest.
struct CellRunRecord {
  ExperimentCell cell;
  CellOutcome outcome;
  std::string file;  ///< BENCH file name (relative to out_dir)
  double wall_seconds = 0;
};

struct ExperimentRunResult {
  std::vector<CellRunRecord> cells;  ///< in cell-index order
  std::string manifest_path;
  double wall_seconds = 0;
};

/// Prints the expanded matrix (the `--dry-run` listing): one line per
/// cell with its slug and axis values, plus the cell count.
void print_matrix(std::ostream& out, const ExperimentSpec& spec);

/// Runs every cell and writes the per-cell files plus the manifest.
/// `progress` (optional) receives one line per finished cell.
[[nodiscard]] ExperimentRunResult run_experiment(
    const ExperimentSpec& spec, const ExperimentRunConfig& config,
    std::ostream* progress = nullptr);

}  // namespace cl
