// csv.h — minimal CSV reading/writing for trace files and bench output.
//
// The format is deliberately simple (no quoting of commas inside fields is
// needed by any consumelocal producer); the reader still handles quoted
// fields for robustness against externally produced traces.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace cl {

/// Incremental CSV row writer.
///
/// Usage:
///   CsvWriter w(out, {"a", "b"});
///   w.row(1, "x");
class CsvWriter {
 public:
  /// Writes the header row immediately. The stream must outlive the writer.
  CsvWriter(std::ostream& out, const std::vector<std::string>& header);

  /// Writes one row; each argument is formatted with operator<< except that
  /// doubles use shortest round-trip formatting.
  template <class... Ts>
  void row(const Ts&... fields) {
    begin_row();
    (field(fields), ...);
    end_row();
  }

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  void begin_row();
  void end_row();
  void field(double v);
  void field(const std::string& v);
  void field(const char* v);
  template <class T>
  void field(const T& v) {
    field_raw(std::to_string(v));
  }
  void field_raw(const std::string& text);

  std::ostream& out_;
  std::size_t cols_;
  std::size_t col_in_row_ = 0;
  std::size_t rows_ = 0;
};

/// Splits one CSV line into fields, honouring double-quoted fields with
/// doubled-quote escapes.
[[nodiscard]] std::vector<std::string> split_csv_line(std::string_view line);

/// Parses an entire CSV document (first row is the header).
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; throws cl::ParseError when absent.
  [[nodiscard]] std::size_t column(std::string_view name) const;
};

/// Reads a CSV document from a stream. Throws cl::ParseError on ragged rows.
[[nodiscard]] CsvDocument read_csv(std::istream& in);

}  // namespace cl
