#include "util/table.h"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "util/error.h"

namespace cl {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CL_EXPECTS(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  CL_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_numeric(const std::string& label,
                                const std::vector<double>& values,
                                int precision) {
  CL_EXPECTS(values.size() + 1 == header_.size());
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << std::left << std::setw(static_cast<int>(widths[i])) << row[i];
      if (i + 1 < row.size()) out << "  ";
    }
    out << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_shortest(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  CL_ENSURES(res.ec == std::errc{});
  return std::string(buf, res.ptr);
}

std::string fmt_sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i == lead || (i > lead && (i - lead) % 3 == 0)) out += ',';
    out += digits[i];
  }
  return out;
}

std::string fmt_pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

}  // namespace cl
