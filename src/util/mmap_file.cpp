#include "util/mmap_file.h"

#include <utility>

#include "util/error.h"

#if defined(__unix__) || defined(__APPLE__)
#define CL_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define CL_HAVE_MMAP 0
#include <cstdio>
#endif

namespace cl {

#if CL_HAVE_MMAP

MappedFile::MappedFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw IoError("cannot open trace file: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw IoError("cannot stat trace file: " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return;  // empty file: empty mapping
  }
  void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (p == MAP_FAILED) throw IoError("cannot mmap trace file: " + path);
#ifdef MADV_WILLNEED
  // The loader scans every column block exactly once; prefetching the
  // pages overlaps fault-in with the materialization loop.
  ::madvise(p, size, MADV_WILLNEED);
#endif
  data_ = p;
  size_ = size;
  mapped_ = true;
}

void MappedFile::reset() noexcept {
  if (data_ != nullptr && mapped_) ::munmap(data_, size_);
  if (data_ != nullptr && !mapped_) delete[] static_cast<unsigned char*>(data_);
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

#else  // heap-buffer fallback for platforms without POSIX mmap

MappedFile::MappedFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw IoError("cannot open trace file: " + path);
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    throw IoError("cannot stat trace file: " + path);
  }
  std::fseek(f, 0, SEEK_SET);
  const auto size = static_cast<std::size_t>(end);
  if (size == 0) {
    std::fclose(f);
    return;
  }
  auto* buffer = new unsigned char[size];
  const std::size_t got = std::fread(buffer, 1, size, f);
  std::fclose(f);
  if (got != size) {
    delete[] buffer;
    throw IoError("short read of trace file: " + path);
  }
  data_ = buffer;
  size_ = size;
  mapped_ = false;
}

void MappedFile::reset() noexcept {
  if (data_ != nullptr) delete[] static_cast<unsigned char*>(data_);
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

#endif

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
  }
  return *this;
}

MappedFile::~MappedFile() { reset(); }

}  // namespace cl
