// json.h — minimal JSON reader for declarative configuration files.
//
// The experiment runner (src/experiment/) consumes hand-written spec
// files, so the parser favours precise error messages over speed: every
// failure carries the 1-based line/column of the offending byte. The
// supported grammar is RFC 8259 JSON with two deliberate deviations:
//
//  * object keys keep their textual order (specs are documents, not
//    hash maps — axis declaration order defines the matrix order);
//  * duplicate keys are preserved, not last-wins — consumers that want
//    to reject duplicates (the spec loader does) can see them.
//
// No third-party dependency, mirroring the writer in util/json_writer.h.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cl {

/// One parsed JSON value. Numbers are stored as double plus their source
/// text, so integer-valued fields can round-trip exactly and error
/// messages can quote what the user actually wrote.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses a complete JSON document (trailing garbage is an error).
  /// Throws cl::ParseError with line/column context on malformed input.
  [[nodiscard]] static JsonValue parse(const std::string& text);

  /// Reads and parses `path`; a missing/unreadable file is a ParseError.
  [[nodiscard]] static JsonValue parse_file(const std::string& path);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// A short human name of the kind ("object", "number", ...), for
  /// "expected X, got Y" diagnostics.
  [[nodiscard]] const char* kind_name() const;

  /// Accessors throw cl::ParseError when the kind does not match.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  as_object() const;

  /// The raw source text of a number literal ("0.5", "42"), or the
  /// string payload — the canonical form spec slugs are built from.
  [[nodiscard]] const std::string& text() const { return text_; }

  /// First member named `key`, or nullptr (objects only).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// 1-based source position of this value's first byte.
  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return column_; }

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string text_;  // string payload, or the number's source literal
  // Indirection keeps JsonValue movable/copyable without recursive
  // value members (vector<JsonValue> inside JsonValue is fine, but the
  // shared_ptr keeps copies of parsed specs cheap).
  std::shared_ptr<std::vector<JsonValue>> array_;
  std::shared_ptr<std::vector<std::pair<std::string, JsonValue>>> object_;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

}  // namespace cl
