// parallel.h — deterministic sharded execution over index ranges.
//
// The project's parallelism contract is *bit-identical results for every
// thread count*, so experiments stay reproducible when scaled out:
//
//  * parallel_shards splits [0, n) into one contiguous chunk per worker.
//    Shard boundaries depend on the thread count, so callers must only use
//    it where results are recombined in index order (e.g. the trace
//    generator concatenates per-shard session vectors in shard order,
//    which equals content-id order for contiguous shards).
//
//  * parallel_chunked_reduce splits [0, n) into fixed-size chunks whose
//    boundaries depend only on n, hands chunks to workers, and merges the
//    per-chunk accumulators in ascending chunk order. Floating-point
//    reductions (RunningStats::merge, Kahan-free sums) therefore produce
//    the same bits at --threads 1 and --threads 64.
//
//  * parallel_chunked_reduce_stateful is the same reduction plus one
//    scratch object per worker (reusable event/peer buffers, a Matcher
//    instance), for chunk work with allocation-heavy inner loops — the
//    simulator's per-swarm sweep is the canonical user.
//
// NUMA awareness (multi-node hosts only; see util/numa.h and DESIGN.md
// §"Parallel execution model"):
//
//  * spawned workers are pinned round-robin across NUMA nodes (the
//    calling thread doubles as worker 0 and is never pinned — clobbering
//    the caller's affinity would outlive the call);
//  * per-chunk accumulators are constructed by the worker that processes
//    the chunk (first-touch: the partial's pages land on that worker's
//    node), and each worker drains the chunk range of its own node before
//    stealing from other nodes' ranges;
//  * the final merge folds each node's contiguous chunk range into a
//    node-local partial (in ascending chunk order, by a worker pinned to
//    that node), then folds the node partials in ascending node order.
//
// The fold structure depends only on (n, chunk_len, node count) — never
// on the thread count — so results stay bit-identical at every --threads
// value. On single-node machines the fold degenerates to the flat
// ascending-chunk merge, byte-identical to the historical behaviour;
// across machines with different node counts, floating-point results may
// differ by association (the same caveat any fixed-shape tree reduction
// carries).
//
// Exceptions thrown inside workers are captured and rethrown on the
// calling thread (first one wins).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "util/numa.h"

namespace cl {

/// Resolves a thread-count knob: 0 means "use all hardware threads".
/// Explicit values are capped at max(4 × hardware threads, 16) — past
/// that oversubscription only burns memory on stacks, and an absurd
/// request (--threads 100000) must not crash the process — and clamped
/// to [1, n] when n > 0.
[[nodiscard]] inline unsigned resolve_threads(unsigned requested,
                                              std::size_t n = 0) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  unsigned t = requested == 0 ? hw : requested;
  t = std::min(t, std::max(hw * 4, 16u));
  if (n > 0) {
    t = static_cast<unsigned>(
        std::min<std::size_t>(t, std::max<std::size_t>(1, n)));
  }
  return std::max(1u, t);
}

/// Wall-clock phase breakdown of one parallel_chunked_reduce call
/// (cl simulate --timing): the concurrent chunk phase and the ascending
/// fold of the per-chunk partials.
struct ReduceTiming {
  double work_seconds = 0;
  double merge_seconds = 0;
};

namespace detail {

/// Runs fn on `workers` std::threads (the calling thread doubles as
/// worker 0), propagating the first exception. On multi-node hosts the
/// spawned threads pin themselves round-robin across NUMA nodes before
/// running fn; worker 0 stays on the caller's affinity.
template <typename Fn>
void run_workers(unsigned workers, Fn&& fn) {
  if (workers <= 1) {
    fn(0u);
    return;
  }
  std::exception_ptr error;
  std::mutex error_mutex;
  const unsigned nodes = numa_topology().nodes();
  auto guarded = [&](unsigned worker) {
    try {
      if (worker > 0 && nodes > 1) {
        pin_current_thread_to_node(numa_node_for_worker(worker, nodes));
      }
      fn(worker);
    } catch (...) {
      const std::lock_guard lock(error_mutex);
      if (!error) error = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  try {
    for (unsigned w = 1; w < workers; ++w) {
      pool.emplace_back(guarded, w);
    }
  } catch (...) {
    // Thread creation failed (resource exhaustion): join what started —
    // joinable std::thread destructors would otherwise std::terminate.
    for (auto& t : pool) t.join();
    throw;
  }
  guarded(0u);
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace detail

/// Splits [0, n) into one contiguous half-open range per shard and calls
/// fn(shard, begin, end) concurrently on `threads` workers. Shard `s`
/// covers indices [s*n/T, (s+1)*n/T), so ranges ascend with the shard
/// index — recombining per-shard output in shard order preserves the
/// sequential index order.
template <typename Fn>
void parallel_shards(std::size_t n, unsigned threads, Fn&& fn) {
  const unsigned t = resolve_threads(threads, n);
  if (n == 0) return;
  if (t <= 1) {
    fn(0u, std::size_t{0}, n);
    return;
  }
  detail::run_workers(t, [&](unsigned shard) {
    const std::size_t begin = n * shard / t;
    const std::size_t end = n * (shard + 1) / t;
    if (begin < end) fn(shard, begin, end);
  });
}

/// Default chunk length of parallel_chunked_reduce. Small enough to load-
/// balance skewed work, large enough to amortise the merge.
inline constexpr std::size_t kReduceChunk = 2048;

/// Deterministic parallel reduction over [0, n) with per-worker scratch
/// state.
///
/// The range is cut into fixed-length chunks (boundaries depend only on n,
/// never on the thread count). The chunk index space is partitioned into
/// one contiguous range per NUMA node; workers drain their own node's
/// range first (per-range atomic cursors), then steal from other ranges.
/// Each worker builds one `make_state()` scratch object the first time it
/// obtains a chunk, constructs every chunk accumulator it processes with
/// `make_acc()` (first-touch), and folds the chunk with
/// `chunk_fn(state, acc, begin, end)`. Afterwards each node range's
/// accumulators fold in ascending chunk order into a node partial, and
/// the node partials fold in ascending node order — on one-node machines
/// that is exactly the flat ascending-chunk merge. The fold shape depends
/// only on (n, chunk_len, fold_nodes), so the result is bit-identical for
/// every thread count, including 1.
///
/// The worker state must be pure scratch (reusable buffers, matcher
/// instances, ...): which worker processes which chunk is racy, so any
/// state that influenced the accumulators would break determinism.
/// `make_acc` must likewise be safe to call concurrently (workers invoke
/// it while first-touching their chunks).
///
/// `timing`, when non-null, receives the wall-clock split between the
/// concurrent chunk phase and the fold. `fold_nodes` overrides the node
/// count shaping the fold (0 = the machine's — tests force >1 to
/// exercise the socket-local fold on single-node hosts).
template <typename MakeState, typename MakeAcc, typename ChunkFn,
          typename Merge>
auto parallel_chunked_reduce_stateful(std::size_t n, unsigned threads,
                                      MakeState&& make_state,
                                      MakeAcc&& make_acc, ChunkFn&& chunk_fn,
                                      Merge&& merge,
                                      std::size_t chunk_len = kReduceChunk,
                                      ReduceTiming* timing = nullptr,
                                      unsigned fold_nodes = 0) {
  using Acc = decltype(make_acc());
  using Clock = std::chrono::steady_clock;
  Acc total = make_acc();
  if (n == 0) return total;
  chunk_len = std::max<std::size_t>(1, chunk_len);
  const std::size_t chunks = (n + chunk_len - 1) / chunk_len;
  // One slot per chunk; the worker that processes a chunk emplaces its
  // accumulator (first-touch — the pages belong to that worker's node).
  std::vector<std::optional<Acc>> partial(chunks);

  const unsigned t = resolve_threads(threads, chunks);
  const unsigned nodes = std::max(
      1u, std::min<unsigned>(fold_nodes == 0 ? numa_fold_nodes() : fold_nodes,
                             static_cast<unsigned>(chunks)));
  // Node r owns the contiguous chunk range [chunks*r/nodes,
  // chunks*(r+1)/nodes) — the same arithmetic for claiming and for
  // folding, and a pure function of (chunks, nodes).
  const auto range_begin = [&](unsigned r) { return chunks * r / nodes; };
  const auto range_end = [&](unsigned r) { return chunks * (r + 1) / nodes; };
  const auto cursors = std::make_unique<std::atomic<std::size_t>[]>(nodes);
  for (unsigned r = 0; r < nodes; ++r) cursors[r].store(range_begin(r));

  const auto work_start = Clock::now();
  detail::run_workers(t, [&](unsigned worker) {
    const unsigned home = numa_node_for_worker(worker, nodes);
    // Claims the next chunk: home range first, then steal (ascending
    // wrap-around). Assignment is racy; results only key off the chunk id.
    const auto next_chunk = [&]() -> std::size_t {
      for (unsigned pass = 0; pass < nodes; ++pass) {
        const unsigned r = (home + pass) % nodes;
        const std::size_t c =
            cursors[r].fetch_add(1, std::memory_order_relaxed);
        if (c < range_end(r)) return c;
      }
      return chunks;
    };
    std::size_t c = next_chunk();
    if (c >= chunks) return;  // nothing left: skip the state construction
    auto state = make_state();
    for (; c < chunks; c = next_chunk()) {
      const std::size_t begin = c * chunk_len;
      const std::size_t end = std::min(n, begin + chunk_len);
      partial[c].emplace(make_acc());
      chunk_fn(state, *partial[c], begin, end);
    }
  });
  const auto work_end = Clock::now();

  if (nodes <= 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      merge(total, *partial[c]);
    }
  } else {
    // Socket-local pre-fold: node r's range folds (ascending) into one
    // partial, by a worker pinned to node r; node partials then fold in
    // ascending node order. The shape depends only on (chunks, nodes).
    std::vector<std::optional<Acc>> node_partial(nodes);
    detail::run_workers(std::min<unsigned>(t, nodes), [&](unsigned r) {
      for (unsigned range = r; range < nodes;
           range += std::min<unsigned>(t, nodes)) {
        const std::size_t begin = range_begin(range);
        const std::size_t end = range_end(range);
        if (begin >= end) continue;
        Acc acc = std::move(*partial[begin]);
        for (std::size_t c = begin + 1; c < end; ++c) {
          merge(acc, *partial[c]);
        }
        node_partial[range].emplace(std::move(acc));
      }
    });
    for (unsigned r = 0; r < nodes; ++r) {
      if (node_partial[r]) merge(total, *node_partial[r]);
    }
  }
  if (timing != nullptr) {
    const auto fold_end = Clock::now();
    timing->work_seconds =
        std::chrono::duration<double>(work_end - work_start).count();
    timing->merge_seconds =
        std::chrono::duration<double>(fold_end - work_end).count();
  }
  return total;
}

/// Deterministic parallel reduction over [0, n) — the stateless variant:
/// identical chunking/merge discipline, `chunk_fn(acc, begin, end)`.
template <typename MakeAcc, typename ChunkFn, typename Merge>
auto parallel_chunked_reduce(std::size_t n, unsigned threads,
                             MakeAcc&& make_acc, ChunkFn&& chunk_fn,
                             Merge&& merge,
                             std::size_t chunk_len = kReduceChunk) {
  using Acc = decltype(make_acc());
  return parallel_chunked_reduce_stateful(
      n, threads, [] { return 0; }, std::forward<MakeAcc>(make_acc),
      [&chunk_fn](int, Acc& acc, std::size_t begin, std::size_t end) {
        chunk_fn(acc, begin, end);
      },
      std::forward<Merge>(merge), chunk_len);
}

}  // namespace cl
