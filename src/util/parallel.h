// parallel.h — deterministic sharded execution over index ranges.
//
// The project's parallelism contract is *bit-identical results for every
// thread count*, so experiments stay reproducible when scaled out:
//
//  * parallel_shards splits [0, n) into one contiguous chunk per worker.
//    Shard boundaries depend on the thread count, so callers must only use
//    it where results are recombined in index order (e.g. the trace
//    generator concatenates per-shard session vectors in shard order,
//    which equals content-id order for contiguous shards).
//
//  * parallel_chunked_reduce splits [0, n) into fixed-size chunks whose
//    boundaries depend only on n, hands chunks to workers, and merges the
//    per-chunk accumulators in ascending chunk order. Floating-point
//    reductions (RunningStats::merge, Kahan-free sums) therefore produce
//    the same bits at --threads 1 and --threads 64.
//
//  * parallel_chunked_reduce_stateful is the same reduction plus one
//    scratch object per worker (reusable event/peer buffers, a Matcher
//    instance), for chunk work with allocation-heavy inner loops — the
//    simulator's per-swarm sweep is the canonical user.
//
// Exceptions thrown inside workers are captured and rethrown on the
// calling thread (first one wins).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace cl {

/// Resolves a thread-count knob: 0 means "use all hardware threads".
/// Explicit values are capped at max(4 × hardware threads, 16) — past
/// that oversubscription only burns memory on stacks, and an absurd
/// request (--threads 100000) must not crash the process — and clamped
/// to [1, n] when n > 0.
[[nodiscard]] inline unsigned resolve_threads(unsigned requested,
                                              std::size_t n = 0) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  unsigned t = requested == 0 ? hw : requested;
  t = std::min(t, std::max(hw * 4, 16u));
  if (n > 0) {
    t = static_cast<unsigned>(
        std::min<std::size_t>(t, std::max<std::size_t>(1, n)));
  }
  return std::max(1u, t);
}

namespace detail {

/// Runs fn on `workers` std::threads (the calling thread doubles as
/// worker 0), propagating the first exception.
template <typename Fn>
void run_workers(unsigned workers, Fn&& fn) {
  if (workers <= 1) {
    fn(0u);
    return;
  }
  std::exception_ptr error;
  std::mutex error_mutex;
  auto guarded = [&](unsigned worker) {
    try {
      fn(worker);
    } catch (...) {
      const std::lock_guard lock(error_mutex);
      if (!error) error = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  try {
    for (unsigned w = 1; w < workers; ++w) {
      pool.emplace_back(guarded, w);
    }
  } catch (...) {
    // Thread creation failed (resource exhaustion): join what started —
    // joinable std::thread destructors would otherwise std::terminate.
    for (auto& t : pool) t.join();
    throw;
  }
  guarded(0u);
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace detail

/// Splits [0, n) into one contiguous half-open range per shard and calls
/// fn(shard, begin, end) concurrently on `threads` workers. Shard `s`
/// covers indices [s*n/T, (s+1)*n/T), so ranges ascend with the shard
/// index — recombining per-shard output in shard order preserves the
/// sequential index order.
template <typename Fn>
void parallel_shards(std::size_t n, unsigned threads, Fn&& fn) {
  const unsigned t = resolve_threads(threads, n);
  if (n == 0) return;
  if (t <= 1) {
    fn(0u, std::size_t{0}, n);
    return;
  }
  detail::run_workers(t, [&](unsigned shard) {
    const std::size_t begin = n * shard / t;
    const std::size_t end = n * (shard + 1) / t;
    if (begin < end) fn(shard, begin, end);
  });
}

/// Default chunk length of parallel_chunked_reduce. Small enough to load-
/// balance skewed work, large enough to amortise the merge.
inline constexpr std::size_t kReduceChunk = 2048;

/// Deterministic parallel reduction over [0, n) with per-worker scratch
/// state.
///
/// The range is cut into fixed-length chunks (boundaries depend only on n,
/// never on the thread count). Workers grab chunks from a shared atomic
/// cursor; each worker builds one `make_state()` scratch object the first
/// time it obtains a chunk, and folds every chunk it processes with
/// `chunk_fn(state, acc, begin, end)` into that chunk's fresh accumulator
/// from `make_acc()`; afterwards the per-chunk accumulators are folded
/// with `merge(total, chunk_acc)` in ascending chunk order on the calling
/// thread. The merged result is therefore bit-identical for every thread
/// count, including 1.
///
/// The worker state must be pure scratch (reusable buffers, matcher
/// instances, ...): which worker processes which chunk is racy, so any
/// state that influenced the accumulators would break determinism.
template <typename MakeState, typename MakeAcc, typename ChunkFn,
          typename Merge>
auto parallel_chunked_reduce_stateful(std::size_t n, unsigned threads,
                                      MakeState&& make_state,
                                      MakeAcc&& make_acc, ChunkFn&& chunk_fn,
                                      Merge&& merge,
                                      std::size_t chunk_len = kReduceChunk) {
  using Acc = decltype(make_acc());
  Acc total = make_acc();
  if (n == 0) return total;
  chunk_len = std::max<std::size_t>(1, chunk_len);
  const std::size_t chunks = (n + chunk_len - 1) / chunk_len;
  std::vector<Acc> partial;
  partial.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) partial.push_back(make_acc());

  const unsigned t = resolve_threads(threads, chunks);
  std::atomic<std::size_t> cursor{0};
  detail::run_workers(t, [&](unsigned) {
    std::size_t c = cursor.fetch_add(1, std::memory_order_relaxed);
    if (c >= chunks) return;  // nothing left: skip the state construction
    auto state = make_state();
    for (; c < chunks; c = cursor.fetch_add(1, std::memory_order_relaxed)) {
      const std::size_t begin = c * chunk_len;
      const std::size_t end = std::min(n, begin + chunk_len);
      chunk_fn(state, partial[c], begin, end);
    }
  });
  for (std::size_t c = 0; c < chunks; ++c) {
    merge(total, partial[c]);
  }
  return total;
}

/// Deterministic parallel reduction over [0, n) — the stateless variant:
/// identical chunking/merge discipline, `chunk_fn(acc, begin, end)`.
template <typename MakeAcc, typename ChunkFn, typename Merge>
auto parallel_chunked_reduce(std::size_t n, unsigned threads,
                             MakeAcc&& make_acc, ChunkFn&& chunk_fn,
                             Merge&& merge,
                             std::size_t chunk_len = kReduceChunk) {
  using Acc = decltype(make_acc());
  return parallel_chunked_reduce_stateful(
      n, threads, [] { return 0; }, std::forward<MakeAcc>(make_acc),
      [&chunk_fn](int, Acc& acc, std::size_t begin, std::size_t end) {
        chunk_fn(acc, begin, end);
      },
      std::forward<Merge>(merge), chunk_len);
}

}  // namespace cl
