#include "util/args.h"

#include <charconv>

#include "util/error.h"

namespace cl {

Args::Args(std::vector<std::string> argv, std::set<std::string> booleans) {
  std::size_t i = 0;
  if (!argv.empty() && argv[0].rfind("--", 0) != 0) {
    command_ = argv[0];
    i = 1;
  }
  for (; i < argv.size(); ++i) {
    const std::string& token = argv[i];
    if (token.rfind("--", 0) != 0) {
      throw ParseError("unexpected positional argument: '" + token + "'");
    }
    std::string name = token.substr(2);
    std::string value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (booleans.contains(name)) {
      value = "true";
    } else {
      if (i + 1 >= argv.size()) {
        throw ParseError("flag --" + name + " expects a value");
      }
      value = argv[++i];
    }
    if (name.empty()) throw ParseError("empty flag name");
    if (values_.contains(name)) {
      throw ParseError("duplicate flag --" + name);
    }
    values_[name] = std::move(value);
  }
}

Args Args::parse(int argc, const char* const* argv,
                 std::set<std::string> boolean_flags) {
  std::vector<std::string> tokens;
  tokens.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  return Args(std::move(tokens), std::move(boolean_flags));
}

bool Args::has(const std::string& name) const {
  if (values_.contains(name)) {
    read_.insert(name);
    return true;
  }
  return false;
}

std::optional<std::string> Args::get(const std::string& name) const {
  if (const auto it = values_.find(name); it != values_.end()) {
    read_.insert(name);
    return it->second;
  }
  return std::nullopt;
}

std::string Args::get_or(const std::string& name,
                         const std::string& fallback) const {
  return get(name).value_or(fallback);
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto text = get(name);
  if (!text) return fallback;
  double v = 0;
  const auto res =
      std::from_chars(text->data(), text->data() + text->size(), v);
  if (res.ec != std::errc() || res.ptr != text->data() + text->size()) {
    throw ParseError("flag --" + name + " expects a number, got '" + *text +
                     "'");
  }
  return v;
}

std::int64_t Args::get_int(const std::string& name,
                           std::int64_t fallback) const {
  const auto text = get(name);
  if (!text) return fallback;
  std::int64_t v = 0;
  const auto res =
      std::from_chars(text->data(), text->data() + text->size(), v);
  if (res.ec != std::errc() || res.ptr != text->data() + text->size()) {
    throw ParseError("flag --" + name + " expects an integer, got '" + *text +
                     "'");
  }
  return v;
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    if (!read_.contains(name)) out.push_back(name);
  }
  return out;
}

}  // namespace cl
