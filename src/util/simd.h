// simd.h — portable fixed-width SIMD lane wrappers for the sweep kernels.
//
// One backend is selected at compile time from the target ISA:
//
//   * AVX2   — 4×f64 / 8×u32 / 4×u64 (`__AVX2__`, e.g. -march=x86-64-v3)
//   * SSE2   — 2×f64 / 4×u32 / 2×u64 (the x86-64 baseline, always on)
//   * NEON   — 2×f64 / 4×u32 / 2×u64 (`__aarch64__`)
//   * scalar — 1 lane of each; the always-correct reference, also what
//              `-DCL_SIMD_FORCE_SCALAR=1` forces on any target.
//
// At runtime `CL_SIMD=off` in the environment disables the intrinsic
// kernels (`active()` returns false); callers dispatch per call site to
// the scalar twin, which computes the same floating-point operation
// sequence — see DESIGN.md §"SIMD kernels" for the lane-width-
// independence rule that makes every backend bit-identical.
//
// The wrappers expose exactly the operation set the kernels in
// sim/sweep_kernels.h need — this is not a general vector library:
//
//   * VF64 — load/store (aligned + unaligned), broadcast, +,-,*,/,
//     max, `ge_mask`/`mask_and` (branchless `x >= t ? v : 0` selects),
//     per-lane extract, and an index-array gather (native on AVX2,
//     per-lane loads elsewhere).
//   * VU32 — load/store, broadcast, unsigned max and equality
//     (SSE2 has no `pmaxud`: emulated with a sign-bias compare), AND,
//     per-lane extract, index-array gather, and a widening u32→f64
//     convert of the low VF64-width lanes (exact: ids and bucket
//     counts are < 2³¹).
//   * VU64 — load/store, broadcast, +, shift-left, OR, per-lane
//     extract; enough to build packed sort keys from window indices.
//
// Alignment: `aligned_vector<T>` (a std::vector on AlignedAllocator)
// gives scratch arrays 64-byte alignment — one cache line, and the
// widest load any backend issues — so kernels can use aligned loads on
// their own scratch and unaligned loads only on caller memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string_view>
#include <vector>

#if defined(CL_SIMD_FORCE_SCALAR)
#define CL_SIMD_SCALAR 1
#elif defined(__AVX2__)
#define CL_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define CL_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define CL_SIMD_NEON 1
#include <arm_neon.h>
#else
#define CL_SIMD_SCALAR 1
#endif

namespace cl::simd {

#if defined(CL_SIMD_AVX2)
inline constexpr const char* kBackendName = "avx2";
inline constexpr bool kHasSimd = true;
inline constexpr std::size_t kF64Lanes = 4;
#elif defined(CL_SIMD_SSE2)
inline constexpr const char* kBackendName = "sse2";
inline constexpr bool kHasSimd = true;
inline constexpr std::size_t kF64Lanes = 2;
#elif defined(CL_SIMD_NEON)
inline constexpr const char* kBackendName = "neon";
inline constexpr bool kHasSimd = true;
inline constexpr std::size_t kF64Lanes = 2;
#else
inline constexpr const char* kBackendName = "scalar";
inline constexpr bool kHasSimd = false;
inline constexpr std::size_t kF64Lanes = 1;
#endif

inline constexpr std::size_t kU32Lanes = kF64Lanes * 2;
inline constexpr std::size_t kU64Lanes = kF64Lanes;

/// Scratch-array alignment: one cache line, and ≥ the widest vector any
/// backend loads.
inline constexpr std::size_t kAlign = 64;

/// Runtime opt-out: `CL_SIMD=off` forces the scalar kernel twins even in
/// an intrinsic build (read per call — tests toggle it mid-process).
inline bool runtime_enabled() {
  const char* env = std::getenv("CL_SIMD");
  return env == nullptr || std::string_view(env) != "off";
}

/// True when intrinsic kernels should run: an intrinsic backend was
/// compiled in and the environment does not veto it.
inline bool active() { return kHasSimd && runtime_enabled(); }

/// Software-prefetch hint for the gather kernels: swarm indices stride
/// tens of sessions apart, so nearly every column access opens a fresh
/// cache line in a pattern the hardware prefetcher cannot predict — but
/// the kernel knows the next indices well in advance. Purely a hint; no
/// effect on results.
inline void prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// How many elements ahead the gather kernels prefetch — far enough to
/// cover a memory round-trip at a few cycles per element, near enough
/// that the lines still sit in L1 when the loop arrives.
inline constexpr std::size_t kPrefetchAhead = 16;

/// Minimal over-aligned allocator (C++17 aligned operator new) so
/// std::vector scratch starts on a 64-byte boundary.
template <typename T, std::size_t Align = kAlign>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0);

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };
  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

// ---------------------------------------------------------------------------
// VF64 — kF64Lanes × double
// ---------------------------------------------------------------------------

#if defined(CL_SIMD_AVX2)

struct VF64 {
  __m256d v;
  static constexpr std::size_t kLanes = 4;

  static VF64 zero() { return {_mm256_setzero_pd()}; }
  static VF64 set1(double x) { return {_mm256_set1_pd(x)}; }
  static VF64 load(const double* p) { return {_mm256_load_pd(p)}; }
  static VF64 loadu(const double* p) { return {_mm256_loadu_pd(p)}; }
  void store(double* p) const { _mm256_store_pd(p, v); }
  void storeu(double* p) const { _mm256_storeu_pd(p, v); }

  /// base[idx[0..3]] — native gather. Indices are treated as *signed*
  /// 32-bit by the instruction; callers guard idx < 2³¹.
  static VF64 gather(const double* base, const std::uint32_t* idx) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
    return {_mm256_i32gather_pd(base, vi, 8)};
  }

  friend VF64 operator+(VF64 a, VF64 b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend VF64 operator-(VF64 a, VF64 b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend VF64 operator*(VF64 a, VF64 b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend VF64 operator/(VF64 a, VF64 b) { return {_mm256_div_pd(a.v, b.v)}; }
  VF64& operator+=(VF64 b) {
    v = _mm256_add_pd(v, b.v);
    return *this;
  }
  static VF64 max(VF64 a, VF64 b) { return {_mm256_max_pd(a.v, b.v)}; }

  /// All-ones lane mask where a > b.
  static VF64 gt_mask(VF64 a, VF64 b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
  }
  /// Lane-wise a & mask (mask lanes are all-ones / all-zeros).
  static VF64 mask_and(VF64 a, VF64 mask) {
    return {_mm256_and_pd(a.v, mask.v)};
  }

  [[nodiscard]] double lane(std::size_t i) const {
    alignas(32) double tmp[4];
    _mm256_store_pd(tmp, v);
    return tmp[i];
  }
};

#elif defined(CL_SIMD_SSE2)

struct VF64 {
  __m128d v;
  static constexpr std::size_t kLanes = 2;

  static VF64 zero() { return {_mm_setzero_pd()}; }
  static VF64 set1(double x) { return {_mm_set1_pd(x)}; }
  static VF64 load(const double* p) { return {_mm_load_pd(p)}; }
  static VF64 loadu(const double* p) { return {_mm_loadu_pd(p)}; }
  void store(double* p) const { _mm_store_pd(p, v); }
  void storeu(double* p) const { _mm_storeu_pd(p, v); }

  /// SSE2 has no gather: two scalar loads packed.
  static VF64 gather(const double* base, const std::uint32_t* idx) {
    return {_mm_set_pd(base[idx[1]], base[idx[0]])};
  }

  friend VF64 operator+(VF64 a, VF64 b) { return {_mm_add_pd(a.v, b.v)}; }
  friend VF64 operator-(VF64 a, VF64 b) { return {_mm_sub_pd(a.v, b.v)}; }
  friend VF64 operator*(VF64 a, VF64 b) { return {_mm_mul_pd(a.v, b.v)}; }
  friend VF64 operator/(VF64 a, VF64 b) { return {_mm_div_pd(a.v, b.v)}; }
  VF64& operator+=(VF64 b) {
    v = _mm_add_pd(v, b.v);
    return *this;
  }
  static VF64 max(VF64 a, VF64 b) { return {_mm_max_pd(a.v, b.v)}; }

  static VF64 gt_mask(VF64 a, VF64 b) { return {_mm_cmpgt_pd(a.v, b.v)}; }
  static VF64 mask_and(VF64 a, VF64 mask) {
    return {_mm_and_pd(a.v, mask.v)};
  }

  [[nodiscard]] double lane(std::size_t i) const {
    alignas(16) double tmp[2];
    _mm_store_pd(tmp, v);
    return tmp[i];
  }
};

#elif defined(CL_SIMD_NEON)

struct VF64 {
  float64x2_t v;
  static constexpr std::size_t kLanes = 2;

  static VF64 zero() { return {vdupq_n_f64(0.0)}; }
  static VF64 set1(double x) { return {vdupq_n_f64(x)}; }
  static VF64 load(const double* p) { return {vld1q_f64(p)}; }
  static VF64 loadu(const double* p) { return {vld1q_f64(p)}; }
  void store(double* p) const { vst1q_f64(p, v); }
  void storeu(double* p) const { vst1q_f64(p, v); }

  static VF64 gather(const double* base, const std::uint32_t* idx) {
    const double lanes[2] = {base[idx[0]], base[idx[1]]};
    return {vld1q_f64(lanes)};
  }

  friend VF64 operator+(VF64 a, VF64 b) { return {vaddq_f64(a.v, b.v)}; }
  friend VF64 operator-(VF64 a, VF64 b) { return {vsubq_f64(a.v, b.v)}; }
  friend VF64 operator*(VF64 a, VF64 b) { return {vmulq_f64(a.v, b.v)}; }
  friend VF64 operator/(VF64 a, VF64 b) { return {vdivq_f64(a.v, b.v)}; }
  VF64& operator+=(VF64 b) {
    v = vaddq_f64(v, b.v);
    return *this;
  }
  static VF64 max(VF64 a, VF64 b) { return {vmaxq_f64(a.v, b.v)}; }

  static VF64 gt_mask(VF64 a, VF64 b) {
    return {vreinterpretq_f64_u64(vcgtq_f64(a.v, b.v))};
  }
  static VF64 mask_and(VF64 a, VF64 mask) {
    return {vreinterpretq_f64_u64(vandq_u64(vreinterpretq_u64_f64(a.v),
                                            vreinterpretq_u64_f64(mask.v)))};
  }

  [[nodiscard]] double lane(std::size_t i) const {
    double tmp[2];
    vst1q_f64(tmp, v);
    return tmp[i];
  }
};

#else  // scalar

struct VF64 {
  double v;
  static constexpr std::size_t kLanes = 1;

  static VF64 zero() { return {0.0}; }
  static VF64 set1(double x) { return {x}; }
  static VF64 load(const double* p) { return {*p}; }
  static VF64 loadu(const double* p) { return {*p}; }
  void store(double* p) const { *p = v; }
  void storeu(double* p) const { *p = v; }
  static VF64 gather(const double* base, const std::uint32_t* idx) {
    return {base[idx[0]]};
  }

  friend VF64 operator+(VF64 a, VF64 b) { return {a.v + b.v}; }
  friend VF64 operator-(VF64 a, VF64 b) { return {a.v - b.v}; }
  friend VF64 operator*(VF64 a, VF64 b) { return {a.v * b.v}; }
  friend VF64 operator/(VF64 a, VF64 b) { return {a.v / b.v}; }
  VF64& operator+=(VF64 b) {
    v += b.v;
    return *this;
  }
  static VF64 max(VF64 a, VF64 b) { return {a.v > b.v ? a.v : b.v}; }
  static VF64 gt_mask(VF64 a, VF64 b) {
    std::uint64_t m = a.v > b.v ? ~std::uint64_t{0} : 0;
    double d;
    __builtin_memcpy(&d, &m, sizeof d);
    return {d};
  }
  static VF64 mask_and(VF64 a, VF64 mask) {
    std::uint64_t x, m;
    __builtin_memcpy(&x, &a.v, sizeof x);
    __builtin_memcpy(&m, &mask.v, sizeof m);
    x &= m;
    double d;
    __builtin_memcpy(&d, &x, sizeof d);
    return {d};
  }
  [[nodiscard]] double lane(std::size_t) const { return v; }
};

#endif

// ---------------------------------------------------------------------------
// VU32 — kU32Lanes × uint32
// ---------------------------------------------------------------------------

#if defined(CL_SIMD_AVX2)

struct VU32 {
  __m256i v;
  static constexpr std::size_t kLanes = 8;

  static VU32 set1(std::uint32_t x) {
    return {_mm256_set1_epi32(static_cast<int>(x))};
  }
  static VU32 loadu(const std::uint32_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void storeu(std::uint32_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  /// base[idx[0..7]] — native gather (signed-index caveat as VF64).
  static VU32 gather(const std::uint32_t* base, const std::uint32_t* idx) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return {_mm256_i32gather_epi32(reinterpret_cast<const int*>(base), vi, 4)};
  }

  static VU32 max(VU32 a, VU32 b) { return {_mm256_max_epu32(a.v, b.v)}; }
  static VU32 cmpeq(VU32 a, VU32 b) { return {_mm256_cmpeq_epi32(a.v, b.v)}; }
  friend VU32 operator&(VU32 a, VU32 b) {
    return {_mm256_and_si256(a.v, b.v)};
  }

  /// True when every lane is all-ones (e.g. an accumulated cmpeq mask).
  [[nodiscard]] bool all_ones() const {
    return _mm256_movemask_epi8(v) == -1;
  }
  [[nodiscard]] std::uint32_t lane(std::size_t i) const {
    alignas(32) std::uint32_t tmp[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    return tmp[i];
  }
  /// Exact widening convert of lanes [lo, lo+VF64::kLanes) to doubles
  /// (values < 2³¹, so the signed epi32 convert is exact).
  [[nodiscard]] VF64 to_f64(std::size_t lo) const {
    const __m128i half =
        lo == 0 ? _mm256_castsi256_si128(v) : _mm256_extracti128_si256(v, 1);
    return {_mm256_cvtepi32_pd(half)};
  }
};

#elif defined(CL_SIMD_SSE2)

struct VU32 {
  __m128i v;
  static constexpr std::size_t kLanes = 4;

  static VU32 set1(std::uint32_t x) {
    return {_mm_set1_epi32(static_cast<int>(x))};
  }
  static VU32 loadu(const std::uint32_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  void storeu(std::uint32_t* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static VU32 gather(const std::uint32_t* base, const std::uint32_t* idx) {
    return {_mm_set_epi32(static_cast<int>(base[idx[3]]),
                          static_cast<int>(base[idx[2]]),
                          static_cast<int>(base[idx[1]]),
                          static_cast<int>(base[idx[0]]))};
  }

  /// SSE2 has no unsigned max: bias both operands by 0x80000000 and use
  /// the signed compare to build a blend mask.
  static VU32 max(VU32 a, VU32 b) {
    const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
    const __m128i gt =
        _mm_cmpgt_epi32(_mm_xor_si128(a.v, bias), _mm_xor_si128(b.v, bias));
    return {_mm_or_si128(_mm_and_si128(gt, a.v), _mm_andnot_si128(gt, b.v))};
  }
  static VU32 cmpeq(VU32 a, VU32 b) { return {_mm_cmpeq_epi32(a.v, b.v)}; }
  friend VU32 operator&(VU32 a, VU32 b) { return {_mm_and_si128(a.v, b.v)}; }

  [[nodiscard]] bool all_ones() const { return _mm_movemask_epi8(v) == 0xFFFF; }
  [[nodiscard]] std::uint32_t lane(std::size_t i) const {
    alignas(16) std::uint32_t tmp[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), v);
    return tmp[i];
  }
  [[nodiscard]] VF64 to_f64(std::size_t lo) const {
    const __m128i half =
        lo == 0 ? v : _mm_shuffle_epi32(v, _MM_SHUFFLE(3, 2, 3, 2));
    return {_mm_cvtepi32_pd(half)};
  }
};

#elif defined(CL_SIMD_NEON)

struct VU32 {
  uint32x4_t v;
  static constexpr std::size_t kLanes = 4;

  static VU32 set1(std::uint32_t x) { return {vdupq_n_u32(x)}; }
  static VU32 loadu(const std::uint32_t* p) { return {vld1q_u32(p)}; }
  void storeu(std::uint32_t* p) const { vst1q_u32(p, v); }
  static VU32 gather(const std::uint32_t* base, const std::uint32_t* idx) {
    const std::uint32_t lanes[4] = {base[idx[0]], base[idx[1]], base[idx[2]],
                                    base[idx[3]]};
    return {vld1q_u32(lanes)};
  }

  static VU32 max(VU32 a, VU32 b) { return {vmaxq_u32(a.v, b.v)}; }
  static VU32 cmpeq(VU32 a, VU32 b) { return {vceqq_u32(a.v, b.v)}; }
  friend VU32 operator&(VU32 a, VU32 b) { return {vandq_u32(a.v, b.v)}; }

  [[nodiscard]] bool all_ones() const {
    return vminvq_u32(v) == ~std::uint32_t{0};
  }
  [[nodiscard]] std::uint32_t lane(std::size_t i) const {
    std::uint32_t tmp[4];
    vst1q_u32(tmp, v);
    return tmp[i];
  }
  [[nodiscard]] VF64 to_f64(std::size_t lo) const {
    const uint32x2_t half = lo == 0 ? vget_low_u32(v) : vget_high_u32(v);
    return {vcvtq_f64_u64(vmovl_u32(half))};
  }
};

#else  // scalar

struct VU32 {
  std::uint32_t v;
  static constexpr std::size_t kLanes = 1;

  static VU32 set1(std::uint32_t x) { return {x}; }
  static VU32 loadu(const std::uint32_t* p) { return {*p}; }
  void storeu(std::uint32_t* p) const { *p = v; }
  static VU32 gather(const std::uint32_t* base, const std::uint32_t* idx) {
    return {base[idx[0]]};
  }
  static VU32 max(VU32 a, VU32 b) { return {a.v > b.v ? a.v : b.v}; }
  static VU32 cmpeq(VU32 a, VU32 b) {
    return {a.v == b.v ? ~std::uint32_t{0} : 0};
  }
  friend VU32 operator&(VU32 a, VU32 b) { return {a.v & b.v}; }
  [[nodiscard]] bool all_ones() const { return v == ~std::uint32_t{0}; }
  [[nodiscard]] std::uint32_t lane(std::size_t) const { return v; }
  [[nodiscard]] VF64 to_f64(std::size_t) const {
    return {static_cast<double>(v)};
  }
};

#endif

// ---------------------------------------------------------------------------
// VU64 — kU64Lanes × uint64 (packed sort-key construction)
// ---------------------------------------------------------------------------

#if defined(CL_SIMD_AVX2)

struct VU64 {
  __m256i v;
  static constexpr std::size_t kLanes = 4;

  static VU64 set1(std::uint64_t x) {
    return {_mm256_set1_epi64x(static_cast<long long>(x))};
  }
  static VU64 loadu(const std::uint64_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void storeu(std::uint64_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  friend VU64 operator+(VU64 a, VU64 b) {
    return {_mm256_add_epi64(a.v, b.v)};
  }
  friend VU64 operator|(VU64 a, VU64 b) {
    return {_mm256_or_si256(a.v, b.v)};
  }
  [[nodiscard]] VU64 shl(int n) const { return {_mm256_slli_epi64(v, n)}; }
  [[nodiscard]] std::uint64_t lane(std::size_t i) const {
    alignas(32) std::uint64_t tmp[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    return tmp[i];
  }
};

#elif defined(CL_SIMD_SSE2)

struct VU64 {
  __m128i v;
  static constexpr std::size_t kLanes = 2;

  static VU64 set1(std::uint64_t x) {
    return {_mm_set1_epi64x(static_cast<long long>(x))};
  }
  static VU64 loadu(const std::uint64_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  void storeu(std::uint64_t* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  friend VU64 operator+(VU64 a, VU64 b) { return {_mm_add_epi64(a.v, b.v)}; }
  friend VU64 operator|(VU64 a, VU64 b) { return {_mm_or_si128(a.v, b.v)}; }
  [[nodiscard]] VU64 shl(int n) const { return {_mm_slli_epi64(v, n)}; }
  [[nodiscard]] std::uint64_t lane(std::size_t i) const {
    alignas(16) std::uint64_t tmp[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), v);
    return tmp[i];
  }
};

#elif defined(CL_SIMD_NEON)

struct VU64 {
  uint64x2_t v;
  static constexpr std::size_t kLanes = 2;

  static VU64 set1(std::uint64_t x) { return {vdupq_n_u64(x)}; }
  static VU64 loadu(const std::uint64_t* p) { return {vld1q_u64(p)}; }
  void storeu(std::uint64_t* p) const { vst1q_u64(p, v); }
  friend VU64 operator+(VU64 a, VU64 b) { return {vaddq_u64(a.v, b.v)}; }
  friend VU64 operator|(VU64 a, VU64 b) { return {vorrq_u64(a.v, b.v)}; }
  [[nodiscard]] VU64 shl(int n) const {
    return {vshlq_u64(v, vdupq_n_s64(n))};
  }
  [[nodiscard]] std::uint64_t lane(std::size_t i) const {
    std::uint64_t tmp[2];
    vst1q_u64(tmp, v);
    return tmp[i];
  }
};

#else  // scalar

struct VU64 {
  std::uint64_t v;
  static constexpr std::size_t kLanes = 1;

  static VU64 set1(std::uint64_t x) { return {x}; }
  static VU64 loadu(const std::uint64_t* p) { return {*p}; }
  void storeu(std::uint64_t* p) const { *p = v; }
  friend VU64 operator+(VU64 a, VU64 b) { return {a.v + b.v}; }
  friend VU64 operator|(VU64 a, VU64 b) { return {a.v | b.v}; }
  [[nodiscard]] VU64 shl(int n) const { return {v << n}; }
  [[nodiscard]] std::uint64_t lane(std::size_t) const { return v; }
};

#endif

}  // namespace cl::simd
