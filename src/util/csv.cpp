#include "util/csv.h"

#include <charconv>
#include <istream>

#include "util/error.h"

namespace cl {

CsvWriter::CsvWriter(std::ostream& out, const std::vector<std::string>& header)
    : out_(out), cols_(header.size()) {
  CL_EXPECTS(!header.empty());
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << header[i];
  }
  out_ << '\n';
}

void CsvWriter::begin_row() { col_in_row_ = 0; }

void CsvWriter::end_row() {
  CL_ENSURES(col_in_row_ == cols_);
  out_ << '\n';
  ++rows_;
}

void CsvWriter::field(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  field_raw(std::string(buf, res.ptr));
}

void CsvWriter::field(const std::string& v) { field_raw(v); }

void CsvWriter::field(const char* v) { field_raw(std::string(v)); }

void CsvWriter::field_raw(const std::string& text) {
  CL_EXPECTS(col_in_row_ < cols_);
  if (col_in_row_) out_ << ',';
  out_ << text;
  ++col_in_row_;
}

std::vector<std::string> split_csv_line(std::string_view line) {
  // A CRLF line ending is fine; any other carriage return is data
  // corruption and rejected below rather than silently stripped.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::vector<std::string> out;
  std::string cur;
  bool quoted = false;          // inside a quoted field
  bool closed = false;          // current field was quoted and has closed
  bool at_field_start = true;   // nothing consumed for the current field yet
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
          closed = true;
        }
      } else {
        cur += ch;
      }
      continue;
    }
    if (ch == ',') {
      out.push_back(std::move(cur));
      cur.clear();
      closed = false;
      at_field_start = true;
      continue;
    }
    // Once a quoted field has closed, only a separator may follow —
    // `"100"5` must not silently parse as `1005`.
    if (closed) {
      throw ParseError("garbage after closing quote in CSV field");
    }
    if (ch == '"') {
      if (!at_field_start) {
        throw ParseError("stray quote inside unquoted CSV field");
      }
      quoted = true;
      at_field_start = false;
      continue;
    }
    if (ch == '\r') {
      throw ParseError("stray carriage return inside CSV line");
    }
    cur += ch;
    at_field_start = false;
  }
  if (quoted) throw ParseError("unterminated quoted CSV field");
  out.push_back(std::move(cur));
  return out;
}

std::size_t CsvDocument::column(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw ParseError("CSV column not found: " + std::string(name));
}

CsvDocument read_csv(std::istream& in) {
  CsvDocument doc;
  std::string line;
  if (!std::getline(in, line)) throw ParseError("empty CSV document");
  doc.header = split_csv_line(line);
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    auto fields = split_csv_line(line);
    if (fields.size() != doc.header.size()) {
      throw ParseError("ragged CSV row at line " + std::to_string(lineno) +
                       ": expected " + std::to_string(doc.header.size()) +
                       " fields, got " + std::to_string(fields.size()));
    }
    doc.rows.push_back(std::move(fields));
  }
  return doc;
}

}  // namespace cl
