// json_writer.h — deterministic JSON output.
//
// Extracted from bench/bench_json.h so library code (the experiment
// runner's per-cell BENCH_*.json files and manifest) and the bench
// harness share one writer. No third-party JSON dependency: this covers
// exactly the subset needed — insertion-ordered objects, arrays of
// numbers/strings/objects, strings, finite/non-finite doubles — with
// deterministic formatting, so identical inputs render byte-identical
// documents.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace cl {

/// Escapes a string for inclusion in a JSON document (quotes included).
inline std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Renders a double as a JSON number (round-trip precision); non-finite
/// values become null, as JSON has no representation for them.
inline std::string json_number(double x) {
  if (!std::isfinite(x)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  return buf;
}

/// Insertion-ordered JSON object builder.
class JsonObject {
 public:
  void set(const std::string& key, double value) {
    put(key, json_number(value));
  }
  void set(const std::string& key, std::int64_t value) {
    put(key, std::to_string(value));
  }
  void set(const std::string& key, std::size_t value) {
    put(key, std::to_string(value));
  }
  void set(const std::string& key, const char* value) {
    put(key, json_quote(value));
  }
  void set(const std::string& key, const std::string& value) {
    put(key, json_quote(value));
  }
  void set(const std::string& key, const JsonObject& value) {
    put(key, value.render());
  }
  void set(const std::string& key, const std::vector<double>& values) {
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) out += ", ";
      out += json_number(values[i]);
    }
    out += ']';
    put(key, out);
  }
  void set(const std::string& key, const std::vector<std::string>& values) {
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) out += ", ";
      out += json_quote(values[i]);
    }
    out += ']';
    put(key, out);
  }
  void set(const std::string& key, const std::vector<JsonObject>& values) {
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) out += ", ";
      out += values[i].render();
    }
    out += ']';
    put(key, out);
  }

  [[nodiscard]] bool empty() const { return fields_.empty(); }

  [[nodiscard]] std::string render() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i) out += ", ";
      out += json_quote(fields_[i].first) + ": " + fields_[i].second;
    }
    out += '}';
    return out;
  }

 private:
  void put(const std::string& key, std::string rendered) {
    for (auto& field : fields_) {
      if (field.first == key) {
        field.second = std::move(rendered);
        return;
      }
    }
    fields_.emplace_back(key, std::move(rendered));
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace cl
