// args.h — minimal command-line argument parsing for the CLI tool.
//
// Supports `--flag value`, `--flag=value` and boolean `--flag` switches,
// plus one leading positional subcommand. Unknown flags are an error (the
// CLI should never silently ignore a typo that changes an experiment).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace cl {

/// Parsed command line: one subcommand plus string-valued options.
class Args {
 public:
  /// Parses argv (excluding argv[0]). `boolean_flags` lists switches that
  /// take no value. Throws cl::ParseError on malformed input.
  Args(std::vector<std::string> argv, std::set<std::string> boolean_flags);

  /// Convenience: parse from main()'s argc/argv.
  [[nodiscard]] static Args parse(int argc, const char* const* argv,
                                  std::set<std::string> boolean_flags = {});

  /// The leading positional word ("" when none was given).
  [[nodiscard]] const std::string& command() const { return command_; }

  /// True when --name was present (boolean or valued).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of --name, or std::nullopt.
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;

  /// Value of --name or `fallback`.
  [[nodiscard]] std::string get_or(const std::string& name,
                                   const std::string& fallback) const;

  /// Numeric accessors; throw cl::ParseError on non-numeric input.
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;

  /// Flags that were parsed but never read — lets the CLI reject typos.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> read_;
};

}  // namespace cl
