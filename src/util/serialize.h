// serialize.h — endian-safe fixed-width serialization primitives.
//
// The binary trace format (trace/trace_binary.h) is defined as
// little-endian on disk so files move between machines. These helpers
// spell every load/store as explicit byte arithmetic: on little-endian
// hosts compilers collapse them to single moves, and on big-endian hosts
// they perform the swap — no #ifdef forks, no reinterpret_cast aliasing.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>

namespace cl {

inline void store_u16_le(unsigned char* p, std::uint16_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
}

inline void store_u32_le(unsigned char* p, std::uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

inline void store_u64_le(unsigned char* p, std::uint64_t v) {
  store_u32_le(p, static_cast<std::uint32_t>(v));
  store_u32_le(p + 4, static_cast<std::uint32_t>(v >> 32));
}

/// Doubles travel as the little-endian bytes of their IEEE-754 bit
/// pattern — loads reproduce the exact value, including -0.0 and NaNs.
inline void store_f64_le(unsigned char* p, double v) {
  store_u64_le(p, std::bit_cast<std::uint64_t>(v));
}

[[nodiscard]] inline std::uint16_t load_u16_le(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

[[nodiscard]] inline std::uint32_t load_u32_le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

[[nodiscard]] inline std::uint64_t load_u64_le(const unsigned char* p) {
  return static_cast<std::uint64_t>(load_u32_le(p)) |
         (static_cast<std::uint64_t>(load_u32_le(p + 4)) << 32);
}

[[nodiscard]] inline double load_f64_le(const unsigned char* p) {
  return std::bit_cast<double>(load_u64_le(p));
}

/// Append variants for building serialized blocks in a std::string buffer
/// (the binary trace writer's unit of output).
inline void append_u32_le(std::string& out, std::uint32_t v) {
  unsigned char buf[4];
  store_u32_le(buf, v);
  out.append(reinterpret_cast<const char*>(buf), sizeof buf);
}

inline void append_u64_le(std::string& out, std::uint64_t v) {
  unsigned char buf[8];
  store_u64_le(buf, v);
  out.append(reinterpret_cast<const char*>(buf), sizeof buf);
}

inline void append_f64_le(std::string& out, double v) {
  append_u64_le(out, std::bit_cast<std::uint64_t>(v));
}

}  // namespace cl
