#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace cl {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ ? min_ : 0.0; }

double RunningStats::max() const { return n_ ? max_ : 0.0; }

double quantile_sorted(const std::vector<double>& sorted, double q) {
  CL_EXPECTS(!sorted.empty());
  CL_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(std::vector<double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  RunningStats rs;
  for (double x : xs) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = xs.front();
  s.max = xs.back();
  s.p25 = quantile_sorted(xs, 0.25);
  s.median = quantile_sorted(xs, 0.50);
  s.p75 = quantile_sorted(xs, 0.75);
  s.p90 = quantile_sorted(xs, 0.90);
  s.p99 = quantile_sorted(xs, 0.99);
  return s;
}

double mean_abs_relative_error(const std::vector<double>& value,
                               const std::vector<double>& reference,
                               double eps) {
  CL_EXPECTS(value.size() == reference.size());
  double sum = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (std::fabs(reference[i]) < eps) continue;
    sum += std::fabs(value[i] - reference[i]) / std::fabs(reference[i]);
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  CL_EXPECTS(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  RunningStats sa, sb;
  for (double x : a) sa.add(x);
  for (double x : b) sb.add(x);
  const double ma = sa.mean(), mb = sb.mean();
  double cov = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
  }
  cov /= static_cast<double>(a.size() - 1);
  const double denom = sa.stddev() * sb.stddev();
  return denom > 0 ? cov / denom : 0.0;
}

}  // namespace cl
