#include "util/json.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace cl {

namespace {

[[nodiscard]] std::string describe_byte(char c) {
  if (std::isprint(static_cast<unsigned char>(c))) {
    return std::string("'") + c + "'";
  }
  char buf[16];
  std::snprintf(buf, sizeof buf, "byte 0x%02x",
                static_cast<unsigned char>(c));
  return buf;
}

}  // namespace

/// Recursive-descent parser over one in-memory document.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  [[nodiscard]] JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ < text_.size()) {
      fail("trailing content after the JSON document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("JSON parse error at line " + std::to_string(line_) +
                     ", column " + std::to_string(column_) + ": " + message);
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else {
        return;
      }
    }
  }

  void expect(char wanted, const char* context) {
    if (at_end()) {
      fail(std::string("unexpected end of input (expected '") + wanted +
           "' " + context + ")");
    }
    if (peek() != wanted) {
      fail(std::string("expected '") + wanted + "' " + context + ", got " +
           describe_byte(peek()));
    }
    advance();
  }

  void expect_literal(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (at_end() || peek() != *p) {
        fail(std::string("invalid literal (expected \"") + literal + "\")");
      }
      advance();
    }
  }

  [[nodiscard]] JsonValue stamped(JsonValue::Kind kind) const {
    JsonValue v;
    v.kind_ = kind;
    v.line_ = line_;
    v.column_ = column_;
    return v;
  }

  [[nodiscard]] JsonValue parse_value() {
    skip_whitespace();
    if (at_end()) fail("unexpected end of input (expected a value)");
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': {
        JsonValue v = stamped(JsonValue::Kind::kBool);
        expect_literal("true");
        v.bool_ = true;
        return v;
      }
      case 'f': {
        JsonValue v = stamped(JsonValue::Kind::kBool);
        expect_literal("false");
        v.bool_ = false;
        return v;
      }
      case 'n': {
        JsonValue v = stamped(JsonValue::Kind::kNull);
        expect_literal("null");
        return v;
      }
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail("unexpected " + describe_byte(c) + " (expected a value)");
    }
  }

  [[nodiscard]] JsonValue parse_object() {
    JsonValue v = stamped(JsonValue::Kind::kObject);
    v.object_ =
        std::make_shared<std::vector<std::pair<std::string, JsonValue>>>();
    expect('{', "to open an object");
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      advance();
      return v;
    }
    while (true) {
      skip_whitespace();
      if (at_end() || peek() != '"') {
        fail("expected a quoted object key");
      }
      JsonValue key = parse_string();
      skip_whitespace();
      expect(':', "after an object key");
      v.object_->emplace_back(key.text_, parse_value());
      skip_whitespace();
      if (at_end()) fail("unexpected end of input inside an object");
      if (peek() == ',') {
        advance();
        continue;
      }
      expect('}', "to close an object");
      return v;
    }
  }

  [[nodiscard]] JsonValue parse_array() {
    JsonValue v = stamped(JsonValue::Kind::kArray);
    v.array_ = std::make_shared<std::vector<JsonValue>>();
    expect('[', "to open an array");
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      advance();
      return v;
    }
    while (true) {
      v.array_->push_back(parse_value());
      skip_whitespace();
      if (at_end()) fail("unexpected end of input inside an array");
      if (peek() == ',') {
        advance();
        continue;
      }
      expect(']', "to close an array");
      return v;
    }
  }

  [[nodiscard]] JsonValue parse_string() {
    JsonValue v = stamped(JsonValue::Kind::kString);
    expect('"', "to open a string");
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      const char c = advance();
      if (c == '"') break;
      if (c == '\n') fail("raw newline inside a string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) fail("unterminated escape sequence");
      const char esc = advance();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (at_end()) fail("unterminated \\u escape");
            const char h = advance();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid hex digit in \\u escape");
            }
          }
          // Specs are ASCII-leaning config files; encode the code point
          // as UTF-8 (surrogate pairs are beyond what a spec needs and
          // are rejected rather than silently mangled).
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("\\u surrogate escapes are not supported");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail(std::string("invalid escape sequence \\") + esc);
      }
    }
    v.text_ = std::move(out);
    return v;
  }

  [[nodiscard]] JsonValue parse_number() {
    JsonValue v = stamped(JsonValue::Kind::kNumber);
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') advance();
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("invalid number (expected a digit)");
    }
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      advance();
    }
    if (!at_end() && peek() == '.') {
      advance();
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("invalid number (expected a digit after '.')");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        advance();
      }
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      advance();
      if (!at_end() && (peek() == '+' || peek() == '-')) advance();
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("invalid number (expected an exponent digit)");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        advance();
      }
    }
    v.text_ = text_.substr(start, pos_ - start);
    const auto res = std::from_chars(v.text_.data(),
                                     v.text_.data() + v.text_.size(),
                                     v.number_);
    if (res.ec != std::errc() ||
        res.ptr != v.text_.data() + v.text_.size()) {
      fail("number '" + v.text_ + "' is out of range");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

JsonValue JsonValue::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ParseError("cannot read JSON file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse(buffer.str());
  } catch (const ParseError& e) {
    throw ParseError(path + ": " + e.what());
  }
}

const char* JsonValue::kind_name() const {
  switch (kind_) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "boolean";
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "value";
}

namespace {

[[noreturn]] void kind_error(const JsonValue& v, const char* wanted) {
  throw ParseError(std::string("expected ") + wanted + " at line " +
                   std::to_string(v.line()) + ", column " +
                   std::to_string(v.column()) + ", got " + v.kind_name());
}

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) kind_error(*this, "a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  if (!is_number()) kind_error(*this, "a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) kind_error(*this, "a string");
  return text_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (!is_array()) kind_error(*this, "an array");
  return *array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object()
    const {
  if (!is_object()) kind_error(*this, "an object");
  return *object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : *object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

}  // namespace cl
