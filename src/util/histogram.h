// histogram.h — linear and logarithmic histograms plus empirical CDF/CCDF
// extraction, used to regenerate the paper's distribution plots
// (Fig. 3: per-swarm capacity & savings CCDFs; Fig. 6: per-user CCT CDF).
#pragma once

#include <cstddef>
#include <vector>

namespace cl {

/// One (x, y) point of an empirical distribution function.
struct DistPoint {
  double x = 0;  ///< sample value
  double y = 0;  ///< CDF or CCDF value at x
};

/// Empirical CDF of a sample: y = P[X <= x], evaluated at each distinct
/// sample value. Input need not be sorted.
[[nodiscard]] std::vector<DistPoint> empirical_cdf(std::vector<double> xs);

/// Empirical CCDF of a sample: y = P[X > x]. The paper plots CCDFs on
/// log-log axes; points with y == 0 (the maximum) are retained so callers
/// can decide how to render them.
[[nodiscard]] std::vector<DistPoint> empirical_ccdf(std::vector<double> xs);

/// Fixed-width histogram over [lo, hi); samples outside are clamped to the
/// first/last bin.
class Histogram {
 public:
  /// Precondition: bins >= 1, lo < hi.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Left edge of bin i.
  [[nodiscard]] double edge(std::size_t bin) const;
  /// Midpoint of bin i.
  [[nodiscard]] double center(std::size_t bin) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Logarithmically binned histogram over [lo, hi), lo > 0. Matches the
/// log-scale x-axes of Figs. 2 and 3.
class LogHistogram {
 public:
  /// Precondition: 0 < lo < hi, bins >= 1.
  LogHistogram(double lo, double hi, std::size_t bins);

  /// Samples <= 0 are counted in an underflow bucket and excluded from bins.
  void add(double x);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double edge(std::size_t bin) const;
  /// Geometric midpoint of bin i.
  [[nodiscard]] double center(std::size_t bin) const;

 private:
  double log_lo_, log_hi_, log_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t total_ = 0;
};

/// Downsamples an empirical distribution to at most `max_points` points,
/// keeping first and last; keeps bench output readable.
[[nodiscard]] std::vector<DistPoint> thin(const std::vector<DistPoint>& pts,
                                          std::size_t max_points);

}  // namespace cl
