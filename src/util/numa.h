// numa.h — best-effort NUMA topology discovery and worker placement.
//
// The parallel layer (util/parallel.h) wants three things from NUMA:
//
//  * how many nodes the machine has (sysfs on Linux; 1 everywhere else),
//  * a deterministic worker→node placement policy (round-robin), and
//  * a way to pin the calling thread to one node's CPU set.
//
// Everything here is best-effort: on single-node machines, non-Linux
// hosts, or when the environment variable CL_NUMA=off is set, discovery
// collapses to one node and pinning becomes a no-op — the simulator's
// results never depend on whether pinning succeeded, only its locality.
//
// The *fold structure* of deterministic reductions does depend on the
// node count (see parallel.h: socket-local partial folding), which is why
// numa_fold_nodes() is separated from the physical topology: tests force
// a node count to exercise the multi-node fold on single-node CI hosts.
#pragma once

#include <string>
#include <vector>

namespace cl {

/// CPU ids per NUMA node, ascending node id. Always at least one node;
/// node_cpus[i] may be empty for CPU-less (memory-only) nodes.
struct NumaTopology {
  std::vector<std::vector<int>> node_cpus;

  [[nodiscard]] unsigned nodes() const {
    return static_cast<unsigned>(node_cpus.size());
  }
};

/// Parses a kernel cpulist string ("0-3,8,10-11") into ascending CPU ids.
/// Returns an empty vector on malformed input.
[[nodiscard]] std::vector<int> parse_cpu_list(const std::string& text);

/// The machine's NUMA topology, parsed once from
/// /sys/devices/system/node/ (Linux). Falls back to a single node holding
/// no explicit CPU list when sysfs is unavailable, and collapses to a
/// single node when CL_NUMA=off (or =0) is set in the environment.
[[nodiscard]] const NumaTopology& numa_topology();

/// Node count used to shape socket-local partial folds in
/// util/parallel.h. Equals numa_topology().nodes(); kept as its own entry
/// point so the fold structure has one documented source of truth.
[[nodiscard]] unsigned numa_fold_nodes();

/// Round-robin worker→node placement: worker w runs on node w % nodes.
/// Pure function of its arguments (unit-tested without hardware).
[[nodiscard]] constexpr unsigned numa_node_for_worker(unsigned worker,
                                                      unsigned nodes) {
  return nodes > 1 ? worker % nodes : 0;
}

/// Pins the calling thread to `node`'s CPU set. Returns false (and leaves
/// affinity untouched) when the machine has one node, the node id is out
/// of range, the node has no CPUs, or the platform lacks thread affinity.
bool pin_current_thread_to_node(unsigned node);

}  // namespace cl
