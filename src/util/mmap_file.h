// mmap_file.h — RAII read-only memory mapping of a file.
//
// The binary trace loader (trace/trace_mmap.h) reads column blocks
// straight out of the page cache instead of pulling them through
// iostream buffers — mmap is what makes a month-scale trace loadable in
// seconds. On platforms without POSIX mmap the class degrades to reading
// the whole file into a heap buffer, so every consumer keeps working
// (only the zero-copy property is lost).
#pragma once

#include <cstddef>
#include <string>

namespace cl {

/// Read-only mapping of one file. Move-only; unmaps on destruction.
class MappedFile {
 public:
  /// An empty, unmapped instance (data() == nullptr, size() == 0).
  MappedFile() = default;

  /// Maps `path` read-only; throws cl::IoError when the file cannot be
  /// opened, stat-ed or mapped. A zero-length file maps to an empty
  /// instance.
  explicit MappedFile(const std::string& path);

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// First byte of the mapping (nullptr when empty()).
  [[nodiscard]] const unsigned char* data() const {
    return static_cast<const unsigned char*>(data_);
  }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

 private:
  void reset() noexcept;

  void* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;  ///< true: munmap on destroy; false: heap fallback
};

}  // namespace cl
