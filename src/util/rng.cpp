#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace cl {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& lane : s_) lane = splitmix64(x);
  // All-zero state is the one invalid state for xoshiro; splitmix64 cannot
  // produce four zero outputs in a row, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  CL_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  CL_EXPECTS(n > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::bernoulli(double p) { return uniform() < std::clamp(p, 0.0, 1.0); }

double Rng::exponential(double lambda) {
  CL_EXPECTS(lambda > 0);
  // -log(1-U) with U in [0,1) avoids log(0).
  return -std::log1p(-uniform()) / lambda;
}

std::uint64_t Rng::poisson(double mean) {
  CL_EXPECTS(mean >= 0);
  if (mean == 0) return 0;
  if (mean < 30.0) {
    // Inversion by sequential search.
    const double l = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > l);
    return k - 1;
  }
  // PTRS (Hörmann 1993) transformed rejection for large means.
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  for (;;) {
    double u = uniform() - 0.5;
    const double v = uniform();
    const double us = 0.5 - std::fabs(u);
    const double k = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(k);
    if (k < 0 || (us < 0.013 && v > us)) continue;
    if (std::log(v) + std::log(inv_alpha) - std::log(a / (us * us) + b) <=
        k * std::log(mean) - mean - std::lgamma(k + 1.0)) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

double Rng::normal() {
  // Box–Muller; discard the spare so each call consumes exactly two
  // uniforms and streams remain alignment-independent.
  const double u1 = 1.0 - uniform();  // (0, 1]
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double Rng::normal(double mean, double stddev) {
  CL_EXPECTS(stddev >= 0);
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

Rng Rng::split() {
  // A fresh generator seeded from this stream; avoids correlated lanes.
  return Rng((*this)());
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  CL_EXPECTS(n >= 1);
  CL_EXPECTS(s >= 0);
  cdf_.resize(n);
  double sum = 0;
  for (std::size_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = sum;
  }
  for (auto& v : cdf_) v /= sum;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::operator()(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t k) const {
  CL_EXPECTS(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  CL_EXPECTS(!weights.empty());
  cdf_.resize(weights.size());
  double sum = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    CL_EXPECTS(weights[i] >= 0);
    sum += weights[i];
    cdf_[i] = sum;
  }
  CL_EXPECTS(sum > 0);
  for (auto& v : cdf_) v /= sum;
  cdf_.back() = 1.0;
}

std::size_t DiscreteSampler::operator()(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double DiscreteSampler::probability(std::size_t k) const {
  CL_EXPECTS(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace cl
