#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace cl {

std::vector<DistPoint> empirical_cdf(std::vector<double> xs) {
  std::vector<DistPoint> out;
  if (xs.empty()) return out;
  std::sort(xs.begin(), xs.end());
  const auto n = static_cast<double>(xs.size());
  out.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    // Collapse runs of equal values to their final (highest) CDF value.
    if (i + 1 < xs.size() && xs[i + 1] == xs[i]) continue;
    out.push_back({xs[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

std::vector<DistPoint> empirical_ccdf(std::vector<double> xs) {
  auto cdf = empirical_cdf(std::move(xs));
  for (auto& p : cdf) p.y = 1.0 - p.y;
  return cdf;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  CL_EXPECTS(bins >= 1);
  CL_EXPECTS(lo < hi);
}

void Histogram::add(double x) {
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width_));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  CL_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::edge(std::size_t bin) const {
  CL_EXPECTS(bin <= counts_.size());
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::center(std::size_t bin) const {
  CL_EXPECTS(bin < counts_.size());
  return lo_ + width_ * (static_cast<double>(bin) + 0.5);
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins)
    : log_lo_(std::log10(lo)), log_hi_(std::log10(hi)),
      log_width_((log_hi_ - log_lo_) / static_cast<double>(bins)),
      counts_(bins, 0) {
  CL_EXPECTS(lo > 0);
  CL_EXPECTS(lo < hi);
  CL_EXPECTS(bins >= 1);
}

void LogHistogram::add(double x) {
  ++total_;
  if (x <= 0) {
    ++underflow_;
    return;
  }
  auto idx = static_cast<std::ptrdiff_t>(
      std::floor((std::log10(x) - log_lo_) / log_width_));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
}

std::size_t LogHistogram::count(std::size_t bin) const {
  CL_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double LogHistogram::edge(std::size_t bin) const {
  CL_EXPECTS(bin <= counts_.size());
  return std::pow(10.0, log_lo_ + log_width_ * static_cast<double>(bin));
}

double LogHistogram::center(std::size_t bin) const {
  CL_EXPECTS(bin < counts_.size());
  return std::pow(10.0,
                  log_lo_ + log_width_ * (static_cast<double>(bin) + 0.5));
}

std::vector<DistPoint> thin(const std::vector<DistPoint>& pts,
                            std::size_t max_points) {
  CL_EXPECTS(max_points >= 2);
  if (pts.size() <= max_points) return pts;
  std::vector<DistPoint> out;
  out.reserve(max_points);
  const double step = static_cast<double>(pts.size() - 1) /
                      static_cast<double>(max_points - 1);
  for (std::size_t i = 0; i < max_points; ++i) {
    out.push_back(pts[static_cast<std::size_t>(
        std::round(static_cast<double>(i) * step))]);
  }
  return out;
}

}  // namespace cl
