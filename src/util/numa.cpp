#include "util/numa.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace cl {

namespace {

/// True when CL_NUMA=off (or =0) asks for single-node behaviour — an
/// escape hatch for containers whose sysfs view disagrees with the CPU
/// set the process is actually allowed to run on.
bool numa_disabled_by_env() {
  const char* value = std::getenv("CL_NUMA");
  if (value == nullptr) return false;
  const std::string v(value);
  return v == "off" || v == "0" || v == "OFF";
}

std::string read_first_line(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::string line;
  std::getline(in, line);
  return line;
}

NumaTopology discover() {
  NumaTopology topo;
  if (!numa_disabled_by_env()) {
    // /sys/devices/system/node/online lists the online node ids as a
    // range list ("0" or "0-1,4"); each node exposes its CPU set in
    // node<N>/cpulist. Any parse failure falls through to a single node.
    const std::vector<int> nodes =
        parse_cpu_list(read_first_line("/sys/devices/system/node/online"));
    for (const int node : nodes) {
      topo.node_cpus.push_back(parse_cpu_list(
          read_first_line("/sys/devices/system/node/node" +
                          std::to_string(node) + "/cpulist")));
    }
  }
  if (topo.node_cpus.empty()) topo.node_cpus.emplace_back();
  return topo;
}

}  // namespace

std::vector<int> parse_cpu_list(const std::string& text) {
  std::vector<int> cpus;
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) return {};
    const std::size_t dash = token.find('-');
    try {
      if (dash == std::string::npos) {
        std::size_t used = 0;
        const int cpu = std::stoi(token, &used);
        if (used != token.size() || cpu < 0) return {};
        cpus.push_back(cpu);
      } else {
        std::size_t used = 0;
        const int lo = std::stoi(token.substr(0, dash), &used);
        if (used != dash || lo < 0) return {};
        const std::string hi_text = token.substr(dash + 1);
        const int hi = std::stoi(hi_text, &used);
        if (used != hi_text.size() || hi < lo) return {};
        for (int cpu = lo; cpu <= hi; ++cpu) cpus.push_back(cpu);
      }
    } catch (...) {
      return {};
    }
  }
  return cpus;
}

const NumaTopology& numa_topology() {
  static const NumaTopology topo = discover();
  return topo;
}

unsigned numa_fold_nodes() { return numa_topology().nodes(); }

bool pin_current_thread_to_node(unsigned node) {
  const NumaTopology& topo = numa_topology();
  if (topo.nodes() <= 1 || node >= topo.nodes()) return false;
  const std::vector<int>& cpus = topo.node_cpus[node];
  if (cpus.empty()) return false;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int cpu : cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) CPU_SET(cpu, &set);
  }
  return pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
#else
  return false;
#endif
}

}  // namespace cl
