// stats.h — streaming and batch descriptive statistics.
//
// Used throughout the benches to summarise per-swarm and per-user
// distributions (Figs. 3, 6) and to compare simulation against theory
// (Figs. 2, 4).
#pragma once

#include <cstddef>
#include <vector>

namespace cl {

/// Streaming mean/variance/min/max via Welford's algorithm.
///
/// Numerically stable for long streams (billions of samples) and mergeable,
/// so per-shard accumulators can be combined.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Batch summary of a sample vector.
struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double p25 = 0;
  double median = 0;
  double p75 = 0;
  double p90 = 0;
  double p99 = 0;
  double max = 0;
};

/// Computes a Summary. The input is copied and sorted internally.
[[nodiscard]] Summary summarize(std::vector<double> xs);

/// Linear-interpolated quantile of a *sorted* sample, q in [0, 1].
[[nodiscard]] double quantile_sorted(const std::vector<double>& sorted,
                                     double q);

/// Mean absolute relative error between two equally long series; used to
/// report theory-vs-simulation agreement. Pairs where |reference| < eps are
/// skipped (relative error undefined near zero).
[[nodiscard]] double mean_abs_relative_error(const std::vector<double>& value,
                                             const std::vector<double>& reference,
                                             double eps = 1e-12);

/// Pearson correlation coefficient of two equally long series.
/// Returns 0 when either series is constant.
[[nodiscard]] double pearson(const std::vector<double>& a,
                             const std::vector<double>& b);

}  // namespace cl
