// rng.h — deterministic random number generation and the samplers used by
// the synthetic workload generator.
//
// Reproducibility is a hard requirement: the same seed must generate the
// same trace on every platform and standard library. We therefore implement
// the generator (xoshiro256++) and every distribution sampler ourselves
// rather than relying on <random>'s unspecified distribution algorithms.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace cl {

/// xoshiro256++ pseudo-random generator, seeded via SplitMix64.
///
/// Satisfies std::uniform_random_bit_generator, so it can also drive
/// standard algorithms (e.g. std::shuffle) when cross-platform bit-exact
/// output is not required.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 random bits.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential variate with rate lambda (> 0).
  double exponential(double lambda);

  /// Poisson variate with mean `mean` (>= 0). Uses inversion for small
  /// means and the PTRS transformed-rejection method for large means.
  std::uint64_t poisson(double mean);

  /// Standard normal variate (Box–Muller, no cached spare: deterministic
  /// consumption of exactly two uniforms per call).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal variate parameterised by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma);

  /// Derives an independent child generator; used to give each simulated
  /// entity its own stream so insertion order does not perturb results.
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Discrete sampler over indices 0..n-1 following a (truncated) Zipf
/// distribution with exponent `s`: P(k) ∝ 1/(k+1)^s.
///
/// Used to model content catalogue popularity — the paper's catalogue is a
/// classic few-head/long-tail distribution (Fig. 3 left).
class ZipfSampler {
 public:
  /// Precondition: n >= 1, s >= 0 (s == 0 degenerates to uniform).
  ZipfSampler(std::size_t n, double s);

  /// Draws an index in [0, n).
  std::size_t operator()(Rng& rng) const;

  /// Probability mass of index k.
  [[nodiscard]] double pmf(std::size_t k) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // inclusive prefix sums, cdf_.back() == 1
};

/// Samples an index from an arbitrary non-negative weight vector.
class DiscreteSampler {
 public:
  /// Precondition: weights non-empty, all >= 0, sum > 0.
  explicit DiscreteSampler(const std::vector<double>& weights);

  std::size_t operator()(Rng& rng) const;

  [[nodiscard]] double probability(std::size_t k) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace cl
