// error.h — error handling primitives shared by all consumelocal modules.
//
// The library follows the C++ Core Guidelines: exceptions signal violations
// of preconditions/postconditions that callers are not expected to recover
// from inline, and CL_EXPECTS/CL_ENSURES give contract checks a single,
// grep-able spelling.
#pragma once

#include <stdexcept>
#include <string>

namespace cl {

/// Base class for all exceptions thrown by consumelocal.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument violates its documented domain.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when parsing external input (CSV traces, config) fails.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Thrown when an I/O operation (trace file read/write) fails.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* cond,
                                          const char* file, int line) {
  throw InvalidArgument(std::string(kind) + " violated: `" + cond + "` at " +
                        file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace cl

/// Precondition check: throws cl::InvalidArgument when `cond` is false.
#define CL_EXPECTS(cond)                                                     \
  do {                                                                       \
    if (!(cond))                                                             \
      ::cl::detail::contract_failure("precondition", #cond, __FILE__,        \
                                     __LINE__);                              \
  } while (false)

/// Postcondition check: throws cl::InvalidArgument when `cond` is false.
#define CL_ENSURES(cond)                                                     \
  do {                                                                       \
    if (!(cond))                                                             \
      ::cl::detail::contract_failure("postcondition", #cond, __FILE__,       \
                                     __LINE__);                              \
  } while (false)
