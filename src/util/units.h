// units.h — strong unit types for traffic volume, bitrate, time and energy.
//
// The paper's model mixes four dimensioned quantities: data volume (bits),
// data rate (bits/second), time (seconds), and per-bit energy (nanojoules
// per bit). Mixing them up silently is the classic source of
// orders-of-magnitude errors in energy papers, so each gets a distinct type
// with only the physically meaningful cross-type operators defined:
//
//   Bits    = BitRate * Seconds
//   Energy  = EnergyPerBit * Bits
//
// All types are thin `double` wrappers (value semantics, constexpr,
// trivially copyable); `.value()` exposes the raw number for formatting.
#pragma once

#include <compare>
#include <cstdint>

namespace cl {

namespace detail {

/// CRTP base providing the shared arithmetic of a one-dimensional quantity.
template <class Derived>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : v_(v) {}

  /// Raw numeric value in the unit's canonical scale.
  [[nodiscard]] constexpr double value() const { return v_; }

  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived{a.value() + b.value()};
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived{a.value() - b.value()};
  }
  friend constexpr Derived operator*(Derived a, double s) {
    return Derived{a.value() * s};
  }
  friend constexpr Derived operator*(double s, Derived a) {
    return Derived{s * a.value()};
  }
  friend constexpr Derived operator/(Derived a, double s) {
    return Derived{a.value() / s};
  }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) {
    return a.value() / b.value();
  }
  friend constexpr auto operator<=>(Derived a, Derived b) {
    return a.value() <=> b.value();
  }
  friend constexpr bool operator==(Derived a, Derived b) {
    return a.value() == b.value();
  }

  constexpr Derived& operator+=(Derived b) {
    v_ += b.value();
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator-=(Derived b) {
    v_ -= b.value();
    return static_cast<Derived&>(*this);
  }

 private:
  double v_{0.0};
};

}  // namespace detail

/// Data volume in bits.
class Bits : public detail::Quantity<Bits> {
 public:
  using Quantity::Quantity;
  /// Volume expressed in bytes (8 bits).
  [[nodiscard]] constexpr double bytes() const { return value() / 8.0; }
  /// Volume expressed in gigabytes.
  [[nodiscard]] constexpr double gigabytes() const {
    return bytes() / 1e9;
  }
  [[nodiscard]] static constexpr Bits from_bytes(double b) {
    return Bits{b * 8.0};
  }
};

/// Time duration in seconds.
class Seconds : public detail::Quantity<Seconds> {
 public:
  using Quantity::Quantity;
  [[nodiscard]] constexpr double minutes() const { return value() / 60.0; }
  [[nodiscard]] constexpr double hours() const { return value() / 3600.0; }
  [[nodiscard]] static constexpr Seconds from_minutes(double m) {
    return Seconds{m * 60.0};
  }
  [[nodiscard]] static constexpr Seconds from_hours(double h) {
    return Seconds{h * 3600.0};
  }
  [[nodiscard]] static constexpr Seconds from_days(double d) {
    return Seconds{d * 86400.0};
  }
};

/// Data rate in bits per second.
class BitRate : public detail::Quantity<BitRate> {
 public:
  using Quantity::Quantity;
  [[nodiscard]] constexpr double mbps() const { return value() / 1e6; }
  [[nodiscard]] static constexpr BitRate from_mbps(double m) {
    return BitRate{m * 1e6};
  }
};

/// Per-bit energy in nanojoules per bit — the unit of Table IV.
class EnergyPerBit : public detail::Quantity<EnergyPerBit> {
 public:
  using Quantity::Quantity;
  [[nodiscard]] constexpr double nj_per_bit() const { return value(); }
};

/// Absolute energy in nanojoules.
class Energy : public detail::Quantity<Energy> {
 public:
  using Quantity::Quantity;
  [[nodiscard]] constexpr double nanojoules() const { return value(); }
  [[nodiscard]] constexpr double joules() const { return value() / 1e9; }
  /// Kilowatt-hours, for human-scale reporting (1 kWh = 3.6e15 nJ).
  [[nodiscard]] constexpr double kwh() const { return value() / 3.6e15; }
};

/// volume = rate × time
constexpr Bits operator*(BitRate r, Seconds t) {
  return Bits{r.value() * t.value()};
}
constexpr Bits operator*(Seconds t, BitRate r) { return r * t; }

/// energy = per-bit cost × volume
constexpr Energy operator*(EnergyPerBit e, Bits b) {
  return Energy{e.value() * b.value()};
}
constexpr Energy operator*(Bits b, EnergyPerBit e) { return e * b; }

namespace literals {
constexpr Bits operator""_bits(long double v) {
  return Bits{static_cast<double>(v)};
}
constexpr Bits operator""_bits(unsigned long long v) {
  return Bits{static_cast<double>(v)};
}
constexpr BitRate operator""_mbps(long double v) {
  return BitRate::from_mbps(static_cast<double>(v));
}
constexpr BitRate operator""_mbps(unsigned long long v) {
  return BitRate::from_mbps(static_cast<double>(v));
}
constexpr Seconds operator""_s(long double v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_s(unsigned long long v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_min(long double v) {
  return Seconds::from_minutes(static_cast<double>(v));
}
constexpr Seconds operator""_min(unsigned long long v) {
  return Seconds::from_minutes(static_cast<double>(v));
}
constexpr EnergyPerBit operator""_njpb(long double v) {
  return EnergyPerBit{static_cast<double>(v)};
}
constexpr EnergyPerBit operator""_njpb(unsigned long long v) {
  return EnergyPerBit{static_cast<double>(v)};
}
}  // namespace literals

}  // namespace cl
