// table.h — fixed-width console tables for the benchmark harness.
//
// Every bench binary prints the rows/series of the paper table or figure it
// regenerates; this helper keeps that output aligned and diff-friendly.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace cl {

/// Column-aligned text table. Collect rows, then render once.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience overload formatting doubles with `precision` digits.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 4);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders with a header underline and two-space column gaps.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (bench output helper).
[[nodiscard]] std::string fmt(double v, int precision = 4);

/// Shortest round-trip decimal formatting (std::to_chars) — the same
/// policy as the trace writer (util/csv.h). Use where fixed precision
/// would hide small-but-meaningful values, e.g. the ledger's CCT
/// balances near the carbon-neutral point.
[[nodiscard]] std::string fmt_shortest(double v);

/// Formats a double in scientific notation with given precision.
[[nodiscard]] std::string fmt_sci(double v, int precision = 3);

/// Formats a count with thousands separators (e.g. 23,500,000).
[[nodiscard]] std::string fmt_count(std::uint64_t v);

/// Formats a fraction as a percentage string, e.g. 0.345 -> "34.5%".
[[nodiscard]] std::string fmt_pct(double fraction, int precision = 1);

}  // namespace cl
