// carbon_ledger.h — the per-user carbon credit ledger (paper Section V,
// Fig. 6).
//
// Converts a simulation's per-user byte totals into carbon credit
// transfers: each user earns PUE·γs per uploaded bit (the server energy
// their uploads displaced) and owes l·γm per bit their modem moved. The
// normalised balance is the per-user CCT of Eq. 13; users with CCT >= 0
// stream carbon-free.
#pragma once

#include <cstdint>
#include <vector>

#include "carbon/intensity_curve.h"
#include "energy/energy_params.h"
#include "sim/metrics.h"

namespace cl {

/// One user's ledger entry.
struct LedgerEntry {
  std::uint32_t user = 0;
  Bits downloaded;
  Bits uploaded;
  double cct = 0;  ///< normalised balance; >= 0 means carbon-free streaming
};

/// One hour's system-wide byte flows (summed across ISPs): the temporal
/// resolution of the ledger's intensity-weighted metrics.
struct HourFlow {
  Bits delivered;  ///< all useful bits streamed during the hour
  Bits peer;       ///< bits delivered by peers (== bits uploaded by users)
};

/// Per-user carbon accounting for one simulation run under one energy
/// model.
class CarbonLedger {
 public:
  /// Requires `result` to have been produced with collect_per_user = true.
  /// When the result also carries the hourly grid (collect_hourly), the
  /// ledger retains per-hour system flows and can weight its totals by a
  /// grid carbon-intensity curve (the gCO₂ methods below).
  CarbonLedger(const SimResult& result, EnergyParams params);

  [[nodiscard]] const EnergyParams& params() const { return params_; }
  [[nodiscard]] const std::vector<LedgerEntry>& entries() const {
    return entries_;
  }

  /// All per-user CCT values (same order as entries()).
  [[nodiscard]] std::vector<double> cct_values() const;

  /// Fraction of users with CCT >= 0 (carbon-neutral or positive) — the
  /// paper's ">70 % of users become carbon positive" metric.
  [[nodiscard]] double fraction_carbon_free() const;

  /// Median per-user CCT.
  [[nodiscard]] double median_cct() const;

  /// Total credits issued by the CDN: PUE·γs · (all uploaded bits).
  [[nodiscard]] Energy total_credits() const;

  /// Total user-side energy: l·γm · (all downloaded + uploaded bits).
  [[nodiscard]] Energy total_user_energy() const;

  /// System-wide CCT: Eq. 13 evaluated on the aggregate byte flows.
  [[nodiscard]] double system_cct() const;

  // --- intensity-weighted metrics (need the hourly flows) ---

  /// Per-hour system flows retained from the simulation's hourly grid
  /// (empty when the result was produced without collect_hourly).
  [[nodiscard]] const std::vector<HourFlow>& hourly_flows() const {
    return hourly_flows_;
  }

  /// Absolute credits issued, in grams of CO₂: each hour's PUE·γs·U_h
  /// weighted by the grid intensity at that hour. Throws
  /// cl::InvalidArgument when no hourly flows were collected.
  [[nodiscard]] double total_credits_gco2(const IntensityCurve& curve) const;

  /// Absolute user-side consumption, in grams of CO₂: each hour's
  /// l·γm·(D_h + U_h) weighted by the grid intensity at that hour.
  [[nodiscard]] double total_user_gco2(const IntensityCurve& curve) const;

  /// Intensity-weighted system CCT: Eq. 13 with every hour's credit and
  /// consumption weighted by the intensity at that hour —
  /// (Σ I_h·PUE·γs·U_h − Σ I_h·l·γm·(D_h+U_h)) / Σ I_h·l·γm·(D_h+U_h).
  /// Under a flat curve the weights cancel and this equals system_cct()
  /// (up to summation order). 0 when nothing was consumed.
  [[nodiscard]] double weighted_system_cct(const IntensityCurve& curve) const;

 private:
  void require_hourly_flows() const;

  EnergyParams params_;
  std::vector<LedgerEntry> entries_;
  std::vector<HourFlow> hourly_flows_;
};

}  // namespace cl
