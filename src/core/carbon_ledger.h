// carbon_ledger.h — the per-user carbon credit ledger (paper Section V,
// Fig. 6).
//
// Converts a simulation's per-user byte totals into carbon credit
// transfers: each user earns PUE·γs per uploaded bit (the server energy
// their uploads displaced) and owes l·γm per bit their modem moved. The
// normalised balance is the per-user CCT of Eq. 13; users with CCT >= 0
// stream carbon-free.
#pragma once

#include <cstdint>
#include <vector>

#include "energy/energy_params.h"
#include "sim/metrics.h"

namespace cl {

/// One user's ledger entry.
struct LedgerEntry {
  std::uint32_t user = 0;
  Bits downloaded;
  Bits uploaded;
  double cct = 0;  ///< normalised balance; >= 0 means carbon-free streaming
};

/// Per-user carbon accounting for one simulation run under one energy
/// model.
class CarbonLedger {
 public:
  /// Requires `result` to have been produced with collect_per_user = true.
  CarbonLedger(const SimResult& result, EnergyParams params);

  [[nodiscard]] const EnergyParams& params() const { return params_; }
  [[nodiscard]] const std::vector<LedgerEntry>& entries() const {
    return entries_;
  }

  /// All per-user CCT values (same order as entries()).
  [[nodiscard]] std::vector<double> cct_values() const;

  /// Fraction of users with CCT >= 0 (carbon-neutral or positive) — the
  /// paper's ">70 % of users become carbon positive" metric.
  [[nodiscard]] double fraction_carbon_free() const;

  /// Median per-user CCT.
  [[nodiscard]] double median_cct() const;

  /// Total credits issued by the CDN: PUE·γs · (all uploaded bits).
  [[nodiscard]] Energy total_credits() const;

  /// Total user-side energy: l·γm · (all downloaded + uploaded bits).
  [[nodiscard]] Energy total_user_energy() const;

  /// System-wide CCT: Eq. 13 evaluated on the aggregate byte flows.
  [[nodiscard]] double system_cct() const;

 private:
  EnergyParams params_;
  std::vector<LedgerEntry> entries_;
};

}  // namespace cl
