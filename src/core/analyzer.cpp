#include "core/analyzer.h"

#include <cmath>
#include <unordered_map>
#include <utility>

#include "trace/trace_view.h"
#include "util/error.h"
#include "util/parallel.h"

namespace cl {

namespace {

/// Accumulation key for per-(swarm, day) theory aggregation.
struct KeyDay {
  std::uint64_t packed = 0;
  std::uint32_t day = 0;
  friend bool operator==(const KeyDay&, const KeyDay&) = default;
};

struct KeyDayHash {
  std::size_t operator()(const KeyDay& k) const noexcept {
    std::uint64_t z = k.packed ^ (static_cast<std::uint64_t>(k.day) << 40);
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

/// Column-wise swarm_key_for: same key the simulator groups by, read from
/// the view's columns instead of a SessionRecord.
SwarmKey swarm_key_at(const TraceView& view, std::size_t i,
                      const SimConfig& config) {
  SwarmKey key;
  key.content = view.content()[i];
  if (config.isp_friendly) key.isp = view.isp()[i];
  if (config.split_by_bitrate) key.bitrate = view.bitrate()[i];
  return key;
}

}  // namespace

Analyzer::Analyzer(const Metro& metro, SimConfig sim_config,
                   std::vector<EnergyParams> models)
    : metro_(&metro), sim_config_(sim_config), models_(std::move(models)) {
  CL_EXPECTS(!models_.empty());
  for (const auto& m : models_) m.validate();
}

SimResult Analyzer::simulate(const TraceView& view) const {
  return HybridSimulator(*metro_, sim_config_).run(view);
}

SimResult Analyzer::simulate(const Trace& trace) const {
  return simulate(TraceView::from_trace(trace, sim_config_.threads));
}

SavingsModel Analyzer::savings_model(std::size_t model_index,
                                     std::size_t isp_index) const {
  CL_EXPECTS(model_index < models_.size());
  return SavingsModel(models_[model_index], metro_->isp(isp_index));
}

SwarmExperiment Analyzer::analyze_swarm(const TraceView& view,
                                        std::size_t isp_for_theory) const {
  SimConfig config = sim_config_;
  config.collect_hourly = false;
  config.collect_per_user = false;
  config.collect_swarms = false;
  const SimResult result = HybridSimulator(*metro_, config).run(view);

  SwarmExperiment experiment;
  experiment.sessions = view.size();
  double watch = 0;
  for (const double d : view.duration()) watch += d;
  experiment.capacity = view.span().value() > 0 ? watch / view.span().value()
                                                : 0;

  for (std::size_t m = 0; m < models_.size(); ++m) {
    const SavingsModel model = savings_model(m, isp_for_theory);
    const EnergyAccountant accountant{CostFunctions(models_[m])};
    ModelOutcome outcome;
    outcome.model = models_[m].name;
    outcome.sim_savings = accountant.savings(result.total);
    outcome.sim_offload = result.total.offload_fraction();
    outcome.theory_savings =
        model.savings(experiment.capacity, sim_config_.q_over_beta);
    outcome.theory_offload =
        model.offload(experiment.capacity, sim_config_.q_over_beta);
    experiment.models.push_back(std::move(outcome));
  }
  return experiment;
}

SwarmExperiment Analyzer::analyze_swarm(const Trace& trace,
                                        std::size_t isp_for_theory) const {
  return analyze_swarm(TraceView::from_trace(trace, sim_config_.threads),
                       isp_for_theory);
}

std::vector<std::vector<std::vector<double>>> Analyzer::theory_daily(
    const TraceView& view) const {
  const auto days = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(view.span().value() / 86400.0)));
  const std::size_t isps = metro_->isp_count();
  const std::span<const std::uint32_t> isp = view.isp();
  const std::span<const std::uint8_t> bitrate = view.bitrate();
  const std::span<const double> start = view.start();
  const std::span<const double> duration = view.duration();

  // Pass 1: watch-seconds per (swarm, day) -> per-swarm daily capacity.
  // Sharded fixed-chunk reduction: each chunk builds a private map, chunks
  // merge in chunk order, so every key's sum sees its contributions in the
  // same order regardless of SimConfig::threads.
  using WatchMap = std::unordered_map<KeyDay, double, KeyDayHash>;
  const WatchMap watch = parallel_chunked_reduce(
      view.size(), sim_config_.threads, [] { return WatchMap{}; },
      [&](WatchMap& acc, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const SwarmKey key = swarm_key_at(view, i, sim_config_);
          const auto day = static_cast<std::uint32_t>(start[i] / 86400.0);
          acc[KeyDay{key.packed(), day}] += duration[i];
        }
      },
      [](WatchMap& total, const WatchMap& chunk) {
        for (const auto& [key, seconds] : chunk) total[key] += seconds;
      });

  // Pre-built closed-form models per (energy column, ISP tree).
  std::vector<std::vector<SavingsModel>> model_grid;
  model_grid.reserve(models_.size());
  for (const auto& params : models_) {
    std::vector<SavingsModel> row;
    row.reserve(isps);
    for (std::size_t i = 0; i < isps; ++i) {
      row.emplace_back(params, metro_->isp(i));
    }
    model_grid.push_back(std::move(row));
  }

  // Pass 2: volume-weighted Eq. 12 per (model, day, isp), sharded with the
  // same deterministic chunk-order merge as pass 1.
  struct DailyGrid {
    std::vector<std::vector<std::vector<double>>> num;
    std::vector<std::vector<double>> den;
  };
  auto [num, den] = parallel_chunked_reduce(
      view.size(), sim_config_.threads,
      [&] {
        return DailyGrid{
            std::vector(models_.size(),
                        std::vector(days, std::vector<double>(isps, 0.0))),
            std::vector(days, std::vector<double>(isps, 0.0))};
      },
      [&](DailyGrid& acc, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const SwarmKey key = swarm_key_at(view, i, sim_config_);
          const auto day = static_cast<std::uint32_t>(start[i] / 86400.0);
          const double capacity =
              watch.at(KeyDay{key.packed(), day}) / 86400.0;
          // β · duration — the same operand order as SessionRecord::volume.
          const double volume =
              (bitrate_of(static_cast<BitrateClass>(bitrate[i])) *
               Seconds{duration[i]})
                  .value();
          acc.den[day][isp[i]] += volume;
          for (std::size_t m = 0; m < models_.size(); ++m) {
            const double savings = model_grid[m][isp[i]].savings(
                capacity, sim_config_.q_over_beta);
            acc.num[m][day][isp[i]] += savings * volume;
          }
        }
      },
      [&](DailyGrid& total, const DailyGrid& chunk) {
        for (std::size_t m = 0; m < models_.size(); ++m) {
          for (std::size_t d = 0; d < days; ++d) {
            for (std::size_t i = 0; i < isps; ++i) {
              total.num[m][d][i] += chunk.num[m][d][i];
            }
          }
        }
        for (std::size_t d = 0; d < days; ++d) {
          for (std::size_t i = 0; i < isps; ++i) {
            total.den[d][i] += chunk.den[d][i];
          }
        }
      });
  for (std::size_t m = 0; m < models_.size(); ++m) {
    for (std::size_t d = 0; d < days; ++d) {
      for (std::size_t i = 0; i < isps; ++i) {
        num[m][d][i] = den[d][i] > 0 ? num[m][d][i] / den[d][i] : 0.0;
      }
    }
  }
  return num;
}

DailyReport Analyzer::daily_report(const TraceView& view) const {
  SimConfig config = sim_config_;
  config.collect_hourly = true;
  config.collect_per_user = false;
  config.collect_swarms = false;
  const SimResult result = HybridSimulator(*metro_, config).run(view);

  DailyReport report;
  report.theory = theory_daily(view);
  for (const auto& params : models_) {
    report.models.push_back(params.name);
    const EnergyAccountant accountant{CostFunctions(params)};
    report.sim.push_back(daily_savings(result, accountant));
  }
  return report;
}

DailyReport Analyzer::daily_report(const Trace& trace) const {
  return daily_report(TraceView::from_trace(trace, sim_config_.threads));
}

SwarmDistributions Analyzer::swarm_distributions(const TraceView& view) const {
  SimConfig config = sim_config_;
  config.collect_hourly = false;
  config.collect_per_user = false;
  config.collect_swarms = true;
  const SimResult result = HybridSimulator(*metro_, config).run(view);

  SwarmDistributions dist;
  const std::size_t swarms = result.swarms.size();
  dist.capacities.reserve(swarms);
  for (const auto& swarm : result.swarms) {
    dist.capacities.push_back(swarm.capacity);
  }
  for (const auto& params : models_) {
    dist.models.push_back(params.name);
    const EnergyAccountant accountant{CostFunctions(params)};
    // Per-swarm savings are independent: sharded indexed writes into a
    // pre-sized vector (deterministic for every thread count).
    std::vector<double> savings(swarms, 0.0);
    parallel_shards(swarms, sim_config_.threads,
                    [&](unsigned, std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        savings[i] =
                            swarm_savings(result.swarms[i], accountant);
                      }
                    });
    dist.savings.push_back(std::move(savings));
  }

  // Streaming summaries via the fixed-chunk RunningStats::merge reduction;
  // chunk boundaries depend only on the swarm count, so the merged stats
  // are bit-identical for every SimConfig::threads value.
  const auto running_reduce = [&](const std::vector<double>& xs) {
    return parallel_chunked_reduce(
        xs.size(), sim_config_.threads, [] { return RunningStats{}; },
        [&](RunningStats& acc, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) acc.add(xs[i]);
        },
        [](RunningStats& total, const RunningStats& chunk) {
          total.merge(chunk);
        });
  };
  dist.capacity_stats = running_reduce(dist.capacities);
  dist.savings_stats.reserve(dist.savings.size());
  for (const auto& series : dist.savings) {
    dist.savings_stats.push_back(running_reduce(series));
  }
  return dist;
}

SwarmDistributions Analyzer::swarm_distributions(const Trace& trace) const {
  return swarm_distributions(
      TraceView::from_trace(trace, sim_config_.threads));
}

std::vector<CarbonOutcome> Analyzer::carbon_report(
    const TraceView& view, const IntensityCurve& curve) const {
  SimConfig config = sim_config_;
  config.collect_hourly = true;
  config.collect_per_user = false;
  config.collect_swarms = false;
  return carbon_report(HybridSimulator(*metro_, config).run(view), curve);
}

std::vector<CarbonOutcome> Analyzer::carbon_report(
    const Trace& trace, const IntensityCurve& curve) const {
  return carbon_report(TraceView::from_trace(trace, sim_config_.threads),
                       curve);
}

std::vector<CarbonOutcome> Analyzer::carbon_report(
    const SimResult& result, const IntensityCurve& curve) const {
  // run() pads the grid to at least one row whenever collect_hourly was
  // set, so an empty grid means the precondition was not met — fail as
  // loudly as CarbonLedger's require_hourly_flows does.
  if (result.hourly.empty()) {
    throw InvalidArgument(
        "carbon_report needs the hourly grid: run the simulation with "
        "SimConfig::collect_hourly");
  }
  std::vector<CarbonOutcome> outcomes;
  outcomes.reserve(models_.size());
  for (const auto& params : models_) {
    const CarbonAccountant accountant{EnergyAccountant{CostFunctions(params)},
                                      curve};
    outcomes.push_back(accountant.assess(result.hourly));
  }
  return outcomes;
}

std::vector<AggregateOutcome> Analyzer::aggregate(const TraceView& view) const {
  SimConfig config = sim_config_;
  config.collect_hourly = false;
  config.collect_per_user = false;
  config.collect_swarms = true;
  return aggregate(HybridSimulator(*metro_, config).run(view));
}

std::vector<AggregateOutcome> Analyzer::aggregate(const Trace& trace) const {
  return aggregate(TraceView::from_trace(trace, sim_config_.threads));
}

std::vector<AggregateOutcome> Analyzer::aggregate(
    const SimResult& result) const {
  // Swarms empty despite traffic having moved means collect_swarms was
  // off — the theory column would silently report 0 (a genuinely empty
  // trace is fine: everything is legitimately zero then).
  if (result.swarms.empty() && result.total.total().value() > 0) {
    throw InvalidArgument(
        "aggregate needs per-swarm results: run the simulation with "
        "SimConfig::collect_swarms");
  }
  std::vector<AggregateOutcome> outcomes;
  for (std::size_t m = 0; m < models_.size(); ++m) {
    const EnergyAccountant accountant{CostFunctions(models_[m])};
    AggregateOutcome outcome;
    outcome.model = models_[m].name;
    outcome.sim_savings = accountant.savings(result.total);
    outcome.offload = result.total.offload_fraction();
    outcome.baseline_energy = accountant.baseline(result.total.total()).total();
    outcome.hybrid_energy = accountant.hybrid(result.total).total();

    std::vector<SavingsModel> per_isp;
    for (std::size_t i = 0; i < metro_->isp_count(); ++i) {
      per_isp.emplace_back(models_[m], metro_->isp(i));
    }
    // Volume-weighted Eq. 12 across swarms, sharded with a deterministic
    // fixed-chunk merge (num/den pair accumulator).
    const auto [num, den] = parallel_chunked_reduce(
        result.swarms.size(), sim_config_.threads,
        [] { return std::pair<double, double>{0.0, 0.0}; },
        [&](std::pair<double, double>& acc, std::size_t begin,
            std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            const auto& swarm = result.swarms[i];
            const double volume = swarm.traffic.total().value();
            if (volume <= 0) continue;
            const std::size_t isp = swarm.key.has_isp() ? swarm.key.isp : 0;
            acc.first += per_isp[isp].savings(swarm.capacity,
                                              sim_config_.q_over_beta) *
                         volume;
            acc.second += volume;
          }
        },
        [](std::pair<double, double>& total,
           const std::pair<double, double>& chunk) {
          total.first += chunk.first;
          total.second += chunk.second;
        });
    outcome.theory_savings = den > 0 ? num / den : 0.0;
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace cl
