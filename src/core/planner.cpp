#include "core/planner.h"

#include <cmath>

#include "model/carbon_credit.h"
#include "util/error.h"

namespace cl {

namespace {
constexpr double kLoCapacity = 1e-6;
constexpr double kHiCapacity = 1e7;
}  // namespace

Planner::Planner(SavingsModel model) : model_(std::move(model)) {}

template <class F>
double Planner::invert(F&& f) const {
  if (f(kLoCapacity) >= 0) return 0.0;
  if (f(kHiCapacity) < 0) {
    throw InvalidArgument("planning target unreachable at any swarm capacity");
  }
  double lo = kLoCapacity, hi = kHiCapacity;
  // Bisection on the (monotone) margin; 200 iterations saturate double
  // precision over this range.
  for (int iter = 0; iter < 200 && (hi - lo) / hi > 1e-12; ++iter) {
    const double mid = std::sqrt(lo * hi);  // geometric: curves live in log-c
    if (f(mid) >= 0) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double Planner::break_even_capacity(double q_over_beta) const {
  return invert(
      [&](double c) { return model_.savings(c, q_over_beta); });
}

double Planner::capacity_for_savings(double target,
                                     double q_over_beta) const {
  CL_EXPECTS(target >= 0);
  if (target >= model_.savings_ceiling(q_over_beta)) {
    throw InvalidArgument(
        "savings target exceeds the asymptotic ceiling of the model");
  }
  return invert(
      [&](double c) { return model_.savings(c, q_over_beta) - target; });
}

double Planner::carbon_neutral_capacity(double q_over_beta) const {
  const double g_star = carbon_neutral_offload(model_.params());
  // G(c) is increasing with ceiling min(q/β, 1); fail fast if unreachable.
  const double ceiling = model_.offload(kHiCapacity, q_over_beta);
  if (g_star >= ceiling) {
    throw InvalidArgument(
        "carbon neutrality unreachable: required offload " +
        std::to_string(g_star) + " exceeds achievable " +
        std::to_string(ceiling));
  }
  return invert(
      [&](double c) { return model_.offload(c, q_over_beta) - g_star; });
}

double Planner::views_per_month_for_capacity(double capacity,
                                             Seconds mean_duration) const {
  CL_EXPECTS(capacity >= 0);
  CL_EXPECTS(mean_duration.value() > 0);
  return capacity * Seconds::from_days(30).value() / mean_duration.value();
}

double Planner::capacity_for_views_per_month(double views_per_month,
                                             Seconds mean_duration) const {
  CL_EXPECTS(views_per_month >= 0);
  CL_EXPECTS(mean_duration.value() > 0);
  return views_per_month * mean_duration.value() /
         Seconds::from_days(30).value();
}

}  // namespace cl
