#include "core/carbon_ledger.h"

#include <algorithm>

#include "model/carbon_credit.h"
#include "util/error.h"
#include "util/stats.h"

namespace cl {

CarbonLedger::CarbonLedger(const SimResult& result, EnergyParams params)
    : params_(std::move(params)) {
  params_.validate();
  entries_.reserve(result.users.size());
  for (const auto& [user, traffic] : result.users) {
    LedgerEntry entry;
    entry.user = user;
    entry.downloaded = traffic.downloaded;
    entry.uploaded = traffic.uploaded;
    entry.cct = per_user_cct(traffic.downloaded, traffic.uploaded, params_);
    entries_.push_back(entry);
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const LedgerEntry& a, const LedgerEntry& b) {
              return a.user < b.user;
            });
  // Collapse the hourly grid across ISPs: the intensity weighting only
  // needs "how much moved during hour h" (peer bits == user uploads).
  hourly_flows_.reserve(result.hourly.size());
  for (const auto& row : result.hourly) {
    TrafficBreakdown sum;
    for (const auto& t : row) sum += t;
    hourly_flows_.push_back({sum.total(), sum.peer_total()});
  }
}

std::vector<double> CarbonLedger::cct_values() const {
  std::vector<double> values;
  values.reserve(entries_.size());
  for (const auto& e : entries_) values.push_back(e.cct);
  return values;
}

double CarbonLedger::fraction_carbon_free() const {
  if (entries_.empty()) return 0.0;
  std::size_t positive = 0;
  for (const auto& e : entries_) {
    if (e.cct >= 0) ++positive;
  }
  return static_cast<double>(positive) / static_cast<double>(entries_.size());
}

double CarbonLedger::median_cct() const {
  auto values = cct_values();
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return quantile_sorted(values, 0.5);
}

Energy CarbonLedger::total_credits() const {
  Bits uploaded;
  for (const auto& e : entries_) uploaded += e.uploaded;
  return credit_energy(uploaded, params_);
}

Energy CarbonLedger::total_user_energy() const {
  Bits down, up;
  for (const auto& e : entries_) {
    down += e.downloaded;
    up += e.uploaded;
  }
  return user_energy(down, up, params_);
}

double CarbonLedger::system_cct() const {
  const double credits = total_credits().value();
  const double spent = total_user_energy().value();
  return spent > 0 ? (credits - spent) / spent : 0.0;
}

void CarbonLedger::require_hourly_flows() const {
  if (hourly_flows_.empty()) {
    throw InvalidArgument(
        "intensity-weighted ledger metrics need the hourly grid: run the "
        "simulation with SimConfig::collect_hourly");
  }
}

double CarbonLedger::total_credits_gco2(const IntensityCurve& curve) const {
  require_hourly_flows();
  double grams = 0;
  for (std::size_t h = 0; h < hourly_flows_.size(); ++h) {
    grams += curve.grams(credit_energy(hourly_flows_[h].peer, params_), h);
  }
  return grams;
}

double CarbonLedger::total_user_gco2(const IntensityCurve& curve) const {
  require_hourly_flows();
  double grams = 0;
  for (std::size_t h = 0; h < hourly_flows_.size(); ++h) {
    grams += curve.grams(
        user_energy(hourly_flows_[h].delivered, hourly_flows_[h].peer,
                    params_),
        h);
  }
  return grams;
}

double CarbonLedger::weighted_system_cct(const IntensityCurve& curve) const {
  const double credits = total_credits_gco2(curve);
  const double spent = total_user_gco2(curve);
  return spent > 0 ? (credits - spent) / spent : 0.0;
}

}  // namespace cl
