// analyzer.h — the top-level facade of the library.
//
// An Analyzer owns a metro topology, a simulator configuration and a list
// of energy-parameter columns, and answers the paper's questions about a
// workload trace:
//
//  * analyze_swarm — one swarm's measured capacity and savings, simulation
//    vs closed form (the dots and curves of Fig. 2);
//  * daily_report  — per-day, per-ISP aggregate savings, simulation vs
//    closed form (Fig. 4);
//  * swarm_distributions — per-swarm capacities and savings across the
//    catalogue (Fig. 3);
//  * aggregate — whole-trace headline numbers (the 24–48 % claim).
#pragma once

#include <string>
#include <vector>

#include "carbon/carbon_accountant.h"
#include "energy/energy_params.h"
#include "model/savings.h"
#include "sim/hybrid_sim.h"
#include "sim/metrics.h"
#include "topology/placement.h"
#include "trace/session.h"
#include "util/stats.h"

namespace cl {

/// Simulation-vs-theory outcome under one energy model.
struct ModelOutcome {
  std::string model;         ///< energy parameter column name
  double sim_savings = 0;    ///< Eq. 1 on simulated byte flows
  double theory_savings = 0; ///< Eq. 12 at the measured capacity
  double sim_offload = 0;    ///< G from simulated byte flows
  double theory_offload = 0; ///< G from Eq. 3
};

/// Result of analyzing one swarm (one content item within one ISP).
struct SwarmExperiment {
  double capacity = 0;       ///< measured Σ watch-time / span
  std::size_t sessions = 0;
  std::vector<ModelOutcome> models;
};

/// Per-day aggregate savings series (Fig. 4): series[model][day][isp].
struct DailyReport {
  std::vector<std::string> models;
  std::vector<std::vector<std::vector<double>>> sim;     ///< [model][day][isp]
  std::vector<std::vector<std::vector<double>>> theory;  ///< [model][day][isp]
};

/// Per-swarm distribution samples (Fig. 3).
struct SwarmDistributions {
  std::vector<double> capacities;  ///< one per swarm
  /// savings[model][swarm] — simulated per-swarm savings.
  std::vector<std::vector<double>> savings;
  std::vector<std::string> models;

  /// Streaming summaries of the vectors above, computed by a sharded
  /// fixed-chunk RunningStats::merge reduction — bit-identical for every
  /// SimConfig::threads value.
  RunningStats capacity_stats;
  std::vector<RunningStats> savings_stats;  ///< one per model
};

/// Whole-trace headline numbers under one energy model.
struct AggregateOutcome {
  std::string model;
  double sim_savings = 0;
  double theory_savings = 0;  ///< capacity-weighted Eq. 12 across swarms
  double offload = 0;         ///< simulated G
  Energy baseline_energy;     ///< pure-CDN energy of the same volume
  Energy hybrid_energy;       ///< hybrid energy
};

/// Top-level facade combining simulator and analytical model.
class Analyzer {
 public:
  /// `metro` must outlive the analyzer. `models` defaults to the paper's
  /// two columns (Valancius, Baliga).
  Analyzer(const Metro& metro, SimConfig sim_config,
           std::vector<EnergyParams> models = standard_params());

  [[nodiscard]] const SimConfig& sim_config() const { return sim_config_; }
  [[nodiscard]] const std::vector<EnergyParams>& models() const {
    return models_;
  }

  /// Runs the simulator on a trace view (convenience passthrough). The
  /// columnar entry points below are the engine; every `const Trace&`
  /// overload is a thin wrapper that transposes the rows into an owned
  /// SoA view once (TraceView::from_trace) — `.cltrace` input should be
  /// opened with TraceView::open_binary so analysis runs directly on the
  /// mmap'd columns.
  [[nodiscard]] SimResult simulate(const TraceView& view) const;
  [[nodiscard]] SimResult simulate(const Trace& trace) const;

  /// Analyzes one swarm (the trace should be pre-filtered to one content
  /// item, and to one ISP when the theory comparison should use that ISP's
  /// tree — `isp_for_theory` selects which tree the closed form uses).
  [[nodiscard]] SwarmExperiment analyze_swarm(const TraceView& view,
                                              std::size_t isp_for_theory) const;
  [[nodiscard]] SwarmExperiment analyze_swarm(const Trace& trace,
                                              std::size_t isp_for_theory) const;

  /// Fig. 4 series: per-day, per-ISP savings, simulation vs theory.
  [[nodiscard]] DailyReport daily_report(const TraceView& view) const;
  [[nodiscard]] DailyReport daily_report(const Trace& trace) const;

  /// Fig. 3 samples: per-swarm capacity and savings across the catalogue.
  [[nodiscard]] SwarmDistributions swarm_distributions(
      const TraceView& view) const;
  [[nodiscard]] SwarmDistributions swarm_distributions(
      const Trace& trace) const;

  /// Whole-trace headline numbers per energy model.
  [[nodiscard]] std::vector<AggregateOutcome> aggregate(
      const TraceView& view) const;
  [[nodiscard]] std::vector<AggregateOutcome> aggregate(
      const Trace& trace) const;

  /// Same, on an existing simulation result (must have been produced
  /// with collect_swarms — the theory column aggregates per swarm;
  /// throws cl::InvalidArgument when traffic moved but no swarms were
  /// collected). Lets one simulator run feed several report flavours.
  [[nodiscard]] std::vector<AggregateOutcome> aggregate(
      const SimResult& result) const;

  /// Absolute gCO₂ per energy model under one grid-intensity curve: runs
  /// the simulator with the hourly grid collected and weights each hour's
  /// energy by the intensity at consumption time (src/carbon/).
  [[nodiscard]] std::vector<CarbonOutcome> carbon_report(
      const TraceView& view, const IntensityCurve& curve) const;
  [[nodiscard]] std::vector<CarbonOutcome> carbon_report(
      const Trace& trace, const IntensityCurve& curve) const;

  /// Same, on an existing simulation result (must have been produced
  /// with collect_hourly; throws cl::InvalidArgument otherwise).
  [[nodiscard]] std::vector<CarbonOutcome> carbon_report(
      const SimResult& result, const IntensityCurve& curve) const;

  /// The closed-form model for one energy column and one ISP tree.
  [[nodiscard]] SavingsModel savings_model(std::size_t model_index,
                                           std::size_t isp_index) const;

 private:
  /// Theory daily aggregation: capacity-weighted Eq. 12 per (day, isp),
  /// computed column-wise from the view.
  [[nodiscard]] std::vector<std::vector<std::vector<double>>> theory_daily(
      const TraceView& view) const;

  const Metro* metro_;
  SimConfig sim_config_;
  std::vector<EnergyParams> models_;
};

}  // namespace cl
