// report.h — human-readable rendering of analyzer results.
//
// Shared by the examples and the bench harness so the library's outputs
// look the same everywhere.
#pragma once

#include <ostream>
#include <vector>

#include "carbon/schedule.h"
#include "core/analyzer.h"
#include "core/carbon_ledger.h"
#include "trace/trace_stats.h"

namespace cl {

/// Prints a Table-I-style description of a trace.
void print_trace_stats(std::ostream& out, const TraceStats& stats,
                       Seconds span);

/// Prints one swarm's simulation-vs-theory outcome.
void print_swarm_experiment(std::ostream& out, const SwarmExperiment& e);

/// Prints the whole-trace headline numbers.
void print_aggregate(std::ostream& out,
                     const std::vector<AggregateOutcome>& outcomes);

/// Prints the carbon ledger summary (not the full per-user list).
void print_ledger_summary(std::ostream& out, const CarbonLedger& ledger);

/// Prints the ledger's intensity-weighted totals: absolute gCO₂ credits
/// and consumption plus the weighted system CCT under `curve`.
void print_ledger_carbon(std::ostream& out, const CarbonLedger& ledger,
                         const IntensityCurve& curve);

/// Prints the per-model gCO₂ outcomes of a run under one intensity curve
/// (Analyzer::carbon_report).
void print_carbon_report(std::ostream& out,
                         const std::vector<CarbonOutcome>& outcomes);

/// Prints the carbon-aware scheduling section: the active levers (trough
/// preload window, routing plan stats), the offload shift, and the
/// per-model scheduled-vs-unscheduled gram outcomes. An inert (flat)
/// scheduler prints its no-op note instead of decisions.
void print_schedule_report(std::ostream& out, const CarbonScheduler& scheduler,
                           const RoutingPlan& plan, bool preload_active,
                           bool routing_active, double unscheduled_offload,
                           double scheduled_offload,
                           const std::vector<ScheduleOutcome>& outcomes);

}  // namespace cl
