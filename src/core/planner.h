// planner.h — network-planning utilities built on the closed form.
//
// The paper notes (Section IV.B.2) that Eq. 12's agreement with simulation
// makes it usable "for network planning purposes". The Planner answers the
// natural planning questions by inverting the monotone savings and offload
// curves: what capacity does a swarm need before hybrid delivery (a) stops
// hurting, (b) reaches a target saving, (c) makes its users carbon
// neutral — and how many monthly views does that capacity correspond to.
#pragma once

#include "model/savings.h"
#include "util/units.h"

namespace cl {

/// Closed-form planning on one SavingsModel.
class Planner {
 public:
  explicit Planner(SavingsModel model);

  [[nodiscard]] const SavingsModel& model() const { return model_; }

  /// Smallest capacity at which S(c) >= 0. Returns 0 when savings are
  /// positive for every capacity (the usual case for both paper models).
  [[nodiscard]] double break_even_capacity(double q_over_beta) const;

  /// Smallest capacity at which S(c) >= target. Throws cl::InvalidArgument
  /// when the target exceeds the asymptotic ceiling.
  [[nodiscard]] double capacity_for_savings(double target,
                                            double q_over_beta) const;

  /// Smallest capacity at which the *system-level* CCT (Eq. 13 at G(c))
  /// reaches zero, i.e. participating users stream carbon-free. Throws
  /// cl::InvalidArgument when unreachable (offload ceiling too low).
  [[nodiscard]] double carbon_neutral_capacity(double q_over_beta) const;

  /// Monthly views corresponding to a capacity, for items of the given
  /// mean watch duration: views = c · (30 days) / u.
  [[nodiscard]] double views_per_month_for_capacity(
      double capacity, Seconds mean_duration) const;

  /// Capacity of an item with the given monthly views and mean duration:
  /// c = u · r (Little's law).
  [[nodiscard]] double capacity_for_views_per_month(
      double views_per_month, Seconds mean_duration) const;

 private:
  /// Bisects the smallest c in [1e-6, 1e7] with f(c) >= 0 for a monotone
  /// non-decreasing f; returns 0 when already satisfied at the lower end.
  template <class F>
  [[nodiscard]] double invert(F&& f) const;

  SavingsModel model_;
};

}  // namespace cl
