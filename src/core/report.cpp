#include "core/report.h"

#include "util/table.h"

namespace cl {

void print_trace_stats(std::ostream& out, const TraceStats& stats,
                       Seconds span) {
  TextTable table({"metric", "value"});
  table.add_row({"span (days)", fmt(span.value() / 86400.0, 1)});
  table.add_row({"sessions", fmt_count(stats.sessions)});
  table.add_row({"distinct users", fmt_count(stats.distinct_users)});
  table.add_row(
      {"distinct IP addresses", fmt_count(stats.distinct_households)});
  table.add_row({"distinct contents", fmt_count(stats.distinct_contents)});
  table.add_row({"total watch hours",
                 fmt_count(static_cast<std::uint64_t>(
                     stats.total_watch_time.hours()))});
  table.add_row(
      {"total volume (GB)", fmt(stats.total_volume.gigabytes(), 1)});
  table.add_row({"mean session (min)",
                 fmt(stats.mean_session_duration.minutes(), 1)});
  table.add_row({"mean concurrency", fmt(stats.mean_concurrency, 1)});
  table.print(out);
}

void print_swarm_experiment(std::ostream& out, const SwarmExperiment& e) {
  out << "sessions: " << e.sessions
      << "   measured capacity c = " << fmt(e.capacity, 3) << "\n";
  TextTable table({"model", "S (sim)", "S (theory)", "G (sim)", "G (theory)"});
  for (const auto& m : e.models) {
    table.add_row({m.model, fmt(m.sim_savings), fmt(m.theory_savings),
                   fmt(m.sim_offload), fmt(m.theory_offload)});
  }
  table.print(out);
}

void print_aggregate(std::ostream& out,
                     const std::vector<AggregateOutcome>& outcomes) {
  TextTable table({"model", "S (sim)", "S (theory)", "G", "baseline (kWh)",
                   "hybrid (kWh)"});
  for (const auto& o : outcomes) {
    table.add_row({o.model, fmt_pct(o.sim_savings), fmt_pct(o.theory_savings),
                   fmt_pct(o.offload), fmt(o.baseline_energy.kwh(), 2),
                   fmt(o.hybrid_energy.kwh(), 2)});
  }
  table.print(out);
}

void print_ledger_summary(std::ostream& out, const CarbonLedger& ledger) {
  TextTable table({"metric", "value"});
  table.add_row({"energy model", ledger.params().name});
  table.add_row({"users", fmt_count(ledger.entries().size())});
  table.add_row(
      {"carbon-free users", fmt_pct(ledger.fraction_carbon_free())});
  // CCT balances sit near the carbon-neutral point, where fixed 3-decimal
  // rounding would flatten them to 0.000 — shortest round-trip instead
  // (the trace writer's formatting policy).
  table.add_row({"median per-user CCT", fmt_shortest(ledger.median_cct())});
  table.add_row({"system CCT", fmt_shortest(ledger.system_cct())});
  table.add_row({"credits issued (kWh)",
                 fmt(ledger.total_credits().kwh(), 3)});
  table.add_row({"user energy (kWh)",
                 fmt(ledger.total_user_energy().kwh(), 3)});
  table.print(out);
}

void print_ledger_carbon(std::ostream& out, const CarbonLedger& ledger,
                         const IntensityCurve& curve) {
  TextTable table({"metric", "value"});
  table.add_row({"intensity preset",
                 curve.name() + " (mean " + fmt(curve.mean(), 1) +
                     " gCO2/kWh)"});
  table.add_row({"credits issued (kgCO2)",
                 fmt(ledger.total_credits_gco2(curve) / 1000.0, 3)});
  table.add_row({"user energy (kgCO2)",
                 fmt(ledger.total_user_gco2(curve) / 1000.0, 3)});
  table.add_row({"weighted system CCT",
                 fmt_shortest(ledger.weighted_system_cct(curve))});
  table.print(out);
}

void print_schedule_report(std::ostream& out, const CarbonScheduler& scheduler,
                           const RoutingPlan& plan, bool preload_active,
                           bool routing_active, double unscheduled_offload,
                           double scheduled_offload,
                           const std::vector<ScheduleOutcome>& outcomes) {
  out << "schedule under intensity " << scheduler.user_curve().name() << ":\n";
  if (scheduler.inert()) {
    out << "  flat curve, no intensity signal: scheduler inert, results "
           "bit-identical to unscheduled\n";
  } else {
    if (preload_active) {
      const PreloadConfig window = scheduler.trough_window();
      out << "  preload: trough window [" << fmt(window.window_start_hour, 0)
          << ":00, " << fmt(window.window_end_hour, 0) << ":00), adoption "
          << fmt_pct(window.adoption) << "\n";
    }
    if (routing_active) {
      out << "  routing: " << plan.hours_routed_away() << "/"
          << plan.hours.size() << " hours served off-home, mean added latency "
          << fmt(plan.mean_added_latency_ms(), 1) << " ms (bound "
          << fmt(scheduler.config().max_added_latency_ms, 0) << " ms)\n";
    }
  }
  out << "  offload G: " << fmt_pct(unscheduled_offload) << " unscheduled -> "
      << fmt_pct(scheduled_offload) << " scheduled\n";
  TextTable table({"model", "unscheduled (kgCO2)", "scheduled (kgCO2)",
                   "reduction"});
  for (const auto& o : outcomes) {
    table.add_row({o.model, fmt(o.unscheduled_g / 1000.0, 2),
                   fmt(o.scheduled_g / 1000.0, 2), fmt_pct(o.reduction)});
  }
  table.print(out);
}

void print_carbon_report(std::ostream& out,
                         const std::vector<CarbonOutcome>& outcomes) {
  TextTable table({"model", "baseline (kgCO2)", "hybrid (kgCO2)",
                   "saved (kgCO2)", "carbon savings", "energy savings"});
  for (const auto& o : outcomes) {
    table.add_row({o.model, fmt(o.baseline_g / 1000.0, 2),
                   fmt(o.hybrid_g / 1000.0, 2), fmt(o.saved_g / 1000.0, 2),
                   fmt_pct(o.carbon_savings), fmt_pct(o.energy_savings)});
  }
  table.print(out);
}

}  // namespace cl
