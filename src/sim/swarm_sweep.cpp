#include "sim/swarm_sweep.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace cl {

namespace {

void accumulate(TrafficBreakdown& tb, const PeerAllocation& al,
                double windows) {
  tb.server += Bits{al.server_bits * windows};
  for (std::size_t l = 0; l < kLocalityLevels; ++l) {
    tb.peer[l] += Bits{al.peer_bits[l] * windows};
  }
  tb.cross_isp += Bits{al.cross_isp_bits * windows};
}

}  // namespace

SwarmSweep::SwarmSweep(const Metro& metro, const SimConfig& config)
    : metro_(&metro), config_(config), matcher_(make_matcher(config.matcher)) {
  CL_EXPECTS(config_.window.value() > 0);
  CL_EXPECTS(config_.q_over_beta >= 0);
}

void SwarmSweep::sweep(SwarmKey key, std::span<const std::uint32_t> indices,
                       const Trace& trace, SimResult& out) {
  // The active-list bookkeeping packs session indices into int32_t slots;
  // a pathological >2B-session swarm must fail loudly, not corrupt them.
  CL_EXPECTS(indices.size() <= static_cast<std::size_t>(
                                   std::numeric_limits<std::int32_t>::max()));
  const double dt = config_.window.value();
  // Upper bound of the lazily grown hourly grid: a session ending past
  // trace.span (corrupt #span= header) must fail loudly, exactly as the
  // old span-sized-grid bounds check did.
  const auto max_hours = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(trace.span.value() / 3600.0)));

  // Window-quantised join/leave events. Sessions shorter than one window
  // are skipped: they never complete a full Δτ streaming step.
  events_.clear();
  events_.reserve(indices.size() * 2);
  double watch_seconds = 0;
  for (std::uint32_t g = 0; g < indices.size(); ++g) {
    const SessionRecord& s = trace.sessions[indices[g]];
    watch_seconds += s.duration;
    const auto w_start = static_cast<std::uint64_t>(s.start / dt);
    const auto w_end = static_cast<std::uint64_t>(s.end() / dt);
    if (w_end <= w_start) continue;
    events_.push_back({w_start, 1, g});
    events_.push_back({w_end, 0, g});
  }
  if (events_.empty()) {
    if (config_.collect_swarms) {
      SwarmResult swarm;
      swarm.key = key;
      swarm.sessions = indices.size();
      swarm.capacity =
          trace.span.value() > 0 ? watch_seconds / trace.span.value() : 0;
      out.swarms.push_back(swarm);
    }
    return;
  }
  std::sort(events_.begin(), events_.end(),
            [](const Event& a, const Event& b) {
              if (a.window != b.window) return a.window < b.window;
              if (a.type != b.type) return a.type < b.type;
              return a.idx < b.idx;
            });

  active_.clear();
  pos_.assign(indices.size(), -1);
  TrafficBreakdown swarm_traffic;

  const auto process_span = [&](std::uint64_t w0, std::uint64_t w1) {
    // Seed peer: the longest-present member (deterministic tie-break).
    std::size_t seed = 0;
    for (std::size_t i = 1; i < active_.size(); ++i) {
      if (active_[i].join_window < active_[seed].join_window ||
          (active_[i].join_window == active_[seed].join_window &&
           active_[i].session < active_[seed].session)) {
        seed = i;
      }
    }
    matcher_->allocate(active_, seed, config_, alloc_);
    const auto total_windows = static_cast<double>(w1 - w0);

    for (std::size_t i = 0; i < active_.size(); ++i) {
      accumulate(swarm_traffic, alloc_[i], total_windows);
      if (config_.collect_per_user) {
        UserTraffic& ut = out.users[active_[i].user];
        ut.downloaded += Bits{alloc_[i].downloaded_bits() * total_windows};
        ut.uploaded += Bits{alloc_[i].upload_bits * total_windows};
      }
    }
    if (config_.collect_hourly) {
      std::uint64_t w = w0;
      while (w < w1) {
        const auto hour = static_cast<std::size_t>(
            static_cast<double>(w) * dt / 3600.0);
        const auto hour_end_window = static_cast<std::uint64_t>(
            std::ceil(static_cast<double>(hour + 1) * 3600.0 / dt));
        const std::uint64_t chunk_end = std::min(w1, hour_end_window);
        const auto chunk = static_cast<double>(chunk_end - w);
        // Grow the partial's grid lazily: only hours this swarm touches
        // get a row (HybridSimulator::run pads the merged result).
        CL_ENSURES(hour < max_hours);
        if (hour >= out.hourly.size()) out.hourly.resize(hour + 1);
        auto& row = out.hourly[hour];
        if (row.size() < metro_->isp_count()) {
          row.resize(metro_->isp_count());
        }
        for (std::size_t i = 0; i < active_.size(); ++i) {
          accumulate(row[active_[i].isp], alloc_[i], chunk);
        }
        w = chunk_end;
      }
    }
  };

  std::size_t k = 0;
  std::uint64_t cur_w = events_.front().window;
  while (k < events_.size()) {
    // Apply every event at cur_w (leaves first by sort order).
    while (k < events_.size() && events_[k].window == cur_w) {
      const Event& e = events_[k];
      if (e.type == 1) {
        const SessionRecord& s = trace.sessions[indices[e.idx]];
        ActivePeer peer;
        peer.session = e.idx;
        peer.user = s.user;
        peer.isp = s.isp;
        peer.exp = s.exp;
        peer.pop = metro_->isp(s.isp).pop_of(s.exp);
        peer.beta = s.beta().value();
        peer.join_window = cur_w;
        pos_[e.idx] = static_cast<std::int32_t>(active_.size());
        active_.push_back(peer);
      } else {
        const auto i = static_cast<std::size_t>(pos_[e.idx]);
        CL_ENSURES(pos_[e.idx] >= 0 && i < active_.size());
        active_[i] = active_.back();
        pos_[active_[i].session] = static_cast<std::int32_t>(i);
        active_.pop_back();
        pos_[e.idx] = -1;
      }
      ++k;
    }
    if (k == events_.size()) break;
    const std::uint64_t next_w = events_[k].window;
    if (!active_.empty()) process_span(cur_w, next_w);
    cur_w = next_w;
  }
  CL_ENSURES(active_.empty());

  out.total += swarm_traffic;
  if (config_.collect_swarms) {
    SwarmResult swarm;
    swarm.key = key;
    swarm.sessions = indices.size();
    swarm.capacity =
        trace.span.value() > 0 ? watch_seconds / trace.span.value() : 0;
    swarm.traffic = swarm_traffic;
    out.swarms.push_back(swarm);
  }
}

}  // namespace cl
