#include "sim/swarm_sweep.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <limits>

#include "sim/sweep_kernels.h"
#include "trace/bitrate.h"
#include "util/error.h"

namespace cl {

namespace {

// The traffic fold kernel views TrafficBreakdown / PeerAllocation as
// contiguous double lanes (server, peer[0..2], cross_isp[, upload]).
// Both are standard-layout aggregates of double-sized Quantity wrappers;
// pin the layout the reinterpret_cast relies on.
static_assert(sizeof(TrafficBreakdown) ==
              sweep_kernels::kTrafficLanes * sizeof(double));
static_assert(sizeof(PeerAllocation) == 6 * sizeof(double));
static_assert(offsetof(TrafficBreakdown, peer) == sizeof(double));
static_assert(offsetof(TrafficBreakdown, cross_isp) == 4 * sizeof(double));
static_assert(offsetof(PeerAllocation, peer_bits) == sizeof(double));
static_assert(offsetof(PeerAllocation, cross_isp_bits) == 4 * sizeof(double));
static_assert(offsetof(PeerAllocation, upload_bits) == 5 * sizeof(double));

double* traffic_lanes(TrafficBreakdown& tb) {
  return reinterpret_cast<double*>(&tb);
}
const double* alloc_lanes(const PeerAllocation& al) {
  return reinterpret_cast<const double*>(&al);
}

/// Upper bound of the lazily grown hourly grid: a session ending past
/// the span (corrupt #span= header) must fail loudly, exactly as the
/// old span-sized-grid bounds check did.
std::size_t hour_bound(double span_seconds) {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(span_seconds / 3600.0)));
}

/// β lookup column for the gather kernel: bitrate class byte → bits/s.
std::array<double, kBitrateClasses> beta_table() {
  std::array<double, kBitrateClasses> table{};
  for (std::size_t b = 0; b < kBitrateClasses; ++b) {
    table[b] = bitrate_of(static_cast<BitrateClass>(b)).value();
  }
  return table;
}

/// Packed leave-event sort key layout: window in the high 40 bits,
/// session index in the low 24. Sorting the keys as plain u64 yields
/// exactly the (window, idx) order the generic event sort produces for
/// leaves. Swarms beyond either field's range (a >16.7M-session swarm,
/// or a window index past ~34 800 years at Δτ = 10 s) take the generic
/// run_events fallback.
constexpr int kLeaveIdxBits = 24;
constexpr std::uint64_t kLeaveIdxMask = (std::uint64_t{1} << kLeaveIdxBits) - 1;
constexpr std::uint64_t kMaxPackWindow = std::uint64_t{1}
                                         << (64 - kLeaveIdxBits);

double seconds_between(std::chrono::steady_clock::time_point t0,
                       std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

SwarmSweep::SwarmSweep(const Metro& metro, const SimConfig& config,
                       SweepKernelTiming* timing)
    : metro_(&metro),
      config_(config),
      matcher_(make_matcher(config.matcher)),
      timing_(timing),
      use_simd_(simd::active()) {
  CL_EXPECTS(config_.window.value() > 0);
  CL_EXPECTS(config_.q_over_beta >= 0);
}

template <typename Allocate>
void SwarmSweep::process_stretch(Allocate& allocate, std::uint64_t w0,
                                 std::uint64_t w1,
                                 TrafficBreakdown& swarm_traffic,
                                 std::size_t max_hours, SimResult& out) {
  const double dt = config_.window.value();
  if (lone_flat_ && active_.size() == 1) {
    // Lone-peer stretch on the flat-allocator route: the allocation is
    // fully determined (server_bits = β·Δτ, every other lane zero — see
    // allocate_existence_flat's n == 1 branch), so skip the allocation
    // and fold only the server lane. Bit-identical to the full path:
    // the skipped lanes would add +0.0·windows = +0.0, and the traffic
    // accumulators are never -0.0 (they start at +0.0 and only gain
    // non-negative terms), so x + 0.0 == x bitwise.
    const ActivePeer& a = active_[0];
    const double demand = a.beta * dt;
    const auto total_windows = static_cast<double>(w1 - w0);
    traffic_lanes(swarm_traffic)[0] += demand * total_windows;
    if (config_.collect_per_user) {
      // downloaded_bits() would sum demand + four +0.0 terms — bitwise
      // `demand`; the upload add would be +0.0 — skipped (same argument).
      out.users[a.user].downloaded += Bits{demand * total_windows};
    }
    if (config_.collect_hourly) {
      std::uint64_t w = w0;
      while (w < w1) {
        const auto hour =
            static_cast<std::size_t>(static_cast<double>(w) * dt / 3600.0);
        const auto hour_end_window = static_cast<std::uint64_t>(
            std::ceil(static_cast<double>(hour + 1) * 3600.0 / dt));
        const std::uint64_t chunk_end = std::min(w1, hour_end_window);
        const auto chunk = static_cast<double>(chunk_end - w);
        CL_ENSURES(hour < max_hours);
        if (hour >= out.hourly.size()) out.hourly.resize(hour + 1);
        auto& row = out.hourly[hour];
        if (row.size() < metro_->isp_count()) {
          row.resize(metro_->isp_count());
        }
        traffic_lanes(row[a.isp])[0] += demand * chunk;
        w = chunk_end;
      }
    }
    return;
  }
  if (lone_flat_ && active_.size() == 2 && !config_.overload) {
    // Pair stretch, closed form. With two peers in one ISP the flat
    // allocator's counting degenerates: the non-seed peer moves
    // d = ratio·β·Δτ to the first level the pair shares (ExP, else PoP,
    // else core), and whichever bucket serves, it has exactly two
    // members — both uploads are d / 2.0, the same divide the counting
    // path performs (cnt cast 2u → 2.0). Lanes that stay zero fold as
    // +0.0 adds either way, so fold_traffic on these stack rows executes
    // the full path's exact add sequence.
    const ActivePeer& a0 = active_[0];
    const ActivePeer& a1 = active_[1];
    const std::size_t seed =
        (a1.join_window < a0.join_window ||
         (a1.join_window == a0.join_window && a1.session < a0.session))
            ? 1
            : 0;
    const std::size_t other = 1 - seed;
    double al[2][6] = {};  // server, peer[0..2], cross_isp, upload
    al[0][0] = a0.beta * dt;
    al[1][0] = a1.beta * dt;
    const double d = std::min(config_.q_over_beta, 1.0) * al[other][0];
    if (d > 0) {
      const ActivePeer& ao = active_[other];
      const ActivePeer& as = active_[seed];
      const std::size_t lvl =
          ao.exp == as.exp
              ? index(LocalityLevel::kExchangePoint)
              : (ao.pop == as.pop ? index(LocalityLevel::kPop)
                                  : index(LocalityLevel::kCore));
      al[other][1 + lvl] = d;
      al[other][0] -= d;
      const double up = d / 2.0;
      al[0][5] = up;
      al[1][5] = up;
    }
    const auto total_windows = static_cast<double>(w1 - w0);
    for (std::size_t i = 0; i < 2; ++i) {
      sweep_kernels::fold_traffic(use_simd_, traffic_lanes(swarm_traffic),
                                  al[i], total_windows);
      if (config_.collect_per_user) {
        UserTraffic& ut = out.users[active_[i].user];
        // downloaded_bits() order: (server + cross), then the peer lanes.
        const double down = al[i][0] + al[i][4] + al[i][1] + al[i][2] +
                            al[i][3];
        ut.downloaded += Bits{down * total_windows};
        ut.uploaded += Bits{al[i][5] * total_windows};
      }
    }
    if (config_.collect_hourly) {
      std::uint64_t w = w0;
      while (w < w1) {
        const auto hour =
            static_cast<std::size_t>(static_cast<double>(w) * dt / 3600.0);
        const auto hour_end_window = static_cast<std::uint64_t>(
            std::ceil(static_cast<double>(hour + 1) * 3600.0 / dt));
        const std::uint64_t chunk_end = std::min(w1, hour_end_window);
        const auto chunk = static_cast<double>(chunk_end - w);
        CL_ENSURES(hour < max_hours);
        if (hour >= out.hourly.size()) out.hourly.resize(hour + 1);
        auto& row = out.hourly[hour];
        if (row.size() < metro_->isp_count()) {
          row.resize(metro_->isp_count());
        }
        for (std::size_t i = 0; i < 2; ++i) {
          sweep_kernels::fold_traffic(use_simd_,
                                      traffic_lanes(row[active_[i].isp]),
                                      al[i], chunk);
        }
        w = chunk_end;
      }
    }
    return;
  }
  // Seed peer: the longest-present member (deterministic tie-break).
  std::size_t seed = 0;
  for (std::size_t i = 1; i < active_.size(); ++i) {
    if (active_[i].join_window < active_[seed].join_window ||
        (active_[i].join_window == active_[seed].join_window &&
         active_[i].session < active_[seed].session)) {
      seed = i;
    }
  }
  allocate(std::span<const ActivePeer>(active_), seed);

  // Overload model (SimConfig::overload): cap peer transfers in the
  // stretch's *first* window at the aggregate upload capacity of the warm
  // members (join_window < w0 — they completed at least one full window
  // and hold content). Fresh joiners are cold: they demand but cannot
  // serve. From w0+1 on every member is warm and capacity q·Σβ·Δτ covers
  // demand min(q/β,1)·Σ_{i≠seed}β·Δτ by construction, so later windows
  // never overload. Excess moves peer→server lane for that window (the
  // CDN absorbs what the swarm cannot carry) and is tallied as spill.
  double spill_bits = 0.0;
  bool split_first = false;
  if (config_.overload) {
    double demand = 0.0;
    double capacity = 0.0;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const double* lanes = alloc_lanes(alloc_[i]);
      demand += lanes[1] + lanes[2] + lanes[3] + lanes[4];
      if (active_[i].join_window < w0) {
        capacity += config_.q_over_beta * active_[i].beta * dt;
      }
    }
    if (demand > capacity) {
      const double scale = capacity > 0 ? capacity / demand : 0.0;
      spill_alloc_.resize(active_.size());
      for (std::size_t i = 0; i < active_.size(); ++i) {
        spill_alloc_[i] = alloc_[i];
        double* lanes = reinterpret_cast<double*>(&spill_alloc_[i]);
        double moved = 0.0;
        for (std::size_t l = 1; l <= 4; ++l) {
          const double kept = lanes[l] * scale;
          moved += lanes[l] - kept;
          lanes[l] = kept;
        }
        lanes[0] += moved;  // server absorbs the shortfall
        lanes[5] *= scale;  // uploads shrink with the served transfers
        spill_bits += moved;
      }
      split_first = true;
    }
  }
  // The stretch folds as two runs: [w0, wm) under the (possibly capped)
  // first-window allocation and [wm, w1) under the steady one. Without a
  // spill wm == w1 and the fold sequence is exactly the unsplit one.
  const std::vector<PeerAllocation>& first_alloc =
      split_first ? spill_alloc_ : alloc_;
  const std::uint64_t wm = split_first ? w0 + 1 : w1;

  const auto fold_totals = [&](const std::vector<PeerAllocation>& alloc_row,
                               double windows) {
    for (std::size_t i = 0; i < active_.size(); ++i) {
      sweep_kernels::fold_traffic(use_simd_, traffic_lanes(swarm_traffic),
                                  alloc_lanes(alloc_row[i]), windows);
      if (config_.collect_per_user) {
        UserTraffic& ut = out.users[active_[i].user];
        ut.downloaded += Bits{alloc_row[i].downloaded_bits() * windows};
        ut.uploaded += Bits{alloc_row[i].upload_bits * windows};
      }
    }
  };
  fold_totals(first_alloc, static_cast<double>(wm - w0));
  if (wm < w1) fold_totals(alloc_, static_cast<double>(w1 - wm));

  if (split_first) {
    out.overload_spill += Bits{spill_bits};
    if (config_.collect_hourly) {
      const auto hour =
          static_cast<std::size_t>(static_cast<double>(w0) * dt / 3600.0);
      CL_ENSURES(hour < max_hours);
      if (hour >= out.hourly_spill.size()) out.hourly_spill.resize(hour + 1);
      out.hourly_spill[hour] += Bits{spill_bits};
    }
  }
  if (config_.collect_hourly) {
    const auto fold_hourly = [&](const std::vector<PeerAllocation>& alloc_row,
                                 std::uint64_t wa, std::uint64_t wb) {
      std::uint64_t w = wa;
      while (w < wb) {
        const auto hour =
            static_cast<std::size_t>(static_cast<double>(w) * dt / 3600.0);
        const auto hour_end_window = static_cast<std::uint64_t>(
            std::ceil(static_cast<double>(hour + 1) * 3600.0 / dt));
        const std::uint64_t chunk_end = std::min(wb, hour_end_window);
        const auto chunk = static_cast<double>(chunk_end - w);
        // Grow the partial's grid lazily: only hours this swarm touches
        // get a row (HybridSimulator::run pads the merged result).
        CL_ENSURES(hour < max_hours);
        if (hour >= out.hourly.size()) out.hourly.resize(hour + 1);
        auto& row = out.hourly[hour];
        if (row.size() < metro_->isp_count()) {
          row.resize(metro_->isp_count());
        }
        for (std::size_t i = 0; i < active_.size(); ++i) {
          sweep_kernels::fold_traffic(use_simd_,
                                      traffic_lanes(row[active_[i].isp]),
                                      alloc_lanes(alloc_row[i]), chunk);
        }
        w = chunk_end;
      }
    };
    fold_hourly(first_alloc, w0, wm);
    if (wm < w1) fold_hourly(alloc_, wm, w1);
  }
}

void SwarmSweep::emit_swarm(SwarmKey key, std::size_t session_count,
                            double watch_seconds, double span_seconds,
                            const TrafficBreakdown* traffic, SimResult& out) {
  if (!config_.collect_swarms) return;
  SwarmResult swarm;
  swarm.key = key;
  swarm.sessions = session_count;
  swarm.capacity = span_seconds > 0 ? watch_seconds / span_seconds : 0;
  if (traffic != nullptr) swarm.traffic = *traffic;
  out.swarms.push_back(swarm);
}

template <typename MakePeer, typename Allocate>
void SwarmSweep::run_events(SwarmKey key, std::size_t session_count,
                            double watch_seconds, double span_seconds,
                            std::size_t max_hours, SimResult& out,
                            MakePeer&& make_peer, Allocate&& allocate) {
  if (events_.empty()) {
    emit_swarm(key, session_count, watch_seconds, span_seconds, nullptr, out);
    return;
  }
  std::sort(events_.begin(), events_.end(),
            [](const Event& a, const Event& b) {
              if (a.window != b.window) return a.window < b.window;
              if (a.type != b.type) return a.type < b.type;
              return a.idx < b.idx;
            });

  active_.clear();
  pos_.assign(session_count, -1);
  TrafficBreakdown swarm_traffic;

  std::size_t k = 0;
  std::uint64_t cur_w = events_.front().window;
  while (k < events_.size()) {
    // Apply every event at cur_w (leaves first by sort order).
    while (k < events_.size() && events_[k].window == cur_w) {
      const Event& e = events_[k];
      if (e.type == 1) {
        pos_[e.idx] = static_cast<std::int32_t>(active_.size());
        active_.push_back(make_peer(e.idx, cur_w));
      } else {
        const auto i = static_cast<std::size_t>(pos_[e.idx]);
        CL_ENSURES(pos_[e.idx] >= 0 && i < active_.size());
        active_[i] = active_.back();
        pos_[active_[i].session] = static_cast<std::int32_t>(i);
        active_.pop_back();
        pos_[e.idx] = -1;
      }
      ++k;
    }
    if (k == events_.size()) break;
    const std::uint64_t next_w = events_[k].window;
    if (!active_.empty()) {
      process_stretch(allocate, cur_w, next_w, swarm_traffic, max_hours, out);
    }
    cur_w = next_w;
  }
  CL_ENSURES(active_.empty());

  out.total += swarm_traffic;
  emit_swarm(key, session_count, watch_seconds, span_seconds, &swarm_traffic,
             out);
}

template <typename MakePeer, typename Allocate>
void SwarmSweep::run_events_merge(SwarmKey key, std::size_t session_count,
                                  double watch_seconds, double span_seconds,
                                  std::size_t max_hours, SimResult& out,
                                  MakePeer&& make_peer, Allocate&& allocate) {
  const std::size_t m = join_idx_.size();
  if (m == 0) {
    emit_swarm(key, session_count, watch_seconds, span_seconds, nullptr, out);
    return;
  }
  active_.clear();
  pos_.assign(session_count, -1);
  TrafficBreakdown swarm_traffic;

  // The earliest event is always a join (every leave strictly follows
  // its own join), so starting at the first join window replays exactly
  // the sorted-event order: all leaves at cur_w, then all joins, then
  // one stretch to the next event window.
  std::size_t ji = 0;
  std::size_t li = 0;
  std::uint64_t cur_w = w_start_[join_idx_[0]];
  for (;;) {
    while (li < m && (leave_keys_[li] >> kLeaveIdxBits) == cur_w) {
      const auto idx =
          static_cast<std::uint32_t>(leave_keys_[li] & kLeaveIdxMask);
      const auto i = static_cast<std::size_t>(pos_[idx]);
      CL_ENSURES(pos_[idx] >= 0 && i < active_.size());
      active_[i] = active_.back();
      pos_[active_[i].session] = static_cast<std::int32_t>(i);
      active_.pop_back();
      pos_[idx] = -1;
      ++li;
    }
    while (ji < m && w_start_[join_idx_[ji]] == cur_w) {
      const std::uint32_t g = join_idx_[ji];
      pos_[g] = static_cast<std::int32_t>(active_.size());
      active_.push_back(make_peer(g, cur_w));
      ++ji;
    }
    if (ji == m && li == m) break;
    std::uint64_t next_w = std::numeric_limits<std::uint64_t>::max();
    if (li < m) next_w = leave_keys_[li] >> kLeaveIdxBits;
    if (ji < m) next_w = std::min(next_w, w_start_[join_idx_[ji]]);
    if (!active_.empty()) {
      process_stretch(allocate, cur_w, next_w, swarm_traffic, max_hours, out);
    }
    cur_w = next_w;
  }
  CL_ENSURES(active_.empty());

  out.total += swarm_traffic;
  emit_swarm(key, session_count, watch_seconds, span_seconds, &swarm_traffic,
             out);
}

void SwarmSweep::sweep(SwarmKey key, std::span<const std::uint32_t> indices,
                       const TraceView& view, SimResult& out) {
  // The active-list bookkeeping packs session indices into int32_t slots;
  // a pathological >2B-session swarm must fail loudly, not corrupt them.
  CL_EXPECTS(indices.size() <= static_cast<std::size_t>(
                                   std::numeric_limits<std::int32_t>::max()));
  using Clock = std::chrono::steady_clock;
  const bool timed = timing_ != nullptr;
  Clock::time_point t0;
  if (timed) t0 = Clock::now();

  const double dt = config_.window.value();
  const std::size_t count = indices.size();
  // AVX2's i32 gathers treat indices as signed; a >2³¹-session trace
  // must fall back to the scalar gather twins.
  const bool kernel_simd =
      use_simd_ &&
      view.size() <= static_cast<std::size_t>(
                         std::numeric_limits<std::int32_t>::max());

  // Gather phase 1 (kernel 1): window bounds, stripe-8 watch-time sum,
  // and the window-crossing count — sessions shorter than one window
  // never complete a full Δτ streaming step and emit no events, so the
  // crossing count sizes the event streams exactly.
  w_start_.resize(count);
  w_end_.resize(count);
  const sweep_kernels::WindowBounds bounds = sweep_kernels::window_bounds(
      kernel_simd, indices, view.start().data(), view.duration().data(), dt,
      w_start_.data(), w_end_.data());

  // Build the event streams. Joins inherit the trace's start ordering
  // (verified — a shuffled trace falls back to the sorting loop), and
  // leaves become packed u64 sort keys when they fit.
  const bool packable =
      bounds.max_end_window < kMaxPackWindow && count <= kLeaveIdxMask + 1;
  bool joins_sorted = true;
  join_idx_.clear();
  leave_keys_.clear();
  if (packable) {
    join_idx_.reserve(bounds.crossings);
    leave_keys_.reserve(bounds.crossings);
    std::uint64_t prev = 0;
    for (std::size_t g = 0; g < count; ++g) {
      if (w_end_[g] > w_start_[g]) {
        if (w_start_[g] < prev) joins_sorted = false;
        prev = w_start_[g];
        join_idx_.push_back(static_cast<std::uint32_t>(g));
        leave_keys_.push_back((w_end_[g] << kLeaveIdxBits) | g);
      }
    }
  }
  const bool merge_path = packable && joins_sorted;
  if (!merge_path) {
    events_.clear();
    events_.reserve(bounds.crossings * 2);
    for (std::size_t g = 0; g < count; ++g) {
      if (w_end_[g] > w_start_[g]) {
        events_.push_back({w_start_[g], 1, static_cast<std::uint32_t>(g)});
        events_.push_back({w_end_[g], 0, static_cast<std::uint32_t>(g)});
      }
    }
  }
  Clock::time_point t1;
  if (timed) t1 = Clock::now();

  bool single_isp = true;
  if (bounds.crossings > 0) {
    // Gather phase 2 (kernel 2): the per-peer fields the event loop
    // touches, as contiguous primitive arrays (skipped entirely for
    // swarms with no window-crossing session).
    const bool want_user = config_.collect_per_user;
    if (want_user) g_user_.resize(count);
    g_isp_.resize(count);
    g_exp_.resize(count);
    g_pop_.resize(count);
    g_beta_.resize(count);
    static const std::array<double, kBitrateClasses> kBetaTable = beta_table();
    const sweep_kernels::PeerGather peers = sweep_kernels::gather_peer_columns(
        kernel_simd, indices, view.user().data(), view.isp().data(),
        view.exp().data(), view.bitrate().data(), kBetaTable.data(),
        want_user ? g_user_.data() : nullptr, g_isp_.data(), g_exp_.data(),
        g_beta_.data());
    single_isp = peers.single_isp;
    std::uint32_t max_pop = 0;
    if (single_isp) {
      // One shared ExP→PoP table — gatherable.
      const std::span<const std::uint32_t> table =
          metro_->isp(g_isp_[0]).exp_to_pop();
      max_pop = sweep_kernels::gather_pops(kernel_simd, g_exp_.data(), count,
                                           table.data(), g_pop_.data());
    } else {
      for (std::size_t g = 0; g < count; ++g) {
        const std::uint32_t pop = metro_->isp(g_isp_[g]).pop_of(g_exp_[g]);
        g_pop_[g] = pop;
        max_pop = std::max(max_pop, pop);
      }
    }
    // Size the flat matcher scratch (values stay zero: resize only adds
    // zeros, and allocate_existence_flat re-zeroes what it touches).
    if (cnt_exp_.size() <= peers.max_exp) {
      cnt_exp_.resize(peers.max_exp + 1, 0);
      dem_exp_.resize(peers.max_exp + 1, 0.0);
    }
    if (cnt_pop_.size() <= max_pop) {
      cnt_pop_.resize(max_pop + 1, 0);
      dem_pop_.resize(max_pop + 1, 0.0);
    }
  }
  Clock::time_point t2;
  if (timed) t2 = Clock::now();

  // The flat allocator's ExP/PoP-indexed arrays assume every active peer
  // shares one ISP — true for every ISP-keyed swarm; ISP-spanning swarms
  // (cross-ISP ablation) take the generic matcher.
  const bool flat = config_.matcher == MatcherKind::kExistence && single_isp;
  lone_flat_ = flat;
  double allocate_seconds = 0;
  const bool have_user = config_.collect_per_user;
  const auto make_peer = [&](std::uint32_t idx, std::uint64_t window) {
    ActivePeer peer;
    peer.session = idx;
    // The user id only feeds the per-user split; when that collection is
    // off the user column was never gathered (see gather phase 2).
    peer.user = have_user ? g_user_[idx] : 0;
    peer.isp = g_isp_[idx];
    peer.exp = g_exp_[idx];
    peer.pop = g_pop_[idx];
    peer.beta = g_beta_[idx];
    peer.join_window = window;
    return peer;
  };
  const auto allocate = [&](std::span<const ActivePeer> actives,
                            std::size_t seed) {
    Clock::time_point a0;
    if (timed) a0 = Clock::now();
    if (flat) {
      allocate_existence_flat(actives, seed, alloc_);
    } else {
      matcher_->allocate(actives, seed, config_, alloc_);
    }
    if (timed) allocate_seconds += seconds_between(a0, Clock::now());
  };

  const double span_seconds = view.span().value();
  const std::size_t max_hours = hour_bound(span_seconds);
  if (merge_path) {
    std::sort(leave_keys_.begin(), leave_keys_.end());
    run_events_merge(key, count, bounds.watch_seconds, span_seconds, max_hours,
                     out, make_peer, allocate);
  } else {
    run_events(key, count, bounds.watch_seconds, span_seconds, max_hours, out,
               make_peer, allocate);
  }

  if (timed) {
    const auto t3 = Clock::now();
    timing_->gather1_seconds.fetch_add(seconds_between(t0, t1),
                                       std::memory_order_relaxed);
    timing_->gather2_seconds.fetch_add(seconds_between(t1, t2),
                                       std::memory_order_relaxed);
    timing_->events_seconds.fetch_add(
        seconds_between(t2, t3) - allocate_seconds, std::memory_order_relaxed);
    timing_->allocate_seconds.fetch_add(allocate_seconds,
                                        std::memory_order_relaxed);
  }
}

void SwarmSweep::sweep_rows(SwarmKey key,
                            std::span<const std::uint32_t> indices,
                            const Trace& trace, SimResult& out) {
  CL_EXPECTS(indices.size() <= static_cast<std::size_t>(
                                   std::numeric_limits<std::int32_t>::max()));
  const double dt = config_.window.value();
  const std::size_t count = indices.size();
  lone_flat_ = false;  // reference path: always through the matcher
  // First pass: window bounds into scratch + the stripe-8 watch-time sum
  // (the same reduction shape as sweep()'s kernel 1 — the two paths'
  // capacities must agree bit-for-bit) + the exact event count.
  w_start_.resize(count);
  w_end_.resize(count);
  double acc8[sweep_kernels::kStripe] = {};
  std::size_t crossings = 0;
  for (std::size_t g = 0; g < count; ++g) {
    const SessionRecord& s = trace.sessions[indices[g]];
    acc8[g % sweep_kernels::kStripe] += s.duration;
    const auto w_start = static_cast<std::uint64_t>(s.start / dt);
    const auto w_end = static_cast<std::uint64_t>(s.end() / dt);
    w_start_[g] = w_start;
    w_end_[g] = w_end;
    crossings += w_end > w_start ? 1 : 0;
  }
  double watch_seconds = acc8[0];
  // [vec:rows-watch-fold]
  for (std::size_t k = 1; k < sweep_kernels::kStripe; ++k) {
    watch_seconds += acc8[k];
  }
  events_.clear();
  events_.reserve(crossings * 2);
  for (std::size_t g = 0; g < count; ++g) {
    if (w_end_[g] > w_start_[g]) {
      events_.push_back({w_start_[g], 1, static_cast<std::uint32_t>(g)});
      events_.push_back({w_end_[g], 0, static_cast<std::uint32_t>(g)});
    }
  }
  run_events(
      key, count, watch_seconds, trace.span.value(),
      hour_bound(trace.span.value()), out,
      [&](std::uint32_t idx, std::uint64_t window) {
        const SessionRecord& s = trace.sessions[indices[idx]];
        ActivePeer peer;
        peer.session = idx;
        peer.user = s.user;
        peer.isp = s.isp;
        peer.exp = s.exp;
        peer.pop = metro_->isp(s.isp).pop_of(s.exp);
        peer.beta = s.beta().value();
        peer.join_window = window;
        return peer;
      },
      [&](std::span<const ActivePeer> actives, std::size_t seed) {
        matcher_->allocate(actives, seed, config_, alloc_);
      });
}

void SwarmSweep::allocate_existence_flat(std::span<const ActivePeer> actives,
                                         std::size_t seed_index,
                                         std::vector<PeerAllocation>& out) {
  const std::size_t n = actives.size();
  CL_EXPECTS(n == 0 || seed_index < n);
  out.assign(n, PeerAllocation{});
  if (n == 0) return;
  const double dt = config_.window.value();
  if (n == 1) {
    // A lone peer pulls everything from the CDN and uploads nothing —
    // the dominant stretch shape in sparse swarms, worth skipping the
    // counting passes for. Identical to the general path below (every
    // peer transfer is gated on n >= 2).
    out[0].server_bits = actives[0].beta * dt;
    return;
  }
  const double ratio = std::min(config_.q_over_beta, 1.0);

  for (const ActivePeer& a : actives) {
    ++cnt_exp_[a.exp];
    ++cnt_pop_[a.pop];
  }
  const auto cnt_isp = static_cast<std::uint32_t>(n);  // single-ISP swarm

  // Same accumulation order as ExistenceMatcher::allocate — every
  // floating-point add/divide happens on the same values in the same
  // sequence, so the allocation is bit-identical to the generic matcher.
  double dem_core = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const ActivePeer& a = actives[i];
    const double demand = a.beta * dt;
    out[i].server_bits = demand;
    if (i == seed_index) continue;
    const double d = ratio * demand;
    if (d <= 0) continue;
    if (cnt_exp_[a.exp] >= 2) {
      out[i].peer_bits[index(LocalityLevel::kExchangePoint)] = d;
      dem_exp_[a.exp] += d;
    } else if (cnt_pop_[a.pop] >= 2) {
      out[i].peer_bits[index(LocalityLevel::kPop)] = d;
      dem_pop_[a.pop] += d;
    } else {
      // With n >= 2 peers in one ISP the core layer always has company;
      // the generic matcher's cross-ISP branch is unreachable here.
      out[i].peer_bits[index(LocalityLevel::kCore)] = d;
      dem_core += d;
    }
    out[i].server_bits -= d;
  }

  // Attribute uploads evenly across the members of each serving bucket
  // (kernel 3; see DESIGN.md: totals are exact, the per-user split is
  // the symmetric-swarm approximation). A bucket's demand is > 0 iff the
  // map-based matcher would have an entry for it (all deposits are > 0).
  // The core share is the same divide for every member — hoisted.
  const double core_term =
      dem_core > 0 ? dem_core / static_cast<double>(cnt_isp) : 0.0;
  sweep_kernels::upload_shares(use_simd_, actives.data(), n, dem_exp_.data(),
                               cnt_exp_.data(), dem_pop_.data(),
                               cnt_pop_.data(), core_term, out.data());

  // Restore the all-zero scratch invariant (touched entries only).
  for (const ActivePeer& a : actives) {
    cnt_exp_[a.exp] = 0;
    dem_exp_[a.exp] = 0;
    cnt_pop_[a.pop] = 0;
    dem_pop_[a.pop] = 0;
  }
}

}  // namespace cl
