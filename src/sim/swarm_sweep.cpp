#include "sim/swarm_sweep.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace cl {

namespace {

void accumulate(TrafficBreakdown& tb, const PeerAllocation& al,
                double windows) {
  tb.server += Bits{al.server_bits * windows};
  for (std::size_t l = 0; l < kLocalityLevels; ++l) {
    tb.peer[l] += Bits{al.peer_bits[l] * windows};
  }
  tb.cross_isp += Bits{al.cross_isp_bits * windows};
}

/// Upper bound of the lazily grown hourly grid: a session ending past
/// the span (corrupt #span= header) must fail loudly, exactly as the
/// old span-sized-grid bounds check did.
std::size_t hour_bound(double span_seconds) {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(span_seconds / 3600.0)));
}

}  // namespace

SwarmSweep::SwarmSweep(const Metro& metro, const SimConfig& config)
    : metro_(&metro), config_(config), matcher_(make_matcher(config.matcher)) {
  CL_EXPECTS(config_.window.value() > 0);
  CL_EXPECTS(config_.q_over_beta >= 0);
}

template <typename MakePeer, typename Allocate>
void SwarmSweep::run_events(SwarmKey key, std::size_t session_count,
                            double watch_seconds, double span_seconds,
                            std::size_t max_hours, SimResult& out,
                            MakePeer&& make_peer, Allocate&& allocate) {
  if (events_.empty()) {
    if (config_.collect_swarms) {
      SwarmResult swarm;
      swarm.key = key;
      swarm.sessions = session_count;
      swarm.capacity = span_seconds > 0 ? watch_seconds / span_seconds : 0;
      out.swarms.push_back(swarm);
    }
    return;
  }
  std::sort(events_.begin(), events_.end(),
            [](const Event& a, const Event& b) {
              if (a.window != b.window) return a.window < b.window;
              if (a.type != b.type) return a.type < b.type;
              return a.idx < b.idx;
            });

  const double dt = config_.window.value();
  active_.clear();
  pos_.assign(session_count, -1);
  TrafficBreakdown swarm_traffic;

  const auto process_span = [&](std::uint64_t w0, std::uint64_t w1) {
    // Seed peer: the longest-present member (deterministic tie-break).
    std::size_t seed = 0;
    for (std::size_t i = 1; i < active_.size(); ++i) {
      if (active_[i].join_window < active_[seed].join_window ||
          (active_[i].join_window == active_[seed].join_window &&
           active_[i].session < active_[seed].session)) {
        seed = i;
      }
    }
    allocate(std::span<const ActivePeer>(active_), seed);
    const auto total_windows = static_cast<double>(w1 - w0);

    for (std::size_t i = 0; i < active_.size(); ++i) {
      accumulate(swarm_traffic, alloc_[i], total_windows);
      if (config_.collect_per_user) {
        UserTraffic& ut = out.users[active_[i].user];
        ut.downloaded += Bits{alloc_[i].downloaded_bits() * total_windows};
        ut.uploaded += Bits{alloc_[i].upload_bits * total_windows};
      }
    }
    if (config_.collect_hourly) {
      std::uint64_t w = w0;
      while (w < w1) {
        const auto hour = static_cast<std::size_t>(
            static_cast<double>(w) * dt / 3600.0);
        const auto hour_end_window = static_cast<std::uint64_t>(
            std::ceil(static_cast<double>(hour + 1) * 3600.0 / dt));
        const std::uint64_t chunk_end = std::min(w1, hour_end_window);
        const auto chunk = static_cast<double>(chunk_end - w);
        // Grow the partial's grid lazily: only hours this swarm touches
        // get a row (HybridSimulator::run pads the merged result).
        CL_ENSURES(hour < max_hours);
        if (hour >= out.hourly.size()) out.hourly.resize(hour + 1);
        auto& row = out.hourly[hour];
        if (row.size() < metro_->isp_count()) {
          row.resize(metro_->isp_count());
        }
        for (std::size_t i = 0; i < active_.size(); ++i) {
          accumulate(row[active_[i].isp], alloc_[i], chunk);
        }
        w = chunk_end;
      }
    }
  };

  std::size_t k = 0;
  std::uint64_t cur_w = events_.front().window;
  while (k < events_.size()) {
    // Apply every event at cur_w (leaves first by sort order).
    while (k < events_.size() && events_[k].window == cur_w) {
      const Event& e = events_[k];
      if (e.type == 1) {
        pos_[e.idx] = static_cast<std::int32_t>(active_.size());
        active_.push_back(make_peer(e.idx, cur_w));
      } else {
        const auto i = static_cast<std::size_t>(pos_[e.idx]);
        CL_ENSURES(pos_[e.idx] >= 0 && i < active_.size());
        active_[i] = active_.back();
        pos_[active_[i].session] = static_cast<std::int32_t>(i);
        active_.pop_back();
        pos_[e.idx] = -1;
      }
      ++k;
    }
    if (k == events_.size()) break;
    const std::uint64_t next_w = events_[k].window;
    if (!active_.empty()) process_span(cur_w, next_w);
    cur_w = next_w;
  }
  CL_ENSURES(active_.empty());

  out.total += swarm_traffic;
  if (config_.collect_swarms) {
    SwarmResult swarm;
    swarm.key = key;
    swarm.sessions = session_count;
    swarm.capacity = span_seconds > 0 ? watch_seconds / span_seconds : 0;
    swarm.traffic = swarm_traffic;
    out.swarms.push_back(swarm);
  }
}

void SwarmSweep::sweep(SwarmKey key, std::span<const std::uint32_t> indices,
                       const TraceView& view, SimResult& out) {
  // The active-list bookkeeping packs session indices into int32_t slots;
  // a pathological >2B-session swarm must fail loudly, not corrupt them.
  CL_EXPECTS(indices.size() <= static_cast<std::size_t>(
                                   std::numeric_limits<std::int32_t>::max()));
  const double dt = config_.window.value();
  const std::size_t count = indices.size();
  const std::span<const double> start = view.start();
  const std::span<const double> duration = view.duration();

  // Gather phase 1: window bounds and watch time, one tight pass over
  // the start/duration columns into contiguous scratch. Sessions shorter
  // than one window are skipped below: they never complete a full Δτ
  // streaming step.
  w_start_.resize(count);
  w_end_.resize(count);
  double watch_seconds = 0;
  for (std::size_t g = 0; g < count; ++g) {
    const std::uint32_t idx = indices[g];
    const double s = start[idx];
    const double d = duration[idx];
    watch_seconds += d;
    w_start_[g] = static_cast<std::uint64_t>(s / dt);
    w_end_[g] = static_cast<std::uint64_t>((s + d) / dt);
  }
  events_.clear();
  events_.reserve(count * 2);
  for (std::size_t g = 0; g < count; ++g) {
    if (w_end_[g] > w_start_[g]) {
      events_.push_back({w_start_[g], 1, static_cast<std::uint32_t>(g)});
      events_.push_back({w_end_[g], 0, static_cast<std::uint32_t>(g)});
    }
  }

  bool single_isp = true;
  if (!events_.empty()) {
    // Gather phase 2: the per-peer fields the event loop touches, again
    // as contiguous primitive arrays (skipped entirely for swarms with
    // no window-crossing session).
    const std::span<const std::uint32_t> users = view.user();
    const std::span<const std::uint32_t> isps = view.isp();
    const std::span<const std::uint32_t> exps = view.exp();
    const std::span<const std::uint8_t> bitrates = view.bitrate();
    g_user_.resize(count);
    g_isp_.resize(count);
    g_exp_.resize(count);
    g_pop_.resize(count);
    g_beta_.resize(count);
    const std::uint32_t isp0 = isps[indices[0]];
    std::uint32_t max_exp = 0;
    std::uint32_t max_pop = 0;
    for (std::size_t g = 0; g < count; ++g) {
      const std::uint32_t idx = indices[g];
      g_user_[g] = users[idx];
      const std::uint32_t isp = isps[idx];
      g_isp_[g] = isp;
      if (isp != isp0) single_isp = false;
      const std::uint32_t exp = exps[idx];
      g_exp_[g] = exp;
      const std::uint32_t pop = metro_->isp(isp).pop_of(exp);
      g_pop_[g] = pop;
      g_beta_[g] =
          bitrate_of(static_cast<BitrateClass>(bitrates[idx])).value();
      max_exp = std::max(max_exp, exp);
      max_pop = std::max(max_pop, pop);
    }
    // Size the flat matcher scratch (values stay zero: resize only adds
    // zeros, and allocate_existence_flat re-zeroes what it touches).
    if (cnt_exp_.size() <= max_exp) {
      cnt_exp_.resize(max_exp + 1, 0);
      dem_exp_.resize(max_exp + 1, 0.0);
    }
    if (cnt_pop_.size() <= max_pop) {
      cnt_pop_.resize(max_pop + 1, 0);
      dem_pop_.resize(max_pop + 1, 0.0);
    }
  }

  // The flat allocator's ExP/PoP-indexed arrays assume every active peer
  // shares one ISP — true for every ISP-keyed swarm; ISP-spanning swarms
  // (cross-ISP ablation) take the generic matcher.
  const bool flat =
      config_.matcher == MatcherKind::kExistence && single_isp;
  run_events(
      key, count, watch_seconds, view.span().value(),
      hour_bound(view.span().value()), out,
      [&](std::uint32_t idx, std::uint64_t window) {
        ActivePeer peer;
        peer.session = idx;
        peer.user = g_user_[idx];
        peer.isp = g_isp_[idx];
        peer.exp = g_exp_[idx];
        peer.pop = g_pop_[idx];
        peer.beta = g_beta_[idx];
        peer.join_window = window;
        return peer;
      },
      [&](std::span<const ActivePeer> actives, std::size_t seed) {
        if (flat) {
          allocate_existence_flat(actives, seed, alloc_);
        } else {
          matcher_->allocate(actives, seed, config_, alloc_);
        }
      });
}

void SwarmSweep::sweep_rows(SwarmKey key,
                            std::span<const std::uint32_t> indices,
                            const Trace& trace, SimResult& out) {
  CL_EXPECTS(indices.size() <= static_cast<std::size_t>(
                                   std::numeric_limits<std::int32_t>::max()));
  const double dt = config_.window.value();
  events_.clear();
  events_.reserve(indices.size() * 2);
  double watch_seconds = 0;
  for (std::uint32_t g = 0; g < indices.size(); ++g) {
    const SessionRecord& s = trace.sessions[indices[g]];
    watch_seconds += s.duration;
    const auto w_start = static_cast<std::uint64_t>(s.start / dt);
    const auto w_end = static_cast<std::uint64_t>(s.end() / dt);
    if (w_end <= w_start) continue;
    events_.push_back({w_start, 1, g});
    events_.push_back({w_end, 0, g});
  }
  run_events(
      key, indices.size(), watch_seconds, trace.span.value(),
      hour_bound(trace.span.value()), out,
      [&](std::uint32_t idx, std::uint64_t window) {
        const SessionRecord& s = trace.sessions[indices[idx]];
        ActivePeer peer;
        peer.session = idx;
        peer.user = s.user;
        peer.isp = s.isp;
        peer.exp = s.exp;
        peer.pop = metro_->isp(s.isp).pop_of(s.exp);
        peer.beta = s.beta().value();
        peer.join_window = window;
        return peer;
      },
      [&](std::span<const ActivePeer> actives, std::size_t seed) {
        matcher_->allocate(actives, seed, config_, alloc_);
      });
}

void SwarmSweep::allocate_existence_flat(std::span<const ActivePeer> actives,
                                         std::size_t seed_index,
                                         std::vector<PeerAllocation>& out) {
  const std::size_t n = actives.size();
  CL_EXPECTS(n == 0 || seed_index < n);
  out.assign(n, PeerAllocation{});
  if (n == 0) return;
  const double dt = config_.window.value();
  const double ratio = std::min(config_.q_over_beta, 1.0);

  for (const ActivePeer& a : actives) {
    ++cnt_exp_[a.exp];
    ++cnt_pop_[a.pop];
  }
  const auto cnt_isp = static_cast<std::uint32_t>(n);  // single-ISP swarm

  // Same accumulation order as ExistenceMatcher::allocate — every
  // floating-point add/divide happens on the same values in the same
  // sequence, so the allocation is bit-identical to the generic matcher.
  double dem_core = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const ActivePeer& a = actives[i];
    const double demand = a.beta * dt;
    out[i].server_bits = demand;
    if (n < 2 || i == seed_index) continue;
    const double d = ratio * demand;
    if (d <= 0) continue;
    if (cnt_exp_[a.exp] >= 2) {
      out[i].peer_bits[index(LocalityLevel::kExchangePoint)] = d;
      dem_exp_[a.exp] += d;
    } else if (cnt_pop_[a.pop] >= 2) {
      out[i].peer_bits[index(LocalityLevel::kPop)] = d;
      dem_pop_[a.pop] += d;
    } else {
      // With n >= 2 peers in one ISP the core layer always has company;
      // the generic matcher's cross-ISP branch is unreachable here.
      out[i].peer_bits[index(LocalityLevel::kCore)] = d;
      dem_core += d;
    }
    out[i].server_bits -= d;
  }

  // Attribute uploads evenly across the members of each serving bucket
  // (see DESIGN.md: totals are exact, the per-user split is the
  // symmetric-swarm approximation). A bucket's demand is > 0 iff the
  // map-based matcher would have an entry for it (all deposits are > 0).
  for (std::size_t j = 0; j < n; ++j) {
    const ActivePeer& a = actives[j];
    double up = 0;
    if (dem_exp_[a.exp] > 0) up += dem_exp_[a.exp] / cnt_exp_[a.exp];
    if (dem_pop_[a.pop] > 0) up += dem_pop_[a.pop] / cnt_pop_[a.pop];
    if (dem_core > 0) up += dem_core / cnt_isp;
    out[j].upload_bits = up;
  }

  // Restore the all-zero scratch invariant (touched entries only).
  for (const ActivePeer& a : actives) {
    cnt_exp_[a.exp] = 0;
    dem_exp_[a.exp] = 0;
    cnt_pop_[a.pop] = 0;
    dem_pop_[a.pop] = 0;
  }
}

}  // namespace cl
