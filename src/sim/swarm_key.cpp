#include "sim/swarm_key.h"

namespace cl {

SwarmKey swarm_key_for(const SessionRecord& session, const SimConfig& config) {
  SwarmKey key;
  key.content = session.content;
  if (config.isp_friendly) key.isp = session.isp;
  if (config.split_by_bitrate) {
    key.bitrate = static_cast<std::uint8_t>(session.bitrate);
  }
  return key;
}

}  // namespace cl
