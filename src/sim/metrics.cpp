#include "sim/metrics.h"

#include <algorithm>

namespace cl {

void SimResult::merge(const SimResult& other) {
  total += other.total;
  if (other.span.value() > span.value()) span = other.span;

  if (!other.daily.empty()) {
    if (daily.size() < other.daily.size()) {
      daily.resize(other.daily.size());
    }
    for (std::size_t d = 0; d < other.daily.size(); ++d) {
      const auto& other_day = other.daily[d];
      auto& day = daily[d];
      if (day.size() < other_day.size()) day.resize(other_day.size());
      for (std::size_t i = 0; i < other_day.size(); ++i) {
        day[i] += other_day[i];
      }
    }
  }

  for (const auto& [user, traffic] : other.users) {
    UserTraffic& ut = users[user];
    ut.downloaded += traffic.downloaded;
    ut.uploaded += traffic.uploaded;
  }

  swarms.insert(swarms.end(), other.swarms.begin(), other.swarms.end());
}

double swarm_savings(const SwarmResult& swarm,
                     const EnergyAccountant& accountant) {
  return accountant.savings(swarm.traffic);
}

std::vector<std::vector<double>> daily_savings(
    const SimResult& result, const EnergyAccountant& accountant) {
  std::vector<std::vector<double>> out;
  out.reserve(result.daily.size());
  for (const auto& day : result.daily) {
    std::vector<double> row;
    row.reserve(day.size());
    for (const auto& traffic : day) {
      row.push_back(accountant.savings(traffic));
    }
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace cl
