#include "sim/metrics.h"

#include <algorithm>

namespace cl {

std::vector<std::vector<TrafficBreakdown>> SimResult::daily_grid() const {
  std::vector<std::vector<TrafficBreakdown>> days;
  days.reserve((hourly.size() + 23) / 24);
  for (std::size_t h = 0; h < hourly.size(); ++h) {
    const std::size_t day = h / 24;
    if (day >= days.size()) days.resize(day + 1);
    auto& row = days[day];
    if (row.size() < hourly[h].size()) row.resize(hourly[h].size());
    for (std::size_t i = 0; i < hourly[h].size(); ++i) {
      row[i] += hourly[h][i];
    }
  }
  return days;
}

void SimResult::merge(const SimResult& other) {
  total += other.total;
  if (other.span.value() > span.value()) span = other.span;

  if (!other.hourly.empty()) {
    if (hourly.size() < other.hourly.size()) {
      hourly.resize(other.hourly.size());
    }
    for (std::size_t h = 0; h < other.hourly.size(); ++h) {
      const auto& other_hour = other.hourly[h];
      auto& hour = hourly[h];
      if (hour.size() < other_hour.size()) hour.resize(other_hour.size());
      for (std::size_t i = 0; i < other_hour.size(); ++i) {
        hour[i] += other_hour[i];
      }
    }
  }

  overload_spill += other.overload_spill;
  if (!other.hourly_spill.empty()) {
    if (hourly_spill.size() < other.hourly_spill.size()) {
      hourly_spill.resize(other.hourly_spill.size());
    }
    for (std::size_t h = 0; h < other.hourly_spill.size(); ++h) {
      hourly_spill[h] += other.hourly_spill[h];
    }
  }

  for (const auto& [user, traffic] : other.users) {
    UserTraffic& ut = users[user];
    ut.downloaded += traffic.downloaded;
    ut.uploaded += traffic.uploaded;
  }

  swarms.insert(swarms.end(), other.swarms.begin(), other.swarms.end());
}

double swarm_savings(const SwarmResult& swarm,
                     const EnergyAccountant& accountant) {
  return accountant.savings(swarm.traffic);
}

std::vector<std::vector<double>> daily_savings(
    const SimResult& result, const EnergyAccountant& accountant) {
  const auto daily = result.daily_grid();
  std::vector<std::vector<double>> out;
  out.reserve(daily.size());
  for (const auto& day : daily) {
    std::vector<double> row;
    row.reserve(day.size());
    for (const auto& traffic : day) {
      row.push_back(accountant.savings(traffic));
    }
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace cl
