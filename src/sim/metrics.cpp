#include "sim/metrics.h"

namespace cl {

double swarm_savings(const SwarmResult& swarm,
                     const EnergyAccountant& accountant) {
  return accountant.savings(swarm.traffic);
}

std::vector<std::vector<double>> daily_savings(
    const SimResult& result, const EnergyAccountant& accountant) {
  std::vector<std::vector<double>> out;
  out.reserve(result.daily.size());
  for (const auto& day : result.daily) {
    std::vector<double> row;
    row.reserve(day.size());
    for (const auto& traffic : day) {
      row.push_back(accountant.savings(traffic));
    }
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace cl
