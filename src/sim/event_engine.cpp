#include "sim/event_engine.h"

#include <limits>

#include "util/error.h"

namespace cl {

RateProfile::RateProfile(std::vector<RatePhase> phases)
    : phases_(std::move(phases)) {
  CL_EXPECTS(!phases_.empty());
  double prev = -1;
  for (const RatePhase& phase : phases_) {
    CL_EXPECTS(phase.start_s >= 0);
    CL_EXPECTS(phase.start_s > prev);
    CL_EXPECTS(phase.rate_per_s >= 0);
    prev = phase.start_s;
    max_rate_ = std::max(max_rate_, phase.rate_per_s);
  }
  CL_EXPECTS(max_rate_ > 0);
}

RateProfile RateProfile::constant(double rate_per_s) {
  return RateProfile({{0.0, rate_per_s}});
}

double RateProfile::rate_at(double t) const {
  if (t < phases_.front().start_s) return 0.0;
  // Linear scan from the back: profiles are a handful of phases, and the
  // thinning loop queries monotonically increasing times anyway.
  for (std::size_t i = phases_.size(); i-- > 0;) {
    if (t >= phases_[i].start_s) return phases_[i].rate_per_s;
  }
  return 0.0;
}

double RateProfile::expected_arrivals(double horizon_s) const {
  double sum = 0;
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const double begin = std::min(phases_[i].start_s, horizon_s);
    const double end = i + 1 < phases_.size()
                           ? std::min(phases_[i + 1].start_s, horizon_s)
                           : horizon_s;
    if (end > begin) sum += phases_[i].rate_per_s * (end - begin);
  }
  return sum;
}

double RateProfile::next_arrival(double now, double limit_s, Rng& rng) const {
  double t = now;
  for (;;) {
    t += rng.exponential(max_rate_);
    if (t >= limit_s) return std::numeric_limits<double>::infinity();
    if (rng.uniform() * max_rate_ < rate_at(t)) return t;
  }
}

}  // namespace cl
