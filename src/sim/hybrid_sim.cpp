#include "sim/hybrid_sim.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/error.h"

namespace cl {

namespace {

/// A join or leave of one group session at a window boundary.
struct Event {
  std::uint64_t window = 0;
  std::uint8_t type = 0;  ///< 0 = leave, 1 = join (leaves apply first)
  std::uint32_t idx = 0;  ///< index within the group's session list
};

void accumulate(TrafficBreakdown& tb, const PeerAllocation& al,
                double windows) {
  tb.server += Bits{al.server_bits * windows};
  for (std::size_t l = 0; l < kLocalityLevels; ++l) {
    tb.peer[l] += Bits{al.peer_bits[l] * windows};
  }
  tb.cross_isp += Bits{al.cross_isp_bits * windows};
}

}  // namespace

HybridSimulator::HybridSimulator(const Metro& metro, SimConfig config)
    : metro_(&metro), config_(config) {
  CL_EXPECTS(config_.window.value() > 0);
  CL_EXPECTS(config_.q_over_beta >= 0);
}

SimResult HybridSimulator::run(const Trace& trace) const {
  SimResult result;
  result.config = config_;
  result.span = trace.span;
  if (config_.collect_per_day) {
    const auto days = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(trace.span.value() / 86400.0)));
    result.daily.assign(days,
                        std::vector<TrafficBreakdown>(metro_->isp_count()));
  }

  std::unordered_map<SwarmKey, std::vector<std::uint32_t>> groups;
  groups.reserve(1024);
  for (std::uint32_t i = 0; i < trace.sessions.size(); ++i) {
    groups[swarm_key_for(trace.sessions[i], config_)].push_back(i);
  }
  // Deterministic sweep order (unordered_map order is
  // implementation-defined and would perturb floating-point accumulation).
  std::vector<const std::pair<const SwarmKey, std::vector<std::uint32_t>>*>
      ordered;
  ordered.reserve(groups.size());
  for (const auto& entry : groups) ordered.push_back(&entry);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* a, const auto* b) {
              return a->first.packed() < b->first.packed();
            });

  const auto matcher = make_matcher(config_.matcher);
  for (const auto* entry : ordered) {
    sweep_group(entry->first, entry->second, trace, *matcher, result);
  }
  return result;
}

void HybridSimulator::sweep_group(SwarmKey key,
                                  std::span<const std::uint32_t> indices,
                                  const Trace& trace, const Matcher& matcher,
                                  SimResult& result) const {
  const double dt = config_.window.value();

  // Window-quantised join/leave events. Sessions shorter than one window
  // are skipped: they never complete a full Δτ streaming step.
  std::vector<Event> events;
  events.reserve(indices.size() * 2);
  double watch_seconds = 0;
  for (std::uint32_t g = 0; g < indices.size(); ++g) {
    const SessionRecord& s = trace.sessions[indices[g]];
    watch_seconds += s.duration;
    const auto w_start = static_cast<std::uint64_t>(s.start / dt);
    const auto w_end = static_cast<std::uint64_t>(s.end() / dt);
    if (w_end <= w_start) continue;
    events.push_back({w_start, 1, g});
    events.push_back({w_end, 0, g});
  }
  if (events.empty()) {
    if (config_.collect_swarms) {
      SwarmResult swarm;
      swarm.key = key;
      swarm.sessions = indices.size();
      swarm.capacity =
          trace.span.value() > 0 ? watch_seconds / trace.span.value() : 0;
      result.swarms.push_back(swarm);
    }
    return;
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.window != b.window) return a.window < b.window;
    if (a.type != b.type) return a.type < b.type;
    return a.idx < b.idx;
  });

  std::vector<ActivePeer> active;
  std::vector<std::int32_t> pos(indices.size(), -1);
  std::vector<PeerAllocation> alloc;
  TrafficBreakdown swarm_traffic;

  const auto process_span = [&](std::uint64_t w0, std::uint64_t w1) {
    // Seed peer: the longest-present member (deterministic tie-break).
    std::size_t seed = 0;
    for (std::size_t i = 1; i < active.size(); ++i) {
      if (active[i].join_window < active[seed].join_window ||
          (active[i].join_window == active[seed].join_window &&
           active[i].session < active[seed].session)) {
        seed = i;
      }
    }
    matcher.allocate(active, seed, config_, alloc);
    const auto total_windows = static_cast<double>(w1 - w0);

    for (std::size_t i = 0; i < active.size(); ++i) {
      accumulate(swarm_traffic, alloc[i], total_windows);
      if (config_.collect_per_user) {
        UserTraffic& ut = result.users[active[i].user];
        ut.downloaded += Bits{alloc[i].downloaded_bits() * total_windows};
        ut.uploaded += Bits{alloc[i].upload_bits * total_windows};
      }
    }
    if (config_.collect_per_day) {
      std::uint64_t w = w0;
      while (w < w1) {
        const auto day = static_cast<std::size_t>(
            static_cast<double>(w) * dt / 86400.0);
        const auto day_end_window = static_cast<std::uint64_t>(
            std::ceil(static_cast<double>(day + 1) * 86400.0 / dt));
        const std::uint64_t chunk_end = std::min(w1, day_end_window);
        const auto chunk = static_cast<double>(chunk_end - w);
        CL_ENSURES(day < result.daily.size());
        for (std::size_t i = 0; i < active.size(); ++i) {
          accumulate(result.daily[day][active[i].isp], alloc[i], chunk);
        }
        w = chunk_end;
      }
    }
  };

  std::size_t k = 0;
  std::uint64_t cur_w = events.front().window;
  while (k < events.size()) {
    // Apply every event at cur_w (leaves first by sort order).
    while (k < events.size() && events[k].window == cur_w) {
      const Event& e = events[k];
      if (e.type == 1) {
        const SessionRecord& s = trace.sessions[indices[e.idx]];
        ActivePeer peer;
        peer.session = e.idx;
        peer.user = s.user;
        peer.isp = s.isp;
        peer.exp = s.exp;
        peer.pop = metro_->isp(s.isp).pop_of(s.exp);
        peer.beta = s.beta().value();
        peer.join_window = cur_w;
        pos[e.idx] = static_cast<std::int32_t>(active.size());
        active.push_back(peer);
      } else {
        const auto i = static_cast<std::size_t>(pos[e.idx]);
        CL_ENSURES(pos[e.idx] >= 0 && i < active.size());
        active[i] = active.back();
        pos[active[i].session] = static_cast<std::int32_t>(i);
        active.pop_back();
        pos[e.idx] = -1;
      }
      ++k;
    }
    if (k == events.size()) break;
    const std::uint64_t next_w = events[k].window;
    if (!active.empty()) process_span(cur_w, next_w);
    cur_w = next_w;
  }
  CL_ENSURES(active.empty());

  result.total += swarm_traffic;
  if (config_.collect_swarms) {
    SwarmResult swarm;
    swarm.key = key;
    swarm.sessions = indices.size();
    swarm.capacity =
        trace.span.value() > 0 ? watch_seconds / trace.span.value() : 0;
    swarm.traffic = swarm_traffic;
    result.swarms.push_back(swarm);
  }
}

}  // namespace cl
