#include "sim/hybrid_sim.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/swarm_sweep.h"
#include "util/error.h"
#include "util/parallel.h"

namespace cl {

namespace {

/// Swarms per reduction chunk, as a function of the swarm count alone —
/// never the thread count — so chunk boundaries, and therefore the merged
/// floating-point result, are identical at every --threads value. Much
/// smaller than util/parallel.h's kReduceChunk: swarm sizes follow the
/// catalogue's Zipf skew, so small chunks are needed to load-balance the
/// popular head. Small simulations (e.g. one content item pre-filtered to
/// one ISP — a Fig. 2 dot) drop to single-swarm chunks so even they can
/// engage several workers.
std::size_t swarms_per_chunk(std::size_t swarms) {
  return std::clamp<std::size_t>(swarms / 64, 1, 8);
}

}  // namespace

HybridSimulator::HybridSimulator(const Metro& metro, SimConfig config)
    : metro_(&metro), config_(config) {
  CL_EXPECTS(config_.window.value() > 0);
  CL_EXPECTS(config_.q_over_beta >= 0);
}

SimResult HybridSimulator::run(const Trace& trace) const {
  // Partials start with an empty daily grid; sweeps grow it only for the
  // days their swarms actually touch (a month of per-chunk full grids
  // would cost O(chunks × days × isps) up-front), and run() pads the
  // merged result to the full [days][isps] shape at the end.
  const auto make_partial = [&] {
    SimResult partial;
    partial.config = config_;
    partial.span = trace.span;
    return partial;
  };

  std::unordered_map<SwarmKey, std::vector<std::uint32_t>> groups;
  groups.reserve(1024);
  for (std::uint32_t i = 0; i < trace.sessions.size(); ++i) {
    groups[swarm_key_for(trace.sessions[i], config_)].push_back(i);
  }
  // Deterministic sweep order (unordered_map order is
  // implementation-defined and would perturb floating-point accumulation).
  std::vector<const std::pair<const SwarmKey, std::vector<std::uint32_t>>*>
      ordered;
  ordered.reserve(groups.size());
  for (const auto& entry : groups) ordered.push_back(&entry);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* a, const auto* b) {
              return a->first.packed() < b->first.packed();
            });

  // Shard the key-ordered swarm list across workers: each worker reuses
  // one SwarmSweep (scratch buffers + matcher) for every swarm it sweeps,
  // each fixed-size chunk accumulates into its own SimResult partial, and
  // partials merge in ascending swarm-key order — bit-identical results
  // at every thread count (the util/parallel.h contract).
  SimResult result = parallel_chunked_reduce_stateful(
      ordered.size(), config_.threads,
      [&] { return SwarmSweep(*metro_, config_); }, make_partial,
      [&](SwarmSweep& sweep, SimResult& acc, std::size_t begin,
          std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          sweep.sweep(ordered[i]->first, ordered[i]->second, trace, acc);
        }
      },
      [](SimResult& merged, const SimResult& chunk) { merged.merge(chunk); },
      swarms_per_chunk(ordered.size()));

  if (config_.collect_per_day) {
    // Pad to the full [days][isps] shape (traffic-free cells stay zero).
    const auto days = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(trace.span.value() / 86400.0)));
    if (result.daily.size() < days) result.daily.resize(days);
    for (auto& day : result.daily) {
      if (day.size() < metro_->isp_count()) day.resize(metro_->isp_count());
    }
  }
  return result;
}

}  // namespace cl
