#include "sim/hybrid_sim.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/swarm_sweep.h"
#include "trace/swarm_index.h"
#include "util/error.h"
#include "util/parallel.h"

namespace cl {

namespace {

/// Swarms per reduction chunk, as a function of the swarm count alone —
/// never the thread count — so chunk boundaries, and therefore the merged
/// floating-point result, are identical at every --threads value. Much
/// smaller than util/parallel.h's kReduceChunk: swarm sizes follow the
/// catalogue's Zipf skew, so small chunks are needed to load-balance the
/// popular head. Small simulations (e.g. one content item pre-filtered to
/// one ISP — a Fig. 2 dot) drop to single-swarm chunks so even they can
/// engage several workers.
std::size_t swarms_per_chunk(std::size_t swarms) {
  return std::clamp<std::size_t>(swarms / 64, 1, 8);
}

/// One swarm to sweep: its key plus a view of the session indices. The
/// span points into either the trace's persisted swarm index or the
/// grouping map built below — both outlive the sweep.
using SwarmEntry = std::pair<SwarmKey, std::span<const std::uint32_t>>;

/// Swarm list from the view's persisted full-key index — no hashing, no
/// re-sorting, and the spans are column ranges straight into the
/// (possibly mmap'd) order block. Only valid when the config keys swarms
/// by the full (content, ISP, bitrate) tuple, i.e. the index's own
/// partition.
std::vector<SwarmEntry> swarms_from_index(const TraceView& view) {
  const std::span<const SwarmIndexGroup> groups = view.groups();
  const std::span<const std::uint32_t> order = view.order();
  std::vector<SwarmEntry> swarms;
  swarms.reserve(groups.size());
  for (const SwarmIndexGroup& group : groups) {
    SwarmKey key;
    key.content = group.content;
    key.isp = group.isp;
    key.bitrate = group.bitrate;
    swarms.emplace_back(key, order.subspan(group.begin, group.count));
  }
  return swarms;
}

/// Swarm list via hash grouping over the key columns (relaxed keys, or
/// traces without an index). `groups` is an out-parameter purely to own
/// the index vectors the returned spans point into.
std::vector<SwarmEntry> swarms_by_grouping(
    const TraceView& view, const SimConfig& config,
    std::unordered_map<SwarmKey, std::vector<std::uint32_t>>& groups) {
  const std::span<const std::uint32_t> content = view.content();
  const std::span<const std::uint32_t> isp = view.isp();
  const std::span<const std::uint8_t> bitrate = view.bitrate();
  groups.reserve(1024);
  for (std::uint32_t i = 0; i < view.size(); ++i) {
    SwarmKey key;
    key.content = content[i];
    if (config.isp_friendly) key.isp = isp[i];
    if (config.split_by_bitrate) key.bitrate = bitrate[i];
    groups[key].push_back(i);
  }
  // Deterministic sweep order (unordered_map order is
  // implementation-defined and would perturb floating-point accumulation).
  // Lexicographic (content, isp, bitrate) — the swarm index's order, and
  // identical to ascending packed() keys for every real topology.
  std::vector<SwarmEntry> swarms;
  swarms.reserve(groups.size());
  for (const auto& [key, indices] : groups) {
    swarms.emplace_back(key, std::span<const std::uint32_t>(indices));
  }
  std::sort(swarms.begin(), swarms.end(),
            [](const SwarmEntry& a, const SwarmEntry& b) {
              if (a.first.content != b.first.content) {
                return a.first.content < b.first.content;
              }
              if (a.first.isp != b.first.isp) return a.first.isp < b.first.isp;
              return a.first.bitrate < b.first.bitrate;
            });
  return swarms;
}

/// Pads the hourly grid of a collect_hourly result to the full
/// [hours][isps] shape (traffic-free cells stay zero), and the overload
/// spill vector to the same hour count when the overload model ran.
void pad_hourly(SimResult& result, double span_seconds,
                std::size_t isp_count) {
  const auto hours = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(span_seconds / 3600.0)));
  if (result.hourly.size() < hours) result.hourly.resize(hours);
  for (auto& hour : result.hourly) {
    if (hour.size() < isp_count) hour.resize(isp_count);
  }
  if (result.config.overload && result.hourly_spill.size() < hours) {
    result.hourly_spill.resize(hours);
  }
}

[[noreturn]] void metro_mismatch(const Metro& metro,
                                 const std::string& trace_metro,
                                 std::uint32_t isp, std::uint32_t exp) {
  const std::string metro_label =
      metro.name().empty() ? std::string("<unnamed>") : metro.name();
  throw InvalidArgument(
      "trace does not fit metro '" + metro_label + "': session has isp " +
      std::to_string(isp) + ", exp " + std::to_string(exp) +
      (trace_metro.empty()
           ? std::string()
           : " (trace was generated for metro '" + trace_metro + "')"));
}

}  // namespace

HybridSimulator::HybridSimulator(const Metro& metro, SimConfig config)
    : metro_(&metro), config_(config) {
  CL_EXPECTS(config_.window.value() > 0);
  CL_EXPECTS(config_.q_over_beta >= 0);
}

SimResult HybridSimulator::run(const TraceView& view,
                               SimPhaseTiming* timing) const {
  using Clock = std::chrono::steady_clock;
  const auto group_start = Clock::now();
  // A trace replayed against the wrong metro (e.g. a London trace whose
  // 345 exchange-point ids overflow the sparser us_sparse trees) would
  // only surface as an opaque contract failure deep inside a sweep — or
  // worse, not at all when the ids happen to fit. Check the whole trace
  // against this metro's shape up front, column-wise; one O(n) pass is
  // noise next to the sweep itself. The pass is branch-free flag
  // accumulation (no early exit) so the compiler can vectorize it —
  // tools/check_vectorization.py gates the remark — and the rare failing
  // trace pays one scalar rescan for the error message.
  const std::span<const std::uint32_t> isp = view.isp();
  const std::span<const std::uint32_t> exp = view.exp();
  const auto isp_count = static_cast<std::uint32_t>(metro_->isp_count());
  std::vector<std::uint32_t> exp_limit(isp_count);
  for (std::uint32_t a = 0; a < isp_count; ++a) {
    exp_limit[a] = metro_->isp(a).exchange_points();
  }
  std::uint32_t max_isp = 0;
  // [vec:metro-fit-isp]
  for (std::size_t i = 0; i < view.size(); ++i) {
    max_isp = std::max(max_isp, isp[i]);
  }
  bool fits = max_isp < isp_count || view.size() == 0;
  if (fits) {
    std::uint32_t bad = 0;
    // [vec:metro-fit-exp]
    for (std::size_t i = 0; i < view.size(); ++i) {
      bad |= exp[i] >= exp_limit[isp[i]] ? 1u : 0u;
    }
    fits = bad == 0;
  }
  if (!fits) {
    for (std::size_t i = 0; i < view.size(); ++i) {
      if (isp[i] >= isp_count || exp[i] >= exp_limit[isp[i]]) {
        metro_mismatch(*metro_, view.metro_name(), isp[i], exp[i]);
      }
    }
  }

  // Partials start with an empty hourly grid; sweeps grow it only for the
  // hours their swarms actually touch (a month of per-chunk full grids
  // would cost O(chunks × hours × isps) up-front), and run() pads the
  // merged result to the full [hours][isps] shape at the end.
  const auto make_partial = [&] {
    SimResult partial;
    partial.config = config_;
    partial.span = view.span();
    return partial;
  };

  // Under the paper's full (content, ISP, bitrate) partition, a trace
  // loaded from the binary columnar format already carries its swarms in
  // sweep order — consume the index instead of re-grouping. Relaxed
  // partitions (cross-ISP / mixed-bitrate ablations) and index-less
  // traces group through a hash map as before; both paths emit the same
  // key order, so results are bit-identical between them.
  const bool index_usable =
      config_.isp_friendly && config_.split_by_bitrate && view.has_index();
  std::unordered_map<SwarmKey, std::vector<std::uint32_t>> groups;
  const std::vector<SwarmEntry> swarms =
      index_usable ? swarms_from_index(view)
                   : swarms_by_grouping(view, config_, groups);
  const auto group_end = Clock::now();

  // Shard the key-ordered swarm list across workers: each worker reuses
  // one SwarmSweep (scratch buffers + matcher) for every swarm it sweeps,
  // each fixed-size chunk accumulates into its own first-touch SimResult
  // partial, and partials merge in ascending swarm-key order —
  // bit-identical results at every thread count (the util/parallel.h
  // contract).
  ReduceTiming reduce_timing;
  SweepKernelTiming kernel_timing;
  SweepKernelTiming* kernel_sink = timing != nullptr ? &kernel_timing : nullptr;
  SimResult result = parallel_chunked_reduce_stateful(
      swarms.size(), config_.threads,
      [&] { return SwarmSweep(*metro_, config_, kernel_sink); }, make_partial,
      [&](SwarmSweep& sweep, SimResult& acc, std::size_t begin,
          std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          sweep.sweep(swarms[i].first, swarms[i].second, view, acc);
        }
      },
      [](SimResult& merged, const SimResult& chunk) { merged.merge(chunk); },
      swarms_per_chunk(swarms.size()),
      timing != nullptr ? &reduce_timing : nullptr);

  if (config_.collect_hourly) {
    pad_hourly(result, view.span().value(), metro_->isp_count());
  }
  if (timing != nullptr) {
    timing->group_seconds =
        std::chrono::duration<double>(group_end - group_start).count();
    timing->sweep_seconds = reduce_timing.work_seconds;
    timing->merge_seconds = reduce_timing.merge_seconds;
    timing->sweep_gather1_seconds = kernel_timing.gather1_seconds.load();
    timing->sweep_gather2_seconds = kernel_timing.gather2_seconds.load();
    timing->sweep_events_seconds = kernel_timing.events_seconds.load();
    timing->sweep_allocate_seconds = kernel_timing.allocate_seconds.load();
  }
  return result;
}

SimResult HybridSimulator::run(const Trace& trace) const {
  return run(TraceView::from_trace(trace, config_.threads));
}

SimResult HybridSimulator::run_rows(const Trace& trace) const {
  for (const SessionRecord& s : trace.sessions) {
    if (s.isp >= metro_->isp_count() ||
        s.exp >= metro_->isp(s.isp).exchange_points()) {
      metro_mismatch(*metro_, trace.metro_name, s.isp, s.exp);
    }
  }

  const auto make_partial = [&] {
    SimResult partial;
    partial.config = config_;
    partial.span = trace.span;
    return partial;
  };

  const bool index_usable =
      config_.isp_friendly && config_.split_by_bitrate &&
      !trace.swarm_index.empty() &&
      trace.swarm_index.order.size() == trace.sessions.size();
  std::unordered_map<SwarmKey, std::vector<std::uint32_t>> groups;
  std::vector<SwarmEntry> swarms;
  if (index_usable) {
    swarms.reserve(trace.swarm_index.groups.size());
    for (const SwarmIndexGroup& group : trace.swarm_index.groups) {
      SwarmKey key;
      key.content = group.content;
      key.isp = group.isp;
      key.bitrate = group.bitrate;
      swarms.emplace_back(
          key, std::span<const std::uint32_t>(
                   trace.swarm_index.order.data() + group.begin, group.count));
    }
  } else {
    groups.reserve(1024);
    for (std::uint32_t i = 0; i < trace.sessions.size(); ++i) {
      groups[swarm_key_for(trace.sessions[i], config_)].push_back(i);
    }
    swarms.reserve(groups.size());
    for (const auto& [key, indices] : groups) {
      swarms.emplace_back(key, std::span<const std::uint32_t>(indices));
    }
    std::sort(swarms.begin(), swarms.end(),
              [](const SwarmEntry& a, const SwarmEntry& b) {
                if (a.first.content != b.first.content) {
                  return a.first.content < b.first.content;
                }
                if (a.first.isp != b.first.isp) {
                  return a.first.isp < b.first.isp;
                }
                return a.first.bitrate < b.first.bitrate;
              });
  }

  SimResult result = parallel_chunked_reduce_stateful(
      swarms.size(), config_.threads,
      [&] { return SwarmSweep(*metro_, config_); }, make_partial,
      [&](SwarmSweep& sweep, SimResult& acc, std::size_t begin,
          std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          sweep.sweep_rows(swarms[i].first, swarms[i].second, trace, acc);
        }
      },
      [](SimResult& merged, const SimResult& chunk) { merged.merge(chunk); },
      swarms_per_chunk(swarms.size()));

  if (config_.collect_hourly) {
    pad_hourly(result, trace.span.value(), metro_->isp_count());
  }
  return result;
}

}  // namespace cl
