#include "sim/queue_sim.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "util/error.h"

namespace cl {

QueueSimulator::QueueSimulator(double arrival_rate,
                               std::function<double(Rng&)> service_sampler)
    : arrival_rate_(arrival_rate), service_(std::move(service_sampler)) {
  CL_EXPECTS(arrival_rate_ > 0);
  CL_EXPECTS(static_cast<bool>(service_));
}

QueueSimulator::QueueSimulator(RateProfile arrivals,
                               std::function<double(Rng&)> service_sampler)
    : arrival_rate_(arrivals.max_rate()),
      profile_(std::move(arrivals)),
      service_(std::move(service_sampler)) {
  CL_EXPECTS(static_cast<bool>(service_));
}

QueueSimulator QueueSimulator::mm_infinity(double arrival_rate,
                                           Seconds mean_service) {
  CL_EXPECTS(mean_service.value() > 0);
  const double mean = mean_service.value();
  return QueueSimulator(arrival_rate, [mean](Rng& rng) {
    return rng.exponential(1.0 / mean);
  });
}

QueueSimulator QueueSimulator::mm_infinity(RateProfile arrivals,
                                           Seconds mean_service) {
  CL_EXPECTS(mean_service.value() > 0);
  const double mean = mean_service.value();
  return QueueSimulator(std::move(arrivals), [mean](Rng& rng) {
    return rng.exponential(1.0 / mean);
  });
}

QueueSimulator QueueSimulator::md_infinity(double arrival_rate,
                                           Seconds service) {
  CL_EXPECTS(service.value() > 0);
  const double s = service.value();
  return QueueSimulator(arrival_rate, [s](Rng&) { return s; });
}

QueueSimResult QueueSimulator::run(Seconds horizon,
                                   std::uint64_t seed) const {
  CL_EXPECTS(horizon.value() > 0);
  Rng rng(seed ^ 0x94d049bb133111ebULL);
  const double end = horizon.value();

  // Min-heap of pending departure times; arrivals generated on the fly.
  // The constant-rate path draws exactly the sequence it always has; the
  // profile path thins candidates against λ(t) (sim/event_engine.h) and
  // returns +inf once candidates pass the horizon, which the `>= end`
  // break absorbs.
  std::priority_queue<double, std::vector<double>, std::greater<>> departures;
  const auto sample_arrival = [&](double after) {
    return profile_ ? profile_->next_arrival(after, end, rng)
                    : after + rng.exponential(arrival_rate_);
  };
  double next_arrival = sample_arrival(0.0);

  QueueSimResult result;
  std::vector<double> time_in_state;  // time spent with L == index
  double now = 0;

  const auto account = [&](double until) {
    const std::size_t l = departures.size();
    if (l >= time_in_state.size()) time_in_state.resize(l + 1, 0.0);
    time_in_state[l] += until - now;
    now = until;
  };

  while (true) {
    const double next_departure =
        departures.empty() ? end + 1.0 : departures.top();
    const double next_event = std::min(next_arrival, next_departure);
    if (next_event >= end) {
      account(end);
      break;
    }
    account(next_event);
    if (next_arrival <= next_departure) {
      const double service = service_(rng);
      CL_ENSURES(service >= 0);
      departures.push(next_event + service);
      ++result.arrivals;
      next_arrival = sample_arrival(next_event);
    } else {
      departures.pop();
    }
  }

  result.occupancy_pmf.resize(time_in_state.size());
  for (std::size_t l = 0; l < time_in_state.size(); ++l) {
    const double p = time_in_state[l] / end;
    result.occupancy_pmf[l] = p;
    result.time_average_occupancy += static_cast<double>(l) * p;
    if (l >= 1) {
      result.expected_excess += static_cast<double>(l - 1) * p;
    }
  }
  result.p_empty = time_in_state.empty() ? 1.0 : time_in_state[0] / end;
  result.p_busy = 1.0 - result.p_empty;
  return result;
}

}  // namespace cl
