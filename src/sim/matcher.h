// matcher.h — per-window peer matching policies.
//
// Given the set of peers active during one Δτ window, a matcher decides
// how many bits each downloader pulls from peers (and at which locality
// level), how many fall back to the CDN, and which peers upload.
//
// Two policies are provided (see MatcherKind in sim_config.h):
//  * ExistenceMatcher — the analytical model's idealisation;
//  * CapacityMatcher  — closest-first greedy with upload budgets.
//
// A matcher is a pure function of the active set: the allocation for one
// window is valid for every window of a stretch during which the active
// set does not change, which is what makes the simulator's event-batched
// sweep correct.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/sim_config.h"
#include "topology/locality.h"

namespace cl {

/// One active session from the matcher's point of view.
struct ActivePeer {
  std::uint32_t session = 0;  ///< index into the group's session list
  std::uint32_t user = 0;
  std::uint32_t isp = 0;
  std::uint32_t exp = 0;  ///< exchange point id within the ISP
  std::uint32_t pop = 0;  ///< PoP id within the ISP
  double beta = 0;        ///< stream bitrate, bits/second
  std::uint64_t join_window = 0;  ///< window index at which the peer joined
};

/// Per-window allocation for one active peer, in bits per window.
struct PeerAllocation {
  double server_bits = 0;  ///< pulled from the CDN
  std::array<double, kLocalityLevels> peer_bits{};  ///< pulled from peers
  double cross_isp_bits = 0;  ///< pulled from peers in other ISPs
  double upload_bits = 0;     ///< served to other peers

  [[nodiscard]] double downloaded_bits() const {
    double sum = server_bits + cross_isp_bits;
    for (double b : peer_bits) sum += b;
    return sum;
  }
};

/// Matching policy interface. Implementations must be deterministic pure
/// functions of (actives, seed_index, config).
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Computes the per-window allocation for every active peer.
  ///
  /// `seed_index` designates the one peer that pulls the fresh copy
  /// entirely from the CDN (the paper's ΔTp = (L−1)·q·Δτ has one implicit
  /// server-fed user per window). `out` is resized to actives.size().
  virtual void allocate(std::span<const ActivePeer> actives,
                        std::size_t seed_index, const SimConfig& config,
                        std::vector<PeerAllocation>& out) const = 0;
};

/// The analytical model's matcher: a downloader localises at the lowest
/// layer housing any other active peer; upload budgets are not enforced.
/// Upload volume is attributed evenly across the members of the layer
/// bucket that served each downloader.
class ExistenceMatcher final : public Matcher {
 public:
  void allocate(std::span<const ActivePeer> actives, std::size_t seed_index,
                const SimConfig& config,
                std::vector<PeerAllocation>& out) const override;
};

/// Capacity-constrained greedy matcher: downloaders (in deterministic
/// order) pull from the closest peers first, draining per-uploader budgets
/// of q = (q/β)·β_uploader·Δτ bits per window; unmet demand falls back to
/// the CDN.
class CapacityMatcher final : public Matcher {
 public:
  void allocate(std::span<const ActivePeer> actives, std::size_t seed_index,
                const SimConfig& config,
                std::vector<PeerAllocation>& out) const override;
};

/// Factory for the matcher selected by a SimConfig.
[[nodiscard]] std::unique_ptr<Matcher> make_matcher(MatcherKind kind);

}  // namespace cl
