// sim_config.h — configuration of the discrete time-step hybrid-CDN
// simulator (paper Section IV.A).
#pragma once

#include <cstdint>

#include "util/units.h"

namespace cl {

/// Peer-matching policy.
enum class MatcherKind : std::uint8_t {
  /// The analytical model's assumption: a downloader localises at the
  /// lowest tree layer containing at least one other active peer; upload
  /// capacity contention is ignored (peers at a layer collectively always
  /// suffice). This is what the paper's theory-vs-simulation comparison
  /// (Fig. 2/4) uses implicitly.
  kExistence = 0,
  /// Closest-first greedy matching with per-uploader per-window upload
  /// budgets; demand that cannot be met at a layer spills to the next
  /// layer, and ultimately back to the CDN. Used by the matching ablation.
  kCapacity = 1,
};

/// All simulator knobs.
struct SimConfig {
  /// Δτ — the time-step; the paper uses 10 s.
  Seconds window{10.0};

  /// q/β — per-user upload bandwidth relative to their stream bitrate.
  /// Values > 1 behave as 1 (a peer cannot usefully push more than the
  /// stream rate to one downloader).
  double q_over_beta = 1.0;

  /// Restrict swarms to a single ISP (the paper's ISP-friendly setting).
  /// When false, swarms span ISPs and cross-ISP peer bytes are accounted
  /// in TrafficBreakdown::cross_isp.
  bool isp_friendly = true;

  /// Split swarms by bitrate class (a large-screen client cannot stream
  /// from a phone's copy). When false, mixed-bitrate swarms share freely.
  bool split_by_bitrate = true;

  MatcherKind matcher = MatcherKind::kExistence;

  /// Model swarm upload-capacity overload (the flash-crowd failure mode):
  /// in each window, peer-delivered bits are capped at the aggregate
  /// upload capacity q·Δτ of the swarm's *warm* members — peers that
  /// joined in an earlier window and therefore hold content to serve.
  /// Freshly joined peers are cold: they demand but cannot yet upload, so
  /// a synchronized mass join overwhelms the few warm seeds and the
  /// excess spills back to the CDN (re-accounted as server bits, tallied
  /// in SimResult::overload_spill / hourly_spill). Membership is constant
  /// within a stretch and stretch boundaries fall on join events, so only
  /// the first window of a stretch can overload — from the second window
  /// on every member is warm and capacity provably covers demand. Off by
  /// default: steady-state results stay bit-identical to prior runs.
  bool overload = false;

  /// Worker threads for the whole simulation stack: the simulator's
  /// per-swarm sweep (HybridSimulator::run shards swarms across workers)
  /// and the analyzer's sharded reductions (per-swarm savings, daily
  /// theory aggregation). 0 = all hardware threads. Everything uses
  /// fixed-chunk merges (util/parallel.h), so results are bit-identical
  /// for every value of this knob.
  unsigned threads = 1;

  // --- metric collection toggles (cost only, results identical) ---
  bool collect_swarms = true;    ///< per-swarm results (Figs. 2, 3)
  bool collect_per_user = true;  ///< per-user up/down bytes (Fig. 6)
  /// Per-hour, per-ISP traffic grid (SimResult::hourly) — feeds Fig. 4's
  /// daily savings (via SimResult::daily_grid) and the carbon-intensity
  /// weighting (src/carbon/).
  bool collect_hourly = true;
};

}  // namespace cl
