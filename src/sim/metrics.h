// metrics.h — result types produced by the hybrid-CDN simulator.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "energy/accounting.h"
#include "sim/sim_config.h"
#include "sim/swarm_key.h"
#include "util/units.h"

namespace cl {

/// Per-user byte totals (drives the Fig. 6 carbon-credit ledger).
struct UserTraffic {
  Bits downloaded;  ///< all useful bytes the user streamed
  Bits uploaded;    ///< bytes the user served to peers
};

/// Per-swarm outcome.
struct SwarmResult {
  SwarmKey key;
  std::size_t sessions = 0;
  /// Measured swarm capacity: total watch seconds / trace span — the
  /// empirical counterpart of c = u·r.
  double capacity = 0;
  TrafficBreakdown traffic;
};

/// Full simulation outcome — or a mergeable *partial* of one.
///
/// The parallel simulator sweeps disjoint swarm subsets into per-chunk
/// partials and folds them with merge() in ascending swarm-key order
/// (util/parallel.h's fixed-chunk discipline), so the combined result is
/// bit-identical for every SimConfig::threads value.
struct SimResult {
  SimConfig config;
  Seconds span;
  TrafficBreakdown total;

  /// One entry per swarm (empty unless config.collect_swarms).
  std::vector<SwarmResult> swarms;

  /// hourly[hour][isp] traffic (empty unless config.collect_hourly).
  /// Hour h covers trace time [h·3600, (h+1)·3600); hour-of-day is
  /// h mod 24 (traces start at local midnight). This is the grid the
  /// carbon-intensity subsystem (src/carbon/) weights by the grid's
  /// gCO₂/kWh at consumption time.
  std::vector<std::vector<TrafficBreakdown>> hourly;

  /// Per-user byte totals (empty unless config.collect_per_user).
  std::unordered_map<std::uint32_t, UserTraffic> users;

  /// Bits the overload model (SimConfig::overload) bounced back to the
  /// CDN: peer transfers exceeding the warm members' aggregate upload
  /// capacity in their window. The bounced bits are already re-accounted
  /// as server bits in `total` / `hourly` — these fields record how much
  /// moved, so the spill phase of a flash crowd is observable. Zero when
  /// the overload model is off.
  Bits overload_spill;

  /// Per-hour spill (config.overload && collect_hourly; padded to the
  /// span's hour count like `hourly`, empty otherwise).
  std::vector<Bits> hourly_spill;

  /// System-wide offload fraction G achieved by the run.
  [[nodiscard]] double offload() const { return total.offload_fraction(); }

  /// The [day][isp] view of `hourly`: 24 consecutive hour rows summed
  /// per day (a trailing partial day keeps its partial sum). Empty when
  /// `hourly` is empty.
  [[nodiscard]] std::vector<std::vector<TrafficBreakdown>> daily_grid() const;

  /// Folds another partial into this one: sums `total`, element-wise adds
  /// the `hourly` per-ISP grids (growing this grid when `other`'s is
  /// larger), sums the overload spill (total and per-hour, same growth
  /// rule), folds the per-user map, and appends `other.swarms` — so
  /// merging chunk partials in ascending swarm-key order keeps `swarms`
  /// globally key-sorted. `span` takes the larger of the two; `config` is
  /// left untouched (partials of one run share it by construction).
  void merge(const SimResult& other);
};

/// End-to-end savings of one swarm under an energy model (Eq. 1 evaluated
/// on simulated traffic).
[[nodiscard]] double swarm_savings(const SwarmResult& swarm,
                                   const EnergyAccountant& accountant);

/// Aggregate daily savings per ISP: savings[day][isp] (days × isps), under
/// one energy model, computed over the day-collapsed view of the hourly
/// grid (SimResult::daily_grid). Entries with no traffic are 0.
[[nodiscard]] std::vector<std::vector<double>> daily_savings(
    const SimResult& result, const EnergyAccountant& accountant);

}  // namespace cl
