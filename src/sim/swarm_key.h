// swarm_key.h — identification of a swarm.
//
// A swarm is the set of sessions that may share content with each other.
// The paper's setting keys swarms by (content, ISP, bitrate class); the
// ablations relax the ISP and bitrate dimensions.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/sim_config.h"
#include "trace/bitrate.h"
#include "trace/session.h"

namespace cl {

/// Grouping key of one swarm. Relaxed dimensions carry the sentinel
/// kAnyIsp / kAnyBitrate.
struct SwarmKey {
  static constexpr std::uint32_t kAnyIsp = 0xffffffffu;
  static constexpr std::uint8_t kAnyBitrate = 0xffu;

  std::uint32_t content = 0;
  std::uint32_t isp = kAnyIsp;
  std::uint8_t bitrate = kAnyBitrate;

  friend bool operator==(const SwarmKey&, const SwarmKey&) = default;

  /// Packs the key into one 64-bit integer (content | isp | bitrate).
  [[nodiscard]] std::uint64_t packed() const {
    return (static_cast<std::uint64_t>(content) << 32) |
           (static_cast<std::uint64_t>(isp & 0xffffffu) << 8) |
           static_cast<std::uint64_t>(bitrate);
  }

  [[nodiscard]] bool has_isp() const { return isp != kAnyIsp; }
  [[nodiscard]] bool has_bitrate() const { return bitrate != kAnyBitrate; }
  [[nodiscard]] BitrateClass bitrate_class() const {
    return static_cast<BitrateClass>(bitrate);
  }
};

/// Builds the SwarmKey of a session under the given config.
[[nodiscard]] SwarmKey swarm_key_for(const SessionRecord& session,
                                     const SimConfig& config);

}  // namespace cl

template <>
struct std::hash<cl::SwarmKey> {
  std::size_t operator()(const cl::SwarmKey& k) const noexcept {
    // SplitMix64 finaliser over the packed key.
    std::uint64_t z = k.packed() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};
