// swarm_sweep.h — the self-contained per-swarm sweep unit of the hybrid
// simulator.
//
// Swarms are independent given the (content, ISP, bitrate) partition
// (paper Section IV.A), which makes the simulator embarrassingly parallel
// *per swarm*. A SwarmSweep is one worker's sweep engine: it owns every
// piece of scratch state the event-batched sweep needs (the join/leave
// event streams, the active-peer list, the session→active index map, the
// per-window allocation buffer, the gathered per-swarm column scratch)
// plus its own Matcher instance, and is reused across all swarms that
// worker processes — after the first few swarms the sweep runs
// allocation-free.
//
// Two data paths share one event loop:
//
//  * sweep(…, TraceView) — the hot path. The swarm's sessions are
//    gathered from the trace columns into small contiguous primitive
//    arrays (window bounds, user/ISP/ExP/PoP ids, β) by the SIMD
//    kernels in sim/sweep_kernels.h (backend and runtime dispatch:
//    util/simd.h), and the inner loops touch only those arrays. Join
//    events inherit the trace's start ordering, so only the leave
//    stream is sorted — as packed (window, idx) u64 keys. Single-ISP
//    swarms under the existence matcher additionally bypass the virtual
//    Matcher for a flat-array allocator (bit-identical output, no hash
//    maps on the hot path).
//  * sweep_rows(…, Trace) — the row-structured reference path, reading
//    SessionRecords and dispatching through the Matcher interface. Kept
//    as the bit-identity oracle and the bench/micro_sweep baseline.
//
// A sweep accumulates into a partial SimResult; partials merge with
// SimResult::merge (see sim/metrics.h) in ascending swarm-key order, so
// the full simulation is bit-identical for every thread count — and
// identical between the two data paths and every SIMD backend (the
// kernels' lane-width-independence rule, DESIGN.md §"SIMD kernels").
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/matcher.h"
#include "sim/metrics.h"
#include "sim/sim_config.h"
#include "sim/swarm_key.h"
#include "topology/placement.h"
#include "trace/session.h"
#include "trace/trace_view.h"
#include "util/simd.h"

namespace cl {

/// Per-kernel wall-time accumulator shared by every worker's SwarmSweep
/// (`cl simulate --timing`). Workers add their per-swarm kernel times
/// with relaxed atomics — the totals are CPU seconds summed across
/// workers, so they can exceed the sweep phase's wall time when
/// threads > 1.
struct SweepKernelTiming {
  std::atomic<double> gather1_seconds{0};   ///< window bounds + watch time
  std::atomic<double> gather2_seconds{0};   ///< per-peer column gathers
  std::atomic<double> events_seconds{0};    ///< event sort + stretch loop
  std::atomic<double> allocate_seconds{0};  ///< per-stretch allocation
};

/// One worker's reusable swarm-sweep engine.
class SwarmSweep {
 public:
  /// `metro` supplies the per-ISP trees for locality lookups and must
  /// outlive the sweep. `timing`, when non-null, receives the per-kernel
  /// wall-time split (adds clock reads to the hot path — only wire it up
  /// when the caller asked for timing). The SIMD dispatch flag is
  /// latched here: compiled backend ∧ CL_SIMD environment override.
  SwarmSweep(const Metro& metro, const SimConfig& config,
             SweepKernelTiming* timing = nullptr);

  /// Sweeps one swarm (the sessions at `indices` into `view`'s columns)
  /// and accumulates its traffic into `out` — the columnar hot path.
  /// When `config.collect_hourly` is set, `out.hourly` grows lazily to
  /// cover the hours the swarm touches — SimResult::merge aligns
  /// differently grown grids, and HybridSimulator::run pads the merged
  /// result to [hours][isps].
  void sweep(SwarmKey key, std::span<const std::uint32_t> indices,
             const TraceView& view, SimResult& out);

  /// Row-structured reference sweep over trace.sessions — bit-identical
  /// to sweep() by construction (same events, same order, same matcher
  /// arithmetic); kept for identity tests and the micro_sweep baseline.
  void sweep_rows(SwarmKey key, std::span<const std::uint32_t> indices,
                  const Trace& trace, SimResult& out);

 private:
  /// A join or leave of one swarm session at a window boundary.
  struct Event {
    std::uint64_t window = 0;
    std::uint8_t type = 0;  ///< 0 = leave, 1 = join (leaves apply first)
    std::uint32_t idx = 0;  ///< index within the swarm's session list
  };

  /// Generic event loop over the pre-built events_ (sorted here):
  /// sweep_rows' path, and sweep()'s fallback for swarms whose leave
  /// events don't fit the packed-key layout.
  template <typename MakePeer, typename Allocate>
  void run_events(SwarmKey key, std::size_t session_count,
                  double watch_seconds, double span_seconds,
                  std::size_t max_hours, SimResult& out, MakePeer&& make_peer,
                  Allocate&& allocate);

  /// Stream-merge event loop — the SoA hot path. Joins come from
  /// join_idx_ (already window-ordered: sessions are start-sorted);
  /// leaves from leave_keys_ (packed u64 keys, sorted by the caller).
  /// Applies the exact event order run_events' sort would produce.
  template <typename MakePeer, typename Allocate>
  void run_events_merge(SwarmKey key, std::size_t session_count,
                        double watch_seconds, double span_seconds,
                        std::size_t max_hours, SimResult& out,
                        MakePeer&& make_peer, Allocate&& allocate);

  /// One constant-membership stretch [w0, w1): seed selection,
  /// allocation, traffic folds (+ optional hourly / per-user splits).
  template <typename Allocate>
  void process_stretch(Allocate& allocate, std::uint64_t w0, std::uint64_t w1,
                       TrafficBreakdown& swarm_traffic, std::size_t max_hours,
                       SimResult& out);

  /// Appends the per-swarm row when collect_swarms is on.
  void emit_swarm(SwarmKey key, std::size_t session_count,
                  double watch_seconds, double span_seconds,
                  const TrafficBreakdown* traffic, SimResult& out);

  /// Flat-array ExistenceMatcher for single-ISP swarms: replaces the
  /// hash-map counting with arrays indexed by ExP/PoP id (bounded by the
  /// ISP tree), preserving the exact floating-point accumulation order —
  /// the allocation is bit-identical to ExistenceMatcher::allocate.
  void allocate_existence_flat(std::span<const ActivePeer> actives,
                               std::size_t seed_index,
                               std::vector<PeerAllocation>& out);

  const Metro* metro_;
  SimConfig config_;
  std::unique_ptr<Matcher> matcher_;
  SweepKernelTiming* timing_ = nullptr;
  bool use_simd_ = false;
  // True while sweeping on the flat-allocator route (sweep() sets it per
  // swarm; sweep_rows keeps it off so the reference path stays generic):
  // lone-peer stretches — the dominant shape in sparse swarms — then
  // bypass allocation entirely (see process_stretch's fast path).
  bool lone_flat_ = false;

  // Scratch, reused across swarms (cleared, not reallocated).
  std::vector<Event> events_;
  std::vector<ActivePeer> active_;
  std::vector<std::int32_t> pos_;
  std::vector<PeerAllocation> alloc_;
  // Overload-capped copy of alloc_ for a stretch's first window (only
  // touched when config.overload finds a spill; see process_stretch).
  std::vector<PeerAllocation> spill_alloc_;

  // Event streams of the merge path: crossing-session indices in join
  // order, and packed (window << 24 | idx) leave sort keys.
  simd::aligned_vector<std::uint32_t> join_idx_;
  simd::aligned_vector<std::uint64_t> leave_keys_;

  // Per-swarm gathered columns (the SoA path's contiguous hot arrays),
  // 64-byte aligned so the kernels' whole-array loads are aligned.
  simd::aligned_vector<std::uint64_t> w_start_, w_end_;
  simd::aligned_vector<std::uint32_t> g_user_, g_isp_, g_exp_, g_pop_;
  simd::aligned_vector<double> g_beta_;

  // Flat-array matcher scratch, indexed by ExP / PoP id. All-zero
  // between allocations (allocate_existence_flat re-zeroes the entries
  // it touched).
  simd::aligned_vector<std::uint32_t> cnt_exp_, cnt_pop_;
  simd::aligned_vector<double> dem_exp_, dem_pop_;
};

}  // namespace cl
