// swarm_sweep.h — the self-contained per-swarm sweep unit of the hybrid
// simulator.
//
// Swarms are independent given the (content, ISP, bitrate) partition
// (paper Section IV.A), which makes the simulator embarrassingly parallel
// *per swarm*. A SwarmSweep is one worker's sweep engine: it owns every
// piece of scratch state the event-batched sweep needs (the join/leave
// event vector, the active-peer list, the session→active index map, the
// per-window allocation buffer) plus its own Matcher instance, and is
// reused across all swarms that worker processes — after the first few
// swarms the sweep runs allocation-free.
//
// A sweep accumulates into a partial SimResult; partials merge with
// SimResult::merge (see sim/metrics.h) in ascending swarm-key order, so
// the full simulation is bit-identical for every thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/matcher.h"
#include "sim/metrics.h"
#include "sim/sim_config.h"
#include "sim/swarm_key.h"
#include "topology/placement.h"
#include "trace/session.h"

namespace cl {

/// One worker's reusable swarm-sweep engine.
class SwarmSweep {
 public:
  /// `metro` supplies the per-ISP trees for locality lookups and must
  /// outlive the sweep.
  SwarmSweep(const Metro& metro, const SimConfig& config);

  /// Sweeps one swarm (the sessions at `indices` into `trace`) and
  /// accumulates its traffic into `out`. When `config.collect_hourly`
  /// is set, `out.hourly` grows lazily to cover the hours the swarm
  /// touches — SimResult::merge aligns differently grown grids, and
  /// HybridSimulator::run pads the merged result to [hours][isps].
  void sweep(SwarmKey key, std::span<const std::uint32_t> indices,
             const Trace& trace, SimResult& out);

 private:
  /// A join or leave of one swarm session at a window boundary.
  struct Event {
    std::uint64_t window = 0;
    std::uint8_t type = 0;  ///< 0 = leave, 1 = join (leaves apply first)
    std::uint32_t idx = 0;  ///< index within the swarm's session list
  };

  const Metro* metro_;
  SimConfig config_;
  std::unique_ptr<Matcher> matcher_;

  // Scratch, reused across swarms (cleared, not reallocated).
  std::vector<Event> events_;
  std::vector<ActivePeer> active_;
  std::vector<std::int32_t> pos_;
  std::vector<PeerAllocation> alloc_;
};

}  // namespace cl
