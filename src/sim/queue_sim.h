// queue_sim.h — event-driven M/M/∞ (and M/G/∞, Mt/G/∞) queue simulator.
//
// The analytical model rests on one stochastic assumption: a content
// swarm behaves like an M/M/∞ queue, so its occupancy is Poisson(c)
// distributed (Section III.B). This substrate simulates that queue
// directly — Poisson arrivals, arbitrary service-time sampler, infinite
// servers — and reports the time-averaged occupancy statistics the model
// predicts. It validates the assumption independently of the trace-driven
// simulator and doubles as a generator of steady-state occupancy samples
// for Monte-Carlo cross-checks.
//
// The live-event scenario engine adds a non-homogeneous mode: arrivals
// driven by a RateProfile (sim/event_engine.h) instead of a constant
// rate — the Mt/G/∞ queue whose time-varying occupancy is what a flash
// crowd's swarm looks like. The constant-rate constructors are untouched
// and draw the exact same rng sequence as before.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/event_engine.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/units.h"

namespace cl {

/// Result of one queue simulation run.
struct QueueSimResult {
  double time_average_occupancy = 0;  ///< ∫L dt / horizon — estimates c
  double p_empty = 0;                 ///< fraction of time with L = 0
  double p_busy = 0;                  ///< 1 − p_empty — estimates 1 − e^{-c}
  std::uint64_t arrivals = 0;
  /// Time-weighted occupancy distribution: occupancy_pmf[l] ≈ P[L = l].
  std::vector<double> occupancy_pmf;
  /// E[(L−1)^+] — the model's expected peer excess.
  double expected_excess = 0;
};

/// Infinite-server queue simulator.
class QueueSimulator {
 public:
  /// `arrival_rate` in events/second; `service` samples one service time
  /// in seconds (exponential for M/M/∞, anything for M/G/∞).
  QueueSimulator(double arrival_rate,
                 std::function<double(Rng&)> service_sampler);

  /// Non-homogeneous arrivals (Mt/G/∞): the profile's λ(t) drives the
  /// arrival stream via thinning (RateProfile::next_arrival).
  QueueSimulator(RateProfile arrivals,
                 std::function<double(Rng&)> service_sampler);

  /// Exponential service with the given mean — the M/M/∞ of the paper.
  [[nodiscard]] static QueueSimulator mm_infinity(double arrival_rate,
                                                  Seconds mean_service);

  /// Exponential service under a burst arrival profile (Mt/M/∞).
  [[nodiscard]] static QueueSimulator mm_infinity(RateProfile arrivals,
                                                  Seconds mean_service);

  /// Deterministic service (M/D/∞) — occupancy is still Poisson(c) by
  /// insensitivity; used to test that the model does not depend on the
  /// service distribution.
  [[nodiscard]] static QueueSimulator md_infinity(double arrival_rate,
                                                  Seconds service);

  /// Runs for `horizon` simulated seconds. Deterministic in `seed`.
  [[nodiscard]] QueueSimResult run(Seconds horizon, std::uint64_t seed) const;

 private:
  double arrival_rate_;
  std::optional<RateProfile> profile_;
  std::function<double(Rng&)> service_;
};

}  // namespace cl
