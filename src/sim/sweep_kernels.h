// sweep_kernels.h — the hand-vectorized hot loops of the swarm sweep.
//
// Every kernel comes as a scalar / SIMD pair dispatched by a `use_simd`
// flag (compile-time backend ∧ runtime `CL_SIMD` — see util/simd.h).
// The pairs are **bit-identical by construction**: the SIMD variant
// performs the same IEEE-754 operations on the same values, and every
// reduction uses a lane-width-independent shape — most importantly the
// stripe-8 watch-time sum, whose 8 virtual accumulators (element i adds
// to accumulator i mod 8, folded left-to-right at the end) map exactly
// onto 2×4-lane AVX2 registers, 4×2-lane SSE2/NEON registers, or 8
// scalar doubles. The shape depends on the *structure* (8 stripes),
// never on the lane width — the same rule the NUMA fold follows for
// thread counts (DESIGN.md §"SIMD kernels").
//
// Kernels, in sweep order:
//   1. window_bounds       — start/duration → window bounds, stripe-8
//                            watch-time sum, window-crossing count.
//   2. gather_peer_columns — per-peer user/ISP/ExP/β column gathers,
//                            single-ISP check, running ExP maximum.
//      gather_pops         — ExP→PoP table gather + running maximum.
//   3. upload_shares       — the flat existence-matcher's proportional
//                            upload attribution (masked divides).
//   4. fold_traffic        — the per-stretch traffic accumulation
//                            (lane-parallel multiply-add, no reduction).
//
// Gathers are native on AVX2 and per-lane loads elsewhere; on SSE2/NEON
// the gather-dominated kernels (2) delegate to their scalar twin — the
// pack/unpack overhead exceeds the vector win there, and delegation
// keeps the dispatch honest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "sim/matcher.h"
#include "util/simd.h"

namespace cl::sweep_kernels {

// ---------------------------------------------------------------------------
// Kernel 1 — window bounds + stripe-8 watch-time reduction
// ---------------------------------------------------------------------------

struct WindowBounds {
  double watch_seconds = 0;        ///< Σ duration, stripe-8 shape
  std::size_t crossings = 0;       ///< sessions with w_end > w_start
  std::uint64_t max_end_window = 0;  ///< max w_end (packed-key guard)
};

/// Number of virtual accumulators in the watch-time reduction. 8 = two
/// AVX2 registers; must be a multiple of every backend's f64 width.
inline constexpr std::size_t kStripe = 8;
static_assert(kStripe % simd::VF64::kLanes == 0);

inline WindowBounds window_bounds_scalar(
    std::span<const std::uint32_t> indices, const double* start,
    const double* duration, double dt, std::uint64_t* w_start,
    std::uint64_t* w_end) {
  double acc[kStripe] = {};
  WindowBounds r;
  const std::size_t n = indices.size();
  for (std::size_t g = 0; g < n; ++g) {
    if (g + simd::kPrefetchAhead < n) {
      const std::uint32_t pf = indices[g + simd::kPrefetchAhead];
      simd::prefetch(start + pf);
      simd::prefetch(duration + pf);
    }
    const std::uint32_t idx = indices[g];
    const double s = start[idx];
    const double d = duration[idx];
    acc[g % kStripe] += d;
    const auto ws = static_cast<std::uint64_t>(s / dt);
    const auto we = static_cast<std::uint64_t>((s + d) / dt);
    w_start[g] = ws;
    w_end[g] = we;
    r.crossings += we > ws ? 1 : 0;
    r.max_end_window = we > r.max_end_window ? we : r.max_end_window;
  }
  double watch = acc[0];
  // [vec:watch-stripe-fold]
  for (std::size_t k = 1; k < kStripe; ++k) watch += acc[k];
  r.watch_seconds = watch;
  return r;
}

inline WindowBounds window_bounds_simd(std::span<const std::uint32_t> indices,
                                       const double* start,
                                       const double* duration, double dt,
                                       std::uint64_t* w_start,
                                       std::uint64_t* w_end) {
  using simd::VF64;
  constexpr std::size_t kW = VF64::kLanes;
  if constexpr (kW == 1) {
    return window_bounds_scalar(indices, start, duration, dt, w_start, w_end);
  } else {
    constexpr std::size_t kBlocks = kStripe / kW;
    VF64 acc[kBlocks];
    for (auto& a : acc) a = VF64::zero();
    WindowBounds r;
    const std::size_t n = indices.size();
    const VF64 vdt = VF64::set1(dt);
    alignas(simd::kAlign) double qs[kStripe];
    alignas(simd::kAlign) double qe[kStripe];
    std::size_t g = 0;
    for (; g + kStripe <= n; g += kStripe) {
      if (g + 2 * simd::kPrefetchAhead + kStripe <= n) {
        const std::uint32_t* pp = indices.data() + g + 2 * simd::kPrefetchAhead;
        for (std::size_t j = 0; j < kStripe; ++j) {
          simd::prefetch(start + pp[j]);
          simd::prefetch(duration + pp[j]);
        }
      }
      for (std::size_t b = 0; b < kBlocks; ++b) {
        const std::uint32_t* ip = indices.data() + g + b * kW;
        const VF64 s = VF64::gather(start, ip);
        const VF64 d = VF64::gather(duration, ip);
        acc[b] += d;
        (s / vdt).store(qs + b * kW);
        ((s + d) / vdt).store(qe + b * kW);
      }
      for (std::size_t j = 0; j < kStripe; ++j) {
        const auto ws = static_cast<std::uint64_t>(qs[j]);
        const auto we = static_cast<std::uint64_t>(qe[j]);
        w_start[g + j] = ws;
        w_end[g + j] = we;
        r.crossings += we > ws ? 1 : 0;
        r.max_end_window = we > r.max_end_window ? we : r.max_end_window;
      }
    }
    // Spill the vector accumulators onto the virtual stripe (accumulator
    // j lives in block j/kW, lane j%kW) and finish the tail scalar —
    // exactly the scalar kernel's state after the same g iterations.
    double acc8[kStripe];
    for (std::size_t j = 0; j < kStripe; ++j) {
      acc8[j] = acc[j / kW].lane(j % kW);
    }
    for (; g < n; ++g) {
      const std::uint32_t idx = indices[g];
      const double s = start[idx];
      const double d = duration[idx];
      acc8[g % kStripe] += d;
      const auto ws = static_cast<std::uint64_t>(s / dt);
      const auto we = static_cast<std::uint64_t>((s + d) / dt);
      w_start[g] = ws;
      w_end[g] = we;
      r.crossings += we > ws ? 1 : 0;
      r.max_end_window = we > r.max_end_window ? we : r.max_end_window;
    }
    double watch = acc8[0];
    for (std::size_t k = 1; k < kStripe; ++k) watch += acc8[k];
    r.watch_seconds = watch;
    return r;
  }
}

inline WindowBounds window_bounds(bool use_simd,
                                  std::span<const std::uint32_t> indices,
                                  const double* start, const double* duration,
                                  double dt, std::uint64_t* w_start,
                                  std::uint64_t* w_end) {
  return use_simd
             ? window_bounds_simd(indices, start, duration, dt, w_start, w_end)
             : window_bounds_scalar(indices, start, duration, dt, w_start,
                                    w_end);
}

// ---------------------------------------------------------------------------
// Kernel 2 — per-peer column gathers
// ---------------------------------------------------------------------------

struct PeerGather {
  std::uint32_t max_exp = 0;
  bool single_isp = true;
};

// `g_user` may be nullptr: the user column only feeds the per-user
// traffic split, so callers skip that gather (a full random-access pass
// over the column) when SimConfig::collect_per_user is off.

inline PeerGather gather_peer_columns_scalar(
    std::span<const std::uint32_t> indices, const std::uint32_t* users,
    const std::uint32_t* isps, const std::uint32_t* exps,
    const std::uint8_t* bitrates, const double* beta_table,
    std::uint32_t* g_user, std::uint32_t* g_isp, std::uint32_t* g_exp,
    double* g_beta) {
  PeerGather r;
  const std::size_t n = indices.size();
  const std::uint32_t isp0 = isps[indices[0]];
  for (std::size_t g = 0; g < n; ++g) {
    if (g + simd::kPrefetchAhead < n) {
      const std::uint32_t pf = indices[g + simd::kPrefetchAhead];
      if (g_user != nullptr) simd::prefetch(users + pf);
      simd::prefetch(isps + pf);
      simd::prefetch(exps + pf);
      simd::prefetch(bitrates + pf);
    }
    const std::uint32_t idx = indices[g];
    if (g_user != nullptr) g_user[g] = users[idx];
    const std::uint32_t isp = isps[idx];
    g_isp[g] = isp;
    if (isp != isp0) r.single_isp = false;
    const std::uint32_t exp = exps[idx];
    g_exp[g] = exp;
    r.max_exp = exp > r.max_exp ? exp : r.max_exp;
    g_beta[g] = beta_table[bitrates[idx]];
  }
  return r;
}

inline PeerGather gather_peer_columns_simd(
    std::span<const std::uint32_t> indices, const std::uint32_t* users,
    const std::uint32_t* isps, const std::uint32_t* exps,
    const std::uint8_t* bitrates, const double* beta_table,
    std::uint32_t* g_user, std::uint32_t* g_isp, std::uint32_t* g_exp,
    double* g_beta) {
#if !defined(CL_SIMD_AVX2)
  // Without native gathers the per-lane pack/unpack costs more than the
  // packed compare/max saves — delegate to the scalar twin.
  return gather_peer_columns_scalar(indices, users, isps, exps, bitrates,
                                    beta_table, g_user, g_isp, g_exp, g_beta);
#else
  using simd::VU32;
  constexpr std::size_t kW = VU32::kLanes;
  PeerGather r;
  const std::size_t n = indices.size();
  const std::uint32_t isp0 = isps[indices[0]];
  const VU32 visp0 = VU32::set1(isp0);
  VU32 vmax = VU32::set1(0);
  VU32 veq = VU32::set1(~std::uint32_t{0});
  std::size_t g = 0;
  for (; g + kW <= n; g += kW) {
    if (g + 2 * simd::kPrefetchAhead + kW <= n) {
      const std::uint32_t* pp = indices.data() + g + 2 * simd::kPrefetchAhead;
      for (std::size_t l = 0; l < kW; ++l) {
        if (g_user != nullptr) simd::prefetch(users + pp[l]);
        simd::prefetch(isps + pp[l]);
        simd::prefetch(exps + pp[l]);
        simd::prefetch(bitrates + pp[l]);
      }
    }
    const std::uint32_t* ip = indices.data() + g;
    if (g_user != nullptr) VU32::gather(users, ip).storeu(g_user + g);
    const VU32 isp = VU32::gather(isps, ip);
    isp.storeu(g_isp + g);
    veq = veq & VU32::cmpeq(isp, visp0);
    const VU32 exp = VU32::gather(exps, ip);
    exp.storeu(g_exp + g);
    vmax = VU32::max(vmax, exp);
    // β is a 4-entry table lookup keyed by a *byte* column — no byte
    // gather exists, so the lanes load scalar either way.
    for (std::size_t l = 0; l < kW; ++l) {
      g_beta[g + l] = beta_table[bitrates[ip[l]]];
    }
  }
  r.single_isp = veq.all_ones();
  for (std::size_t l = 0; l < kW; ++l) {
    const std::uint32_t e = vmax.lane(l);
    r.max_exp = e > r.max_exp ? e : r.max_exp;
  }
  for (; g < n; ++g) {
    const std::uint32_t idx = indices[g];
    if (g_user != nullptr) g_user[g] = users[idx];
    const std::uint32_t isp = isps[idx];
    g_isp[g] = isp;
    if (isp != isp0) r.single_isp = false;
    const std::uint32_t exp = exps[idx];
    g_exp[g] = exp;
    r.max_exp = exp > r.max_exp ? exp : r.max_exp;
    g_beta[g] = beta_table[bitrates[idx]];
  }
  return r;
#endif
}

inline PeerGather gather_peer_columns(
    bool use_simd, std::span<const std::uint32_t> indices,
    const std::uint32_t* users, const std::uint32_t* isps,
    const std::uint32_t* exps, const std::uint8_t* bitrates,
    const double* beta_table, std::uint32_t* g_user, std::uint32_t* g_isp,
    std::uint32_t* g_exp, double* g_beta) {
  return use_simd ? gather_peer_columns_simd(indices, users, isps, exps,
                                             bitrates, beta_table, g_user,
                                             g_isp, g_exp, g_beta)
                  : gather_peer_columns_scalar(indices, users, isps, exps,
                                               bitrates, beta_table, g_user,
                                               g_isp, g_exp, g_beta);
}

/// ExP→PoP table gather over the already-gathered contiguous g_exp
/// column; returns the running PoP maximum. Single-ISP swarms only (one
/// table); ISP-spanning swarms take the caller's pop_of loop.
inline std::uint32_t gather_pops_scalar(const std::uint32_t* g_exp,
                                        std::size_t n,
                                        const std::uint32_t* exp_to_pop,
                                        std::uint32_t* g_pop) {
  std::uint32_t max_pop = 0;
  for (std::size_t g = 0; g < n; ++g) {
    const std::uint32_t pop = exp_to_pop[g_exp[g]];
    g_pop[g] = pop;
    max_pop = pop > max_pop ? pop : max_pop;
  }
  return max_pop;
}

inline std::uint32_t gather_pops_simd(const std::uint32_t* g_exp,
                                      std::size_t n,
                                      const std::uint32_t* exp_to_pop,
                                      std::uint32_t* g_pop) {
#if !defined(CL_SIMD_AVX2)
  return gather_pops_scalar(g_exp, n, exp_to_pop, g_pop);
#else
  using simd::VU32;
  constexpr std::size_t kW = VU32::kLanes;
  VU32 vmax = VU32::set1(0);
  std::size_t g = 0;
  for (; g + kW <= n; g += kW) {
    const VU32 pop = VU32::gather(exp_to_pop, g_exp + g);
    pop.storeu(g_pop + g);
    vmax = VU32::max(vmax, pop);
  }
  std::uint32_t max_pop = 0;
  for (std::size_t l = 0; l < kW; ++l) {
    const std::uint32_t p = vmax.lane(l);
    max_pop = p > max_pop ? p : max_pop;
  }
  for (; g < n; ++g) {
    const std::uint32_t pop = exp_to_pop[g_exp[g]];
    g_pop[g] = pop;
    max_pop = pop > max_pop ? pop : max_pop;
  }
  return max_pop;
#endif
}

inline std::uint32_t gather_pops(bool use_simd, const std::uint32_t* g_exp,
                                 std::size_t n,
                                 const std::uint32_t* exp_to_pop,
                                 std::uint32_t* g_pop) {
  return use_simd ? gather_pops_simd(g_exp, n, exp_to_pop, g_pop)
                  : gather_pops_scalar(g_exp, n, exp_to_pop, g_pop);
}

// ---------------------------------------------------------------------------
// Kernel 3 — proportional upload attribution (flat existence matcher)
// ---------------------------------------------------------------------------
//
// out[j].upload_bits = [dem_exp[e]>0] dem_exp[e]/cnt_exp[e]
//                    + [dem_pop[p]>0] dem_pop[p]/cnt_pop[p]
//                    + core_term
//
// The conditional adds are masked selects in the SIMD variant: excluded
// terms contribute +0.0, and x + 0.0 == x bitwise for the non-negative
// demands involved, so both variants produce the exact sum
// (exp_term + pop_term) + core_term. Divides are lane-wise IEEE — same
// bits as scalar. cnt_* lanes convert u32→f64 exactly (counts < 2³¹).

inline void upload_shares_scalar(const ActivePeer* actives, std::size_t n,
                                 const double* dem_exp,
                                 const std::uint32_t* cnt_exp,
                                 const double* dem_pop,
                                 const std::uint32_t* cnt_pop,
                                 double core_term, PeerAllocation* out) {
  for (std::size_t j = 0; j < n; ++j) {
    const ActivePeer& a = actives[j];
    const double de = dem_exp[a.exp];
    const double qe = de > 0 ? de / static_cast<double>(cnt_exp[a.exp]) : 0.0;
    const double dp = dem_pop[a.pop];
    const double qp = dp > 0 ? dp / static_cast<double>(cnt_pop[a.pop]) : 0.0;
    out[j].upload_bits = qe + qp + core_term;
  }
}

inline void upload_shares_simd(const ActivePeer* actives, std::size_t n,
                               const double* dem_exp,
                               const std::uint32_t* cnt_exp,
                               const double* dem_pop,
                               const std::uint32_t* cnt_pop, double core_term,
                               PeerAllocation* out) {
  using simd::VF64;
  constexpr std::size_t kW = VF64::kLanes;
  if constexpr (kW == 1) {
    upload_shares_scalar(actives, n, dem_exp, cnt_exp, dem_pop, cnt_pop,
                         core_term, out);
  } else {
    const VF64 vzero = VF64::zero();
    const VF64 vcore = VF64::set1(core_term);
    std::size_t j = 0;
    for (; j + kW <= n; j += kW) {
      std::uint32_t eidx[kW];
      std::uint32_t pidx[kW];
      double ce[kW];
      double cp[kW];
      for (std::size_t l = 0; l < kW; ++l) {
        eidx[l] = actives[j + l].exp;
        pidx[l] = actives[j + l].pop;
        ce[l] = static_cast<double>(cnt_exp[eidx[l]]);
        cp[l] = static_cast<double>(cnt_pop[pidx[l]]);
      }
      const VF64 de = VF64::gather(dem_exp, eidx);
      const VF64 dp = VF64::gather(dem_pop, pidx);
      const VF64 qe =
          VF64::mask_and(de / VF64::loadu(ce), VF64::gt_mask(de, vzero));
      const VF64 qp =
          VF64::mask_and(dp / VF64::loadu(cp), VF64::gt_mask(dp, vzero));
      const VF64 up = qe + qp + vcore;
      for (std::size_t l = 0; l < kW; ++l) {
        out[j + l].upload_bits = up.lane(l);
      }
    }
    upload_shares_scalar(actives + j, n - j, dem_exp, cnt_exp, dem_pop,
                         cnt_pop, core_term, out + j);
  }
}

inline void upload_shares(bool use_simd, const ActivePeer* actives,
                          std::size_t n, const double* dem_exp,
                          const std::uint32_t* cnt_exp, const double* dem_pop,
                          const std::uint32_t* cnt_pop, double core_term,
                          PeerAllocation* out) {
  if (use_simd) {
    upload_shares_simd(actives, n, dem_exp, cnt_exp, dem_pop, cnt_pop,
                       core_term, out);
  } else {
    upload_shares_scalar(actives, n, dem_exp, cnt_exp, dem_pop, cnt_pop,
                         core_term, out);
  }
}

// ---------------------------------------------------------------------------
// Kernel 4 — per-stretch traffic fold
// ---------------------------------------------------------------------------
//
// tb[k] += al[k] * windows over the 5 contiguous traffic lanes
// (server, peer[0..2], cross_isp). Lanes are independent — no reduction,
// no FMA contraction (explicit mul + add, and the build sets
// -ffp-contract=off) — so any lane width produces identical bits.

inline constexpr std::size_t kTrafficLanes = 5;

inline void fold_traffic_scalar(double* tb, const double* al, double windows) {
  for (std::size_t k = 0; k < kTrafficLanes; ++k) {
    tb[k] += al[k] * windows;
  }
}

inline void fold_traffic_simd(double* tb, const double* al, double windows) {
  using simd::VF64;
  constexpr std::size_t kW = VF64::kLanes;
  if constexpr (kW == 1) {
    fold_traffic_scalar(tb, al, windows);
  } else {
    const VF64 vw = VF64::set1(windows);
    std::size_t k = 0;
    for (; k + kW <= kTrafficLanes; k += kW) {
      (VF64::loadu(tb + k) + VF64::loadu(al + k) * vw).storeu(tb + k);
    }
    for (; k < kTrafficLanes; ++k) {
      tb[k] += al[k] * windows;
    }
  }
}

inline void fold_traffic(bool use_simd, double* tb, const double* al,
                         double windows) {
  if (use_simd) {
    fold_traffic_simd(tb, al, windows);
  } else {
    fold_traffic_scalar(tb, al, windows);
  }
}

}  // namespace cl::sweep_kernels
