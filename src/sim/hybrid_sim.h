// hybrid_sim.h — the discrete time-step hybrid-CDN simulator
// (paper Section IV.A).
//
// The simulator replays a session trace in Δτ windows (the paper uses
// Δτ = 10 s). Sessions are grouped into swarms — by (content, ISP, bitrate
// class) in the paper's ISP-friendly, bitrate-split setting — and within
// each swarm, every window's active peers are matched by a Matcher policy,
// splitting each user's β·Δτ demand between fellow peers (by locality
// level) and the CDN.
//
// Implementation note: the active set of a swarm only changes when a
// session joins or leaves, so the simulator batches stretches of identical
// windows — one allocation is computed per stretch and multiplied by the
// stretch length (splitting at hour boundaries when the hourly grid is
// collected). This is exact, not an approximation, and reduces the cost
// from O(windows × peers) to O(events × peers).
//
// Parallel execution: swarms are independent, so run() shards the
// key-sorted swarm list across SimConfig::threads workers. Each worker
// drives one reusable SwarmSweep (sim/swarm_sweep.h); per-chunk SimResult
// partials merge in ascending swarm-key order, making the full result
// bit-identical at every thread count (see DESIGN.md §"Parallel execution
// model").
//
// Traces loaded from the binary columnar format carry a persisted
// swarm-key-sorted index (trace/swarm_index.h); under the default full
// (content, ISP, bitrate) partition run() consumes it directly instead
// of re-grouping — same key order, bit-identical results either way.
#pragma once

#include "sim/metrics.h"
#include "sim/sim_config.h"
#include "topology/placement.h"
#include "trace/session.h"

namespace cl {

/// Trace-driven hybrid-CDN simulator.
class HybridSimulator {
 public:
  /// `metro` supplies the per-ISP trees for locality lookups and must
  /// outlive the simulator.
  HybridSimulator(const Metro& metro, SimConfig config);

  [[nodiscard]] const SimConfig& config() const { return config_; }

  /// Simulates the whole trace: groups sessions into swarms, sweeps each
  /// swarm on SimConfig::threads workers, and merges the per-swarm /
  /// per-hour / per-user metrics deterministically. Throws
  /// cl::InvalidArgument when the trace's ISP/exchange-point ids do not
  /// fit this metro's trees (a trace replayed against the wrong metro —
  /// see topology/metro_registry.h).
  [[nodiscard]] SimResult run(const Trace& trace) const;

 private:
  const Metro* metro_;
  SimConfig config_;
};

}  // namespace cl
