// hybrid_sim.h — the discrete time-step hybrid-CDN simulator
// (paper Section IV.A).
//
// The simulator replays a session trace in Δτ windows (the paper uses
// Δτ = 10 s). Sessions are grouped into swarms — by (content, ISP, bitrate
// class) in the paper's ISP-friendly, bitrate-split setting — and within
// each swarm, every window's active peers are matched by a Matcher policy,
// splitting each user's β·Δτ demand between fellow peers (by locality
// level) and the CDN.
//
// Implementation note: the active set of a swarm only changes when a
// session joins or leaves, so the simulator batches stretches of identical
// windows — one allocation is computed per stretch and multiplied by the
// stretch length (splitting at hour boundaries when the hourly grid is
// collected). This is exact, not an approximation, and reduces the cost
// from O(windows × peers) to O(events × peers).
//
// Data path: the simulator consumes *columns* (trace/trace_view.h), not
// rows. run(TraceView) is the engine — workers receive column index
// ranges, gather each swarm's fields into contiguous scratch and sweep
// (sim/swarm_sweep.h). run(Trace) is a convenience wrapper that
// transposes the rows into an owned SoA view first; `.cltrace` input
// should be opened as a view (TraceView::open_binary) so the sweep runs
// directly on the mmap'd blocks with zero materialization. run_rows
// keeps the historical row-structured path as the bit-identity reference
// and bench baseline.
//
// Parallel execution: swarms are independent, so run() shards the
// key-sorted swarm list across SimConfig::threads workers. Each worker
// drives one reusable SwarmSweep; per-chunk SimResult partials are
// first-touch allocated by their worker and merge in ascending swarm-key
// order (socket-local pre-folds on multi-node hosts — util/parallel.h),
// making the full result bit-identical at every thread count (see
// DESIGN.md §"Parallel execution model").
//
// Traces loaded from the binary columnar format carry a persisted
// swarm-key-sorted index (trace/swarm_index.h); under the default full
// (content, ISP, bitrate) partition run() consumes it directly instead
// of re-grouping — same key order, bit-identical results either way.
#pragma once

#include "sim/metrics.h"
#include "sim/sim_config.h"
#include "topology/placement.h"
#include "trace/session.h"
#include "trace/trace_view.h"

namespace cl {

/// Wall-clock phase breakdown of one simulator run
/// (`cl simulate --timing`).
struct SimPhaseTiming {
  double group_seconds = 0;  ///< metro-fit validation + swarm grouping
  double sweep_seconds = 0;  ///< concurrent per-swarm sweep phase
  double merge_seconds = 0;  ///< folding the per-chunk SimResult partials

  // Per-kernel split of the sweep phase (sim/sweep_kernels.h), summed
  // across workers — CPU seconds, so the four can exceed sweep_seconds
  // wall time when threads > 1. Collecting them adds clock reads to the
  // sweep hot path, so they are only measured when `timing` is non-null.
  double sweep_gather1_seconds = 0;   ///< window bounds + watch time
  double sweep_gather2_seconds = 0;   ///< per-peer column gathers
  double sweep_events_seconds = 0;    ///< event sort + stretch loop
  double sweep_allocate_seconds = 0;  ///< per-stretch allocation
};

/// Trace-driven hybrid-CDN simulator.
class HybridSimulator {
 public:
  /// `metro` supplies the per-ISP trees for locality lookups and must
  /// outlive the simulator.
  HybridSimulator(const Metro& metro, SimConfig config);

  [[nodiscard]] const SimConfig& config() const { return config_; }

  /// Simulates the whole trace from its columns: groups sessions into
  /// swarms, sweeps each swarm on SimConfig::threads workers, and merges
  /// the per-swarm / per-hour / per-user metrics deterministically.
  /// Throws cl::InvalidArgument when the trace's ISP/exchange-point ids
  /// do not fit this metro's trees (a trace replayed against the wrong
  /// metro — see topology/metro_registry.h). `timing`, when non-null,
  /// receives the group/sweep/merge wall-time split.
  [[nodiscard]] SimResult run(const TraceView& view,
                              SimPhaseTiming* timing = nullptr) const;

  /// Convenience wrapper: transposes the row-structured trace into an
  /// owned SoA view (one O(n) pass) and runs on the columns.
  [[nodiscard]] SimResult run(const Trace& trace) const;

  /// The historical row-structured path (SessionRecord loads inside the
  /// sweep loops, virtual Matcher dispatch) — bit-identical to run() and
  /// kept as its oracle and as bench/micro_sweep's baseline.
  [[nodiscard]] SimResult run_rows(const Trace& trace) const;

 private:
  const Metro* metro_;
  SimConfig config_;
};

}  // namespace cl
