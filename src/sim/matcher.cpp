#include "sim/matcher.h"

#include <algorithm>
#include <unordered_map>

#include "util/error.h"

namespace cl {

namespace {

constexpr std::uint64_t exp_key(const ActivePeer& a) {
  return (static_cast<std::uint64_t>(a.isp) << 32) | a.exp;
}

constexpr std::uint64_t pop_key(const ActivePeer& a) {
  return (static_cast<std::uint64_t>(a.isp) << 32) | a.pop;
}

}  // namespace

void ExistenceMatcher::allocate(std::span<const ActivePeer> actives,
                                std::size_t seed_index,
                                const SimConfig& config,
                                std::vector<PeerAllocation>& out) const {
  const std::size_t n = actives.size();
  CL_EXPECTS(n == 0 || seed_index < n);
  out.assign(n, PeerAllocation{});
  if (n == 0) return;
  const double dt = config.window.value();
  const double ratio = std::min(config.q_over_beta, 1.0);

  std::unordered_map<std::uint64_t, std::uint32_t> cnt_exp, cnt_pop;
  std::unordered_map<std::uint32_t, std::uint32_t> cnt_isp;
  cnt_exp.reserve(n);
  cnt_pop.reserve(n);
  for (const auto& a : actives) {
    ++cnt_exp[exp_key(a)];
    ++cnt_pop[pop_key(a)];
    ++cnt_isp[a.isp];
  }

  std::unordered_map<std::uint64_t, double> dem_exp, dem_pop;
  std::unordered_map<std::uint32_t, double> dem_core;
  double dem_cross = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const auto& a = actives[i];
    const double demand = a.beta * dt;
    out[i].server_bits = demand;
    if (n < 2 || i == seed_index) continue;
    const double d = ratio * demand;
    if (d <= 0) continue;
    if (cnt_exp[exp_key(a)] >= 2) {
      out[i].peer_bits[index(LocalityLevel::kExchangePoint)] = d;
      dem_exp[exp_key(a)] += d;
    } else if (cnt_pop[pop_key(a)] >= 2) {
      out[i].peer_bits[index(LocalityLevel::kPop)] = d;
      dem_pop[pop_key(a)] += d;
    } else if (cnt_isp[a.isp] >= 2) {
      out[i].peer_bits[index(LocalityLevel::kCore)] = d;
      dem_core[a.isp] += d;
    } else {
      // Only reachable when the swarm spans ISPs (ablation mode).
      out[i].cross_isp_bits = d;
      dem_cross += d;
    }
    out[i].server_bits -= d;
  }

  // Attribute uploads evenly across the members of each serving bucket
  // (see DESIGN.md §5: totals are exact, the per-user split is the
  // symmetric-swarm approximation).
  for (std::size_t j = 0; j < n; ++j) {
    const auto& a = actives[j];
    double up = 0;
    if (const auto it = dem_exp.find(exp_key(a)); it != dem_exp.end()) {
      up += it->second / cnt_exp[exp_key(a)];
    }
    if (const auto it = dem_pop.find(pop_key(a)); it != dem_pop.end()) {
      up += it->second / cnt_pop[pop_key(a)];
    }
    if (const auto it = dem_core.find(a.isp); it != dem_core.end()) {
      up += it->second / cnt_isp[a.isp];
    }
    if (dem_cross > 0) up += dem_cross / static_cast<double>(n);
    out[j].upload_bits = up;
  }
}

void CapacityMatcher::allocate(std::span<const ActivePeer> actives,
                               std::size_t seed_index,
                               const SimConfig& config,
                               std::vector<PeerAllocation>& out) const {
  const std::size_t n = actives.size();
  CL_EXPECTS(n == 0 || seed_index < n);
  out.assign(n, PeerAllocation{});
  if (n == 0) return;
  const double dt = config.window.value();

  std::vector<double> budget(n);
  for (std::size_t j = 0; j < n; ++j) {
    budget[j] = config.q_over_beta * actives[j].beta * dt;
  }

  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_exp, by_pop;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> by_isp;
  for (std::size_t j = 0; j < n; ++j) {
    const auto& a = actives[j];
    by_exp[exp_key(a)].push_back(static_cast<std::uint32_t>(j));
    by_pop[pop_key(a)].push_back(static_cast<std::uint32_t>(j));
    by_isp[a.isp].push_back(static_cast<std::uint32_t>(j));
  }

  for (std::size_t i = 0; i < n; ++i) {
    const auto& a = actives[i];
    const double demand = a.beta * dt;
    if (n < 2 || i == seed_index) {
      out[i].server_bits = demand;
      continue;
    }
    double need = demand;
    auto pull = [&](const std::vector<std::uint32_t>& candidates,
                    auto&& skip, double& sink) {
      for (std::uint32_t j : candidates) {
        if (need <= 0) break;
        if (j == i || skip(actives[j])) continue;
        const double take = std::min(need, budget[j]);
        if (take <= 0) continue;
        budget[j] -= take;
        need -= take;
        out[j].upload_bits += take;
        sink += take;
      }
    };
    // Closest-first: own ExP, then own PoP (other ExPs), then own ISP
    // (other PoPs), then — only for ISP-spanning swarms — other ISPs.
    pull(by_exp[exp_key(a)], [](const ActivePeer&) { return false; },
         out[i].peer_bits[index(LocalityLevel::kExchangePoint)]);
    pull(by_pop[pop_key(a)],
         [&](const ActivePeer& b) { return exp_key(b) == exp_key(a); },
         out[i].peer_bits[index(LocalityLevel::kPop)]);
    pull(by_isp[a.isp],
         [&](const ActivePeer& b) { return pop_key(b) == pop_key(a); },
         out[i].peer_bits[index(LocalityLevel::kCore)]);
    if (!config.isp_friendly) {
      for (std::size_t j = 0; j < n && need > 0; ++j) {
        if (j == i || actives[j].isp == a.isp) continue;
        const double take = std::min(need, budget[j]);
        if (take <= 0) continue;
        budget[j] -= take;
        need -= take;
        out[j].upload_bits += take;
        out[i].cross_isp_bits += take;
      }
    }
    out[i].server_bits = need;
  }
}

std::unique_ptr<Matcher> make_matcher(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kExistence:
      return std::make_unique<ExistenceMatcher>();
    case MatcherKind::kCapacity:
      return std::make_unique<CapacityMatcher>();
  }
  throw InvalidArgument("unknown matcher kind");
}

}  // namespace cl
