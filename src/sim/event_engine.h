// event_engine.h — deterministic building blocks of the live-event
// scenario engine: a piecewise-constant arrival-rate profile (the shape
// of a burst) and a time-ordered event queue with stable FIFO tie-break.
//
// The trace-driven simulator replays a *fixed* workload; live events need
// the opposite — a workload whose arrival intensity changes mid-trace
// (ramp to kickoff, spike at a premiere, decay afterwards). RateProfile
// describes λ(t) as ordered constant-rate phases and samples the
// non-homogeneous Poisson arrival stream by Lewis–Shedler thinning:
// candidate gaps at the profile's peak rate, each accepted with
// probability λ(t)/λmax. Everything is deterministic in the Rng passed
// in, so generated scenarios reproduce bit-exactly from one seed.
//
// EventQueue is the scenario generators' scheduling core: a binary-heap
// priority queue ordered by (time, insertion sequence). Ties resolve in
// push order — never by heap internals — so event application order, and
// therefore every downstream rng draw, is deterministic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace cl {

/// One constant-rate phase of an arrival profile: `rate_per_s` applies
/// from `start_s` until the next phase's start (the last phase extends
/// to infinity).
struct RatePhase {
  double start_s = 0;
  double rate_per_s = 0;
};

/// Piecewise-constant arrival-rate profile λ(t) ≥ 0. Before the first
/// phase the rate is 0.
class RateProfile {
 public:
  /// Phases must be non-empty, with strictly ascending non-negative
  /// starts, non-negative rates, and at least one positive rate.
  explicit RateProfile(std::vector<RatePhase> phases);

  /// A single-phase profile: rate `rate_per_s` from t = 0 on (the
  /// homogeneous-Poisson special case).
  [[nodiscard]] static RateProfile constant(double rate_per_s);

  [[nodiscard]] const std::vector<RatePhase>& phases() const {
    return phases_;
  }

  /// λ(t) — 0 before the first phase, else the covering phase's rate.
  [[nodiscard]] double rate_at(double t) const;

  /// max over phases of rate_per_s — the thinning envelope.
  [[nodiscard]] double max_rate() const { return max_rate_; }

  /// Expected arrivals in [0, horizon): ∫λ(t)dt.
  [[nodiscard]] double expected_arrivals(double horizon_s) const;

  /// Samples the next arrival strictly after `now` by thinning.
  /// Returns +infinity once the candidate time passes `limit_s` (callers
  /// cap at the trace span / simulation horizon; without the cap a
  /// trailing zero-rate phase would spin forever rejecting candidates).
  /// Deterministic in the rng state.
  [[nodiscard]] double next_arrival(double now, double limit_s,
                                    Rng& rng) const;

 private:
  std::vector<RatePhase> phases_;
  double max_rate_ = 0;
};

/// Min-heap of (time, payload) events with deterministic FIFO tie-break:
/// equal-time events pop in push order. The scenario generators drive
/// their event loops off this queue, so tie-breaking by insertion
/// sequence — not heap layout — is what keeps generated traces
/// reproducible.
template <typename Payload>
class EventQueue {
 public:
  struct Scheduled {
    double time = 0;
    std::uint64_t seq = 0;
    Payload payload{};
  };

  void push(double time, Payload payload) {
    heap_.push_back({time, seq_++, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] double next_time() const { return heap_.front().time; }

  Scheduled pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Scheduled event = std::move(heap_.back());
    heap_.pop_back();
    return event;
  }

 private:
  // std::push_heap builds a max-heap; "later event sorts lower" makes it
  // a min-heap over (time, seq).
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Scheduled> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace cl
