#include "carbon/schedule.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "topology/metro_registry.h"
#include "util/error.h"

namespace cl {

void ScheduleConfig::validate() const {
  if (!(preload_adoption >= 0 && preload_adoption <= 1)) {
    throw InvalidArgument("ScheduleConfig::preload_adoption must be in [0, 1]");
  }
  if (!(preload_window_hours > 0 && preload_window_hours <= 24)) {
    throw InvalidArgument(
        "ScheduleConfig::preload_window_hours must be in (0, 24]");
  }
  if (!(user_weight >= 0) || !(serving_weight >= 0) ||
      std::abs(user_weight + serving_weight - 1.0) > 1e-9) {
    throw InvalidArgument(
        "ScheduleConfig dual-grid weights must be >= 0 and sum to 1");
  }
  if (!(hop_latency_ms >= 0)) {
    throw InvalidArgument("ScheduleConfig::hop_latency_ms must be >= 0");
  }
  if (!(max_added_latency_ms >= 0)) {
    throw InvalidArgument("ScheduleConfig::max_added_latency_ms must be >= 0");
  }
}

std::size_t RoutingPlan::hours_routed_away() const {
  std::size_t away = 0;
  for (const auto& h : hours) {
    if (h.serving_metro != home_metro) ++away;
  }
  return away;
}

double RoutingPlan::mean_added_latency_ms() const {
  if (hours.empty()) return 0;
  double sum = 0;
  for (const auto& h : hours) sum += h.added_latency_ms;
  return sum / static_cast<double>(hours.size());
}

double RoutingPlan::max_added_latency_ms() const {
  double max = 0;
  for (const auto& h : hours) max = std::max(max, h.added_latency_ms);
  return max;
}

CarbonScheduler::CarbonScheduler(const IntensityCurve& user_curve,
                                 ScheduleConfig config)
    : user_curve_(&user_curve), config_(config) {
  config_.validate();
}

PreloadConfig CarbonScheduler::trough_window() const {
  // Mean intensity of every non-wrapping window [s, s+W), s an integer
  // hour: 24 candidates at most, so brute force is exact and cheap. The
  // window covers hour cell h with weight min(h+1, s+W) − max(h, s).
  const double width = config_.preload_window_hours;
  const int last_start = 24 - static_cast<int>(std::ceil(width));
  int best_start = 0;
  double best_sum = 0;
  for (int start = 0; start <= last_start; ++start) {
    double sum = 0;
    for (int h = start; h < 24 && h < start + width; ++h) {
      const double overlap =
          std::min<double>(h + 1, start + width) - static_cast<double>(h);
      sum += overlap * user_curve_->at_hour(static_cast<std::size_t>(h));
    }
    if (start == 0 || sum < best_sum) {
      best_sum = sum;
      best_start = start;
    }
  }
  PreloadConfig window;
  window.adoption = config_.preload_adoption;
  window.window_start_hour = best_start;
  window.window_end_hour = best_start + width;
  return window;
}

Trace CarbonScheduler::schedule_preload(const Trace& trace,
                                        std::uint64_t seed) const {
  // Flat no-op contract: no signal, no shift — the returned copy carries
  // bit-identical sessions (and the metro stamp) so downstream results
  // match the unscheduled run exactly.
  if (inert()) return trace;
  return apply_preload(trace, trough_window(), seed);
}

RoutingPlan CarbonScheduler::home_plan(std::size_t home,
                                       std::size_t hours) const {
  RoutingPlan plan;
  plan.home_metro = home;
  plan.hours.reserve(hours);
  for (std::size_t h = 0; h < hours; ++h) {
    plan.hours.push_back({home, 0.0, user_curve_->at_hour(h)});
  }
  return plan;
}

RoutingPlan CarbonScheduler::plan_routes(
    const std::vector<const IntensityCurve*>& serving, std::size_t home,
    std::size_t hours) const {
  if (home >= serving.size()) {
    throw InvalidArgument(
        "plan_routes: home metro index is outside the serving-grid list");
  }
  for (const IntensityCurve* curve : serving) {
    if (curve == nullptr) {
      throw InvalidArgument("plan_routes: null serving-grid candidate");
    }
  }
  if (inert()) return home_plan(home, hours);

  RoutingPlan plan;
  plan.home_metro = home;
  plan.hours.reserve(hours);
  for (std::size_t h = 0; h < hours; ++h) {
    RouteChoice best{home, 0.0, serving[home]->at_hour(h)};
    for (std::size_t m = 0; m < serving.size(); ++m) {
      if (m == home) continue;
      const double distance =
          static_cast<double>(m > home ? m - home : home - m);
      const double latency = config_.hop_latency_ms * distance;
      if (latency > config_.max_added_latency_ms) continue;
      const double g = serving[m]->at_hour(h);
      // Strict improvement only: equal-intensity candidates never pull a
      // request off its home metro (and among equally clean remotes the
      // nearest wins) — ties cost latency for nothing.
      if (g < best.serving_intensity ||
          (g == best.serving_intensity && best.serving_metro != home &&
           latency < best.added_latency_ms)) {
        best = {m, latency, g};
      }
    }
    plan.hours.push_back(best);
  }
  return plan;
}

namespace {

TrafficBreakdown sum_row(const std::vector<TrafficBreakdown>& row) {
  TrafficBreakdown sum;
  for (const auto& t : row) sum += t;
  return sum;
}

}  // namespace

double CarbonScheduler::dual_grams(const HourlyTrafficGrid& hourly,
                                   const EnergyAccountant& energy,
                                   const RoutingPlan& plan) const {
  double grams = 0;
  for (std::size_t h = 0; h < hourly.size(); ++h) {
    const double user_g = user_curve_->at_hour(h);
    const double serving_g =
        h < plan.hours.size() ? plan.hours[h].serving_intensity : user_g;
    const Energy spent = energy.hybrid(sum_row(hourly[h])).total();
    grams += dual_intensity(user_g, serving_g) * spent.kwh();
  }
  return grams;
}

std::size_t metro_registry_index(const std::string& metro_name) {
  const std::vector<std::string> names = MetroRegistry::instance().names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == metro_name) return i;
  }
  throw InvalidArgument("metro '" + metro_name +
                        "' is not a registry preset (valid: " +
                        MetroRegistry::instance().names_joined() + ")");
}

std::vector<const IntensityCurve*> serving_curves(
    const std::string& home_metro, const IntensityCurve& user_curve) {
  const IntensityRegistry& intensity = IntensityRegistry::instance();
  std::vector<const IntensityCurve*> serving;
  for (const std::string& name : MetroRegistry::instance().names()) {
    serving.push_back(name == home_metro ? &user_curve
                                         : &intensity.default_for_metro(name));
  }
  return serving;
}

ScheduleOutcome CarbonScheduler::assess(const HourlyTrafficGrid& unscheduled,
                                        const HourlyTrafficGrid& scheduled,
                                        const EnergyAccountant& energy,
                                        const RoutingPlan& plan) const {
  ScheduleOutcome outcome;
  outcome.model = energy.costs().params().name;
  outcome.unscheduled_g = dual_grams(
      unscheduled, energy, home_plan(plan.home_metro, unscheduled.size()));
  outcome.scheduled_g = dual_grams(scheduled, energy, plan);
  outcome.reduction = outcome.unscheduled_g > 0
                          ? 1.0 - outcome.scheduled_g / outcome.unscheduled_g
                          : 0.0;
  return outcome;
}

}  // namespace cl
