#include "carbon/carbon_accountant.h"

#include <algorithm>
#include <utility>

namespace cl {

CarbonAccountant::CarbonAccountant(EnergyAccountant energy,
                                   IntensityCurve curve)
    : energy_(std::move(energy)), curve_(std::move(curve)) {}

TrafficBreakdown CarbonAccountant::sum_row(
    const std::vector<TrafficBreakdown>& row) {
  TrafficBreakdown sum;
  for (const auto& t : row) sum += t;
  return sum;
}

double CarbonAccountant::hybrid_grams(const HourlyTrafficGrid& hourly) const {
  double grams = 0;
  for (std::size_t h = 0; h < hourly.size(); ++h) {
    grams += curve_.grams(energy_.hybrid(sum_row(hourly[h])).total(), h);
  }
  return grams;
}

double CarbonAccountant::baseline_grams(
    const HourlyTrafficGrid& hourly) const {
  double grams = 0;
  for (std::size_t h = 0; h < hourly.size(); ++h) {
    grams += curve_.grams(
        energy_.baseline(sum_row(hourly[h]).total()).total(), h);
  }
  return grams;
}

double CarbonAccountant::carbon_savings(const HourlyTrafficGrid& hourly) const {
  const double baseline = baseline_grams(hourly);
  if (baseline <= 0) return 0.0;
  return 1.0 - hybrid_grams(hourly) / baseline;
}

CarbonOutcome CarbonAccountant::assess(const HourlyTrafficGrid& hourly) const {
  CarbonOutcome outcome;
  outcome.model = energy_.costs().params().name;
  outcome.intensity = curve_.name();
  outcome.hybrid_g = hybrid_grams(hourly);
  outcome.baseline_g = baseline_grams(hourly);
  outcome.saved_g = outcome.baseline_g - outcome.hybrid_g;
  outcome.carbon_savings =
      outcome.baseline_g > 0 ? 1.0 - outcome.hybrid_g / outcome.baseline_g
                             : 0.0;
  TrafficBreakdown total;
  for (const auto& row : hourly) total += sum_row(row);
  outcome.energy_savings = energy_.savings(total);
  return outcome;
}

std::vector<double> CarbonAccountant::daily_carbon_savings(
    const HourlyTrafficGrid& hourly) const {
  std::vector<double> out;
  out.reserve((hourly.size() + 23) / 24);
  for (std::size_t begin = 0; begin < hourly.size(); begin += 24) {
    const std::size_t end = std::min(hourly.size(), begin + 24);
    double hybrid = 0, baseline = 0;
    for (std::size_t h = begin; h < end; ++h) {
      const TrafficBreakdown traffic = sum_row(hourly[h]);
      hybrid += curve_.grams(energy_.hybrid(traffic).total(), h);
      baseline += curve_.grams(energy_.baseline(traffic.total()).total(), h);
    }
    out.push_back(baseline > 0 ? 1.0 - hybrid / baseline : 0.0);
  }
  return out;
}

}  // namespace cl
