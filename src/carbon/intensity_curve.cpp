#include "carbon/intensity_curve.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <optional>
#include <utility>

#include "topology/metro_registry.h"
#include "util/csv.h"
#include "util/error.h"

namespace cl {

IntensityCurve::IntensityCurve(std::string name, std::array<double, 24> hours)
    : name_(std::move(name)), hours_(hours) {
  for (double v : hours_) {
    if (!(v > 0)) {
      throw InvalidArgument("intensity curve '" + name_ +
                            "' must be > 0 gCO2/kWh at every hour");
    }
  }
}

IntensityCurve IntensityCurve::constant(std::string name,
                                        double gco2_per_kwh) {
  std::array<double, 24> hours{};
  hours.fill(gco2_per_kwh);
  return IntensityCurve(std::move(name), hours);
}

double IntensityCurve::mean() const {
  return std::accumulate(hours_.begin(), hours_.end(), 0.0) / 24.0;
}

double IntensityCurve::min() const {
  return *std::min_element(hours_.begin(), hours_.end());
}

double IntensityCurve::max() const {
  return *std::max_element(hours_.begin(), hours_.end());
}

bool IntensityCurve::is_flat() const {
  return std::all_of(hours_.begin(), hours_.end(),
                     [&](double v) { return v == hours_[0]; });
}

namespace {

/// Full-consumption double parse; std::nullopt on any trailing garbage.
std::optional<double> parse_number(const std::string& field) {
  if (field.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (errno != 0 || end != field.c_str() + field.size()) return std::nullopt;
  return value;
}

}  // namespace

IntensityCurve IntensityCurve::from_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw IoError("cannot open intensity CSV '" + path + "'");
  }
  const std::string name = std::filesystem::path(path).stem().string();

  std::array<double, 24> hours{};
  std::array<bool, 24> seen{};
  std::size_t rows = 0;
  std::size_t line_no = 0;
  bool first_data_row = true;
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = split_csv_line(line);

    // An ElectricityMap export leads with a header row; recognise it by
    // its non-numeric fields — but only in first position, so a garbage
    // row in the middle of the data stays a hard error.
    const std::optional<double> first = parse_number(fields[0]);
    const std::optional<double> second =
        fields.size() > 1 ? parse_number(fields[1]) : std::nullopt;
    if (first_data_row && (!first || (fields.size() > 1 && !second))) {
      first_data_row = false;
      continue;
    }
    first_data_row = false;

    std::size_t hour = 0;
    double value = 0;
    if (fields.size() == 1) {
      // Single-column form: gCO₂/kWh values in hour order.
      if (!first) {
        throw ParseError("intensity CSV '" + path + "' line " +
                         std::to_string(line_no) + ": non-numeric value '" +
                         fields[0] + "'");
      }
      hour = rows;
      value = *first;
    } else {
      if (!first || !second) {
        throw ParseError("intensity CSV '" + path + "' line " +
                         std::to_string(line_no) +
                         ": expected numeric hour,gCO2_per_kwh fields");
      }
      if (*first < 0 || *first > 23 || *first != std::floor(*first)) {
        throw InvalidArgument("intensity CSV '" + path + "' line " +
                              std::to_string(line_no) + ": hour '" +
                              fields[0] + "' is not an integer in 0..23");
      }
      hour = static_cast<std::size_t>(*first);
      value = *second;
    }
    if (rows >= 24 || hour >= 24) {
      throw InvalidArgument("intensity CSV '" + path +
                            "' has more than 24 hourly rows");
    }
    if (seen[hour]) {
      throw InvalidArgument("intensity CSV '" + path + "' line " +
                            std::to_string(line_no) + ": duplicate hour " +
                            std::to_string(hour));
    }
    seen[hour] = true;
    hours[hour] = value;
    ++rows;
  }
  if (rows != 24) {
    throw InvalidArgument("intensity CSV '" + path +
                          "' must carry exactly 24 hourly rows (got " +
                          std::to_string(rows) + ")");
  }
  // The constructor rejects values <= 0 (and NaN) with its own message.
  return IntensityCurve(name, hours);
}

IntensityRegistry::IntensityRegistry() {
  // flat — the backward-compatibility anchor. 250 g/kWh is a generic
  // mixed-grid figure; the absolute level only scales gram totals, never
  // ratios (CCT, savings fractions).
  infos_.push_back({kFlatIntensityName,
                    "constant 250 gCO2/kWh (hour-independent; reproduces "
                    "the unweighted energy results)"});
  curves_.push_back(IntensityCurve::constant(kFlatIntensityName, 250.0));

  // uk_2018 — the UK grid around the paper's setting: gas/wind/nuclear
  // mix, overnight low (wind + nuclear cover the small demand), shallow
  // daytime plateau and a gas-fired evening peak. Mean ≈ 277 g/kWh
  // (national average that year was ~280).
  infos_.push_back({"uk_2018",
                    "UK 2018 gas/wind/nuclear mix: overnight low, "
                    "gas-fired evening peak (mean ~277 gCO2/kWh)"});
  curves_.push_back(IntensityCurve(
      "uk_2018",
      {245, 238, 233, 230, 228, 232, 248, 268, 285, 292, 295, 296,
       294, 290, 287, 288, 295, 310, 325, 330, 322, 305, 280, 258}));

  // us_caiso — the California duck curve: deep midday solar trough,
  // steep evening ramp onto gas peakers. Mean ≈ 270 g/kWh.
  infos_.push_back({"us_caiso",
                    "California duck curve: midday solar trough, steep "
                    "gas-fired evening ramp (mean ~270 gCO2/kWh)"});
  curves_.push_back(IntensityCurve(
      "us_caiso",
      {310, 305, 300, 298, 300, 310, 330, 300, 240, 180, 150, 140,
       138, 140, 150, 175, 230, 300, 360, 380, 370, 350, 330, 318}));

  // nordic_hydro — a hydro-dominated grid: an order of magnitude
  // cleaner and nearly flat (reservoirs follow demand with almost no
  // marginal carbon). Mean ≈ 48 g/kWh.
  infos_.push_back({"nordic_hydro",
                    "hydro-dominated grid: near-flat and ~6x cleaner "
                    "(mean ~48 gCO2/kWh)"});
  curves_.push_back(IntensityCurve(
      "nordic_hydro",
      {38, 36, 35, 34, 34, 35, 40, 46, 52, 54, 55, 54,
       52, 50, 49, 50, 53, 58, 62, 60, 55, 48, 43, 40}));

  // Each metro preset is paired with the grid its region runs on. The
  // completeness check below makes adding a metro without a pairing a
  // first-use failure instead of a silent flat fallback.
  metro_pairings_ = {{"london_top5", "uk_2018"},
                     {"us_sparse", "us_caiso"},
                     {"fiber_dense", "nordic_hydro"}};
  for (const std::string& metro : MetroRegistry::instance().names()) {
    bool paired = false;
    for (const auto& [name, curve] : metro_pairings_) {
      if (name == metro) {
        paired = contains(curve);
        break;
      }
    }
    if (!paired) {
      throw InvalidArgument(
          "metro preset '" + metro +
          "' has no grid intensity pairing: add it to "
          "IntensityRegistry's metro_pairings_ (src/carbon/)");
    }
  }
}

const IntensityRegistry& IntensityRegistry::instance() {
  static const IntensityRegistry registry;
  return registry;
}

const IntensityCurve* IntensityRegistry::find(const std::string& name) const {
  for (std::size_t i = 0; i < infos_.size(); ++i) {
    if (infos_[i].name == name) return &curves_[i];
  }
  return nullptr;
}

const IntensityCurve& IntensityRegistry::get(const std::string& name) const {
  if (const IntensityCurve* curve = find(name)) return *curve;
  throw InvalidArgument("unknown intensity preset '" + name +
                        "' (valid: " + names_joined() + ")");
}

std::vector<std::string> IntensityRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(infos_.size());
  for (const auto& info : infos_) out.push_back(info.name);
  return out;
}

std::string IntensityRegistry::names_joined(const char* separator) const {
  std::string out;
  for (const auto& info : infos_) {
    if (!out.empty()) out += separator;
    out += info.name;
  }
  return out;
}

const IntensityCurve& IntensityRegistry::default_for_metro(
    const std::string& metro_name) const {
  for (const auto& [metro, curve] : metro_pairings_) {
    if (metro == metro_name) return get(curve);
  }
  throw InvalidArgument("metro '" + metro_name +
                        "' has no grid intensity pairing (paired metros: " +
                        MetroRegistry::instance().names_joined() + ")");
}

}  // namespace cl
