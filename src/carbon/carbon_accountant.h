// carbon_accountant.h — converts energy flows into grams of CO₂ by
// weighting each hour's energy with the grid carbon intensity at
// consumption time.
//
// The energy layer (energy/accounting.h) answers "how many joules"; this
// layer answers "how many grams", which requires knowing *when* the
// joules were spent: the simulator's hourly [hour][isp] traffic grid
// (SimResult::hourly) supplies the when, an IntensityCurve supplies the
// gCO₂/kWh at that hour. Under a flat curve every result reduces to the
// unweighted energy result times a constant, so carbon savings equal
// energy savings exactly — the backward-compatibility contract pinned in
// tests/test_carbon_intensity.cpp and DESIGN.md §7.
#pragma once

#include <string>
#include <vector>

#include "carbon/intensity_curve.h"
#include "energy/accounting.h"

namespace cl {

/// The simulator's [hour][isp] traffic grid (SimResult::hourly).
using HourlyTrafficGrid = std::vector<std::vector<TrafficBreakdown>>;

/// gCO₂ outcome of one run under one energy model and one intensity
/// curve.
struct CarbonOutcome {
  std::string model;         ///< energy parameter column name
  std::string intensity;     ///< intensity preset name
  double hybrid_g = 0;       ///< gCO₂ of the hybrid run
  double baseline_g = 0;     ///< gCO₂ of the pure-CDN baseline
  double saved_g = 0;        ///< baseline_g − hybrid_g
  double carbon_savings = 0; ///< 1 − hybrid_g / baseline_g
  double energy_savings = 0; ///< unweighted Eq. 1 on the same traffic
};

/// Prices hourly traffic grids in grams of CO₂ under one energy model
/// and one intensity curve.
class CarbonAccountant {
 public:
  CarbonAccountant(EnergyAccountant energy, IntensityCurve curve);

  [[nodiscard]] const EnergyAccountant& energy() const { return energy_; }
  [[nodiscard]] const IntensityCurve& curve() const { return curve_; }

  /// gCO₂ of the hybrid run: each hour's traffic (summed across ISPs)
  /// priced by EnergyAccountant::hybrid and weighted by the intensity at
  /// that hour.
  [[nodiscard]] double hybrid_grams(const HourlyTrafficGrid& hourly) const;

  /// gCO₂ of the pure-CDN baseline delivering the same useful volume on
  /// the same hourly schedule.
  [[nodiscard]] double baseline_grams(const HourlyTrafficGrid& hourly) const;

  /// Carbon savings 1 − hybrid/baseline (0 when the baseline is empty).
  /// Differs from the energy savings whenever the curve is non-flat,
  /// because the diurnal demand concentrates traffic in specific hours.
  [[nodiscard]] double carbon_savings(const HourlyTrafficGrid& hourly) const;

  /// The full outcome record (model/intensity names filled in).
  [[nodiscard]] CarbonOutcome assess(const HourlyTrafficGrid& hourly) const;

  /// Per-day carbon savings series: day d is 1 − hybrid/baseline over
  /// that day's 24 hour rows (a trailing partial day uses its available
  /// hours). Traffic-free days are 0.
  [[nodiscard]] std::vector<double> daily_carbon_savings(
      const HourlyTrafficGrid& hourly) const;

 private:
  /// Sums one hour row across ISPs.
  [[nodiscard]] static TrafficBreakdown sum_row(
      const std::vector<TrafficBreakdown>& row);

  EnergyAccountant energy_;
  IntensityCurve curve_;
};

}  // namespace cl
