// intensity_curve.h — time-varying grid carbon intensity.
//
// The paper's headline is *carbon-free* delivery, but a joule is not a
// gram: the CO₂ cost of a kWh depends on what the local grid is burning
// at that hour (solar noon vs the evening peak). An IntensityCurve is a
// 24-hour gCO₂/kWh profile (hour-of-day resolution, local time, wrapped
// modulo 24 for multi-day traces); the registry below names the presets
// and pairs each metro topology preset with a default grid, so carbon
// accounting composes with the metro registry the same way `--metro`
// does: `--intensity <name>` anywhere, with a per-metro default.
//
// The `flat` preset is the backward-compatibility anchor: a constant
// curve weights every hour identically, so intensity-weighted results
// reduce to the unweighted energy results scaled by one constant (and
// ratio metrics such as CCT are unchanged). See DESIGN.md §7.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/units.h"

namespace cl {

/// The registry key carbon-aware paths default to when no metro pairing
/// applies (constant intensity — weighting changes nothing but units).
inline constexpr char kFlatIntensityName[] = "flat";

/// A 24-hour grid carbon-intensity profile in gCO₂ per kWh.
class IntensityCurve {
 public:
  /// `hours[h]` is the intensity during local hour-of-day h; every value
  /// must be > 0 (a grid cannot emit negative carbon per kWh, and zero
  /// would make weighted ratios degenerate). Throws cl::InvalidArgument.
  IntensityCurve(std::string name, std::array<double, 24> hours);

  /// Constant profile at `gco2_per_kwh` for every hour.
  [[nodiscard]] static IntensityCurve constant(std::string name,
                                               double gco2_per_kwh);

  /// Loads a *measured* curve from an ElectricityMap-style 24-hour CSV
  /// export: an optional header row, then exactly 24 data rows of either
  /// `hour,gCO2_per_kwh` (each hour 0–23 exactly once, any order; extra
  /// columns ignored) or a single gCO₂/kWh column in hour order. Blank
  /// lines and `#` comments are skipped. The curve is named after the
  /// file's stem. Throws cl::IoError (unreadable file), cl::ParseError
  /// (non-numeric fields) or cl::InvalidArgument (wrong row count,
  /// duplicate/out-of-range hours, values <= 0).
  [[nodiscard]] static IntensityCurve from_csv(const std::string& path);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Intensity at an absolute trace hour (hour 0 = trace start = local
  /// midnight); wraps modulo 24.
  [[nodiscard]] double at_hour(std::size_t absolute_hour) const {
    return hours_[absolute_hour % 24];
  }

  /// The raw 24-hour profile.
  [[nodiscard]] const std::array<double, 24>& hours() const { return hours_; }

  /// Unweighted daily mean / min / max of the profile.
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// True when every hour carries the same intensity — the
  /// backward-compatible regime where weighting cancels out of ratios.
  [[nodiscard]] bool is_flat() const;

  /// Grams of CO₂ emitted by spending `energy` during `absolute_hour`.
  [[nodiscard]] double grams(Energy energy, std::size_t absolute_hour) const {
    return energy.kwh() * at_hour(absolute_hour);
  }

 private:
  std::string name_;
  std::array<double, 24> hours_{};
};

/// Name + one-line summary of one registry preset (for --help / errors).
struct IntensityPresetInfo {
  std::string name;
  std::string description;
};

/// Immutable catalogue of the named intensity presets, mirroring
/// MetroRegistry (topology/metro_registry.h). Lookups return long-lived
/// references.
class IntensityRegistry {
 public:
  /// The process-wide registry (built once, thread-safe init).
  [[nodiscard]] static const IntensityRegistry& instance();

  /// The preset curve called `name`, or nullptr.
  [[nodiscard]] const IntensityCurve* find(const std::string& name) const;

  /// True when `name` is a registered preset.
  [[nodiscard]] bool contains(const std::string& name) const {
    return find(name) != nullptr;
  }

  /// The preset curve called `name`; throws cl::InvalidArgument listing
  /// every valid name otherwise.
  [[nodiscard]] const IntensityCurve& get(const std::string& name) const;

  /// Preset names in registration order (`flat` first).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Name/description pairs in registration order.
  [[nodiscard]] const std::vector<IntensityPresetInfo>& presets() const {
    return infos_;
  }

  /// "flat, uk_2018, us_caiso, nordic_hydro" — for errors / help.
  [[nodiscard]] std::string names_joined(const char* separator = ", ") const;

  /// The intensity preset registered alongside a metro preset: the grid
  /// the metro's region runs on (london_top5 → uk_2018, us_sparse →
  /// us_caiso, fiber_dense → nordic_hydro). The registry verifies at
  /// construction that *every* MetroRegistry preset has a pairing — a
  /// new metro without one fails on first use, not silently — and an
  /// unknown metro name here throws cl::InvalidArgument.
  [[nodiscard]] const IntensityCurve& default_for_metro(
      const std::string& metro_name) const;

 private:
  IntensityRegistry();

  std::vector<IntensityPresetInfo> infos_;
  std::vector<IntensityCurve> curves_;  ///< parallel to infos_
  /// metro preset name → intensity preset name.
  std::vector<std::pair<std::string, std::string>> metro_pairings_;
};

}  // namespace cl
