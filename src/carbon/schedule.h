// schedule.h — the carbon-aware control loop: from accounting to action.
//
// PR 5's accounting layer answers "how many grams did this run emit";
// this layer *acts* on the same intensity curves, with two levers:
//
//  (a) trough-seeking preload — instead of PreloadConfig's fixed
//      07:00–09:00 commute window, derive the preload window from the
//      grid itself: the contiguous window of the configured width with
//      the lowest mean gCO₂/kWh (the overnight wind lull on uk_2018,
//      the solar trough on us_caiso). The trace transform is the
//      existing apply_preload (ext/preload.h) — only the window moves.
//
//  (b) cross-metro green routing — per hour, choose the metro whose
//      grid can serve the traffic most cleanly, subject to a bounded
//      added-latency constraint per hop (GreenStream's "<30 ms added
//      delay" budget). Pricing uses *dual-grid accounting*: a request
//      crossing metros burns energy on both ends of the wire, so the
//      effective intensity blends the user-side and serving-side curves
//      (footprintshift's DualGridCarbonIntensity):
//
//        I_dual(h) = user_weight · I_user(h) + serving_weight · I_serve(h)
//
// The flat no-op contract (DESIGN.md §11): a flat user curve carries no
// signal — every hour looks identical, so there is no trough to seek and
// no cleaner hour to route into. Under `--intensity flat` the scheduler
// is *inert by construction*: schedule_preload returns the trace
// unchanged and plan_routes stays home every hour, so scheduled results
// are bit-identical to unscheduled ones — the same backward-compatibility
// anchor PR 5 pinned for the accounting layer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "carbon/carbon_accountant.h"
#include "carbon/intensity_curve.h"
#include "energy/accounting.h"
#include "ext/preload.h"
#include "trace/session.h"

namespace cl {

/// Tunables of the carbon-aware control loop.
struct ScheduleConfig {
  // --- (a) trough-seeking preload ---
  double preload_adoption = 0.5;      ///< fraction of sessions shifted
  double preload_window_hours = 2.0;  ///< derived window width, (0, 24]

  // --- (b) cross-metro green routing / dual-grid accounting ---
  /// Transmission (user-side) weight of the dual-grid blend. The two
  /// weights must be >= 0 and sum to 1.
  double user_weight = 0.5;
  /// Computation (serving-side) weight of the dual-grid blend.
  double serving_weight = 0.5;
  /// Added one-way latency per hop between adjacent metros (registry
  /// order is the chain: |i - j| hops between metro i and metro j).
  double hop_latency_ms = 25.0;
  /// Latency budget: a candidate serving metro is viable only when its
  /// added latency stays within this bound (GreenStream uses < 30 ms).
  double max_added_latency_ms = 30.0;

  /// Throws cl::InvalidArgument on out-of-range values.
  void validate() const;
};

/// One hour's routing decision.
struct RouteChoice {
  std::size_t serving_metro = 0;  ///< registry index the hour is served from
  double added_latency_ms = 0;    ///< 0 when served from the home metro
  double serving_intensity = 0;   ///< gCO₂/kWh of the serving grid that hour
};

/// Per-hour serving-metro choices for one run.
struct RoutingPlan {
  std::size_t home_metro = 0;      ///< registry index of the user's metro
  std::vector<RouteChoice> hours;  ///< hours[h] = decision for trace hour h

  /// Hours served from a metro other than home.
  [[nodiscard]] std::size_t hours_routed_away() const;
  /// Mean added latency over *all* hours (home hours count as 0 ms) —
  /// the GreenStream-style "average added delay" figure.
  [[nodiscard]] double mean_added_latency_ms() const;
  /// Largest added latency of any hour in the plan.
  [[nodiscard]] double max_added_latency_ms() const;
};

/// Scheduled-vs-unscheduled gCO₂ outcome under one energy model.
struct ScheduleOutcome {
  std::string model;         ///< energy parameter column name
  double unscheduled_g = 0;  ///< dual-grid grams, all-home, unscheduled run
  double scheduled_g = 0;    ///< dual-grid grams, routed plan, scheduled run
  double reduction = 0;      ///< 1 − scheduled_g / unscheduled_g
};

/// Index of a registered metro preset in registration order — the
/// hop-distance coordinate green routing uses (the registry order is the
/// metro chain). Throws cl::InvalidArgument for a non-preset name.
[[nodiscard]] std::size_t metro_registry_index(const std::string& metro_name);

/// The serving-grid candidates for green routing, index-aligned with the
/// metro registry: each remote metro serves from its region's default
/// grid, while the home slot carries the user-side curve itself (which
/// may be a preset, the metro default, or a measured CSV curve).
[[nodiscard]] std::vector<const IntensityCurve*> serving_curves(
    const std::string& home_metro, const IntensityCurve& user_curve);

/// Turns intensity curves into scheduling decisions. The user-side curve
/// must outlive the scheduler.
class CarbonScheduler {
 public:
  explicit CarbonScheduler(const IntensityCurve& user_curve,
                           ScheduleConfig config = {});

  [[nodiscard]] const ScheduleConfig& config() const { return config_; }
  [[nodiscard]] const IntensityCurve& user_curve() const {
    return *user_curve_;
  }

  /// True when the user curve is flat: no intensity signal, so every
  /// decision method degenerates to the unscheduled identity (the flat
  /// no-op contract, DESIGN.md §11).
  [[nodiscard]] bool inert() const { return user_curve_->is_flat(); }

  /// The cleanest contiguous window of config().preload_window_hours
  /// within the day (integer start hours, no midnight wrap — the window
  /// must satisfy apply_preload's [start, end <= 24] contract), with
  /// adoption filled in from the config. Ties resolve to the earliest
  /// start; a flat curve yields [0, width).
  [[nodiscard]] PreloadConfig trough_window() const;

  /// (a) The trough-seeking preload transform: apply_preload into
  /// trough_window(). Inert (flat) schedulers return the trace unchanged.
  /// Deterministic in `seed`.
  [[nodiscard]] Trace schedule_preload(const Trace& trace,
                                       std::uint64_t seed) const;

  /// The unscheduled baseline plan: every hour served from `home` at the
  /// user curve's intensity.
  [[nodiscard]] RoutingPlan home_plan(std::size_t home,
                                      std::size_t hours) const;

  /// (b) Green routing over the serving-grid candidates. `serving[i]` is
  /// metro i's grid (index-aligned with the metro registry; slot `home`
  /// should carry the user curve) and every pointer must be non-null.
  /// Hour h is served from the *viable* metro (added latency
  /// hop_latency_ms·|i − home| within max_added_latency_ms) with the
  /// strictly lowest intensity; ties keep the home metro. Inert
  /// schedulers return home_plan.
  [[nodiscard]] RoutingPlan plan_routes(
      const std::vector<const IntensityCurve*>& serving, std::size_t home,
      std::size_t hours) const;

  /// The dual-grid blend: user_weight·user_g + serving_weight·serving_g.
  [[nodiscard]] double dual_intensity(double user_g, double serving_g) const {
    return config_.user_weight * user_g + config_.serving_weight * serving_g;
  }

  /// Prices an hourly traffic grid in grams under a routing plan: each
  /// hour's hybrid energy is weighted by the dual-grid intensity of the
  /// hour's serving choice (hours beyond the plan price as home).
  [[nodiscard]] double dual_grams(const HourlyTrafficGrid& hourly,
                                  const EnergyAccountant& energy,
                                  const RoutingPlan& plan) const;

  /// The scheduled-vs-unscheduled comparison under one energy model:
  /// the unscheduled grid priced all-home versus the scheduled grid
  /// priced under `plan`. When both grids and the plan are the
  /// unscheduled identity (the flat contract), the two gram figures are
  /// bit-identical and the reduction is exactly 0.
  [[nodiscard]] ScheduleOutcome assess(const HourlyTrafficGrid& unscheduled,
                                       const HourlyTrafficGrid& scheduled,
                                       const EnergyAccountant& energy,
                                       const RoutingPlan& plan) const;

 private:
  const IntensityCurve* user_curve_;
  ScheduleConfig config_;
};

}  // namespace cl
