#include "energy/energy_params.h"

#include <algorithm>

#include "util/error.h"

namespace cl {

void EnergyParams::validate() const {
  CL_EXPECTS(gamma_server.value() > 0);
  CL_EXPECTS(gamma_modem.value() > 0);
  CL_EXPECTS(gamma_cdn.value() > 0);
  for (auto level : kAllLocalityLevels) {
    CL_EXPECTS(gamma_p2p_at(level).value() > 0);
  }
  // Monotone locality: a more local path never costs more per bit.
  CL_EXPECTS(gamma_p2p[0].value() <= gamma_p2p[1].value());
  CL_EXPECTS(gamma_p2p[1].value() <= gamma_p2p[2].value());
  CL_EXPECTS(gamma_cross_isp.value() >= gamma_p2p[2].value());
  CL_EXPECTS(pue >= 1.0);
  CL_EXPECTS(loss >= 1.0);
}

EnergyParams valancius_params() {
  EnergyParams p;
  p.name = "Valancius";
  p.gamma_server = EnergyPerBit{211.1};
  p.gamma_modem = EnergyPerBit{100.0};
  // Hop-count model at 150 nJ/bit/hop: CDN 7 hops, ExP 2, PoP 4, Core 6.
  p.gamma_cdn = EnergyPerBit{7 * 150.0};
  p.gamma_p2p[index(LocalityLevel::kExchangePoint)] = EnergyPerBit{2 * 150.0};
  p.gamma_p2p[index(LocalityLevel::kPop)] = EnergyPerBit{4 * 150.0};
  p.gamma_p2p[index(LocalityLevel::kCore)] = EnergyPerBit{6 * 150.0};
  p.gamma_cross_isp = EnergyPerBit{7 * 150.0};
  p.pue = 1.2;
  p.loss = 1.07;
  p.validate();
  return p;
}

EnergyParams baliga_params() {
  EnergyParams p;
  p.name = "Baliga";
  p.gamma_server = EnergyPerBit{281.3};
  p.gamma_modem = EnergyPerBit{100.0};
  p.gamma_cdn = EnergyPerBit{142.5};
  p.gamma_p2p[index(LocalityLevel::kExchangePoint)] = EnergyPerBit{144.86};
  p.gamma_p2p[index(LocalityLevel::kPop)] = EnergyPerBit{197.48};
  p.gamma_p2p[index(LocalityLevel::kCore)] = EnergyPerBit{245.74};
  p.gamma_cross_isp = EnergyPerBit{295.0};
  p.pue = 1.2;
  p.loss = 1.07;
  p.validate();
  return p;
}

EnergyParams hop_count_params(std::string name, EnergyPerBit per_hop,
                              int cdn_hops, int exp_hops, int pop_hops,
                              int core_hops) {
  CL_EXPECTS(per_hop.value() > 0);
  CL_EXPECTS(cdn_hops > 0 && exp_hops > 0 && pop_hops > 0 && core_hops > 0);
  EnergyParams p = valancius_params();
  p.name = std::move(name);
  p.gamma_cdn = EnergyPerBit{per_hop.value() * cdn_hops};
  p.gamma_p2p[index(LocalityLevel::kExchangePoint)] =
      EnergyPerBit{per_hop.value() * exp_hops};
  p.gamma_p2p[index(LocalityLevel::kPop)] =
      EnergyPerBit{per_hop.value() * pop_hops};
  p.gamma_p2p[index(LocalityLevel::kCore)] =
      EnergyPerBit{per_hop.value() * core_hops};
  p.gamma_cross_isp =
      EnergyPerBit{per_hop.value() * std::max(core_hops, cdn_hops)};
  p.validate();
  return p;
}

std::vector<EnergyParams> standard_params() {
  return {valancius_params(), baliga_params()};
}

}  // namespace cl
