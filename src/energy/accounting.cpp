#include "energy/accounting.h"

namespace cl {

Bits TrafficBreakdown::total() const { return server + peer_total(); }

Bits TrafficBreakdown::peer_total() const {
  Bits sum;
  for (const auto& p : peer) sum += p;
  sum += cross_isp;
  return sum;
}

double TrafficBreakdown::offload_fraction() const {
  const Bits t = total();
  return t.value() > 0 ? peer_total().value() / t.value() : 0.0;
}

TrafficBreakdown& TrafficBreakdown::operator+=(const TrafficBreakdown& other) {
  server += other.server;
  for (std::size_t i = 0; i < peer.size(); ++i) peer[i] += other.peer[i];
  cross_isp += other.cross_isp;
  return *this;
}

EnergyBreakdown EnergyAccountant::hybrid(const TrafficBreakdown& t) const {
  EnergyBreakdown e;
  e.server_side = costs_.cdn_side_per_bit() * t.server;
  for (auto level : kAllLocalityLevels) {
    e.peer_network += costs_.psi_peer_network(level) * t.peer[index(level)];
  }
  e.peer_network +=
      EnergyPerBit{costs_.params().pue *
                   costs_.params().gamma_cross_isp.value()} *
      t.cross_isp;
  // Modem energy: every delivered bit is downloaded once (l·γm); peer bits
  // are additionally uploaded once by another user's modem (l·γm again).
  e.user_modem = costs_.user_side_per_bit() * t.total() +
                 costs_.user_side_per_bit() * t.peer_total();
  return e;
}

EnergyBreakdown EnergyAccountant::baseline(Bits useful_volume) const {
  EnergyBreakdown e;
  e.server_side = costs_.cdn_side_per_bit() * useful_volume;
  e.user_modem = costs_.user_side_per_bit() * useful_volume;
  return e;
}

double EnergyAccountant::savings(const TrafficBreakdown& t) const {
  const Energy base = baseline(t.total()).total();
  if (base.value() <= 0) return 0.0;
  return 1.0 - hybrid(t).total().value() / base.value();
}

}  // namespace cl
