#include "energy/cost_functions.h"

namespace cl {

CostFunctions::CostFunctions(EnergyParams params) : params_(std::move(params)) {
  params_.validate();
}

EnergyPerBit CostFunctions::psi_server() const {
  return EnergyPerBit{params_.pue * (params_.gamma_server.value() +
                                     params_.gamma_cdn.value()) +
                      params_.loss * params_.gamma_modem.value()};
}

EnergyPerBit CostFunctions::psi_peer_modem() const {
  return EnergyPerBit{2.0 * params_.loss * params_.gamma_modem.value()};
}

EnergyPerBit CostFunctions::psi_peer_network(LocalityLevel level) const {
  return EnergyPerBit{params_.pue * params_.gamma_p2p_at(level).value()};
}

EnergyPerBit CostFunctions::psi_peer(LocalityLevel level) const {
  return psi_peer_modem() + psi_peer_network(level);
}

Energy CostFunctions::server_energy(Bits volume) const {
  return psi_server() * volume;
}

Energy CostFunctions::peer_energy(Bits volume, LocalityLevel level) const {
  return psi_peer(level) * volume;
}

bool CostFunctions::peer_wins(LocalityLevel level) const {
  return psi_peer(level).value() < psi_server().value();
}

EnergyPerBit CostFunctions::cdn_side_per_bit() const {
  return EnergyPerBit{params_.pue * (params_.gamma_server.value() +
                                     params_.gamma_cdn.value())};
}

EnergyPerBit CostFunctions::user_side_per_bit() const {
  return EnergyPerBit{params_.loss * params_.gamma_modem.value()};
}

}  // namespace cl
