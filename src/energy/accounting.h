// accounting.h — byte-flow ledger that converts delivered traffic into
// energy under a CostFunctions instance.
//
// The simulator records *what moved where* (server bytes, peer bytes per
// locality level); this ledger owns the conversion into joules so the same
// flow record can be priced under several energy models (the paper prices
// every experiment under both Valancius and Baliga parameters).
#pragma once

#include <array>

#include "energy/cost_functions.h"
#include "topology/locality.h"
#include "util/units.h"

namespace cl {

/// Pure traffic record: how many bits were delivered by each path.
struct TrafficBreakdown {
  Bits server;  ///< delivered from CDN servers
  std::array<Bits, kLocalityLevels> peer{};  ///< P2P, by locality level
  Bits cross_isp;  ///< P2P across ISP boundaries (ablation only)

  /// Total bits delivered to users.
  [[nodiscard]] Bits total() const;

  /// Total bits delivered by peers across all levels.
  [[nodiscard]] Bits peer_total() const;

  /// Offloaded fraction G = peer_total / total (0 when nothing delivered).
  [[nodiscard]] double offload_fraction() const;

  TrafficBreakdown& operator+=(const TrafficBreakdown& other);
  friend TrafficBreakdown operator+(TrafficBreakdown a,
                                    const TrafficBreakdown& b) {
    a += b;
    return a;
  }
};

/// Energy totals for one delivery scenario, split by where the energy is
/// burned. Used for both the hybrid run and the pure-CDN baseline.
struct EnergyBreakdown {
  Energy server_side;   ///< PUE·(γs+γcdn) on server-delivered bits
  Energy peer_network;  ///< PUE·γp2p on peer-delivered bits
  Energy user_modem;    ///< l·γm on all downloads + uploads

  [[nodiscard]] Energy total() const {
    return server_side + peer_network + user_modem;
  }
};

/// Prices a TrafficBreakdown under one energy model.
class EnergyAccountant {
 public:
  explicit EnergyAccountant(CostFunctions costs) : costs_(std::move(costs)) {}

  [[nodiscard]] const CostFunctions& costs() const { return costs_; }

  /// Energy of the hybrid run: server bits at ψs's components, peer bits at
  /// ψp's components (modem counted twice on peer bits: up + down).
  [[nodiscard]] EnergyBreakdown hybrid(const TrafficBreakdown& t) const;

  /// Energy of the pure-CDN baseline delivering the same useful volume.
  [[nodiscard]] EnergyBreakdown baseline(Bits useful_volume) const;

  /// End-to-end savings S = 1 − E_hybrid / E_baseline (Eq. 1); 0 when the
  /// baseline is empty.
  [[nodiscard]] double savings(const TrafficBreakdown& t) const;

 private:
  CostFunctions costs_;
};

}  // namespace cl
