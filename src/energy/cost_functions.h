// cost_functions.h — the per-bit energy cost functions of Section III.D.
//
// Two delivery paths exist in a hybrid CDN:
//
//   server -> user :  ψs = PUE·(γs + γcdn) + l·γm            (Eq. 4)
//   peer   -> peer :  ψp = 2·l·γm + PUE·γp2p(level)          (Eq. 6)
//
// ψp splits into a swarm-size-independent modem part ψpᵐ = 2lγm (both the
// uploader's and downloader's premises equipment are active) and a
// locality-dependent network part ψpʳ = PUE·γp2p.
#pragma once

#include "energy/energy_params.h"
#include "topology/locality.h"
#include "util/units.h"

namespace cl {

/// Per-bit cost functions derived from one EnergyParams column.
///
/// A small value type: cheap to copy, all methods pure.
class CostFunctions {
 public:
  explicit CostFunctions(EnergyParams params);

  [[nodiscard]] const EnergyParams& params() const { return params_; }

  /// ψs — per-bit energy of server-based delivery (Eq. 4).
  [[nodiscard]] EnergyPerBit psi_server() const;

  /// ψpᵐ = 2·l·γm — per-bit modem/CPE energy of P2P delivery (uploader +
  /// downloader premises equipment).
  [[nodiscard]] EnergyPerBit psi_peer_modem() const;

  /// ψpʳ(level) = PUE·γp2p(level) — per-bit network energy of P2P delivery
  /// between peers localised at `level`.
  [[nodiscard]] EnergyPerBit psi_peer_network(LocalityLevel level) const;

  /// Full ψp(level) = ψpᵐ + ψpʳ(level) (Eq. 6).
  [[nodiscard]] EnergyPerBit psi_peer(LocalityLevel level) const;

  /// Energy of delivering `volume` bits from the CDN: Ψs(T) = T·ψs.
  [[nodiscard]] Energy server_energy(Bits volume) const;

  /// Energy of delivering `volume` bits between peers at `level`.
  [[nodiscard]] Energy peer_energy(Bits volume, LocalityLevel level) const;

  /// True iff P2P delivery at `level` beats server delivery per bit —
  /// the paper's core trade-off (edge equipment traversed twice vs a
  /// shorter path).
  [[nodiscard]] bool peer_wins(LocalityLevel level) const;

  /// CDN-side per-bit cost PUE·(γs+γcdn): used for Fig. 5's CDN component.
  [[nodiscard]] EnergyPerBit cdn_side_per_bit() const;

  /// User-side per-bit cost l·γm of plain (non-sharing) consumption.
  [[nodiscard]] EnergyPerBit user_side_per_bit() const;

 private:
  EnergyParams params_;
};

}  // namespace cl
