// energy_params.h — per-bit energy parameter sets (paper Table IV).
//
// The paper evaluates every result under two independently developed energy
// models to bracket the uncertainty in "energy per bit" figures:
//
//  * Valancius et al. [34] ("Greening the Internet with Nano Data Centers"):
//    network segments cost h × 150 nJ/bit where h is the hop count
//    (CDN path: 7 hops; peers within the core: 6; within a PoP: 4; within
//    an exchange point: 2).
//  * Baliga et al. [6] ("Green Cloud Computing"): per-equipment data-sheet
//    figures summed along each path.
//
// Both share PUE = 1.2 (data-centre/network redundancy overhead) and
// l = 1.07 (end-user premises energy loss factor).
#pragma once

#include <string>
#include <vector>

#include "topology/locality.h"
#include "util/units.h"

namespace cl {

/// One column of Table IV: every per-bit constant the model needs.
struct EnergyParams {
  std::string name;  ///< "Valancius" or "Baliga" (or a custom label)

  EnergyPerBit gamma_server;  ///< γs — content server, per bit served
  EnergyPerBit gamma_modem;   ///< γm — end-user modem / CPE, per bit
  EnergyPerBit gamma_cdn;     ///< γcdn — network path user <-> CDN node

  /// γexp / γpop / γcore — network path between two peers localised at the
  /// given layer of the ISP tree (indexed by LocalityLevel).
  EnergyPerBit gamma_p2p[kLocalityLevels];

  /// γcross — network path between peers in *different* ISPs (crosses both
  /// metros and an exchange/peering point). Not part of the paper's model
  /// (its swarms are ISP-friendly); used only by the cross-ISP ablation.
  /// Defaults: Valancius 7×150 nJ/bit (a CDN-length path), Baliga 295 nJ/bit
  /// (core path plus peering/transit crossing).
  EnergyPerBit gamma_cross_isp;

  double pue = 1.2;  ///< power usage efficiency multiplier
  double loss = 1.07;  ///< l — end-user equipment energy loss factor

  /// γ for P2P traffic localised at `level`.
  [[nodiscard]] EnergyPerBit gamma_p2p_at(LocalityLevel level) const {
    return gamma_p2p[index(level)];
  }

  /// Validates all invariants the model relies on:
  /// positive γs, γexp <= γpop <= γcore <= γcdn is NOT required by the
  /// maths, but γexp <= γpop <= γcore (monotone locality) is. Throws
  /// cl::InvalidArgument on violation.
  void validate() const;
};

/// Table IV, Valancius et al. column.
[[nodiscard]] EnergyParams valancius_params();

/// Table IV, Baliga et al. column.
[[nodiscard]] EnergyParams baliga_params();

/// Builds a Valancius-style hop-count model: every hop costs
/// `per_hop` nJ/bit; the CDN path has `cdn_hops` hops and peer paths have
/// {exp_hops, pop_hops, core_hops}. Server/modem/PUE/loss are taken from
/// the Valancius defaults unless overridden afterwards.
[[nodiscard]] EnergyParams hop_count_params(std::string name,
                                            EnergyPerBit per_hop,
                                            int cdn_hops, int exp_hops,
                                            int pop_hops, int core_hops);

/// Both standard parameter sets, in paper order. Convenience for benches
/// that sweep over energy models.
[[nodiscard]] std::vector<EnergyParams> standard_params();

}  // namespace cl
