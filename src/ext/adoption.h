// adoption.h — incentive-driven participation model (the paper's future
// work: "building a viable economic model of user behaviour" [37][21]).
//
// The paper's concluding observation is that only ~30 % of Akamai
// NetSession users opt into uploading, and that carbon credit transfers
// could be the missing incentive. This module closes that loop with a
// fixed-point model:
//
//   * a fraction a ∈ [0, 1] of users participates (shares upload);
//   * only participants upload, so the *effective* per-user upload ratio
//     is a·(q/β) — non-participants still stream (and still count in the
//     swarm's demand);
//   * participation pays off when the resulting CCT clears the user's
//     adoption threshold; thresholds are heterogeneous (some users join
//     for any positive credit, some need a big surplus);
//   * tomorrow's participation is the fraction of users whose threshold
//     the current CCT clears — iterate to the fixed point.
//
// The dynamics are congestion-shaped: early sharers serve a lot of demand
// each and earn large credits; as participation grows the same offloadable
// demand is split over more uploaders, diluting per-participant credits
// until the marginal user's threshold is hit — a unique interior fixed
// point for popular content, and near-zero participation for niche content
// whose swarms never generate credits worth sharing for.
#pragma once

#include <vector>

#include "model/savings.h"

namespace cl {

/// Configuration of the adoption dynamics.
struct AdoptionConfig {
  double swarm_capacity = 50;  ///< capacity of the content the cohort watches
  double q_over_beta = 1.0;    ///< upload ratio of participants
  /// Adoption thresholds: user i participates when CCT >= thresholds[i].
  /// Defaults (set by uniform_thresholds) span [-0.5, 0.5]: some users
  /// join while still slightly carbon-negative (altruists), others demand
  /// a sizeable positive balance.
  std::vector<double> thresholds;
  double initial_participation = 0.3;  ///< seeded fraction (Akamai's ~30 %)
  std::size_t max_iterations = 1000;
  double tolerance = 1e-9;

  /// Fills `thresholds` with `n` values uniformly spaced over [lo, hi].
  void uniform_thresholds(std::size_t n, double lo, double hi);
};

/// One step of the dynamics, and the trajectory to the fixed point.
struct AdoptionResult {
  double participation = 0;  ///< fixed-point participation fraction
  double cct = 0;            ///< CCT experienced at the fixed point
  double offload = 0;        ///< system offload fraction at the fixed point
  double savings = 0;        ///< end-to-end savings at the fixed point
  bool converged = false;
  std::vector<double> trajectory;  ///< participation after each iteration
};

/// Incentive fixed-point solver over one SavingsModel.
class AdoptionModel {
 public:
  explicit AdoptionModel(SavingsModel model);

  /// CCT experienced by participants when a fraction `participation` of
  /// the swarm shares: offload uses the reduced effective upload ratio,
  /// credits accrue to participants only.
  [[nodiscard]] double cct_at(double participation,
                              const AdoptionConfig& config) const;

  /// Fraction of users whose threshold the given CCT clears.
  [[nodiscard]] static double willing_fraction(
      double cct, const std::vector<double>& thresholds);

  /// Iterates participation -> CCT -> participation to a fixed point.
  [[nodiscard]] AdoptionResult solve(const AdoptionConfig& config) const;

 private:
  SavingsModel model_;
};

}  // namespace cl
