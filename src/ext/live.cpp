#include "ext/live.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace cl {

Trace generate_live_event(const Metro& metro, const LiveEventConfig& config,
                          std::uint64_t seed) {
  CL_EXPECTS(config.viewers >= 1);
  CL_EXPECTS(config.event_start_s >= 0);
  CL_EXPECTS(config.join_jitter_s > 0);
  CL_EXPECTS(config.mean_watch_s > 0);
  CL_EXPECTS(config.span_days > 0);

  Rng rng(seed ^ 0xbf58476d1ce4e5b9ULL);
  const DiscreteSampler bitrate_sampler(std::vector<double>(
      config.bitrate_mix.begin(), config.bitrate_mix.end()));
  const double span_s = config.span_days * 86400.0;
  const double mu = std::log(config.mean_watch_s) -
                    0.5 * config.watch_sigma * config.watch_sigma;

  Trace trace;
  trace.span = Seconds{span_s};
  trace.metro_name = metro.name();
  trace.sessions.reserve(config.viewers);
  for (std::uint32_t u = 0; u < config.viewers; ++u) {
    SessionRecord s;
    s.user = u;
    s.household = u;
    s.content = config.content_id;
    s.isp = metro.sample_isp(rng);
    s.exp = metro.place_user(s.isp, rng).exp;
    s.bitrate = kAllBitrateClasses[bitrate_sampler(rng)];
    s.start = config.event_start_s +
              rng.exponential(1.0 / config.join_jitter_s);
    s.duration = rng.lognormal(mu, config.watch_sigma);
    if (s.start >= span_s) s.start = span_s - 1.0;
    if (s.end() > span_s) s.duration = span_s - s.start;
    trace.sessions.push_back(s);
  }
  std::sort(trace.sessions.begin(), trace.sessions.end(),
            [](const SessionRecord& a, const SessionRecord& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.user < b.user;
            });
  trace.validate();
  return trace;
}

}  // namespace cl
