#include "ext/live.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace cl {

Trace generate_live_event(const Metro& metro, const LiveEventConfig& config,
                          std::uint64_t seed) {
  CL_EXPECTS(config.viewers >= 1);
  CL_EXPECTS(config.event_start_s >= 0);
  CL_EXPECTS(config.join_jitter_s > 0);
  CL_EXPECTS(config.mean_watch_s > 0);
  CL_EXPECTS(config.span_days > 0);

  Rng rng(seed ^ 0xbf58476d1ce4e5b9ULL);
  const DiscreteSampler bitrate_sampler(std::vector<double>(
      config.bitrate_mix.begin(), config.bitrate_mix.end()));
  const double span_s = config.span_days * 86400.0;
  const double mu = std::log(config.mean_watch_s) -
                    0.5 * config.watch_sigma * config.watch_sigma;

  Trace trace;
  trace.span = Seconds{span_s};
  trace.metro_name = metro.name();
  trace.sessions.reserve(config.viewers);
  for (std::uint32_t u = 0; u < config.viewers; ++u) {
    SessionRecord s;
    s.user = u;
    s.household = u;
    s.content = config.content_id;
    s.isp = metro.sample_isp(rng);
    s.exp = metro.place_user(s.isp, rng).exp;
    s.bitrate = kAllBitrateClasses[bitrate_sampler(rng)];
    s.start = config.event_start_s +
              rng.exponential(1.0 / config.join_jitter_s);
    s.duration = rng.lognormal(mu, config.watch_sigma);
    // A joiner whose jitter lands past the span never starts watching —
    // drop the session rather than clamping it to the final second
    // (clamping piled every late joiner onto one artificial burst at
    // span−1, the apply_preload pathology). The rng draws above already
    // happened, so every other viewer's placement is unchanged.
    if (s.start >= span_s) continue;
    if (s.end() > span_s) s.duration = span_s - s.start;
    trace.sessions.push_back(s);
  }
  std::sort(trace.sessions.begin(), trace.sessions.end(),
            [](const SessionRecord& a, const SessionRecord& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.user < b.user;
            });
  trace.validate();
  return trace;
}

namespace {

/// Mutable state of one flash-crowd viewer across its watching phases.
struct Viewer {
  std::uint32_t isp = 0;
  std::uint32_t exp = 0;
  BitrateClass bitrate = BitrateClass::kMobile;
  double segment_start = 0;     ///< start of the current watching phase
  double remaining_s = 0;       ///< watch time still owed
  double stop_time = 0;         ///< scheduled end of the current phase
  bool stop_is_failure = false; ///< the scheduled stop is a churn failure
  bool active = false;
  /// Stop events carry the epoch they were scheduled under; a bitrate
  /// shift re-tags the viewer so the superseded stop is ignored on pop.
  std::uint32_t epoch = 0;
};

/// One scheduled scenario event.
struct GenEvent {
  enum Kind : std::uint8_t { kArrival = 0, kStop = 1, kResume = 2,
                             kShift = 3 };
  Kind kind = kArrival;
  std::uint32_t viewer = 0;
  std::uint32_t epoch = 0;
};

}  // namespace

std::vector<std::string> flash_crowd_preset_names() {
  return {"ramp", "spike"};
}

FlashCrowdConfig flash_crowd_preset(const std::string& name,
                                    std::uint32_t viewers,
                                    double event_start_s, double span_days) {
  CL_EXPECTS(viewers >= 1);
  CL_EXPECTS(event_start_s >= 1800);
  CL_EXPECTS(span_days > 0);
  CL_EXPECTS(event_start_s < span_days * 86400.0);
  const double v = static_cast<double>(viewers);
  const double e = event_start_s;
  FlashCrowdConfig config;
  config.span_days = span_days;
  if (name == "spike") {
    // Premiere/kickoff: 5 % warm-up trickle over the 10 minutes before,
    // 85 % of the audience inside 3 minutes, 10 % stragglers over the
    // next 10 minutes — then silence.
    config.arrivals = RateProfile({{0.0, 0.0},
                                   {e - 600.0, 0.05 * v / 600.0},
                                   {e, 0.85 * v / 180.0},
                                   {e + 180.0, 0.10 * v / 600.0},
                                   {e + 780.0, 0.0}});
    config.churn = {1.2, 0.8, 30.0};
    config.shift_time_s = e + 300.0;
    config.shift_fraction = 0.25;
  } else if (name == "ramp") {
    // Pre-game tune-in: three rising 10-minute steps carrying 15/30/45 %
    // of the audience, then a 10 % tail over the first 15 minutes.
    config.arrivals = RateProfile({{0.0, 0.0},
                                   {e - 1800.0, 0.15 * v / 600.0},
                                   {e - 1200.0, 0.30 * v / 600.0},
                                   {e - 600.0, 0.45 * v / 600.0},
                                   {e, 0.10 * v / 900.0},
                                   {e + 900.0, 0.0}});
    config.churn = {0.5, 0.7, 45.0};
  } else {
    throw InvalidArgument("unknown flash-crowd preset '" + name +
                          "' (valid: ramp, spike)");
  }
  return config;
}

Trace generate_flash_crowd(const Metro& metro, const FlashCrowdConfig& config,
                           std::uint64_t seed) {
  CL_EXPECTS(config.mean_watch_s > 0);
  CL_EXPECTS(config.span_days > 0);
  CL_EXPECTS(config.churn.failure_rate_per_hour >= 0);
  CL_EXPECTS(config.churn.rejoin_probability >= 0 &&
             config.churn.rejoin_probability <= 1);
  CL_EXPECTS(config.churn.mean_rejoin_delay_s > 0);
  CL_EXPECTS(config.shift_fraction >= 0 && config.shift_fraction <= 1);

  Rng rng(seed ^ 0xd1b54a32d192ed03ULL);
  const DiscreteSampler bitrate_sampler(std::vector<double>(
      config.bitrate_mix.begin(), config.bitrate_mix.end()));
  const double span_s = config.span_days * 86400.0;
  const double mu = std::log(config.mean_watch_s) -
                    0.5 * config.watch_sigma * config.watch_sigma;
  const double failure_rate_s = config.churn.failure_rate_per_hour / 3600.0;

  Trace trace;
  trace.span = Seconds{span_s};
  trace.metro_name = metro.name();
  trace.sessions.reserve(static_cast<std::size_t>(
      config.arrivals.expected_arrivals(span_s) * 1.25) + 16);

  std::vector<Viewer> viewers;
  EventQueue<GenEvent> queue;

  // One watching phase becomes one SessionRecord; crossing the span
  // clamps, a phase that never enters the span emits nothing.
  const auto emit_segment = [&](std::uint32_t v, double end_time) {
    const Viewer& w = viewers[v];
    const double end = std::min(end_time, span_s);
    const double duration = end - w.segment_start;
    if (duration <= 0 || w.segment_start >= span_s) return;
    SessionRecord s;
    s.user = v;
    s.household = v;
    s.content = config.content_id;
    s.isp = w.isp;
    s.exp = w.exp;
    s.bitrate = w.bitrate;
    s.start = w.segment_start;
    s.duration = duration;
    trace.sessions.push_back(s);
  };

  // Opens a watching phase at `t` and schedules its end: the remaining
  // watch time, or an earlier churn failure (one hazard draw per phase,
  // consumed whether or not it strikes first).
  const auto begin_segment = [&](std::uint32_t v, double t) {
    Viewer& w = viewers[v];
    w.active = true;
    w.segment_start = t;
    double until_stop = w.remaining_s;
    bool fail = false;
    if (failure_rate_s > 0) {
      const double until_failure = rng.exponential(failure_rate_s);
      if (until_failure < until_stop) {
        until_stop = until_failure;
        fail = true;
      }
    }
    w.stop_time = t + until_stop;
    w.stop_is_failure = fail;
    ++w.epoch;
    queue.push(w.stop_time, {GenEvent::kStop, v, w.epoch});
  };

  const double first = config.arrivals.next_arrival(0.0, span_s, rng);
  if (first < span_s) queue.push(first, {GenEvent::kArrival, 0, 0});
  if (config.shift_time_s >= 0 && config.shift_fraction > 0 &&
      config.shift_time_s < span_s) {
    queue.push(config.shift_time_s, {GenEvent::kShift, 0, 0});
  }

  while (!queue.empty()) {
    const auto scheduled = queue.pop();
    const double t = scheduled.time;
    const GenEvent& ev = scheduled.payload;
    switch (ev.kind) {
      case GenEvent::kArrival: {
        // Chain the next arrival first so the arrival stream's rng draws
        // stay contiguous regardless of what this viewer does.
        const double next = config.arrivals.next_arrival(t, span_s, rng);
        if (next < span_s) queue.push(next, {GenEvent::kArrival, 0, 0});
        const auto v = static_cast<std::uint32_t>(viewers.size());
        Viewer w;
        w.isp = metro.sample_isp(rng);
        w.exp = metro.place_user(w.isp, rng).exp;
        w.bitrate = kAllBitrateClasses[bitrate_sampler(rng)];
        w.remaining_s = rng.lognormal(mu, config.watch_sigma);
        viewers.push_back(w);
        begin_segment(v, t);
        break;
      }
      case GenEvent::kStop: {
        Viewer& w = viewers[ev.viewer];
        if (!w.active || ev.epoch != w.epoch) break;  // superseded by a shift
        emit_segment(ev.viewer, t);
        w.remaining_s -= t - w.segment_start;
        w.active = false;
        if (w.stop_is_failure && w.remaining_s > 1.0) {
          // Both draws are consumed whether or not the viewer rejoins, so
          // a rejection never perturbs later viewers' placements.
          const bool rejoin = rng.bernoulli(config.churn.rejoin_probability);
          const double delay =
              rng.exponential(1.0 / config.churn.mean_rejoin_delay_s);
          if (rejoin && t + delay < span_s) {
            queue.push(t + delay, {GenEvent::kResume, ev.viewer, 0});
          }
        }
        break;
      }
      case GenEvent::kResume: {
        if (t < span_s) begin_segment(ev.viewer, t);
        break;
      }
      case GenEvent::kShift: {
        // One bernoulli per viewer in id order — active or not — so the
        // draw positions are stable under any churn history.
        for (std::uint32_t v = 0; v < viewers.size(); ++v) {
          const bool downgrade = rng.bernoulli(config.shift_fraction);
          Viewer& w = viewers[v];
          if (!downgrade || !w.active ||
              w.bitrate == BitrateClass::kMobile) {
            continue;
          }
          emit_segment(v, t);
          w.remaining_s -= t - w.segment_start;
          w.segment_start = t;
          w.bitrate = kAllBitrateClasses[index(w.bitrate) - 1];
          // The phase's end (and failure outcome) is unchanged — re-tag
          // the pending stop under a fresh epoch, no new draws.
          ++w.epoch;
          queue.push(w.stop_time, {GenEvent::kStop, v, w.epoch});
        }
        break;
      }
    }
  }

  std::sort(trace.sessions.begin(), trace.sessions.end(),
            [](const SessionRecord& a, const SessionRecord& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.user < b.user;
            });
  trace.validate();
  return trace;
}

}  // namespace cl
