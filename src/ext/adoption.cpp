#include "ext/adoption.h"

#include <algorithm>
#include <cmath>

#include "model/offload.h"
#include "model/swarm_model.h"
#include "util/error.h"

namespace cl {

void AdoptionConfig::uniform_thresholds(std::size_t n, double lo, double hi) {
  CL_EXPECTS(n >= 1);
  CL_EXPECTS(lo <= hi);
  thresholds.clear();
  thresholds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = n == 1 ? 0.5 : static_cast<double>(i) /
                                        static_cast<double>(n - 1);
    thresholds.push_back(lo + (hi - lo) * t);
  }
}

AdoptionModel::AdoptionModel(SavingsModel model) : model_(std::move(model)) {}

double AdoptionModel::cct_at(double participation,
                             const AdoptionConfig& config) const {
  CL_EXPECTS(participation >= 0 && participation <= 1);
  const auto& params = model_.params();
  // Peer-servable demand fraction at this capacity (the (L-1)^+/L term).
  const double demand = offload_fraction(config.swarm_capacity, 1.0);
  if (participation <= 0 || demand <= 0) {
    // A lone would-be sharer: evaluate the supply-limited payoff — the
    // entry incentive for the very first participant.
    const double u = std::min(config.q_over_beta, 1.0) * demand;
    const double spent =
        params.loss * params.gamma_modem.value() * (1.0 + u);
    const double earned = params.pue * params.gamma_server.value() * u;
    return (earned - spent) / spent;
  }
  const double ratio = std::min(config.q_over_beta, 1.0);
  // Supply-limited: every participant uploads at their bandwidth cap.
  // Demand-limited: the offloadable demand is split across participants.
  const double per_participant_upload =
      std::min(ratio * demand, demand / participation);
  const double spent = params.loss * params.gamma_modem.value() *
                       (1.0 + per_participant_upload);
  const double earned = params.pue * params.gamma_server.value() *
                        per_participant_upload;
  return (earned - spent) / spent;
}

double AdoptionModel::willing_fraction(double cct,
                                       const std::vector<double>& thresholds) {
  CL_EXPECTS(!thresholds.empty());
  std::size_t willing = 0;
  for (double t : thresholds) {
    if (cct >= t) ++willing;
  }
  return static_cast<double>(willing) /
         static_cast<double>(thresholds.size());
}

AdoptionResult AdoptionModel::solve(const AdoptionConfig& config) const {
  CL_EXPECTS(!config.thresholds.empty());
  CL_EXPECTS(config.initial_participation >= 0 &&
             config.initial_participation <= 1);
  AdoptionResult result;
  double a = config.initial_participation;
  result.trajectory.push_back(a);
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    const double cct = cct_at(a, config);
    const double target = willing_fraction(cct, config.thresholds);
    // Damped update: the best-response map is decreasing in a, so a plain
    // iteration can two-cycle; averaging guarantees convergence.
    const double next = 0.5 * (a + target);
    result.trajectory.push_back(next);
    if (std::abs(next - a) < config.tolerance) {
      a = next;
      result.converged = true;
      break;
    }
    a = next;
  }
  result.participation = a;
  result.cct = cct_at(a, config);
  const double effective_ratio =
      std::min(1.0, a * std::min(config.q_over_beta, 1.0));
  result.offload = model_.offload(config.swarm_capacity, effective_ratio);
  result.savings = model_.savings(config.swarm_capacity, effective_ratio);
  return result;
}

}  // namespace cl
