// live.h — live-streaming workload extension (paper's future work,
// ref [32] "Facebook (A)Live?").
//
// A live broadcast is the best case for peer assistance: every viewer
// consumes the same content at the same time, so the instantaneous swarm
// equals the whole audience. This module synthesises live-event traces
// that plug into the standard simulator and model, in two flavours:
//
//  * generate_live_event — the original one-shot audience: viewers join
//    around the event start with exponential jitter and leave after
//    log-normal watch times.
//  * generate_flash_crowd — the full scenario engine: a RateProfile
//    (sim/event_engine.h) drives the arrival burst (spike or ramp
//    presets), viewers churn (fail mid-stream and probabilistically
//    rejoin after a delay), and a mid-event bitrate shift downgrades a
//    fraction of the audience — each viewer phase emits its own session
//    segment, so the standard simulator replays the scenario unchanged.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_engine.h"
#include "topology/placement.h"
#include "trace/bitrate.h"
#include "trace/session.h"

namespace cl {

/// Configuration of one synthetic live event.
struct LiveEventConfig {
  std::uint32_t viewers = 5000;   ///< audience size
  double event_start_s = 3600;    ///< event start, seconds from epoch
  double join_jitter_s = 120;     ///< mean exponential join delay
  double mean_watch_s = 1500;     ///< mean log-normal watch time
  double watch_sigma = 0.6;       ///< log-normal sigma of watch time
  double span_days = 1;           ///< trace span
  std::uint32_t content_id = 0;   ///< content id of the broadcast
  /// Device mix over bitrate classes (mobile-heavy by default: live
  /// audiences skew to phones).
  std::array<double, kBitrateClasses> bitrate_mix{0.45, 0.30, 0.15, 0.10};
};

/// Generates the live-event trace over a metro's ISPs. Deterministic in
/// `seed`; viewers get fresh user ids 0..viewers-1. Joiners whose jitter
/// lands past the span are dropped (they never start watching), with
/// their rng draws consumed so every other viewer's placement is
/// unchanged.
[[nodiscard]] Trace generate_live_event(const Metro& metro,
                                        const LiveEventConfig& config,
                                        std::uint64_t seed);

/// Peer churn during a flash crowd: failures strike at an exponential
/// hazard while a viewer is watching (WebCloud-style browser peers that
/// navigate away, drop Wi-Fi, background the tab); a failed viewer
/// rejoins with some probability after an exponential delay and resumes
/// the remaining watch time as a new session segment.
struct ChurnConfig {
  double failure_rate_per_hour = 0;  ///< hazard while watching (0 = off)
  double rejoin_probability = 0.75;  ///< P[failed viewer comes back]
  double mean_rejoin_delay_s = 30;   ///< mean exponential rejoin delay
};

/// Configuration of one flash-crowd scenario.
struct FlashCrowdConfig {
  /// Arrival burst shape, viewers/second over trace time.
  RateProfile arrivals = RateProfile::constant(1.0);
  double mean_watch_s = 1500;    ///< mean log-normal watch time
  double watch_sigma = 0.6;      ///< log-normal sigma of watch time
  double span_days = 1;          ///< trace span
  std::uint32_t content_id = 0;  ///< content id of the broadcast
  /// Device mix over bitrate classes (same skew as LiveEventConfig).
  std::array<double, kBitrateClasses> bitrate_mix{0.45, 0.30, 0.15, 0.10};
  ChurnConfig churn;
  /// Mid-event bitrate shift (the CDN's congestion response): at
  /// `shift_time_s`, each active viewer above the lowest class drops one
  /// bitrate class with probability `shift_fraction`, closing the current
  /// segment and opening a downgraded one. Negative time disables it.
  double shift_time_s = -1;
  double shift_fraction = 0;
};

/// Named scenario presets for `flash_crowd_preset`, sorted:
///   ramp  — audience builds in rising steps over the 30 minutes before
///           the event (pre-game tune-in), light churn, no bitrate shift.
///   spike — a premiere/kickoff surge: a small warm-up trickle, ~85 % of
///           the audience inside three minutes, heavy churn, and a
///           bitrate shift five minutes in.
[[nodiscard]] std::vector<std::string> flash_crowd_preset_names();

/// Builds a preset scenario sized for `viewers` expected arrivals around
/// `event_start_s` (>= 1800 s so the ramp's build-up fits in the trace)
/// over `span_days`. Unknown names throw InvalidArgument listing the
/// valid presets.
[[nodiscard]] FlashCrowdConfig flash_crowd_preset(const std::string& name,
                                                  std::uint32_t viewers,
                                                  double event_start_s,
                                                  double span_days);

/// Runs the flash-crowd event loop (EventQueue-driven: arrivals, stops,
/// failures, rejoins, the bitrate shift) and returns the resulting trace.
/// Deterministic in `seed`; viewers get fresh user ids in arrival order,
/// and a churned/downgraded viewer contributes one session segment per
/// watching phase. Segments starting past the span are dropped; segments
/// crossing it are clamped.
[[nodiscard]] Trace generate_flash_crowd(const Metro& metro,
                                         const FlashCrowdConfig& config,
                                         std::uint64_t seed);

}  // namespace cl
