// live.h — live-streaming workload extension (paper's future work,
// ref [32] "Facebook (A)Live?").
//
// A live broadcast is the best case for peer assistance: every viewer
// consumes the same content at the same time, so the instantaneous swarm
// equals the whole audience. This module synthesises a live-event trace
// (viewers join around the event start with exponential-ish jitter and
// leave after log-normal watch times) that plugs into the standard
// simulator and model.
#pragma once

#include <cstdint>

#include "topology/placement.h"
#include "trace/bitrate.h"
#include "trace/session.h"

namespace cl {

/// Configuration of one synthetic live event.
struct LiveEventConfig {
  std::uint32_t viewers = 5000;   ///< audience size
  double event_start_s = 3600;    ///< event start, seconds from epoch
  double join_jitter_s = 120;     ///< mean exponential join delay
  double mean_watch_s = 1500;     ///< mean log-normal watch time
  double watch_sigma = 0.6;       ///< log-normal sigma of watch time
  double span_days = 1;           ///< trace span
  std::uint32_t content_id = 0;   ///< content id of the broadcast
  /// Device mix over bitrate classes (mobile-heavy by default: live
  /// audiences skew to phones).
  std::array<double, kBitrateClasses> bitrate_mix{0.45, 0.30, 0.15, 0.10};
};

/// Generates the live-event trace over a metro's ISPs. Deterministic in
/// `seed`; viewers get fresh user ids 0..viewers-1.
[[nodiscard]] Trace generate_live_event(const Metro& metro,
                                        const LiveEventConfig& config,
                                        std::uint64_t seed);

}  // namespace cl
