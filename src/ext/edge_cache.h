// edge_cache.h — exchange-point edge caching extension (paper's future
// work, ref [31] "Wi-Stitch").
//
// A small LRU cache at each exchange point intercepts sessions whose
// content was recently streamed by a neighbour under the same ExP. Cache
// hits are served over the shortest possible path; misses proceed through
// the normal hybrid (or pure-CDN) pipeline.
//
// Energy accounting (documented substitution — the paper does not model
// caches): a cache hit costs
//
//   ψcache = PUE·(γs + γexp/2) + l·γm   per bit
//
// i.e. a nano-server with the CDN's per-bit serving cost, half the
// intra-ExP peer path (one access leg instead of down-and-up), and the
// downloader's modem. No second user modem is involved.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "energy/energy_params.h"
#include "sim/hybrid_sim.h"
#include "sim/metrics.h"
#include "topology/placement.h"
#include "trace/session.h"

namespace cl {

/// Bounded LRU set of content ids (one per exchange point).
class LruSet {
 public:
  explicit LruSet(std::size_t capacity);

  /// Touches `key`: returns true on hit (and refreshes recency); on miss
  /// inserts the key, evicting the least recently used entry when full.
  bool touch(std::uint32_t key);

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::list<std::uint32_t> order_;  // most recent at front
  std::unordered_map<std::uint32_t, std::list<std::uint32_t>::iterator> map_;
};

/// Configuration of the edge-cache deployment.
struct EdgeCacheConfig {
  std::size_t capacity_per_exp = 50;  ///< items per exchange-point cache
  bool misses_use_p2p = true;  ///< run misses through the hybrid simulator
};

/// Outcome of one cached run.
struct EdgeCacheOutcome {
  std::size_t hits = 0;
  std::size_t misses = 0;
  Bits cache_bits;     ///< bits served by ExP caches
  SimResult miss_sim;  ///< hybrid (or pure-CDN) result for the misses

  [[nodiscard]] double hit_rate() const {
    const auto total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0;
  }
};

/// Trace-driven simulator of ExP caches in front of the hybrid CDN.
class EdgeCacheSimulator {
 public:
  EdgeCacheSimulator(const Metro& metro, SimConfig sim_config,
                     EdgeCacheConfig cache_config);

  /// Replays the trace in start order against the per-ExP caches, then
  /// simulates the missing sessions with the hybrid simulator (or accounts
  /// them as pure CDN when misses_use_p2p is false).
  [[nodiscard]] EdgeCacheOutcome run(const Trace& trace) const;

  /// ψcache — per-bit energy of a cache hit (see file comment).
  [[nodiscard]] static EnergyPerBit cache_psi(const EnergyParams& params);

  /// Total energy of the outcome under one energy model.
  [[nodiscard]] static Energy total_energy(const EdgeCacheOutcome& outcome,
                                           const EnergyParams& params);

  /// End-to-end savings versus a pure CDN delivering the same volume.
  [[nodiscard]] static double savings(const EdgeCacheOutcome& outcome,
                                      const EnergyParams& params);

 private:
  const Metro* metro_;
  SimConfig sim_config_;
  EdgeCacheConfig cache_config_;
};

}  // namespace cl
