// preload.h — predictive preloading extension (paper's future work,
// ref [17] "Take-Away TV").
//
// Predictive preloading downloads the content a user is expected to watch
// during a concentrated off-peak window (e.g. before the morning commute).
// From the swarm's perspective this *synchronises* demand: sessions that
// would have been spread over the day land in the same short window,
// raising instantaneous swarm sizes and therefore peer-to-peer locality
// and offload. This module transforms a trace accordingly so the standard
// simulator and model quantify the effect.
//
// Simplification (documented): a preloaded download is modelled as a
// session of unchanged duration and bitrate placed inside the preload
// window — i.e. we model the timing shift, not accelerated bulk transfer.
#pragma once

#include <cstdint>

#include "trace/session.h"

namespace cl {

/// Configuration of the preloading behaviour.
struct PreloadConfig {
  double adoption = 0.5;  ///< fraction of sessions preloaded, in [0, 1]
  double window_start_hour = 7.0;  ///< preload window start (local time)
  double window_end_hour = 9.0;    ///< preload window end, > start
};

/// Returns a copy of `trace` in which each session is, with probability
/// `config.adoption`, moved into the preload window of its original day.
/// Deterministic in `seed`. The result is re-sorted and validated.
[[nodiscard]] Trace apply_preload(const Trace& trace,
                                  const PreloadConfig& config,
                                  std::uint64_t seed);

}  // namespace cl
