#include "ext/preload.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace cl {

Trace apply_preload(const Trace& trace, const PreloadConfig& config,
                    std::uint64_t seed) {
  CL_EXPECTS(config.adoption >= 0 && config.adoption <= 1);
  CL_EXPECTS(config.window_start_hour >= 0);
  CL_EXPECTS(config.window_end_hour > config.window_start_hour);
  CL_EXPECTS(config.window_end_hour <= 24);

  Rng rng(seed ^ 0x9d39247e33776d41ULL);
  Trace out;
  out.span = trace.span;
  out.metro_name = trace.metro_name;
  out.sessions.reserve(trace.sessions.size());
  const double span_s = trace.span.value();
  for (SessionRecord s : trace.sessions) {
    if (rng.bernoulli(config.adoption)) {
      const double day = std::floor(s.start / 86400.0);
      const double hour = rng.uniform(config.window_start_hour,
                                      config.window_end_hour);
      const double target = day * 86400.0 + hour * 3600.0;
      // On a partial final day the window can fall past the end of the
      // span; piling those sessions onto span_s − 1 would distort the
      // final-day swarm sizes, so they stay where they were. The rng
      // draws above happen either way, keeping every other session's
      // placement independent of the span.
      if (target < span_s) {
        s.start = target;
        if (s.end() > span_s) s.duration = span_s - s.start;
      }
    }
    out.sessions.push_back(s);
  }
  std::sort(out.sessions.begin(), out.sessions.end(),
            [](const SessionRecord& a, const SessionRecord& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.content != b.content) return a.content < b.content;
              return a.user < b.user;
            });
  out.validate();
  return out;
}

}  // namespace cl
