#include "ext/edge_cache.h"

#include "energy/cost_functions.h"
#include "util/error.h"

namespace cl {

LruSet::LruSet(std::size_t capacity) : capacity_(capacity) {
  CL_EXPECTS(capacity >= 1);
}

bool LruSet::touch(std::uint32_t key) {
  if (const auto it = map_.find(key); it != map_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }
  if (map_.size() >= capacity_) {
    map_.erase(order_.back());
    order_.pop_back();
  }
  order_.push_front(key);
  map_[key] = order_.begin();
  return false;
}

EdgeCacheSimulator::EdgeCacheSimulator(const Metro& metro,
                                       SimConfig sim_config,
                                       EdgeCacheConfig cache_config)
    : metro_(&metro), sim_config_(sim_config), cache_config_(cache_config) {
  CL_EXPECTS(cache_config_.capacity_per_exp >= 1);
}

EdgeCacheOutcome EdgeCacheSimulator::run(const Trace& trace) const {
  EdgeCacheOutcome outcome;
  std::unordered_map<std::uint64_t, LruSet> caches;
  Trace misses;
  misses.span = trace.span;
  for (const auto& s : trace.sessions) {
    const std::uint64_t exp_key =
        (static_cast<std::uint64_t>(s.isp) << 32) | s.exp;
    auto [it, inserted] = caches.try_emplace(
        exp_key, cache_config_.capacity_per_exp);
    if (it->second.touch(s.content)) {
      ++outcome.hits;
      outcome.cache_bits += s.volume();
    } else {
      ++outcome.misses;
      misses.sessions.push_back(s);
    }
  }
  if (cache_config_.misses_use_p2p) {
    outcome.miss_sim = HybridSimulator(*metro_, sim_config_).run(misses);
  } else {
    // Pure CDN for misses: all bytes from the server.
    outcome.miss_sim.config = sim_config_;
    outcome.miss_sim.span = misses.span;
    outcome.miss_sim.total.server = misses.total_volume();
  }
  return outcome;
}

EnergyPerBit EdgeCacheSimulator::cache_psi(const EnergyParams& params) {
  const double exp_leg =
      params.gamma_p2p_at(LocalityLevel::kExchangePoint).value() / 2.0;
  return EnergyPerBit{params.pue * (params.gamma_server.value() + exp_leg) +
                      params.loss * params.gamma_modem.value()};
}

Energy EdgeCacheSimulator::total_energy(const EdgeCacheOutcome& outcome,
                                        const EnergyParams& params) {
  const EnergyAccountant accountant{CostFunctions(params)};
  return accountant.hybrid(outcome.miss_sim.total).total() +
         cache_psi(params) * outcome.cache_bits;
}

double EdgeCacheSimulator::savings(const EdgeCacheOutcome& outcome,
                                   const EnergyParams& params) {
  const EnergyAccountant accountant{CostFunctions(params)};
  const Bits useful = outcome.miss_sim.total.total() + outcome.cache_bits;
  const double baseline = accountant.baseline(useful).total().value();
  if (baseline <= 0) return 0.0;
  return 1.0 - total_energy(outcome, params).value() / baseline;
}

}  // namespace cl
