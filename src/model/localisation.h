// localisation.h — expected locality of peer-to-peer paths
// (paper Section III.D.2, Eqs. 7–11).
//
// A downloader in a swarm of L users localises at the lowest layer of the
// ISP tree that contains at least one other active peer. With uniform user
// placement, the probability of finding a peer under one's own node at a
// layer with per-node probability p is P(L) = 1 − (1−p)^{L−1}, so
//
//   γp2p(L) = γexp·Pexp(L) + γpop·(Ppop−Pexp)(L) + γcore·(Pcore−Ppop)(L).
//
// The model needs E[γp2p(L)·(L−1)^+] under L ~ Poisson(c). We provide two
// algebraically identical evaluations:
//
//  * `expected_weighted_gamma` — the direct derivation
//        γexp·A(c) + (γpop−γexp)·g(pexp,c) + (γcore−γpop)·g(ppop,c)
//    with A(c)=c−1+e^{-c}, g(p,c)=E[(L−1)^+(1−p)^{L−1}];
//  * `expected_weighted_gamma_grouped` — the paper's Eq. 10 form using the
//    piecewise helper f(p,c) (f(1,c)=A(c); f(p<1,c)=g(p,c)−A(c)).
//
// Their equality is enforced by tests; Eq. 11 as printed in the source text
// is OCR-garbled, see DESIGN.md §2.
#pragma once

#include "energy/energy_params.h"
#include "topology/isp_topology.h"
#include "util/units.h"

namespace cl {

/// f(p, c) — the paper's Eq. 11 helper, piecewise at p = 1.
[[nodiscard]] double locality_helper_f(double p, double c);

/// P(L) = 1 − (1−p)^{L−1}: probability that a user in a swarm of L >= 1
/// users finds a peer under their own layer-node of per-node probability p.
[[nodiscard]] double find_local_peer_probability(double p, unsigned swarm_size);

/// γp2p(L) — expected per-bit network energy of one peer path in an
/// instantaneous swarm of L users (Eq. 7). For L <= 1 returns γcore (no
/// peer exists; the value is irrelevant because traffic is zero).
[[nodiscard]] EnergyPerBit gamma_p2p(const EnergyParams& params,
                                     const LocalisationProbabilities& loc,
                                     unsigned swarm_size);

/// E[γp2p(L)·(L−1)^+] under L ~ Poisson(c) — direct closed form.
[[nodiscard]] double expected_weighted_gamma(
    const EnergyParams& params, const LocalisationProbabilities& loc,
    double capacity);

/// Same expectation via the paper's grouped Eq. 10 (uses locality_helper_f).
[[nodiscard]] double expected_weighted_gamma_grouped(
    const EnergyParams& params, const LocalisationProbabilities& loc,
    double capacity);

/// Monte-Carlo free numerical cross-check: evaluates the expectation by
/// summing the Poisson series up to `max_l` terms. Used by tests and the
/// model-validation bench.
[[nodiscard]] double expected_weighted_gamma_series(
    const EnergyParams& params, const LocalisationProbabilities& loc,
    double capacity, unsigned max_l = 4096);

/// Expected fraction of peer-delivered bits that localise at each level
/// (sums to 1 for capacity > 0): share(level) = E[(L−1)^+·w_level]/A(c).
/// Used to validate the simulator's locality mix against theory.
[[nodiscard]] std::array<double, kLocalityLevels> expected_locality_shares(
    const LocalisationProbabilities& loc, double capacity);

}  // namespace cl
