#include "model/carbon_credit.h"

#include "util/error.h"

namespace cl {

double cct_from_offload(double offload, const EnergyParams& p) {
  CL_EXPECTS(offload >= 0 && offload <= 1);
  const double saved = p.pue * p.gamma_server.value() * offload;
  const double spent = p.loss * p.gamma_modem.value() * (1.0 + offload);
  return (saved - spent) / spent;
}

double carbon_neutral_offload(const EnergyParams& p) {
  const double modem = p.loss * p.gamma_modem.value();
  const double server = p.pue * p.gamma_server.value();
  if (server <= modem) {
    throw InvalidArgument(
        "carbon neutrality unreachable: PUE*gamma_s <= l*gamma_m for model " +
        p.name);
  }
  return modem / (server - modem);
}

double cct_ceiling(const EnergyParams& p) { return cct_from_offload(1.0, p); }

double per_user_cct(Bits downloaded, Bits uploaded, const EnergyParams& p) {
  CL_EXPECTS(downloaded.value() >= 0);
  CL_EXPECTS(uploaded.value() >= 0);
  const double moved = downloaded.value() + uploaded.value();
  if (moved <= 0) return 0.0;
  const double saved = p.pue * p.gamma_server.value() * uploaded.value();
  const double spent = p.loss * p.gamma_modem.value() * moved;
  return (saved - spent) / spent;
}

Energy credit_energy(Bits uploaded, const EnergyParams& p) {
  return EnergyPerBit{p.pue * p.gamma_server.value()} * uploaded;
}

Energy user_energy(Bits downloaded, Bits uploaded, const EnergyParams& p) {
  return EnergyPerBit{p.loss * p.gamma_modem.value()} *
         (downloaded + uploaded);
}

}  // namespace cl
