#include "model/split_swarm.h"

#include "util/error.h"

namespace cl {

SplitSwarmModel::SplitSwarmModel(EnergyParams params, const Metro& metro,
                                 std::vector<SwarmSlice> slices)
    : slices_(std::move(slices)) {
  CL_EXPECTS(!slices_.empty());
  double sum = 0, volume_sum = 0;
  for (auto& slice : slices_) {
    CL_EXPECTS(slice.weight > 0);
    CL_EXPECTS(slice.isp < metro.isp_count());
    if (slice.volume_weight <= 0) slice.volume_weight = slice.weight;
    sum += slice.weight;
    volume_sum += slice.volume_weight;
  }
  for (auto& slice : slices_) {
    slice.weight /= sum;
    slice.volume_weight /= volume_sum;
  }
  per_isp_.reserve(metro.isp_count());
  for (std::size_t i = 0; i < metro.isp_count(); ++i) {
    per_isp_.emplace_back(params, metro.isp(i));
  }
}

SplitSwarmModel SplitSwarmModel::isp_bitrate_partition(
    EnergyParams params, const Metro& metro,
    const std::array<double, kBitrateClasses>& bitrate_mix) {
  std::vector<SwarmSlice> slices;
  slices.reserve(metro.isp_count() * kBitrateClasses);
  for (std::size_t isp = 0; isp < metro.isp_count(); ++isp) {
    for (std::size_t b = 0; b < kBitrateClasses; ++b) {
      if (bitrate_mix[b] <= 0) continue;
      const double viewers = metro.share(isp) * bitrate_mix[b];
      const double volume =
          viewers * bitrate_of(kAllBitrateClasses[b]).value();
      slices.push_back({viewers, isp, volume});
    }
  }
  return SplitSwarmModel(std::move(params), metro, std::move(slices));
}

double SplitSwarmModel::savings(double item_capacity,
                                double q_over_beta) const {
  CL_EXPECTS(item_capacity >= 0);
  double sum = 0;
  for (const auto& slice : slices_) {
    sum += slice.volume_weight *
           per_isp_[slice.isp].savings(item_capacity * slice.weight,
                                       q_over_beta);
  }
  return sum;
}

double SplitSwarmModel::offload(double item_capacity,
                                double q_over_beta) const {
  CL_EXPECTS(item_capacity >= 0);
  double sum = 0;
  for (const auto& slice : slices_) {
    sum += slice.volume_weight *
           per_isp_[slice.isp].offload(item_capacity * slice.weight,
                                       q_over_beta);
  }
  return sum;
}

double SplitSwarmModel::unsplit_savings(double item_capacity,
                                        double q_over_beta) const {
  return per_isp_[slices_.front().isp].savings(item_capacity, q_over_beta);
}

double SplitSwarmModel::partition_penalty(double item_capacity,
                                          double q_over_beta) const {
  const double unsplit = unsplit_savings(item_capacity, q_over_beta);
  if (unsplit <= 0) return 0.0;
  return 1.0 - savings(item_capacity, q_over_beta) / unsplit;
}

}  // namespace cl
