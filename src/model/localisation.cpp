#include "model/localisation.h"

#include <cmath>

#include "model/swarm_model.h"
#include "util/error.h"

namespace cl {

double locality_helper_f(double p, double c) {
  CL_EXPECTS(p >= 0 && p <= 1);
  CL_EXPECTS(c >= 0);
  const double a = expected_excess(c);
  if (p == 1.0) return a;
  return expected_excess_nonlocal(p, c) - a;
}

double find_local_peer_probability(double p, unsigned swarm_size) {
  CL_EXPECTS(p >= 0 && p <= 1);
  if (swarm_size <= 1) return 0.0;
  return 1.0 - std::pow(1.0 - p, static_cast<double>(swarm_size - 1));
}

EnergyPerBit gamma_p2p(const EnergyParams& params,
                       const LocalisationProbabilities& loc,
                       unsigned swarm_size) {
  const double g_exp =
      params.gamma_p2p_at(LocalityLevel::kExchangePoint).value();
  const double g_pop = params.gamma_p2p_at(LocalityLevel::kPop).value();
  const double g_core = params.gamma_p2p_at(LocalityLevel::kCore).value();
  if (swarm_size <= 1) return EnergyPerBit{g_core};
  const double p_exp = find_local_peer_probability(loc.exp, swarm_size);
  const double p_pop = find_local_peer_probability(loc.pop, swarm_size);
  const double p_core = find_local_peer_probability(loc.core, swarm_size);
  return EnergyPerBit{g_exp * p_exp + g_pop * (p_pop - p_exp) +
                      g_core * (p_core - p_pop)};
}

double expected_weighted_gamma(const EnergyParams& params,
                               const LocalisationProbabilities& loc,
                               double capacity) {
  const double g_exp =
      params.gamma_p2p_at(LocalityLevel::kExchangePoint).value();
  const double g_pop = params.gamma_p2p_at(LocalityLevel::kPop).value();
  const double g_core = params.gamma_p2p_at(LocalityLevel::kCore).value();
  const double a = expected_excess(capacity);
  return g_exp * a +
         (g_pop - g_exp) * expected_excess_nonlocal(loc.exp, capacity) +
         (g_core - g_pop) * expected_excess_nonlocal(loc.pop, capacity);
}

double expected_weighted_gamma_grouped(const EnergyParams& params,
                                       const LocalisationProbabilities& loc,
                                       double capacity) {
  const double g_exp =
      params.gamma_p2p_at(LocalityLevel::kExchangePoint).value();
  const double g_pop = params.gamma_p2p_at(LocalityLevel::kPop).value();
  const double g_core = params.gamma_p2p_at(LocalityLevel::kCore).value();
  return (g_pop - g_exp) * locality_helper_f(loc.exp, capacity) +
         (g_core - g_pop) * locality_helper_f(loc.pop, capacity) +
         g_core * locality_helper_f(loc.core, capacity);
}

double expected_weighted_gamma_series(const EnergyParams& params,
                                      const LocalisationProbabilities& loc,
                                      double capacity, unsigned max_l) {
  const SwarmModel swarm(capacity);
  double sum = 0;
  for (unsigned l = 2; l <= max_l; ++l) {
    const double w = swarm.occupancy_pmf(l) * static_cast<double>(l - 1);
    if (l > 16 && w < 1e-16 && static_cast<double>(l) > 2 * capacity) break;
    sum += w * gamma_p2p(params, loc, l).value();
  }
  return sum;
}

std::array<double, kLocalityLevels> expected_locality_shares(
    const LocalisationProbabilities& loc, double capacity) {
  std::array<double, kLocalityLevels> shares{};
  const double a = expected_excess(capacity);
  if (a <= 0) return shares;
  const double g_exp = expected_excess_nonlocal(loc.exp, capacity);
  const double g_pop = expected_excess_nonlocal(loc.pop, capacity);
  shares[index(LocalityLevel::kExchangePoint)] = (a - g_exp) / a;
  shares[index(LocalityLevel::kPop)] = (g_exp - g_pop) / a;
  shares[index(LocalityLevel::kCore)] = g_pop / a;
  return shares;
}

}  // namespace cl
