// swarm_model.h — the M/M/∞ model of a content swarm (Section III.B).
//
// Users arrive at a swarm as a Poisson process of rate r, watch for an
// (exponentially distributed) average duration u, and are served instantly
// by the other members — i.e. an M/M/∞ queue. By Little's law the average
// number of concurrent users ("swarm capacity") is c = u·r, and the
// instantaneous occupancy L is Poisson(c)-distributed in steady state.
#pragma once

#include "util/units.h"

namespace cl {

/// Steady-state quantities of an M/M/∞ content swarm of capacity c.
///
/// All functions are pure and numerically safe over c ∈ [0, ~1e6].
class SwarmModel {
 public:
  /// Constructs from a capacity directly. Precondition: c >= 0.
  explicit SwarmModel(double capacity);

  /// Constructs via Little's law from mean session duration u and arrival
  /// rate r (sessions/second): c = u·r.
  [[nodiscard]] static SwarmModel from_rate(Seconds mean_duration,
                                            double arrivals_per_second);

  /// The swarm capacity c (mean concurrent users).
  [[nodiscard]] double capacity() const { return c_; }

  /// p = P[L >= 1] = 1 − e^{-c}: probability at least one user is online.
  [[nodiscard]] double p_online() const;

  /// Poisson(c) probability mass P[L = l].
  [[nodiscard]] double occupancy_pmf(unsigned l) const;

  /// E[(L−1)^+] = c − 1 + e^{-c}: expected number of users in excess of
  /// one — exactly the per-window count of users that can be served by
  /// peers (the paper's ΔTp carries a (L−1) factor, zero when L <= 1).
  [[nodiscard]] double expected_excess() const;

  /// E[(L−1)^+ · (1−p)^{L−1}] for p ∈ [0,1] — the building block of the
  /// locality expectation (Section III.D.2). Closed form:
  ///   e^{-cp}·( c − (1−e^{-c(1−p)})/(1−p) )   for p < 1;  0 at p = 1.
  [[nodiscard]] double expected_excess_nonlocal(double p) const;

 private:
  double c_;
};

/// Numerically stable c − 1 + e^{-c} (series expansion near zero).
[[nodiscard]] double expected_excess(double c);

/// Numerically stable E[(L−1)^+ (1−p)^{L−1}] (see SwarmModel).
[[nodiscard]] double expected_excess_nonlocal(double p, double c);

}  // namespace cl
