// offload.h — the traffic offload fraction G (paper Eq. 3).
//
// Within each Δτ window, L active users collectively demand L·β·Δτ bits; up
// to (L−1)·q·Δτ of that can be delivered by fellow peers (one user pulls
// the fresh chunk from the server). Averaging over Poisson(c) occupancy:
//
//     G = (q/β) · (c + e^{-c} − 1) / c
//
// G is a fraction of the total useful traffic; the model caps it at 1 (for
// q > β a peer cannot usefully deliver more than the stream rate — the
// paper only sweeps q/β <= 1, where no capping occurs).
#pragma once

namespace cl {

/// Parameters of the offload computation.
struct OffloadParams {
  double upload_to_bitrate = 1.0;  ///< q/β, >= 0
};

/// G(c) — fraction of useful traffic deliverable from peers (Eq. 3).
/// Preconditions: capacity >= 0, q_over_beta >= 0. Result in [0, 1].
[[nodiscard]] double offload_fraction(double capacity, double q_over_beta);

/// lim_{c→0} G/c = (q/β)/2 — useful for tiny-swarm asymptotics.
[[nodiscard]] double offload_small_capacity_slope(double q_over_beta);

/// lim_{c→∞} G = min(q/β, 1) — the self-scaling ceiling.
[[nodiscard]] double offload_ceiling(double q_over_beta);

/// The paper's remark (footnote 3): at c = 1, G = 0.37·q/β — still a
/// non-trivial offload because arrivals are Poisson.
[[nodiscard]] double offload_at_unit_capacity(double q_over_beta);

}  // namespace cl
