#include "model/offload.h"

#include <algorithm>
#include <cmath>

#include "model/swarm_model.h"
#include "util/error.h"

namespace cl {

double offload_fraction(double capacity, double q_over_beta) {
  CL_EXPECTS(capacity >= 0);
  CL_EXPECTS(q_over_beta >= 0);
  if (capacity == 0) return 0.0;
  const double g = q_over_beta * expected_excess(capacity) / capacity;
  return std::min(g, 1.0);
}

double offload_small_capacity_slope(double q_over_beta) {
  CL_EXPECTS(q_over_beta >= 0);
  return q_over_beta / 2.0;
}

double offload_ceiling(double q_over_beta) {
  CL_EXPECTS(q_over_beta >= 0);
  return std::min(q_over_beta, 1.0);
}

double offload_at_unit_capacity(double q_over_beta) {
  return offload_fraction(1.0, q_over_beta);
}

}  // namespace cl
