#include "model/swarm_model.h"

#include <cmath>

#include "util/error.h"

namespace cl {

SwarmModel::SwarmModel(double capacity) : c_(capacity) {
  CL_EXPECTS(capacity >= 0);
}

SwarmModel SwarmModel::from_rate(Seconds mean_duration,
                                 double arrivals_per_second) {
  CL_EXPECTS(mean_duration.value() >= 0);
  CL_EXPECTS(arrivals_per_second >= 0);
  return SwarmModel(mean_duration.value() * arrivals_per_second);
}

double SwarmModel::p_online() const { return -std::expm1(-c_); }

double SwarmModel::occupancy_pmf(unsigned l) const {
  if (c_ == 0) return l == 0 ? 1.0 : 0.0;
  // exp(l·ln c − c − ln l!) in log space to avoid overflow for large l.
  const double log_p = static_cast<double>(l) * std::log(c_) - c_ -
                       std::lgamma(static_cast<double>(l) + 1.0);
  return std::exp(log_p);
}

double SwarmModel::expected_excess() const { return cl::expected_excess(c_); }

double SwarmModel::expected_excess_nonlocal(double p) const {
  return cl::expected_excess_nonlocal(p, c_);
}

double expected_excess(double c) {
  CL_EXPECTS(c >= 0);
  if (c < 1e-2) {
    // c − 1 + e^{-c} = c²/2 − c³/6 + c⁴/24 − c⁵/120 + …; the direct
    // expression cancels catastrophically for small c (all significant
    // digits lost below c ≈ 1e-8, and ~5 digits already at c = 1e-4).
    return c * c *
           (0.5 - c / 6.0 + c * c / 24.0 - c * c * c / 120.0);
  }
  return c + std::expm1(-c);
}

double expected_excess_nonlocal(double p, double c) {
  CL_EXPECTS(p >= 0 && p <= 1);
  CL_EXPECTS(c >= 0);
  if (p == 1.0) return 0.0;
  if (p == 0.0) return expected_excess(c);
  const double s = 1.0 - p;
  // (1 − e^{-c·s})/s via expm1 for stability when c·s is small.
  const double inner = c + std::expm1(-c * s) / s;
  // inner = c − (1−e^{-cs})/s suffers the same cancellation as
  // expected_excess for small c·s; switch to the series there.
  if (c * s < 1e-2) {
    const double cs = c * s;
    // 1−e^{-x} = x − x²/2 + x³/6 − …, so c − (1−e^{-cs})/s
    //          = c·(cs/2 − cs²/6 + cs³/24 − cs⁴/120 + …).
    return std::exp(-c * p) * c *
           (cs / 2.0 - cs * cs / 6.0 + cs * cs * cs / 24.0 -
            cs * cs * cs * cs / 120.0);
  }
  return std::exp(-c * p) * inner;
}

}  // namespace cl
