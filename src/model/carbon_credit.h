// carbon_credit.h — the carbon credit transfer scheme (paper Section V).
//
// When peers deliver a share G of the traffic, the CDN saves PUE·γs per
// offloaded bit on its servers. The scheme transfers that saving to the
// uploading users as carbon credits, against which the users' own increased
// modem consumption l·γm·(1+G) is netted (Eq. 13):
//
//   CCT = ( PUE·γs·G − l·γm·(1+G) ) / ( l·γm·(1+G) )
//
// CCT = −1 for a non-sharing user (their whole streaming footprint stands);
// CCT = 0 is carbon-neutral streaming; CCT > 0 is carbon-positive: the
// credits exceed the user's streaming footprint and can offset other
// emissions.
#pragma once

#include "energy/energy_params.h"
#include "util/units.h"

namespace cl {

/// Eq. 13 — normalised carbon credit transfer at offload fraction G ∈ [0,1].
[[nodiscard]] double cct_from_offload(double offload, const EnergyParams& p);

/// Offload fraction G* at which a user becomes carbon neutral (CCT = 0):
/// G* = l·γm / (PUE·γs − l·γm). Throws cl::InvalidArgument when the server
/// saving can never cover the modem cost (PUE·γs <= l·γm).
[[nodiscard]] double carbon_neutral_offload(const EnergyParams& p);

/// lim_{G→1} CCT = (PUE·γs − 2·l·γm)/(2·l·γm) — the paper's asymptotic
/// carbon positivity (+18 % Valancius, +58 % Baliga).
[[nodiscard]] double cct_ceiling(const EnergyParams& p);

/// Per-user carbon credit transfer (DESIGN.md §5.3): a user who downloaded
/// D bits and uploaded U bits earns credits for the server bits their
/// uploads displaced, netted against their own modem consumption:
///
///   CCT_u = ( PUE·γs·U − l·γm·(D + U) ) / ( l·γm·(D + U) )
///
/// Returns 0 (neutral) when the user moved no traffic at all.
[[nodiscard]] double per_user_cct(Bits downloaded, Bits uploaded,
                                  const EnergyParams& p);

/// Absolute (non-normalised) credit in nanojoules earned by uploading
/// `uploaded` bits: PUE·γs·U.
[[nodiscard]] Energy credit_energy(Bits uploaded, const EnergyParams& p);

/// Absolute user-side energy of downloading D and uploading U bits:
/// l·γm·(D + U).
[[nodiscard]] Energy user_energy(Bits downloaded, Bits uploaded,
                                 const EnergyParams& p);

}  // namespace cl
