// savings.h — the master energy-savings equation (paper Eq. 12) and the
// component curves of Fig. 5.
//
// End-to-end savings of the hybrid CDN over a pure-server CDN:
//
//   S(c) = G·(ψs − ψpᵐ)/ψs  −  (q/β)·PUE·W(c) / (c·ψs)
//
// where G is the offload fraction (Eq. 3), ψs / ψpᵐ the per-bit costs
// (Eqs. 4–6) and W(c) = E[γp2p(L)·(L−1)^+] the locality expectation
// (Eq. 10). S can be negative for tiny swarms: a lonely peer pays the
// double modem cost without a shorter path to show for it.
#pragma once

#include "energy/cost_functions.h"
#include "energy/energy_params.h"
#include "topology/isp_topology.h"
#include "util/units.h"

namespace cl {

/// Savings of each party, normalised as in Fig. 5: every component is
/// divided by that party's energy cost when peer assistance is disabled.
struct SavingsComponents {
  double end_to_end = 0;  ///< Eq. 12 — system-wide savings
  double cdn = 0;    ///< CDN + network side savings (positive, grows with c)
  double user = 0;   ///< user side savings (= −G, negative: modems work more)
  double carbon_credit_transfer = 0;  ///< Eq. 13 — users' net footprint
};

/// Evaluates the paper's analytical model for one energy-parameter column
/// and one ISP tree.
class SavingsModel {
 public:
  SavingsModel(EnergyParams params, LocalisationProbabilities localisation);

  /// Convenience: model for an explicit topology.
  SavingsModel(EnergyParams params, const IspTopology& topology);

  [[nodiscard]] const EnergyParams& params() const;
  [[nodiscard]] const CostFunctions& costs() const { return costs_; }
  [[nodiscard]] const LocalisationProbabilities& localisation() const {
    return localisation_;
  }

  /// G — offload fraction at capacity c (Eq. 3). `q_over_beta` > 1 is
  /// clamped to 1 (a peer cannot deliver more than the stream consumes).
  [[nodiscard]] double offload(double capacity, double q_over_beta) const;

  /// S — end-to-end savings (Eq. 12). Negative values mean the hybrid
  /// system consumes more energy than the pure CDN.
  [[nodiscard]] double savings(double capacity, double q_over_beta) const;

  /// Asymptotic savings lim_{c→∞} S: offload at its ceiling and all peer
  /// traffic localised within exchange points.
  [[nodiscard]] double savings_ceiling(double q_over_beta) const;

  /// W(c)/A(c) — expected per-bit γp2p over peer-delivered traffic;
  /// γexp <= result <= γcore, decreasing in c.
  [[nodiscard]] EnergyPerBit mean_peer_gamma(double capacity) const;

  /// All Fig. 5 curves at one capacity.
  [[nodiscard]] SavingsComponents components(double capacity,
                                             double q_over_beta) const;

 private:
  CostFunctions costs_;
  LocalisationProbabilities localisation_;
};

}  // namespace cl
