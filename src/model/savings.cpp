#include "model/savings.h"

#include <algorithm>
#include <cmath>

#include "model/carbon_credit.h"
#include "model/localisation.h"
#include "model/offload.h"
#include "model/swarm_model.h"
#include "util/error.h"

namespace cl {

SavingsModel::SavingsModel(EnergyParams params,
                           LocalisationProbabilities localisation)
    : costs_(std::move(params)), localisation_(localisation) {
  CL_EXPECTS(localisation_.exp > 0 && localisation_.exp <= 1);
  CL_EXPECTS(localisation_.pop > 0 && localisation_.pop <= 1);
  CL_EXPECTS(localisation_.core == 1.0);
  CL_EXPECTS(localisation_.exp <= localisation_.pop);
}

SavingsModel::SavingsModel(EnergyParams params, const IspTopology& topology)
    : SavingsModel(std::move(params), topology.localisation()) {}

const EnergyParams& SavingsModel::params() const { return costs_.params(); }

double SavingsModel::offload(double capacity, double q_over_beta) const {
  return offload_fraction(capacity, std::min(q_over_beta, 1.0));
}

double SavingsModel::savings(double capacity, double q_over_beta) const {
  CL_EXPECTS(capacity >= 0);
  CL_EXPECTS(q_over_beta >= 0);
  if (capacity == 0) return 0.0;
  const double rho = std::min(q_over_beta, 1.0);
  const double psi_s = costs_.psi_server().value();
  const double psi_pm = costs_.psi_peer_modem().value();
  const double g = offload_fraction(capacity, rho);
  const double w =
      expected_weighted_gamma(params(), localisation_, capacity);
  return g * (psi_s - psi_pm) / psi_s -
         rho * params().pue * w / (capacity * psi_s);
}

double SavingsModel::savings_ceiling(double q_over_beta) const {
  const double rho = std::min(q_over_beta, 1.0);
  const double psi_s = costs_.psi_server().value();
  const double psi_pm = costs_.psi_peer_modem().value();
  const double gamma_exp =
      params().gamma_p2p_at(LocalityLevel::kExchangePoint).value();
  return rho * ((psi_s - psi_pm) / psi_s -
                params().pue * gamma_exp / psi_s);
}

EnergyPerBit SavingsModel::mean_peer_gamma(double capacity) const {
  const double a = expected_excess(capacity);
  if (a <= 0) {
    return params().gamma_p2p_at(LocalityLevel::kCore);
  }
  return EnergyPerBit{
      expected_weighted_gamma(params(), localisation_, capacity) / a};
}

SavingsComponents SavingsModel::components(double capacity,
                                           double q_over_beta) const {
  SavingsComponents out;
  const double g = offload(capacity, q_over_beta);
  out.end_to_end = savings(capacity, q_over_beta);
  // CDN + network side: server bits shrink by G; the P2P replacement still
  // burns PUE·γ̄p2p per offloaded bit on shared network equipment.
  const double cdn_per_bit = costs_.cdn_side_per_bit().value();
  const double p2p_per_bit =
      params().pue * mean_peer_gamma(capacity).value();
  out.cdn = g * (1.0 - p2p_per_bit / cdn_per_bit);
  // User side: modems additionally upload every offloaded bit.
  out.user = -g;
  out.carbon_credit_transfer = cct_from_offload(g, params());
  return out;
}

}  // namespace cl
