// split_swarm.h — closed-form model for *partitioned* swarms.
//
// The paper's Eq. 12 describes one homogeneous swarm of capacity c. The
// simulated system, however, splits each content item's audience by ISP
// (market shares) and by bitrate class (device mix): a content item of
// capacity c really runs as a family of independent sub-swarms with
// capacities c·w_i. Because S(c) is concave, the partitioned system saves
// *less* than Eq. 12 at the whole-item capacity — this module provides the
// exact partitioned closed form, which is what the simulator should (and
// does) match.
#pragma once

#include <vector>

#include "model/savings.h"
#include "topology/placement.h"
#include "trace/bitrate.h"

namespace cl {

/// One sub-swarm slice of a content item's audience.
struct SwarmSlice {
  double weight = 0;    ///< fraction of the item's *capacity* (viewers)
  std::size_t isp = 0;  ///< which ISP tree localises this slice
  /// Fraction of the item's *traffic volume*. Differs from `weight` when
  /// slices stream at different bitrates (volume ∝ viewers × β). Defaults
  /// to `weight` when <= 0.
  double volume_weight = 0;
};

/// Closed-form savings/offload for a content item partitioned into
/// sub-swarms (by ISP market share × bitrate mix).
class SplitSwarmModel {
 public:
  /// `slices` weights must be positive and sum to ~1 (normalised on
  /// construction). One SavingsModel per distinct ISP is built from
  /// `params` and `metro`'s trees. `metro` must outlive the model.
  SplitSwarmModel(EnergyParams params, const Metro& metro,
                  std::vector<SwarmSlice> slices);

  /// The paper's partition: ISP market shares × a bitrate-class mix.
  [[nodiscard]] static SplitSwarmModel isp_bitrate_partition(
      EnergyParams params, const Metro& metro,
      const std::array<double, kBitrateClasses>& bitrate_mix);

  /// Traffic-weighted savings of the partitioned item at whole-item
  /// capacity c: Σ w_i · S_isp(i)(c·w_i, q/β).
  [[nodiscard]] double savings(double item_capacity, double q_over_beta) const;

  /// Traffic-weighted offload fraction of the partitioned item.
  [[nodiscard]] double offload(double item_capacity, double q_over_beta) const;

  /// The homogeneous upper bound (Eq. 12 at the whole-item capacity,
  /// using the first slice's ISP tree).
  [[nodiscard]] double unsplit_savings(double item_capacity,
                                       double q_over_beta) const;

  /// Relative savings lost to partitioning at this capacity:
  /// 1 − split/unsplit (0 when unsplit savings are 0).
  [[nodiscard]] double partition_penalty(double item_capacity,
                                         double q_over_beta) const;

  [[nodiscard]] const std::vector<SwarmSlice>& slices() const {
    return slices_;
  }

 private:
  std::vector<SwarmSlice> slices_;
  std::vector<SavingsModel> per_isp_;  ///< indexed by ISP id
};

}  // namespace cl
