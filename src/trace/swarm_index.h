// swarm_index.h — building and validating the swarm-key-sorted session
// index of a trace (the SwarmIndex struct itself lives in
// trace/session.h, as part of the Trace data model).
//
// The simulator partitions sessions into swarms keyed by
// (content, ISP, bitrate class) — the paper's ISP-friendly, bitrate-split
// setting. Grouping 23.5M sessions through a hash map on every run is
// pure overhead when the trace is immutable on disk, so the binary trace
// format (trace/trace_binary.h) persists this index next to the columns:
// one permutation of session indices, grouped by swarm key in ascending
// key order, ascending session index within each group — exactly the
// deterministic sweep order HybridSimulator::run derives itself. A loaded
// index lets the simulator skip the grouping pass entirely.
//
// Key order: groups sort lexicographically by (content, isp, bitrate),
// which equals the ascending SwarmKey::packed() order for every real
// topology (packed() masks the ISP to 24 bits; ISP indices are tiny).
#pragma once

#include <cstdint>

#include "trace/session.h"

namespace cl {

/// Packs a full (content, isp, bitrate) key into the same 64-bit layout
/// as sim/swarm_key.h's SwarmKey::packed() — pinned by a test so the two
/// layers cannot drift apart.
[[nodiscard]] constexpr std::uint64_t packed_swarm_key(std::uint32_t content,
                                                       std::uint32_t isp,
                                                       std::uint8_t bitrate) {
  return (static_cast<std::uint64_t>(content) << 32) |
         (static_cast<std::uint64_t>(isp & 0xffffffu) << 8) |
         static_cast<std::uint64_t>(bitrate);
}

/// Builds the full-key swarm index of a trace. Requires
/// trace.sessions.size() to fit std::uint32_t (the index element width).
[[nodiscard]] SwarmIndex build_swarm_index(const Trace& trace);

/// Verifies that `index` is a correct swarm index of `trace`: the order
/// vector is a permutation of [0, n) whose groups cover it exactly, group
/// keys are strictly ascending, session indices ascend within each group,
/// and every indexed session's fields match its group key. Throws
/// cl::ParseError on any violation (the caller is typically validating
/// untrusted on-disk data).
void validate_swarm_index(const SwarmIndex& index, const Trace& trace);

}  // namespace cl
