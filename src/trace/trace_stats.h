// trace_stats.h — descriptive statistics of a workload trace (Table I).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "trace/bitrate.h"
#include "trace/session.h"
#include "util/units.h"

namespace cl {

/// Table-I-style description of one trace (plus per-ISP / per-bitrate
/// partitions used by later experiments).
struct TraceStats {
  std::uint64_t sessions = 0;
  std::uint64_t distinct_users = 0;
  std::uint64_t distinct_households = 0;  ///< "IP addresses" in Table I
  std::uint64_t distinct_contents = 0;
  Seconds total_watch_time;
  Bits total_volume;
  Seconds mean_session_duration;

  std::vector<std::uint64_t> sessions_per_isp;
  std::array<std::uint64_t, kBitrateClasses> sessions_per_bitrate{};

  /// Mean concurrent viewers over the span (Little's law on the whole
  /// system): total watch time / span.
  double mean_concurrency = 0;
};

/// Computes TraceStats in one pass.
[[nodiscard]] TraceStats compute_stats(const Trace& trace);

/// Views per content id (index = content id); used for popularity CCDFs.
[[nodiscard]] std::vector<std::uint64_t> views_per_content(const Trace& trace);

}  // namespace cl
