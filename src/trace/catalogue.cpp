#include "trace/catalogue.h"

#include <cmath>

#include "util/error.h"

namespace cl {

namespace {

/// Deterministic realistic programme-length mix: 10 min shorts, 30 min
/// episodes (most TV), 60 min programmes.
Seconds nominal_length_for(std::size_t id) {
  switch (id % 5) {
    case 0:
    case 1:
      return Seconds::from_minutes(30);
    case 2:
      return Seconds::from_minutes(60);
    case 3:
      return Seconds::from_minutes(30);
    default:
      return Seconds::from_minutes(10);
  }
}

std::vector<double> build_weights(const std::vector<double>& exemplar_views,
                                  std::size_t tail_size,
                                  double total_tail_views,
                                  double zipf_exponent) {
  CL_EXPECTS(tail_size >= 1);
  CL_EXPECTS(total_tail_views >= 0);
  CL_EXPECTS(zipf_exponent >= 0);
  std::vector<double> w;
  w.reserve(exemplar_views.size() + tail_size);
  for (double v : exemplar_views) {
    CL_EXPECTS(v > 0);
    w.push_back(v);
  }
  double h = 0;
  for (std::size_t k = 0; k < tail_size; ++k) {
    h += 1.0 / std::pow(static_cast<double>(k + 1), zipf_exponent);
  }
  for (std::size_t k = 0; k < tail_size; ++k) {
    w.push_back(total_tail_views / std::pow(static_cast<double>(k + 1),
                                            zipf_exponent) / h);
  }
  return w;
}

}  // namespace

Catalogue::Catalogue(std::vector<double> exemplar_views, std::size_t tail_size,
                     double total_tail_views, double zipf_exponent)
    : exemplars_(exemplar_views.size()), total_views_(0),
      sampler_(build_weights(exemplar_views, tail_size, total_tail_views,
                             zipf_exponent)) {
  const auto weights = build_weights(exemplar_views, tail_size,
                                     total_tail_views, zipf_exponent);
  items_.reserve(weights.size());
  for (std::size_t id = 0; id < weights.size(); ++id) {
    ContentInfo info;
    info.id = static_cast<std::uint32_t>(id);
    info.nominal_length = nominal_length_for(id);
    info.expected_views_per_month = weights[id];
    total_views_ += weights[id];
    items_.push_back(info);
  }
}

const ContentInfo& Catalogue::item(std::size_t id) const {
  CL_EXPECTS(id < items_.size());
  return items_[id];
}

std::uint32_t Catalogue::sample(Rng& rng) const {
  return static_cast<std::uint32_t>(sampler_(rng));
}

}  // namespace cl
