// synthetic.h — calibrated synthetic workload generator.
//
// Substitute for the proprietary BBC iPlayer trace (see DESIGN.md §2). The
// paper's results depend on the trace only through per-swarm arrival rates
// and durations, catalogue popularity skew, and the ISP/bitrate partition —
// all of which this generator controls directly:
//
//  * catalogue: pinned exemplar items (Fig. 2's ~100 K / ~10 K / ~1 K views
//    per month) + a Zipf tail (Fig. 3's head/tail skew);
//  * arrivals: per-content Poisson processes modulated by a TV-like
//    diurnal profile (evening peak);
//  * users: ISP by market share, uniform exchange-point placement,
//    log-normally skewed per-user activity, shared-IP households;
//  * sessions: device-driven bitrate mix (modal 1.5 Mbps), watch time as a
//    truncated log-normal fraction of the programme length.
//
// Everything is driven by one seed; identical configs produce identical
// traces on every platform.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "topology/placement.h"
#include "trace/bitrate.h"
#include "trace/catalogue.h"
#include "trace/session.h"
#include "util/rng.h"

namespace cl {

/// All knobs of the synthetic workload.
struct TraceConfig {
  std::uint64_t seed = 20130901;  ///< master seed (epoch of the paper trace)
  double days = 30;               ///< trace span in days

  /// Registry name of the metro the workload should be placed on
  /// (topology/metro_registry.h). Advisory: TraceGenerator takes the
  /// actual Metro by reference and stamps *its* name into the trace;
  /// callers (CLI, benches) resolve this field through the registry
  /// before constructing the generator.
  std::string metro = "london_top5";

  /// Worker threads for generate(): content items are sharded across
  /// workers, each with its own deterministic per-content RNG stream, and
  /// recombined in content-id order — the resulting trace is bit-identical
  /// for every thread count. 0 = all hardware threads.
  unsigned threads = 1;

  std::uint32_t users = 60000;     ///< population (scaled-down London)
  double households_ratio = 0.45;  ///< IP addresses per user (Table I)
  double user_activity_sigma = 1.0;  ///< log-normal skew of per-user demand

  /// Taste heterogeneity: each user gets a mainstreamness m ~ U(0,1);
  /// head-content sessions pick users with weight ∝ activity·m^skew and
  /// tail sessions with weight ∝ activity·(1−m)^skew. 0 disables (every
  /// user then has the same expected popularity mix). This is what makes
  /// the per-user carbon distribution of Fig. 6 bimodal: mainstream
  /// viewers live in large swarms, niche viewers don't.
  double taste_skew = 2.0;

  /// Pinned monthly view counts for exemplar items (ids 0..k-1); defaults
  /// to the paper's popular / medium / unpopular tiers.
  std::vector<double> exemplar_views{100000, 10000, 1000};
  std::size_t catalogue_tail = 8000;  ///< number of Zipf-tail items
  double tail_views = 300000;         ///< monthly views over the tail
  double zipf_exponent = 0.9;         ///< tail popularity skew

  /// Device mix over bitrate classes (mobile/sd/hd/fullhd); the SD class is
  /// modal as in the paper.
  std::array<double, kBitrateClasses> bitrate_mix{0.25, 0.40, 0.25, 0.10};

  /// Mean fraction of the programme length a session watches, and the
  /// log-normal sigma of that fraction (truncated to [0.05, 1]).
  double watch_mean_fraction = 0.7;
  double watch_sigma = 0.5;

  /// Hourly arrival-rate weights (local time); defaults to a catch-up-TV
  /// evening-peaked profile.
  std::array<double, 24> diurnal = default_diurnal();

  [[nodiscard]] static std::array<double, 24> default_diurnal();

  /// The calibrated scaled-down London month used by the aggregate
  /// experiments (Figs. 3, 4, 6 and the Table I bench).
  ///
  /// Calibration targets (see EXPERIMENTS.md):
  ///  * contents 0..2 are the Fig. 2 exemplars (100 K / 10 K / 1 K monthly
  ///    views, as in the paper);
  ///  * contents 3..30 form the "top episodes" head — a geometric ladder
  ///    from 300 K views (the BBC workload concentrates most traffic in a
  ///    few hundred popular episodes), followed by a 500-item mid/long
  ///    tail;
  ///  * the bitrate mix concentrates on the 1.5 Mbps modal rate the paper
  ///    reports for BBC iPlayer (72 % of sessions);
  ///  * with these, the simulated daily aggregate savings of the largest
  ///    ISP land in the paper's Fig. 4 band (~0.27 Valancius, ~0.18
  ///    Baliga).
  [[nodiscard]] static TraceConfig london_month_scaled(double days = 30);

  /// The full 1:1 paper-scale London month: 3.3 M users, ~23.5 M sessions
  /// (Table I). The Fig. 2 exemplars and the top-episode head keep the
  /// same absolute monthly views as the scaled config — per-swarm
  /// capacities, not the population, carry the savings results — while
  /// the long tail grows to the full catalogue's breadth so the session
  /// total matches the paper. Generate once with `cl generate --preset
  /// paper --format binary` and reload the .cltrace in seconds; see
  /// ROADMAP "Paper-scale workload".
  [[nodiscard]] static TraceConfig london_month_paper(double days = 30);

  /// Trace span in seconds.
  [[nodiscard]] Seconds span() const { return Seconds::from_days(days); }
};

/// Static profile of one generated user.
struct UserProfile {
  std::uint32_t household = 0;
  std::uint32_t isp = 0;
  std::uint32_t exp = 0;
  double activity = 1.0;    ///< relative demand weight
  double mainstream = 0.5;  ///< taste position: 1 = head-only, 0 = niche
};

/// Generates traces from a TraceConfig over a Metro's ISP topologies.
class TraceGenerator {
 public:
  TraceGenerator(TraceConfig config, const Metro& metro);

  /// Generates the full trace (sessions sorted by start time).
  [[nodiscard]] Trace generate();

  /// Generates only the sessions of one content item — cheaper when an
  /// experiment (Fig. 2) needs a single swarm.
  [[nodiscard]] Trace generate_content(std::uint32_t content_id);

  [[nodiscard]] const TraceConfig& config() const { return config_; }
  [[nodiscard]] const Catalogue& catalogue() const { return catalogue_; }
  [[nodiscard]] const std::vector<UserProfile>& users() const {
    return users_;
  }

 private:
  void append_content_sessions(std::uint32_t content_id, Rng& rng,
                               std::vector<SessionRecord>& out) const;

  TraceConfig config_;
  const Metro* metro_;
  Catalogue catalogue_;
  std::vector<UserProfile> users_;
  DiscreteSampler head_user_sampler_;  ///< for head (exemplar) contents
  DiscreteSampler tail_user_sampler_;  ///< for tail contents
  DiscreteSampler hour_sampler_;
  DiscreteSampler bitrate_sampler_;
};

}  // namespace cl
