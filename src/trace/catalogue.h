// catalogue.h — the content catalogue and its popularity model.
//
// A catch-up TV catalogue is a few very popular items plus a long tail
// (paper Fig. 3 left). We model per-item monthly demand as a Zipf law over
// the tail, optionally prepended with explicit "exemplar" items whose view
// counts are pinned — the paper's Fig. 2 studies three such exemplars
// (~100 K, ~10 K and ~1 K views per month).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/units.h"

namespace cl {

/// Static description of one content item.
struct ContentInfo {
  std::uint32_t id = 0;
  Seconds nominal_length;  ///< full programme length
  double expected_views_per_month = 0;  ///< demand calibration target
};

/// The full catalogue plus a sampler over items weighted by popularity.
class Catalogue {
 public:
  /// Builds a catalogue of `tail_size` Zipf-popular items, preceded by one
  /// pinned item per entry of `exemplar_views` (ids 0..k-1).
  ///
  /// `total_tail_views` is the monthly demand spread over the tail;
  /// programme lengths cycle deterministically over a realistic mix of
  /// 10-minute shorts, 30-minute episodes and 60-minute programmes.
  Catalogue(std::vector<double> exemplar_views, std::size_t tail_size,
            double total_tail_views, double zipf_exponent);

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] std::size_t exemplar_count() const { return exemplars_; }
  [[nodiscard]] const ContentInfo& item(std::size_t id) const;

  /// Sum of expected monthly views over the whole catalogue.
  [[nodiscard]] double total_views() const { return total_views_; }

  /// Samples one content id according to popularity.
  [[nodiscard]] std::uint32_t sample(Rng& rng) const;

 private:
  std::vector<ContentInfo> items_;
  std::size_t exemplars_;
  double total_views_;
  DiscreteSampler sampler_;
};

}  // namespace cl
