#include "trace/trace_mmap.h"

#include <cstring>
#include <limits>

#include "trace/bitrate.h"
#include "trace/swarm_index.h"
#include "trace/trace_binary.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/serialize.h"

namespace cl {

namespace {

// Layout constants are shared with the writer via trace_binary.h
// (kTraceBinaryHeaderBytes, kTraceBinaryDirEntryBytes,
// kTraceBinaryElemSize, kTraceBinaryCountIsSessions) — the two sides
// cannot drift apart.

[[noreturn]] void corrupt(const std::string& what) {
  throw ParseError("corrupt .cltrace file: " + what);
}

}  // namespace

MappedTrace::MappedTrace(const std::string& path) : file_(path) {
  if (file_.size() < kTraceBinaryHeaderBytes) {
    corrupt("shorter than the fixed header (" + std::to_string(file_.size()) +
            " bytes)");
  }
  const unsigned char* p = file_.data();
  if (std::memcmp(p, kTraceBinaryMagic, sizeof kTraceBinaryMagic) != 0) {
    corrupt("bad magic (not a .cltrace file)");
  }
  version_ = load_u32_le(p + 8);
  if (version_ < kTraceBinaryLegacyVersion || version_ > kTraceBinaryVersion) {
    corrupt("unsupported format version " + std::to_string(version_) +
            " (this build reads versions " +
            std::to_string(kTraceBinaryLegacyVersion) + ".." +
            std::to_string(kTraceBinaryVersion) + ")");
  }
  // Legacy v1 files predate the metro-name block: 13 blocks, metro empty.
  const std::uint32_t expected_blocks = version_ == kTraceBinaryLegacyVersion
                                            ? kTraceBinaryBlockCountV1
                                            : kTraceBinaryBlockCount;
  const std::uint64_t n = load_u64_le(p + 16);
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    corrupt("session count exceeds the 32-bit index space");
  }
  sessions_ = static_cast<std::size_t>(n);
  span_ = Seconds{load_f64_le(p + 24)};
  const std::uint32_t blocks = load_u32_le(p + 32);
  if (blocks != expected_blocks) {
    corrupt("expected " + std::to_string(expected_blocks) +
            " blocks for version " + std::to_string(version_) +
            ", directory lists " + std::to_string(blocks));
  }
  const std::size_t directory_end =
      kTraceBinaryHeaderBytes +
      static_cast<std::size_t>(blocks) * kTraceBinaryDirEntryBytes;
  if (file_.size() < directory_end) {
    corrupt("truncated block directory");
  }

  bool seen[kTraceBinaryBlockCount] = {};
  std::uint64_t group_count = 0;
  bool groups_set = false;
  std::uint64_t expected_end = directory_end;
  for (std::uint32_t b = 0; b < blocks; ++b) {
    const unsigned char* entry =
        p + kTraceBinaryHeaderBytes + b * kTraceBinaryDirEntryBytes;
    const std::uint32_t id = load_u32_le(entry);
    const std::uint32_t elem = load_u32_le(entry + 4);
    const std::uint64_t offset = load_u64_le(entry + 8);
    const std::uint64_t count = load_u64_le(entry + 16);
    if (id >= expected_blocks) {
      corrupt("unknown block id " + std::to_string(id) + " for version " +
              std::to_string(version_));
    }
    if (seen[id]) corrupt("duplicate block id " + std::to_string(id));
    seen[id] = true;
    if (elem != kTraceBinaryElemSize[id]) {
      corrupt("block " + std::to_string(id) + " has element size " +
              std::to_string(elem) + ", expected " +
              std::to_string(kTraceBinaryElemSize[id]));
    }
    switch (kTraceBinaryCountKind[id]) {
      case TraceBlockCountKind::kSessions:
        if (count != n) {
          corrupt("block " + std::to_string(id) + " holds " +
                  std::to_string(count) + " elements, expected the session "
                  "count " + std::to_string(n));
        }
        break;
      case TraceBlockCountKind::kGroups:
        if (groups_set && count != group_count) {
          corrupt("index group blocks disagree on the group count");
        }
        group_count = count;
        groups_set = true;
        break;
      case TraceBlockCountKind::kMetroName:
        if (count > kTraceMetroNameMaxBytes) {
          corrupt("metro name block exceeds " +
                  std::to_string(kTraceMetroNameMaxBytes) + " bytes");
        }
        metro_bytes_ = static_cast<std::size_t>(count);
        break;
    }
    const std::uint64_t bytes = count * elem;
    if (offset < directory_end || offset + bytes < offset ||
        offset + bytes > file_.size()) {
      corrupt("block " + std::to_string(id) +
              " extends past the end of the file (truncated column block?)");
    }
    offsets_[id] = offset;
    if (offset + bytes > expected_end) expected_end = offset + bytes;
  }
  // `seen` has no gaps below expected_blocks here: that many entries with
  // ids < expected_blocks and no duplicates pigeonhole into one of each.
  groups_ = static_cast<std::size_t>(group_count);
  if (groups_ > sessions_) {
    corrupt("more swarm-index groups than sessions");
  }
  if (expected_end != file_.size()) {
    corrupt("trailing bytes after the last column block");
  }
}

const unsigned char* MappedTrace::block(std::size_t id) const {
  return file_.data() + offsets_[id];
}

std::string MappedTrace::metro_name() const {
  if (metro_bytes_ == 0) return {};
  std::string name(reinterpret_cast<const char*>(block(kTraceBinaryMetroBlockId)),
                   metro_bytes_);
  if (!valid_trace_metro_name(name)) {
    corrupt("metro name block contains control characters");
  }
  return name;
}

SessionRecord MappedTrace::session(std::size_t i) const {
  CL_EXPECTS(i < sessions_);
  SessionRecord s;
  s.user = load_u32_le(block(0) + 4 * i);
  s.household = load_u32_le(block(1) + 4 * i);
  s.content = load_u32_le(block(2) + 4 * i);
  s.isp = load_u32_le(block(3) + 4 * i);
  s.exp = load_u32_le(block(4) + 4 * i);
  s.bitrate = static_cast<BitrateClass>(block(5)[i]);
  s.start = load_f64_le(block(6) + 8 * i);
  s.duration = load_f64_le(block(7) + 8 * i);
  return s;
}

Trace MappedTrace::to_trace(unsigned threads) const {
  Trace trace;
  trace.span = span_;
  trace.metro_name = metro_name();
  trace.sessions.resize(sessions_);
  const unsigned char* user = block(0);
  const unsigned char* household = block(1);
  const unsigned char* content = block(2);
  const unsigned char* isp = block(3);
  const unsigned char* exp = block(4);
  const unsigned char* bitrate = block(5);
  const unsigned char* start = block(6);
  const unsigned char* duration = block(7);
  parallel_shards(sessions_, threads,
                  [&](unsigned, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                      SessionRecord& s = trace.sessions[i];
                      s.user = load_u32_le(user + 4 * i);
                      s.household = load_u32_le(household + 4 * i);
                      s.content = load_u32_le(content + 4 * i);
                      s.isp = load_u32_le(isp + 4 * i);
                      s.exp = load_u32_le(exp + 4 * i);
                      if (bitrate[i] >= kBitrateClasses) {
                        throw ParseError(
                            "corrupt .cltrace file: bitrate class out of "
                            "range: " + std::to_string(bitrate[i]));
                      }
                      s.bitrate = static_cast<BitrateClass>(bitrate[i]);
                      s.start = load_f64_le(start + 8 * i);
                      s.duration = load_f64_le(duration + 8 * i);
                    }
                  });

  trace.swarm_index.groups.resize(groups_);
  const unsigned char* g_content = block(8);
  const unsigned char* g_isp = block(9);
  const unsigned char* g_bitrate = block(10);
  const unsigned char* g_count = block(11);
  std::uint64_t begin = 0;
  for (std::size_t g = 0; g < groups_; ++g) {
    SwarmIndexGroup& group = trace.swarm_index.groups[g];
    group.content = load_u32_le(g_content + 4 * g);
    group.isp = load_u32_le(g_isp + 4 * g);
    group.bitrate = g_bitrate[g];
    group.count = load_u64_le(g_count + 8 * g);
    group.begin = begin;
    if (group.count > sessions_ - begin) {
      throw ParseError(
          "corrupt .cltrace file: swarm index group counts overflow the "
          "session count");
    }
    begin += group.count;
  }
  trace.swarm_index.order.resize(sessions_);
  const unsigned char* order = block(12);
  parallel_shards(sessions_, threads,
                  [&](unsigned, std::size_t range_begin, std::size_t end) {
                    for (std::size_t i = range_begin; i < end; ++i) {
                      trace.swarm_index.order[i] = load_u32_le(order + 4 * i);
                    }
                  });
  validate_swarm_index(trace.swarm_index, trace);

  // The same invariants the CSV reader enforces (ordering, non-negative
  // durations, sessions inside the span) — surfaced as ParseError since
  // the data came from an untrusted file, not a caller bug.
  try {
    trace.validate();
  } catch (const InvalidArgument& e) {
    throw ParseError(std::string("corrupt .cltrace file: ") + e.what());
  }
  return trace;
}

Trace read_trace_binary_file(const std::string& path, unsigned threads) {
  return MappedTrace(path).to_trace(threads);
}

}  // namespace cl
