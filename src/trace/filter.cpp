#include "trace/filter.h"

namespace cl {

Trace filter_trace(const Trace& trace,
                   const std::function<bool(const SessionRecord&)>& keep) {
  Trace out;
  out.span = trace.span;
  out.metro_name = trace.metro_name;  // a subset lives in the same metro
  for (const auto& s : trace.sessions) {
    if (keep(s)) out.sessions.push_back(s);
  }
  return out;
}

Trace filter_by_isp(const Trace& trace, std::uint32_t isp) {
  return filter_trace(trace,
                      [isp](const SessionRecord& s) { return s.isp == isp; });
}

Trace filter_by_content(const Trace& trace, std::uint32_t content) {
  return filter_trace(trace, [content](const SessionRecord& s) {
    return s.content == content;
  });
}

Trace filter_by_bitrate(const Trace& trace, BitrateClass c) {
  return filter_trace(
      trace, [c](const SessionRecord& s) { return s.bitrate == c; });
}

Trace filter_by_start_window(const Trace& trace, Seconds from, Seconds to) {
  return filter_trace(trace, [from, to](const SessionRecord& s) {
    return s.start >= from.value() && s.start < to.value();
  });
}

}  // namespace cl
