#include "trace/trace_format.h"

#include <cstring>
#include <fstream>
#include <string_view>

#include "trace/trace_binary.h"
#include "trace/trace_io.h"
#include "trace/trace_mmap.h"
#include "util/error.h"

namespace cl {

TraceFormat trace_format_from_string(const std::string& name) {
  if (name == "auto") return TraceFormat::kAuto;
  if (name == "csv") return TraceFormat::kCsv;
  if (name == "binary" || name == "cltrace") return TraceFormat::kBinary;
  throw ParseError("unknown trace format '" + name + "' (auto|csv|binary)");
}

bool sniff_trace_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open trace file: " + path);
  char head[sizeof kTraceBinaryMagic] = {};
  in.read(head, sizeof head);
  return in.gcount() == static_cast<std::streamsize>(sizeof head) &&
         std::memcmp(head, kTraceBinaryMagic, sizeof head) == 0;
}

bool has_binary_trace_extension(const std::string& path) {
  constexpr std::string_view ext = ".cltrace";
  return path.size() >= ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

Trace read_trace_any(const std::string& path, TraceFormat format,
                     unsigned threads) {
  if (format == TraceFormat::kAuto) {
    format = sniff_trace_binary(path) ? TraceFormat::kBinary
                                      : TraceFormat::kCsv;
  }
  return format == TraceFormat::kBinary
             ? read_trace_binary_file(path, threads)
             : read_trace_file(path);
}

void write_trace_any(const std::string& path, const Trace& trace,
                     TraceFormat format) {
  if (format == TraceFormat::kAuto) {
    format = has_binary_trace_extension(path) ? TraceFormat::kBinary
                                              : TraceFormat::kCsv;
  }
  if (format == TraceFormat::kBinary) {
    write_trace_binary_file(path, trace);
  } else {
    write_trace_file(path, trace);
  }
}

}  // namespace cl
