// trace_io.h — CSV serialisation of traces.
//
// The on-disk format is one session per row:
//   user,household,content,isp,exp,bitrate,start,duration
// with bitrate as a class name ("mobile"/"sd"/"hd"/"fullhd") and times in
// seconds from the trace epoch. A real (anonymised) platform trace mapped
// to these columns can be substituted for the synthetic workload.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/session.h"

namespace cl {

/// Writes a trace as CSV. The header row carries a `#span=<seconds>`
/// comment line first so the span round-trips.
void write_trace(std::ostream& out, const Trace& trace);

/// Writes a trace to a file; throws cl::IoError when the file cannot be
/// created.
void write_trace_file(const std::string& path, const Trace& trace);

/// Reads a trace produced by write_trace (or any CSV with the same
/// columns). Sessions are re-sorted by start time; the span is taken from
/// the `#span=` comment when present, otherwise from the latest session
/// end. Throws cl::ParseError on malformed input.
[[nodiscard]] Trace read_trace(std::istream& in);

/// Reads a trace from a file; throws cl::IoError when the file is missing.
[[nodiscard]] Trace read_trace_file(const std::string& path);

}  // namespace cl
