// filter.h — trace slicing helpers.
//
// The paper's analyses repeatedly slice the workload: per ISP (ISP-friendly
// swarms), per content (Fig. 2's exemplars), per day (Fig. 4), per bitrate
// class. All filters preserve the original span so capacity measurements
// stay comparable.
#pragma once

#include <cstdint>
#include <functional>

#include "trace/bitrate.h"
#include "trace/session.h"

namespace cl {

/// Generic filter: keeps sessions for which `keep` returns true.
[[nodiscard]] Trace filter_trace(
    const Trace& trace, const std::function<bool(const SessionRecord&)>& keep);

/// Sessions of one ISP.
[[nodiscard]] Trace filter_by_isp(const Trace& trace, std::uint32_t isp);

/// Sessions of one content item.
[[nodiscard]] Trace filter_by_content(const Trace& trace,
                                      std::uint32_t content);

/// Sessions of one bitrate class.
[[nodiscard]] Trace filter_by_bitrate(const Trace& trace, BitrateClass c);

/// Sessions *starting* within [from, to) seconds of the epoch.
[[nodiscard]] Trace filter_by_start_window(const Trace& trace, Seconds from,
                                           Seconds to);

}  // namespace cl
