#include "trace/trace_view.h"

#include <bit>
#include <cstdint>
#include <utility>

#include "trace/bitrate.h"
#include "trace/trace_binary.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/serialize.h"

namespace cl {

namespace {

[[noreturn]] void corrupt(const std::string& what) {
  throw ParseError("corrupt .cltrace file: " + what);
}

template <typename T>
bool aligned_for(const unsigned char* p) {
  return reinterpret_cast<std::uintptr_t>(p) % alignof(T) == 0;
}

/// True when the mapped payload blocks can be aliased as typed columns:
/// the host is little-endian (the on-disk byte order) and every
/// fixed-width block pointer is naturally aligned (guaranteed in
/// practice: blocks are 64-byte aligned within the file and the mapping
/// is at least page/16-byte aligned — this is the check, not the hope).
bool can_alias_columns(const MappedTrace& m) {
  if constexpr (std::endian::native != std::endian::little) {
    return false;
  }
  for (const std::size_t id : {0u, 1u, 2u, 3u, 4u, 12u}) {
    if (!aligned_for<std::uint32_t>(m.raw_block(id))) return false;
  }
  for (const std::size_t id : {6u, 7u}) {
    if (!aligned_for<double>(m.raw_block(id))) return false;
  }
  return true;
}

}  // namespace

/// Owned SoA backing: one vector per session column plus the index
/// order. Engaged by from_trace and by the from_mapped fallback.
struct TraceView::Columns {
  std::vector<std::uint32_t> user, household, content, isp, exp;
  std::vector<std::uint8_t> bitrate;
  std::vector<double> start, duration;
  std::vector<std::uint32_t> order;
};

TraceView TraceView::from_trace(const Trace& trace, unsigned threads) {
  const std::size_t n = trace.sessions.size();
  auto columns = std::make_shared<Columns>();
  columns->user.resize(n);
  columns->household.resize(n);
  columns->content.resize(n);
  columns->isp.resize(n);
  columns->exp.resize(n);
  columns->bitrate.resize(n);
  columns->start.resize(n);
  columns->duration.resize(n);
  parallel_shards(n, threads, [&](unsigned, std::size_t begin,
                                  std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const SessionRecord& s = trace.sessions[i];
      columns->user[i] = s.user;
      columns->household[i] = s.household;
      columns->content[i] = s.content;
      columns->isp[i] = s.isp;
      columns->exp[i] = s.exp;
      columns->bitrate[i] = static_cast<std::uint8_t>(s.bitrate);
      columns->start[i] = s.start;
      columns->duration[i] = s.duration;
    }
  });
  columns->order = trace.swarm_index.order;

  TraceView view;
  view.user_ = columns->user;
  view.household_ = columns->household;
  view.content_ = columns->content;
  view.isp_ = columns->isp;
  view.exp_ = columns->exp;
  view.bitrate_ = columns->bitrate;
  view.start_ = columns->start;
  view.duration_ = columns->duration;
  view.order_ = columns->order;
  view.groups_ = std::make_shared<const std::vector<SwarmIndexGroup>>(
      trace.swarm_index.groups);
  view.span_ = trace.span;
  view.metro_name_ = trace.metro_name;
  view.columns_ = std::move(columns);
  return view;
}

TraceView TraceView::from_mapped(MappedTrace mapped, unsigned threads) {
  if (!can_alias_columns(mapped)) {
    // Big-endian or pathologically aligned mapping: decode once into SoA
    // buffers through the checked row loader (the slow, always-correct
    // road — unreachable on every platform CI covers).
    const Trace trace = mapped.to_trace(threads);
    return from_trace(trace, threads);
  }

  const auto shared =
      std::make_shared<const MappedTrace>(std::move(mapped));
  const MappedTrace& m = *shared;
  const std::size_t n = m.size();

  TraceView view;
  view.metro_name_ = m.metro_name();  // validates the name block
  view.span_ = m.span();
  // The aliasing casts below are why `.cltrace` payload blocks are
  // little-endian and 64-byte aligned (trace/trace_binary.h): the mmap'd
  // bytes are read-only and only ever accessed through these column
  // types.
  view.user_ = {reinterpret_cast<const std::uint32_t*>(m.raw_block(0)), n};
  view.household_ = {reinterpret_cast<const std::uint32_t*>(m.raw_block(1)),
                     n};
  view.content_ = {reinterpret_cast<const std::uint32_t*>(m.raw_block(2)), n};
  view.isp_ = {reinterpret_cast<const std::uint32_t*>(m.raw_block(3)), n};
  view.exp_ = {reinterpret_cast<const std::uint32_t*>(m.raw_block(4)), n};
  view.bitrate_ = {m.raw_block(5), n};
  view.start_ = {reinterpret_cast<const double*>(m.raw_block(6)), n};
  view.duration_ = {reinterpret_cast<const double*>(m.raw_block(7)), n};
  view.order_ = {reinterpret_cast<const std::uint32_t*>(m.raw_block(12)), n};

  // Field-level validation, column-wise — the same checks to_trace()
  // performs on materialized rows (bitrate range, session invariants),
  // without building a single SessionRecord. Shard boundaries overlap by
  // one element so the ordering check covers every adjacent pair.
  const double span_limit = view.span_.value() + 1e-6;
  parallel_shards(n, threads, [&](unsigned, std::size_t begin,
                                  std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (view.bitrate_[i] >= kBitrateClasses) {
        throw ParseError("corrupt .cltrace file: bitrate class out of "
                         "range: " + std::to_string(view.bitrate_[i]));
      }
      const double start = view.start_[i];
      const double duration = view.duration_[i];
      if (!(duration >= 0) || !(start >= 0) ||
          !(start + duration <= span_limit) ||
          (i > 0 && !(start >= view.start_[i - 1]))) {
        corrupt("session " + std::to_string(i) +
                " violates the trace invariants (ordering, non-negative "
                "duration, inside the span)");
      }
    }
  });

  // Decode the group table (tiny: one entry per swarm) and validate the
  // index against the key columns — validate_swarm_index's checks,
  // column-wise.
  const std::size_t g_count = m.group_count();
  auto groups = std::make_shared<std::vector<SwarmIndexGroup>>(g_count);
  {
    const unsigned char* g_content = m.raw_block(8);
    const unsigned char* g_isp = m.raw_block(9);
    const unsigned char* g_bitrate = m.raw_block(10);
    const unsigned char* g_counts = m.raw_block(11);
    std::uint64_t begin = 0;
    for (std::size_t g = 0; g < g_count; ++g) {
      SwarmIndexGroup& group = (*groups)[g];
      group.content = load_u32_le(g_content + 4 * g);
      group.isp = load_u32_le(g_isp + 4 * g);
      group.bitrate = g_bitrate[g];
      group.count = load_u64_le(g_counts + 8 * g);
      group.begin = begin;
      if (group.count == 0) corrupt("swarm index contains an empty group");
      if (group.count > n - begin) {
        throw ParseError(
            "corrupt .cltrace file: swarm index group counts overflow the "
            "session count");
      }
      if (g > 0 && !SwarmIndex::key_less((*groups)[g - 1], group)) {
        corrupt("swarm index group keys are not strictly ascending");
      }
      begin += group.count;
    }
    if (g_count > 0 && begin != n) {
      corrupt("swarm index groups do not cover every session");
    }
    if (g_count == 0 && n > 0) {
      corrupt("swarm index groups do not cover every session");
    }
  }
  parallel_shards(g_count, threads, [&](unsigned, std::size_t gb,
                                        std::size_t ge) {
    for (std::size_t g = gb; g < ge; ++g) {
      const SwarmIndexGroup& group = (*groups)[g];
      std::uint32_t prev_session = 0;
      for (std::uint64_t i = group.begin; i < group.begin + group.count;
           ++i) {
        const std::uint32_t s = view.order_[i];
        if (s >= n) corrupt("swarm index references an out-of-range session");
        if (i > group.begin && s <= prev_session) {
          corrupt("swarm index session order is not ascending within a group");
        }
        prev_session = s;
        if (view.content_[s] != group.content || view.isp_[s] != group.isp ||
            view.bitrate_[s] != group.bitrate) {
          corrupt("swarm index group key does not match its sessions");
        }
      }
    }
  });

  view.groups_ = std::move(groups);
  view.mapped_ = shared;
  return view;
}

TraceView TraceView::open_binary(const std::string& path, unsigned threads) {
  return from_mapped(MappedTrace(path), threads);
}

SessionRecord TraceView::session(std::size_t i) const {
  CL_EXPECTS(i < size());
  SessionRecord s;
  s.user = user_[i];
  s.household = household_[i];
  s.content = content_[i];
  s.isp = isp_[i];
  s.exp = exp_[i];
  s.bitrate = static_cast<BitrateClass>(bitrate_[i]);
  s.start = start_[i];
  s.duration = duration_[i];
  return s;
}

}  // namespace cl
