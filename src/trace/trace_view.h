// trace_view.h — columnar, zero-materialization view of a trace.
//
// The simulator's hot loops (sim/swarm_sweep.h) consume *columns*, not
// rows: per-field spans of start times, durations, swarm-key parts and
// user/ISP/ExP ids. A TraceView is the abstraction that hands those
// spans out, backed by one of two storages:
//
//  * zero-copy — the spans alias the mmap'd `.cltrace` column blocks of
//    a MappedTrace directly (the blocks are little-endian and 64-byte
//    aligned exactly so this cast is legal); nothing is decoded per
//    session, nothing is materialized. This is the default for binary
//    traces on little-endian hosts.
//  * owned SoA — the spans point into column vectors transposed once
//    from a row-structured Trace (CSV loads, generated or filtered
//    traces), or decoded from a MappedTrace on big-endian/misaligned
//    hosts.
//
// Ownership and lifetime: a TraceView *shares* its backing (the mapped
// file or the SoA buffers) via shared_ptr, so views are cheap to copy,
// safe to move, and every span a view handed out stays valid for as
// long as any copy of that view lives. The one thing a view never does
// is keep a `Trace&` alive — from_trace() copies the columns out, so
// the source Trace may be destroyed immediately afterwards.
//
// Construction from a MappedTrace performs the same field-level
// validation to_trace() does — bitrate range, swarm-index consistency,
// session ordering/span invariants — as column passes, without ever
// materializing a SessionRecord.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "trace/session.h"
#include "trace/trace_mmap.h"
#include "util/units.h"

namespace cl {

/// Columnar view of a trace: per-field spans plus the swarm index.
class TraceView {
 public:
  /// An empty view (no sessions, no index).
  TraceView() = default;

  /// Transposes a row-structured Trace into owned SoA columns (sharded
  /// across `threads` workers; 0 = all hardware threads). The returned
  /// view is self-contained — `trace` may die right after this returns.
  /// Trusts its input exactly as far as HybridSimulator::run(Trace) did:
  /// field invariants are the loader's responsibility.
  [[nodiscard]] static TraceView from_trace(const Trace& trace,
                                            unsigned threads = 1);

  /// Wraps a mapped `.cltrace` zero-copy (taking ownership of the
  /// mapping), falling back to a one-shot SoA transpose on hosts where
  /// the blocks cannot be aliased (big-endian, misaligned mapping).
  /// Validates bitrates, the swarm index and the session invariants
  /// column-wise; throws cl::ParseError on corrupt payloads.
  [[nodiscard]] static TraceView from_mapped(MappedTrace mapped,
                                             unsigned threads = 1);

  /// Maps `path` and wraps it — read_trace_binary_file's zero-copy
  /// sibling. Throws cl::IoError / cl::ParseError like MappedTrace.
  [[nodiscard]] static TraceView open_binary(const std::string& path,
                                             unsigned threads = 1);

  [[nodiscard]] std::size_t size() const { return start_.size(); }
  [[nodiscard]] bool empty() const { return start_.empty(); }

  // Per-session columns, each of size() elements.
  [[nodiscard]] std::span<const std::uint32_t> user() const { return user_; }
  [[nodiscard]] std::span<const std::uint32_t> household() const {
    return household_;
  }
  [[nodiscard]] std::span<const std::uint32_t> content() const {
    return content_;
  }
  [[nodiscard]] std::span<const std::uint32_t> isp() const { return isp_; }
  [[nodiscard]] std::span<const std::uint32_t> exp() const { return exp_; }
  [[nodiscard]] std::span<const std::uint8_t> bitrate() const {
    return bitrate_;
  }
  [[nodiscard]] std::span<const double> start() const { return start_; }
  [[nodiscard]] std::span<const double> duration() const { return duration_; }

  /// Total covered duration (epoch 0 .. span), like Trace::span.
  [[nodiscard]] Seconds span() const { return span_; }
  /// Metro registry name recorded in the trace, or empty when unknown.
  [[nodiscard]] const std::string& metro_name() const { return metro_name_; }

  /// Swarm index: groups ascend by (content, isp, bitrate); order() is
  /// the grouped session-index permutation (empty when the trace carries
  /// no index — the simulator falls back to hash grouping).
  [[nodiscard]] std::span<const SwarmIndexGroup> groups() const {
    return groups_ ? std::span<const SwarmIndexGroup>(*groups_)
                   : std::span<const SwarmIndexGroup>();
  }
  [[nodiscard]] std::span<const std::uint32_t> order() const { return order_; }
  [[nodiscard]] bool has_index() const {
    return groups_ && !groups_->empty() && order_.size() == size();
  }

  /// True when the session columns alias an mmap'd file (nothing owned
  /// beyond the decoded group table).
  [[nodiscard]] bool zero_copy() const { return mapped_ != nullptr; }

  /// Materializes one session from the columns (tests, spot reads — not
  /// a hot-path API).
  [[nodiscard]] SessionRecord session(std::size_t i) const;

 private:
  /// Owned SoA backing (from_trace, or the from_mapped fallback).
  struct Columns;

  std::shared_ptr<const Columns> columns_;
  std::shared_ptr<const MappedTrace> mapped_;
  std::shared_ptr<const std::vector<SwarmIndexGroup>> groups_;

  std::span<const std::uint32_t> user_, household_, content_, isp_, exp_;
  std::span<const std::uint8_t> bitrate_;
  std::span<const double> start_, duration_;
  std::span<const std::uint32_t> order_;
  Seconds span_;
  std::string metro_name_;
};

}  // namespace cl
