#include "trace/synthetic.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/parallel.h"

namespace cl {

namespace {

std::vector<UserProfile> build_users(const TraceConfig& config,
                                     const Metro& metro) {
  Rng rng(config.seed ^ 0x5a5a5a5a5a5a5a5aULL);
  Rng activity_rng(config.seed ^ 0xa5a5a5a5a5a5a5a5ULL);
  Rng taste_rng(config.seed ^ 0x3c3c3c3c3c3c3c3cULL);
  const auto households = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::lround(
             config.households_ratio * static_cast<double>(config.users))));
  std::vector<UserProfile> users;
  users.reserve(config.users);
  for (std::uint32_t u = 0; u < config.users; ++u) {
    UserProfile profile;
    profile.isp = metro.sample_isp(rng);
    profile.exp = metro.place_user(profile.isp, rng).exp;
    profile.household =
        static_cast<std::uint32_t>(rng.uniform_index(households));
    profile.activity =
        activity_rng.lognormal(0.0, config.user_activity_sigma);
    profile.mainstream = taste_rng.uniform();
    users.push_back(profile);
  }
  return users;
}

std::vector<double> taste_weights(const std::vector<UserProfile>& users,
                                  double skew, bool head) {
  std::vector<double> w;
  w.reserve(users.size());
  for (const auto& u : users) {
    const double taste = head ? u.mainstream : 1.0 - u.mainstream;
    // The epsilon keeps every user reachable from every tier.
    w.push_back(u.activity * (std::pow(taste, skew) + 1e-9));
  }
  return w;
}

}  // namespace

std::array<double, 24> TraceConfig::default_diurnal() {
  // Catch-up TV: overnight trough, daytime shoulder, strong evening peak.
  return {0.40, 0.25, 0.15, 0.10, 0.10, 0.15, 0.30, 0.50,
          0.70, 0.80, 0.90, 1.00, 1.10, 1.00, 1.00, 1.10,
          1.30, 1.70, 2.30, 3.00, 3.20, 2.80, 1.80, 0.90};
}

TraceConfig TraceConfig::london_month_scaled(double days) {
  TraceConfig config;
  config.days = days;
  config.users = 30000;
  config.exemplar_views = {100000, 10000, 1000};
  // "Top episodes" head: the few hundred popular broadcast episodes that
  // dominate a catch-up month.
  double views = 300000;
  for (int i = 0; i < 28; ++i) {
    config.exemplar_views.push_back(views);
    views *= 0.90;
  }
  // Mid/long tail calibrated so the median catalogue item saves ~1-2 %
  // (paper Fig. 3) while the aggregate stays in the Fig. 4 band.
  config.catalogue_tail = 500;
  config.tail_views = 1200000;
  config.bitrate_mix = {0.08, 0.72, 0.15, 0.05};
  return config;
}

TraceConfig TraceConfig::london_month_paper(double days) {
  // The 1:1 month replicates the scaled month's catalogue *shape* ~6x:
  // the same per-item view tiers, six items at each tier instead of one.
  // Per-swarm capacities — the only trace statistic the savings results
  // consume (DESIGN.md §1) — are therefore distributed exactly as in the
  // calibrated scaled config, so the Fig. 4 band carries over; what grows
  // is the extensive side: 3.3 M users producing ~23.5 M sessions
  // (Table I), with "a few hundred popular episodes" (3 exemplars +
  // 168 head items, ~17 M sessions) dominating the month as in the BBC
  // workload.
  TraceConfig config;
  config.days = days;
  config.users = 3300000;  // Table I: 3.3 M users, households_ratio 0.45
  config.exemplar_views = {100000, 10000, 1000};
  double views = 300000;
  for (int i = 0; i < 28; ++i) {
    for (int k = 0; k < 6; ++k) config.exemplar_views.push_back(views);
    views *= 0.90;
  }
  config.catalogue_tail = 3000;   // 6 x the scaled 500-item tail
  config.tail_views = 6400000;    // total lands at ~23.5 M sessions/month
  config.bitrate_mix = {0.08, 0.72, 0.15, 0.05};
  return config;
}

TraceGenerator::TraceGenerator(TraceConfig config, const Metro& metro)
    : config_([&] {
        CL_EXPECTS(config.days >= 1);
        CL_EXPECTS(config.users >= 1);
        CL_EXPECTS(config.households_ratio > 0 &&
                   config.households_ratio <= 1);
        CL_EXPECTS(config.watch_mean_fraction > 0 &&
                   config.watch_mean_fraction <= 1);
        CL_EXPECTS(config.watch_sigma >= 0);
        CL_EXPECTS(config.taste_skew >= 0);
        return std::move(config);
      }()),
      metro_(&metro),
      catalogue_(config_.exemplar_views, config_.catalogue_tail,
                 config_.tail_views, config_.zipf_exponent),
      users_(build_users(config_, metro)),
      head_user_sampler_(taste_weights(users_, config_.taste_skew, true)),
      tail_user_sampler_(taste_weights(users_, config_.taste_skew, false)),
      hour_sampler_(std::vector<double>(config_.diurnal.begin(),
                                        config_.diurnal.end())),
      bitrate_sampler_(std::vector<double>(config_.bitrate_mix.begin(),
                                           config_.bitrate_mix.end())) {}

Trace TraceGenerator::generate() {
  // Contents are sharded across workers; every content item keeps its own
  // deterministically seeded RNG stream, so a shard's output depends only
  // on which contents it covers. Shards cover ascending contiguous id
  // ranges, so concatenating per-shard vectors in shard order reproduces
  // the sequential content-id order exactly — the generated trace is
  // bit-identical for every thread count.
  const unsigned threads = resolve_threads(config_.threads, catalogue_.size());
  std::vector<std::vector<SessionRecord>> shard_sessions(threads);
  parallel_shards(
      catalogue_.size(), threads,
      [&](unsigned shard, std::size_t begin, std::size_t end) {
        auto& out = shard_sessions[shard];
        out.reserve(static_cast<std::size_t>(
            catalogue_.total_views() * config_.days / 30.0 * 1.1 /
            static_cast<double>(threads)));
        for (std::size_t id = begin; id < end; ++id) {
          Rng rng(config_.seed ^ (0x517cc1b727220a95ULL * (id + 1)));
          append_content_sessions(static_cast<std::uint32_t>(id), rng, out);
        }
      });
  std::vector<SessionRecord> sessions;
  std::size_t total = 0;
  for (const auto& shard : shard_sessions) total += shard.size();
  sessions.reserve(total);
  for (auto& shard : shard_sessions) {
    sessions.insert(sessions.end(), shard.begin(), shard.end());
  }
  std::sort(sessions.begin(), sessions.end(),
            [](const SessionRecord& a, const SessionRecord& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.content != b.content) return a.content < b.content;
              return a.user < b.user;
            });
  Trace trace;
  trace.sessions = std::move(sessions);
  trace.span = config_.span();
  trace.metro_name = metro_->name();  // empty for unnamed custom metros
  trace.validate();
  return trace;
}

Trace TraceGenerator::generate_content(std::uint32_t content_id) {
  CL_EXPECTS(content_id < catalogue_.size());
  std::vector<SessionRecord> sessions;
  Rng rng(config_.seed ^ (0x517cc1b727220a95ULL * (content_id + 1)));
  append_content_sessions(content_id, rng, sessions);
  std::sort(sessions.begin(), sessions.end(),
            [](const SessionRecord& a, const SessionRecord& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.user < b.user;
            });
  Trace trace;
  trace.sessions = std::move(sessions);
  trace.span = config_.span();
  trace.metro_name = metro_->name();
  trace.validate();
  return trace;
}

void TraceGenerator::append_content_sessions(
    std::uint32_t content_id, Rng& rng,
    std::vector<SessionRecord>& out) const {
  const ContentInfo& info = catalogue_.item(content_id);
  const double expected =
      info.expected_views_per_month * config_.days / 30.0;
  const std::uint64_t n = rng.poisson(expected);
  const auto whole_days =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(config_.days));
  const double span_s = config_.span().value();
  // Watch fraction ~ LogNormal(mu, sigma) with mean watch_mean_fraction.
  const double mu = std::log(config_.watch_mean_fraction) -
                    0.5 * config_.watch_sigma * config_.watch_sigma;
  // Head (exemplar) contents draw mainstream viewers; the tail draws
  // niche viewers (see TraceConfig::taste_skew).
  const DiscreteSampler& user_sampler =
      content_id < catalogue_.exemplar_count() ? head_user_sampler_
                                               : tail_user_sampler_;
  for (std::uint64_t i = 0; i < n; ++i) {
    SessionRecord s;
    s.content = content_id;
    s.user = static_cast<std::uint32_t>(user_sampler(rng));
    const UserProfile& profile = users_[s.user];
    s.household = profile.household;
    s.isp = profile.isp;
    s.exp = profile.exp;
    s.bitrate = kAllBitrateClasses[bitrate_sampler_(rng)];
    const double day = static_cast<double>(rng.uniform_index(whole_days));
    const double hour = static_cast<double>(hour_sampler_(rng));
    s.start = day * 86400.0 + hour * 3600.0 + rng.uniform(0.0, 3600.0);
    const double fraction =
        std::clamp(rng.lognormal(mu, config_.watch_sigma), 0.05, 1.0);
    s.duration = info.nominal_length.value() * fraction;
    if (s.start >= span_s) s.start = span_s - 1.0;
    if (s.end() > span_s) s.duration = span_s - s.start;
    out.push_back(s);
  }
}

}  // namespace cl
