#include "trace/session.h"

#include "util/error.h"

namespace cl {

bool valid_trace_metro_name(const std::string& name) {
  if (name.size() > kTraceMetroNameMaxBytes) return false;
  for (const char c : name) {
    const auto byte = static_cast<unsigned char>(c);
    if (byte < 0x20 || byte == 0x7f) return false;
  }
  return true;
}

Bits Trace::total_volume() const {
  Bits sum;
  for (const auto& s : sessions) sum += s.volume();
  return sum;
}

void Trace::validate() const {
  CL_EXPECTS(span.value() >= 0);
  CL_EXPECTS(valid_trace_metro_name(metro_name));
  double prev_start = 0;
  for (const auto& s : sessions) {
    CL_EXPECTS(s.duration >= 0);
    CL_EXPECTS(s.start >= 0);
    CL_EXPECTS(s.start >= prev_start);
    CL_EXPECTS(s.end() <= span.value() + 1e-6);
    prev_start = s.start;
  }
}

}  // namespace cl
