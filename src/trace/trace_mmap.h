// trace_mmap.h — mmap-backed reader of `.cltrace` binary traces.
//
// The counterpart of trace/trace_binary.h: maps the file read-only and
// validates the header and block directory without touching the payload.
// From there the payload columns are consumed two ways:
//
//  * zero-copy — trace/trace_view.h wraps the mapped column blocks in
//    typed spans and the simulator sweeps them directly, materializing
//    nothing (the default for `.cltrace` input on little-endian hosts);
//  * materialized — to_trace() decodes row-structured SessionRecords,
//    sharding session ranges across worker threads (util/parallel.h),
//    for callers that genuinely need rows (filters, converters, the
//    row-path reference sweep).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "trace/session.h"
#include "util/mmap_file.h"

namespace cl {

/// A validated, memory-mapped `.cltrace` file.
///
/// Construction validates everything structural: magic, version (the
/// current version 2, or the legacy version 1 without the metro-name
/// block), block directory (every block id of that version present
/// exactly once, element widths, counts, bounds) and the exact file
/// size. Field-level validation — bitrate range, swarm-index
/// consistency, session ordering — happens in to_trace(), which is the
/// only way payload bytes become a Trace.
class MappedTrace {
 public:
  /// Maps and validates `path`; throws cl::IoError when the file cannot
  /// be mapped and cl::ParseError when it is not a well-formed
  /// `.cltrace` file of a supported version.
  explicit MappedTrace(const std::string& path);

  /// Number of sessions.
  [[nodiscard]] std::size_t size() const { return sessions_; }
  /// Number of swarm-index groups.
  [[nodiscard]] std::size_t group_count() const { return groups_; }
  /// Trace span.
  [[nodiscard]] Seconds span() const { return span_; }
  /// On-disk format version (kTraceBinaryLegacyVersion..kTraceBinaryVersion).
  [[nodiscard]] std::uint32_t version() const { return version_; }
  /// Total mapped bytes.
  [[nodiscard]] std::size_t file_size() const { return file_.size(); }
  /// Metro name recorded in block 13 (empty for legacy v1 files and
  /// traces generated against an unnamed metro).
  [[nodiscard]] std::string metro_name() const;

  /// Decodes one session from the column blocks (bitrate unvalidated —
  /// use to_trace() for checked loading).
  [[nodiscard]] SessionRecord session(std::size_t i) const;

  /// Raw payload bytes of block `id` (see trace/trace_binary.h for the
  /// block table). The pointer is valid for the lifetime of this
  /// MappedTrace; blocks are little-endian and 64-byte aligned within
  /// the file. Zero-copy consumers (trace/trace_view.h) cast these to
  /// typed column pointers; everyone else should use session() or
  /// to_trace().
  [[nodiscard]] const unsigned char* raw_block(std::size_t id) const {
    return block(id);
  }

  /// Materializes the full trace — sessions, span and swarm index —
  /// sharding session decoding across `threads` workers (0 = all
  /// hardware threads). Validates bitrate values, the swarm index and
  /// the trace invariants; throws cl::ParseError on corrupt payloads.
  [[nodiscard]] Trace to_trace(unsigned threads = 1) const;

 private:
  [[nodiscard]] const unsigned char* block(std::size_t id) const;

  MappedFile file_;
  std::size_t sessions_ = 0;
  std::size_t groups_ = 0;
  std::size_t metro_bytes_ = 0;
  Seconds span_;
  std::uint32_t version_ = 0;
  /// Payload offset of each block, indexed by block id (block 13 stays 0
  /// for legacy v1 files).
  std::uint64_t offsets_[14] = {};
};

/// Loads a `.cltrace` file into a Trace (mmap + sharded materialization).
[[nodiscard]] Trace read_trace_binary_file(const std::string& path,
                                           unsigned threads = 1);

}  // namespace cl
