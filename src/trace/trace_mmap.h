// trace_mmap.h — mmap-backed reader of `.cltrace` binary traces.
//
// The counterpart of trace/trace_binary.h: maps the file read-only,
// validates the header and block directory without touching the payload,
// and materializes sessions straight from the little-endian column
// blocks — no text parsing, no iostream buffering. Materialization
// shards session ranges across worker threads (util/parallel.h), so a
// month-scale trace loads in seconds and the result is identical at
// every thread count (each session is decoded independently from its
// column bytes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "trace/session.h"
#include "util/mmap_file.h"

namespace cl {

/// A validated, memory-mapped `.cltrace` file.
///
/// Construction validates everything structural: magic, version (the
/// current version 2, or the legacy version 1 without the metro-name
/// block), block directory (every block id of that version present
/// exactly once, element widths, counts, bounds) and the exact file
/// size. Field-level validation — bitrate range, swarm-index
/// consistency, session ordering — happens in to_trace(), which is the
/// only way payload bytes become a Trace.
class MappedTrace {
 public:
  /// Maps and validates `path`; throws cl::IoError when the file cannot
  /// be mapped and cl::ParseError when it is not a well-formed
  /// `.cltrace` file of a supported version.
  explicit MappedTrace(const std::string& path);

  /// Number of sessions.
  [[nodiscard]] std::size_t size() const { return sessions_; }
  /// Number of swarm-index groups.
  [[nodiscard]] std::size_t group_count() const { return groups_; }
  /// Trace span.
  [[nodiscard]] Seconds span() const { return span_; }
  /// On-disk format version (kTraceBinaryLegacyVersion..kTraceBinaryVersion).
  [[nodiscard]] std::uint32_t version() const { return version_; }
  /// Total mapped bytes.
  [[nodiscard]] std::size_t file_size() const { return file_.size(); }
  /// Metro name recorded in block 13 (empty for legacy v1 files and
  /// traces generated against an unnamed metro).
  [[nodiscard]] std::string metro_name() const;

  /// Decodes one session from the column blocks (bitrate unvalidated —
  /// use to_trace() for checked loading).
  [[nodiscard]] SessionRecord session(std::size_t i) const;

  /// Materializes the full trace — sessions, span and swarm index —
  /// sharding session decoding across `threads` workers (0 = all
  /// hardware threads). Validates bitrate values, the swarm index and
  /// the trace invariants; throws cl::ParseError on corrupt payloads.
  [[nodiscard]] Trace to_trace(unsigned threads = 1) const;

 private:
  [[nodiscard]] const unsigned char* block(std::size_t id) const;

  MappedFile file_;
  std::size_t sessions_ = 0;
  std::size_t groups_ = 0;
  std::size_t metro_bytes_ = 0;
  Seconds span_;
  std::uint32_t version_ = 0;
  /// Payload offset of each block, indexed by block id (block 13 stays 0
  /// for legacy v1 files).
  std::uint64_t offsets_[14] = {};
};

/// Loads a `.cltrace` file into a Trace (mmap + sharded materialization).
[[nodiscard]] Trace read_trace_binary_file(const std::string& path,
                                           unsigned threads = 1);

}  // namespace cl
