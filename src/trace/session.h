// session.h — the atomic record of the workload: one streaming session.
//
// Mirrors the fields of the BBC iPlayer trace the paper relies on: who
// watched what, when, for how long, at which bitrate, from which ISP and
// network position. `household` models the IP-address sharing visible in
// Table I (3.3 M users behind 1.5 M IP addresses).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/bitrate.h"
#include "util/units.h"

namespace cl {

/// One user session streaming one content item.
struct SessionRecord {
  std::uint32_t user = 0;       ///< stable user id
  std::uint32_t household = 0;  ///< shared-IP household id
  std::uint32_t content = 0;    ///< content item id
  std::uint32_t isp = 0;        ///< index of the user's ISP in the Metro
  std::uint32_t exp = 0;        ///< exchange point id within the ISP tree
  BitrateClass bitrate = BitrateClass::kSd;  ///< stream bitrate class
  double start = 0;     ///< seconds since trace epoch
  double duration = 0;  ///< watched seconds (>= 0)

  [[nodiscard]] Seconds start_time() const { return Seconds{start}; }
  [[nodiscard]] Seconds watch_time() const { return Seconds{duration}; }
  [[nodiscard]] double end() const { return start + duration; }
  /// Stream bitrate β of this session.
  [[nodiscard]] BitRate beta() const { return bitrate_of(bitrate); }
  /// Useful traffic of the session: β · duration.
  [[nodiscard]] Bits volume() const { return beta() * watch_time(); }
};

/// A workload trace: flat, start-time-ordered session list plus its span.
struct Trace {
  std::vector<SessionRecord> sessions;
  Seconds span;  ///< total covered duration (epoch 0 .. span)

  [[nodiscard]] bool empty() const { return sessions.empty(); }
  [[nodiscard]] std::size_t size() const { return sessions.size(); }

  /// Total useful traffic of all sessions.
  [[nodiscard]] Bits total_volume() const;

  /// Verifies ordering/field invariants; throws cl::InvalidArgument.
  void validate() const;
};

}  // namespace cl
