// session.h — the atomic record of the workload: one streaming session.
//
// Mirrors the fields of the BBC iPlayer trace the paper relies on: who
// watched what, when, for how long, at which bitrate, from which ISP and
// network position. `household` models the IP-address sharing visible in
// Table I (3.3 M users behind 1.5 M IP addresses).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/bitrate.h"
#include "util/units.h"

namespace cl {

/// Longest metro name a trace header may carry (CSV `#metro=` comment and
/// `.cltrace` block 13 share the cap).
inline constexpr std::size_t kTraceMetroNameMaxBytes = 255;

/// True when `name` may appear in a trace header: at most
/// kTraceMetroNameMaxBytes bytes, no control characters (comment lines and
/// fixed-width columns both break on embedded newlines). Empty is valid —
/// it means "metro not recorded".
[[nodiscard]] bool valid_trace_metro_name(const std::string& name);

/// One user session streaming one content item.
struct SessionRecord {
  std::uint32_t user = 0;       ///< stable user id
  std::uint32_t household = 0;  ///< shared-IP household id
  std::uint32_t content = 0;    ///< content item id
  std::uint32_t isp = 0;        ///< index of the user's ISP in the Metro
  std::uint32_t exp = 0;        ///< exchange point id within the ISP tree
  BitrateClass bitrate = BitrateClass::kSd;  ///< stream bitrate class
  double start = 0;     ///< seconds since trace epoch
  double duration = 0;  ///< watched seconds (>= 0)

  [[nodiscard]] Seconds start_time() const { return Seconds{start}; }
  [[nodiscard]] Seconds watch_time() const { return Seconds{duration}; }
  [[nodiscard]] double end() const { return start + duration; }
  /// Stream bitrate β of this session.
  [[nodiscard]] BitRate beta() const { return bitrate_of(bitrate); }
  /// Useful traffic of the session: β · duration.
  [[nodiscard]] Bits volume() const { return beta() * watch_time(); }
};

/// One swarm's slice of a SwarmIndex: the full-width
/// (content, isp, bitrate) key plus the half-open range
/// [begin, begin+count) into SwarmIndex::order.
struct SwarmIndexGroup {
  std::uint32_t content = 0;
  std::uint32_t isp = 0;
  std::uint8_t bitrate = 0;
  std::uint64_t begin = 0;
  std::uint64_t count = 0;
};

/// Swarm-key-sorted permutation of a trace's session indices: groups
/// ascend by (content, isp, bitrate) and session indices ascend within
/// each group — the simulator's deterministic sweep order. Built by
/// trace/swarm_index.h and persisted by the binary trace format so
/// month-scale traces skip the per-run grouping pass.
struct SwarmIndex {
  std::vector<SwarmIndexGroup> groups;  ///< ascending (content, isp, bitrate)
  std::vector<std::uint32_t> order;     ///< grouped session indices

  [[nodiscard]] bool empty() const { return order.empty(); }

  /// Strict-weak ordering of group keys (lexicographic full-width tuple).
  [[nodiscard]] static bool key_less(const SwarmIndexGroup& a,
                                     const SwarmIndexGroup& b) {
    if (a.content != b.content) return a.content < b.content;
    if (a.isp != b.isp) return a.isp < b.isp;
    return a.bitrate < b.bitrate;
  }
};

/// A workload trace: flat, start-time-ordered session list plus its span.
struct Trace {
  std::vector<SessionRecord> sessions;
  Seconds span;  ///< total covered duration (epoch 0 .. span)

  /// Optional pre-computed full-key swarm index (loaded from a binary
  /// trace, or built with trace/swarm_index.h). Empty for CSV-loaded and
  /// filtered traces; when present and sized to `sessions`, the
  /// simulator's default (content, ISP, bitrate) grouping consumes it
  /// instead of re-grouping.
  SwarmIndex swarm_index;

  /// Registry name of the metro the trace was generated for (see
  /// topology/metro_registry.h), or empty when unknown (legacy files,
  /// hand-written CSVs, custom metros). Round-trips through both on-disk
  /// formats: the CSV `#metro=` comment and `.cltrace` v2 block 13.
  std::string metro_name;

  [[nodiscard]] bool empty() const { return sessions.empty(); }
  [[nodiscard]] std::size_t size() const { return sessions.size(); }

  /// Total useful traffic of all sessions.
  [[nodiscard]] Bits total_volume() const;

  /// Verifies ordering/field invariants; throws cl::InvalidArgument.
  void validate() const;
};

}  // namespace cl
