#include "trace/trace_io.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>

#include "util/csv.h"
#include "util/error.h"

namespace cl {

namespace {

double parse_double(const std::string& text, const char* what) {
  double v = 0;
  const auto res = std::from_chars(text.data(), text.data() + text.size(), v);
  if (res.ec != std::errc() || res.ptr != text.data() + text.size()) {
    throw ParseError(std::string("bad ") + what + ": '" + text + "'");
  }
  return v;
}

std::uint32_t parse_u32(const std::string& text, const char* what) {
  std::uint32_t v = 0;
  const auto res = std::from_chars(text.data(), text.data() + text.size(), v);
  if (res.ec != std::errc() || res.ptr != text.data() + text.size()) {
    throw ParseError(std::string("bad ") + what + ": '" + text + "'");
  }
  return v;
}

}  // namespace

void write_trace(std::ostream& out, const Trace& trace) {
  // Shortest round-trip formatting — streaming the double directly would
  // truncate to 6 significant digits, and a span that reads back smaller
  // than a session's end makes the reader reject its own writer's output.
  char span_buf[64];
  const auto span_res = std::to_chars(
      span_buf, span_buf + sizeof span_buf, trace.span.value());
  out << "#span=" << std::string_view(span_buf, span_res.ptr) << '\n';
  // The metro comment is written only when recorded, so traces from
  // before the metro field (and metro-less traces) keep their exact
  // bytes through a write -> read -> write round trip.
  CL_EXPECTS(valid_trace_metro_name(trace.metro_name));
  if (!trace.metro_name.empty()) {
    out << "#metro=" << trace.metro_name << '\n';
  }
  CsvWriter writer(out, {"user", "household", "content", "isp", "exp",
                         "bitrate", "start", "duration"});
  for (const auto& s : trace.sessions) {
    writer.row(s.user, s.household, s.content, s.isp, s.exp,
               std::string(to_string(s.bitrate)), s.start, s.duration);
  }
}

void write_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot create trace file: " + path);
  write_trace(out, trace);
  if (!out) throw IoError("failed writing trace file: " + path);
}

Trace read_trace(std::istream& in) {
  double span = -1;
  std::string metro_name;
  // Leading #key=value comment lines, in any order; unknown comments are
  // skipped so future header keys stay readable by this build. (Pre-metro
  // builds consumed exactly one leading comment line, so CSVs carrying
  // #metro= need this build or newer — same one-way street as the
  // .cltrace v2 bump.)
  while (in.peek() == '#') {
    std::string comment;
    std::getline(in, comment);
    if (!comment.empty() && comment.back() == '\r') comment.pop_back();
    const auto eq = comment.find('=');
    if (comment.rfind("#span=", 0) == 0 && eq != std::string::npos) {
      span = parse_double(comment.substr(eq + 1), "span");
    } else if (comment.rfind("#metro=", 0) == 0 && eq != std::string::npos) {
      metro_name = comment.substr(eq + 1);
      if (metro_name.empty() || !valid_trace_metro_name(metro_name)) {
        throw ParseError("bad metro name in #metro= header comment");
      }
    }
  }
  const CsvDocument doc = read_csv(in);
  const auto c_user = doc.column("user");
  const auto c_household = doc.column("household");
  const auto c_content = doc.column("content");
  const auto c_isp = doc.column("isp");
  const auto c_exp = doc.column("exp");
  const auto c_bitrate = doc.column("bitrate");
  const auto c_start = doc.column("start");
  const auto c_duration = doc.column("duration");

  Trace trace;
  trace.sessions.reserve(doc.rows.size());
  double max_end = 0;
  for (const auto& row : doc.rows) {
    SessionRecord s;
    s.user = parse_u32(row[c_user], "user");
    s.household = parse_u32(row[c_household], "household");
    s.content = parse_u32(row[c_content], "content");
    s.isp = parse_u32(row[c_isp], "isp");
    s.exp = parse_u32(row[c_exp], "exp");
    s.bitrate = bitrate_class_from_string(row[c_bitrate]);
    s.start = parse_double(row[c_start], "start");
    s.duration = parse_double(row[c_duration], "duration");
    max_end = std::max(max_end, s.end());
    trace.sessions.push_back(s);
  }
  // Stable: rows sharing a start time (quantized timestamps are common in
  // anonymised traces) keep their file order, so write -> read -> write
  // reproduces the file byte-exactly (the `cl convert` round-trip
  // contract).
  std::stable_sort(trace.sessions.begin(), trace.sessions.end(),
                   [](const SessionRecord& a, const SessionRecord& b) {
                     return a.start < b.start;
                   });
  trace.span = Seconds{span >= 0 ? span : max_end};
  trace.metro_name = std::move(metro_name);
  trace.validate();
  return trace;
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open trace file: " + path);
  return read_trace(in);
}

}  // namespace cl
