#include "trace/swarm_index.h"

#include <algorithm>
#include <limits>

#include "util/error.h"

namespace cl {

SwarmIndex build_swarm_index(const Trace& trace) {
  const std::size_t n = trace.sessions.size();
  CL_EXPECTS(n <= std::numeric_limits<std::uint32_t>::max());

  SwarmIndex index;
  index.order.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) index.order[i] = i;
  // Sort by (content, isp, bitrate, session index): groups come out in
  // ascending key order with ascending indices inside each group — the
  // exact order the simulator's hash-grouping path produces.
  std::sort(index.order.begin(), index.order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const SessionRecord& sa = trace.sessions[a];
              const SessionRecord& sb = trace.sessions[b];
              if (sa.content != sb.content) return sa.content < sb.content;
              if (sa.isp != sb.isp) return sa.isp < sb.isp;
              if (sa.bitrate != sb.bitrate) return sa.bitrate < sb.bitrate;
              return a < b;
            });

  for (std::size_t i = 0; i < n;) {
    const SessionRecord& first = trace.sessions[index.order[i]];
    SwarmIndexGroup group;
    group.content = first.content;
    group.isp = first.isp;
    group.bitrate = static_cast<std::uint8_t>(first.bitrate);
    group.begin = i;
    std::size_t end = i + 1;
    while (end < n) {
      const SessionRecord& s = trace.sessions[index.order[end]];
      if (s.content != first.content || s.isp != first.isp ||
          s.bitrate != first.bitrate) {
        break;
      }
      ++end;
    }
    group.count = end - i;
    index.groups.push_back(group);
    i = end;
  }
  return index;
}

void validate_swarm_index(const SwarmIndex& index, const Trace& trace) {
  const std::size_t n = trace.sessions.size();
  if (index.order.size() != n) {
    throw ParseError("swarm index order length does not match session count");
  }
  std::uint64_t covered = 0;
  const SwarmIndexGroup* prev = nullptr;
  for (const SwarmIndexGroup& group : index.groups) {
    if (group.count == 0) {
      throw ParseError("swarm index contains an empty group");
    }
    if (group.begin != covered) {
      throw ParseError("swarm index groups do not tile the order vector");
    }
    if (prev != nullptr && !SwarmIndex::key_less(*prev, group)) {
      throw ParseError("swarm index group keys are not strictly ascending");
    }
    if (group.begin + group.count > n) {
      throw ParseError("swarm index group overruns the order vector");
    }
    std::uint32_t prev_session = 0;
    for (std::uint64_t i = group.begin; i < group.begin + group.count; ++i) {
      const std::uint32_t session_index = index.order[i];
      if (session_index >= n) {
        throw ParseError("swarm index references an out-of-range session");
      }
      if (i > group.begin && session_index <= prev_session) {
        throw ParseError(
            "swarm index session order is not ascending within a group");
      }
      prev_session = session_index;
      const SessionRecord& s = trace.sessions[session_index];
      if (s.content != group.content || s.isp != group.isp ||
          static_cast<std::uint8_t>(s.bitrate) != group.bitrate) {
        throw ParseError("swarm index group key does not match its sessions");
      }
    }
    covered += group.count;
    prev = &group;
  }
  if (covered != n) {
    throw ParseError("swarm index groups do not cover every session");
  }
}

}  // namespace cl
