// bitrate.h — streaming bitrate classes.
//
// The paper notes that swarms are split by the bitrate a client streams at
// (a 72-inch TV cannot stream from a phone's low-bitrate copy), and that
// BBC iPlayer's modal bitrate is 1.5 Mbps. We model four device-driven
// classes spanning the platform's ladder.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/units.h"

namespace cl {

/// Bitrate/device class of one streaming session.
enum class BitrateClass : std::uint8_t {
  kMobile = 0,  ///< phone / small tablet, 0.8 Mbps
  kSd = 1,      ///< standard definition (the platform's modal rate), 1.5 Mbps
  kHd = 2,      ///< HD stream, 3.0 Mbps
  kFullHd = 3,  ///< large-screen TV, 5.0 Mbps
};

/// Number of bitrate classes.
inline constexpr std::size_t kBitrateClasses = 4;

/// All classes in ascending bitrate order.
inline constexpr std::array<BitrateClass, kBitrateClasses> kAllBitrateClasses{
    BitrateClass::kMobile, BitrateClass::kSd, BitrateClass::kHd,
    BitrateClass::kFullHd};

/// Stream bitrate β of a class.
[[nodiscard]] BitRate bitrate_of(BitrateClass c);

/// Display name ("mobile", "sd", "hd", "fullhd").
[[nodiscard]] std::string_view to_string(BitrateClass c);

/// Parses a display name; throws cl::ParseError on unknown names.
[[nodiscard]] BitrateClass bitrate_class_from_string(std::string_view name);

/// Index helper for per-class arrays.
constexpr std::size_t index(BitrateClass c) {
  return static_cast<std::size_t>(c);
}

}  // namespace cl
