// trace_binary.h — the `.cltrace` binary columnar trace format (writer
// side; the mmap reader lives in trace/trace_mmap.h).
//
// Month-scale traces (paper scale: 23.5M sessions) cannot be re-parsed
// from CSV on every run — row-oriented text parsing dominates end-to-end
// wall time once the simulator itself is parallel. `.cltrace` stores the
// same sessions as fixed-width little-endian *columns* plus the
// swarm-key-sorted session index (trace/swarm_index.h), so a loader can
// shard column ranges across threads and materialize sessions without
// parsing a single byte of text.
//
// On-disk layout (version 2, everything little-endian):
//
//   offset  size  field
//   0       8     magic "CLTRACE\0"
//   8       4     format version (u32) = 2
//   12      4     reserved flags (u32) = 0
//   16      8     session count n (u64)
//   24      8     trace span in seconds (f64, IEEE-754 bit pattern)
//   32      4     block count (u32) = 14
//   36      4     reserved (u32) = 0
//   40      ...   block directory: 14 × {id u32, elem_size u32,
//                 offset u64, count u64} (24 bytes per entry)
//   ...     ...   payload blocks, each 64-byte aligned, zero padding
//
// Blocks (ids are stable; a reader must find every id exactly once):
//
//   id  content            element  count
//   0   user               u32      n
//   1   household          u32      n
//   2   content            u32      n
//   3   isp                u32      n
//   4   exp                u32      n
//   5   bitrate class      u8       n
//   6   start seconds      f64      n
//   7   duration seconds   f64      n
//   8   index group content  u32    g   (swarm index, g groups)
//   9   index group isp      u32    g
//   10  index group bitrate  u8     g
//   11  index group count    u64    g
//   12  index session order  u32    n
//   13  metro name           u8     m   (v2+: UTF-8 registry name,
//                                        m = byte length, 0 = unknown)
//
// Sessions are stored in the trace's start-time order; the index blocks
// are the swarm-key-sorted permutation. The expected file size is implied
// by the directory, and readers reject both truncated and trailing bytes.
//
// Version policy: any layout change — new/removed blocks, different
// element widths, reordered header fields — bumps kTraceBinaryVersion and
// adds a golden file under tests/data/. The reader accepts the current
// version plus explicitly supported legacy versions (today: version 1,
// which lacks block 13 — such traces load with an empty metro name) and
// rejects everything else outright (no silent best-effort decoding of a
// mislabeled layout). The writer always emits the current version.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/session.h"

namespace cl {

/// Magic bytes at offset 0 of every `.cltrace` file.
inline constexpr unsigned char kTraceBinaryMagic[8] = {'C', 'L', 'T', 'R',
                                                       'A', 'C', 'E', '\0'};

/// Current format version (see the version policy above).
inline constexpr std::uint32_t kTraceBinaryVersion = 2;

/// Oldest version the reader still decodes (v1 = v2 minus the metro-name
/// block).
inline constexpr std::uint32_t kTraceBinaryLegacyVersion = 1;

/// Payload blocks start on multiples of this (room for future zero-copy
/// typed views; padding bytes are zero).
inline constexpr std::size_t kTraceBinaryAlignment = 64;

/// Number of blocks in a current (version-2) file.
inline constexpr std::uint32_t kTraceBinaryBlockCount = 14;

/// Number of blocks in a legacy version-1 file (no metro-name block).
inline constexpr std::uint32_t kTraceBinaryBlockCountV1 = 13;

/// Block id of the metro-name column (v2+).
inline constexpr std::uint32_t kTraceBinaryMetroBlockId = 13;

/// Size of the fixed header preceding the block directory.
inline constexpr std::size_t kTraceBinaryHeaderBytes = 40;

/// Size of one block-directory entry ({id, elem_size, offset, count}).
inline constexpr std::size_t kTraceBinaryDirEntryBytes = 24;

/// Element width of each block, indexed by block id (see the table above).
inline constexpr std::uint32_t kTraceBinaryElemSize[kTraceBinaryBlockCount] =
    {4, 4, 4, 4, 4, 1, 8, 8,  // session columns
     4, 4, 1, 8,              // index group columns
     4,                       // index order
     1};                      // metro name bytes

/// What a block's directory `count` field holds, indexed by block id.
enum class TraceBlockCountKind : unsigned char {
  kSessions,   ///< the session count n
  kGroups,     ///< the swarm-index group count g
  kMetroName,  ///< the metro-name byte length (0..kTraceMetroNameMaxBytes)
};

inline constexpr TraceBlockCountKind
    kTraceBinaryCountKind[kTraceBinaryBlockCount] = {
        TraceBlockCountKind::kSessions, TraceBlockCountKind::kSessions,
        TraceBlockCountKind::kSessions, TraceBlockCountKind::kSessions,
        TraceBlockCountKind::kSessions, TraceBlockCountKind::kSessions,
        TraceBlockCountKind::kSessions, TraceBlockCountKind::kSessions,
        TraceBlockCountKind::kGroups,   TraceBlockCountKind::kGroups,
        TraceBlockCountKind::kGroups,   TraceBlockCountKind::kGroups,
        TraceBlockCountKind::kSessions, TraceBlockCountKind::kMetroName};

/// Serializes a trace into the `.cltrace` byte layout. Builds the swarm
/// index with build_swarm_index when trace.swarm_index is empty, and
/// persists the existing one otherwise (it must validate against the
/// sessions). Deterministic: identical traces produce identical bytes.
[[nodiscard]] std::string serialize_trace_binary(const Trace& trace);

/// Writes serialize_trace_binary's bytes to a stream.
void write_trace_binary(std::ostream& out, const Trace& trace);

/// Writes a `.cltrace` file; throws cl::IoError when the file cannot be
/// created or fully written.
void write_trace_binary_file(const std::string& path, const Trace& trace);

}  // namespace cl
