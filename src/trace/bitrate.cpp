#include "trace/bitrate.h"

#include "util/error.h"

namespace cl {

BitRate bitrate_of(BitrateClass c) {
  switch (c) {
    case BitrateClass::kMobile:
      return BitRate::from_mbps(0.8);
    case BitrateClass::kSd:
      return BitRate::from_mbps(1.5);
    case BitrateClass::kHd:
      return BitRate::from_mbps(3.0);
    case BitrateClass::kFullHd:
      return BitRate::from_mbps(5.0);
  }
  throw InvalidArgument("unknown bitrate class");
}

std::string_view to_string(BitrateClass c) {
  switch (c) {
    case BitrateClass::kMobile:
      return "mobile";
    case BitrateClass::kSd:
      return "sd";
    case BitrateClass::kHd:
      return "hd";
    case BitrateClass::kFullHd:
      return "fullhd";
  }
  return "?";
}

BitrateClass bitrate_class_from_string(std::string_view name) {
  for (auto c : kAllBitrateClasses) {
    if (to_string(c) == name) return c;
  }
  throw ParseError("unknown bitrate class: " + std::string(name));
}

}  // namespace cl
