// trace_format.h — format dispatch between the CSV (trace/trace_io.h)
// and binary columnar (trace/trace_binary.h, trace/trace_mmap.h) trace
// representations.
//
// Readers sniff the `.cltrace` magic bytes, so `--format auto` (the
// default everywhere) does the right thing regardless of file extension;
// writers fall back to the extension because a new file has no bytes to
// sniff.
#pragma once

#include <string>

#include "trace/session.h"

namespace cl {

/// On-disk trace representations.
enum class TraceFormat {
  kAuto,    ///< readers: sniff magic; writers: by `.cltrace` extension
  kCsv,     ///< row-oriented text (trace/trace_io.h)
  kBinary,  ///< columnar `.cltrace` (trace/trace_binary.h)
};

/// Parses a `--format` flag value ("auto" | "csv" | "binary"); throws
/// cl::ParseError on anything else.
[[nodiscard]] TraceFormat trace_format_from_string(const std::string& name);

/// True when the file at `path` starts with the `.cltrace` magic bytes.
/// Throws cl::IoError when the file cannot be opened.
[[nodiscard]] bool sniff_trace_binary(const std::string& path);

/// True when `path` ends in ".cltrace".
[[nodiscard]] bool has_binary_trace_extension(const std::string& path);

/// Reads a trace in the given (or sniffed) format. `threads` shards the
/// binary loader's materialization; the CSV path ignores it.
[[nodiscard]] Trace read_trace_any(const std::string& path,
                                   TraceFormat format = TraceFormat::kAuto,
                                   unsigned threads = 1);

/// Writes a trace in the given format (kAuto: binary when `path` ends in
/// ".cltrace", CSV otherwise).
void write_trace_any(const std::string& path, const Trace& trace,
                     TraceFormat format = TraceFormat::kAuto);

}  // namespace cl
