#include "trace/trace_stats.h"

#include <algorithm>
#include <unordered_set>

namespace cl {

TraceStats compute_stats(const Trace& trace) {
  TraceStats stats;
  stats.sessions = trace.sessions.size();
  std::unordered_set<std::uint32_t> users, households, contents;
  users.reserve(trace.sessions.size());
  for (const auto& s : trace.sessions) {
    users.insert(s.user);
    households.insert(s.household);
    contents.insert(s.content);
    stats.total_watch_time += s.watch_time();
    stats.total_volume += s.volume();
    if (s.isp >= stats.sessions_per_isp.size()) {
      stats.sessions_per_isp.resize(s.isp + 1, 0);
    }
    ++stats.sessions_per_isp[s.isp];
    ++stats.sessions_per_bitrate[index(s.bitrate)];
  }
  stats.distinct_users = users.size();
  stats.distinct_households = households.size();
  stats.distinct_contents = contents.size();
  if (stats.sessions > 0) {
    stats.mean_session_duration =
        stats.total_watch_time / static_cast<double>(stats.sessions);
  }
  if (trace.span.value() > 0) {
    stats.mean_concurrency = stats.total_watch_time / trace.span;
  }
  return stats;
}

std::vector<std::uint64_t> views_per_content(const Trace& trace) {
  std::vector<std::uint64_t> views;
  for (const auto& s : trace.sessions) {
    if (s.content >= views.size()) views.resize(s.content + 1, 0);
    ++views[s.content];
  }
  return views;
}

}  // namespace cl
