#include "trace/trace_binary.h"

#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include "trace/swarm_index.h"
#include "util/error.h"
#include "util/serialize.h"

namespace cl {

namespace {

std::size_t align_up(std::size_t offset) {
  const std::size_t rem = offset % kTraceBinaryAlignment;
  return rem == 0 ? offset : offset + (kTraceBinaryAlignment - rem);
}

void write_all(std::ostream& out, const std::string& bytes) {
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Serializes one block's payload. Blocks are built (and freed) one at a
/// time so the writer's transient memory is one column, not the file —
/// at paper scale the file is ~1 GB and the Trace itself ~1.1 GB, so
/// materializing a second full image would triple the peak.
std::string block_bytes(std::uint32_t id, const Trace& trace,
                        const SwarmIndex& index) {
  const std::size_t n = trace.sessions.size();
  std::string bytes;
  switch (id) {
    case 0:
      bytes.reserve(n * 4);
      for (const SessionRecord& s : trace.sessions) {
        append_u32_le(bytes, s.user);
      }
      break;
    case 1:
      bytes.reserve(n * 4);
      for (const SessionRecord& s : trace.sessions) {
        append_u32_le(bytes, s.household);
      }
      break;
    case 2:
      bytes.reserve(n * 4);
      for (const SessionRecord& s : trace.sessions) {
        append_u32_le(bytes, s.content);
      }
      break;
    case 3:
      bytes.reserve(n * 4);
      for (const SessionRecord& s : trace.sessions) {
        append_u32_le(bytes, s.isp);
      }
      break;
    case 4:
      bytes.reserve(n * 4);
      for (const SessionRecord& s : trace.sessions) {
        append_u32_le(bytes, s.exp);
      }
      break;
    case 5:
      bytes.reserve(n);
      for (const SessionRecord& s : trace.sessions) {
        bytes.push_back(static_cast<char>(s.bitrate));
      }
      break;
    case 6:
      bytes.reserve(n * 8);
      for (const SessionRecord& s : trace.sessions) {
        append_f64_le(bytes, s.start);
      }
      break;
    case 7:
      bytes.reserve(n * 8);
      for (const SessionRecord& s : trace.sessions) {
        append_f64_le(bytes, s.duration);
      }
      break;
    case 8:
      bytes.reserve(index.groups.size() * 4);
      for (const SwarmIndexGroup& g : index.groups) {
        append_u32_le(bytes, g.content);
      }
      break;
    case 9:
      bytes.reserve(index.groups.size() * 4);
      for (const SwarmIndexGroup& g : index.groups) {
        append_u32_le(bytes, g.isp);
      }
      break;
    case 10:
      bytes.reserve(index.groups.size());
      for (const SwarmIndexGroup& g : index.groups) {
        bytes.push_back(static_cast<char>(g.bitrate));
      }
      break;
    case 11:
      bytes.reserve(index.groups.size() * 8);
      for (const SwarmIndexGroup& g : index.groups) {
        append_u64_le(bytes, g.count);
      }
      break;
    case 12:
      bytes.reserve(index.order.size() * 4);
      for (const std::uint32_t i : index.order) append_u32_le(bytes, i);
      break;
    case 13:
      bytes = trace.metro_name;
      break;
    default:
      CL_EXPECTS(id < kTraceBinaryBlockCount);
  }
  return bytes;
}

/// Directory element count of one block (see TraceBlockCountKind).
std::uint64_t block_count(std::uint32_t id, std::size_t n, std::size_t groups,
                          std::size_t metro_bytes) {
  switch (kTraceBinaryCountKind[id]) {
    case TraceBlockCountKind::kSessions:
      return n;
    case TraceBlockCountKind::kGroups:
      return groups;
    case TraceBlockCountKind::kMetroName:
      return metro_bytes;
  }
  return 0;
}

}  // namespace

void write_trace_binary(std::ostream& out, const Trace& trace) {
  const std::size_t n = trace.sessions.size();
  CL_EXPECTS(n <= std::numeric_limits<std::uint32_t>::max());
  CL_EXPECTS(valid_trace_metro_name(trace.metro_name));

  const SwarmIndex built =
      trace.swarm_index.empty() && n > 0 ? build_swarm_index(trace)
                                         : SwarmIndex{};
  const SwarmIndex& index =
      trace.swarm_index.empty() && n > 0 ? built : trace.swarm_index;
  validate_swarm_index(index, trace);
  const std::size_t groups = index.groups.size();
  const std::size_t metro_bytes = trace.metro_name.size();

  // Every block's size is a function of (n, groups, metro_bytes) alone,
  // so the whole layout — offsets included — is computed before a single
  // payload byte is built.
  std::uint64_t offsets[kTraceBinaryBlockCount];
  std::size_t cursor = align_up(kTraceBinaryHeaderBytes +
                                kTraceBinaryBlockCount *
                                    kTraceBinaryDirEntryBytes);
  std::size_t total = cursor;
  for (std::uint32_t id = 0; id < kTraceBinaryBlockCount; ++id) {
    const std::size_t count = block_count(id, n, groups, metro_bytes);
    offsets[id] = cursor;
    total = cursor + count * kTraceBinaryElemSize[id];
    cursor = align_up(total);
  }

  std::string header;
  header.reserve(kTraceBinaryHeaderBytes +
                 kTraceBinaryBlockCount * kTraceBinaryDirEntryBytes);
  header.append(reinterpret_cast<const char*>(kTraceBinaryMagic),
                sizeof kTraceBinaryMagic);
  append_u32_le(header, kTraceBinaryVersion);
  append_u32_le(header, 0);  // reserved flags
  append_u64_le(header, n);
  append_f64_le(header, trace.span.value());
  append_u32_le(header, kTraceBinaryBlockCount);
  append_u32_le(header, 0);  // reserved
  for (std::uint32_t id = 0; id < kTraceBinaryBlockCount; ++id) {
    append_u32_le(header, id);
    append_u32_le(header, kTraceBinaryElemSize[id]);
    append_u64_le(header, offsets[id]);
    append_u64_le(header, block_count(id, n, groups, metro_bytes));
  }
  write_all(out, header);

  std::size_t written = header.size();
  for (std::uint32_t id = 0; id < kTraceBinaryBlockCount; ++id) {
    out.write(std::string(offsets[id] - written, '\0').data(),
              static_cast<std::streamsize>(offsets[id] - written));
    const std::string bytes = block_bytes(id, trace, index);
    write_all(out, bytes);
    written = offsets[id] + bytes.size();
  }
  CL_ENSURES(written == total);
}

std::string serialize_trace_binary(const Trace& trace) {
  std::ostringstream out;
  write_trace_binary(out, trace);
  return std::move(out).str();
}

void write_trace_binary_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot create trace file: " + path);
  write_trace_binary(out, trace);
  out.flush();
  if (!out) throw IoError("failed writing trace file: " + path);
}

}  // namespace cl
