// metro_registry.h — the named metro topology presets.
//
// The paper's evaluation fixes one metro (the top-5 London ISPs of
// Table III), but its model is parametric in the ISP tree shape: every
// result consumes the metro only through the per-layer localisation
// probabilities and the ISP market-share partition. The registry turns
// that parameter into a first-class, named input — `--metro <name>` on
// the CLI, `TraceConfig::metro` in the generator, the `#metro=` /
// `.cltrace` trace-header field — so any experiment can run against any
// preset (and cross-metro experiments can sweep all of them).
//
// Presets (see DESIGN.md §"Metro topologies" for the tree diagrams):
//
//   london_top5  the paper's setting — 5 ISPs, ISP-1 345 ExPs / 9 PoPs
//   us_sparse    US-style sparse-ExP metro — 4 ISPs, ISP-1 40 / 12
//   fiber_dense  dense-ExP fiber metro — 3 ISPs, ISP-1 900 / 15
#pragma once

#include <string>
#include <vector>

#include "topology/placement.h"

namespace cl {

/// The registry key every command defaults to (the paper's metro).
inline constexpr char kDefaultMetroName[] = "london_top5";

/// Name + one-line summary of one registry preset (for --help / errors).
struct MetroPresetInfo {
  std::string name;
  std::string description;
};

/// Immutable catalogue of the named metro presets. Lookups return
/// long-lived references — the registry outlives every Analyzer /
/// TraceGenerator built on top of it.
class MetroRegistry {
 public:
  /// The process-wide registry (built once, thread-safe init).
  [[nodiscard]] static const MetroRegistry& instance();

  /// The preset metro called `name`, or nullptr — the one lookup
  /// primitive `contains`/`get` and the CLI's error paths share.
  [[nodiscard]] const Metro* find(const std::string& name) const;

  /// True when `name` is a registered preset.
  [[nodiscard]] bool contains(const std::string& name) const {
    return find(name) != nullptr;
  }

  /// The preset metro called `name`; throws cl::InvalidArgument listing
  /// every valid name otherwise.
  [[nodiscard]] const Metro& get(const std::string& name) const;

  /// Preset names in registration order (london_top5 first).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Name/description pairs in registration order.
  [[nodiscard]] const std::vector<MetroPresetInfo>& presets() const {
    return infos_;
  }

  /// "london_top5, us_sparse, fiber_dense" — for error messages / help.
  [[nodiscard]] std::string names_joined(const char* separator = ", ") const;

 private:
  MetroRegistry();

  std::vector<MetroPresetInfo> infos_;
  std::vector<Metro> metros_;  ///< parallel to infos_
};

}  // namespace cl
