// isp_topology.h — metropolitan ISP tree topology (paper Fig. 1, Table III).
//
// The paper models an ISP's metropolitan network as a three-layer tree:
// one nationwide core router, `n_pop` points of presence under it, and
// `n_exp` exchange points distributed over the PoPs, with end users hanging
// off exchange points. The published counts for the large London ISP are
// 345 exchange points, 9 PoPs and 1 core router.
//
// The analytical model only consumes the tree through the *localisation
// probabilities* of Table III — the probability that a uniformly placed
// user sits under one given node of a layer — while the simulator uses the
// explicit tree to compute the lowest common layer of matched peers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "topology/locality.h"

namespace cl {

/// Localisation probabilities for one ISP tree (Table III).
struct LocalisationProbabilities {
  double exp = 0;   ///< P[user under one given exchange point] = 1/n_exp
  double pop = 0;   ///< P[user under one given PoP]            = 1/n_pop
  double core = 1;  ///< P[user under the core]                 = 1

  /// Probability for a given level.
  [[nodiscard]] double at(LocalityLevel level) const {
    switch (level) {
      case LocalityLevel::kExchangePoint:
        return exp;
      case LocalityLevel::kPop:
        return pop;
      case LocalityLevel::kCore:
        return core;
    }
    return 1;
  }
};

/// Static description of one ISP's metropolitan tree.
///
/// Invariants (checked on construction):
///  * n_core == 1 (the model is per-metro single-core);
///  * n_pop >= 1 and n_exp >= n_pop;
///  * every exchange point is assigned to exactly one PoP.
class IspTopology {
 public:
  /// Builds a tree with `n_exp` exchange points spread as evenly as
  /// possible over `n_pop` PoPs.
  IspTopology(std::string name, std::uint32_t n_exp, std::uint32_t n_pop);

  /// The published topology of the large national ISP serving London:
  /// 345 exchange points, 9 PoPs, 1 core (Table III).
  [[nodiscard]] static IspTopology london_default(std::string name = "ISP-1");

  /// A topology scaled to a market-share fraction of the default, keeping
  /// at least one ExP per PoP. Used for the smaller of the top-5 ISPs.
  [[nodiscard]] static IspTopology scaled(std::string name, double share);

  /// A topology scaled to `ratio` of an arbitrary base tree (the metro
  /// presets scale their smaller ISPs from each metro's own ISP-1 shape,
  /// not from London's). `ratio` must be in (0, 1].
  [[nodiscard]] static IspTopology scaled_of(const IspTopology& base,
                                             std::string name, double ratio);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint32_t exchange_points() const { return n_exp_; }
  [[nodiscard]] std::uint32_t pops() const { return n_pop_; }
  [[nodiscard]] std::uint32_t cores() const { return 1; }

  /// PoP that exchange point `exp_id` belongs to.
  [[nodiscard]] std::uint32_t pop_of(std::uint32_t exp_id) const;

  /// The whole ExP→PoP lookup column (`exp_to_pop()[e] == pop_of(e)`),
  /// exposed so the sweep's gather kernels can table-gather PoP ids
  /// instead of calling pop_of per session.
  [[nodiscard]] std::span<const std::uint32_t> exp_to_pop() const {
    return exp_to_pop_;
  }

  /// Table III: probability that a uniformly placed user is under a given
  /// node of each layer (1/n_exp, 1/n_pop, 1).
  [[nodiscard]] LocalisationProbabilities localisation() const;

  /// Lowest common layer of two users placed at the given exchange points.
  [[nodiscard]] LocalityLevel locality_between(std::uint32_t exp_a,
                                               std::uint32_t exp_b) const;

 private:
  std::string name_;
  std::uint32_t n_exp_;
  std::uint32_t n_pop_;
  std::vector<std::uint32_t> exp_to_pop_;
};

}  // namespace cl
