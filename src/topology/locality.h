// locality.h — the three levels at which two peers of a metropolitan ISP
// network can be localised (Fig. 1 of the paper).
//
// Peer-to-peer traffic between two users under the same exchange point only
// powers the access segment; same PoP adds the metro aggregation segment;
// otherwise the path crosses the ISP core. A CDN download always crosses
// the full path from the content server.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace cl {

/// Lowest shared layer of the ISP tree between two users.
enum class LocalityLevel : std::uint8_t {
  kExchangePoint = 0,  ///< both users under the same exchange point (ExP)
  kPop = 1,            ///< same point of presence, different ExP
  kCore = 2,           ///< same ISP core, different PoP
};

/// Number of locality levels (array sizing helper).
inline constexpr std::size_t kLocalityLevels = 3;

/// All levels, lowest (most local) first.
inline constexpr std::array<LocalityLevel, kLocalityLevels> kAllLocalityLevels{
    LocalityLevel::kExchangePoint, LocalityLevel::kPop, LocalityLevel::kCore};

/// Stable display name ("ExP" / "PoP" / "Core").
constexpr std::string_view to_string(LocalityLevel level) {
  switch (level) {
    case LocalityLevel::kExchangePoint:
      return "ExP";
    case LocalityLevel::kPop:
      return "PoP";
    case LocalityLevel::kCore:
      return "Core";
  }
  return "?";
}

/// Index of a level into per-level arrays.
constexpr std::size_t index(LocalityLevel level) {
  return static_cast<std::size_t>(level);
}

}  // namespace cl
