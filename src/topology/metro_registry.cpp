#include "topology/metro_registry.h"

#include <utility>

#include "util/error.h"

namespace cl {

MetroRegistry::MetroRegistry() {
  const auto add = [this](Metro metro, std::string description) {
    CL_EXPECTS(!metro.name().empty());
    infos_.push_back({metro.name(), std::move(description)});
    metros_.push_back(std::move(metro));
  };
  add(Metro::london_top5(),
      "the paper's top-5 London ISPs (ISP-1: 345 ExPs / 9 PoPs / 1 core)");
  add(Metro::us_sparse(),
      "US-style sparse-ExP metro, 4 ISPs (ISP-1: 40 ExPs / 12 PoPs / 1 core)");
  add(Metro::fiber_dense(),
      "dense-ExP fiber metro, 3 ISPs (ISP-1: 900 ExPs / 15 PoPs / 1 core)");
}

const MetroRegistry& MetroRegistry::instance() {
  static const MetroRegistry registry;
  return registry;
}

const Metro* MetroRegistry::find(const std::string& name) const {
  for (std::size_t i = 0; i < infos_.size(); ++i) {
    if (infos_[i].name == name) return &metros_[i];
  }
  return nullptr;
}

const Metro& MetroRegistry::get(const std::string& name) const {
  if (const Metro* metro = find(name)) return *metro;
  throw InvalidArgument("unknown metro '" + name +
                        "' (valid: " + names_joined() + ")");
}

std::vector<std::string> MetroRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(infos_.size());
  for (const auto& info : infos_) out.push_back(info.name);
  return out;
}

std::string MetroRegistry::names_joined(const char* separator) const {
  std::string out;
  for (const auto& info : infos_) {
    if (!out.empty()) out += separator;
    out += info.name;
  }
  return out;
}

}  // namespace cl
