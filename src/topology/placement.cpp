#include "topology/placement.h"

#include "util/error.h"

namespace cl {

UserPlacement UniformPlacer::place(std::uint32_t isp_index, Rng& rng) const {
  return {isp_index,
          static_cast<std::uint32_t>(rng.uniform_index(topo_->exchange_points()))};
}

double UniformPlacer::same_exp_probability() const {
  return 1.0 / static_cast<double>(topo_->exchange_points());
}

double UniformPlacer::same_pop_probability() const {
  return 1.0 / static_cast<double>(topo_->pops());
}

Metro::Metro(std::vector<IspTopology> topologies, std::vector<double> shares)
    : topologies_(std::move(topologies)), shares_(std::move(shares)),
      sampler_(shares_) {
  CL_EXPECTS(!topologies_.empty());
  CL_EXPECTS(topologies_.size() == shares_.size());
  double sum = 0;
  for (double s : shares_) sum += s;
  CL_EXPECTS(sum > 0);
  for (auto& s : shares_) s /= sum;
}

Metro Metro::london_top5() {
  // Market shares approximate the UK's top-5 fixed-line ISPs at trace time
  // (BT-like, Sky-like, Virgin-like, TalkTalk-like, EE-like). ISP-1 uses
  // the exact published tree of Table III; the others are scaled copies.
  std::vector<double> shares{0.32, 0.23, 0.20, 0.14, 0.11};
  std::vector<IspTopology> topos;
  topos.push_back(IspTopology::london_default("ISP-1"));
  for (std::size_t i = 1; i < shares.size(); ++i) {
    topos.push_back(IspTopology::scaled("ISP-" + std::to_string(i + 1),
                                        shares[i] / shares[0]));
  }
  return Metro(std::move(topos), std::move(shares));
}

const IspTopology& Metro::isp(std::size_t i) const {
  CL_EXPECTS(i < topologies_.size());
  return topologies_[i];
}

double Metro::share(std::size_t i) const {
  CL_EXPECTS(i < shares_.size());
  return shares_[i];
}

std::uint32_t Metro::sample_isp(Rng& rng) const {
  return static_cast<std::uint32_t>(sampler_(rng));
}

UserPlacement Metro::place_user(std::uint32_t isp_index, Rng& rng) const {
  CL_EXPECTS(isp_index < topologies_.size());
  return UniformPlacer(topologies_[isp_index]).place(isp_index, rng);
}

}  // namespace cl
