#include "topology/placement.h"

#include "util/error.h"

namespace cl {

UserPlacement UniformPlacer::place(std::uint32_t isp_index, Rng& rng) const {
  return {isp_index,
          static_cast<std::uint32_t>(rng.uniform_index(topo_->exchange_points()))};
}

double UniformPlacer::same_exp_probability() const {
  return 1.0 / static_cast<double>(topo_->exchange_points());
}

double UniformPlacer::same_pop_probability() const {
  return 1.0 / static_cast<double>(topo_->pops());
}

namespace {

/// Shared preset shape: ISP-1 carries `base`; smaller ISPs are
/// share-scaled copies of it, exactly as london_top5 builds its tail.
Metro share_scaled_metro(const IspTopology& base, const char* isp_prefix,
                         std::vector<double> shares, std::string name) {
  std::vector<IspTopology> topos;
  topos.push_back(base);
  for (std::size_t i = 1; i < shares.size(); ++i) {
    topos.push_back(IspTopology::scaled_of(
        base, std::string(isp_prefix) + std::to_string(i + 1),
        shares[i] / shares[0]));
  }
  return Metro(std::move(topos), std::move(shares), std::move(name));
}

}  // namespace

Metro::Metro(std::vector<IspTopology> topologies, std::vector<double> shares,
             std::string name)
    : topologies_(std::move(topologies)), shares_(std::move(shares)),
      name_(std::move(name)), sampler_(shares_) {
  CL_EXPECTS(!topologies_.empty());
  CL_EXPECTS(topologies_.size() == shares_.size());
  double sum = 0;
  for (double s : shares_) sum += s;
  CL_EXPECTS(sum > 0);
  for (auto& s : shares_) s /= sum;
}

Metro Metro::london_top5() {
  // Market shares approximate the UK's top-5 fixed-line ISPs at trace time
  // (BT-like, Sky-like, Virgin-like, TalkTalk-like, EE-like). ISP-1 uses
  // the exact published tree of Table III; the others are scaled copies.
  return share_scaled_metro(IspTopology::london_default("ISP-1"), "ISP-",
                            {0.32, 0.23, 0.20, 0.14, 0.11}, "london_top5");
}

Metro Metro::us_sparse() {
  // US metros aggregate through far fewer, far larger exchange points
  // than European ones (IXP sparsity), and the fixed-line market
  // concentrates on four large ISPs. ISP-1: 40 ExPs / 12 PoPs / 1 core.
  return share_scaled_metro(IspTopology("US-ISP-1", 40, 12), "US-ISP-",
                            {0.34, 0.27, 0.22, 0.17}, "us_sparse");
}

Metro Metro::fiber_dense() {
  // Fiber-to-the-home pushes aggregation down to street-cabinet scale:
  // many small exchange points under each PoP, and a market concentrated
  // on three fiber operators. ISP-1: 900 ExPs / 15 PoPs / 1 core.
  return share_scaled_metro(IspTopology("FIB-ISP-1", 900, 15), "FIB-ISP-",
                            {0.45, 0.33, 0.22}, "fiber_dense");
}

const IspTopology& Metro::isp(std::size_t i) const {
  CL_EXPECTS(i < topologies_.size());
  return topologies_[i];
}

double Metro::share(std::size_t i) const {
  CL_EXPECTS(i < shares_.size());
  return shares_[i];
}

std::uint32_t Metro::sample_isp(Rng& rng) const {
  return static_cast<std::uint32_t>(sampler_(rng));
}

UserPlacement Metro::place_user(std::uint32_t isp_index, Rng& rng) const {
  CL_EXPECTS(isp_index < topologies_.size());
  return UniformPlacer(topologies_[isp_index]).place(isp_index, rng);
}

}  // namespace cl
