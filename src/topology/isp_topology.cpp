#include "topology/isp_topology.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace cl {

IspTopology::IspTopology(std::string name, std::uint32_t n_exp,
                         std::uint32_t n_pop)
    : name_(std::move(name)), n_exp_(n_exp), n_pop_(n_pop) {
  CL_EXPECTS(n_pop_ >= 1);
  CL_EXPECTS(n_exp_ >= n_pop_);
  exp_to_pop_.resize(n_exp_);
  // Round-robin assignment spreads ExPs as evenly as possible over PoPs,
  // matching the uniform-placement assumption behind Table III.
  for (std::uint32_t e = 0; e < n_exp_; ++e) {
    exp_to_pop_[e] = e % n_pop_;
  }
}

IspTopology IspTopology::london_default(std::string name) {
  return IspTopology(std::move(name), 345, 9);
}

IspTopology IspTopology::scaled(std::string name, double share) {
  return scaled_of(london_default(), std::move(name), share);
}

IspTopology IspTopology::scaled_of(const IspTopology& base, std::string name,
                                   double ratio) {
  CL_EXPECTS(ratio > 0 && ratio <= 1.0);
  const auto n_pop = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(
             std::lround(ratio * static_cast<double>(base.pops()))));
  const auto n_exp = std::max<std::uint32_t>(
      n_pop, static_cast<std::uint32_t>(std::lround(
                 ratio * static_cast<double>(base.exchange_points()))));
  return IspTopology(std::move(name), n_exp, n_pop);
}

std::uint32_t IspTopology::pop_of(std::uint32_t exp_id) const {
  CL_EXPECTS(exp_id < n_exp_);
  return exp_to_pop_[exp_id];
}

LocalisationProbabilities IspTopology::localisation() const {
  return {1.0 / static_cast<double>(n_exp_),
          1.0 / static_cast<double>(n_pop_), 1.0};
}

LocalityLevel IspTopology::locality_between(std::uint32_t exp_a,
                                            std::uint32_t exp_b) const {
  CL_EXPECTS(exp_a < n_exp_);
  CL_EXPECTS(exp_b < n_exp_);
  if (exp_a == exp_b) return LocalityLevel::kExchangePoint;
  if (exp_to_pop_[exp_a] == exp_to_pop_[exp_b]) return LocalityLevel::kPop;
  return LocalityLevel::kCore;
}

}  // namespace cl
