// placement.h — assignment of users to positions in an ISP tree.
//
// A user's network position is fully described by the exchange point they
// hang off (the PoP and core follow from the tree). Placement is uniform
// over exchange points, which is exactly the assumption behind the
// localisation probabilities of Table III.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/isp_topology.h"
#include "util/rng.h"

namespace cl {

/// A user's position inside one ISP's tree.
struct UserPlacement {
  std::uint32_t isp = 0;  ///< index into the metro's ISP list
  std::uint32_t exp = 0;  ///< exchange point id within that ISP
};

/// Places users uniformly at random across an ISP's exchange points.
class UniformPlacer {
 public:
  explicit UniformPlacer(const IspTopology& topo) : topo_(&topo) {}

  /// Draws a placement for one user of ISP `isp_index`.
  [[nodiscard]] UserPlacement place(std::uint32_t isp_index, Rng& rng) const;

  /// Empirical check helper: probability that two independently placed
  /// users share an exchange point (= 1/n_exp under uniform placement).
  [[nodiscard]] double same_exp_probability() const;

  /// Probability that two users share a PoP (= 1/n_pop).
  [[nodiscard]] double same_pop_probability() const;

 private:
  const IspTopology* topo_;
};

/// A metropolitan area served by several ISPs with given market shares.
///
/// The paper's trace spans five major ISPs; swarms are ISP-friendly, i.e.
/// peers are only matched within one ISP's tree. Named metros (the
/// presets below, looked up via topology/metro_registry.h) stamp their
/// name into generated traces so an analysis can recover the topology a
/// workload was placed on.
class Metro {
 public:
  /// Builds a metro with one tree per ISP. `shares` need not sum to one
  /// (they are normalised); topologies[i] serves shares[i]. `name` is the
  /// registry key for preset metros and empty for ad-hoc custom metros
  /// (unnamed metros are never stamped into trace headers).
  Metro(std::vector<IspTopology> topologies, std::vector<double> shares,
        std::string name = "");

  /// The paper's setting: top-5 London ISPs. ISP-1 uses the published
  /// 345/9/1 tree; smaller ISPs are share-scaled copies.
  [[nodiscard]] static Metro london_top5();

  /// A US-style sparse-exchange metro: four large ISPs, each aggregating
  /// through few, large exchange points (ISP-1: 40 ExPs over 12 PoPs).
  /// Sub-core localisation (1/12) is *lower* than London's (1/9) while
  /// per-ExP localisation (1/40) is higher — see DESIGN.md §6.
  [[nodiscard]] static Metro us_sparse();

  /// A dense-ExP fiber metro: three fiber ISPs whose street-cabinet-level
  /// aggregation yields many small exchange points (ISP-1: 900 ExPs over
  /// 15 PoPs) — the low-fan-out extreme of the preset family.
  [[nodiscard]] static Metro fiber_dense();

  /// Registry key of a preset metro; empty for custom metros.
  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] std::size_t isp_count() const { return topologies_.size(); }
  [[nodiscard]] const IspTopology& isp(std::size_t i) const;
  [[nodiscard]] double share(std::size_t i) const;

  /// Samples the home ISP of a new user according to market share.
  [[nodiscard]] std::uint32_t sample_isp(Rng& rng) const;

  /// Uniformly places a user within their home ISP's tree.
  [[nodiscard]] UserPlacement place_user(std::uint32_t isp_index,
                                         Rng& rng) const;

 private:
  std::vector<IspTopology> topologies_;
  std::vector<double> shares_;
  std::string name_;
  DiscreteSampler sampler_;
};

}  // namespace cl
