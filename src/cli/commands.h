// commands.h — the subcommands of the `consumelocal` command-line tool.
//
// Each command takes parsed Args, does its work against stdout and
// returns a process exit code. main.cpp dispatches on Args::command().
#pragma once

#include "util/args.h"

namespace cl::cli {

/// `generate` — write a synthetic trace (CSV or binary .cltrace).
///   --out PATH (required), --days N, --seed S, --users N,
///   --preset london|paper|small, --metro NAME (topology preset,
///   recorded in the trace header), --format auto|csv|binary,
///   --threads N (sharded generation)
int cmd_generate(const Args& args);

/// `convert` — convert a trace between CSV and binary .cltrace.
///   --in PATH, --out PATH (required), --from/--to auto|csv|binary,
///   --threads N (sharded binary load)
int cmd_convert(const Args& args);

/// `simulate` — run the hybrid-CDN simulator over a trace and print the
/// aggregate savings report.
///   --trace PATH (required; or --preset to self-generate),
///   --metro NAME (defaults to the trace header's metro),
///   --format auto|csv|binary, --qb R,
///   --cross-isp, --mixed-bitrate, --matcher existence|capacity,
///   --overload (cap peer transfers at the warm members' upload
///   capacity; excess spills back to the CDN),
///   --threads N (sharded generation/simulation/analysis)
int cmd_simulate(const Args& args);

/// `swarm` — analyze one content swarm: sim vs theory (a Fig. 2 dot).
///   --trace PATH, --content ID, --isp I, --metro NAME, --qb R
int cmd_swarm(const Args& args);

/// `model` — evaluate the closed form at a capacity (no simulation).
///   --capacity C, --qb R, --metro NAME
int cmd_model(const Args& args);

/// `plan` — invert the model: capacities for savings/carbon targets.
///   --target S, --qb R, --minutes M, --metro NAME
int cmd_plan(const Args& args);

/// `live` — flash-crowd scenario: generate a live-event burst (spike or
/// ramp preset: arrival burst, churn with rejoin, mid-event bitrate
/// shift), simulate it with the overload model on, and print the savings
/// trajectory through the spike.
///   --preset ramp|spike, --viewers N, --start S, --days D, --seed S,
///   --metro NAME, --out PATH [--format auto|csv|binary] (save the
///   trace), --trace PATH (replay a saved trace instead), --qb R,
///   --intensity NAME, --threads N
int cmd_live(const Args& args);

/// `ledger` — per-user carbon credit ledger over a trace.
///   --trace PATH (or --preset), --metro NAME, --qb R
int cmd_ledger(const Args& args);

/// `experiment` — expand a JSON experiment spec (src/experiment/) into
/// its cell matrix and run every cell in parallel, writing one
/// BENCH_<spec>_<cell>.json per cell plus a BENCH_<spec>.json manifest.
///   SPEC.json (positional, or --spec PATH), --out-dir D, --threads N,
///   --dry-run (print the expanded matrix without running)
int cmd_experiment(const Args& args);

/// Prints usage to stdout; returns the given exit code.
int usage(int exit_code);

}  // namespace cl::cli
