// cmd_swarm — one content swarm's simulation-vs-theory outcome
// (one dot of the paper's Fig. 2).
#include <iostream>

#include "cli/cli_common.h"
#include "cli/commands.h"
#include "core/analyzer.h"
#include "core/report.h"
#include "trace/filter.h"

namespace cl::cli {

int cmd_swarm(const Args& args) {
  const Trace trace = load_or_generate(args);
  const Metro& metro = resolve_metro(args, trace);
  const auto content = static_cast<std::uint32_t>(args.get_int("content", 0));
  const auto isp = static_cast<std::uint32_t>(args.get_int("isp", 0));
  if (isp >= metro.isp_count()) {
    throw ParseError("--isp out of range (0.." +
                     std::to_string(metro.isp_count() - 1) + ")");
  }
  const Trace swarm = filter_by_isp(filter_by_content(trace, content), isp);
  if (swarm.empty()) {
    std::cout << "no sessions for content " << content << " on "
              << metro.isp(isp).name() << "\n";
    return 1;
  }
  std::cout << "\ncontent " << content << " on " << metro.isp(isp).name()
            << ":\n";
  const Analyzer analyzer(metro, sim_config_from(args));
  print_swarm_experiment(std::cout, analyzer.analyze_swarm(swarm, isp));
  return 0;
}

}  // namespace cl::cli
