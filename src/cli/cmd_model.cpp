// cmd_model — evaluate the closed form (Eqs. 3, 12, 13) at one capacity,
// no simulation involved.
#include <iostream>

#include "cli/cli_common.h"
#include "cli/commands.h"
#include "energy/cost_functions.h"
#include "model/carbon_credit.h"
#include "model/savings.h"
#include "model/split_swarm.h"
#include "util/table.h"

namespace cl::cli {

int cmd_model(const Args& args) {
  const double capacity = args.get_double("capacity", 10.0);
  const double qb = args.get_double("qb", 1.0);
  const Metro& metro = metro_from_flag(args);
  const IntensityCurve* intensity = intensity_from(args, metro.name());
  std::cout << "\nclosed-form evaluation at capacity c = " << capacity
            << ", q/b = " << qb << " (metro " << metro.name()
            << ", ISP-1 tree):\n\n";
  TextTable table({"model", "offload G", "S (Eq.12)", "S split (ISPxBR)",
                   "CCT", "CDN comp", "User comp"});
  const std::array<double, kBitrateClasses> mix{0.08, 0.72, 0.15, 0.05};
  for (const auto& params : standard_params()) {
    const SavingsModel model(params, metro.isp(0));
    const auto split =
        SplitSwarmModel::isp_bitrate_partition(params, metro, mix);
    const auto comp = model.components(capacity, qb);
    table.add_row({params.name, fmt_pct(model.offload(capacity, qb)),
                   fmt(model.savings(capacity, qb), 4),
                   fmt(split.savings(capacity, qb), 4),
                   fmt(comp.carbon_credit_transfer, 4), fmt(comp.cdn, 4),
                   fmt(comp.user, 4)});
  }
  table.print(std::cout);
  std::cout << "\n'S split' partitions the audience over ISP market shares "
               "and the device bitrate mix — what a real deployment (and "
               "the simulator) achieves at this whole-item capacity.\n";

  if (intensity) {
    // The closed form has no time axis, so the curve enters through its
    // summary statistics: per-GB carbon at the daily mean intensity plus
    // the off-peak/peak band the same joules would span.
    std::cout << "\nper-GB carbon under intensity " << intensity->name()
              << " (mean " << fmt(intensity->mean(), 1)
              << " gCO2/kWh, off-peak " << fmt(intensity->min(), 1)
              << ", peak " << fmt(intensity->max(), 1) << "):\n";
    TextTable carbon({"model", "CDN gCO2/GB", "hybrid gCO2/GB",
                      "hybrid off-peak", "hybrid peak"});
    for (const auto& params : standard_params()) {
      const CostFunctions costs(params);
      const auto split =
          SplitSwarmModel::isp_bitrate_partition(params, metro, mix);
      const Energy baseline_per_gb =
          (costs.cdn_side_per_bit() + costs.user_side_per_bit()) *
          Bits::from_bytes(1e9);
      const double s = split.savings(capacity, qb);
      const Energy hybrid_per_gb = baseline_per_gb * (1.0 - s);
      carbon.add_row(
          {params.name, fmt(baseline_per_gb.kwh() * intensity->mean(), 2),
           fmt(hybrid_per_gb.kwh() * intensity->mean(), 2),
           fmt(hybrid_per_gb.kwh() * intensity->min(), 2),
           fmt(hybrid_per_gb.kwh() * intensity->max(), 2)});
    }
    carbon.print(std::cout);
  }
  return 0;
}

}  // namespace cl::cli
