// main.cpp — `consumelocal`, the command-line front end of the library.
//
//   consumelocal generate --out month.cltrace --days 30
//   consumelocal convert  --in month.cltrace --out month.csv
//   consumelocal simulate --trace month.cltrace
//   consumelocal swarm    --trace month.csv --content 0 --isp 0
//   consumelocal model    --capacity 50 --qb 1.0
//   consumelocal plan     --target 0.3
//   consumelocal live     --preset spike --viewers 20000
//   consumelocal ledger   --trace month.csv
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.h"
#include "util/args.h"
#include "util/error.h"

int main(int argc, char** argv) {
  using namespace cl;
  using namespace cl::cli;
  try {
    std::vector<std::string> tokens(argc > 0 ? argv + 1 : argv, argv + argc);
    // `experiment` takes its spec as a positional path (cl experiment
    // spec.json); Args knows only the one leading subcommand word, so
    // map the path onto the equivalent --spec flag before parsing.
    if (tokens.size() >= 2 && tokens[0] == "experiment" &&
        tokens[1].rfind("--", 0) != 0) {
      tokens[1] = "--spec=" + tokens[1];
    }
    const Args args(std::move(tokens),
                    {"cross-isp", "dry-run", "help", "mixed-bitrate",
                     "overload", "quiet", "timing"});
    if (args.has("help")) return usage(0);
    const std::string& command = args.command();
    int code = 0;
    if (command == "generate") {
      code = cmd_generate(args);
    } else if (command == "convert") {
      code = cmd_convert(args);
    } else if (command == "simulate") {
      code = cmd_simulate(args);
    } else if (command == "swarm") {
      code = cmd_swarm(args);
    } else if (command == "model") {
      code = cmd_model(args);
    } else if (command == "plan") {
      code = cmd_plan(args);
    } else if (command == "live") {
      code = cmd_live(args);
    } else if (command == "ledger") {
      code = cmd_ledger(args);
    } else if (command == "experiment") {
      code = cmd_experiment(args);
    } else {
      if (!command.empty()) {
        std::cerr << "unknown command: '" << command << "'\n\n";
      }
      return usage(command.empty() ? 0 : 2);
    }
    for (const auto& flag : args.unused()) {
      std::cerr << "warning: flag --" << flag << " was ignored by '"
                << command << "'\n";
    }
    return code;
  } catch (const ParseError& e) {
    std::cerr << "argument error: " << e.what() << "\n";
    return 2;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "fatal: " << e.what() << "\n";
    return 1;
  }
}
