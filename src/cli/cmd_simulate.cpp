// cmd_simulate — aggregate hybrid-vs-CDN savings over a trace.
#include <iostream>

#include "cli/cli_common.h"
#include "cli/commands.h"
#include "core/analyzer.h"
#include "core/report.h"

namespace cl::cli {

int cmd_simulate(const Args& args) {
  const Trace trace = load_or_generate(args);
  const Metro& metro = resolve_metro(args, trace);
  const Analyzer analyzer(metro, sim_config_from(args));
  std::cout << "\nsessions: " << trace.size() << ", span "
            << trace.span.value() / 86400.0 << " days, metro "
            << metro.name() << "\n\n";
  print_aggregate(std::cout, analyzer.aggregate(trace));
  return 0;
}

}  // namespace cl::cli
