// cmd_simulate — aggregate hybrid-vs-CDN savings over a trace.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "cli/cli_common.h"
#include "cli/commands.h"
#include "core/analyzer.h"
#include "core/report.h"

namespace cl::cli {

namespace {

void print_timing(std::ostream& out, const char* label, double seconds) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "timing: %-10s %9.3f s", label,
                seconds);
  out << buffer << "\n";
}

}  // namespace

int cmd_simulate(const Args& args) {
  validate_intensity_flag(args);
  const ScheduleMode schedule = schedule_from(args);
  const bool want_timing = args.has("timing");
  using Clock = std::chrono::steady_clock;

  // `.cltrace` input maps zero-copy — the simulator consumes the file's
  // column blocks directly, so "load" is just mmap + column validation.
  // The one exception: a preload schedule transforms session rows, so
  // that path loads rows and transposes once (the transform's input
  // rows stay alive alongside the view).
  const auto load_start = Clock::now();
  Trace rows;
  TraceView view;
  if (schedule_preloads(schedule)) {
    rows = load_or_generate(args);
    view = TraceView::from_trace(rows, threads_from(args));
  } else {
    view = load_view_or_generate(args);
  }
  const double load_seconds =
      std::chrono::duration<double>(Clock::now() - load_start).count();

  const Metro& metro = resolve_metro(args, view.metro_name());
  const IntensityCurve* intensity = intensity_from(args, metro.name());
  const Analyzer analyzer(metro, sim_config_from(args));
  std::cout << "\nsessions: " << view.size() << ", span "
            << view.span().value() / 86400.0 << " days, metro "
            << metro.name() << "\n\n";

  // One simulator run feeds every report flavour: the swarms the
  // aggregate's theory column needs, plus (with --intensity) the hourly
  // grid the carbon weighting needs.
  SimConfig config = analyzer.sim_config();
  config.collect_swarms = true;
  config.collect_hourly = intensity != nullptr;
  config.collect_per_user = false;
  config.overload = args.has("overload");
  SimPhaseTiming timing;
  const SimResult result = HybridSimulator(metro, config)
                               .run(view, want_timing ? &timing : nullptr);

  if (want_timing) {
    print_timing(std::cout, "load", load_seconds);
    print_timing(std::cout, "group", timing.group_seconds);
    print_timing(std::cout, "sweep", timing.sweep_seconds);
    // Per-kernel split of the sweep (sim/sweep_kernels.h) — CPU seconds
    // summed across workers, so the four can exceed the sweep wall time
    // when --threads > 1.
    print_timing(std::cout, "  gather1", timing.sweep_gather1_seconds);
    print_timing(std::cout, "  gather2", timing.sweep_gather2_seconds);
    print_timing(std::cout, "  events", timing.sweep_events_seconds);
    print_timing(std::cout, "  allocate", timing.sweep_allocate_seconds);
    print_timing(std::cout, "merge", timing.merge_seconds);
    std::cout << "\n";
  }

  print_aggregate(std::cout, analyzer.aggregate(result));
  if (config.overload) {
    std::cout << "\noverload: "
              << result.overload_spill.value() / 8e9
              << " GB of peer demand spilled back to the CDN\n";
  }
  if (intensity) {
    std::cout << "\ncarbon under intensity " << intensity->name() << " (mean "
              << intensity->mean() << " gCO2/kWh, min " << intensity->min()
              << ", max " << intensity->max() << "):\n";
    print_carbon_report(std::cout, analyzer.carbon_report(result, *intensity));
  }

  if (schedule != ScheduleMode::kOff) {
    // Everything above is byte-identical to the unscheduled run — the
    // schedule section only *appends*, and under a flat curve the
    // scheduler is inert so the appended numbers repeat the unscheduled
    // ones exactly (the flat no-op contract, DESIGN.md §11).
    const CarbonScheduler scheduler(*intensity, schedule_config_from(args));
    SimResult preloaded_result;
    const SimResult* scheduled = &result;
    if (schedule_preloads(schedule) && !scheduler.inert()) {
      const Trace shifted =
          scheduler.schedule_preload(rows, seed_from(args, TraceConfig{}.seed));
      preloaded_result =
          HybridSimulator(metro, config)
              .run(TraceView::from_trace(shifted, config.threads), nullptr);
      scheduled = &preloaded_result;
    }
    const std::size_t home = metro_registry_index(metro.name());
    const std::size_t hours = scheduled->hourly.size();
    const RoutingPlan plan =
        schedule_routes(schedule)
            ? scheduler.plan_routes(serving_curves(metro.name(), *intensity),
                                    home, hours)
            : scheduler.home_plan(home, hours);
    std::vector<ScheduleOutcome> outcomes;
    for (const auto& params : analyzer.models()) {
      const EnergyAccountant accountant{CostFunctions(params)};
      outcomes.push_back(
          scheduler.assess(result.hourly, scheduled->hourly, accountant, plan));
    }
    std::cout << "\n";
    print_schedule_report(std::cout, scheduler, plan,
                          schedule_preloads(schedule),
                          schedule_routes(schedule), result.offload(),
                          scheduled->offload(), outcomes);
  }
  return 0;
}

}  // namespace cl::cli
