// cmd_simulate — aggregate hybrid-vs-CDN savings over a trace.
#include <iostream>

#include "cli/cli_common.h"
#include "cli/commands.h"
#include "core/analyzer.h"
#include "core/report.h"

namespace cl::cli {

int cmd_simulate(const Args& args) {
  validate_intensity_flag(args);
  const Trace trace = load_or_generate(args);
  const Metro& metro = resolve_metro(args, trace);
  const IntensityCurve* intensity = intensity_from(args, metro.name());
  const Analyzer analyzer(metro, sim_config_from(args));
  std::cout << "\nsessions: " << trace.size() << ", span "
            << trace.span.value() / 86400.0 << " days, metro "
            << metro.name() << "\n\n";
  if (intensity) {
    // One simulator run feeds both reports: collect the swarms the
    // aggregate's theory column needs *and* the hourly grid the carbon
    // weighting needs.
    SimConfig config = analyzer.sim_config();
    config.collect_swarms = true;
    config.collect_hourly = true;
    config.collect_per_user = false;
    const SimResult result = HybridSimulator(metro, config).run(trace);
    print_aggregate(std::cout, analyzer.aggregate(result));
    std::cout << "\ncarbon under intensity " << intensity->name() << " (mean "
              << intensity->mean() << " gCO2/kWh, min " << intensity->min()
              << ", max " << intensity->max() << "):\n";
    print_carbon_report(std::cout, analyzer.carbon_report(result, *intensity));
  } else {
    print_aggregate(std::cout, analyzer.aggregate(trace));
  }
  return 0;
}

}  // namespace cl::cli
