// cli_common.h — helpers shared by the CLI subcommands.
#pragma once

#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "carbon/intensity_curve.h"
#include "carbon/schedule.h"
#include "sim/sim_config.h"
#include "topology/metro_registry.h"
#include "topology/placement.h"
#include "trace/synthetic.h"
#include "trace/trace_format.h"
#include "trace/trace_view.h"
#include "util/args.h"
#include "util/error.h"

namespace cl::cli {

/// The --metro flag value ("london_top5" when absent).
inline std::string metro_flag(const Args& args) {
  return args.get_or("metro", kDefaultMetroName);
}

/// Registry lookup with a CLI-grade error: an unknown name is a hard
/// argument error (exit 2) listing every valid preset.
inline const Metro& metro_by_name(const std::string& name) {
  const MetroRegistry& registry = MetroRegistry::instance();
  if (const Metro* metro = registry.find(name)) return *metro;
  throw ParseError("unknown metro '" + name +
                   "' (valid: " + registry.names_joined() + ")");
}

/// The metro selected by --metro (commands without a trace: generate,
/// model, plan).
inline const Metro& metro_from_flag(const Args& args) {
  return metro_by_name(metro_flag(args));
}

/// The metro a trace-consuming command should analyze with: an explicit
/// --metro wins (with a warning when it contradicts the trace header),
/// then the metro recorded in the trace (`trace_metro`, empty when
/// unknown), then the default. A trace stamped with a metro this build
/// does not know is an error — analyzing it against the wrong tree would
/// be silently wrong.
inline const Metro& resolve_metro(const Args& args,
                                  const std::string& trace_metro) {
  if (args.has("metro")) {
    const std::string name = metro_flag(args);
    if (!trace_metro.empty() && trace_metro != name) {
      std::cerr << "warning: trace was generated for metro '" << trace_metro
                << "'; analyzing with --metro " << name << "\n";
    }
    return metro_by_name(name);
  }
  const MetroRegistry& registry = MetroRegistry::instance();
  if (!trace_metro.empty()) {
    if (const Metro* metro = registry.find(trace_metro)) return *metro;
    throw InvalidArgument("trace was generated for unknown metro '" +
                          trace_metro + "' (valid: " +
                          registry.names_joined() +
                          "); pass --metro to pick the analysis topology");
  }
  return registry.get(kDefaultMetroName);
}

inline const Metro& resolve_metro(const Args& args, const Trace& trace) {
  return resolve_metro(args, trace.metro_name);
}

/// The --intensity flag: absent → nullptr (no carbon section is
/// printed, exactly the pre-intensity output). The special value
/// "metro" resolves to the grid registered alongside the selected metro
/// preset (IntensityRegistry::default_for_metro); any other value is a
/// registry preset name or the path of an ElectricityMap-style 24-hour
/// CSV export (IntensityCurve::from_csv — a *measured* curve), and an
/// unknown name that is not a file is a hard argument error listing
/// every valid preset.
inline const IntensityCurve* intensity_from(const Args& args,
                                            const std::string& metro_name) {
  const auto name = args.get("intensity");
  if (!name) return nullptr;
  const IntensityRegistry& registry = IntensityRegistry::instance();
  if (*name == "metro") return &registry.default_for_metro(metro_name);
  if (const IntensityCurve* curve = registry.find(*name)) return curve;
  if (std::filesystem::exists(*name)) {
    // Measured curves load once per path and live for the process, so
    // callers hold long-lived pointers exactly as with registry presets
    // (intensity_from runs twice per command: validate, then resolve).
    static std::map<std::string, IntensityCurve> loaded;
    auto it = loaded.find(*name);
    if (it == loaded.end()) {
      it = loaded.emplace(*name, IntensityCurve::from_csv(*name)).first;
    }
    return &it->second;
  }
  throw ParseError("unknown intensity preset '" + *name +
                   "' (valid: metro, " + registry.names_joined() +
                   ", or the path of a 24-hour intensity CSV)");
}

/// Rejects an unknown --intensity name *before* any expensive trace
/// load/generation (the actual curve resolves after the metro is known —
/// intensity_from). A typo should fail in milliseconds, not minutes.
inline void validate_intensity_flag(const Args& args) {
  (void)intensity_from(args, kDefaultMetroName);
}

/// The --schedule flag: which carbon-aware levers are active
/// (src/carbon/schedule.h). "preload" shifts sessions into the
/// intensity trough, "route" serves hours from the cleanest viable
/// metro, "all" does both, "off" (the default) changes nothing.
enum class ScheduleMode { kOff, kPreload, kRoute, kAll };

[[nodiscard]] inline bool schedule_preloads(ScheduleMode mode) {
  return mode == ScheduleMode::kPreload || mode == ScheduleMode::kAll;
}

[[nodiscard]] inline bool schedule_routes(ScheduleMode mode) {
  return mode == ScheduleMode::kRoute || mode == ScheduleMode::kAll;
}

/// Parses --schedule; any active mode requires --intensity (a scheduler
/// without a curve has nothing to act on, and guessing one would break
/// the "absent --intensity → pre-intensity output" contract).
inline ScheduleMode schedule_from(const Args& args) {
  const std::string mode = args.get_or("schedule", "off");
  ScheduleMode parsed;
  if (mode == "off") {
    parsed = ScheduleMode::kOff;
  } else if (mode == "preload") {
    parsed = ScheduleMode::kPreload;
  } else if (mode == "route") {
    parsed = ScheduleMode::kRoute;
  } else if (mode == "all") {
    parsed = ScheduleMode::kAll;
  } else {
    throw ParseError("unknown schedule mode '" + mode +
                     "' (off|preload|route|all)");
  }
  if (parsed != ScheduleMode::kOff && !args.has("intensity")) {
    throw ParseError(
        "--schedule needs --intensity (the curve the scheduler acts on)");
  }
  return parsed;
}

/// Scheduler tunables from the shared flags (--latency-bound overrides
/// the default 30 ms GreenStream-style budget).
inline ScheduleConfig schedule_config_from(const Args& args) {
  ScheduleConfig config;
  config.max_added_latency_ms =
      args.get_double("latency-bound", config.max_added_latency_ms);
  if (config.max_added_latency_ms < 0) {
    throw ParseError("--latency-bound must be >= 0 ms");
  }
  return config;
}

// metro_registry_index / serving_curves moved to carbon/schedule.h (the
// experiment runner routes cells through the same helpers); unqualified
// calls below and in the cmd_*.cpp files resolve to the cl:: versions.

/// Shared --threads knob: worker threads for sharded generation, the
/// simulator's per-swarm sweep, and analysis (0 = all hardware threads;
/// results are bit-identical at any value).
inline unsigned threads_from(const Args& args) {
  const std::int64_t threads = args.get_int("threads", 1);
  if (threads < 0) throw ParseError("--threads must be >= 0");
  return static_cast<unsigned>(threads);
}

/// Shared --format / --from / --to knobs: "auto" (default) sniffs the
/// `.cltrace` magic when reading and goes by extension when writing.
inline TraceFormat trace_format_from(const Args& args,
                                     const std::string& flag = "format") {
  return trace_format_from_string(args.get_or(flag, "auto"));
}

/// The --seed knob, defaulting to the synthetic generator's master seed:
/// it steers both the no---trace generation fallback and the scheduler's
/// preload draws, so one flag pins a whole run.
inline std::uint64_t seed_from(const Args& args, std::uint64_t fallback) {
  return static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(fallback)));
}

/// Loads --trace PATH (CSV or binary, per --format / sniffing), or
/// generates a scaled synthetic month when the flag is absent
/// (--days / --seed / --metro apply to the generated fallback).
inline Trace load_or_generate(const Args& args) {
  if (const auto path = args.get("trace")) {
    return read_trace_any(*path, trace_format_from(args), threads_from(args));
  }
  TraceConfig config =
      TraceConfig::london_month_scaled(args.get_double("days", 10));
  config.metro = metro_flag(args);
  config.seed = seed_from(args, config.seed);
  config.threads = threads_from(args);
  std::cout << "(no --trace given: generating a scaled synthetic month, "
            << config.days << " days, seed " << config.seed << ", metro "
            << config.metro << ")\n";
  return TraceGenerator(config, metro_by_name(config.metro)).generate();
}

/// Columnar sibling of load_or_generate: `.cltrace` input is mapped and
/// wrapped zero-copy (TraceView::open_binary — no row materialization at
/// all); CSV input loads rows and transposes once; the no---trace
/// fallback generates the same synthetic month and transposes it.
inline TraceView load_view_or_generate(const Args& args) {
  const unsigned threads = threads_from(args);
  if (const auto path = args.get("trace")) {
    TraceFormat format = trace_format_from(args);
    if (format == TraceFormat::kAuto) {
      format = sniff_trace_binary(*path) ? TraceFormat::kBinary
                                         : TraceFormat::kCsv;
    }
    if (format == TraceFormat::kBinary) {
      return TraceView::open_binary(*path, threads);
    }
    return TraceView::from_trace(
        read_trace_any(*path, TraceFormat::kCsv, threads), threads);
  }
  return TraceView::from_trace(load_or_generate(args), threads);
}

/// Builds the simulator configuration from the shared flags.
inline SimConfig sim_config_from(const Args& args) {
  SimConfig config;
  config.q_over_beta = args.get_double("qb", 1.0);
  config.threads = threads_from(args);
  config.isp_friendly = !args.has("cross-isp");
  config.split_by_bitrate = !args.has("mixed-bitrate");
  const std::string matcher = args.get_or("matcher", "existence");
  if (matcher == "existence") {
    config.matcher = MatcherKind::kExistence;
  } else if (matcher == "capacity") {
    config.matcher = MatcherKind::kCapacity;
  } else {
    throw ParseError("unknown matcher '" + matcher +
                     "' (existence|capacity)");
  }
  return config;
}

}  // namespace cl::cli
