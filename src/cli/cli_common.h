// cli_common.h — helpers shared by the CLI subcommands.
#pragma once

#include <iostream>

#include "sim/sim_config.h"
#include "topology/placement.h"
#include "trace/synthetic.h"
#include "trace/trace_format.h"
#include "util/args.h"
#include "util/error.h"

namespace cl::cli {

/// The London metro every command runs against.
inline const Metro& metro() {
  static const Metro m = Metro::london_top5();
  return m;
}

/// Shared --threads knob: worker threads for sharded generation, the
/// simulator's per-swarm sweep, and analysis (0 = all hardware threads;
/// results are bit-identical at any value).
inline unsigned threads_from(const Args& args) {
  const std::int64_t threads = args.get_int("threads", 1);
  if (threads < 0) throw ParseError("--threads must be >= 0");
  return static_cast<unsigned>(threads);
}

/// Shared --format / --from / --to knobs: "auto" (default) sniffs the
/// `.cltrace` magic when reading and goes by extension when writing.
inline TraceFormat trace_format_from(const Args& args,
                                     const std::string& flag = "format") {
  return trace_format_from_string(args.get_or(flag, "auto"));
}

/// Loads --trace PATH (CSV or binary, per --format / sniffing), or
/// generates a scaled synthetic month when the flag is absent
/// (--days / --seed apply to the generated fallback).
inline Trace load_or_generate(const Args& args) {
  if (const auto path = args.get("trace")) {
    return read_trace_any(*path, trace_format_from(args), threads_from(args));
  }
  TraceConfig config =
      TraceConfig::london_month_scaled(args.get_double("days", 10));
  config.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(config.seed)));
  config.threads = threads_from(args);
  std::cout << "(no --trace given: generating a scaled synthetic month, "
            << config.days << " days, seed " << config.seed << ")\n";
  return TraceGenerator(config, metro()).generate();
}

/// Builds the simulator configuration from the shared flags.
inline SimConfig sim_config_from(const Args& args) {
  SimConfig config;
  config.q_over_beta = args.get_double("qb", 1.0);
  config.threads = threads_from(args);
  config.isp_friendly = !args.has("cross-isp");
  config.split_by_bitrate = !args.has("mixed-bitrate");
  const std::string matcher = args.get_or("matcher", "existence");
  if (matcher == "existence") {
    config.matcher = MatcherKind::kExistence;
  } else if (matcher == "capacity") {
    config.matcher = MatcherKind::kCapacity;
  } else {
    throw ParseError("unknown matcher '" + matcher +
                     "' (existence|capacity)");
  }
  return config;
}

}  // namespace cl::cli
