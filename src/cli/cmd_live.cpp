// cmd_live — flash-crowd scenario engine: synthesise a live-event burst
// (spike/ramp preset with churn and mid-event bitrate shifts), simulate
// it with the overload model on, and print the savings trajectory
// through the spike — including the CDN-spill phase where swarm demand
// exceeds the warm peers' upload capacity.
#include <algorithm>
#include <iostream>

#include "cli/cli_common.h"
#include "cli/commands.h"
#include "core/analyzer.h"
#include "core/report.h"
#include "ext/live.h"
#include "util/table.h"

namespace cl::cli {

int cmd_live(const Args& args) {
  validate_intensity_flag(args);

  // Either replay a saved trace (both formats, metro stamp honoured) or
  // synthesise a preset scenario — the same split as cmd_simulate, so
  // `cl live --out x.cltrace` then `cl live --trace x.cltrace` agree.
  Trace rows;
  TraceView view;
  std::string scenario;
  if (args.has("trace")) {
    view = load_view_or_generate(args);
    scenario = "replayed trace";
  } else {
    const std::string preset = args.get_or("preset", "spike");
    const auto names = flash_crowd_preset_names();
    if (std::find(names.begin(), names.end(), preset) == names.end()) {
      std::string joined;
      for (const auto& name : names) {
        if (!joined.empty()) joined += ", ";
        joined += name;
      }
      throw ParseError("unknown flash-crowd preset '" + preset +
                       "' (valid: " + joined + ")");
    }
    const double days = args.get_double("days", 1.0);
    if (days <= 0) throw ParseError("--days must be > 0");
    const double start = args.get_double("start", 7200.0);
    if (start < 1800 || start >= days * 86400.0) {
      throw ParseError("--start must be >= 1800 s and inside the span");
    }
    const std::int64_t viewers = args.get_int("viewers", 20000);
    if (viewers < 1) throw ParseError("--viewers must be >= 1");
    const Metro& gen_metro = metro_from_flag(args);
    const FlashCrowdConfig config = flash_crowd_preset(
        preset, static_cast<std::uint32_t>(viewers), start, days);
    rows = generate_flash_crowd(gen_metro, config,
                                seed_from(args, TraceConfig{}.seed));
    if (const auto out = args.get("out")) {
      write_trace_any(*out, rows, trace_format_from(args));
      std::cout << "wrote " << rows.size() << " session segments to " << *out
                << "\n";
    }
    view = TraceView::from_trace(rows, threads_from(args));
    scenario = "preset '" + preset + "'";
  }

  const Metro& metro = resolve_metro(args, view.metro_name());
  const IntensityCurve* intensity = intensity_from(args, metro.name());
  const Analyzer analyzer(metro, sim_config_from(args));
  std::cout << "\nflash crowd (" << scenario << "): " << view.size()
            << " session segments, span " << view.span().value() / 86400.0
            << " days, metro " << metro.name() << "\n\n";

  // The scenario engine's point is the overload phase, so the model is
  // always on here (plain `cl simulate --overload` replays a saved trace
  // with the identical accounting). Hourly collection drives the
  // trajectory table and the carbon weighting.
  SimConfig config = analyzer.sim_config();
  config.collect_swarms = true;
  config.collect_hourly = true;
  config.collect_per_user = false;
  config.overload = true;
  const SimResult result = HybridSimulator(metro, config).run(view, nullptr);

  print_aggregate(std::cout, analyzer.aggregate(result));

  const double spill_gb = result.overload_spill.value() / 8e9;
  const double peer_gb = result.total.peer_total().value() / 8e9;
  std::cout << "\noverload: " << fmt(spill_gb, 3)
            << " GB of peer demand spilled back to the CDN (peers carried "
            << fmt(peer_gb, 3) << " GB)\n";

  // Savings trajectory through the spike: one row per non-empty hour.
  std::vector<std::string> header{"hour", "GB", "offload", "spill GB"};
  for (const auto& params : analyzer.models()) header.push_back(params.name);
  TextTable table(header);
  for (std::size_t h = 0; h < result.hourly.size(); ++h) {
    TrafficBreakdown hour_traffic;
    for (const auto& isp_traffic : result.hourly[h]) {
      hour_traffic += isp_traffic;
    }
    if (hour_traffic.total().value() <= 0) continue;
    const double hour_spill = h < result.hourly_spill.size()
                                  ? result.hourly_spill[h].value() / 8e9
                                  : 0.0;
    std::vector<std::string> row{
        std::to_string(h), fmt(hour_traffic.total().value() / 8e9, 3),
        fmt_pct(hour_traffic.offload_fraction()), fmt(hour_spill, 3)};
    for (const auto& params : analyzer.models()) {
      const EnergyAccountant accountant{CostFunctions(params)};
      row.push_back(fmt_pct(accountant.savings(hour_traffic)));
    }
    table.add_row(std::move(row));
  }
  std::cout << "\nhourly trajectory (savings per energy model):\n";
  table.print(std::cout);

  if (intensity) {
    std::cout << "\ncarbon under intensity " << intensity->name() << " (mean "
              << intensity->mean() << " gCO2/kWh, min " << intensity->min()
              << ", max " << intensity->max() << "):\n";
    print_carbon_report(std::cout, analyzer.carbon_report(result, *intensity));
  }
  return 0;
}

}  // namespace cl::cli
