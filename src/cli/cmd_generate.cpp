// cmd_generate — synthesise a workload trace and write it as CSV.
#include <iostream>

#include "cli/cli_common.h"
#include "cli/commands.h"
#include "core/report.h"
#include "topology/placement.h"
#include "trace/synthetic.h"
#include "trace/trace_stats.h"
#include "util/error.h"

namespace cl::cli {

namespace {

TraceConfig preset_config(const Args& args) {
  const std::string preset = args.get_or("preset", "london");
  TraceConfig config;
  if (preset == "london") {
    config = TraceConfig::london_month_scaled(args.get_double("days", 30));
  } else if (preset == "paper") {
    config = TraceConfig::london_month_paper(args.get_double("days", 30));
  } else if (preset == "small") {
    config.days = args.get_double("days", 7);
    config.users = 5000;
    config.exemplar_views = {20000, 2000};
    config.catalogue_tail = 300;
    config.tail_views = 20000;
  } else {
    throw ParseError("unknown preset '" + preset + "' (london|paper|small)");
  }
  config.days = args.get_double("days", config.days);
  config.metro = metro_flag(args);
  config.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(config.seed)));
  config.users = static_cast<std::uint32_t>(
      args.get_int("users", static_cast<std::int64_t>(config.users)));
  config.threads = threads_from(args);
  return config;
}

}  // namespace

int cmd_generate(const Args& args) {
  const auto out_path = args.get("out");
  if (!out_path) throw ParseError("generate requires --out PATH");
  const TraceConfig config = preset_config(args);
  const Metro& metro = metro_by_name(config.metro);
  TraceGenerator generator(config, metro);
  const Trace trace = generator.generate();
  write_trace_any(*out_path, trace, trace_format_from(args));
  if (!args.has("quiet")) {
    std::cout << "wrote " << trace.size() << " sessions ("
              << config.days << " days, seed " << config.seed << ", metro "
              << config.metro << ") to " << *out_path << "\n\n";
    print_trace_stats(std::cout, compute_stats(trace), trace.span);
  }
  return 0;
}

}  // namespace cl::cli
