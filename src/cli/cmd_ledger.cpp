// cmd_ledger — per-user carbon credit accounting over a trace.
#include <iostream>
#include <optional>

#include "cli/cli_common.h"
#include "cli/commands.h"
#include "core/analyzer.h"
#include "core/carbon_ledger.h"
#include "core/report.h"

namespace cl::cli {

int cmd_ledger(const Args& args) {
  validate_intensity_flag(args);
  const ScheduleMode schedule = schedule_from(args);
  const Trace trace = load_or_generate(args);
  const Metro& metro = resolve_metro(args, trace);
  const IntensityCurve* intensity = intensity_from(args, metro.name());
  const Analyzer analyzer(metro, sim_config_from(args));
  const SimResult base = analyzer.simulate(trace);

  // Under a preload schedule the ledgers account the *scheduled* run —
  // credits should reflect the traffic users actually carried. A flat
  // curve leaves the scheduler inert, so `result` stays `base` and the
  // ledger output is byte-identical to the unscheduled run.
  std::optional<CarbonScheduler> scheduler;
  if (schedule != ScheduleMode::kOff) {
    scheduler.emplace(*intensity, schedule_config_from(args));
  }
  SimResult preloaded;
  const SimResult* result = &base;
  if (scheduler && schedule_preloads(schedule) && !scheduler->inert()) {
    preloaded = analyzer.simulate(scheduler->schedule_preload(
        trace, seed_from(args, TraceConfig{}.seed)));
    result = &preloaded;
  }

  for (const auto& params : analyzer.models()) {
    const CarbonLedger ledger(*result, params);
    std::cout << "\n";
    print_ledger_summary(std::cout, ledger);
    if (intensity) {
      std::cout << "\n";
      print_ledger_carbon(std::cout, ledger, *intensity);
    }
  }

  if (scheduler) {
    const std::size_t home = metro_registry_index(metro.name());
    const std::size_t hours = result->hourly.size();
    const RoutingPlan plan =
        schedule_routes(schedule)
            ? scheduler->plan_routes(serving_curves(metro.name(), *intensity),
                                     home, hours)
            : scheduler->home_plan(home, hours);
    std::vector<ScheduleOutcome> outcomes;
    for (const auto& params : analyzer.models()) {
      const EnergyAccountant accountant{CostFunctions(params)};
      outcomes.push_back(
          scheduler->assess(base.hourly, result->hourly, accountant, plan));
    }
    std::cout << "\n";
    print_schedule_report(std::cout, *scheduler, plan,
                          schedule_preloads(schedule),
                          schedule_routes(schedule), base.offload(),
                          result->offload(), outcomes);
  }
  return 0;
}

int usage(int exit_code) {
  std::cout <<
      R"(consumelocal — carbon-aware hybrid CDN analysis
(reproduction of "Consume Local: Towards Carbon Free Content Delivery",
 ICDCS 2018)

usage: consumelocal COMMAND [flags]

commands:
  generate  --out PATH [--preset london|paper|small] [--metro NAME]
            [--days N] [--seed S] [--users N]
            [--format auto|csv|binary] [--threads N]
                                  write a synthetic workload trace
  convert   --in PATH --out PATH [--from auto|csv|binary]
            [--to auto|csv|binary] [--threads N]
                                  convert between CSV and binary .cltrace
  simulate  [--trace PATH] [--metro NAME] [--format auto|csv|binary]
            [--qb R] [--cross-isp] [--mixed-bitrate] [--overload]
            [--matcher existence|capacity] [--intensity NAME] [--threads N]
            [--schedule off|preload|route|all] [--latency-bound MS]
            [--timing]
                                  aggregate hybrid-vs-CDN savings report
                                  (--timing adds load/group/sweep/merge
                                   wall-time lines; --overload caps peer
                                   transfers at warm upload capacity)
  live      [--preset ramp|spike] [--viewers N] [--start S] [--days D]
            [--seed S] [--metro NAME] [--out PATH] [--trace PATH]
            [--format auto|csv|binary] [--qb R] [--intensity NAME]
            [--threads N]
                                  flash-crowd scenario: burst + churn +
                                  bitrate shift, simulated with the
                                  overload (CDN-spill) model on
  swarm     [--trace PATH] --content ID [--isp I] [--metro NAME] [--qb R]
                                  one swarm, simulation vs closed form
  model     [--capacity C] [--qb R] [--metro NAME] [--intensity NAME]
                                  evaluate Eqs. 3/12/13 (no simulation)
  plan      [--target S] [--qb R] [--minutes M] [--metro NAME]
                                  capacities & popularity for targets
  ledger    [--trace PATH] [--metro NAME] [--qb R] [--intensity NAME]
            [--schedule off|preload|route|all] [--latency-bound MS]
                                  per-user carbon credit ledger
  experiment SPEC.json [--out-dir D] [--threads N] [--dry-run]
                                  expand a JSON experiment spec into its
                                  cell matrix and run every cell in
                                  parallel (one BENCH_<spec>_<cell>.json
                                  per cell + a manifest; --dry-run lists
                                  the matrix without running)

Full flag-by-flag reference with examples: docs/CLI.md (kept in lockstep
with this help text by tools/check_cli_docs.py).

Commands that accept --trace generate a scaled synthetic London month when
the flag is omitted, and read both trace formats: CSV for interchange and
the binary columnar `.cltrace` (mmap-loaded, no parsing — use it for
month-scale traces; "auto" sniffs the format). --threads N shards trace
generation, binary trace loading, the simulator's per-swarm sweep, and
analysis across N workers (0 = all cores); results are bit-identical at
any N.

--metro NAME picks the ISP tree topology preset (trace headers record it;
trace-consuming commands default to the trace's own metro):
)";
  for (const auto& preset : MetroRegistry::instance().presets()) {
    std::cout << "  " << preset.name;
    for (std::size_t pad = preset.name.size(); pad < 14; ++pad) {
      std::cout << ' ';
    }
    std::cout << preset.description << "\n";
  }
  std::cout <<
      R"(
--intensity NAME weights energy by a 24-hour grid carbon-intensity curve
(gCO2/kWh) and adds absolute-gCO2 / weighted-CCT output; "metro" picks
the grid registered alongside the selected metro, and a CSV file path
loads a measured ElectricityMap-style 24-hour export. Presets:
)";
  for (const auto& preset : IntensityRegistry::instance().presets()) {
    std::cout << "  " << preset.name;
    for (std::size_t pad = preset.name.size(); pad < 14; ++pad) {
      std::cout << ' ';
    }
    std::cout << preset.description << "\n";
  }
  std::cout <<
      R"(
--schedule MODE acts on the intensity curve (requires --intensity):
"preload" shifts sessions into the grid's daily trough, "route" serves
each hour from the cleanest metro within the --latency-bound MS added
latency budget (default 30, 25 ms per hop), "all" does both. Under a
flat curve the scheduler is inert and results stay bit-identical to
unscheduled.
)";
  return exit_code;
}

}  // namespace cl::cli
